// Package telemetry is the observability layer threaded through the
// technology classes and kernel hook points: per-graft invocation
// counters, log-bucketed latency histograms, and a bounded kernel event
// trace. It is the repo's equivalent of what production extension
// runtimes treat as a first-class subsystem — eBPF exposes per-program
// run counts and cumulative runtime via `bpftool prog`, and Rex keeps
// per-extension resource accounting — scaled to this simulation.
//
// The design constraint is that telemetry stays enabled during
// paper-scale measurement runs, so every hot-path operation is either a
// single uncontended atomic add or nothing at all:
//
//   - The whole subsystem sits behind one flag. When Disabled() reports
//     true (the default), tech.Load returns raw grafts and the kernel
//     hook points skip their Emit calls after one atomic load.
//   - Per-invocation latency is sampled (every SampleInterval-th
//     invocation is timed), so the two clock reads amortize to well
//     under a nanosecond per call.
//   - Trap classification and fuel accounting run only on paths that
//     are already slow (an error return, a metered engine).
//
// The measured budget is <= 2% on the hottest per-invocation benchmark
// (Table 2 compiled eviction); see docs/observability.md for the
// recorded numbers and the ablation rows that keep them honest.
package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graftlab/internal/mem"
)

// enabled gates the metrics subsystem; off by default so library users
// and the test suite pay nothing unless they opt in.
var enabled atomic.Bool

// SetEnabled turns per-graft invocation metrics on or off. Grafts loaded
// while metrics are off are not instrumented (the fast path is decided
// at load time), so flip this before tech.Load.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether invocation metrics are being recorded.
func Enabled() bool { return enabled.Load() }

// Disabled is the fast-path guard instrumentation sites check: one
// atomic load, true by default.
func Disabled() bool { return !enabled.Load() }

// numTrapKinds sizes the per-kind trap counters; mem.TrapKind values are
// small consecutive integers.
const numTrapKinds = int(mem.TrapUnreachable) + 1

// defaultSampleInterval times every 256th invocation. Two clock reads
// cost ~100ns on a virtualized host; amortized over 256 invocations
// that is well under a nanosecond, invisible even against a ~200ns
// compiled eviction, while a paper-scale run (tens of thousands of
// invocations per graft) still collects ~100+ histogram samples.
const defaultSampleInterval = 256

// sampleMask is the current latency sampling mask (interval-1, interval
// a power of two). Captured by each GraftMetrics at Register time.
var sampleMask atomic.Uint64

func init() { sampleMask.Store(defaultSampleInterval - 1) }

// SetSampleInterval sets how often an invocation's latency is timed: 1
// times every call, n times every n-th (rounded down to a power of two).
// It affects grafts registered after the call; zero and negative
// intervals are rejected with an error and leave the current interval
// unchanged.
//
// The interval trades accuracy for overhead. Timing costs two clock
// reads (~100ns virtualized), so interval 1 is exact but can dominate a
// ~200ns compiled invocation, while the default 256 amortizes the clock
// cost below a nanosecond at the price of resolution: a latency spike
// confined to fewer than ~interval consecutive invocations may fall
// between samples entirely, and quantiles need on the order of 100
// samples (interval × 100 invocations) before they stabilize. Batched
// counters also flush at sampling points, so live snapshots lag a hot
// loop by up to one interval.
func SetSampleInterval(n int) error {
	if n < 1 {
		return fmt.Errorf("telemetry: sample interval must be >= 1, got %d", n)
	}
	// Round down to a power of two so sampling is a mask, not a divide.
	p := 1
	for p*2 <= n {
		p *= 2
	}
	sampleMask.Store(uint64(p - 1))
	return nil
}

// GraftMetrics accumulates one (graft, technology) pair's runtime
// behaviour. All counters are atomic: instrumented grafts may be invoked
// from any goroutine, and snapshot readers never lock writers out.
type GraftMetrics struct {
	// GraftName and Tech identify the pair; fixed at Register time.
	GraftName string
	Tech      string

	invocations atomic.Uint64
	errors      atomic.Uint64 // non-trap invocation errors
	traps       [numTrapKinds]atomic.Uint64
	fuel        atomic.Int64 // cumulative fuel consumed (metered engines)

	latency Histogram
	mask    uint64 // latency sampling mask (interval-1)

	// win is the sliding-window plane (window.go): every flush point
	// mirrors its counts into the current time bucket so windowed
	// snapshots, burn-rate SLOs, and the /metrics surface see recent
	// activity separately from the cumulative counters above.
	win *Windows

	// note is a free-form state label the lifecycle layer stamps on
	// versioned keys ("canary", "incumbent", "demoted", …) so the export
	// surface and graftmon can flag deployment state without reaching
	// into the lifecycle package.
	note atomic.Pointer[string]

	// quarantined is set by the watchdog when the pair breaches its SLO
	// with quarantine enabled; tech.Load refuses quarantined pairs and
	// live instrumented wrappers deny further invocations at their next
	// sampling point.
	quarantined atomic.Bool
}

// Inc counts one invocation and returns the new total (the caller uses
// it to decide whether this invocation is latency-sampled).
func (m *GraftMetrics) Inc() uint64 { return m.invocations.Add(1) }

// Mask returns the sampling mask (interval-1) captured at Register time.
// Single-writer callers batch their invocation counting against it and
// flush with AddInvocations — a locked add per invocation alone costs
// ~6ns, which would blow the <=2% budget on ~250ns compiled grafts.
func (m *GraftMetrics) Mask() uint64 { return m.mask }

// AddInvocations flushes a batch of invocations counted locally by a
// single-writer instrumentation path. Snapshot therefore lags a live
// call path by up to the sampling interval; the count is exact once the
// path reaches its next sampling point. The flush also lands the batch
// in the current window bucket — windowed views inherit the same
// at-most-one-interval lag.
func (m *GraftMetrics) AddInvocations(n uint64) {
	m.invocations.Add(n)
	m.win.addInvocations(n)
}

// Sampled reports whether the n-th invocation should be timed.
func (m *GraftMetrics) Sampled(n uint64) bool { return n&m.mask == 0 }

// RecordLatency feeds one timed invocation into the cumulative and
// current-window histograms.
func (m *GraftMetrics) RecordLatency(d time.Duration) {
	m.latency.Record(d)
	m.win.recordLatency(d)
}

// AddFuel accumulates fuel consumed by one invocation.
func (m *GraftMetrics) AddFuel(n int64) {
	if n > 0 {
		m.fuel.Add(n)
		m.win.addFuel(n)
	}
}

// RecordError classifies a failed invocation: traps count per kind
// (fuel exhaustion is the preemption counter), everything else is an
// invocation error.
func (m *GraftMetrics) RecordError(err error) {
	var t *mem.Trap
	if errors.As(err, &t) && int(t.Kind) < numTrapKinds {
		m.traps[t.Kind].Add(1)
		m.win.recordTrap(t.Kind == mem.TrapFuel)
		return
	}
	m.errors.Add(1)
	m.win.recordError()
}

// SetNote stamps a free-form state label on the key ("canary",
// "incumbent", …); empty clears it. See GraftMetrics.note.
func (m *GraftMetrics) SetNote(s string) {
	if s == "" {
		m.note.Store(nil)
		return
	}
	m.note.Store(&s)
}

// Note reports the current state label, empty when unset.
func (m *GraftMetrics) Note() string {
	if p := m.note.Load(); p != nil {
		return *p
	}
	return ""
}

// Invocations reports the total invocation count.
func (m *GraftMetrics) Invocations() uint64 { return m.invocations.Load() }

// TrapCount reports how many invocations trapped with kind k.
func (m *GraftMetrics) TrapCount(k mem.TrapKind) uint64 {
	if int(k) >= numTrapKinds {
		return 0
	}
	return m.traps[k].Load()
}

// FuelPreemptions reports how many invocations were preempted by fuel
// exhaustion (the §4 "extension that runs too long" case).
func (m *GraftMetrics) FuelPreemptions() uint64 { return m.traps[mem.TrapFuel].Load() }

// FuelConsumed reports cumulative fuel charged across all invocations.
func (m *GraftMetrics) FuelConsumed() int64 { return m.fuel.Load() }

// Latency exposes the sampled-latency histogram.
func (m *GraftMetrics) Latency() *Histogram { return &m.latency }

// Quarantine marks the pair as denied at dispatch (see Watchdog).
func (m *GraftMetrics) Quarantine() { m.quarantined.Store(true) }

// Unquarantine lifts a quarantine.
func (m *GraftMetrics) Unquarantine() { m.quarantined.Store(false) }

// Quarantined reports whether the pair is currently denied.
func (m *GraftMetrics) Quarantined() bool { return m.quarantined.Load() }

// ErrQuarantined is wrapped by dispatch-time denials of quarantined
// grafts.
var ErrQuarantined = errors.New("telemetry: graft quarantined by watchdog")

// Quarantined reports whether the (graft, technology) pair is on the
// watchdog's deny-list. Pairs never registered are not quarantined.
func Quarantined(graft, tech string) bool {
	key := graft + "\x00" + tech
	registry.mu.Lock()
	m := registry.byKey[key]
	registry.mu.Unlock()
	return m != nil && m.Quarantined()
}

// ClearQuarantines lifts every quarantine without touching counters.
func ClearQuarantines() {
	registry.mu.Lock()
	for _, m := range registry.byKey {
		m.quarantined.Store(false)
	}
	registry.mu.Unlock()
}

// GraftSnapshot is the JSON-friendly view of one GraftMetrics; durations
// are integer nanoseconds like every other duration the repo exports.
type GraftSnapshot struct {
	Graft           string            `json:"graft"`
	Tech            string            `json:"tech"`
	Invocations     uint64            `json:"invocations"`
	Errors          uint64            `json:"errors,omitempty"`
	Traps           map[string]uint64 `json:"traps,omitempty"`
	FuelConsumed    int64             `json:"fuel_consumed,omitempty"`
	FuelPreemptions uint64            `json:"fuel_preemptions,omitempty"`
	LatencySamples  uint64            `json:"latency_samples,omitempty"`
	LatencyP50      time.Duration     `json:"latency_p50,omitempty"`
	LatencyP95      time.Duration     `json:"latency_p95,omitempty"`
	LatencyP99      time.Duration     `json:"latency_p99,omitempty"`
	LatencyMax      time.Duration     `json:"latency_max,omitempty"`
	Quarantined     bool              `json:"quarantined,omitempty"`
	Note            string            `json:"note,omitempty"`
}

// Snapshot copies the counters into an exportable form.
func (m *GraftMetrics) Snapshot() GraftSnapshot {
	s := GraftSnapshot{
		Graft:           m.GraftName,
		Tech:            m.Tech,
		Invocations:     m.invocations.Load(),
		Errors:          m.errors.Load(),
		FuelConsumed:    m.fuel.Load(),
		FuelPreemptions: m.FuelPreemptions(),
		LatencySamples:  m.latency.Count(),
		Quarantined:     m.quarantined.Load(),
		Note:            m.Note(),
	}
	for k := 0; k < numTrapKinds; k++ {
		if n := m.traps[k].Load(); n > 0 {
			if s.Traps == nil {
				s.Traps = make(map[string]uint64)
			}
			s.Traps[mem.TrapKind(k).String()] = n
		}
	}
	if s.LatencySamples > 0 {
		s.LatencyP50 = m.latency.Quantile(0.50)
		s.LatencyP95 = m.latency.Quantile(0.95)
		s.LatencyP99 = m.latency.Quantile(0.99)
		s.LatencyMax = m.latency.Max()
	}
	return s
}

// registry holds every registered GraftMetrics, keyed by graft/tech.
var registry struct {
	mu    sync.Mutex
	byKey map[string]*GraftMetrics
}

// Register returns the metrics for the (graft, technology) pair,
// creating them on first use. Repeated loads of the same pair share one
// accumulator, so counters survive graft reloads — the bpftool-style
// "what has this program done since boot" view.
func Register(graft, tech string) *GraftMetrics {
	key := graft + "\x00" + tech
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.byKey == nil {
		registry.byKey = make(map[string]*GraftMetrics)
	}
	if m, ok := registry.byKey[key]; ok {
		return m
	}
	m := &GraftMetrics{GraftName: graft, Tech: tech, mask: sampleMask.Load(), win: newWindows()}
	registry.byKey[key] = m
	return m
}

// Metrics returns every registered accumulator, sorted by graft then
// technology for stable output.
func Metrics() []*GraftMetrics {
	registry.mu.Lock()
	out := make([]*GraftMetrics, 0, len(registry.byKey))
	for _, m := range registry.byKey {
		out = append(out, m)
	}
	registry.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].GraftName != out[j].GraftName {
			return out[i].GraftName < out[j].GraftName
		}
		return out[i].Tech < out[j].Tech
	})
	return out
}

// SnapshotAll exports every registered accumulator with at least one
// invocation.
func SnapshotAll() []GraftSnapshot {
	ms := Metrics()
	out := make([]GraftSnapshot, 0, len(ms))
	for _, m := range ms {
		if m.Invocations() == 0 {
			continue
		}
		out = append(out, m.Snapshot())
	}
	return out
}

// ResetMetrics drops every registered accumulator (primarily for tests
// and for ablation runs that compare configurations back to back).
func ResetMetrics() {
	registry.mu.Lock()
	registry.byKey = nil
	registry.mu.Unlock()
}

// String renders a one-line summary, the form kernelsim's counters view
// prints per graft.
func (s GraftSnapshot) String() string {
	return fmt.Sprintf("%s/%s: %d invocations, %d traps, p99=%s",
		s.Graft, s.Tech, s.Invocations, sumTraps(s.Traps), s.LatencyP99)
}

func sumTraps(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}
