package telemetry

import "sync/atomic"

// cacheLine is the padding unit for sharded counters. 64 bytes on every
// platform this repo targets; being wrong only costs a little false
// sharing, never correctness.
const cacheLine = 64

// paddedUint64 is one counter cell on its own cache line, so two shards
// incrementing "the same" counter never ping-pong a line between cores.
type paddedUint64 struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// ShardedCounter is a striped uint64 counter for hot paths that already
// know which shard they are on (the sharded pager's hit/fault/eviction
// counts). A single shared atomic serializes every writer on one cache
// line; striping by shard makes each add an uncontended atomic on a
// private line — the difference between instrumentation costing ~1% and
// ~20% under multicore contention (BenchmarkShardedCounter records the
// gap). Reads sum the cells, so Sum is O(shards) and monotonic but not
// a linearizable snapshot — exactly the contract kernel statistics have
// always had.
type ShardedCounter struct {
	cells []paddedUint64
}

// NewShardedCounter allocates a counter with n stripes (minimum 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{cells: make([]paddedUint64, n)}
}

// Add increments stripe shard by delta. shard is reduced modulo the
// stripe count, so callers may pass any non-negative shard index.
func (c *ShardedCounter) Add(shard int, delta uint64) {
	c.cells[shard%len(c.cells)].v.Add(delta)
}

// Sum totals every stripe.
func (c *ShardedCounter) Sum() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Reset zeroes every stripe. Not atomic with respect to concurrent
// adders; quiesce writers first, as with every stats reset in the repo.
func (c *ShardedCounter) Reset() {
	for i := range c.cells {
		c.cells[i].v.Store(0)
	}
}
