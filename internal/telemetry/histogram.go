package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers the full uint64 nanosecond range: bucket i holds
// durations whose nanosecond count has bit length i, i.e. [2^(i-1), 2^i).
// Bucket 0 holds zero-length samples.
const numBuckets = 64

// Histogram is a log2-bucketed latency histogram. Recording is one
// atomic add per sample (plus a CAS loop for a new maximum, which is
// rare once warm), so it is cheap enough to live on invocation paths.
// Quantiles interpolate linearly inside the matched power-of-two bucket,
// giving tail estimates within ~2x worst case and far better in
// practice, which is what a "did p99 blow up" view needs.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))%numBuckets].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count reports how many samples were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max reports the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean reports the arithmetic mean of all samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Std estimates the sample standard deviation from the bucket counts:
// each bucket contributes its midpoint, deviations are taken against
// the exact mean (the sum is tracked exactly). Within-bucket spread is
// lost to the log2 quantization, so the estimate is coarse the same way
// Quantile is — good enough for "is the canary's latency distribution
// significantly wider/slower" effect-size tests, not for metrology.
// Zero with fewer than two samples.
func (h *Histogram) Std() time.Duration {
	n := h.count.Load()
	if n < 2 {
		return 0
	}
	mean := float64(h.sum.Load()) / float64(n)
	var ss float64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 && i < 63 {
			lo = int64(1) << (i - 1)
		}
		hi := lo
		if i > 0 && i < 63 {
			hi = int64(1) << i
		}
		mid := float64(lo+hi) / 2
		d := mid - mean
		ss += float64(c) * d * d
	}
	v := ss / float64(n-1)
	if v <= 0 {
		return 0
	}
	return time.Duration(int64(math.Sqrt(v)))
}

// Merge folds other's samples into h — the snapshot-combining path for
// views that aggregate one graft across shards or pool workers. Both
// histograms may be live; each bucket transfers atomically, so the
// merged result is a consistent-enough union for quantile reads (exact
// when other is quiescent).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	for i := 0; i < numBuckets; i++ {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		old := h.max.Load()
		if om <= old || h.max.CompareAndSwap(old, om) {
			break
		}
	}
}

// Reset zeroes every bucket and statistic. Only safe when no writer is
// mid-Record — the window plane calls it inside the rotation CAS, where
// concurrent writers are parked on the resetting sentinel.
func (h *Histogram) Reset() {
	for i := 0; i < numBuckets; i++ {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Clone copies h bucket by bucket. Concurrent with writers the copy is
// consistent-enough, like Merge; quiescent it is exact.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{}
	for i := 0; i < numBuckets; i++ {
		c.buckets[i].Store(h.buckets[i].Load())
	}
	c.count.Store(h.count.Load())
	c.sum.Store(h.sum.Load())
	c.max.Store(h.max.Load())
	return c
}

// Sub removes older's samples from h bucket-wise, saturating at zero —
// the inverse of Merge for deriving a window delta from two cumulative
// snapshots (newer.Sub(older) leaves the samples recorded between the
// two). Saturation makes the operation safe on snapshots taken racily:
// a bucket can never go negative, it just bottoms out. The recorded
// maximum is NOT subtractable — the largest sample of the delta window
// is unknowable from bucket counts — so h keeps its own max, a
// documented overestimate that Quantile's clamp still respects.
func (h *Histogram) Sub(older *Histogram) {
	if older == nil || older == h {
		if older == h {
			h.Reset()
		}
		return
	}
	sat := func(a, b uint64) uint64 {
		if b > a {
			return 0
		}
		return a - b
	}
	for i := 0; i < numBuckets; i++ {
		if n := older.buckets[i].Load(); n > 0 {
			h.buckets[i].Store(sat(h.buckets[i].Load(), n))
		}
	}
	h.count.Store(sat(h.count.Load(), older.count.Load()))
	hs, os := h.sum.Load(), older.sum.Load()
	if os > hs {
		os = hs
	}
	h.sum.Store(hs - os)
}

// Quantile estimates the q-th quantile (q in [0,1]) by nearest rank over
// the buckets with linear interpolation inside the matched bucket. The
// top estimate is clamped to the recorded maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n > rank {
			if i >= 63 {
				return h.Max() // 1<<63 overflows int64; nothing real lands here
			}
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << (i - 1)
			}
			hi := int64(1) << i
			// Position of the rank inside this bucket, in [0,1).
			frac := float64(rank-cum) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			if m := h.max.Load(); v > m {
				v = m
			}
			return time.Duration(v)
		}
		cum += n
	}
	return h.Max()
}
