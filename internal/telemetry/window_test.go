package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func newTestWindows(width time.Duration, buckets int, clk *fakeClock) *Windows {
	return &Windows{
		width: int64(width),
		ring:  make([]windowBucket, buckets),
		now:   clk.now,
	}
}

func TestSetWindowConfigValidates(t *testing.T) {
	for _, bad := range []WindowConfig{
		{Width: 0, Buckets: 8},
		{Width: -time.Second, Buckets: 8},
		{Width: time.Second, Buckets: 1},
		{Width: time.Second, Buckets: 0},
	} {
		if err := SetWindowConfig(bad); err == nil {
			t.Errorf("SetWindowConfig(%+v) accepted", bad)
		}
	}
	prev := WindowConfig{
		Width:   time.Duration(windowWidth.Load()),
		Buckets: int(windowBuckets.Load()),
	}
	if err := SetWindowConfig(WindowConfig{Width: time.Second, Buckets: 4}); err != nil {
		t.Fatal(err)
	}
	if err := SetWindowConfig(prev); err != nil {
		t.Fatal(err)
	}
}

func TestWindowEmptyAndIdleBuckets(t *testing.T) {
	clk := newFakeClock(time.Hour)
	w := newTestWindows(time.Second, 8, clk)

	// A never-written ring snapshots to zeroes, not garbage.
	s := w.snapshot(5 * time.Second)
	if s.Invocations != 0 || s.Rate != 0 || s.P99 != 0 {
		t.Fatalf("empty ring snapshot = %+v", s)
	}
	// Zero and negative windows are inert.
	if s := w.snapshot(0); s.Invocations != 0 || s.Covered != 0 {
		t.Errorf("zero window snapshot = %+v", s)
	}

	// Activity, then idle gaps: only the active slices contribute.
	w.addInvocations(10)
	clk.advance(3 * time.Second) // two empty slices between activity and now
	w.addInvocations(5)
	s = w.snapshot(5 * time.Second)
	if s.Invocations != 15 {
		t.Fatalf("snapshot across idle gaps = %d invocations, want 15", s.Invocations)
	}
	// A window too short to reach the earlier slice excludes it.
	if s := w.snapshot(2 * time.Second); s.Invocations != 5 {
		t.Fatalf("short window = %d invocations, want 5", s.Invocations)
	}
}

func TestWindowRotationRecyclesSlots(t *testing.T) {
	clk := newFakeClock(time.Hour)
	w := newTestWindows(time.Second, 4, clk)

	// Fill every slot, then wrap: the recycled slot must forget its old
	// slice, and a snapshot of the full span must only see the ring's
	// retained history.
	for i := 0; i < 6; i++ {
		w.addInvocations(1)
		clk.advance(time.Second)
	}
	// 6 slices written into 4 slots: slices 0 and 1 were recycled. The
	// clock now sits at the start of slice 6 (empty), so the span covers
	// slices 3..6.
	s := w.snapshot(w.Span())
	if s.Invocations != 3 {
		t.Fatalf("wrapped ring snapshot = %d invocations, want 3 (slices 3..5)", s.Invocations)
	}
	// Asking for more than the span clamps rather than double-counting.
	if s := w.snapshot(time.Hour); s.Invocations != 3 {
		t.Fatalf("over-span snapshot = %d invocations, want 3", s.Invocations)
	}
}

func TestWindowSnapshotSpanningRotation(t *testing.T) {
	clk := newFakeClock(time.Hour)
	w := newTestWindows(time.Second, 8, clk)

	w.addInvocations(7)
	w.recordLatency(100 * time.Microsecond)
	clk.advance(1500 * time.Millisecond) // crosses one bucket boundary
	w.addInvocations(3)
	w.recordLatency(200 * time.Microsecond)

	// A 2s window spans the rotation: both slices contribute, and
	// Covered reflects one complete slice plus the current partial one.
	s := w.snapshot(2 * time.Second)
	if s.Invocations != 10 || s.LatencySamples != 2 {
		t.Fatalf("spanning snapshot = %+v", s)
	}
	want := time.Second + 500*time.Millisecond
	if s.Covered != want {
		t.Errorf("Covered = %v, want %v", s.Covered, want)
	}
	if s.Rate <= 0 {
		t.Errorf("Rate = %v, want positive", s.Rate)
	}
}

// TestWindowClockStall pins the monotonic-stall contract: when the
// clock does not advance between writes and snapshots, rates must stay
// finite and non-negative — never a divide-by-zero, never negative.
func TestWindowClockStall(t *testing.T) {
	// Stall exactly on a bucket boundary, the worst case: now%width == 0
	// so the partial-bucket term contributes nothing.
	clk := newFakeClock(time.Hour)
	w := newTestWindows(time.Second, 8, clk)
	w.addInvocations(100)
	w.addFuel(1000)

	for _, d := range []time.Duration{time.Second, 500 * time.Millisecond} {
		s := w.snapshot(d)
		if s.Invocations != 100 {
			t.Fatalf("stalled snapshot(%v) = %d invocations, want 100", d, s.Invocations)
		}
		if s.Covered < 1 {
			t.Errorf("snapshot(%v).Covered = %v, want >= 1ns", d, s.Covered)
		}
		if s.Rate < 0 || s.FuelPerSec < 0 {
			t.Errorf("snapshot(%v) produced negative rates: %+v", d, s)
		}
	}
}

// TestWindowConcurrentRecordDuringRotation hammers the rotation CAS:
// writers race across bucket boundaries while the clock advances, and
// no increment may be lost to a concurrent zero() — the full-span
// snapshot at the end must conserve the total.
func TestWindowConcurrentRecordDuringRotation(t *testing.T) {
	clk := newFakeClock(time.Hour)
	w := newTestWindows(time.Millisecond, 64, clk)

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				w.addInvocations(1)
				if i%64 == 0 {
					// Push the clock forward so rotations happen while
					// other writers are mid-record.
					clk.advance(time.Millisecond / 4)
				}
			}
		}()
	}
	wg.Wait()

	// Total slices advanced: writers*perWriter/64 quarter-widths ≈ 156
	// slices — more than the 64-slot ring, so some history was recycled.
	// Conservation is therefore checked against the retained span only:
	// every increment recorded into a slice still in the ring must
	// survive. Recompute the span's total by walking live buckets.
	var retained uint64
	cur := clk.now() / w.width
	for i := range w.ring {
		b := &w.ring[i]
		e := b.epoch.Load()
		if e <= 0 {
			continue
		}
		if cur-(e-1) < int64(len(w.ring)) {
			retained += b.invocations.Load()
		}
	}
	s := w.snapshot(w.Span())
	if s.Invocations != retained {
		t.Fatalf("snapshot = %d invocations, live buckets hold %d", s.Invocations, retained)
	}
	if retained == 0 {
		t.Fatal("no invocations retained; rotation recycled everything (test geometry broken)")
	}
}

// TestWindowWriterBehindRotation pins the stale-writer rule: a writer
// whose clock reading lost a race with a newer rotation records into
// the newer bucket instead of resurrecting the old epoch.
func TestWindowWriterBehindRotation(t *testing.T) {
	clk := newFakeClock(time.Hour)
	w := newTestWindows(time.Second, 4, clk)

	w.addInvocations(1) // slice 0
	// Simulate a racing rotation: another writer at slice 4 recycles
	// slot 0 (4 % 4 == 0).
	clk.advance(4 * time.Second)
	w.addInvocations(1) // slice 4, same slot, rotates it

	// A stale writer with a slice-0 clock reading must not clobber the
	// slot's newer epoch.
	clk.ns.Store(int64(time.Hour)) // rewind to slice 0
	b := w.bucket()
	newer := (int64(time.Hour)+4*int64(time.Second))/w.width + 1
	if got := b.epoch.Load(); got != newer {
		t.Fatalf("stale writer rotated the slot back: epoch = %d, want %d", got, newer)
	}
	b.invocations.Add(1)
	clk.ns.Store(int64(time.Hour + 4*time.Second))
	if s := w.snapshot(time.Second); s.Invocations != 2 {
		t.Fatalf("current slice = %d invocations, want 2 (rotated write + stale write)", s.Invocations)
	}
}

func TestGraftMetricsWindow(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	clk := newFakeClock(time.Hour)
	m := registerWindowed(t, "winview", "bytecode",
		WindowConfig{Width: time.Second, Buckets: 16}, clk)
	m.SetNote("canary")
	m.Quarantine()
	m.AddInvocations(200)
	m.AddFuel(4000)
	m.RecordLatency(time.Millisecond)
	m.RecordError(fuelTrap())
	clk.advance(500 * time.Millisecond)

	s := m.Window(2 * time.Second)
	if s.Graft != "winview" || s.Tech != "bytecode" {
		t.Fatalf("identity = %s/%s", s.Graft, s.Tech)
	}
	if !s.Quarantined || s.Note != "canary" {
		t.Errorf("state flags = quarantined=%v note=%q", s.Quarantined, s.Note)
	}
	if s.Invocations != 200 || s.Traps != 1 || s.Preempts != 1 || s.Fuel != 4000 {
		t.Errorf("counters = %+v", s)
	}
	if s.PreemptRate != 1.0/200 {
		t.Errorf("PreemptRate = %v", s.PreemptRate)
	}
	if s.P99 == 0 || s.Max < time.Millisecond/2 {
		t.Errorf("latency stats = p99=%v max=%v", s.P99, s.Max)
	}
	if m.WindowSpan() != 16*time.Second {
		t.Errorf("WindowSpan = %v", m.WindowSpan())
	}

	// The snapshot is JSON-exportable with nanosecond durations.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["graft"] != "winview" || back["invocations"] != float64(200) {
		t.Errorf("JSON round-trip = %v", back)
	}
}

func TestWindowAll(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	clk := newFakeClock(time.Hour)
	active := registerWindowed(t, "active", "bytecode",
		WindowConfig{Width: time.Second, Buckets: 8}, clk)
	Register("silent", "script") // zero lifetime + zero window: omitted
	idle := registerWindowed(t, "idle", "native",
		WindowConfig{Width: time.Second, Buckets: 8}, clk)

	active.AddInvocations(10)
	idle.AddInvocations(10)       // lifetime activity...
	clk.advance(20 * time.Second) // ...that ages out of idle's ring
	active.AddInvocations(5)

	all := WindowAll(2 * time.Second)
	if len(all) != 2 {
		t.Fatalf("WindowAll returned %d keys, want 2: %+v", len(all), all)
	}
	// Sorted like Metrics: by graft then tech.
	if all[0].Graft != "active" || all[1].Graft != "idle" {
		t.Fatalf("order = %s, %s", all[0].Graft, all[1].Graft)
	}
	if all[0].Invocations != 5 {
		t.Errorf("active window = %d invocations, want 5", all[0].Invocations)
	}
	// A key with lifetime history but an empty window still appears —
	// a drained graft goes quiet, it does not vanish.
	if all[1].Invocations != 0 {
		t.Errorf("idle window = %d invocations, want 0", all[1].Invocations)
	}
}
