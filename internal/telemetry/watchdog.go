package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Runaway-graft watchdog: the §4 "extension that runs too long" story
// made operational. The metered engines already bound each invocation
// with fuel; the watchdog watches the aggregate signals the rest of the
// package collects — fuel-preemption counters, sampled latency
// quantiles, mean fuel per invocation, and (when the profiler is on)
// the hottest sampled site — and flags any (graft, technology) pair
// breaching a configured SLO. With Quarantine set, a flagged pair is
// also put on the deny-list dispatch consults: tech.Load refuses it and
// live instrumented wrappers start failing invocations with
// ErrQuarantined at their next sampling point.

// SLO configures the watchdog's per-pair thresholds. Zero-valued
// thresholds are "no limit"; a pair must exceed at least one non-zero
// threshold to be flagged.
type SLO struct {
	// MaxP99 flags pairs whose sampled p99 latency exceeds it.
	MaxP99 time.Duration
	// MaxMeanFuel flags pairs whose mean fuel per invocation exceeds it.
	MaxMeanFuel int64
	// MaxPreemptRate flags pairs whose fuel-preemption fraction
	// (preemptions / invocations) exceeds it, e.g. 0.5.
	MaxPreemptRate float64
	// MinInvocations gates flagging until a pair has enough invocations
	// for its statistics to mean anything (default 16 when zero).
	MinInvocations uint64
	// Quarantine, when set, puts flagged pairs on the dispatch deny-list
	// in addition to reporting them.
	Quarantine bool
}

// Violation describes one flagged pair at the moment it breached.
type Violation struct {
	Graft, Tech string
	Reason      string
	Invocations uint64
	P99         time.Duration
	MeanFuel    int64
	PreemptRate float64
	// HotSite is the pair's heaviest profiled site ("func:line"), when
	// the sampling profiler was running; empty otherwise.
	HotSite string
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s/%s: %s (p99=%v meanFuel=%d preempt=%.0f%% over %d invocations)",
		v.Graft, v.Tech, v.Reason, v.P99, v.MeanFuel, 100*v.PreemptRate, v.Invocations)
	if v.HotSite != "" {
		s += " hot=" + v.HotSite
	}
	return s
}

// Watchdog periodically (or on demand, via Check) scans the metrics
// registry against an SLO.
type Watchdog struct {
	slo SLO

	mu          sync.Mutex
	flagged     map[string]Violation
	onViolation func(Violation)
	stop        chan struct{}
	done        chan struct{}
}

// NewWatchdog builds a watchdog over the global metrics registry.
func NewWatchdog(slo SLO) *Watchdog {
	if slo.MinInvocations == 0 {
		slo.MinInvocations = 16
	}
	return &Watchdog{slo: slo, flagged: make(map[string]Violation)}
}

// OnViolation registers fn to be called once per freshly flagged pair,
// synchronously from the Check that flagged it (so a periodic Start
// loop delivers violations from its scan goroutine). This is the
// reaction arm production watchdogs hang enforcement off — the
// lifecycle package uses it to demote a breaching canary and restore
// the incumbent. At most one callback is registered; nil removes it.
func (w *Watchdog) OnViolation(fn func(Violation)) {
	w.mu.Lock()
	w.onViolation = fn
	w.mu.Unlock()
}

// Check scans every registered pair once and returns the pairs newly
// flagged by this scan. Already-flagged pairs are not re-reported (or
// re-quarantined) — a runaway is flagged exactly once.
func (w *Watchdog) Check() []Violation {
	var fresh []Violation
	for _, m := range Metrics() {
		inv := m.Invocations()
		if inv < w.slo.MinInvocations {
			continue
		}
		key := m.GraftName + "\x00" + m.Tech
		w.mu.Lock()
		_, seen := w.flagged[key]
		w.mu.Unlock()
		if seen {
			continue
		}
		v := Violation{
			Graft:       m.GraftName,
			Tech:        m.Tech,
			Invocations: inv,
			P99:         m.Latency().Quantile(0.99),
			MeanFuel:    m.FuelConsumed() / int64(inv),
			PreemptRate: float64(m.FuelPreemptions()) / float64(inv),
		}
		var reasons []string
		if w.slo.MaxP99 > 0 && v.P99 > w.slo.MaxP99 {
			reasons = append(reasons, fmt.Sprintf("p99 %v > SLO %v", v.P99, w.slo.MaxP99))
		}
		if w.slo.MaxMeanFuel > 0 && v.MeanFuel > w.slo.MaxMeanFuel {
			reasons = append(reasons, fmt.Sprintf("mean fuel %d > SLO %d", v.MeanFuel, w.slo.MaxMeanFuel))
		}
		if w.slo.MaxPreemptRate > 0 && v.PreemptRate > w.slo.MaxPreemptRate {
			reasons = append(reasons, fmt.Sprintf("preemption rate %.0f%% > SLO %.0f%%",
				100*v.PreemptRate, 100*w.slo.MaxPreemptRate))
		}
		if len(reasons) == 0 {
			continue
		}
		sort.Strings(reasons)
		v.Reason = reasons[0]
		for _, r := range reasons[1:] {
			v.Reason += "; " + r
		}
		v.HotSite = hotSite(m.GraftName, m.Tech)
		if w.slo.Quarantine {
			m.Quarantine()
		}
		w.mu.Lock()
		w.flagged[key] = v
		w.mu.Unlock()
		fresh = append(fresh, v)
	}
	if len(fresh) > 0 {
		w.mu.Lock()
		fn := w.onViolation
		w.mu.Unlock()
		if fn != nil {
			for _, v := range fresh {
				fn(v)
			}
		}
	}
	return fresh
}

// hotSite returns the heaviest profiled site for the pair, when the
// profiler is running.
func hotSite(graft, tech string) string {
	p := CurrentProfile()
	if p == nil {
		return ""
	}
	for _, s := range p.Samples() { // heaviest first
		if s.Graft == graft && s.Tech == tech {
			if s.Line > 0 {
				return fmt.Sprintf("%s:%d", s.Func, s.Line)
			}
			return s.Func
		}
	}
	return ""
}

// Violations returns everything flagged so far, sorted by pair.
func (w *Watchdog) Violations() []Violation {
	w.mu.Lock()
	out := make([]Violation, 0, len(w.flagged))
	for _, v := range w.flagged {
		out = append(out, v)
	}
	w.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graft != out[j].Graft {
			return out[i].Graft < out[j].Graft
		}
		return out[i].Tech < out[j].Tech
	})
	return out
}

// Start scans every interval until Stop; the interval is the SLO
// window — a runaway is flagged (and quarantined) within one interval
// of its statistics crossing the threshold.
func (w *Watchdog) Start(interval time.Duration) {
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	stop, done := w.stop, w.done
	w.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.Check()
			}
		}
	}()
}

// Stop halts the periodic scan and waits for it to exit.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
