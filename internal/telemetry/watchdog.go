package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Runaway-graft watchdog: the §4 "extension that runs too long" story
// made operational. The metered engines already bound each invocation
// with fuel; the watchdog watches the windowed signals the rest of the
// package collects — fuel-preemption ratios, sampled latency
// quantiles, mean fuel per invocation over a sliding window, and (when
// the profiler is on) the hottest sampled site — and flags any (graft,
// technology) pair breaching a configured SLO.
//
// Evaluation is the SRE multi-window burn-rate idiom, not a lifetime
// aggregate: a pair is flagged only when BOTH a fast window (default
// 10s) and a slow window (default 5m) breach the same SLO. The fast
// window makes detection prompt — a fresh regression is caught within
// one scan of it crossing the threshold, no matter how much healthy
// lifetime history precedes it (a lifetime-aggregate check would stay
// diluted below threshold for hours). The slow window supplies
// confirmation — a one-bucket blip that does not sustain never flags.
// And because windows forget, the watchdog can observe recovery: with
// RecoveryChecks set, a flagged pair whose fast window comes back
// clean for that many consecutive scans is unflagged and (if it was
// quarantined) automatically unquarantined, closing the breach →
// quarantine → drain → probation → restore loop without operator
// action. With Quarantine set, a flagged pair is put on the deny-list
// dispatch consults: tech.Load refuses it and live instrumented
// wrappers start failing invocations with ErrQuarantined at their next
// sampling point.

// SLO configures the watchdog's per-pair thresholds. Zero-valued
// thresholds are "no limit"; a pair must exceed at least one non-zero
// threshold — in both burn-rate windows — to be flagged.
type SLO struct {
	// MaxP99 flags pairs whose windowed sampled p99 latency exceeds it.
	MaxP99 time.Duration
	// MaxMeanFuel flags pairs whose windowed mean fuel per invocation
	// exceeds it.
	MaxMeanFuel int64
	// MaxPreemptRate flags pairs whose windowed fuel-preemption fraction
	// (preemptions / invocations) exceeds it, e.g. 0.5.
	MaxPreemptRate float64
	// MinInvocations gates flagging until the FAST window holds enough
	// invocations for its statistics to mean anything (default 16 when
	// zero). A pair that goes idle drops below the gate and cannot be
	// freshly flagged on stale history.
	MinInvocations uint64
	// FastWindow is the burn-rate detection window (default 10s). Both
	// windows are clamped to the span the bucket ring retains.
	FastWindow time.Duration
	// SlowWindow is the burn-rate confirmation window (default 5m).
	SlowWindow time.Duration
	// RecoveryChecks, when positive, arms automatic recovery: a flagged
	// pair whose fast window shows no breach for this many consecutive
	// Checks is unflagged and unquarantined. Zero keeps the legacy
	// flag-once behaviour (recovery only via ClearQuarantines).
	RecoveryChecks int
	// Quarantine, when set, puts flagged pairs on the dispatch deny-list
	// in addition to reporting them.
	Quarantine bool
}

// Violation describes one flagged pair at the moment it breached. The
// statistics are windowed: Invocations, P99, MeanFuel, PreemptRate,
// and Rate describe the fast window that tripped the alert, not the
// pair's lifetime.
type Violation struct {
	Graft, Tech string
	Reason      string
	// Window is the fast window the statistics below cover.
	Window      time.Duration
	Invocations uint64
	Rate        float64 // invocations/sec over the fast window
	P99         time.Duration
	MeanFuel    int64
	PreemptRate float64
	// SlowReason is the slow window's confirming breach.
	SlowReason string
	// HotSite is the pair's heaviest profiled site ("func:line"), when
	// the sampling profiler was running; empty otherwise.
	HotSite string
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s/%s: %s (p99=%v meanFuel=%d preempt=%.0f%% over %d invocations in %v)",
		v.Graft, v.Tech, v.Reason, v.P99, v.MeanFuel, 100*v.PreemptRate, v.Invocations, v.Window)
	if v.SlowReason != "" {
		s += "; slow window confirms: " + v.SlowReason
	}
	if v.HotSite != "" {
		s += " hot=" + v.HotSite
	}
	return s
}

// Recovery describes one pair whose fast window came back clean long
// enough to lift its flag (and quarantine).
type Recovery struct {
	Graft, Tech string
	// Checks is how many consecutive clean scans confirmed recovery.
	Checks int
	// Window is the fast-window snapshot that completed the probation.
	Window WindowSnapshot
}

func (r Recovery) String() string {
	return fmt.Sprintf("%s/%s: recovered after %d clean scans (window rate %.1f/s, preempt %.0f%%)",
		r.Graft, r.Tech, r.Checks, r.Window.Rate, 100*r.Window.PreemptRate)
}

// Watchdog periodically (or on demand, via Check) scans the metrics
// registry against a windowed SLO.
type Watchdog struct {
	slo SLO

	mu          sync.Mutex
	flagged     map[string]Violation
	clean       map[string]int // consecutive breach-free scans per flagged pair
	recovered   []Recovery
	onViolation func(Violation)
	onRecovery  func(Recovery)
	stop        chan struct{}
	done        chan struct{}
}

// NewWatchdog builds a watchdog over the global metrics registry.
func NewWatchdog(slo SLO) *Watchdog {
	if slo.MinInvocations == 0 {
		slo.MinInvocations = 16
	}
	if slo.FastWindow <= 0 {
		slo.FastWindow = 10 * time.Second
	}
	if slo.SlowWindow <= 0 {
		slo.SlowWindow = 5 * time.Minute
	}
	return &Watchdog{
		slo:     slo,
		flagged: make(map[string]Violation),
		clean:   make(map[string]int),
	}
}

// OnViolation registers fn to be called once per freshly flagged pair,
// synchronously from the Check that flagged it (so a periodic Start
// loop delivers violations from its scan goroutine). This is the
// reaction arm production watchdogs hang enforcement off — the
// lifecycle package uses it to demote a breaching canary and restore
// the incumbent. At most one callback is registered; nil removes it.
func (w *Watchdog) OnViolation(fn func(Violation)) {
	w.mu.Lock()
	w.onViolation = fn
	w.mu.Unlock()
}

// OnRecovery registers fn to be called once per pair whose probation
// completes, synchronously from the Check that lifted the flag. Same
// contract as OnViolation; nil removes it.
func (w *Watchdog) OnRecovery(fn func(Recovery)) {
	w.mu.Lock()
	w.onRecovery = fn
	w.mu.Unlock()
}

// breaches evaluates one window snapshot against the SLO thresholds,
// returning one reason per tripped threshold (sorted, stable).
func (w *Watchdog) breaches(s WindowSnapshot) []string {
	if s.Invocations == 0 {
		return nil
	}
	var reasons []string
	if w.slo.MaxP99 > 0 && s.P99 > w.slo.MaxP99 {
		reasons = append(reasons, fmt.Sprintf("p99 %v > SLO %v", s.P99, w.slo.MaxP99))
	}
	if w.slo.MaxMeanFuel > 0 && s.Fuel/int64(s.Invocations) > w.slo.MaxMeanFuel {
		reasons = append(reasons, fmt.Sprintf("mean fuel %d > SLO %d",
			s.Fuel/int64(s.Invocations), w.slo.MaxMeanFuel))
	}
	if w.slo.MaxPreemptRate > 0 && s.PreemptRate > w.slo.MaxPreemptRate {
		reasons = append(reasons, fmt.Sprintf("preemption rate %.0f%% > SLO %.0f%%",
			100*s.PreemptRate, 100*w.slo.MaxPreemptRate))
	}
	sort.Strings(reasons)
	return reasons
}

func joinReasons(rs []string) string {
	out := rs[0]
	for _, r := range rs[1:] {
		out += "; " + r
	}
	return out
}

// Check scans every registered pair once: fresh burn-rate breaches are
// flagged (and quarantined, with SLO.Quarantine) and returned;
// already-flagged pairs are tracked for recovery instead of being
// re-reported. A flagged pair whose fast window stays clean for
// RecoveryChecks consecutive scans is unflagged — after which a new
// breach flags it again, so the flag follows the pair's current
// behaviour, not its history.
func (w *Watchdog) Check() []Violation {
	var fresh []Violation
	var lifted []Recovery
	for _, m := range Metrics() {
		key := m.GraftName + "\x00" + m.Tech
		fast := m.Window(w.slo.FastWindow)
		fastReasons := w.breaches(fast)

		w.mu.Lock()
		_, seen := w.flagged[key]
		w.mu.Unlock()
		if seen {
			if w.slo.RecoveryChecks <= 0 {
				continue // legacy flag-once: no probation
			}
			if len(fastReasons) > 0 {
				w.mu.Lock()
				w.clean[key] = 0
				w.mu.Unlock()
				continue
			}
			w.mu.Lock()
			w.clean[key]++
			n := w.clean[key]
			var rec Recovery
			done := n >= w.slo.RecoveryChecks
			if done {
				delete(w.flagged, key)
				delete(w.clean, key)
				rec = Recovery{Graft: m.GraftName, Tech: m.Tech, Checks: n, Window: fast}
				w.recovered = append(w.recovered, rec)
			}
			w.mu.Unlock()
			if done {
				m.Unquarantine()
				lifted = append(lifted, rec)
			}
			continue
		}

		// Fresh evaluation: the fast window must hold enough invocations
		// to judge, and BOTH windows must breach (the burn-rate rule).
		if fast.Invocations < w.slo.MinInvocations || len(fastReasons) == 0 {
			continue
		}
		slow := m.Window(w.slo.SlowWindow)
		slowReasons := w.breaches(slow)
		if len(slowReasons) == 0 {
			continue
		}
		v := Violation{
			Graft:       m.GraftName,
			Tech:        m.Tech,
			Reason:      joinReasons(fastReasons),
			Window:      w.slo.FastWindow,
			Invocations: fast.Invocations,
			Rate:        fast.Rate,
			P99:         fast.P99,
			PreemptRate: fast.PreemptRate,
			SlowReason:  joinReasons(slowReasons),
			HotSite:     hotSite(m.GraftName, m.Tech),
		}
		if fast.Invocations > 0 {
			v.MeanFuel = fast.Fuel / int64(fast.Invocations)
		}
		if w.slo.Quarantine {
			m.Quarantine()
		}
		w.mu.Lock()
		w.flagged[key] = v
		w.clean[key] = 0
		w.mu.Unlock()
		fresh = append(fresh, v)
	}
	if len(fresh) > 0 || len(lifted) > 0 {
		w.mu.Lock()
		vfn, rfn := w.onViolation, w.onRecovery
		w.mu.Unlock()
		if vfn != nil {
			for _, v := range fresh {
				vfn(v)
			}
		}
		if rfn != nil {
			for _, r := range lifted {
				rfn(r)
			}
		}
	}
	return fresh
}

// hotSite returns the heaviest profiled site for the pair, when the
// profiler is running.
func hotSite(graft, tech string) string {
	p := CurrentProfile()
	if p == nil {
		return ""
	}
	for _, s := range p.Samples() { // heaviest first
		if s.Graft == graft && s.Tech == tech {
			if s.Line > 0 {
				return fmt.Sprintf("%s:%d", s.Func, s.Line)
			}
			return s.Func
		}
	}
	return ""
}

// Violations returns every pair currently flagged, sorted by pair.
// Pairs that completed recovery probation no longer appear here; their
// history moves to Recoveries.
func (w *Watchdog) Violations() []Violation {
	w.mu.Lock()
	out := make([]Violation, 0, len(w.flagged))
	for _, v := range w.flagged {
		out = append(out, v)
	}
	w.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graft != out[j].Graft {
			return out[i].Graft < out[j].Graft
		}
		return out[i].Tech < out[j].Tech
	})
	return out
}

// Recoveries returns every completed probation so far, oldest first.
func (w *Watchdog) Recoveries() []Recovery {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Recovery(nil), w.recovered...)
}

// Start scans every interval until Stop. A fresh regression is flagged
// (and quarantined) within one interval of its fast window crossing the
// threshold; recovery probation advances one step per interval.
func (w *Watchdog) Start(interval time.Duration) {
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	stop, done := w.stop, w.done
	w.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.Check()
			}
		}
	}()
}

// Stop halts the periodic scan and waits for it to exit.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	stop, done := w.stop, w.done
	w.stop, w.done = nil, nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
