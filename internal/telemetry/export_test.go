package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// populate registers a pair with enough activity that every exposition
// family has at least one sample.
func populateExport(t *testing.T) *GraftMetrics {
	t.Helper()
	m := Register("pageevict", "bytecode")
	m.AddInvocations(1000)
	m.AddFuel(50000)
	for i := 0; i < 100; i++ {
		m.RecordLatency(time.Duration(i+1) * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		m.RecordError(fuelTrap())
	}
	m.RecordError(fmt.Errorf("plain failure"))
	return m
}

// TestMetricsRoundTripsPromParser is the acceptance gate: the full
// /metrics exposition must survive the text-format parser with the
// expected samples intact.
func TestMetricsRoundTripsPromParser(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })
	m := populateExport(t)
	m.Quarantine()
	m.SetNote(`weird"note\with escapes`)
	// A second pair with a name needing escaping in label values.
	odd := Register(`sched"quote`, "script")
	odd.AddInvocations(5)

	var b strings.Builder
	writeProm(&b, 10*time.Second)
	text := b.String()

	samples, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}

	get := func(name string, kv ...string) PromSample {
		t.Helper()
		got := FindProm(samples, name, kv...)
		if len(got) != 1 {
			t.Fatalf("FindProm(%s, %v) = %d samples", name, kv, len(got))
		}
		return got[0]
	}

	if s := get("graftlab_invocations_total", "graft", "pageevict", "tech", "bytecode"); s.Value != 1000 {
		t.Errorf("invocations = %v", s.Value)
	}
	if s := get("graftlab_traps_total", "graft", "pageevict", "kind", "fuel exhausted"); s.Value != 10 {
		t.Errorf("fuel traps = %v", s.Value)
	}
	if s := get("graftlab_errors_total", "graft", "pageevict"); s.Value != 1 {
		t.Errorf("errors = %v", s.Value)
	}
	if s := get("graftlab_quarantined", "graft", "pageevict"); s.Value != 1 {
		t.Errorf("quarantined gauge = %v", s.Value)
	}
	if s := get("graftlab_quarantined", "graft", `sched"quote`); s.Value != 0 {
		t.Errorf("escaped-name pair quarantined = %v", s.Value)
	}

	// Histogram: bucket counts are cumulative and +Inf equals _count.
	inf := get("graftlab_latency_seconds_bucket", "graft", "pageevict", "le", "+Inf")
	count := get("graftlab_latency_seconds_count", "graft", "pageevict")
	if inf.Value != count.Value || count.Value != 100 {
		t.Errorf("histogram +Inf=%v count=%v, want 100", inf.Value, count.Value)
	}
	var prev float64
	for _, s := range FindProm(samples, "graftlab_latency_seconds_bucket", "graft", "pageevict") {
		if s.Label("le") == "+Inf" {
			continue
		}
		if s.Value < prev {
			t.Errorf("bucket counts not cumulative: %v after %v", s.Value, prev)
		}
		prev = s.Value
	}

	// Windowed gauges carry the window label and a non-zero p99: the
	// activity above just happened, so the 10s window must see it.
	if s := get("graftlab_window_rate", "graft", "pageevict", "window", "10s"); s.Value <= 0 {
		t.Errorf("window rate = %v, want > 0", s.Value)
	}
	p99 := get("graftlab_window_latency_seconds", "graft", "pageevict", "quantile", "0.99")
	if p99.Value <= 0 {
		t.Errorf("windowed p99 = %v, want > 0", p99.Value)
	}
	if s := get("graftlab_window_preempt_rate", "graft", "pageevict", "window", "10s"); s.Value != 0.01 {
		t.Errorf("window preempt rate = %v, want 0.01", s.Value)
	}
}

func TestParsePromTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"graftlab_x{graft=\"a\" 1",              // unterminated labels
		"graftlab_x{graft=a} 1",                 // unquoted value
		"graftlab_x{graft=\"a\"} notnum",        // bad value
		"1badname 2",                            // bad metric name
		"graftlab_x",                            // no value
		"graftlab_x{graft=\"a\",graft=\"b\"} 1", // duplicate label
		`graftlab_x{graft="a\q"} 1`,             // bad escape
	} {
		if _, err := ParsePromText(bad); err == nil {
			t.Errorf("ParsePromText(%q) accepted", bad)
		}
	}
	ok := "# HELP graftlab_x help text\n# TYPE graftlab_x counter\ngraftlab_x{a=\"b\"} 4.5 1700000000\n\n"
	samples, err := ParsePromText(ok)
	if err != nil || len(samples) != 1 || samples[0].Value != 4.5 {
		t.Errorf("ParsePromText(ok) = %v, %v", samples, err)
	}
}

// TestServeMetricsEndToEnd boots the real server on a loopback port and
// exercises all three endpoints over HTTP.
func TestServeMetricsEndToEnd(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })
	populateExport(t)

	srv, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics parses and respects ?window=.
	resp, err := http.Get(base + "/metrics?window=3s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	samples, err := ParsePromText(string(body))
	if err != nil {
		t.Fatalf("served /metrics does not parse: %v", err)
	}
	if got := FindProm(samples, "graftlab_window_rate", "window", "3s"); len(got) == 0 {
		t.Error("?window=3s not reflected in window label")
	}

	// /debug/telemetry.json decodes into the dump shape.
	resp, err = http.Get(base + "/debug/telemetry.json")
	if err != nil {
		t.Fatal(err)
	}
	var dump DebugDump
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("debug json: %v", err)
	}
	if len(dump.Cumulative) != 1 || dump.Cumulative[0].Graft != "pageevict" {
		t.Errorf("dump.Cumulative = %+v", dump.Cumulative)
	}
	if len(dump.Windowed) != 1 || dump.Windowed[0].Invocations == 0 {
		t.Errorf("dump.Windowed = %+v", dump.Windowed)
	}
	if dump.WindowConfig.Width <= 0 || dump.WindowConfig.Buckets < 2 {
		t.Errorf("dump.WindowConfig = %+v", dump.WindowConfig)
	}

	// /stream delivers at least one SSE event promptly.
	req, _ := http.NewRequest("GET", base+"/stream?interval=20ms", nil)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			data = strings.TrimPrefix(sc.Text(), "data: ")
			break
		}
	}
	if data == "" {
		t.Fatal("no SSE data event")
	}
	var ws []WindowSnapshot
	if err := json.Unmarshal([]byte(data), &ws); err != nil {
		t.Fatalf("SSE payload: %v", err)
	}
	if len(ws) != 1 || ws[0].Graft != "pageevict" {
		t.Errorf("SSE snapshot = %+v", ws)
	}
}
