package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Live export surface: the windowed plane is only useful if something
// can watch it. This file serves three views over the same registry —
// a Prometheus text-format /metrics endpoint (cumulative counters plus
// windowed gauges, the shape a real fleet would scrape), a
// /debug/telemetry.json dump for humans and scripts, and an SSE /stream
// that pushes per-window snapshots on an interval for live consumers
// like cmd/graftmon. Everything is stdlib net/http; handlers only read
// atomics, so scraping never perturbs the measured path beyond the
// snapshot cost itself.

// DefaultExportWindow is the window /metrics and /stream aggregate when
// the request does not override it with ?window=; it matches the
// watchdog's default fast window.
const DefaultExportWindow = 10 * time.Second

// MetricsServer is a running export surface. Close shuts it down.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr reports the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, waiting briefly for in-flight requests.
func (s *MetricsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// ServeMetrics binds addr (e.g. ":9090" or "127.0.0.1:0") and serves
// the export surface until Close:
//
//	/metrics               Prometheus text format
//	/debug/telemetry.json  full JSON dump (cumulative + windowed)
//	/stream                SSE: one []WindowSnapshot event per interval
//
// Both /metrics and /stream accept ?window=<duration> to choose the
// aggregation window (default 10s, clamped to the ring span); /stream
// also accepts ?interval=<duration> (default 1s).
func ServeMetrics(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	s := &MetricsServer{
		srv: &http.Server{Handler: NewMetricsHandler()},
		ln:  ln,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Shutdown's ErrServerClosed is the normal exit
	return s, nil
}

// NewMetricsHandler returns the export surface as a plain http.Handler,
// for embedding into an existing mux (graftd will mount it).
func NewMetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/debug/telemetry.json", handleDebugJSON)
	mux.HandleFunc("/stream", handleStream)
	return mux
}

// queryWindow parses ?window= with a default; invalid values fall back
// rather than erroring (a scrape must not fail on a typo'd dashboard).
func queryWindow(r *http.Request) time.Duration {
	if v := r.URL.Query().Get("window"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return DefaultExportWindow
}

// promEscape escapes a label value per the Prometheus text exposition
// format: backslash, double-quote, and newline.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// writeProm writes the full exposition. Cumulative counters keep their
// since-boot semantics (Prometheus computes its own rates from them);
// windowed gauges carry a window label so dashboards can tell a 10s
// burn rate from a 5m one when both are scraped.
func writeProm(w *strings.Builder, window time.Duration) {
	ms := Metrics()

	type row struct {
		m *GraftMetrics
		s GraftSnapshot
		v WindowSnapshot
	}
	rows := make([]row, 0, len(ms))
	for _, m := range ms {
		rows = append(rows, row{m: m, s: m.Snapshot(), v: m.Window(window)})
	}
	lbl := func(r row) string {
		return fmt.Sprintf(`graft="%s",tech="%s"`, promEscape(r.s.Graft), promEscape(r.s.Tech))
	}

	head := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	head("graftlab_invocations_total", "counter", "Invocations since process start.")
	for _, r := range rows {
		fmt.Fprintf(w, "graftlab_invocations_total{%s} %d\n", lbl(r), r.s.Invocations)
	}
	head("graftlab_errors_total", "counter", "Non-trap invocation errors since process start.")
	for _, r := range rows {
		fmt.Fprintf(w, "graftlab_errors_total{%s} %d\n", lbl(r), r.s.Errors)
	}
	head("graftlab_traps_total", "counter", "Trapped invocations since process start, by trap kind.")
	for _, r := range rows {
		kinds := make([]string, 0, len(r.s.Traps))
		for k := range r.s.Traps {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(w, "graftlab_traps_total{%s,kind=\"%s\"} %d\n", lbl(r), promEscape(k), r.s.Traps[k])
		}
	}
	head("graftlab_fuel_total", "counter", "Fuel consumed since process start (metered engines).")
	for _, r := range rows {
		fmt.Fprintf(w, "graftlab_fuel_total{%s} %d\n", lbl(r), r.s.FuelConsumed)
	}
	head("graftlab_quarantined", "gauge", "1 when the pair is on the watchdog deny-list.")
	for _, r := range rows {
		q := 0
		if r.s.Quarantined {
			q = 1
		}
		fmt.Fprintf(w, "graftlab_quarantined{%s} %d\n", lbl(r), q)
	}

	// Sampled-latency histogram, cumulative, in the native Prometheus
	// histogram shape: le boundaries at the log2 bucket edges (seconds).
	head("graftlab_latency_seconds", "histogram", "Sampled invocation latency since process start.")
	for _, r := range rows {
		h := r.m.Latency()
		var cum uint64
		for i := 0; i < numBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			// Bucket i holds ns with bit length i: upper edge 2^i - 1 ns.
			edge := float64(uint64(1)<<uint(i)-1) / 1e9
			fmt.Fprintf(w, "graftlab_latency_seconds_bucket{%s,le=\"%g\"} %d\n", lbl(r), edge, cum)
		}
		fmt.Fprintf(w, "graftlab_latency_seconds_bucket{%s,le=\"+Inf\"} %d\n", lbl(r), h.Count())
		fmt.Fprintf(w, "graftlab_latency_seconds_sum{%s} %g\n", lbl(r), float64(h.sum.Load())/1e9)
		fmt.Fprintf(w, "graftlab_latency_seconds_count{%s} %d\n", lbl(r), h.Count())
	}

	// Windowed gauges: the "now" view. The window label disambiguates
	// scrapes at different widths.
	wl := func(r row) string { return fmt.Sprintf(`%s,window="%s"`, lbl(r), window) }
	head("graftlab_window_rate", "gauge", "Invocations per second over the trailing window.")
	for _, r := range rows {
		fmt.Fprintf(w, "graftlab_window_rate{%s} %g\n", wl(r), r.v.Rate)
	}
	head("graftlab_window_trap_ratio", "gauge", "(traps+errors)/invocations over the trailing window.")
	for _, r := range rows {
		fmt.Fprintf(w, "graftlab_window_trap_ratio{%s} %g\n", wl(r), r.v.TrapRatio)
	}
	head("graftlab_window_preempt_rate", "gauge", "Fuel preemptions per invocation over the trailing window.")
	for _, r := range rows {
		fmt.Fprintf(w, "graftlab_window_preempt_rate{%s} %g\n", wl(r), r.v.PreemptRate)
	}
	head("graftlab_window_fuel_per_second", "gauge", "Fuel consumed per second over the trailing window.")
	for _, r := range rows {
		fmt.Fprintf(w, "graftlab_window_fuel_per_second{%s} %g\n", wl(r), r.v.FuelPerSec)
	}
	head("graftlab_window_latency_seconds", "gauge", "Sampled latency quantiles over the trailing window.")
	for _, r := range rows {
		if r.v.LatencySamples == 0 {
			continue
		}
		for _, q := range []struct {
			q string
			d time.Duration
		}{{"0.5", r.v.P50}, {"0.95", r.v.P95}, {"0.99", r.v.P99}} {
			fmt.Fprintf(w, "graftlab_window_latency_seconds{%s,quantile=\"%s\"} %g\n",
				wl(r), q.q, float64(q.d)/1e9)
		}
	}
}

func handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	writeProm(&b, queryWindow(r))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// DebugDump is the /debug/telemetry.json document.
type DebugDump struct {
	Enabled      bool             `json:"enabled"`
	Window       time.Duration    `json:"window"`
	WindowConfig WindowConfig     `json:"window_config"`
	Cumulative   []GraftSnapshot  `json:"cumulative"`
	Windowed     []WindowSnapshot `json:"windowed"`
}

func handleDebugJSON(w http.ResponseWriter, r *http.Request) {
	d := queryWindow(r)
	dump := DebugDump{
		Enabled: Enabled(),
		Window:  d,
		WindowConfig: WindowConfig{
			Width:   time.Duration(windowWidth.Load()),
			Buckets: int(windowBuckets.Load()),
		},
		Cumulative: SnapshotAll(),
		Windowed:   WindowAll(d),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(dump) //nolint:errcheck // client gone is the only failure
}

// handleStream pushes one SSE event per interval: `data:` carries the
// JSON []WindowSnapshot for the requested window. Consumers (graftmon,
// curl -N) get a live per-window delta feed without polling /metrics.
func handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := time.Second
	if v := r.URL.Query().Get("interval"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d >= 10*time.Millisecond {
			interval = d
		}
	}
	window := queryWindow(r)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	t := time.NewTicker(interval)
	defer t.Stop()
	send := func() bool {
		raw, err := json.Marshal(WindowAll(window))
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: windows\ndata: %s\n\n", raw); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
			if !send() {
				return
			}
		}
	}
}
