package telemetry

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestShardedCounterBasics(t *testing.T) {
	c := NewShardedCounter(4)
	if c.Sum() != 0 {
		t.Fatalf("fresh counter sums to %d", c.Sum())
	}
	c.Add(0, 5)
	c.Add(3, 7)
	if c.Sum() != 12 {
		t.Fatalf("sum = %d, want 12", c.Sum())
	}
	c.Reset()
	if c.Sum() != 0 {
		t.Fatalf("sum after reset = %d", c.Sum())
	}
}

// TestShardedCounterModuloStriping pins the documented contract that any
// non-negative shard index is accepted and reduced modulo the stripe
// count — the sharded pager passes raw shard numbers without clamping.
func TestShardedCounterModuloStriping(t *testing.T) {
	c := NewShardedCounter(3)
	c.Add(0, 1)
	c.Add(3, 1) // stripe 0 again
	c.Add(7, 1) // stripe 1
	if c.Sum() != 3 {
		t.Fatalf("sum = %d, want 3", c.Sum())
	}
	z := NewShardedCounter(0)
	z.Add(12345, 2) // minimum one stripe
	if z.Sum() != 2 {
		t.Fatalf("zero-stripe counter sum = %d, want 2", z.Sum())
	}
}

// TestShardedCounterCellPadding pins that each stripe occupies its own
// cache line — the whole point of the type. A struct-layout regression
// (dropping the pad, reordering fields) would silently reintroduce false
// sharing without failing any behavioral test.
func TestShardedCounterCellPadding(t *testing.T) {
	if size := unsafe.Sizeof(paddedUint64{}); size != cacheLine {
		t.Fatalf("cell is %d bytes, want one %d-byte cache line", size, cacheLine)
	}
}

func TestStressShardedCounterConcurrentAdds(t *testing.T) {
	workers, iters := 8, 2000
	if testing.Short() {
		workers, iters = 4, 500
	}
	c := NewShardedCounter(4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Sum(), uint64(workers*iters); got != want {
		t.Fatalf("lost updates: sum = %d, want %d", got, want)
	}
}

// BenchmarkShardedCounter records the contention gap the type exists to
// close: every goroutine hammering one shared atomic versus each adding
// to its own stripe. Run with -cpu 1,2,4 to see the shared cell's cost
// grow with parallelism while the striped form stays flat.
func BenchmarkShardedCounter(b *testing.B) {
	b.Run("shared", func(b *testing.B) {
		var shared atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				shared.Add(1)
			}
		})
	})
	b.Run("striped", func(b *testing.B) {
		c := NewShardedCounter(16)
		var nextShard atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			shard := int(nextShard.Add(1))
			for pb.Next() {
				c.Add(shard, 1)
			}
		})
	})
}
