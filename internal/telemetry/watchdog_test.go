package telemetry

import (
	"testing"
	"time"

	"graftlab/internal/mem"
)

func TestWatchdogFlagsAndQuarantines(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	runaway := Register("runaway", "bytecode")
	good := Register("wellbehaved", "bytecode")
	for i := 0; i < 100; i++ {
		runaway.Inc()
		good.Inc()
		runaway.AddFuel(1 << 20)
		good.AddFuel(100)
		good.RecordLatency(200 * time.Nanosecond)
		runaway.RecordLatency(50 * time.Millisecond)
	}
	// Half the runaway's invocations hit the fuel limit.
	for i := 0; i < 50; i++ {
		runaway.RecordError(&mem.Trap{Kind: mem.TrapFuel})
	}

	w := NewWatchdog(SLO{
		MaxP99:         time.Millisecond,
		MaxMeanFuel:    1 << 16,
		MaxPreemptRate: 0.25,
		Quarantine:     true,
	})
	fresh := w.Check()
	if len(fresh) != 1 {
		t.Fatalf("flagged %d pairs, want 1: %v", len(fresh), fresh)
	}
	v := fresh[0]
	if v.Graft != "runaway" {
		t.Fatalf("flagged %s/%s", v.Graft, v.Tech)
	}
	if v.Reason == "" || v.PreemptRate != 0.5 {
		t.Errorf("violation = %+v", v)
	}
	if !runaway.Quarantined() || !Quarantined("runaway", "bytecode") {
		t.Error("runaway not quarantined")
	}
	if good.Quarantined() || Quarantined("wellbehaved", "bytecode") {
		t.Error("well-behaved pair quarantined")
	}

	// A pair is flagged exactly once; the violation stays queryable.
	if again := w.Check(); len(again) != 0 {
		t.Errorf("re-flagged: %v", again)
	}
	if all := w.Violations(); len(all) != 1 || all[0].Graft != "runaway" {
		t.Errorf("Violations() = %v", all)
	}

	ClearQuarantines()
	if runaway.Quarantined() {
		t.Error("ClearQuarantines did not lift the quarantine")
	}
}

func TestWatchdogMinInvocationsGate(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	m := Register("coldstart", "script")
	// Breaches every threshold, but with too few invocations to matter.
	for i := 0; i < 5; i++ {
		m.Inc()
		m.AddFuel(1 << 30)
		m.RecordLatency(time.Second)
	}
	w := NewWatchdog(SLO{MaxP99: time.Microsecond, MaxMeanFuel: 1})
	if fresh := w.Check(); len(fresh) != 0 {
		t.Fatalf("flagged under MinInvocations: %v", fresh)
	}
	for i := 0; i < 20; i++ {
		m.Inc()
		m.RecordLatency(time.Second)
	}
	if fresh := w.Check(); len(fresh) != 1 {
		t.Fatalf("not flagged past MinInvocations: %v", fresh)
	}
	// Without Quarantine the pair is reported but never denied.
	if m.Quarantined() {
		t.Error("quarantined without SLO.Quarantine")
	}
}

func TestWatchdogHotSite(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() {
		ResetMetrics()
		DisableProfiler()
	})

	p, err := EnableProfiler(256)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Scope("spinner", "bytecode")
	s.Hit("spin_loop", 42, 10*256)
	s.Hit("setup", 3, 256)

	m := Register("spinner", "bytecode")
	for i := 0; i < 32; i++ {
		m.Inc()
		m.RecordLatency(time.Second)
	}
	w := NewWatchdog(SLO{MaxP99: time.Millisecond})
	fresh := w.Check()
	if len(fresh) != 1 {
		t.Fatalf("flagged %d", len(fresh))
	}
	if fresh[0].HotSite != "spin_loop:42" {
		t.Errorf("HotSite = %q, want spin_loop:42", fresh[0].HotSite)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	m := Register("slowpoke", "script")
	for i := 0; i < 32; i++ {
		m.Inc()
		m.RecordLatency(time.Second)
	}
	w := NewWatchdog(SLO{MaxP99: time.Millisecond, Quarantine: true})
	w.Start(time.Millisecond)
	defer w.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m.Quarantined() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !m.Quarantined() {
		t.Fatal("periodic watchdog never quarantined the breaching pair")
	}
	w.Stop() // idempotent with the deferred Stop
}

// TestWatchdogOnViolation pins the reaction hook: the callback fires
// synchronously inside Check, once per fresh violation, and never again
// for an already-flagged pair.
func TestWatchdogOnViolation(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() {
		ClearQuarantines()
		ResetMetrics()
	})

	m := Register("hooked", "bytecode")
	for i := 0; i < 64; i++ {
		m.Inc()
		m.AddFuel(1 << 20)
	}
	w := NewWatchdog(SLO{MaxMeanFuel: 1 << 10})
	var seen []Violation
	w.OnViolation(func(v Violation) { seen = append(seen, v) })

	fresh := w.Check()
	if len(fresh) != 1 || len(seen) != 1 {
		t.Fatalf("fresh %d, callback saw %d, want 1 and 1", len(fresh), len(seen))
	}
	if seen[0].Graft != "hooked" || seen[0].Reason == "" {
		t.Fatalf("callback violation = %+v", seen[0])
	}
	if seen[0].String() == "" {
		t.Error("violation renders empty")
	}
	// Already flagged: a second scan must not re-invoke the hook.
	if w.Check(); len(seen) != 1 {
		t.Errorf("callback re-invoked for a stale violation: %d calls", len(seen))
	}
	// The hook is replaceable; nil disables it without breaking Check.
	w.OnViolation(nil)
	m2 := Register("hooked2", "bytecode")
	for i := 0; i < 64; i++ {
		m2.Inc()
		m2.AddFuel(1 << 20)
	}
	if fresh := w.Check(); len(fresh) != 1 || len(seen) != 1 {
		t.Errorf("nil hook: fresh %d, callback calls %d", len(fresh), len(seen))
	}
}
