package telemetry

import (
	"sync/atomic"
	"testing"
	"time"

	"graftlab/internal/mem"
)

// fakeClock drives a metric's window ring deterministically: tests
// advance time instead of sleeping, so rotation and burn-rate behaviour
// are exact, not racy.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64              { return c.ns.Load() }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }
func newFakeClock(at time.Duration) *fakeClock {
	c := &fakeClock{}
	c.ns.Store(int64(at))
	return c
}

// registerWindowed registers a metric whose window ring uses cfg and
// clk, restoring the global window config before returning.
func registerWindowed(t *testing.T, graft, tech string, cfg WindowConfig, clk *fakeClock) *GraftMetrics {
	t.Helper()
	prev := WindowConfig{
		Width:   time.Duration(windowWidth.Load()),
		Buckets: int(windowBuckets.Load()),
	}
	if err := SetWindowConfig(cfg); err != nil {
		t.Fatal(err)
	}
	m := Register(graft, tech)
	if err := SetWindowConfig(prev); err != nil {
		t.Fatal(err)
	}
	m.win.now = clk.now
	return m
}

func fuelTrap() error { return &mem.Trap{Kind: mem.TrapFuel} }

func TestWatchdogFlagsAndQuarantines(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	clk := newFakeClock(time.Hour)
	cfg := WindowConfig{Width: 100 * time.Millisecond, Buckets: 64}
	runaway := registerWindowed(t, "runaway", "bytecode", cfg, clk)
	good := registerWindowed(t, "wellbehaved", "bytecode", cfg, clk)
	for i := 0; i < 100; i++ {
		runaway.AddInvocations(1)
		good.AddInvocations(1)
		runaway.AddFuel(1 << 20)
		good.AddFuel(100)
		good.RecordLatency(200 * time.Nanosecond)
		runaway.RecordLatency(50 * time.Millisecond)
	}
	// Half the runaway's invocations hit the fuel limit.
	for i := 0; i < 50; i++ {
		runaway.RecordError(fuelTrap())
	}

	w := NewWatchdog(SLO{
		MaxP99:         time.Millisecond,
		MaxMeanFuel:    1 << 16,
		MaxPreemptRate: 0.25,
		FastWindow:     time.Second,
		SlowWindow:     5 * time.Second,
		Quarantine:     true,
	})
	fresh := w.Check()
	if len(fresh) != 1 {
		t.Fatalf("flagged %d pairs, want 1: %v", len(fresh), fresh)
	}
	v := fresh[0]
	if v.Graft != "runaway" {
		t.Fatalf("flagged %s/%s", v.Graft, v.Tech)
	}
	if v.Reason == "" || v.SlowReason == "" || v.PreemptRate != 0.5 {
		t.Errorf("violation = %+v", v)
	}
	if v.Window != time.Second {
		t.Errorf("violation window = %v, want the fast window", v.Window)
	}
	if !runaway.Quarantined() || !Quarantined("runaway", "bytecode") {
		t.Error("runaway not quarantined")
	}
	if good.Quarantined() || Quarantined("wellbehaved", "bytecode") {
		t.Error("well-behaved pair quarantined")
	}

	// A flagged pair is not re-reported; the violation stays queryable.
	if again := w.Check(); len(again) != 0 {
		t.Errorf("re-flagged: %v", again)
	}
	if all := w.Violations(); len(all) != 1 || all[0].Graft != "runaway" {
		t.Errorf("Violations() = %v", all)
	}

	ClearQuarantines()
	if runaway.Quarantined() {
		t.Error("ClearQuarantines did not lift the quarantine")
	}
}

func TestWatchdogMinInvocationsGate(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	clk := newFakeClock(time.Hour)
	m := registerWindowed(t, "coldstart", "script",
		WindowConfig{Width: 100 * time.Millisecond, Buckets: 64}, clk)
	// Breaches every threshold, but with too few invocations to matter.
	for i := 0; i < 5; i++ {
		m.AddInvocations(1)
		m.AddFuel(1 << 30)
		m.RecordLatency(time.Second)
	}
	w := NewWatchdog(SLO{MaxP99: time.Microsecond, MaxMeanFuel: 1,
		FastWindow: time.Second, SlowWindow: 5 * time.Second})
	if fresh := w.Check(); len(fresh) != 0 {
		t.Fatalf("flagged under MinInvocations: %v", fresh)
	}
	for i := 0; i < 20; i++ {
		m.AddInvocations(1)
		m.RecordLatency(time.Second)
	}
	if fresh := w.Check(); len(fresh) != 1 {
		t.Fatalf("not flagged past MinInvocations: %v", fresh)
	}
	// Without Quarantine the pair is reported but never denied.
	if m.Quarantined() {
		t.Error("quarantined without SLO.Quarantine")
	}
}

func TestWatchdogHotSite(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() {
		ResetMetrics()
		DisableProfiler()
	})

	p, err := EnableProfiler(256)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Scope("spinner", "bytecode")
	s.Hit("spin_loop", 42, 10*256)
	s.Hit("setup", 3, 256)

	m := Register("spinner", "bytecode")
	for i := 0; i < 32; i++ {
		m.AddInvocations(1)
		m.RecordLatency(time.Second)
	}
	w := NewWatchdog(SLO{MaxP99: time.Millisecond})
	fresh := w.Check()
	if len(fresh) != 1 {
		t.Fatalf("flagged %d", len(fresh))
	}
	if fresh[0].HotSite != "spin_loop:42" {
		t.Errorf("HotSite = %q, want spin_loop:42", fresh[0].HotSite)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	m := Register("slowpoke", "script")
	for i := 0; i < 32; i++ {
		m.AddInvocations(1)
		m.RecordLatency(time.Second)
	}
	w := NewWatchdog(SLO{MaxP99: time.Millisecond, Quarantine: true})
	w.Start(time.Millisecond)
	defer w.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m.Quarantined() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !m.Quarantined() {
		t.Fatal("periodic watchdog never quarantined the breaching pair")
	}
	w.Stop() // idempotent with the deferred Stop
}

// TestWatchdogOnViolation pins the reaction hook: the callback fires
// synchronously inside Check, once per fresh violation, and never again
// for an already-flagged pair.
func TestWatchdogOnViolation(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() {
		ClearQuarantines()
		ResetMetrics()
	})

	m := Register("hooked", "bytecode")
	for i := 0; i < 64; i++ {
		m.AddInvocations(1)
		m.AddFuel(1 << 20)
	}
	w := NewWatchdog(SLO{MaxMeanFuel: 1 << 10})
	var seen []Violation
	w.OnViolation(func(v Violation) { seen = append(seen, v) })

	fresh := w.Check()
	if len(fresh) != 1 || len(seen) != 1 {
		t.Fatalf("fresh %d, callback saw %d, want 1 and 1", len(fresh), len(seen))
	}
	if seen[0].Graft != "hooked" || seen[0].Reason == "" {
		t.Fatalf("callback violation = %+v", seen[0])
	}
	if seen[0].String() == "" {
		t.Error("violation renders empty")
	}
	// Already flagged: a second scan must not re-invoke the hook.
	if w.Check(); len(seen) != 1 {
		t.Errorf("callback re-invoked for a stale violation: %d calls", len(seen))
	}
	// The hook is replaceable; nil disables it without breaking Check.
	w.OnViolation(nil)
	m2 := Register("hooked2", "bytecode")
	for i := 0; i < 64; i++ {
		m2.AddInvocations(1)
		m2.AddFuel(1 << 20)
	}
	if fresh := w.Check(); len(fresh) != 1 || len(seen) != 1 {
		t.Errorf("nil hook: fresh %d, callback calls %d", len(fresh), len(seen))
	}
}

// TestWatchdogWindowedCatchesFreshRegression is the acceptance case for
// the windowed rewrite: a graft with a long healthy history starts
// preempting on every call. The lifetime preemption rate stays diluted
// far below the SLO — a lifetime-aggregate check would never fire — but
// the sliding windows forget the healthy era, so the burn-rate check
// flags the pair promptly; after the regression stops, probation lifts
// the quarantine automatically.
func TestWatchdogWindowedCatchesFreshRegression(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	clk := newFakeClock(time.Hour)
	m := registerWindowed(t, "regressor", "bytecode",
		WindowConfig{Width: 100 * time.Millisecond, Buckets: 64}, clk)

	// A long healthy era: 10k clean invocations.
	m.AddInvocations(10000)

	// The healthy era ages out of both windows...
	clk.advance(3 * time.Second)
	// ...then a fresh regression: every one of 100 invocations preempts.
	m.AddInvocations(100)
	for i := 0; i < 100; i++ {
		m.RecordError(fuelTrap())
	}

	const maxPreempt = 0.5
	// The lifetime aggregate is diluted below the SLO: the old check
	// would sit blind on exactly this regression.
	lifetime := float64(m.FuelPreemptions()) / float64(m.Invocations())
	if lifetime >= maxPreempt {
		t.Fatalf("lifetime preempt rate %.3f not diluted below %.2f; test setup broken", lifetime, maxPreempt)
	}

	w := NewWatchdog(SLO{
		MaxPreemptRate: maxPreempt,
		MinInvocations: 16,
		FastWindow:     500 * time.Millisecond,
		SlowWindow:     2 * time.Second,
		RecoveryChecks: 2,
		Quarantine:     true,
	})
	fresh := w.Check()
	if len(fresh) != 1 {
		t.Fatalf("windowed watchdog flagged %d pairs, want 1: %v", len(fresh), fresh)
	}
	if fresh[0].PreemptRate != 1.0 {
		t.Errorf("windowed preempt rate %.2f, want 1.0", fresh[0].PreemptRate)
	}
	if !m.Quarantined() {
		t.Fatal("regressor not quarantined")
	}

	// Recovery: the quarantine drains traffic, the breach ages out of
	// the fast window, and two clean scans lift the flag.
	clk.advance(time.Second)
	if w.Check(); m.Quarantined() != true {
		t.Fatal("unquarantined after one clean scan, want two")
	}
	w.Check()
	if m.Quarantined() {
		t.Fatal("not unquarantined after RecoveryChecks clean scans")
	}
	if vs := w.Violations(); len(vs) != 0 {
		t.Errorf("recovered pair still in Violations(): %v", vs)
	}
	recs := w.Recoveries()
	if len(recs) != 1 || recs[0].Graft != "regressor" || recs[0].Checks != 2 {
		t.Fatalf("Recoveries() = %v", recs)
	}
	if recs[0].String() == "" {
		t.Error("recovery renders empty")
	}

	// The flag follows current behaviour: a second regression re-flags.
	m.AddInvocations(50)
	for i := 0; i < 50; i++ {
		m.RecordError(fuelTrap())
	}
	if fresh := w.Check(); len(fresh) != 1 {
		t.Fatalf("recovered pair not re-flagged on a new breach: %v", fresh)
	}
	if !m.Quarantined() {
		t.Error("re-flagged pair not re-quarantined")
	}
}

// TestWatchdogBurnRateNeedsBothWindows pins the multi-window rule: a
// short blip that breaches the fast window while the slow window stays
// healthy must not flag.
func TestWatchdogBurnRateNeedsBothWindows(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	clk := newFakeClock(time.Hour)
	m := registerWindowed(t, "blippy", "bytecode",
		WindowConfig{Width: 100 * time.Millisecond, Buckets: 64}, clk)

	// Healthy traffic still inside the slow window...
	m.AddInvocations(10000)
	clk.advance(2 * time.Second)
	// ...then a one-burst blip: fast window 100% preempts, slow window
	// diluted to ~0.2%.
	m.AddInvocations(20)
	for i := 0; i < 20; i++ {
		m.RecordError(fuelTrap())
	}

	w := NewWatchdog(SLO{
		MaxPreemptRate: 0.5,
		MinInvocations: 16,
		FastWindow:     300 * time.Millisecond,
		SlowWindow:     5 * time.Second,
	})
	if fresh := w.Check(); len(fresh) != 0 {
		t.Fatalf("blip flagged despite healthy slow window: %v", fresh)
	}

	// When the burn sustains long enough to push the slow window over
	// the threshold too, the pair flags.
	for round := 0; round < 40; round++ {
		clk.advance(100 * time.Millisecond)
		m.AddInvocations(500)
		for i := 0; i < 500; i++ {
			m.RecordError(fuelTrap())
		}
	}
	// By now the slow window holds mostly preempting traffic (and much
	// of the healthy era has aged out of it).
	if fresh := w.Check(); len(fresh) != 1 {
		t.Fatalf("sustained burn not flagged: %v", fresh)
	}
}

// TestWatchdogRecoveryResetsOnRelapse pins the probation hysteresis: a
// breach during probation resets the clean-scan counter, so a pair
// flapping in and out of breach never recovers early.
func TestWatchdogRecoveryResetsOnRelapse(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	clk := newFakeClock(time.Hour)
	m := registerWindowed(t, "flapper", "bytecode",
		WindowConfig{Width: 100 * time.Millisecond, Buckets: 64}, clk)

	breach := func(n int) {
		m.AddInvocations(uint64(n))
		for i := 0; i < n; i++ {
			m.RecordError(fuelTrap())
		}
	}
	breach(32)
	w := NewWatchdog(SLO{
		MaxPreemptRate: 0.5,
		MinInvocations: 16,
		FastWindow:     500 * time.Millisecond,
		SlowWindow:     2 * time.Second,
		RecoveryChecks: 3,
		Quarantine:     true,
	})
	if fresh := w.Check(); len(fresh) != 1 {
		t.Fatalf("not flagged: %v", fresh)
	}

	clk.advance(time.Second) // breach out of the fast window
	w.Check()                // clean scan 1
	w.Check()                // clean scan 2
	breach(32)               // relapse inside probation
	w.Check()                // breach scan: resets the counter
	clk.advance(time.Second)
	w.Check() // clean 1
	w.Check() // clean 2
	if !m.Quarantined() {
		t.Fatal("recovered early: relapse did not reset probation")
	}
	w.Check() // clean 3: now recovery completes
	if m.Quarantined() {
		t.Fatal("not unquarantined after full probation")
	}
}

// TestWatchdogOnRecovery pins the recovery hook: fired synchronously
// from the Check that completes probation, once per pair.
func TestWatchdogOnRecovery(t *testing.T) {
	ResetMetrics()
	t.Cleanup(func() { ResetMetrics() })

	clk := newFakeClock(time.Hour)
	m := registerWindowed(t, "healed", "bytecode",
		WindowConfig{Width: 100 * time.Millisecond, Buckets: 64}, clk)
	m.AddInvocations(32)
	for i := 0; i < 32; i++ {
		m.RecordError(fuelTrap())
	}
	w := NewWatchdog(SLO{
		MaxPreemptRate: 0.5,
		FastWindow:     500 * time.Millisecond,
		SlowWindow:     2 * time.Second,
		RecoveryChecks: 1,
		Quarantine:     true,
	})
	var recovered []Recovery
	w.OnRecovery(func(r Recovery) { recovered = append(recovered, r) })
	w.Check()
	clk.advance(time.Second)
	w.Check()
	if len(recovered) != 1 || recovered[0].Graft != "healed" {
		t.Fatalf("OnRecovery saw %v", recovered)
	}
	if w.Check(); len(recovered) != 1 {
		t.Errorf("OnRecovery re-invoked: %d calls", len(recovered))
	}
}
