package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind names a kernel hook-point event. The three operand slots
// A/B/C are kind-specific; the schema is documented per kind below and
// in docs/observability.md.
type EventKind uint8

const (
	// EvPageFault: the pager serviced a fault. A=page, B=frame, C unused.
	EvPageFault EventKind = iota + 1
	// EvEvictDecision: the eviction Prioritization hook ran. A=candidate
	// page, B=chosen page, C=outcome (see EvictOutcome values).
	EvEvictDecision
	// EvStreamPass: one filter of a stream chain processed a block.
	// A=filter index, B=bytes in, C=bytes out.
	EvStreamPass
	// EvUpcall: one protection-domain crossing completed. A=entry-point
	// arg count, B=synthetic latency ns, C=measured round-trip ns.
	EvUpcall
	// EvLDSegment: the logical disk flushed a segment. A=segment,
	// B=first physical block, C=blocks written.
	EvLDSegment
	// EvSchedPick: the scheduler dispatched. A=pid, B=run-queue index
	// picked, C=1 if a policy override, else 0.
	EvSchedPick
)

// Eviction-decision outcome codes (Event.C of EvEvictDecision).
const (
	EvictDefault  = 0 // no policy installed; kernel LRU candidate used
	EvictAccepted = 1 // policy declined or proposed the candidate
	EvictOverride = 2 // policy proposal accepted
	EvictRejected = 3 // policy proposal invalid; candidate used
	EvictErrored  = 4 // policy trapped; candidate used
)

var eventNames = map[EventKind]string{
	EvPageFault:     "page_fault",
	EvEvictDecision: "evict_decision",
	EvStreamPass:    "stream_pass",
	EvUpcall:        "upcall",
	EvLDSegment:     "ld_segment",
	EvSchedPick:     "sched_pick",
}

func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one recorded kernel event. Time is wall-clock nanoseconds
// (time.Time.UnixNano at emit).
type Event struct {
	Seq  uint64
	Time int64
	Kind EventKind
	A    uint64
	B    uint64
	C    uint64
}

// Trace is a bounded ring buffer of kernel events: emitting never
// allocates and never blocks beyond a short mutex hold; when the ring is
// full the oldest events are overwritten, like a kernel trace buffer.
type Trace struct {
	mu     sync.Mutex
	buf    []Event
	seq    uint64      // events ever emitted
	byKind [256]uint64 // cumulative per-kind counts (not evicted)
}

// NewTrace allocates a ring holding up to capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Emit appends one event, overwriting the oldest if the ring is full.
func (t *Trace) Emit(kind EventKind, a, b, c uint64) {
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.buf[t.seq%uint64(len(t.buf))] = Event{
		Seq: t.seq, Time: now, Kind: kind, A: a, B: b, C: c,
	}
	t.seq++
	t.byKind[kind]++
	t.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq < uint64(len(t.buf)) {
		return int(t.seq)
	}
	return len(t.buf)
}

// Overwritten reports how many events were lost to ring eviction.
func (t *Trace) Overwritten() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq <= uint64(len(t.buf)) {
		return 0
	}
	return t.seq - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	cap64 := uint64(len(t.buf))
	out := make([]Event, 0, min64(n, cap64))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	for s := start; s < n; s++ {
		out = append(out, t.buf[s%cap64])
	}
	return out
}

// CountByKind returns cumulative per-kind event counts (including
// overwritten events).
func (t *Trace) CountByKind() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64)
	for k, n := range t.byKind {
		if n > 0 {
			out[EventKind(k).String()] = n
		}
	}
	return out
}

// WriteJSONL writes the retained events as one JSON object per line:
//
//	{"seq":12,"t":1722870000123456789,"kind":"page_fault","a":204,"b":17,"c":0}
//
// seq is the global emission index (gaps mean ring eviction), t is
// wall-clock UnixNano, and a/b/c are the kind-specific operands.
//
// The final line is a footer making ring truncation visible instead of
// silent:
//
//	{"footer":true,"emitted":70000,"retained":65536,"dropped":4464}
//
// dropped counts events lost to ring wrap; consumers that only want
// events can skip any line carrying "footer".
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		// Hand-rolled: the schema is flat and fixed, and this keeps the
		// dump allocation-light for big rings.
		if _, err := fmt.Fprintf(bw,
			`{"seq":%d,"t":%d,"kind":%q,"a":%d,"b":%d,"c":%d}`+"\n",
			e.Seq, e.Time, e.Kind.String(), e.A, e.B, e.C); err != nil {
			return err
		}
	}
	dropped := t.Overwritten()
	if _, err := fmt.Fprintf(bw,
		`{"footer":true,"emitted":%d,"retained":%d,"dropped":%d}`+"\n",
		uint64(t.Len())+dropped, t.Len(), dropped); err != nil {
		return err
	}
	return bw.Flush()
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Global trace: kernel hook points emit through here so the hooks do not
// need a handle threaded through every constructor. Off by default.
var (
	traceOn atomic.Bool
	trace   atomic.Pointer[Trace]
)

// EnableTrace activates the global event trace with the given ring
// capacity, replacing any previous trace.
func EnableTrace(capacity int) {
	trace.Store(NewTrace(capacity))
	traceOn.Store(true)
}

// DisableTrace stops event collection; the accumulated trace remains
// readable via CurrentTrace.
func DisableTrace() { traceOn.Store(false) }

// TraceEnabled reports whether Emit records anything; hook points that
// must do extra work to build an event (e.g. timing an upcall) check it
// first. It is a single atomic load.
func TraceEnabled() bool { return traceOn.Load() }

// CurrentTrace returns the global trace, or nil if EnableTrace was never
// called.
func CurrentTrace() *Trace { return trace.Load() }

// Emit records one event in the global trace; a no-op (one atomic load)
// while tracing is off.
func Emit(kind EventKind, a, b, c uint64) {
	if !traceOn.Load() {
		return
	}
	if t := trace.Load(); t != nil {
		t.Emit(kind, a, b, c)
	}
}
