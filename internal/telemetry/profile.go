package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Sampling profiler. The metered engines already pay a fuel decrement
// per block (OptVM), per instruction (baseline VM), or per command
// (script interpreter); the profiler piggybacks on exactly those checks:
// each engine keeps a private countdown of fuel units and, every
// Interval units, records one sample against the current function and
// source line (resolved through the bytecode line table emitted by
// internal/compile). A sample carries Interval units of fuel as its
// weight, so aggregate attribution is exact in expectation — a site
// that burns 10% of a graft's fuel owns 10% of the sample weight —
// while the per-block cost of an idle profiler is one predictable
// branch on a non-atomic field.
//
// Like the metrics subsystem, the decision is made at load time:
// engines loaded while the profiler is enabled get a ProfScope handle;
// engines loaded while it is off carry a nil scope and zero countdown,
// making disabled runs byte-identical to a build without the profiler.

// DefaultProfileInterval is the sample weight in fuel units: one sample
// per 4096 units keeps the locked map update invisible next to the
// ~4096 instructions it stands for, while a paper-scale MD5 run
// (millions of fuel units) still collects hundreds of samples.
const DefaultProfileInterval = 4096

// ProfSite identifies one attribution bucket: a source line (or, for
// the script interpreter, a command name) inside one (graft, tech).
type ProfSite struct {
	Graft string
	Tech  string
	Func  string // bytecode function or script command name
	Line  int    // 1-based source line; 0 when no line table is available
}

// ProfSample is one exported bucket with its accumulated weight.
type ProfSample struct {
	ProfSite
	Fuel int64  // total attributed fuel units (Hits × interval)
	Hits uint64 // number of raw samples
}

// Profile accumulates samples from every profiled engine. One locked
// map is enough: with the default interval a sample stands for ~4096
// executed fuel units, so even a dozen concurrent workers hit the lock
// a few hundred thousand times per second at most.
type Profile struct {
	interval int64

	mu      sync.Mutex
	samples map[ProfSite]*profCell
}

type profCell struct {
	fuel int64
	hits uint64
}

// NewProfile builds a profile sampling every interval fuel units.
func NewProfile(interval int64) (*Profile, error) {
	if interval < 1 {
		return nil, fmt.Errorf("telemetry: profile interval must be >= 1, got %d", interval)
	}
	return &Profile{interval: interval, samples: make(map[ProfSite]*profCell)}, nil
}

// Interval returns the fuel-unit sampling interval.
func (p *Profile) Interval() int64 { return p.interval }

// Scope pre-binds the (graft, tech) half of the sample key so the
// engine-side hot path passes only a function name and line.
func (p *Profile) Scope(graft, tech string) *ProfScope {
	return &ProfScope{p: p, graft: graft, tech: tech}
}

// ProfScope is the handle an engine records samples through.
type ProfScope struct {
	p     *Profile
	graft string
	tech  string
}

// Hit records one sample of weight fuel against fn:line.
func (s *ProfScope) Hit(fn string, line int, fuel int64) {
	site := ProfSite{Graft: s.graft, Tech: s.tech, Func: fn, Line: line}
	s.p.mu.Lock()
	c := s.p.samples[site]
	if c == nil {
		c = &profCell{}
		s.p.samples[site] = c
	}
	c.fuel += fuel
	c.hits++
	s.p.mu.Unlock()
}

// Samples returns every bucket, heaviest first (ties broken by site for
// stable output).
func (p *Profile) Samples() []ProfSample {
	p.mu.Lock()
	out := make([]ProfSample, 0, len(p.samples))
	for site, c := range p.samples {
		out = append(out, ProfSample{ProfSite: site, Fuel: c.fuel, Hits: c.hits})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fuel != out[j].Fuel {
			return out[i].Fuel > out[j].Fuel
		}
		a, b := out[i].ProfSite, out[j].ProfSite
		if a.Graft != b.Graft {
			return a.Graft < b.Graft
		}
		if a.Tech != b.Tech {
			return a.Tech < b.Tech
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Line < b.Line
	})
	return out
}

// TotalFuel returns the summed weight of every sample.
func (p *Profile) TotalFuel() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t int64
	for _, c := range p.samples {
		t += c.fuel
	}
	return t
}

// WriteFolded writes the profile in folded-stack format, one line per
// site — "graft;tech;func:line weight" — the input format flamegraph
// tools (inferno, flamegraph.pl, speedscope) consume directly. Sites
// without line info fold to "graft;tech;func".
func (p *Profile) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range p.Samples() {
		frame := s.Func
		if s.Line > 0 {
			frame = fmt.Sprintf("%s:%d", s.Func, s.Line)
		}
		if _, err := fmt.Fprintf(bw, "%s;%s;%s %d\n", s.Graft, s.Tech, frame, s.Fuel); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LineTable renders the per-line fuel table: each site's absolute fuel,
// its share of the owning (graft, tech) total, and — when the metrics
// registry has latency data for the pair — an estimated wall-time
// attribution (share × invocations × mean sampled latency).
func (p *Profile) LineTable() string {
	samples := p.Samples()
	totals := make(map[[2]string]int64)
	for _, s := range samples {
		totals[[2]string{s.Graft, s.Tech}] += s.Fuel
	}
	estNs := make(map[[2]string]float64)
	for pair := range totals {
		if m := lookup(pair[0], pair[1]); m != nil {
			if m.Latency().Count() > 0 {
				estNs[pair] = float64(m.Latency().Mean()) * float64(m.Invocations())
			}
		}
	}
	var b []byte
	b = append(b, fmt.Sprintf("%-12s %-10s %-24s %12s %7s %10s\n",
		"graft", "tech", "site", "fuel", "share", "est time")...)
	for _, s := range samples {
		pair := [2]string{s.Graft, s.Tech}
		share := float64(s.Fuel) / float64(totals[pair])
		site := s.Func
		if s.Line > 0 {
			site = fmt.Sprintf("%s:%d", s.Func, s.Line)
		}
		est := "-"
		if t := estNs[pair]; t > 0 {
			est = fmt.Sprintf("%.2fms", share*t/1e6)
		}
		b = append(b, fmt.Sprintf("%-12s %-10s %-24s %12d %6.1f%% %10s\n",
			s.Graft, s.Tech, site, s.Fuel, 100*share, est)...)
	}
	return string(b)
}

// lookup fetches a registered GraftMetrics without creating one.
func lookup(graft, tech string) *GraftMetrics {
	key := graft + "\x00" + tech
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.byKey[key]
}

// profiler is the live profile; nil pointer means disabled. Engines
// capture the pointer at load time, mirroring the metrics wrap.
var profiler atomic.Pointer[Profile]

// EnableProfiler installs a fresh profile sampling every interval fuel
// units (DefaultProfileInterval when interval is 0) and returns it.
// Only engines loaded after the call are profiled.
func EnableProfiler(interval int64) (*Profile, error) {
	if interval == 0 {
		interval = DefaultProfileInterval
	}
	p, err := NewProfile(interval)
	if err != nil {
		return nil, err
	}
	profiler.Store(p)
	return p, nil
}

// DisableProfiler stops sampling for engines loaded afterwards; already
// loaded engines keep their captured scope.
func DisableProfiler() { profiler.Store(nil) }

// ProfilerEnabled reports whether a profile is installed.
func ProfilerEnabled() bool { return profiler.Load() != nil }

// CurrentProfile returns the installed profile, or nil.
func CurrentProfile() *Profile { return profiler.Load() }
