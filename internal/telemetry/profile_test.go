package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileIntervalValidation(t *testing.T) {
	for _, bad := range []int64{0, -1, -4096} {
		if _, err := NewProfile(bad); err == nil {
			t.Errorf("NewProfile(%d) accepted", bad)
		}
		if _, err := EnableProfiler(bad); bad != 0 && err == nil {
			t.Errorf("EnableProfiler(%d) accepted", bad)
		}
	}
	// 0 is the "use the default" spelling for EnableProfiler only.
	p, err := EnableProfiler(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Interval() != DefaultProfileInterval {
		t.Errorf("default interval = %d", p.Interval())
	}
	DisableProfiler()
	if ProfilerEnabled() || CurrentProfile() != nil {
		t.Error("profiler still enabled after DisableProfiler")
	}
}

func TestProfileAccumulation(t *testing.T) {
	p, err := NewProfile(256)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Scope("evict", "bytecode")
	for i := 0; i < 10; i++ {
		s.Hit("evict", 12, 256)
	}
	for i := 0; i < 3; i++ {
		s.Hit("evict", 20, 256)
	}
	s.Hit("helper", 0, 256)

	samples := p.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d sites, want 3", len(samples))
	}
	// Heaviest first.
	top := samples[0]
	if top.Func != "evict" || top.Line != 12 || top.Fuel != 10*256 || top.Hits != 10 {
		t.Errorf("top sample = %+v", top)
	}
	if got, want := p.TotalFuel(), int64(14*256); got != want {
		t.Errorf("TotalFuel = %d, want %d", got, want)
	}

	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("folded output: %d lines", len(lines))
	}
	if lines[0] != "evict;bytecode;evict:12 2560" {
		t.Errorf("folded line 0 = %q", lines[0])
	}
	// Line 0 sites fold without the :line suffix.
	if !strings.HasPrefix(lines[2], "evict;bytecode;helper ") {
		t.Errorf("line-less site folded as %q", lines[2])
	}

	table := p.LineTable()
	if !strings.Contains(table, "evict:12") || !strings.Contains(table, "71.4%") {
		t.Errorf("LineTable missing top site or share:\n%s", table)
	}
}
