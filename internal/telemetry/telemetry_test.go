package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"graftlab/internal/mem"
)

func TestEnabledFlag(t *testing.T) {
	defer SetEnabled(false)
	if !Disabled() {
		t.Fatal("telemetry should start disabled")
	}
	SetEnabled(true)
	if Disabled() || !Enabled() {
		t.Fatal("SetEnabled(true) did not take")
	}
}

func TestRegisterDedup(t *testing.T) {
	defer ResetMetrics()
	a := Register("md5", "bytecode")
	b := Register("md5", "bytecode")
	if a != b {
		t.Fatal("Register should return the same accumulator for the same pair")
	}
	if c := Register("md5", "script"); c == a {
		t.Fatal("different technology must get its own accumulator")
	}
	if got := len(Metrics()); got != 2 {
		t.Fatalf("Metrics() = %d entries, want 2", got)
	}
}

func TestGraftMetricsCounters(t *testing.T) {
	defer ResetMetrics()
	m := Register("pageevict", "compiled-unsafe")
	for i := 0; i < 10; i++ {
		m.Inc()
	}
	m.AddFuel(100)
	m.AddFuel(50)
	m.RecordError(&mem.Trap{Kind: mem.TrapFuel})
	m.RecordError(&mem.Trap{Kind: mem.TrapOOBLoad})
	m.RecordError(fmt.Errorf("plain failure"))
	m.RecordLatency(1500 * time.Nanosecond)

	if m.Invocations() != 10 {
		t.Errorf("Invocations = %d, want 10", m.Invocations())
	}
	if m.FuelConsumed() != 150 {
		t.Errorf("FuelConsumed = %d, want 150", m.FuelConsumed())
	}
	if m.FuelPreemptions() != 1 {
		t.Errorf("FuelPreemptions = %d, want 1", m.FuelPreemptions())
	}
	if m.TrapCount(mem.TrapOOBLoad) != 1 {
		t.Errorf("TrapCount(OOBLoad) = %d, want 1", m.TrapCount(mem.TrapOOBLoad))
	}
	s := m.Snapshot()
	if s.Errors != 1 || s.Traps["fuel exhausted"] != 1 || s.LatencySamples != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	// Snapshots with no invocations are elided from SnapshotAll.
	Register("idle", "script")
	if got := len(SnapshotAll()); got != 1 {
		t.Errorf("SnapshotAll = %d entries, want 1", got)
	}
}

func TestSampleInterval(t *testing.T) {
	defer ResetMetrics()
	defer SetSampleInterval(defaultSampleInterval)
	SetSampleInterval(1)
	m := Register("all-sampled", "x")
	for i := uint64(1); i <= 5; i++ {
		if !m.Sampled(i) {
			t.Fatalf("interval 1 must sample every invocation (n=%d)", i)
		}
	}
	SetSampleInterval(8)
	m2 := Register("one-in-eight", "x")
	n := 0
	for i := uint64(1); i <= 64; i++ {
		if m2.Sampled(i) {
			n++
		}
	}
	if n != 8 {
		t.Errorf("interval 8 sampled %d of 64", n)
	}
	// Non-power-of-two rounds down.
	SetSampleInterval(100)
	if got := sampleMask.Load(); got != 63 {
		t.Errorf("interval 100 -> mask %d, want 63", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	// 1000 samples spread 1..1000µs: quantile estimates must land within
	// the matched power-of-two bucket (factor-2 accuracy bound).
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("Max = %v", h.Max())
	}
	checks := []struct {
		q     float64
		exact time.Duration
	}{{0.50, 500 * time.Microsecond}, {0.95, 950 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.exact/2 || got > c.exact*2 {
			t.Errorf("Quantile(%v) = %v, want within 2x of %v", c.q, got, c.exact)
		}
	}
	if h.Quantile(1) > h.Max() {
		t.Errorf("Quantile(1) = %v beyond max %v", h.Quantile(1), h.Max())
	}
	if m := h.Mean(); m < 400*time.Microsecond || m > 600*time.Microsecond {
		t.Errorf("Mean = %v, want ~500µs", m)
	}
}

func TestHistogramConstantSamples(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(3 * time.Microsecond)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 2*time.Microsecond || got > 3*time.Microsecond {
			t.Errorf("Quantile(%v) = %v, want within bucket of 3µs", q, got)
		}
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.Emit(EvPageFault, uint64(i), 0, 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Overwritten() != 2 {
		t.Fatalf("Overwritten = %d, want 2", tr.Overwritten())
	}
	evs := tr.Events()
	if len(evs) != 4 || evs[0].A != 2 || evs[3].A != 5 {
		t.Fatalf("Events = %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Errorf("seq not monotonic: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if n := tr.CountByKind()["page_fault"]; n != 6 {
		t.Errorf("CountByKind[page_fault] = %d, want 6 (cumulative)", n)
	}
}

func TestTraceJSONL(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(EvEvictDecision, 100, 105, EvictOverride)
	tr.Emit(EvLDSegment, 7, 112, 16)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 events + footer", len(lines))
	}
	var ev struct {
		Seq  uint64 `json:"seq"`
		T    int64  `json:"t"`
		Kind string `json:"kind"`
		A    uint64 `json:"a"`
		B    uint64 `json:"b"`
		C    uint64 `json:"c"`
	}
	if err := json.Unmarshal(lines[0], &ev); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if ev.Kind != "evict_decision" || ev.A != 100 || ev.B != 105 || ev.C != EvictOverride {
		t.Errorf("decoded event = %+v", ev)
	}
	if ev.T == 0 {
		t.Error("event timestamp missing")
	}
	if err := json.Unmarshal(lines[1], &ev); err != nil || ev.Kind != "ld_segment" {
		t.Errorf("line 1: %v, kind %q", err, ev.Kind)
	}
	var foot struct {
		Footer   bool   `json:"footer"`
		Emitted  uint64 `json:"emitted"`
		Retained int    `json:"retained"`
		Dropped  uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(lines[2], &foot); err != nil {
		t.Fatalf("footer is not valid JSON: %v", err)
	}
	if !foot.Footer || foot.Emitted != 2 || foot.Retained != 2 || foot.Dropped != 0 {
		t.Errorf("footer = %+v, want footer:true emitted:2 retained:2 dropped:0", foot)
	}
}

func TestTraceJSONLFooterDropped(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EvPageFault, uint64(i), 0, 0)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	var foot struct {
		Footer   bool   `json:"footer"`
		Emitted  uint64 `json:"emitted"`
		Retained int    `json:"retained"`
		Dropped  uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &foot); err != nil {
		t.Fatalf("footer: %v", err)
	}
	if !foot.Footer || foot.Emitted != 10 || foot.Retained != 4 || foot.Dropped != 6 {
		t.Errorf("footer = %+v, want emitted:10 retained:4 dropped:6", foot)
	}
}

func TestGlobalTraceToggle(t *testing.T) {
	defer DisableTrace()
	DisableTrace()
	Emit(EvSchedPick, 1, 0, 0) // must be a no-op, not a panic
	EnableTrace(8)
	if !TraceEnabled() {
		t.Fatal("EnableTrace did not enable")
	}
	Emit(EvSchedPick, 1, 0, 0)
	if got := CurrentTrace().Len(); got != 1 {
		t.Fatalf("global trace Len = %d, want 1", got)
	}
	DisableTrace()
	Emit(EvSchedPick, 2, 0, 0)
	if got := CurrentTrace().Len(); got != 1 {
		t.Fatalf("disabled trace still recorded: Len = %d", got)
	}
}

// TestConcurrentRecording is the race-detector gate for the atomic
// counters: many goroutines hammer one accumulator and the global trace
// while a reader snapshots concurrently.
func TestConcurrentRecording(t *testing.T) {
	defer ResetMetrics()
	defer DisableTrace()
	EnableTrace(128)
	m := Register("concurrent", "x")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n := m.Inc()
				if m.Sampled(n) {
					m.RecordLatency(time.Duration(i) * time.Nanosecond)
				}
				m.AddFuel(1)
				if i%100 == 0 {
					m.RecordError(&mem.Trap{Kind: mem.TrapOOBStore})
				}
				Emit(EvPageFault, uint64(i), 0, 0)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = m.Snapshot()
			_ = CurrentTrace().Events()
		}
	}()
	wg.Wait()
	<-done
	if m.Invocations() != workers*per {
		t.Errorf("Invocations = %d, want %d", m.Invocations(), workers*per)
	}
	if m.FuelConsumed() != workers*per {
		t.Errorf("FuelConsumed = %d, want %d", m.FuelConsumed(), workers*per)
	}
	if got := CurrentTrace().CountByKind()["page_fault"]; got != workers*per {
		t.Errorf("trace count = %d, want %d", got, workers*per)
	}
}
