package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Sliding-window aggregation: the cumulative-since-start counters in
// GraftMetrics answer "what has this graft done since boot" (the
// bpftool view), but a serving daemon needs "what is it doing *now*" —
// a graft that misbehaved an hour ago must look different from one
// misbehaving this second, and an SLO check on lifetime aggregates can
// neither catch a fresh regression promptly nor observe recovery.
// Production eBPF deployments answer this with continuously scraped,
// windowed per-program metrics; this file is that plane.
//
// Each GraftMetrics carries a ring of time-bucketed windows. A bucket
// holds the same signals as the cumulative accumulator — invocations,
// errors, traps, fuel preemptions, fuel, and a mergeable log2 latency
// histogram — for one fixed-width time slice. The ring rotates
// implicitly: a writer derives the bucket index from the clock
// (epoch = unixNanos / width, slot = epoch % len(ring)) and the first
// writer to enter a recycled slot zeroes it behind a CAS on the slot's
// published epoch. There is no rotation goroutine and no lock anywhere
// on the path.
//
// Budget: window recording rides the existing batched single-writer
// flush points (AddInvocations / RecordLatency / AddFuel fire every
// sampling interval, RecordError only on the already-slow error path),
// so the added cost is one coarse clock read plus a handful of
// uncontended atomic adds per flush — amortized to well under a
// nanosecond per invocation at the default 1-in-256 interval.
// BenchmarkObservabilityHotPath/window-* prices the pieces and the A6
// ablation row re-measures the end-to-end budget with windows enabled.

// WindowConfig shapes the per-key bucket ring: Width is one bucket's
// time slice, Buckets the ring length, so the ring retains
// Width×Buckets of history. The retained span bounds Snapshot windows —
// asking for more history than the ring holds clamps to the ring.
type WindowConfig struct {
	Width   time.Duration
	Buckets int
}

// DefaultWindowConfig retains 64 five-second buckets (320s): enough to
// serve both burn-rate windows the watchdog defaults to (10s fast, 5m
// slow) at ~38KB per registered key.
var DefaultWindowConfig = WindowConfig{Width: 5 * time.Second, Buckets: 64}

// windowWidth/windowBuckets are the current registration-time config,
// captured by each Windows at Register like the sampling mask.
var (
	windowWidth   atomic.Int64
	windowBuckets atomic.Int64
)

func init() {
	windowWidth.Store(int64(DefaultWindowConfig.Width))
	windowBuckets.Store(int64(DefaultWindowConfig.Buckets))
}

// SetWindowConfig sets the bucket geometry for keys registered after
// the call (the ring is allocated at Register time). Tests use small
// widths so rotations happen in milliseconds; production keeps the
// default. Width must be positive and Buckets >= 2 (a single bucket
// cannot hold one complete slice plus the current partial one).
func SetWindowConfig(cfg WindowConfig) error {
	if cfg.Width <= 0 || cfg.Buckets < 2 {
		return fmt.Errorf("telemetry: window config needs width > 0 and buckets >= 2, got %v x %d",
			cfg.Width, cfg.Buckets)
	}
	windowWidth.Store(int64(cfg.Width))
	windowBuckets.Store(int64(cfg.Buckets))
	return nil
}

// epochResetting marks a slot mid-zeroing; stored epochs are e+1 so the
// zero value means "never used" and real epochs are always positive.
const epochResetting = -1

// windowBucket is one time slice of one key's activity. All fields are
// atomic: flush points may run concurrently from pool workers, and
// snapshot readers never lock writers out.
type windowBucket struct {
	epoch       atomic.Int64 // bucket epoch + 1; 0 empty, -1 resetting
	invocations atomic.Uint64
	errs        atomic.Uint64
	traps       atomic.Uint64
	preempts    atomic.Uint64
	fuel        atomic.Int64
	lat         Histogram
}

// zero resets every counter. Runs only inside the rotation CAS window,
// so concurrent writers are parked on the epochResetting sentinel and
// cannot lose adds to the wipe.
func (b *windowBucket) zero() {
	b.invocations.Store(0)
	b.errs.Store(0)
	b.traps.Store(0)
	b.preempts.Store(0)
	b.fuel.Store(0)
	b.lat.Reset()
}

// Windows is one key's bucket ring. The clock is a field so rotation
// edge cases (stalls, spans crossing a rotation) are testable without
// sleeping.
type Windows struct {
	width int64 // bucket width, ns
	ring  []windowBucket
	now   func() int64 // unix ns; swapped by tests
}

func newWindows() *Windows {
	return &Windows{
		width: windowWidth.Load(),
		ring:  make([]windowBucket, windowBuckets.Load()),
		now:   func() int64 { return time.Now().UnixNano() },
	}
}

// Span reports how much history the ring retains.
func (w *Windows) Span() time.Duration {
	return time.Duration(w.width * int64(len(w.ring)))
}

// bucket returns the live bucket for the current clock reading,
// rotating (zeroing) a recycled slot on first entry. Lock-free: the
// only loop is the rotation CAS, taken once per key per bucket width.
// A writer that observes a *newer* epoch than its own clock reading
// (its read raced a rotation) records into the newer bucket rather
// than resurrecting the old one — at worst one flush lands one slice
// late, never in the future.
func (w *Windows) bucket() *windowBucket {
	e := w.now() / w.width
	b := &w.ring[int(e%int64(len(w.ring)))]
	for {
		cur := b.epoch.Load()
		switch {
		case cur == e+1 || cur > e+1:
			// Current (or a racing writer already rotated past us).
			return b
		case cur == epochResetting:
			// Another writer is zeroing; spin until it publishes.
			continue
		default: // stale or empty: rotate.
			if b.epoch.CompareAndSwap(cur, epochResetting) {
				b.zero()
				b.epoch.Store(e + 1)
				return b
			}
		}
	}
}

func (w *Windows) addInvocations(n uint64) { w.bucket().invocations.Add(n) }

func (w *Windows) recordLatency(d time.Duration) { w.bucket().lat.Record(d) }

func (w *Windows) addFuel(n int64) { w.bucket().fuel.Add(n) }

func (w *Windows) recordError() { w.bucket().errs.Add(1) }

func (w *Windows) recordTrap(preempt bool) {
	b := w.bucket()
	b.traps.Add(1)
	if preempt {
		b.preempts.Add(1)
	}
}

// WindowSnapshot aggregates one key's activity over the last Window of
// time: absolute counts plus the derived rates the SLO plane and the
// export surface consume. Durations are integer nanoseconds in JSON,
// like every duration the repo exports.
type WindowSnapshot struct {
	Graft  string        `json:"graft"`
	Tech   string        `json:"tech"`
	Window time.Duration `json:"window"`
	// Covered is the span the snapshot actually aggregates: less than
	// Window when the ring retains less history or the process is young.
	Covered time.Duration `json:"covered"`

	Invocations    uint64 `json:"invocations"`
	Errors         uint64 `json:"errors,omitempty"`
	Traps          uint64 `json:"traps,omitempty"`
	Preempts       uint64 `json:"preempts,omitempty"`
	Fuel           int64  `json:"fuel,omitempty"`
	LatencySamples uint64 `json:"latency_samples,omitempty"`

	Rate        float64 `json:"rate"`                   // invocations / second
	TrapRatio   float64 `json:"trap_ratio,omitempty"`   // (traps+errors) / invocations
	PreemptRate float64 `json:"preempt_rate,omitempty"` // fuel preemptions / invocations
	FuelPerSec  float64 `json:"fuel_per_sec,omitempty"`

	Mean time.Duration `json:"latency_mean,omitempty"`
	Std  time.Duration `json:"latency_std,omitempty"`
	P50  time.Duration `json:"latency_p50,omitempty"`
	P95  time.Duration `json:"latency_p95,omitempty"`
	P99  time.Duration `json:"latency_p99,omitempty"`
	Max  time.Duration `json:"latency_max,omitempty"`

	Quarantined bool   `json:"quarantined,omitempty"`
	Note        string `json:"note,omitempty"`
}

// snapshot merges the buckets covering the last d of time. The current
// partial bucket is included (freshness beats completeness for a live
// view); buckets whose epoch fell out of the requested range — or were
// recycled — are skipped, which is how empty slices and ring wrap
// resolve without any bookkeeping. A stalled clock shrinks Covered
// rather than producing negative or infinite rates.
func (w *Windows) snapshot(d time.Duration) WindowSnapshot {
	s := WindowSnapshot{Window: d}
	if d <= 0 {
		return s
	}
	now := w.now()
	cur := now / w.width
	n := int64((int64(d) + w.width - 1) / w.width) // slices to cover d, rounded up
	if n > int64(len(w.ring)) {
		n = int64(len(w.ring))
	}
	if n < 1 {
		n = 1
	}
	var lat Histogram
	for e := cur - n + 1; e <= cur; e++ {
		if e < 0 {
			continue
		}
		b := &w.ring[int(e%int64(len(w.ring)))]
		if b.epoch.Load() != e+1 {
			continue // empty, recycled, or mid-reset: nothing from this slice
		}
		s.Invocations += b.invocations.Load()
		s.Errors += b.errs.Load()
		s.Traps += b.traps.Load()
		s.Preempts += b.preempts.Load()
		s.Fuel += b.fuel.Load()
		lat.Merge(&b.lat)
	}
	// Covered time: n-1 complete slices plus the elapsed part of the
	// current one. now%width == 0 right at a boundary; the max(…, 1ns)
	// floor keeps a single-bucket snapshot from dividing by zero.
	covered := (n-1)*w.width + now%w.width
	if covered < 1 {
		covered = 1
	}
	s.Covered = time.Duration(covered)
	secs := float64(covered) / float64(time.Second)
	s.Rate = float64(s.Invocations) / secs
	s.FuelPerSec = float64(s.Fuel) / secs
	if s.Invocations > 0 {
		s.TrapRatio = float64(s.Traps+s.Errors) / float64(s.Invocations)
		s.PreemptRate = float64(s.Preempts) / float64(s.Invocations)
	}
	s.LatencySamples = lat.Count()
	if s.LatencySamples > 0 {
		s.Mean = lat.Mean()
		s.Std = lat.Std()
		s.P50 = lat.Quantile(0.50)
		s.P95 = lat.Quantile(0.95)
		s.P99 = lat.Quantile(0.99)
		s.Max = lat.Max()
	}
	return s
}

// Window aggregates the key's activity over the last d of time
// (clamped to the ring's retained span). Concurrent with traffic the
// numbers are consistent-enough counters, not a linearizable cut —
// the same contract as Snapshot.
func (m *GraftMetrics) Window(d time.Duration) WindowSnapshot {
	s := m.win.snapshot(d)
	s.Graft = m.GraftName
	s.Tech = m.Tech
	s.Quarantined = m.quarantined.Load()
	s.Note = m.Note()
	return s
}

// WindowSpan reports how much history this key's ring retains.
func (m *GraftMetrics) WindowSpan() time.Duration { return m.win.Span() }

// WindowAll snapshots the last d of time for every registered key with
// any lifetime activity, sorted like Metrics. Keys idle across the
// whole window still appear (with zero rates) so a live view can show
// a quarantined or drained graft going quiet rather than vanishing.
func WindowAll(d time.Duration) []WindowSnapshot {
	ms := Metrics()
	out := make([]WindowSnapshot, 0, len(ms))
	for _, m := range ms {
		if m.Invocations() == 0 && m.win.snapshot(d).Invocations == 0 {
			continue
		}
		out = append(out, m.Window(d))
	}
	return out
}
