package telemetry

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram: count %d mean %v max %v", h.Count(), h.Mean(), h.Max())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(300 * time.Nanosecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	// Every quantile of a one-sample distribution is that sample's
	// bucket; the estimate must land in [256ns, 300ns] (clamped to max).
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 256*time.Nanosecond || got > 300*time.Nanosecond {
			t.Errorf("Quantile(%v) = %v, want within [256ns, 300ns]", q, got)
		}
	}
	if h.Max() != 300*time.Nanosecond {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramAllZeroBucket(t *testing.T) {
	// Zero-length samples land in bucket 0, whose lower bound is 0 and
	// whose width is zero — quantiles must not fabricate latency.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(0)
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("all-zero Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("mean %v max %v, want 0", h.Mean(), h.Max())
	}
	// Negative durations clamp into bucket 0 too.
	h.Record(-time.Second)
	if got := h.Quantile(1); got != 0 {
		t.Errorf("after negative sample Quantile(1) = %v, want 0", got)
	}
}

func TestHistogramMergeQuantiles(t *testing.T) {
	// Two shard-local histograms with disjoint ranges: fast samples in
	// one, a slow tail in the other. The merged view must rank across
	// both populations.
	var fast, slow, merged Histogram
	for i := 0; i < 90; i++ {
		fast.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		slow.Record(40 * time.Microsecond)
	}
	merged.Merge(&fast)
	merged.Merge(&slow)

	if merged.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", merged.Count())
	}
	if got := merged.Max(); got != 40*time.Microsecond {
		t.Errorf("merged max = %v, want 40µs", got)
	}
	// p50 comes from the fast population (same power-of-two bucket as
	// 100ns), p99 from the slow tail.
	if got := merged.Quantile(0.5); got < 64*time.Nanosecond || got > 128*time.Nanosecond {
		t.Errorf("merged p50 = %v, want within fast bucket [64ns,128ns]", got)
	}
	if got := merged.Quantile(0.99); got < 32*time.Microsecond || got > 40*time.Microsecond {
		t.Errorf("merged p99 = %v, want within slow bucket", got)
	}
	wantMean := (90*100*time.Nanosecond + 10*40*time.Microsecond) / 100
	if got := merged.Mean(); got != wantMean {
		t.Errorf("merged mean = %v, want %v", got, wantMean)
	}

	// Merging nil or self must be a no-op.
	before := merged.Count()
	merged.Merge(nil)
	merged.Merge(&merged)
	if merged.Count() != before {
		t.Errorf("nil/self merge changed count: %d -> %d", before, merged.Count())
	}
}

func TestHistogramStd(t *testing.T) {
	var h Histogram
	if h.Std() != 0 {
		t.Errorf("empty Std = %v, want 0", h.Std())
	}
	h.Record(300 * time.Nanosecond)
	if h.Std() != 0 {
		t.Errorf("single-sample Std = %v, want 0", h.Std())
	}

	// A tight distribution must read far narrower than a spread one;
	// both estimates are bucket-midpoint coarse, so only the ordering
	// and rough magnitude are contractual.
	var tight, wide Histogram
	for i := 0; i < 64; i++ {
		tight.Record(500 * time.Nanosecond)
		if i%2 == 0 {
			wide.Record(100 * time.Nanosecond)
		} else {
			wide.Record(100 * time.Microsecond)
		}
	}
	ts, ws := tight.Std(), wide.Std()
	if ws <= ts {
		t.Errorf("wide Std %v <= tight Std %v", ws, ts)
	}
	// The wide split is ~±50µs around its mean; the log2 buckets keep
	// the estimate within 2x of that.
	if ws < 25*time.Microsecond || ws > 100*time.Microsecond {
		t.Errorf("wide Std = %v, want on the order of 50µs", ws)
	}
}
