package telemetry

import (
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram: count %d mean %v max %v", h.Count(), h.Mean(), h.Max())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(300 * time.Nanosecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	// Every quantile of a one-sample distribution is that sample's
	// bucket; the estimate must land in [256ns, 300ns] (clamped to max).
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 256*time.Nanosecond || got > 300*time.Nanosecond {
			t.Errorf("Quantile(%v) = %v, want within [256ns, 300ns]", q, got)
		}
	}
	if h.Max() != 300*time.Nanosecond {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramAllZeroBucket(t *testing.T) {
	// Zero-length samples land in bucket 0, whose lower bound is 0 and
	// whose width is zero — quantiles must not fabricate latency.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(0)
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("all-zero Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("mean %v max %v, want 0", h.Mean(), h.Max())
	}
	// Negative durations clamp into bucket 0 too.
	h.Record(-time.Second)
	if got := h.Quantile(1); got != 0 {
		t.Errorf("after negative sample Quantile(1) = %v, want 0", got)
	}
}

func TestHistogramMergeQuantiles(t *testing.T) {
	// Two shard-local histograms with disjoint ranges: fast samples in
	// one, a slow tail in the other. The merged view must rank across
	// both populations.
	var fast, slow, merged Histogram
	for i := 0; i < 90; i++ {
		fast.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		slow.Record(40 * time.Microsecond)
	}
	merged.Merge(&fast)
	merged.Merge(&slow)

	if merged.Count() != 100 {
		t.Fatalf("merged count = %d, want 100", merged.Count())
	}
	if got := merged.Max(); got != 40*time.Microsecond {
		t.Errorf("merged max = %v, want 40µs", got)
	}
	// p50 comes from the fast population (same power-of-two bucket as
	// 100ns), p99 from the slow tail.
	if got := merged.Quantile(0.5); got < 64*time.Nanosecond || got > 128*time.Nanosecond {
		t.Errorf("merged p50 = %v, want within fast bucket [64ns,128ns]", got)
	}
	if got := merged.Quantile(0.99); got < 32*time.Microsecond || got > 40*time.Microsecond {
		t.Errorf("merged p99 = %v, want within slow bucket", got)
	}
	wantMean := (90*100*time.Nanosecond + 10*40*time.Microsecond) / 100
	if got := merged.Mean(); got != wantMean {
		t.Errorf("merged mean = %v, want %v", got, wantMean)
	}

	// Merging nil or self must be a no-op.
	before := merged.Count()
	merged.Merge(nil)
	merged.Merge(&merged)
	if merged.Count() != before {
		t.Errorf("nil/self merge changed count: %d -> %d", before, merged.Count())
	}
}

// TestHistogramQuantileClampsToMax pins the interpolation clamp: when
// the rank lands in the histogram's top bucket, linear interpolation
// inside the power-of-two range could fabricate a value up to 2x the
// largest sample ever recorded. The estimate must never exceed Max().
func TestHistogramQuantileClampsToMax(t *testing.T) {
	var h Histogram
	// 1025ns lands in bucket 11 ([1024ns, 2048ns)); a high quantile
	// interpolates toward the top of that bucket — far past the true
	// maximum — unless clamped.
	for i := 0; i < 1000; i++ {
		h.Record(1025 * time.Nanosecond)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got > h.Max() {
			t.Errorf("Quantile(%v) = %v exceeds Max() = %v", q, got, h.Max())
		}
	}
	if h.Quantile(1) != 1025*time.Nanosecond {
		t.Errorf("Quantile(1) = %v, want exactly the max 1025ns", h.Quantile(1))
	}

	// The clamp also holds when samples span buckets: the top bucket's
	// interpolation is bounded by the bucket's own max-so-far.
	h.Record(3 * time.Microsecond)
	if got := h.Quantile(0.9999); got > 3*time.Microsecond {
		t.Errorf("tail Quantile = %v exceeds max 3µs", got)
	}

	// Out-of-range q values clamp to [0,1] instead of panicking.
	if h.Quantile(-1) > h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("out-of-range quantiles not clamped")
	}
}

func TestHistogramResetAndClone(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Record(time.Duration(i+1) * time.Microsecond)
	}
	c := h.Clone()
	if c.Count() != h.Count() || c.Max() != h.Max() || c.Quantile(0.5) != h.Quantile(0.5) {
		t.Errorf("clone diverges: count %d/%d max %v/%v",
			c.Count(), h.Count(), c.Max(), h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("reset left residue: count %d max %v", h.Count(), h.Max())
	}
	// The clone is independent of the reset original.
	if c.Count() != 50 {
		t.Errorf("clone count after original reset = %d, want 50", c.Count())
	}
}

// TestHistogramMergeSubRoundTrip is the property test for the window
// delta derivation: for histograms A and B, (A merged B).Sub(A) must
// reproduce B's buckets, count, and sum exactly.
func TestHistogramMergeSubRoundTrip(t *testing.T) {
	// Deterministic pseudo-random-ish sample sets with overlapping
	// buckets (multiplicative walk mod a prime).
	gen := func(seed, n int) []time.Duration {
		out := make([]time.Duration, n)
		x := seed
		for i := range out {
			x = (x*48271 + 13) % 99991
			out[i] = time.Duration(x) * time.Nanosecond
		}
		return out
	}
	var a, b Histogram
	for _, d := range gen(7, 500) {
		a.Record(d)
	}
	for _, d := range gen(1234, 300) {
		b.Record(d)
	}

	sum := a.Clone()
	sum.Merge(&b)
	sum.Sub(&a)

	if sum.Count() != b.Count() {
		t.Fatalf("round-trip count = %d, want %d", sum.Count(), b.Count())
	}
	for i := 0; i < numBuckets; i++ {
		if got, want := sum.buckets[i].Load(), b.buckets[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if sum.sum.Load() != b.sum.Load() {
		t.Errorf("round-trip sum = %d, want %d", sum.sum.Load(), b.sum.Load())
	}
	// Quantiles of the delta match B's within the documented max
	// overestimate (max is not subtractable, so it may exceed B's).
	if got := sum.Quantile(0.5); got > sum.Max() {
		t.Errorf("delta p50 %v exceeds its max %v", got, sum.Max())
	}
}

func TestHistogramSubSaturates(t *testing.T) {
	// Subtracting a larger histogram bottoms out at zero everywhere —
	// the racy-snapshot safety property.
	var small, big Histogram
	for i := 0; i < 10; i++ {
		small.Record(time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		big.Record(time.Microsecond)
	}
	small.Sub(&big)
	if small.Count() != 0 || small.sum.Load() != 0 {
		t.Errorf("saturating sub left count=%d sum=%d", small.Count(), small.sum.Load())
	}
	if small.Quantile(0.99) != 0 {
		t.Errorf("saturated histogram has nonzero quantile %v", small.Quantile(0.99))
	}

	// Sub(nil) is a no-op; Sub(self) empties.
	big.Sub(nil)
	if big.Count() != 100 {
		t.Errorf("Sub(nil) changed count to %d", big.Count())
	}
	big.Sub(&big)
	if big.Count() != 0 {
		t.Errorf("Sub(self) left count %d", big.Count())
	}
}

func TestHistogramStd(t *testing.T) {
	var h Histogram
	if h.Std() != 0 {
		t.Errorf("empty Std = %v, want 0", h.Std())
	}
	h.Record(300 * time.Nanosecond)
	if h.Std() != 0 {
		t.Errorf("single-sample Std = %v, want 0", h.Std())
	}

	// A tight distribution must read far narrower than a spread one;
	// both estimates are bucket-midpoint coarse, so only the ordering
	// and rough magnitude are contractual.
	var tight, wide Histogram
	for i := 0; i < 64; i++ {
		tight.Record(500 * time.Nanosecond)
		if i%2 == 0 {
			wide.Record(100 * time.Nanosecond)
		} else {
			wide.Record(100 * time.Microsecond)
		}
	}
	ts, ws := tight.Std(), wide.Std()
	if ws <= ts {
		t.Errorf("wide Std %v <= tight Std %v", ws, ts)
	}
	// The wide split is ~±50µs around its mean; the log2 buckets keep
	// the estimate within 2x of that.
	if ws < 25*time.Microsecond || ws > 100*time.Microsecond {
		t.Errorf("wide Std = %v, want on the order of 50µs", ws)
	}
}
