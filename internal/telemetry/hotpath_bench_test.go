package telemetry

import (
	"testing"
	"time"
)

// Decomposes the per-invocation instrumentation cost so the <=2% budget
// claim in the package doc can be re-verified piece by piece.
func BenchmarkHotPath(b *testing.B) {
	m := Register("bench", "compiled-unsafe")
	b.Run("inc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Inc()
		}
	})
	b.Run("inc+sampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := m.Inc()
			if m.Sampled(n) {
				m.RecordLatency(time.Nanosecond)
			}
		}
	})
	b.Run("addfuel-zero", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.AddFuel(0)
		}
	})
	ResetMetrics()
}

// Prices the profiler and span-tracer pieces the same way: the
// disabled paths must be branch-cheap (they sit on engine hot loops
// and kernel emit points), the enabled paths amortize against their
// sampling intervals.
func BenchmarkObservabilityHotPath(b *testing.B) {
	b.Run("rootspan-disabled", func(b *testing.B) {
		DisableSpans()
		for i := 0; i < b.N; i++ {
			sp := RootSpan("bench", "bench")
			if sp.Active() {
				b.Fatal("span active while disabled")
			}
		}
	})
	b.Run("rootspan-sampled-64", func(b *testing.B) {
		EnableSpans(1 << 12)
		defer DisableSpans()
		for i := 0; i < b.N; i++ {
			sp := RootSpan("bench", "bench")
			if sp.Active() {
				sp.End(0, 0)
			}
		}
	})
	b.Run("root+child+end-every", func(b *testing.B) {
		EnableSpans(1 << 12)
		if err := SetSpanSampleEvery(1); err != nil {
			b.Fatal(err)
		}
		defer func() {
			DisableSpans()
			_ = SetSpanSampleEvery(64)
		}()
		for i := 0; i < b.N; i++ {
			sp := RootSpan("bench", "bench")
			cs := ChildSpan(sp.Ctx(), "child", "bench")
			cs.End(0, 0)
			sp.End(0, 0)
		}
	})
	b.Run("profscope-hit", func(b *testing.B) {
		p, err := NewProfile(DefaultProfileInterval)
		if err != nil {
			b.Fatal(err)
		}
		s := p.Scope("bench", "compiled-unsafe")
		for i := 0; i < b.N; i++ {
			s.Hit("evict", 7, DefaultProfileInterval)
		}
	})
	b.Run("window-record", func(b *testing.B) {
		// Full cost of landing one flush in the current window bucket:
		// one coarse clock read, the epoch check, one atomic add. This
		// is paid once per sampling interval, not per invocation.
		m := Register("bench-win", "compiled-unsafe")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.win.addInvocations(1)
		}
		ResetMetrics()
	})
	b.Run("window-flush-amortized-256", func(b *testing.B) {
		// What an instrumented wrapper actually pays per invocation for
		// the whole batched flush (cumulative + window) at the default
		// 1-in-256 sampling interval.
		m := Register("bench-win", "compiled-unsafe")
		var local uint64
		mask := m.Mask()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			local++
			if local&mask == 0 {
				m.AddInvocations(mask + 1)
			}
		}
		ResetMetrics()
	})
	b.Run("window-snapshot", func(b *testing.B) {
		// The reader side: one windowed snapshot over the default export
		// window. Runs on scrape/stream paths, never on the hot path —
		// priced to show it stays microseconds.
		m := Register("bench-win", "compiled-unsafe")
		m.AddInvocations(1000)
		for i := 0; i < 100; i++ {
			m.RecordLatency(time.Duration(i) * time.Microsecond)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := m.Window(DefaultExportWindow)
			if s.Invocations == 0 {
				b.Fatal("empty snapshot")
			}
		}
		ResetMetrics()
	})
	b.Run("profiler-tick-amortized", func(b *testing.B) {
		// What a metered engine actually pays per fuel charge: a
		// countdown, with one Hit per DefaultProfileInterval units.
		p, err := NewProfile(DefaultProfileInterval)
		if err != nil {
			b.Fatal(err)
		}
		s := p.Scope("bench", "bytecode")
		tick, every := int64(DefaultProfileInterval), int64(DefaultProfileInterval)
		for i := 0; i < b.N; i++ {
			tick -= 8 // typical block cost
			if tick <= 0 {
				tick += every
				s.Hit("md5_block", 42, every)
			}
		}
	})
}
