package telemetry

import (
	"testing"
	"time"
)

// Decomposes the per-invocation instrumentation cost so the <=2% budget
// claim in the package doc can be re-verified piece by piece.
func BenchmarkHotPath(b *testing.B) {
	m := Register("bench", "compiled-unsafe")
	b.Run("inc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Inc()
		}
	})
	b.Run("inc+sampled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := m.Inc()
			if m.Sampled(n) {
				m.RecordLatency(time.Nanosecond)
			}
		}
	})
	b.Run("addfuel-zero", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.AddFuel(0)
		}
	})
	ResetMetrics()
}
