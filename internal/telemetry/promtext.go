package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// Minimal Prometheus text-exposition parser. It exists so the export
// surface can be validated without a prometheus dependency: the
// /metrics acceptance test round-trips writeProm's output through it,
// and `graftmon -check` (the CI smoke job) uses the same code against a
// live endpoint — one parser, both gates. It covers the subset of the
// v0.0.4 format the exporter emits (HELP/TYPE comments, escaped label
// values, float values) and rejects anything malformed rather than
// guessing.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value, empty when absent.
func (s PromSample) Label(k string) string { return s.Labels[k] }

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	return validMetricName(s) && !strings.Contains(s, ":")
}

// parseLabels consumes `key="value",...}` starting after the opening
// brace, returning the labels and the rest of the line after the brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: unquoted value", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, s[1])
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if !strings.HasPrefix(s, "}") {
			return nil, "", fmt.Errorf("expected ',' or '}' after label %s", name)
		}
	}
}

// ParsePromText parses a Prometheus text-format exposition, returning
// every sample. Comment lines are validated as HELP/TYPE/EOF forms;
// malformed sample lines are errors, not skips, so a broken exporter
// fails loudly in both the unit test and the CI smoke check.
func ParsePromText(text string) ([]PromSample, error) {
	var out []PromSample
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(line[1:])
			switch {
			case rest == "", strings.HasPrefix(rest, "HELP "),
				strings.HasPrefix(rest, "TYPE "), rest == "EOF":
			default:
				// Free-form comments are legal in the format; accept.
			}
			continue
		}
		name := line
		var labels map[string]string
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			var err error
			labels, rest, err = parseLabels(line[i+1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
		} else if i := strings.IndexAny(line, " \t"); i >= 0 {
			name = line[:i]
			rest = line[i:]
		} else {
			return nil, fmt.Errorf("line %d: sample without value", ln+1)
		}
		name = strings.TrimSpace(name)
		if !validMetricName(name) {
			return nil, fmt.Errorf("line %d: bad metric name %q", ln+1, name)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("line %d: want value [timestamp], got %q", ln+1, rest)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", ln+1, fields[0], err)
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", ln+1, fields[1])
			}
		}
		if labels == nil {
			labels = map[string]string{}
		}
		out = append(out, PromSample{Name: name, Labels: labels, Value: v})
	}
	return out, nil
}

// FindProm returns the samples matching name and every given label
// pair ("k", "v", "k2", "v2", ...).
func FindProm(samples []PromSample, name string, kv ...string) []PromSample {
	var out []PromSample
outer:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue outer
			}
		}
		out = append(out, s)
	}
	return out
}
