package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func resetSpans(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		DisableSpans()
		if err := SetSpanSampleEvery(defaultSpanSampleEvery); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSpanSampleEveryValidation(t *testing.T) {
	for _, bad := range []int{0, -1} {
		if err := SetSpanSampleEvery(bad); err == nil {
			t.Errorf("SetSpanSampleEvery(%d) accepted", bad)
		}
	}
	if err := SetSpanSampleEvery(1); err != nil {
		t.Fatal(err)
	}
	if err := SetSpanSampleEvery(defaultSpanSampleEvery); err != nil {
		t.Fatal(err)
	}
}

func TestSpansDisabledAreInert(t *testing.T) {
	resetSpans(t)
	DisableSpans()
	sp := RootSpan("kernel:evict", "kernel")
	if sp.Active() {
		t.Fatal("root span active while disabled")
	}
	cs := ChildSpan(sp.Ctx(), "policy", "policy")
	if cs.Active() {
		t.Fatal("child of inactive span is active")
	}
	cs.End(1, 2) // must not panic or record
	sp.End(3, 4)
}

func TestSpanNesting(t *testing.T) {
	resetSpans(t)
	st := EnableSpans(64)
	if err := SetSpanSampleEvery(1); err != nil {
		t.Fatal(err)
	}

	root := RootSpan("kernel:evict", "kernel")
	if !root.Active() {
		t.Fatal("root span inactive with sampling=1")
	}
	child := ChildSpan(root.Ctx(), "policy:evict", "policy")
	grand := ChildSpan(child.Ctx(), "engine:bytecode", "engine")
	grand.End(0, 0)
	child.End(0, 0)
	root.End(100, 105)

	spans := st.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Records land innermost-first; all share the root's track.
	g, c, r := spans[0], spans[1], spans[2]
	if r.Parent != 0 || c.Parent != r.ID || g.Parent != c.ID {
		t.Errorf("parent chain broken: root=%+v child=%+v grand=%+v", r, c, g)
	}
	if c.Track != r.Track || g.Track != r.Track || r.Track != uint64(r.ID) {
		t.Errorf("tracks diverge: %d %d %d", r.Track, c.Track, g.Track)
	}
	if r.A != 100 || r.B != 105 {
		t.Errorf("root args = %d,%d", r.A, r.B)
	}
	// Children start no earlier and end no later than the root.
	if g.Start < r.Start || g.Start+g.Dur > r.Start+r.Dur {
		t.Errorf("grandchild [%d,%d] escapes root [%d,%d]",
			g.Start, g.Start+g.Dur, r.Start, r.Start+r.Dur)
	}
}

func TestSpanSampling(t *testing.T) {
	resetSpans(t)
	st := EnableSpans(1024)
	if err := SetSpanSampleEvery(8); err != nil {
		t.Fatal(err)
	}
	active := 0
	for i := 0; i < 64; i++ {
		sp := RootSpan("kernel:evict", "kernel")
		if sp.Active() {
			active++
			sp.End(0, 0)
		}
	}
	if active != 8 {
		t.Errorf("sampled %d of 64 roots, want 8", active)
	}
	if st.Len() != 8 {
		t.Errorf("ring holds %d", st.Len())
	}
}

func TestSpanRingWrap(t *testing.T) {
	resetSpans(t)
	st := EnableSpans(4)
	if err := SetSpanSampleEvery(1); err != nil {
		t.Fatal(err)
	}
	var last SpanID
	for i := 0; i < 10; i++ {
		sp := RootSpan("kernel:evict", "kernel")
		last = sp.ID()
		sp.End(uint64(i), 0)
	}
	if st.Len() != 4 {
		t.Errorf("ring holds %d, want 4", st.Len())
	}
	if st.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", st.Dropped())
	}
	spans := st.Spans()
	if spans[len(spans)-1].ID != last {
		t.Errorf("newest span not last: %d vs %d", spans[len(spans)-1].ID, last)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].A != spans[i-1].A+1 {
			t.Errorf("retained spans out of order: %v", spans)
		}
	}
}

// TestChromeTraceSchema asserts the export is well-formed Chrome
// trace-event JSON: it must parse, every event must be a ph:"X"
// complete event with numeric ts/dur and pid/tid, and the causal links
// in args must reference spans in the trace.
func TestChromeTraceSchema(t *testing.T) {
	resetSpans(t)
	st := EnableSpans(64)
	if err := SetSpanSampleEvery(1); err != nil {
		t.Fatal(err)
	}
	root := RootSpan("kernel:evict", "kernel")
	child := ChildSpan(root.Ctx(), "policy:evict", "policy")
	child.End(7, 0)
	root.End(100, 105)

	var buf bytes.Buffer
	if err := st.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var trace struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *uint64  `json:"pid"`
			TID  *uint64  `json:"tid"`
			Args struct {
				Span   uint64 `json:"span"`
				Parent uint64 `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(trace.TraceEvents))
	}
	ids := map[uint64]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "" || ev.Cat == "" {
			t.Errorf("event missing name/cat: %+v", ev)
		}
		if ev.TS == nil || ev.Dur == nil || *ev.TS < 0 || *ev.Dur < 0 {
			t.Errorf("event %q: bad ts/dur", ev.Name)
		}
		if ev.PID == nil || ev.TID == nil || *ev.TID == 0 {
			t.Errorf("event %q: missing pid/tid", ev.Name)
		}
		if ev.Args.Span == 0 {
			t.Errorf("event %q: args.span missing", ev.Name)
		}
		ids[ev.Args.Span] = true
	}
	for _, ev := range trace.TraceEvents {
		if p := ev.Args.Parent; p != 0 && !ids[p] {
			t.Errorf("event %q: parent %d not in trace", ev.Name, p)
		}
	}
	if trace.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
}
