package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Causal span tracing. A root span opens at a kernel emit point (pager
// eviction, stream pass, LD segment flush, pool worker checkout) and
// its context — parent span ID plus a track for rendering — is threaded
// through the tech instrumentation into the engine and across the
// upcall boundary, so one sampled eviction exports as nested
// kernel→policy→engine→upcall events a Chrome trace viewer or Perfetto
// renders as a flame of spans.
//
// The overhead contract mirrors the rest of the package: with tracing
// off, a root-span site costs one atomic load and child-span sites cost
// one zero-test of a value already in hand (an inactive context), so
// the kernel hot paths stay inside the ≤2% budget. With tracing on,
// only every SpanSampleEvery-th root is recorded; children of an
// unsampled root are free.

// SpanID names one recorded span; 0 is "no span".
type SpanID uint64

// SpanCtx is the propagation context handed down a call chain: the
// parent span and the track (Chrome "tid") the trace renders on. The
// zero SpanCtx is inactive and makes every derived span a no-op.
type SpanCtx struct {
	Parent SpanID
	Track  uint64
}

// Active reports whether spans derived from this context record.
func (c SpanCtx) Active() bool { return c.Parent != 0 }

// Span is one open span. The zero Span is inactive: End is a no-op.
type Span struct {
	id     SpanID
	parent SpanID
	track  uint64
	name   string
	cat    string
	start  int64 // ns since process start of recording
}

// Active reports whether this span will record on End.
func (s Span) Active() bool { return s.id != 0 }

// ID returns the span's ID (0 when inactive).
func (s Span) ID() SpanID { return s.id }

// Ctx returns the context children of this span should derive from.
func (s Span) Ctx() SpanCtx {
	if s.id == 0 {
		return SpanCtx{}
	}
	return SpanCtx{Parent: s.id, Track: s.track}
}

// SpanRecord is one completed span as stored in the ring.
type SpanRecord struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Cat    string
	Track  uint64
	Start  int64 // ns, monotonic within the trace
	Dur    int64 // ns
	A, B   uint64
}

// SpanTrace is the bounded ring completed spans land in; like the
// kernel event trace it overwrites the oldest record when full and
// reports how many were dropped.
type SpanTrace struct {
	mu  sync.Mutex
	buf []SpanRecord
	seq uint64 // total records ever written
}

// NewSpanTrace builds a ring holding up to capacity completed spans.
func NewSpanTrace(capacity int) *SpanTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanTrace{buf: make([]SpanRecord, 0, capacity)}
}

func (st *SpanTrace) record(r SpanRecord) {
	st.mu.Lock()
	if len(st.buf) < cap(st.buf) {
		st.buf = append(st.buf, r)
	} else {
		st.buf[st.seq%uint64(cap(st.buf))] = r
	}
	st.seq++
	st.mu.Unlock()
}

// Len reports how many spans the ring currently holds.
func (st *SpanTrace) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.buf)
}

// Dropped reports how many spans were overwritten by ring wrap.
func (st *SpanTrace) Dropped() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.seq <= uint64(cap(st.buf)) {
		return 0
	}
	return st.seq - uint64(cap(st.buf))
}

// Spans returns the retained spans, oldest first.
func (st *SpanTrace) Spans() []SpanRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SpanRecord, 0, len(st.buf))
	if st.seq > uint64(len(st.buf)) {
		at := st.seq % uint64(len(st.buf))
		out = append(out, st.buf[at:]...)
		out = append(out, st.buf[:at]...)
	} else {
		out = append(out, st.buf...)
	}
	return out
}

// chromeEvent is one Chrome trace-event object ("X" complete events);
// ts/dur are microseconds per the trace-event spec.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	PID  uint64          `json:"pid"`
	TID  uint64          `json:"tid"`
	Args chromeEventArgs `json:"args"`
}

type chromeEventArgs struct {
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
	A      uint64 `json:"a"`
	B      uint64 `json:"b"`
}

// chromeTrace is the JSON object format Perfetto and chrome://tracing
// load; DisplayTimeUnit only affects the UI's default zoom.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Dropped         uint64        `json:"droppedSpans,omitempty"`
}

// WriteChromeTrace exports the retained spans as Chrome trace-event
// JSON (the "JSON object format": a traceEvents array of ph:"X"
// complete events). Each span's causal links ride in args.span /
// args.parent; nesting in the viewer comes from time containment on
// the span's track.
func (st *SpanTrace) WriteChromeTrace(w io.Writer) error {
	spans := st.Spans()
	ct := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
		DisplayTimeUnit: "ns",
		Dropped:         st.Dropped(),
	}
	for _, s := range spans {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			PID:  1,
			TID:  s.Track,
			Args: chromeEventArgs{Span: uint64(s.ID), Parent: uint64(s.Parent), A: s.A, B: s.B},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

var (
	spansOn   atomic.Bool
	spanTrace atomic.Pointer[SpanTrace]
	spanSeq   atomic.Uint64 // span ID allocator; IDs are never 0
	spanRoots atomic.Uint64 // root-site counter for sampling
	spanEvery atomic.Uint64 // record every N-th root

	// spanEpoch anchors span timestamps so a trace starts near 0 —
	// time.Now() deltas against one base keep the math monotonic-clock
	// backed and the exported microseconds small.
	spanEpoch     time.Time
	spanEpochOnce sync.Once
)

const defaultSpanSampleEvery = 64

func init() { spanEvery.Store(defaultSpanSampleEvery) }

func spanNow() int64 {
	spanEpochOnce.Do(func() { spanEpoch = time.Now() })
	return int64(time.Since(spanEpoch))
}

// EnableSpans installs a fresh ring of the given capacity and turns
// root-span sampling on.
func EnableSpans(capacity int) *SpanTrace {
	st := NewSpanTrace(capacity)
	spanTrace.Store(st)
	spansOn.Store(true)
	return st
}

// DisableSpans turns span recording off; the current ring stays
// readable via CurrentSpans.
func DisableSpans() { spansOn.Store(false) }

// SpansEnabled reports whether root spans are being opened.
func SpansEnabled() bool { return spansOn.Load() }

// CurrentSpans returns the installed ring, or nil.
func CurrentSpans() *SpanTrace { return spanTrace.Load() }

// SetSpanSampleEvery records every n-th root span (1 = all). Sampling
// happens at the root: children of an unsampled root cost nothing, so n
// is the single knob trading trace completeness for hot-path overhead.
func SetSpanSampleEvery(n int) error {
	if n < 1 {
		return fmt.Errorf("telemetry: span sample rate must be >= 1, got %d", n)
	}
	spanEvery.Store(uint64(n))
	return nil
}

// RootSpan opens a new causal trace at a kernel emit point. With
// tracing off this is one atomic load. The span's track (Chrome tid)
// is its own ID, so each sampled trace renders on a clean lane with
// children nested by time containment; shard or worker identity
// belongs in the End args.
func RootSpan(name, cat string) Span {
	if !spansOn.Load() {
		return Span{}
	}
	if every := spanEvery.Load(); every > 1 && spanRoots.Add(1)%every != 0 {
		return Span{}
	}
	id := SpanID(spanSeq.Add(1))
	return Span{id: id, track: uint64(id), name: name, cat: cat, start: spanNow()}
}

// ChildSpan opens a span under ctx; inactive contexts yield inactive
// spans without touching any global state.
func ChildSpan(ctx SpanCtx, name, cat string) Span {
	if ctx.Parent == 0 {
		return Span{}
	}
	return Span{
		id:     SpanID(spanSeq.Add(1)),
		parent: ctx.Parent,
		track:  ctx.Track,
		name:   name,
		cat:    cat,
		start:  spanNow(),
	}
}

// End closes the span, attaching two free-form args (candidate page and
// outcome for evictions, byte counts for streams, …), and records it in
// the current ring.
func (s Span) End(a, b uint64) {
	if s.id == 0 {
		return
	}
	st := spanTrace.Load()
	if st == nil {
		return
	}
	st.record(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Cat:    s.cat,
		Track:  s.track,
		Start:  s.start,
		Dur:    spanNow() - s.start,
		A:      a,
		B:      b,
	})
}
