package conformance

import (
	"fmt"
	"math/rand"
	"testing"

	"graftlab/internal/tech"
)

// TestCorpusConformance runs every hand-written corpus program through
// the full engine matrix.
func TestCorpusConformance(t *testing.T) {
	for _, p := range corpus {
		p := p
		t.Run(p.name, func(t *testing.T) {
			checkProgram(t, p.name, p.src, p.args, p.tame)
		})
	}
}

// TestRandomTameConformance generates dual-language programs whose
// accesses are all aligned and in-bounds, and requires exact nine-way
// agreement on each.
func TestRandomTameConformance(t *testing.T) {
	seed := suiteSeed(71, 0)
	t.Logf("tame generator seed %d (replay with -seed)", seed)
	rng := rand.New(rand.NewSource(seed))
	n := 60
	if testing.Short() {
		n = 12
	}
	for i := 0; i < n; i++ {
		g := &progGen{rng: rng, mode: genTame}
		gelSrc, tclSrc := g.program()
		src := tech.Source{Name: fmt.Sprintf("tame-%d", i), GEL: gelSrc, Tcl: tclSrc}
		args := []uint32{rng.Uint32(), rng.Uint32() % 65536, rng.Uint32() % 257}
		checkProgram(t, src.Name, src, args, true)
	}
}

// TestRandomWildConformance generates programs with unconstrained
// (word-aligned) addresses: the checked cohort must agree exactly on
// the trap, the NIL engine may trap earlier inside the NIL page, and
// the sandbox engines must confine every stray access.
func TestRandomWildConformance(t *testing.T) {
	seed := suiteSeed(72, 1)
	t.Logf("wild generator seed %d (replay with -seed)", seed)
	rng := rand.New(rand.NewSource(seed))
	n := 60
	if testing.Short() {
		n = 12
	}
	for i := 0; i < n; i++ {
		g := &progGen{rng: rng, mode: genWild}
		gelSrc, tclSrc := g.program()
		src := tech.Source{Name: fmt.Sprintf("wild-%d", i), GEL: gelSrc, Tcl: tclSrc}
		args := []uint32{rng.Uint32(), rng.Uint32(), rng.Uint32() % 4096}
		checkProgram(t, src.Name, src, args, false)
	}
}
