package conformance

import "graftlab/internal/tech"

// corpusProgram is one hand-written dual program in the conformance
// corpus. Every program has the uniform entry main(a, b, c); tame marks
// programs whose accesses are all aligned and in [NilPageSize,
// progMemSize), for which all nine engines must agree exactly.
type corpusProgram struct {
	name string
	src  tech.Source
	args []uint32
	tame bool
}

// The corpus covers, by hand, each behavior class the oracle must hold
// the matrix to: pure arithmetic, in-bounds memory traffic, control
// flow, recursion (terminating and stack-overflowing), division by
// zero, abort, out-of-bounds stores/loads, and NIL-page accesses. The
// random generators then explore the space between these anchors.
var corpus = []corpusProgram{
	{
		name: "arith",
		tame: true,
		args: []uint32{123456789, 987654321, 77},
		src: tech.Source{
			Name: "arith",
			GEL: `func main(a, b, c) {
	var x = a * 3 + (b >> 3) - (c & 255);
	x = x ^ (a << 5) | (b % 1000 + 1);
	if (x > a) { x = x - a; } else { x = a - x; }
	return x ^ ~(c);
}`,
			Tcl: `proc main {a b c} {
	set x [expr {$a * 3 + ($b >> 3) - ($c & 255)}]
	set x [expr {$x ^ ($a << 5) | ($b % 1000 + 1)}]
	if {$x > $a} { set x [expr {$x - $a}] } else { set x [expr {$a - $x}] }
	return [expr {$x ^ ~($c)}]
}`,
		},
	},
	{
		name: "memsweep",
		tame: true,
		args: []uint32{32, 0x1234, 3},
		src: tech.Source{
			Name: "memsweep",
			GEL: `func main(a, b, c) {
	var i = 0;
	var sum = 0;
	while (i < a) {
		st32(4096 + i * 4, b + i * c);
		sum = sum + ld32(4096 + i * 4);
		i = i + 1;
	}
	st32(8192, sum);
	return sum;
}`,
			Tcl: `proc main {a b c} {
	set i 0
	set sum 0
	while {$i < $a} {
		st32 [expr {4096 + $i * 4}] [expr {$b + $i * $c}]
		set sum [expr {$sum + [ld32 [expr {4096 + $i * 4}]]}]
		incr i
	}
	st32 8192 $sum
	return $sum
}`,
		},
	},
	{
		name: "recursion",
		tame: true,
		args: []uint32{20, 0, 0},
		src: tech.Source{
			Name: "recursion",
			GEL: `func sum(n) {
	if (n == 0) { return 0; }
	return n + sum(n - 1);
}
func main(a, b, c) {
	return sum(a);
}`,
			Tcl: `proc sum {n} {
	if {$n == 0} { return 0 }
	return [expr {$n + [sum [expr {$n - 1}]]}]
}
proc main {a b c} {
	return [sum $a]
}`,
		},
	},
	{
		// Recursion past every engine's depth limit: all engines must
		// report TrapStackOverflow; the depth at which they do (and so
		// the memory state) is a documented per-engine limit, which is
		// why agreeExact exempts this trap kind from memory comparison.
		name: "deep-recursion",
		tame: true,
		args: []uint32{100000, 0, 0},
		src: tech.Source{
			Name: "deep-recursion",
			GEL: `func sum(n) {
	if (n == 0) { return 0; }
	return n + sum(n - 1);
}
func main(a, b, c) {
	return sum(a);
}`,
			Tcl: `proc sum {n} {
	if {$n == 0} { return 0 }
	return [expr {$n + [sum [expr {$n - 1}]]}]
}
proc main {a b c} {
	return [sum $a]
}`,
		},
	},
	{
		name: "div-zero",
		tame: true,
		args: []uint32{10, 5, 0},
		src: tech.Source{
			Name: "div-zero",
			GEL: `func main(a, b, c) {
	st32(4096, a + b);
	return a / c;
}`,
			Tcl: `proc main {a b c} {
	st32 4096 [expr {$a + $b}]
	return [expr {$a / $c}]
}`,
		},
	},
	{
		name: "abort",
		tame: true,
		args: []uint32{7, 0, 0},
		src: tech.Source{
			Name: "abort",
			GEL: `func main(a, b, c) {
	st32(4096, 42);
	abort(a);
	return 0;
}`,
			Tcl: `proc main {a b c} {
	st32 4096 42
	abort $a
	return 0
}`,
		},
	},
	{
		// Store past the end of the 64 KB memory: checked engines trap
		// OOBStore at the unmasked address, sandbox engines mask it into
		// the region, the unsafe backstop reports the same OOB.
		name: "oob-store",
		tame: false,
		args: []uint32{0x20000, 99, 0},
		src: tech.Source{
			Name: "oob-store",
			GEL: `func main(a, b, c) {
	st32(4096, 1);
	st32(a, b);
	return ld32(4096);
}`,
			Tcl: `proc main {a b c} {
	st32 4096 1
	st32 $a $b
	return [ld32 4096]
}`,
		},
	},
	{
		// Load far out of bounds: OOBLoad for the checked cohort; SFI
		// (write/jump only) has unprotected loads and reports the same
		// bounds backstop, SFI-full masks the load and completes.
		name: "oob-load",
		tame: false,
		args: []uint32{0x40000000, 0, 0},
		src: tech.Source{
			Name: "oob-load",
			GEL: `func main(a, b, c) {
	return ld32(a);
}`,
			Tcl: `proc main {a b c} {
	return [ld32 $a]
}`,
		},
	},
	{
		// In-bounds access inside the NIL page: fine everywhere except
		// the explicit-NIL-check engine, which must trap NilDeref.
		name: "nil-page",
		tame: false,
		args: []uint32{16, 0, 0},
		src: tech.Source{
			Name: "nil-page",
			GEL: `func main(a, b, c) {
	return ld32(a) + 5;
}`,
			Tcl: `proc main {a b c} {
	return [expr {[ld32 $a] + 5}]
}`,
		},
	},
	{
		// Byte-granularity traffic: ld8/st8 take the byte-path policy
		// checks in every engine.
		name: "bytes",
		tame: true,
		args: []uint32{64, 0xAB, 0},
		src: tech.Source{
			Name: "bytes",
			GEL: `func main(a, b, c) {
	var i = 0;
	var acc = 0;
	while (i < a) {
		st8(4096 + i, b + i);
		acc = acc + ld8(4096 + i);
		i = i + 1;
	}
	return acc;
}`,
			Tcl: `proc main {a b c} {
	set i 0
	set acc 0
	while {$i < $a} {
		st8 [expr {4096 + $i}] [expr {$b + $i}]
		set acc [expr {$acc + [ld8 [expr {4096 + $i}]]}]
		incr i
	}
	return $acc
}`,
		},
	},
}
