package conformance

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
)

// TestConcurrentPooledConformance extends the oracle to the multicore
// layer: every engine that can carry an arbitrary program is driven
// through a tech.Pool from many goroutines at once, and every pooled
// invocation must report exactly what the single-threaded oracle
// reports — same value, or same trap kind/addr/code.
//
// Only invocation-deterministic corpus programs qualify: pooled
// instances keep their linear memory across checkouts (like a real
// extension's state), so a program that reads a location before writing
// it could legitimately see a previous invocation's stores. arith is
// pure, memsweep writes every location before reading it, and div-zero
// traps before touching memory — each invocation's outcome is
// independent of what the instance ran before.
func TestConcurrentPooledConformance(t *testing.T) {
	workers, iters := 8, 40
	if testing.Short() {
		workers, iters = 4, 10
	}
	deterministic := map[string]bool{"arith": true, "memsweep": true, "div-zero": true}
	for _, p := range corpus {
		if !deterministic[p.name] {
			continue
		}
		p := p
		for _, e := range engineMatrix {
			e := e
			t.Run(p.name+"/"+e.name, func(t *testing.T) {
				want := runEngine(t, e, p.src, "main", p.args, oracleFuel, nil)
				cfg := tech.PoolConfig{MemSize: progMemSize}
				if e.wrap {
					cfg.Wrap = upcall.PoolWrapper(0)
				}
				pool, err := tech.NewPool(e.id, p.src, tech.Options{Fuel: oracleFuel, VM: e.vmMode}, cfg)
				if err != nil {
					t.Fatalf("pool: %v", err)
				}
				defer pool.Close()

				var wg sync.WaitGroup
				errs := make([]error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							v, err := pool.Invoke("main", p.args...)
							if err := agreeWithOracle(want, v, err); err != nil {
								errs[w] = fmt.Errorf("worker %d iter %d: %w", w, i, err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
				// No instance-count assertion: sync.Pool may drop idle
				// instances at any GC, so Created() has no hard bound.
				if pool.Created() < 1 {
					t.Fatal("pool reports zero instances created")
				}
			})
		}
	}
}

// agreeWithOracle compares one pooled invocation's result against the
// single-threaded outcome.
func agreeWithOracle(want outcome, v uint32, err error) error {
	if (want.err != nil) != (err != nil) {
		return fmt.Errorf("err=%v, oracle err=%v", err, want.err)
	}
	if want.trap != nil {
		var trap *mem.Trap
		if !errors.As(err, &trap) {
			return fmt.Errorf("err=%v, oracle trapped %v", err, want.trap.Kind)
		}
		if trap.Kind != want.trap.Kind || trap.Addr != want.trap.Addr || trap.Code != want.trap.Code {
			return fmt.Errorf("trap {%v addr=%#x code=%d}, oracle {%v addr=%#x code=%d}",
				trap.Kind, trap.Addr, trap.Code, want.trap.Kind, want.trap.Addr, want.trap.Code)
		}
		return nil
	}
	if err == nil && v != want.val {
		return fmt.Errorf("value %d, oracle %d", v, want.val)
	}
	return nil
}
