package conformance

import (
	"errors"
	"testing"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// TestWatchdogQuarantinesRunaway drives the runaway-graft watchdog
// against the fuel-cliff fixtures: a graft whose every invocation hits
// the fuel limit must be flagged and quarantined within the configured
// SLO window, quarantine must deny both the live wrapper and fresh
// loads, and the well-behaved engine matrix — every technology running
// the same corpus with a generous budget — must never trip it.
func TestWatchdogQuarantinesRunaway(t *testing.T) {
	markFaultClass("runaway-watchdog")
	telemetry.ResetMetrics()
	telemetry.SetEnabled(true)
	if err := telemetry.SetSampleInterval(1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		telemetry.ClearQuarantines()
		telemetry.SetEnabled(false)
		if err := telemetry.SetSampleInterval(256); err != nil {
			t.Fatal(err)
		}
		telemetry.ResetMetrics()
	})

	// The runaway: memsweep with a starvation budget — every invocation
	// preempts on fuel, the §4 "extension that runs too long" case.
	runaway := corpusByName(t, "memsweep")
	m := mem.New(progMemSize)
	g, err := tech.Load(tech.Bytecode, runaway.src, m, tech.Options{Fuel: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := g.Invoke("main", runaway.args...); err == nil {
			t.Fatal("starvation budget did not preempt")
		}
	}

	// The well-behaved cohort: every matrix engine runs the tame corpus
	// program to completion enough times to clear MinInvocations.
	tame := corpusByName(t, "bytes")
	for _, e := range engineMatrix {
		for i := 0; i < 20; i++ {
			o := runEngine(t, e, tame.src, "main", tame.args, oracleFuel, nil)
			if o.err != nil {
				t.Fatalf("%s: tame run failed: %v", e.name, o.err)
			}
		}
	}

	const window = 10 * time.Millisecond
	w := telemetry.NewWatchdog(telemetry.SLO{
		MaxPreemptRate: 0.5,
		MinInvocations: 16,
		Quarantine:     true,
	})
	w.Start(window)
	defer w.Stop()

	deadline := time.Now().Add(200 * window)
	for time.Now().Before(deadline) && !telemetry.Quarantined(runaway.src.Name, string(tech.Bytecode)) {
		time.Sleep(window / 2)
	}
	if !telemetry.Quarantined(runaway.src.Name, string(tech.Bytecode)) {
		t.Fatal("runaway graft not quarantined within the SLO window")
	}

	vs := w.Violations()
	if len(vs) != 1 {
		t.Fatalf("watchdog flagged %d pairs, want only the runaway: %v", len(vs), vs)
	}
	if vs[0].Graft != runaway.src.Name || vs[0].Tech != string(tech.Bytecode) {
		t.Fatalf("flagged %s/%s", vs[0].Graft, vs[0].Tech)
	}
	if vs[0].PreemptRate <= 0.5 {
		t.Errorf("violation preempt rate %.2f, want > 0.5", vs[0].PreemptRate)
	}

	// Quarantine must deny the live wrapper (at its next sampling
	// point) and any fresh load of the same pair.
	denied := false
	for i := 0; i < 3; i++ {
		if _, err := g.Invoke("main", runaway.args...); errors.Is(err, telemetry.ErrQuarantined) {
			denied = true
			break
		}
	}
	if !denied {
		t.Error("live wrapper still serving a quarantined graft")
	}
	if _, err := tech.Load(tech.Bytecode, runaway.src, mem.New(progMemSize), tech.Options{Fuel: 64}); !errors.Is(err, telemetry.ErrQuarantined) {
		t.Errorf("fresh load of quarantined pair: %v", err)
	}

	// No well-behaved pair was flagged or quarantined.
	for _, e := range engineMatrix {
		if telemetry.Quarantined(tame.src.Name, string(e.id)) {
			t.Errorf("well-behaved pair %s/%s quarantined", tame.src.Name, e.id)
		}
	}
}
