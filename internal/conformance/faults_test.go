package conformance

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
)

// TestFaultSchedulerAgreesAcrossEngines is the fault-injection half of
// the oracle: for tame programs the sequence of policy-level memory
// accesses is a property of the program, not of the engine, so failing
// the Nth access must produce the same trap (kind, address) and the
// same partial memory state under every technology class. This is how
// the suite proves the failure paths — not just the happy paths — are
// aligned.
func TestFaultSchedulerAgreesAcrossEngines(t *testing.T) {
	markFaultClass("mem-scheduler")
	seed := suiteSeed(73, 2)
	t.Logf("fault-scheduler seed %d (replay with -seed)", seed)
	rng := rand.New(rand.NewSource(seed))

	var programs []corpusProgram
	for _, p := range corpus {
		if p.tame {
			programs = append(programs, p)
		}
	}
	nRandom := 6
	if testing.Short() {
		nRandom = 2
	}
	for i := 0; i < nRandom; i++ {
		g := &progGen{rng: rng, mode: genTame}
		gelSrc, tclSrc := g.program()
		programs = append(programs, corpusProgram{
			name: fmt.Sprintf("rand-%d", i),
			src:  tech.Source{Name: fmt.Sprintf("rand-%d", i), GEL: gelSrc, Tcl: tclSrc},
			args: []uint32{rng.Uint32(), rng.Uint32() % 65536, rng.Uint32() % 257},
			tame: true,
		})
	}

	refDef := engineByName(t, refEngine)
	for _, p := range programs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			// Pass 1: count the program's accesses with a disarmed plan.
			counter := &mem.FaultPlan{}
			base := runEngine(t, refDef, p.src, "main", p.args, oracleFuel, counter)
			total := counter.Accesses()
			if base.trapKind() == mem.TrapStackOverflow || base.trapKind() == mem.TrapFuel {
				// Depth/fuel limits are per-engine quantities, so the access
				// sequence itself differs across the matrix — the scheduler's
				// premise does not hold for such programs.
				t.Skipf("base run hits a per-engine limit (%v); access sequence is not policy-independent", base.err)
			}
			if total == 0 {
				t.Skipf("program performs no memory accesses")
			}

			// Pass 2: schedule a fault at sampled access indices and
			// require nine-way agreement on the injected trap.
			ks := sampleIndices(rng, total, 8)
			for _, k := range ks {
				var ref outcome
				for i, e := range engineMatrix {
					plan := &mem.FaultPlan{FailOn: k}
					o := runEngine(t, e, p.src, "main", p.args, oracleFuel, plan)
					if o.trap == nil {
						t.Fatalf("access %d/%d: engine %s did not trap (err=%v)", k, total, e.name, o.err)
					}
					if o.trap.Kind != mem.TrapOOBLoad && o.trap.Kind != mem.TrapOOBStore {
						t.Fatalf("access %d/%d: engine %s trapped %v, want an injected OOB kind", k, total, e.name, o.trap.Kind)
					}
					if o.accesses != k {
						t.Fatalf("access %d/%d: engine %s retired %d accesses after the trap", k, total, e.name, o.accesses)
					}
					if i == 0 {
						ref = o
						continue
					}
					agreeExact(t, fmt.Sprintf("%s@access-%d/%s", p.name, k, e.name), ref, o)
				}
			}

			// Pass 3: a schedule beyond the program's last access must be
			// inert — identical outcome, full access count.
			for _, e := range engineMatrix {
				plan := &mem.FaultPlan{FailOn: total + 5}
				o := runEngine(t, e, p.src, "main", p.args, oracleFuel, plan)
				agreeExact(t, fmt.Sprintf("%s@beyond/%s", p.name, e.name), base, o)
				if o.accesses != total {
					t.Fatalf("beyond-schedule run under %s retired %d accesses, want %d", e.name, o.accesses, total)
				}
			}

			// Pass 4: the Kind override is delivered verbatim everywhere.
			k := ks[0]
			for _, e := range engineMatrix {
				plan := &mem.FaultPlan{FailOn: k, Kind: mem.TrapUnreachable}
				o := runEngine(t, e, p.src, "main", p.args, oracleFuel, plan)
				if o.trapKind() != mem.TrapUnreachable {
					t.Fatalf("kind override under %s: got %v", e.name, o.err)
				}
			}
		})
	}
}

// sampleIndices picks up to n distinct 1-based indices in [1, total],
// always including the first and last access.
func sampleIndices(rng *rand.Rand, total uint64, n int) []uint64 {
	seen := map[uint64]bool{1: true, total: true}
	out := []uint64{1}
	if total > 1 {
		out = append(out, total)
	}
	for len(out) < n && uint64(len(out)) < total {
		k := rng.Uint64()%total + 1
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func engineByName(t *testing.T, name string) engineDef {
	t.Helper()
	for _, e := range engineMatrix {
		if e.name == name {
			return e
		}
	}
	t.Fatalf("no engine %q in the matrix", name)
	return engineDef{}
}

// TestFuelCliffs probes randomized fuel budgets on every engine. Fuel
// units are a per-class quantity (instructions for the VMs, loop
// iterations and calls for native code, commands for the script
// interpreter), so the cross-engine property is not a shared threshold
// but a shared *shape*: each engine has a single cliff — every budget
// below it fuel-traps, every budget at or above it completes with the
// unmetered result — and the two bytecode engines, which meter the same
// instruction stream, must put the cliff in exactly the same place
// (PR 1's block-granular metering preserves the completion threshold).
func TestFuelCliffs(t *testing.T) {
	markFaultClass("fuel-cliff")
	seed := suiteSeed(74, 3)
	t.Logf("fuel-cliff seed %d (replay with -seed)", seed)
	rng := rand.New(rand.NewSource(seed))
	programs := []string{"memsweep", "recursion", "bytes"}
	probes := 6
	if testing.Short() {
		probes = 2
	}

	for _, name := range programs {
		p := corpusByName(t, name)
		t.Run(name, func(t *testing.T) {
			thresholds := make(map[string]int64)
			for _, e := range engineMatrix {
				unmetered := runEngine(t, e, p.src, "main", p.args, 0, nil)
				if unmetered.err != nil {
					t.Fatalf("%s: unmetered run failed: %v", e.name, unmetered.err)
				}
				complete := func(budget int64) outcome {
					return runEngine(t, e, p.src, "main", p.args, budget, nil)
				}
				if o := complete(oracleFuel); o.err != nil {
					t.Fatalf("%s: oracle budget insufficient: %v", e.name, o.err)
				}
				// Binary search the cliff; metering is deterministic, so
				// completion is monotone in the budget.
				lo, hi := int64(1), int64(oracleFuel)
				for lo < hi {
					mid := (lo + hi) / 2
					if complete(mid).err == nil {
						hi = mid
					} else {
						lo = mid + 1
					}
				}
				cliff := lo
				thresholds[e.name] = cliff
				if o := complete(cliff); o.err != nil || o.val != unmetered.val {
					t.Fatalf("%s: budget %d at the cliff: val=%d err=%v, want %d", e.name, cliff, o.val, o.err, unmetered.val)
				}
				if cliff > 1 {
					if o := complete(cliff - 1); o.trapKind() != mem.TrapFuel {
						t.Fatalf("%s: budget %d below the cliff: err=%v, want fuel trap", e.name, cliff-1, o.err)
					}
				}
				for i := 0; i < probes; i++ {
					b := rng.Int63n(2*cliff) + 1
					o := complete(b)
					if b >= cliff {
						if o.err != nil || o.val != unmetered.val {
							t.Fatalf("%s: budget %d (cliff %d): val=%d err=%v, want completion", e.name, b, cliff, o.val, o.err)
						}
					} else if o.trapKind() != mem.TrapFuel {
						t.Fatalf("%s: budget %d (cliff %d): err=%v, want fuel trap", e.name, b, cliff, o.err)
					}
				}
			}
			if a, b := thresholds["bytecode-opt"], thresholds["bytecode-baseline"]; a != b {
				t.Fatalf("bytecode fuel cliffs diverge: opt=%d baseline=%d", a, b)
			}
			// The AOT translation meters the same verified instruction
			// stream from the same block CFG, so its cliff must be the
			// bytecode engines' cliff exactly — bounds-check elision is
			// not allowed to move the preemption threshold.
			if a, b := thresholds["aot"], thresholds["bytecode-opt"]; a != b {
				t.Fatalf("aot fuel cliff diverges from bytecode: aot=%d opt=%d", a, b)
			}
		})
	}
}

func corpusByName(t *testing.T, name string) corpusProgram {
	t.Helper()
	for _, p := range corpus {
		if p.name == name {
			return p
		}
	}
	t.Fatalf("no corpus program %q", name)
	return corpusProgram{}
}

// TestUpcallDeliveryFaults injects transport failures on the upcall
// boundary: every Nth invocation must fail with ErrDelivery — not a
// trap, the graft never ran — and the domain must remain fully usable
// in between and after.
func TestUpcallDeliveryFaults(t *testing.T) {
	markFaultClass("upcall-delivery")
	p := corpusByName(t, "memsweep")
	m := mem.New(progMemSize)
	g, err := tech.Load(tech.NativeSafe, p.src, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Invoke("main", p.args...)
	if err != nil {
		t.Fatal(err)
	}

	d := upcall.NewDomain(g, 0)
	defer d.Close()
	d.FailDelivery(3)
	for i := 1; i <= 12; i++ {
		v, err := d.Invoke("main", p.args...)
		if i%3 == 0 {
			if !errors.Is(err, upcall.ErrDelivery) {
				t.Fatalf("call %d: err=%v, want ErrDelivery", i, err)
			}
			var trap *mem.Trap
			if errors.As(err, &trap) {
				t.Fatalf("call %d: delivery failure surfaced as a graft trap %v", i, trap)
			}
			continue
		}
		if err != nil || v != want {
			t.Fatalf("call %d: val=%d err=%v, want %d", i, v, err, want)
		}
	}
	d.FailDelivery(0)
	if v, err := d.Invoke("main", p.args...); err != nil || v != want {
		t.Fatalf("after disarm: val=%d err=%v, want %d", v, err, want)
	}
	markExercised("upcall")
}
