package conformance

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"graftlab/internal/disk"
	"graftlab/internal/grafts"
	"graftlab/internal/ld"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/vclock"
)

// Geometry for the crash runs: small blocks and a small data region so a
// thousand kill points stay cheap, but still whole segments.
const (
	crashDataBlocks = 256 // 16 segments
	crashBlockSize  = 256
	crashRunWrites  = 240 // 15 segments: never fills the log
)

func crashDisk() *disk.Disk {
	geo := disk.DefaultGeometry()
	geo.Blocks = ld.DiskBlocks(crashDataBlocks)
	geo.BlockSize = crashBlockSize
	geo.TransferRate = 1 << 30 // timing is irrelevant here
	geo.AvgSeek = time.Microsecond
	geo.TrackSeek = time.Microsecond
	geo.HalfRotation = time.Microsecond
	var clk vclock.Clock
	return disk.New(geo, &clk)
}

// crashPayload is the deterministic content of the w-th write of a run,
// addressed to lblock: recovery checks read payloads against it.
func crashPayload(seed int64, w int, lblock uint32) []byte {
	b := make([]byte, crashBlockSize)
	for i := range b {
		b[i] = byte(uint32(seed) + uint32(w)*31 + lblock*7 + uint32(i))
	}
	return b
}

// runCrashPoint drives one durable log into an injected crash and checks
// that recovery reconstructs exactly the committed prefix: the
// logical→physical table equals the shadow taken at the last successful
// segment flush, over the *entire* data region, and every recovered
// payload matches the committed write that produced it.
func runCrashPoint(t *testing.T, mapper ld.Mapper, dev *disk.Disk, mode disk.WriteFaultMode, failAfter uint64, seed int64) {
	t.Helper()
	l, err := ld.NewDurable(dev, mapper, crashDataBlocks)
	if err != nil {
		t.Fatal(err)
	}
	dev.ArmWriteFault(&disk.WriteFault{Mode: mode, FailAfter: failAfter})

	// Shadow state: committed at the last flush; pending since then.
	shadowTable := make([]uint32, crashDataBlocks)
	for i := range shadowTable {
		shadowTable[i] = ld.Unmapped
	}
	committedPayload := map[uint32][]byte{}
	type pendingWrite struct {
		lblock uint32
		data   []byte
	}
	var pending []pendingWrite
	var flushes uint64

	rng := rand.New(rand.NewSource(seed))
	crashed := false
	for w := 0; w < crashRunWrites; w++ {
		lblock := rng.Uint32() % crashDataBlocks
		data := crashPayload(seed, w, lblock)
		flushed, err := l.Write(lblock, data)
		if err != nil {
			if !errors.Is(err, disk.ErrCrashed) {
				t.Fatalf("write %d: %v", w, err)
			}
			crashed = true
			break
		}
		pending = append(pending, pendingWrite{lblock, data})
		if flushed {
			// The segment's mappings are durable now. Within a segment a
			// remap appends a later entry, and Recover replays in order,
			// so applying pending in order matches the replay.
			seg := uint32(flushes)
			for i, p := range pending {
				shadowTable[p.lblock] = seg*ld.SegmentBlocks + uint32(i)
				committedPayload[p.lblock] = p.data
			}
			pending = pending[:0]
			flushes++
		}
	}
	if crashed != dev.Crashed() {
		t.Fatalf("writer saw crashed=%v, device reports %v", crashed, dev.Crashed())
	}
	if !crashed {
		// Kill point beyond the run: the log must still recover to the
		// full committed state.
		if got := l.SegmentFlushes(); got != flushes {
			t.Fatalf("SegmentFlushes=%d, shadow counted %d", got, flushes)
		}
	}

	dev.ClearFault()
	table, segments, err := ld.Recover(dev, crashDataBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if segments != uint32(flushes) {
		t.Fatalf("recovered %d segments, committed %d (mode=%v failAfter=%d)", segments, flushes, mode, failAfter)
	}
	for lb := uint32(0); lb < crashDataBlocks; lb++ {
		if table[lb] != shadowTable[lb] {
			t.Fatalf("lblock %d: recovered mapping %#x, committed %#x (mode=%v failAfter=%d)",
				lb, table[lb], shadowTable[lb], mode, failAfter)
		}
		if table[lb] == ld.Unmapped {
			continue
		}
		got, err := dev.ReadBlock(table[lb])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(committedPayload[lb]) {
			t.Fatalf("lblock %d: recovered payload diverges from committed write (mode=%v failAfter=%d)",
				lb, mode, failAfter)
		}
	}
}

// TestCrashConsistencyKillPoints sweeps ≥1000 randomized kill points
// over the durable segment writer, alternating torn and short write
// semantics. Every data-block write, every summary write, and the
// no-crash tail are all landed on; a torn summary must never validate
// (the checksum lives in the block's last word) and a missing summary
// must orphan its segment's data.
func TestCrashConsistencyKillPoints(t *testing.T) {
	markFaultClass("disk-torn-write")
	markFaultClass("disk-short-write")
	points := 1000
	if testing.Short() {
		points = 60
	}
	seed75 := suiteSeed(75, 4)
	t.Logf("crash kill-point seed %d (replay with -seed)", seed75)
	rng := rand.New(rand.NewSource(seed75))
	// A full run issues 15 segments × 17 device writes; kill points are
	// drawn past that too, to exercise the crash-free path.
	const maxAccesses = 15*(ld.SegmentBlocks+1) + 10
	for i := 0; i < points; i++ {
		mode := disk.ShortWrite
		if i%2 == 1 {
			mode = disk.TornWrite
		}
		failAfter := uint64(rng.Intn(maxAccesses))
		seed := int64(1000 + i)
		runCrashPoint(t, ld.NewNativeMapper(crashDataBlocks), crashDisk(), mode, failAfter, seed)
	}
}

// TestCrashConsistencyAcrossTechnologies re-runs randomized kill points
// with the Logical Disk bookkeeping carried by the ldmap graft under
// every technology that can carry it: crash consistency must not depend
// on which extension technology holds the mapping table.
func TestCrashConsistencyAcrossTechnologies(t *testing.T) {
	markFaultClass("disk-torn-write")
	markFaultClass("disk-short-write")
	points := 16
	if testing.Short() {
		points = 4
	}
	seed76 := suiteSeed(76, 5)
	t.Logf("cross-technology kill-point seed %d (replay with -seed)", seed76)
	rng := rand.New(rand.NewSource(seed76))
	ran := 0
	for _, id := range tech.All {
		id := id
		if !carries(id, grafts.LDMap, []string{"ld_init", "ld_write", "ld_read"}) {
			continue
		}
		t.Run(string(id), func(t *testing.T) {
			for i := 0; i < points; i++ {
				mode := disk.ShortWrite
				if i%2 == 1 {
					mode = disk.TornWrite
				}
				failAfter := uint64(rng.Intn(15*(ld.SegmentBlocks+1) + 10))
				g, err := tech.Load(id, grafts.LDMap, mem.New(1<<16), tech.Options{})
				if err != nil {
					t.Fatal(err)
				}
				mapper, err := grafts.NewGraftMapper(g, crashDataBlocks)
				if err != nil {
					t.Fatal(err)
				}
				runCrashPoint(t, mapper, crashDisk(), mode, failAfter, int64(2000+i))
				markGraftTech(id)
			}
		})
		ran++
	}
	if ran < 8 {
		t.Fatalf("only %d technologies carried the ldmap graft — the cross-technology pass has collapsed", ran)
	}
}
