package conformance

import (
	"fmt"
	"math/rand"
	"strings"
)

// The conformance generator builds one random program AST and renders it
// in both GEL and mini-Tcl, so every engine in the matrix — including
// the script interpreter — executes the same computation. It extends the
// dual generator the tech package uses for its GEL↔Tcl differential
// test with an address-mode knob:
//
//   - genTame clamps every ld32/st32 address to a word-aligned location
//     in [NilPageSize, progMemSize): no engine may trap, NIL checks and
//     sandbox masks are identity, and all nine engines must agree
//     exactly. Tame programs are also what the fault scheduler replays,
//     because their access sequence is policy-independent.
//   - genWild emits word-aligned but otherwise unconstrained addresses:
//     mostly out of bounds, so the checked engines trap, the NIL
//     engine may trap earlier, and the sandbox engines mask and keep
//     going — the documented divergences checkProgram asserts.
type genMode int

const (
	genTame genMode = iota
	genWild
)

type cExpr interface {
	gel() string
	tcl() string
}

type cNum uint32

func (n cNum) gel() string { return fmt.Sprintf("%d", uint32(n)) }
func (n cNum) tcl() string { return fmt.Sprintf("%d", uint32(n)) }

type cVar string

func (v cVar) gel() string { return string(v) }
func (v cVar) tcl() string { return "$" + string(v) }

type cBin struct {
	op   string
	x, y cExpr
}

func (b cBin) gel() string { return "((" + b.x.gel() + ") " + b.op + " (" + b.y.gel() + "))" }
func (b cBin) tcl() string { return "((" + b.x.tcl() + ") " + b.op + " (" + b.y.tcl() + "))" }

type cUn struct {
	op string
	x  cExpr
}

func (u cUn) gel() string { return u.op + "(" + u.x.gel() + ")" }
func (u cUn) tcl() string { return u.op + "(" + u.x.tcl() + ")" }

// cAddr wraps an address expression per mode. Tame: fold into
// [NilPageSize, progMemSize) on a word boundary. Wild: align only, so
// value divergence between policies comes from range, not alignment.
type cAddr struct {
	mode genMode
	e    cExpr
}

func (a cAddr) gel() string {
	if a.mode == genTame {
		return "(((" + a.e.gel() + ") % 15360 + 1024) * 4)"
	}
	return "((" + a.e.gel() + ") & 4294967292)"
}

func (a cAddr) tcl() string {
	if a.mode == genTame {
		return "(((" + a.e.tcl() + ") % 15360 + 1024) * 4)"
	}
	return "((" + a.e.tcl() + ") & 4294967292)"
}

type cLd32 struct{ addr cAddr }

func (l cLd32) gel() string { return "ld32(" + l.addr.gel() + ")" }
func (l cLd32) tcl() string { return "[ld32 [expr {" + l.addr.tcl() + "}]]" }

type cStmt interface {
	gelStmt(indent string) string
	tclStmt(indent string) string
}

type cAssign struct {
	name string
	val  cExpr
}

func (a cAssign) gelStmt(in string) string {
	return in + a.name + " = " + a.val.gel() + ";\n"
}
func (a cAssign) tclStmt(in string) string {
	return in + "set " + a.name + " [expr {" + a.val.tcl() + "}]\n"
}

type cStore struct {
	addr cAddr
	val  cExpr
}

func (s cStore) gelStmt(in string) string {
	return in + "st32(" + s.addr.gel() + ", " + s.val.gel() + ");\n"
}
func (s cStore) tclStmt(in string) string {
	return in + "st32 [expr {" + s.addr.tcl() + "}] [expr {" + s.val.tcl() + "}]\n"
}

type cIf struct {
	cond      cExpr
	then, els []cStmt
}

func (i cIf) gelStmt(in string) string {
	var b strings.Builder
	b.WriteString(in + "if (" + i.cond.gel() + ") {\n")
	for _, s := range i.then {
		b.WriteString(s.gelStmt(in + "\t"))
	}
	b.WriteString(in + "} else {\n")
	for _, s := range i.els {
		b.WriteString(s.gelStmt(in + "\t"))
	}
	b.WriteString(in + "}\n")
	return b.String()
}
func (i cIf) tclStmt(in string) string {
	var b strings.Builder
	b.WriteString(in + "if {" + i.cond.tcl() + "} {\n")
	for _, s := range i.then {
		b.WriteString(s.tclStmt(in + "\t"))
	}
	b.WriteString(in + "} else {\n")
	for _, s := range i.els {
		b.WriteString(s.tclStmt(in + "\t"))
	}
	b.WriteString(in + "}\n")
	return b.String()
}

type cLoop struct {
	counter string
	bound   uint32
	body    []cStmt
}

func (l cLoop) gelStmt(in string) string {
	var b strings.Builder
	b.WriteString(in + "{\n")
	b.WriteString(in + "\tvar " + l.counter + " = 0;\n")
	b.WriteString(fmt.Sprintf("%s\twhile (%s < %d) {\n", in, l.counter, l.bound))
	b.WriteString(in + "\t\t" + l.counter + " = " + l.counter + " + 1;\n")
	for _, s := range l.body {
		b.WriteString(s.gelStmt(in + "\t\t"))
	}
	b.WriteString(in + "\t}\n")
	b.WriteString(in + "}\n")
	return b.String()
}
func (l cLoop) tclStmt(in string) string {
	var b strings.Builder
	b.WriteString(in + "set " + l.counter + " 0\n")
	b.WriteString(fmt.Sprintf("%swhile {$%s < %d} {\n", in, l.counter, l.bound))
	b.WriteString(in + "\tincr " + l.counter + "\n")
	for _, s := range l.body {
		b.WriteString(s.tclStmt(in + "\t"))
	}
	b.WriteString(in + "}\n")
	return b.String()
}

type progGen struct {
	rng  *rand.Rand
	mode genMode
}

var genVars = []string{"x", "y", "z"}

func (g *progGen) expr(depth int) cExpr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return cNum(g.rng.Uint32() % 100000)
		default:
			return cVar(genVars[g.rng.Intn(len(genVars))])
		}
	}
	switch g.rng.Intn(12) {
	case 0:
		return cUn{op: []string{"!", "~", "-"}[g.rng.Intn(3)], x: g.expr(depth - 1)}
	case 1:
		return cLd32{addr: cAddr{mode: g.mode, e: g.expr(depth - 1)}}
	default:
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
			"==", "!=", "<", "<=", ">", ">=", "&&", "||"}
		return cBin{op: ops[g.rng.Intn(len(ops))], x: g.expr(depth - 1), y: g.expr(depth - 1)}
	}
}

func (g *progGen) stmts(n, depth int) []cStmt {
	out := make([]cStmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

func (g *progGen) stmt(depth int) cStmt {
	switch r := g.rng.Intn(8); {
	case r < 4:
		return cAssign{name: genVars[g.rng.Intn(len(genVars))], val: g.expr(2)}
	case r < 5:
		return cStore{addr: cAddr{mode: g.mode, e: g.expr(1)}, val: g.expr(2)}
	case r < 7 && depth > 0:
		return cIf{cond: g.expr(1), then: g.stmts(2, depth-1), els: g.stmts(1, depth-1)}
	case depth > 0:
		return cLoop{
			counter: fmt.Sprintf("i%d", depth),
			bound:   g.rng.Uint32()%6 + 1,
			body:    g.stmts(1, depth-1),
		}
	default:
		return cAssign{name: "x", val: g.expr(1)}
	}
}

// program renders one random program in both languages. Entry point is
// main(a, b, c) returning a hash of the three mutable variables.
func (g *progGen) program() (gelSrc, tclSrc string) {
	body := g.stmts(5, 2)
	var gb, tb strings.Builder
	gb.WriteString("func main(a, b, c) {\n\tvar x = a;\n\tvar y = b;\n\tvar z = c;\n")
	tb.WriteString("proc main {a b c} {\n\tset x $a\n\tset y $b\n\tset z $c\n")
	for _, s := range body {
		gb.WriteString(s.gelStmt("\t"))
		tb.WriteString(s.tclStmt("\t"))
	}
	gb.WriteString("\treturn x ^ y + z;\n}\n")
	tb.WriteString("\treturn [expr {$x ^ $y + $z}]\n}\n")
	return gb.String(), tb.String()
}
