// Package conformance is the cross-technology oracle: the paper's central
// premise is that six technology classes run *the same graft* and differ
// only in cost and safety, so this package loads one program under every
// technology class in the registry (plus the upcall wrapper) and asserts
// agreement — on results, memory side effects, fuel accounting, and trap
// kind/address — over a corpus of hand-written programs, randomly
// generated programs, and the paper grafts themselves. A fault-injection
// layer (the mem trap scheduler, fuel cliffs, upcall delivery failures,
// and torn/short disk writes under the Logical Disk's recovery path)
// drives every engine down the same *failure* paths, which is where
// extension-safety claims actually live.
//
// The package is all tests; see docs/testing.md for the taxonomy, how to
// run each tier, and how to add an engine to the matrix. The completeness
// gates in zzz_coverage_test.go make removing an engine or skipping a
// fault class a test failure rather than a silent hole.
package conformance
