package conformance

import (
	"flag"
	"math/rand"
	"testing"
)

// seedFlag lets a failed random-conformance run be replayed exactly:
//
//	go test ./internal/conformance -run Random -seed 12345
//
// Zero (the default) keeps the suites' fixed seeds, so CI stays
// deterministic run over run. Each suite logs the seed it actually used,
// and test logs surface on failure — the seed is always in a failing
// report.
var seedFlag = flag.Int64("seed", 0, "override the random-program generator seed (0 = fixed per-suite seeds)")

// suiteSeed returns the generator seed for one random suite: the fixed
// default, unless -seed overrides it. offset keeps the suites' streams
// distinct under a shared override.
func suiteSeed(fixed, offset int64) int64 {
	if *seedFlag != 0 {
		return *seedFlag + offset
	}
	return fixed
}

// TestEqualSeedsGenerateEqualPrograms pins that the generator is a pure
// function of its seed — the property the -seed replay flag depends on.
func TestEqualSeedsGenerateEqualPrograms(t *testing.T) {
	gen := func(seed int64, mode genMode) []string {
		rng := rand.New(rand.NewSource(seed))
		progs := make([]string, 0, 10)
		for i := 0; i < 10; i++ {
			g := &progGen{rng: rng, mode: mode}
			gelSrc, tclSrc := g.program()
			progs = append(progs, gelSrc+"\x00"+tclSrc)
		}
		return progs
	}
	for _, mode := range []genMode{genTame, genWild} {
		a, b := gen(12345, mode), gen(12345, mode)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mode %v: program %d differs between two runs of seed 12345", mode, i)
			}
		}
		c := gen(54321, mode)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("mode %v: seeds 12345 and 54321 generated identical program streams", mode)
		}
	}
}
