package conformance

import (
	"flag"
	"testing"

	"graftlab/internal/tech"
)

// requiredEngines is the contract for the general-purpose matrix: the
// five native/SFI policies, both bytecode engines, the AOT translation,
// the script interpreter, and the upcall wrapper. Removing a row from
// engineMatrix fails here before anything else runs.
var requiredEngines = []string{
	"native-unsafe", "native-safe", "native-safe-nil", "sfi", "sfi-full",
	"bytecode-opt", "bytecode-baseline", "aot", "script", "upcall",
}

// requiredFaultClasses is the contract for the fault-injection half:
// every failure path the harness claims to cover must actually have run.
var requiredFaultClasses = []string{
	"mem-scheduler", "fuel-cliff", "upcall-delivery",
	"disk-torn-write", "disk-short-write", "runaway-watchdog",
	"lifecycle-killpoint",
}

// requiredGraftCells lists the grafts whose conformance scenario must
// run under *every* technology class in tech.All, cell by cell. The
// packet filter is the fourth graft column: both its single-frame entry
// and the batched slot protocol are pinned across the whole registry, so
// a class that silently stops carrying the filter fails here. The
// lifecycle-swap cell is the filter hot-swapped through the versioned
// deployment protocol: losing the kill-point sweep loses the cell.
var requiredGraftCells = []string{"pktfilter", "pktfilter-batch", "lifecycle-swap"}

// TestZZZCoverageGate is the anti-rot gate, named to sort last in the
// package (go test runs tests in file order). It has a static half —
// the matrices must span the registry — and a dynamic half — the suite
// that just ran must actually have exercised every engine, every fault
// class, and every technology in tech.All. Skipping an engine, losing a
// fault-injection test, or adding a technology to the registry without
// teaching the harness about it all fail here, loudly, instead of
// silently shrinking coverage.
func TestZZZCoverageGate(t *testing.T) {
	// Static: every required engine has a matrix row, and every row is
	// required (no dead rows either).
	rows := map[string]bool{}
	for _, e := range engineMatrix {
		rows[e.name] = true
	}
	for _, name := range requiredEngines {
		if !rows[name] {
			t.Errorf("engineMatrix lost required engine %q", name)
		}
	}
	if len(engineMatrix) != len(requiredEngines) {
		t.Errorf("engineMatrix has %d rows, contract lists %d — update both together", len(engineMatrix), len(requiredEngines))
	}

	// Static: the graft matrix spans the live registry.
	carrierIDs := map[tech.ID]bool{}
	for _, c := range graftCarriers() {
		if !c.wrap {
			carrierIDs[c.id] = true
		}
	}
	for _, id := range tech.All {
		if !carrierIDs[id] {
			t.Errorf("graft matrix has no carrier column for registry technology %q", id)
		}
	}

	// Static: every contract graft has a scenario, and every carrier in
	// the matrix can carry it — the packet filter's representations span
	// the registry, so a missing cell is a lost representation, not an
	// expected refusal.
	scenarios := map[string]graftScenario{}
	for _, sc := range graftScenarios() {
		scenarios[sc.src.Name] = sc
	}
	// The lifecycle cell lives outside graftScenarios(): its only runner
	// is the kill-point sweep, so the dynamic half below fails if that
	// sweep is deleted rather than letting the cell quietly vanish.
	scenarios["lifecycle-swap"] = lifecycleSwapScenario()
	for _, name := range requiredGraftCells {
		sc, ok := scenarios[name]
		if !ok {
			t.Errorf("graft matrix lost required scenario %q", name)
			continue
		}
		entries := make([]string, 0, len(sc.steps))
		for _, s := range sc.steps {
			entries = append(entries, s.entry)
		}
		for _, id := range tech.All {
			if !carries(id, sc.src, entries) {
				t.Errorf("registry technology %q no longer carries graft %q", id, name)
			}
		}
	}

	// Dynamic: only meaningful when the whole suite ran in this process.
	if f := flag.Lookup("test.run"); f != nil && f.Value.String() != "" {
		t.Skipf("dynamic gate skipped under -run=%q (partial suite)", f.Value.String())
	}
	coverMu.Lock()
	defer coverMu.Unlock()
	for _, name := range requiredEngines {
		if !engineRuns[name] {
			t.Errorf("engine %q was never exercised by the oracle this run", name)
		}
	}
	for _, class := range requiredFaultClasses {
		if !faultClassRuns[class] {
			t.Errorf("fault-injection class %q never ran", class)
		}
	}
	for _, id := range tech.All {
		if !graftTechRuns[id] {
			t.Errorf("technology %q never carried a graft through the conformance matrix this run", id)
		}
	}
	for _, name := range requiredGraftCells {
		for _, id := range tech.All {
			if !graftCellRuns[name][id] {
				t.Errorf("graft %q never ran under technology %q this run", name, id)
			}
		}
	}
}
