package conformance

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"graftlab/internal/grafts"
	"graftlab/internal/lifecycle"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// The lifecycle swap sweep: the packet filter hot-swapped from a
// port-80 deployment (v1) to a port-81 deployment (v2) under every
// technology class in the registry, with a kill point injected into
// every step of the invoke/swap interleaving. The pinned invariants
// are the same as internal/lifecycle's deep suite — no invocation
// lost, duplicated, or executed against a torn policy — but swept
// across tech.All, because swap atomicity is a property of the slot
// protocol and must not depend on which engine carries the filter.

// lifecycleSwapScenario is the packet filter under the coverage cell
// name "lifecycle-swap". It is deliberately NOT part of
// graftScenarios(): the only test that marks this cell is
// TestLifecycleSwapKillPoints below, so losing that test fails the
// zzz coverage gate instead of silently shrinking coverage. The gate's
// static half still pulls the scenario in through this helper to check
// carriage across the registry.
func lifecycleSwapScenario() graftScenario {
	src := grafts.PacketFilter
	src.Name = "lifecycle-swap"
	return graftScenario{
		src: src, memSize: grafts.PFMemSize,
		steps: []graftStep{step("filter", 1, 60)},
	}
}

// lcFrame is one invocation of the filter stream.
type lcFrame struct {
	port   uint16
	proto  uint8
	length uint32
}

// lcFrames crosses both versions' ports with a stranger port, a TCP
// frame, and a runt, so accept and reject verdicts both cross the swap.
func lcFrames() []lcFrame {
	return []lcFrame{
		{80, 17, 60}, {81, 17, 60}, {7, 17, 60}, {80, 6, 60},
		{80, 17, 41}, {81, 17, 60}, {80, 17, 60}, {81, 17, 41},
	}
}

// lcWant is the filter oracle: version v accepts IPv4/UDP frames of
// full length addressed to its configured port.
func lcWant(version uint64, f lcFrame) uint32 {
	port := uint16(80)
	if version == 2 {
		port = 81
	}
	if f.proto == 17 && f.length >= 42 && f.port == port {
		return 1
	}
	return 0
}

// lcPrep writes frame f into the single-frame buffer of whichever
// engine the slot acquired — the per-invocation marshal step.
func lcPrep(f lcFrame) func(m *mem.Memory) error {
	return func(m *mem.Memory) error {
		writeUDPFrame(m, f.port)
		m.St8U(grafts.PFBufAddr+23, uint32(f.proto))
		return nil
	}
}

// lcLoad caches one carrier per version for a carrier column: engines
// load once per class, slots are rebuilt per kill point.
func lcLoad(c graftCarrier) lifecycle.LoadFunc {
	carriers := map[uint64]lifecycle.Carrier{}
	src := lifecycleSwapScenario().src
	return func(a tech.Artifact) (lifecycle.Carrier, error) {
		if cached, ok := carriers[a.Version]; ok {
			return cached, nil
		}
		g, err := tech.Load(c.id, src, mem.New(grafts.PFMemSize), tech.Options{VM: c.vmMode})
		if err != nil {
			return nil, err
		}
		cached := lifecycle.Single(g)
		carriers[a.Version] = cached
		return cached, nil
	}
}

// lcSlot builds a fresh slot routing v1 (port 80) with v2 (port 81)
// staged, over the class's cached engines.
func lcSlot(t *testing.T, c graftCarrier, load lifecycle.LoadFunc) *lifecycle.Slot {
	t.Helper()
	src := lifecycleSwapScenario().src
	s := lifecycle.NewSlot("lifecycle-swap", c.id, load)
	if err := s.Activate(tech.NewArtifact(src, 1), func(m *mem.Memory) error {
		grafts.ConfigurePacketFilter(m, 80)
		return nil
	}); err != nil {
		t.Fatalf("carrier %s: activate: %v", c.name, err)
	}
	if err := s.Stage(tech.NewArtifact(src, 2), func(m *mem.Memory) error {
		grafts.ConfigurePacketFilter(m, 81)
		return nil
	}, 0); err != nil {
		t.Fatalf("carrier %s: stage: %v", c.name, err)
	}
	return s
}

// lcVerify checks the committed stream against the oracle and the
// conservation ledger.
func lcVerify(t *testing.T, c graftCarrier, s *lifecycle.Slot, frames []lcFrame, results []lifecycle.Result, tag string) {
	t.Helper()
	lastVer := uint64(0)
	for i, res := range results {
		if res.Version < lastVer {
			t.Fatalf("%s: frame %d served by v%d after v%d — version sequence not monotone",
				tag, i, res.Version, lastVer)
		}
		lastVer = res.Version
		if want := lcWant(res.Version, frames[i]); res.Value != want {
			t.Fatalf("%s: frame %d (%+v) verdict %d under v%d, want %d — torn policy?",
				tag, i, frames[i], res.Value, res.Version, want)
		}
	}
	a := s.Accounting()
	if a.Issued != uint64(len(frames)) || a.Committed != a.Issued || a.Aborted != 0 {
		t.Fatalf("%s: ledger %+v over %d frames — an invocation was lost or duplicated",
			tag, a, len(frames))
	}
}

// runLCInline commits a Promote inline at the killStep-th data-plane
// gate crossing (or after the stream, when the step lies beyond it).
func runLCInline(t *testing.T, c graftCarrier, load lifecycle.LoadFunc, killStep int, tag string) {
	t.Helper()
	s := lcSlot(t, c, load)
	step, swapped, inPromote := 0, false, false
	s.SetGate(func(p lifecycle.Point) error {
		if inPromote {
			return nil
		}
		if !swapped && step == killStep {
			swapped, inPromote = true, true
			if err := s.Promote(); err != nil {
				t.Errorf("%s: inline promote at %s: %v", tag, p, err)
			}
			inPromote = false
		}
		step++
		return nil
	})
	frames := lcFrames()
	results := make([]lifecycle.Result, len(frames))
	for i, f := range frames {
		res, err := s.Do("filter", lcPrep(f), f.length)
		if err != nil {
			t.Fatalf("%s: frame %d: %v", tag, i, err)
		}
		results[i] = res
	}
	s.SetGate(nil)
	if !swapped {
		if err := s.Promote(); err != nil {
			t.Fatalf("%s: trailing promote: %v", tag, err)
		}
	}
	if s.Incumbent().Artifact.Version != 2 || s.Candidate() != nil {
		t.Fatalf("%s: slot did not converge on v2", tag)
	}
	lcVerify(t, c, s, frames, results, tag)
}

// runLCSwapAbort aborts the Promote critical section at one of its
// gate points mid-stream and checks the swap was all-or-nothing.
func runLCSwapAbort(t *testing.T, c graftCarrier, load lifecycle.LoadFunc, killPoint lifecycle.Point, tag string) {
	t.Helper()
	s := lcSlot(t, c, load)
	frames := lcFrames()
	results := make([]lifecycle.Result, 0, len(frames))
	half := len(frames) / 2
	doFrame := func(i int, f lcFrame) {
		res, err := s.Do("filter", lcPrep(f), f.length)
		if err != nil {
			t.Fatalf("%s: frame %d: %v", tag, i, err)
		}
		results = append(results, res)
	}
	for i, f := range frames[:half] {
		doFrame(i, f)
	}

	errKill := errors.New("killed")
	epochBefore := s.Epoch()
	s.SetGate(func(p lifecycle.Point) error {
		if p == killPoint {
			return errKill
		}
		return nil
	})
	err := s.Promote()
	s.SetGate(nil)
	if !errors.Is(err, errKill) {
		t.Fatalf("%s: killed promote returned %v", tag, err)
	}
	committed := s.Epoch() != epochBefore
	wantVer := uint64(1)
	if committed {
		wantVer = 2
	}
	if inc := s.Incumbent(); inc.Artifact.Version != wantVer {
		t.Fatalf("%s: kill at %s left incumbent v%d with commit=%v — torn swap",
			tag, killPoint, inc.Artifact.Version, committed)
	}
	if committed == (s.Candidate() != nil) {
		t.Fatalf("%s: kill at %s left candidate state inconsistent with commit=%v",
			tag, killPoint, committed)
	}

	for i, f := range frames[half:] {
		doFrame(half+i, f)
	}
	if !committed {
		if err := s.Promote(); err != nil {
			t.Fatalf("%s: retried promote after pre-commit abort: %v", tag, err)
		}
	}
	if s.Incumbent().Artifact.Version != 2 {
		t.Fatalf("%s: slot did not converge on v2", tag)
	}
	lcVerify(t, c, s, frames, results, tag)
}

// TestLifecycleSwapKillPoints sweeps kill points over the packet
// filter's v1→v2 hot swap under every technology class in the
// registry. This is the only test that marks the "lifecycle-swap"
// coverage cell and the "lifecycle-killpoint" fault class, so the zzz
// gate fails if this sweep is lost or a class stops carrying it.
func TestLifecycleSwapKillPoints(t *testing.T) {
	points := 1000
	if testing.Short() {
		points = 24
	}
	swapPoints := []lifecycle.Point{
		lifecycle.PointSwapBegin, lifecycle.PointSwapPrepared,
		lifecycle.PointSwapCommitted, lifecycle.PointSwapRetired,
	}
	seed := suiteSeed(77, 6)
	t.Logf("lifecycle kill-point seed %d (replay with -seed)", seed)
	maxStep := len(lcFrames())*3 + 8
	ran := 0
	for _, c := range graftCarriers() {
		c := c
		if c.wrap {
			continue // the upcall wrap column is covered by the general matrix
		}
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + int64(len(c.name))))
			load := lcLoad(c)
			for i := 0; i < points; i++ {
				if i%2 == 0 {
					killStep := rng.Intn(maxStep)
					runLCInline(t, c, load, killStep, fmt.Sprintf("%s/inline/%d@step%d", c.name, i, killStep))
				} else {
					kp := swapPoints[rng.Intn(len(swapPoints))]
					runLCSwapAbort(t, c, load, kp, fmt.Sprintf("%s/abort/%d@%s", c.name, i, kp))
				}
			}
			markGraftTech(c.id)
			markGraftCell("lifecycle-swap", c.id)
			markFaultClass("lifecycle-killpoint")
		})
		ran++
	}
	if ran < 8 {
		t.Fatalf("only %d carrier columns swept — the lifecycle sweep has collapsed", ran)
	}
}
