package conformance

import (
	"errors"
	"testing"

	"graftlab/internal/grafts"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
)

// The engine matrix holds the general-purpose carriers to the oracle
// through arbitrary programs, but two registry classes cannot carry
// arbitrary source: the Compiled* technologies need a hand-written Go
// implementation, and the Domain class needs a HiPEC rendering. The
// graft matrix closes that gap: every paper graft runs a deterministic
// multi-step scenario under *every* technology that carries it — all of
// tech.All (both VM modes for the bytecode class) plus the upcall
// wrapper — and each step's result, error surface, and final memory
// must agree across the carriers.

// graftStep is one invocation in a scenario. pre, when set, mutates
// graft memory first — the host-side writes a kernel would perform
// between hook calls (re-marshaling run queues, feeding frames).
// wantTrap/wantCode pin the step to an expected trap; otherwise the
// step must succeed and (when wantSet) return want.
type graftStep struct {
	pre      func(m *mem.Memory)
	entry    string
	args     []uint32
	want     uint32
	wantSet  bool
	wantTrap mem.TrapKind
	wantCode uint32
}

func step(entry string, want uint32, args ...uint32) graftStep {
	return graftStep{entry: entry, args: args, want: want, wantSet: true}
}

type graftScenario struct {
	src     tech.Source
	memSize uint32
	// prep runs once after load against the raw graft (host-side setup:
	// table marshaling, mapper initialization).
	prep  func(t *testing.T, g tech.Graft)
	steps []graftStep
}

// graftCarrier is one column of the per-graft matrix.
type graftCarrier struct {
	name   string
	id     tech.ID
	vmMode tech.VMMode
	wrap   bool
	// srcLevel marks carriers that execute the GEL/Tcl source itself
	// (rather than a hand-written Compiled or HiPEC rendering): for
	// those, final memory must also be byte-identical.
	srcLevel bool
}

// graftCarriers expands tech.All into matrix columns. Built as a
// function (not a literal) so the coverage gate can diff it against the
// live registry: a technology added to tech.All without a column here
// fails zzz_coverage_test.go.
func graftCarriers() []graftCarrier {
	var out []graftCarrier
	for _, id := range tech.All {
		if id == tech.Bytecode {
			out = append(out,
				graftCarrier{name: "bytecode-opt", id: id, vmMode: tech.VMOpt, srcLevel: true},
				graftCarrier{name: "bytecode-baseline", id: id, vmMode: tech.VMBaseline, srcLevel: true})
			continue
		}
		src := !tech.NeedsCompiledImpl(id) && id != tech.Domain
		out = append(out, graftCarrier{name: string(id), id: id, srcLevel: src})
	}
	out = append(out, graftCarrier{name: "upcall", id: tech.NativeSafe, wrap: true, srcLevel: true})
	return out
}

// carries reports whether id can carry src, mirroring the loader's
// refusal rules; entries lists the entry points the scenario invokes
// (the Domain class needs a HiPEC rendering for each).
func carries(id tech.ID, src tech.Source, entries []string) bool {
	if id == tech.Script && src.Tcl == "" {
		return false
	}
	if tech.NeedsCompiledImpl(id) && src.Compiled == nil {
		return false
	}
	if id == tech.Domain {
		for _, e := range entries {
			if _, ok := src.Hipec[e]; !ok {
				return false
			}
		}
	}
	return true
}

func graftScenarios() []graftScenario {
	return []graftScenario{
		{
			src: grafts.PageEvict, memSize: grafts.PEMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				m := g.Memory()
				// LRU chain (kernel-owned): pages 7, 9, 5, 11.
				pages := []uint32{7, 9, 5, 11}
				for i, p := range pages {
					addr := uint32(grafts.PELRUNodeBase + 8*i)
					next := uint32(0)
					if i+1 < len(pages) {
						next = addr + 8
					}
					m.St32U(addr, p)
					m.St32U(addr+4, next)
				}
				writeHotList(m, []uint32{7, 9, 11})
			},
			steps: []graftStep{
				// 5 is the first LRU page not on the hot list.
				step("evict", 5, grafts.PELRUNodeBase),
				{pre: func(m *mem.Memory) { writeHotList(m, []uint32{5, 7, 9, 11}) },
					entry: "evict", args: []uint32{grafts.PELRUNodeBase}, want: 7, wantSet: true},
				{pre: func(m *mem.Memory) { writeHotList(m, nil) },
					entry: "evict", args: []uint32{grafts.PELRUNodeBase}, want: 7, wantSet: true},
			},
		},
		{
			src: grafts.MD5, memSize: grafts.MDMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				m := g.Memory()
				grafts.SetupMD5Memory(m)
				for i := uint32(0); i < 128; i++ {
					m.St8U(grafts.MDBufAddr+i, uint32(i*7+3)&0xFF)
				}
			},
			steps: []graftStep{
				step("md5_init", 0),
				{entry: "md5_update", args: []uint32{grafts.MDBufAddr, 64}},
				{entry: "md5_update", args: []uint32{grafts.MDBufAddr + 64, 37}},
				// The digest lands at MDOutAddr; the srcLevel memory
				// comparison is what checks it across carriers.
				{entry: "md5_final", args: []uint32{grafts.MDOutAddr}},
			},
		},
		{
			src: grafts.LDMap, memSize: grafts.LDMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				if _, err := grafts.NewGraftMapper(g, 256); err != nil {
					t.Fatal(err)
				}
			},
			steps: []graftStep{
				step("ld_write", 0, 5),
				step("ld_write", 1, 9),
				step("ld_write", 2, 5), // remap: 5 moves to the next log slot
				step("ld_write", 3, 255),
				step("ld_read", 2, 5),
				step("ld_read", 1, 9),
				step("ld_read", 0xFFFFFFFF, 100), // unmapped
				{entry: "ld_write", args: []uint32{999}, wantTrap: mem.TrapAbort, wantCode: 1},
				{entry: "ld_read", args: []uint32{400}, wantTrap: mem.TrapAbort, wantCode: 1},
				// The failed calls must not have disturbed the log head.
				step("ld_write", 4, 17),
			},
		},
		{
			src: grafts.PacketFilter, memSize: grafts.PFMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				m := g.Memory()
				grafts.ConfigurePacketFilter(m, 80)
				writeUDPFrame(m, 80)
			},
			steps: []graftStep{
				step("filter", 1, 60),
				step("filter", 0, 41), // runt frame
				{pre: func(m *mem.Memory) { m.St8U(grafts.PFBufAddr+23, 6) }, // TCP
					entry: "filter", args: []uint32{60}, wantSet: true, want: 0},
				{pre: func(m *mem.Memory) { writeUDPFrame(m, 81) }, // wrong port
					entry: "filter", args: []uint32{60}, wantSet: true, want: 0},
				{pre: func(m *mem.Memory) { writeUDPFrame(m, 80) },
					entry: "filter", args: []uint32{60}, wantSet: true, want: 1},
			},
		},
		{
			// The batched receive protocol (netsim.DeliverBatch): frames in
			// slots, lengths in a table, the verdict table pre-filled with
			// the sentinel, the accept bitmask as the return value. Running
			// it through the full carrier matrix pins that the batch entry
			// is not a bytecode-only fast path: every class must classify
			// the same slots the same way, clamp oversized counts to the
			// 32-bit mask width, and coexist with the single-frame entry
			// over the shared slot-0 buffer.
			src: pktFilterBatchSrc(), memSize: grafts.PFMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				m := g.Memory()
				grafts.ConfigurePacketFilter(m, 80)
				// Slots: match, wrong port, TCP, runt, match.
				writeBatchSlot(m, 0, 80, 17, 60)
				writeBatchSlot(m, 1, 81, 17, 60)
				writeBatchSlot(m, 2, 80, 6, 60)
				writeBatchSlot(m, 3, 80, 17, 41)
				writeBatchSlot(m, 4, 80, 17, 60)
			},
			steps: []graftStep{
				step("filter_batch", 0b10001, 5),
				step("filter_batch", 1, 1), // batch of one: the old layout
				step("filter_batch", 0, 0), // empty batch
				// Fixing slot 1's port flips exactly its mask bit.
				{pre: func(m *mem.Memory) { writeBatchSlot(m, 1, 80, 17, 60) },
					entry: "filter_batch", args: []uint32{2}, wantSet: true, want: 0b11},
				// The single-frame entry reads slot 0 (its buffer) unchanged.
				step("filter", 1, 60),
				step("filter_batch", 0b10011, 5),
				// Counts past the mask width clamp to 32; the stale slots
				// beyond 4 have zero lengths and must all be rejected.
				step("filter_batch", 0b10011, 40),
			},
		},
		{
			src: grafts.SchedPolicy, memSize: grafts.SCMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				writeRunQueue(g.Memory(), [][3]uint32{
					{1, 1, 10}, {2, 2, 50}, {3, 2, 20}, {4, 1, 5}, {5, 2, 90},
				})
			},
			steps: []graftStep{
				step("pick", 2, 5), // index 2 is the server with least runtime
				step("pick", grafts.SCDecline, 0),
				{pre: func(m *mem.Memory) { m.St32U(grafts.SCBase+1*grafts.SCStride+8, 5) },
					entry: "pick", args: []uint32{5}, wantSet: true, want: 1},
			},
		},
		{
			src: grafts.ACL, memSize: grafts.ACLMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				writeACL(g.Memory(), [][3]uint32{
					{1, 2, grafts.PermRead | grafts.PermWrite},
					{grafts.ACLWildcard, 9, grafts.PermRead},
					{3, grafts.ACLWildcard, grafts.PermExec},
				})
			},
			steps: []graftStep{
				step("check", 1, 1, 2, grafts.PermRead),
				step("check", 0, 1, 2, grafts.PermExec),
				step("check", 1, 42, 9, grafts.PermRead),
				step("check", 1, 3, 77, grafts.PermExec),
				step("check", 0, 3, 77, grafts.PermWrite), // first match denies write
				step("check", 0, 9, 9, grafts.PermWrite),
				step("check", 0, 6, 6, grafts.PermRead), // no matching entry
			},
		},
		{
			src: grafts.CacheHook, memSize: grafts.BCMemSize,
			prep: func(t *testing.T, g tech.Graft) {
				m := g.Memory()
				blocks := []uint32{100, 200, 300, 400}
				m.St32U(grafts.BCCountAddr, uint32(len(blocks)))
				for i, b := range blocks {
					m.St32U(grafts.BCBase+uint32(i)*4, b)
				}
				writePinSet(m, []uint32{100, 200})
			},
			steps: []graftStep{
				step("pickvictim", 2, 4),
				{pre: func(m *mem.Memory) { writePinSet(m, []uint32{100, 200, 300}) },
					entry: "pickvictim", args: []uint32{4}, wantSet: true, want: 3},
				{pre: func(m *mem.Memory) { writePinSet(m, []uint32{100, 200, 300, 400}) },
					entry: "pickvictim", args: []uint32{4}, wantSet: true, want: grafts.BCDecline},
				step("pickvictim", grafts.BCDecline, 0),
			},
		},
	}
}

func writeHotList(m *mem.Memory, pages []uint32) {
	if len(pages) == 0 {
		m.St32U(grafts.PEHotHeadAddr, 0)
		return
	}
	m.St32U(grafts.PEHotHeadAddr, grafts.PEHotNodeBase)
	for i, p := range pages {
		addr := uint32(grafts.PEHotNodeBase + 8*i)
		next := uint32(0)
		if i+1 < len(pages) {
			next = addr + 8
		}
		m.St32U(addr, p)
		m.St32U(addr+4, next)
	}
}

// pktFilterBatchSrc is the packet filter under a scenario name of its
// own, so the batched protocol gets its own coverage cell per carrier.
func pktFilterBatchSrc() tech.Source {
	src := grafts.PacketFilter
	src.Name = "pktfilter-batch"
	return src
}

// writeBatchSlot marshals a minimal frame into batch slot j — header
// bytes in the slot, the reported length in the length table, and the
// sentinel in the verdict table — exactly what netsim's batched marshal
// does per frame.
func writeBatchSlot(m *mem.Memory, slot uint32, port uint16, proto uint8, length uint32) {
	base := uint32(grafts.PFBufAddr) + slot*grafts.PFSlotSize
	for i := uint32(0); i < 60; i++ {
		m.St8U(base+i, 0)
	}
	m.St8U(base+12, 0x08) // ethertype IPv4
	m.St8U(base+13, 0x00)
	m.St8U(base+23, uint32(proto))
	m.St8U(base+36, uint32(port>>8))
	m.St8U(base+37, uint32(port)&0xFF)
	m.St32U(grafts.PFLenBase+slot*4, length)
	m.St32U(grafts.PFVerdictBase+slot*4, grafts.PFVerdictNone)
}

// writeUDPFrame marshals a minimal IPv4/UDP frame addressed to port into
// the filter's buffer.
func writeUDPFrame(m *mem.Memory, port uint16) {
	for i := uint32(0); i < 60; i++ {
		m.St8U(grafts.PFBufAddr+i, 0)
	}
	m.St8U(grafts.PFBufAddr+12, 0x08) // ethertype IPv4
	m.St8U(grafts.PFBufAddr+13, 0x00)
	m.St8U(grafts.PFBufAddr+23, 17) // UDP
	m.St8U(grafts.PFBufAddr+36, uint32(port>>8))
	m.St8U(grafts.PFBufAddr+37, uint32(port)&0xFF)
}

func writeRunQueue(m *mem.Memory, procs [][3]uint32) {
	m.St32U(grafts.SCCountAddr, uint32(len(procs)))
	for i, p := range procs {
		base := uint32(grafts.SCBase) + uint32(i)*grafts.SCStride
		m.St32U(base, p[0])
		m.St32U(base+4, p[1])
		m.St32U(base+8, p[2])
	}
}

func writeACL(m *mem.Memory, entries [][3]uint32) {
	m.St32U(grafts.ACLCountAddr, uint32(len(entries)))
	for i, e := range entries {
		base := uint32(grafts.ACLBase) + uint32(i)*grafts.ACLStride
		m.St32U(base, e[0])
		m.St32U(base+4, e[1])
		m.St32U(base+8, e[2])
	}
}

func writePinSet(m *mem.Memory, blocks []uint32) {
	m.St32U(grafts.BCPinCountAddr, uint32(len(blocks)))
	for i, b := range blocks {
		m.St32U(grafts.BCPinBase+uint32(i)*4, b)
	}
}

// graftOutcome is the observable record of one carrier running a full
// scenario: per-step values and trap surfaces, plus the final memory.
type graftOutcome struct {
	carrier string
	vals    []uint32
	traps   []*mem.Trap
	mem     []byte
}

func runGraftScenario(t *testing.T, c graftCarrier, sc graftScenario) graftOutcome {
	t.Helper()
	m := mem.New(sc.memSize)
	g, err := tech.Load(c.id, sc.src, m, tech.Options{VM: c.vmMode})
	if err != nil {
		t.Fatalf("carrier %s: load %s: %v", c.name, sc.src.Name, err)
	}
	if sc.prep != nil {
		sc.prep(t, g)
	}
	invoke := g
	if c.wrap {
		d := upcall.NewDomain(g, 0)
		defer d.Close()
		invoke = d
	}
	o := graftOutcome{carrier: c.name}
	for i, s := range sc.steps {
		if s.pre != nil {
			s.pre(m)
		}
		v, err := invoke.Invoke(s.entry, s.args...)
		var trap *mem.Trap
		if err != nil && !errors.As(err, &trap) {
			t.Fatalf("carrier %s step %d (%s): non-trap error %v", c.name, i, s.entry, err)
		}
		o.vals = append(o.vals, v)
		o.traps = append(o.traps, trap)
		switch {
		case s.wantTrap != mem.TrapNone:
			if trap == nil || trap.Kind != s.wantTrap || trap.Code != s.wantCode {
				t.Fatalf("carrier %s step %d (%s): got (%d, %v), want trap %v code %d",
					c.name, i, s.entry, v, err, s.wantTrap, s.wantCode)
			}
		case trap != nil:
			t.Fatalf("carrier %s step %d (%s): unexpected trap %v", c.name, i, s.entry, err)
		case s.wantSet && v != s.want:
			t.Fatalf("carrier %s step %d (%s%v): got %d, want %d", c.name, i, s.entry, s.args, v, s.want)
		}
	}
	o.mem = append([]byte(nil), m.Data...)
	if !c.wrap {
		markGraftTech(c.id)
		markGraftCell(sc.src.Name, c.id)
	}
	return o
}

// TestGraftConformanceMatrix runs every paper graft under every carrying
// technology and holds the carriers to step-by-step agreement. Carriage
// is computed from the source's representations; a technology that
// *should* carry a graft but refuses to load is a failure, and the
// refusals themselves are asserted so a silently skipped carrier cannot
// masquerade as coverage.
func TestGraftConformanceMatrix(t *testing.T) {
	for _, sc := range graftScenarios() {
		sc := sc
		t.Run(sc.src.Name, func(t *testing.T) {
			entries := make([]string, 0, len(sc.steps))
			for _, s := range sc.steps {
				entries = append(entries, s.entry)
			}
			var ran []graftOutcome
			var srcRef *graftOutcome
			for _, c := range graftCarriers() {
				c := c
				if !carries(c.id, sc.src, entries) {
					// The loader must refuse, not mishandle, a missing
					// representation.
					if _, err := tech.Load(c.id, sc.src, mem.New(sc.memSize), tech.Options{}); err == nil {
						t.Fatalf("%s should refuse %s (missing representation)", c.name, sc.src.Name)
					}
					continue
				}
				o := runGraftScenario(t, c, sc)
				ran = append(ran, o)
				if c.srcLevel {
					if srcRef == nil {
						ref := o
						srcRef = &ref
					} else if string(srcRef.mem) != string(o.mem) {
						t.Fatalf("%s: final memory diverges between %s and %s (first diff at %#x)",
							sc.src.Name, srcRef.carrier, o.carrier, firstDiff(srcRef.mem, o.mem))
					}
				}
			}
			if len(ran) < 2 {
				t.Fatalf("%s: only %d carriers ran — the matrix has collapsed", sc.src.Name, len(ran))
			}
			ref := ran[0]
			for _, o := range ran[1:] {
				for i := range sc.steps {
					rt, ot := ref.traps[i], o.traps[i]
					if (rt == nil) != (ot == nil) {
						t.Fatalf("%s step %d: %s trap=%v, %s trap=%v",
							sc.src.Name, i, ref.carrier, rt, o.carrier, ot)
					}
					if rt != nil {
						if rt.Kind != ot.Kind || rt.Code != ot.Code {
							t.Fatalf("%s step %d: %s trap {%v code=%d}, %s trap {%v code=%d}",
								sc.src.Name, i, ref.carrier, rt.Kind, rt.Code, o.carrier, ot.Kind, ot.Code)
						}
						continue
					}
					if ref.vals[i] != o.vals[i] {
						t.Fatalf("%s step %d (%s): %s=%d, %s=%d",
							sc.src.Name, i, sc.steps[i].entry, ref.carrier, ref.vals[i], o.carrier, o.vals[i])
					}
				}
			}
		})
	}
}
