package conformance

import (
	"errors"
	"sync"
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/upcall"
)

// progMemSize is the linear memory for corpus and generated programs.
// 2^16 so the sandbox mask is 0xFFFF; the tame generator keeps every
// access inside [NilPageSize, progMemSize).
const progMemSize = 1 << 16

// oracleFuel is the budget handed to every oracle run: generous enough
// that no bounded generated program can exhaust it, so a fuel trap in
// the oracle means a generator bug, not a slow engine.
const oracleFuel = 1 << 22

// engineDef is one row of the conformance matrix. Every engine runs the
// same GEL/Tcl program; cohort groups the engines whose observable
// semantics must agree *exactly* (same protection policy, same trap
// surface). The matrix — not individual tests — decides what runs, and
// zzz_coverage_test.go fails if a registry technology has no row here
// and no graft-matrix coverage.
type engineDef struct {
	name   string
	id     tech.ID
	vmMode tech.VMMode
	// wrap runs the graft behind an upcall.Domain: same inner policy as
	// native-safe, every invocation crossing the protection boundary.
	wrap bool
}

// engineMatrix is every directly loadable technology that can carry an
// arbitrary GEL/Tcl program, plus both bytecode engines and the upcall
// wrapper. The Compiled* and Domain classes cannot run arbitrary
// programs (they need a hand-written implementation or a HiPEC
// rendering); they are held to the oracle through the per-graft matrix
// in grafts_test.go instead.
var engineMatrix = []engineDef{
	{name: "native-unsafe", id: tech.NativeUnsafe},
	{name: "native-safe", id: tech.NativeSafe},
	{name: "native-safe-nil", id: tech.NativeSafeNil},
	{name: "sfi", id: tech.SFI},
	{name: "sfi-full", id: tech.SFIFull},
	{name: "bytecode-opt", id: tech.Bytecode, vmMode: tech.VMOpt},
	{name: "bytecode-baseline", id: tech.Bytecode, vmMode: tech.VMBaseline},
	{name: "aot", id: tech.AOT},
	{name: "script", id: tech.Script},
	{name: "upcall", id: tech.NativeSafe, wrap: true},
}

// refEngine is the oracle's reference row: checked policy, no NIL page,
// native closures — the most literal rendering of GEL semantics.
const refEngine = "native-safe"

// exactCohort lists the engines whose outcomes must match the reference
// byte for byte on every program, tame or wild: the checked engines, the
// unsafe engines (whose crash backstop is observably the same bounds
// trap), and the upcall wrapper. The NIL-checking and sandbox engines
// diverge on wild programs in documented ways and get their own
// predicates in checkProgram.
var exactCohort = map[string]bool{
	"native-unsafe":     true,
	"native-safe":       true,
	"bytecode-opt":      true,
	"bytecode-baseline": true,
	"aot":               true,
	"script":            true,
	"upcall":            true,
}

// outcome is everything observable about one engine running one program.
type outcome struct {
	engine   string
	val      uint32
	err      error
	trap     *mem.Trap // non-nil iff err is a trap
	mem      []byte    // full memory snapshot after the run
	accesses uint64    // fault-plan access count (0 when unarmed)
}

func (o outcome) trapKind() mem.TrapKind {
	if o.trap == nil {
		return mem.TrapNone
	}
	return o.trap.Kind
}

// runEngine loads src under e into a fresh memory and invokes
// entry(args). plan, when non-nil, is armed on the memory before load —
// the load-time decision every engine keys its fault checks on.
func runEngine(t *testing.T, e engineDef, src tech.Source, entry string, args []uint32, fuel int64, plan *mem.FaultPlan) outcome {
	t.Helper()
	m := mem.New(progMemSize)
	if plan != nil {
		m.Arm(plan)
	}
	g, err := tech.Load(e.id, src, m, tech.Options{Fuel: fuel, VM: e.vmMode})
	if err != nil {
		t.Fatalf("engine %s: load %q: %v\nGEL:\n%s\nTcl:\n%s", e.name, src.Name, err, src.GEL, src.Tcl)
	}
	if e.wrap {
		d := upcall.NewDomain(g, 0)
		defer d.Close()
		g = d
	}
	v, err := g.Invoke(entry, args...)
	o := outcome{engine: e.name, val: v, err: err}
	var trap *mem.Trap
	if errors.As(err, &trap) {
		o.trap = trap
	}
	o.mem = append([]byte(nil), m.Data...)
	if plan != nil {
		o.accesses = plan.Accesses()
	}
	markExercised(e.name)
	return o
}

// agreeExact fails unless got matches ref on value, error-ness, trap
// kind/addr/code, and memory. Memory is not compared under stack-
// overflow or fuel traps: call-depth limits and fuel units are
// documented per-engine quantities, so the trap point (and hence the
// partial side effects) may differ. Trap PCs are only meaningful within
// the bytecode pair and are compared separately by the caller.
func agreeExact(t *testing.T, label string, ref, got outcome) {
	t.Helper()
	if (ref.err != nil) != (got.err != nil) {
		t.Fatalf("%s: %s err=%v, %s err=%v", label, ref.engine, ref.err, got.engine, got.err)
	}
	if ref.trap != nil || got.trap != nil {
		if ref.trap == nil || got.trap == nil {
			t.Fatalf("%s: %s trap=%v, %s trap=%v (one is not a *mem.Trap: %v / %v)",
				label, ref.engine, ref.trap, got.engine, got.trap, ref.err, got.err)
		}
		if ref.trap.Kind != got.trap.Kind || ref.trap.Addr != got.trap.Addr || ref.trap.Code != got.trap.Code {
			t.Fatalf("%s: %s trap {%v addr=%#x code=%d}, %s trap {%v addr=%#x code=%d}",
				label, ref.engine, ref.trap.Kind, ref.trap.Addr, ref.trap.Code,
				got.engine, got.trap.Kind, got.trap.Addr, got.trap.Code)
		}
		if ref.trap.Kind == mem.TrapStackOverflow || ref.trap.Kind == mem.TrapFuel {
			return
		}
	} else if ref.val != got.val {
		t.Fatalf("%s: %s=%d, %s=%d", label, ref.engine, ref.val, got.engine, got.val)
	}
	if string(ref.mem) != string(got.mem) {
		t.Fatalf("%s: memory diverges between %s and %s (first diff at %#x)",
			label, ref.engine, got.engine, firstDiff(ref.mem, got.mem))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// checkProgram runs one program through the whole matrix and applies the
// oracle. tame marks programs whose every memory access is word-aligned
// and inside [NilPageSize, progMemSize): for those, all nine engines
// must agree exactly (masking and NIL checks are identity). Wild
// programs get the per-cohort predicates documented inline.
func checkProgram(t *testing.T, label string, src tech.Source, args []uint32, tame bool) map[string]outcome {
	t.Helper()
	out := make(map[string]outcome, len(engineMatrix))
	for _, e := range engineMatrix {
		o := runEngine(t, e, src, "main", args, oracleFuel, nil)
		if o.trapKind() == mem.TrapFuel {
			t.Fatalf("%s: engine %s exhausted the oracle budget — generator produced an unbounded program\nGEL:\n%s",
				label, e.name, src.GEL)
		}
		out[e.name] = o
	}
	ref := out[refEngine]

	for _, e := range engineMatrix {
		o := out[e.name]
		switch {
		case tame, exactCohort[e.name]:
			agreeExact(t, label+"/"+e.name, ref, o)
		case e.name == "native-safe-nil":
			// Diverges from checked only by trapping NIL-page accesses the
			// checked policy happily performs; anything else is exact.
			if o.trapKind() == mem.TrapNilDeref {
				if o.trap.Addr >= mem.NilPageSize {
					t.Fatalf("%s: %s NIL trap at %#x, outside the NIL page", label, e.name, o.trap.Addr)
				}
			} else {
				agreeExact(t, label+"/"+e.name, ref, o)
			}
		case e.name == "sfi" || e.name == "sfi-full":
			// Sandboxing turns stray stores (and, with read protection,
			// stray loads) into silent in-region accesses; values and
			// memory may legitimately diverge on wild programs. What must
			// hold is the safety claim itself: the only traps a sandboxed
			// graft can raise are non-memory ones — plus the unprotected-
			// load bounds backstop for write/jump-only SFI.
			switch k := o.trapKind(); k {
			case mem.TrapNone, mem.TrapDivZero, mem.TrapAbort, mem.TrapStackOverflow:
			case mem.TrapOOBLoad:
				if e.name == "sfi-full" {
					t.Fatalf("%s: %s trapped %v — read protection must mask loads", label, e.name, k)
				}
			default:
				t.Fatalf("%s: %s trapped %v — sandboxing must confine memory faults", label, e.name, k)
			}
		}
	}

	// Trap PCs are an intra-VM contract: both bytecode engines and the
	// AOT translation run the same verified module, so a trap must be
	// attributed to the same instruction.
	bo, bb := out["bytecode-opt"], out["bytecode-baseline"]
	if bo.trap != nil && bb.trap != nil && bo.trap.Kind == bb.trap.Kind && bo.trap.PC != bb.trap.PC {
		t.Fatalf("%s: bytecode trap PC diverges: opt=%d baseline=%d (%v)", label, bo.trap.PC, bb.trap.PC, bo.trap.Kind)
	}
	if ao := out["aot"]; ao.trap != nil && bo.trap != nil && ao.trap.Kind == bo.trap.Kind && ao.trap.PC != bo.trap.PC {
		t.Fatalf("%s: aot trap PC diverges from bytecode-opt: aot=%d opt=%d (%v)", label, ao.trap.PC, bo.trap.PC, ao.trap.Kind)
	}
	return out
}

// --- coverage bookkeeping (asserted by zzz_coverage_test.go) ---

var (
	coverMu        sync.Mutex
	engineRuns     = map[string]bool{}
	faultClassRuns = map[string]bool{}
	graftTechRuns  = map[tech.ID]bool{}
	graftCellRuns  = map[string]map[tech.ID]bool{}
)

func markExercised(engine string) { coverMu.Lock(); engineRuns[engine] = true; coverMu.Unlock() }
func markFaultClass(class string) { coverMu.Lock(); faultClassRuns[class] = true; coverMu.Unlock() }
func markGraftTech(id tech.ID)    { coverMu.Lock(); graftTechRuns[id] = true; coverMu.Unlock() }
func markGraftCell(graft string, id tech.ID) {
	coverMu.Lock()
	if graftCellRuns[graft] == nil {
		graftCellRuns[graft] = map[tech.ID]bool{}
	}
	graftCellRuns[graft][id] = true
	coverMu.Unlock()
}
func exercisedEngine(name string) bool {
	coverMu.Lock()
	defer coverMu.Unlock()
	return engineRuns[name]
}
