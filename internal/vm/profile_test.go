package vm

import (
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// The profiler must attribute fuel to the source lines that burn it:
// a program spending nearly all its fuel in a tight loop should have
// nearly all sample weight on the loop's lines, on both engines.
const profileLoopSrc = `func main(n) {
	var acc = 0;
	var i = 0;
	while (i < n) {
		acc = acc + i;
		i = i + 1;
	}
	return acc;
}`

func profileOf(t *testing.T, interval int64, run func(s *telemetry.ProfScope)) []telemetry.ProfSample {
	t.Helper()
	p, err := telemetry.NewProfile(interval)
	if err != nil {
		t.Fatal(err)
	}
	run(p.Scope("loop", "test"))
	return p.Samples()
}

func loopShare(samples []telemetry.ProfSample) (loop, total int64) {
	for _, s := range samples {
		total += s.Fuel
		// Lines 4-7 are the while condition and body.
		if s.Line >= 4 && s.Line <= 7 {
			loop += s.Fuel
		}
	}
	return
}

func TestOptVMProfileAttribution(t *testing.T) {
	mod := compileGEL(t, profileLoopSrc)
	v, err := NewOpt(mod, mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked}, OptConfig{})
	if err != nil {
		t.Fatal(err)
	}
	samples := profileOf(t, 16, func(s *telemetry.ProfScope) {
		v.SetProfile(s, 16)
		if _, err := v.Invoke("main", 10000); err != nil {
			t.Fatal(err)
		}
	})
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	for _, s := range samples {
		if s.Func != "main" {
			t.Errorf("sample attributed to %q", s.Func)
		}
		if s.Line < 1 || s.Line > 9 {
			t.Errorf("sample at line %d, outside source", s.Line)
		}
	}
	loop, total := loopShare(samples)
	if share := float64(loop) / float64(total); share < 0.95 {
		t.Errorf("loop lines own %.1f%% of fuel, want >=95%% (samples: %+v)",
			100*share, samples)
	}
}

func TestBaselineVMProfileAttribution(t *testing.T) {
	mod := compileGEL(t, profileLoopSrc)
	v, err := New(mod, mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
	if err != nil {
		t.Fatal(err)
	}
	samples := profileOf(t, 16, func(s *telemetry.ProfScope) {
		v.SetProfile(s, 16)
		if _, err := v.Invoke("main", 10000); err != nil {
			t.Fatal(err)
		}
	})
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	loop, total := loopShare(samples)
	if share := float64(loop) / float64(total); share < 0.95 {
		t.Errorf("loop lines own %.1f%% of fuel, want >=95%% (samples: %+v)",
			100*share, samples)
	}
}

func TestProfileDetach(t *testing.T) {
	mod := compileGEL(t, profileLoopSrc)
	v, err := NewOpt(mod, mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked}, OptConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := telemetry.NewProfile(16)
	if err != nil {
		t.Fatal(err)
	}
	v.SetProfile(p.Scope("loop", "test"), 16)
	if _, err := v.Invoke("main", 100); err != nil {
		t.Fatal(err)
	}
	if len(p.Samples()) == 0 {
		t.Fatal("attached profiler saw nothing")
	}
	before := p.TotalFuel()
	v.SetProfile(nil, 0)
	if _, err := v.Invoke("main", 10000); err != nil {
		t.Fatal(err)
	}
	if p.TotalFuel() != before {
		t.Error("detached profiler still collecting")
	}
}
