package vm

// Differential tests: the baseline interpreter (vm.go) is the semantic
// reference; OptVM (opt.go) must agree with it on random GEL programs under
// every memory policy, including trap kind/pc/addr equivalence, memory side
// effects, and fuel-exhaustion behavior. The single permitted divergence is
// block-granular fuel: when the baseline traps mid-block (or mid-fused-
// group), the optimized engine may report fuel exhaustion up to one block
// early instead. The completion threshold itself is identical — a program
// that finishes under the baseline with budget F finishes under OptVM with
// budget F, and vice versa.

import (
	"fmt"
	"math/rand"
	"testing"

	"graftlab/internal/bytecode"
	"graftlab/internal/compile"
	"graftlab/internal/gel"
	"graftlab/internal/mem"
)

const diffMemSize = 1 << 16

var diffPolicies = []struct {
	name string
	cfg  mem.Config
}{
	{"unsafe", mem.Config{Policy: mem.PolicyUnsafe}},
	{"checked", mem.Config{Policy: mem.PolicyChecked}},
	{"checked-nil", mem.Config{Policy: mem.PolicyChecked, NilCheck: true}},
	{"sandbox", mem.Config{Policy: mem.PolicySandbox}},
	{"sandbox-rp", mem.Config{Policy: mem.PolicySandbox, ReadProtect: true}},
}

func compileGEL(t testing.TB, src string) *bytecode.Module {
	t.Helper()
	prog, err := gel.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	mod, err := compile.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	return mod
}

type engine interface {
	Invoke(entry string, args ...uint32) (uint32, error)
	Memory() *mem.Memory
}

func newBase(t testing.TB, mod *bytecode.Module, cfg mem.Config, init []byte, fuel int64) *VM {
	t.Helper()
	m := mem.New(diffMemSize)
	copy(m.Data, init)
	v, err := New(mod, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v.Fuel = fuel
	return v
}

func newOptVM(t testing.TB, mod *bytecode.Module, cfg mem.Config, init []byte, fuel int64, oc OptConfig) *OptVM {
	t.Helper()
	m := mem.New(diffMemSize)
	copy(m.Data, init)
	v, err := NewOpt(mod, m, cfg, oc)
	if err != nil {
		t.Fatal(err)
	}
	v.Fuel = fuel
	return v
}

func runMain(t testing.TB, g engine, args []uint32) (uint32, *mem.Trap) {
	t.Helper()
	v, err := g.Invoke("main", args...)
	if err == nil {
		return v, nil
	}
	tr, ok := err.(*mem.Trap)
	if !ok {
		t.Fatalf("non-trap error: %v", err)
	}
	return 0, tr
}

// checkAgainstBaseline applies the equivalence predicate described in the
// file comment.
func checkAgainstBaseline(t *testing.T, label, src string,
	bv uint32, bt *mem.Trap, bmem []byte,
	ov uint32, ot *mem.Trap, omem []byte) {
	t.Helper()
	fail := func(format string, a ...any) {
		t.Helper()
		t.Fatalf("%s: %s\nbaseline trap=%v opt trap=%v\n%s", label, fmt.Sprintf(format, a...), bt, ot, src)
	}
	switch {
	case bt == nil && ot == nil:
		if bv != ov {
			fail("value: baseline=%d opt=%d", bv, ov)
		}
		if string(bmem) != string(omem) {
			fail("memory diverges on completed run")
		}
	case bt == nil:
		fail("opt trapped where baseline completed (value %d)", bv)
	case ot == nil:
		fail("opt completed (value %d) where baseline trapped", ov)
	case bt.Kind == mem.TrapFuel:
		// Both must run out; pc and partial side effects may differ by up
		// to one block.
		if ot.Kind != mem.TrapFuel {
			fail("baseline exhausted fuel, opt raised %v", ot.Kind)
		}
	case ot.Kind == mem.TrapFuel:
		// Bounded overshoot: baseline trapped mid-block, opt charged the
		// whole block on entry and ran out first. Allowed.
	default:
		if bt.Kind != ot.Kind || bt.PC != ot.PC || bt.Addr != ot.Addr || bt.Code != ot.Code {
			fail("trap mismatch")
		}
		if string(bmem) != string(omem) {
			fail("memory diverges on identically-trapped run")
		}
	}
}

// TestBaselineOptAgreeOnRandomPrograms is the main differential property:
// random GEL programs (wild addresses, division, calls, nested control
// flow) under all memory policies, with both ample and scarce fuel, for the
// full translator and both ablated configurations.
func TestBaselineOptAgreeOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 400
	if testing.Short() {
		n = 60
	}
	variants := []struct {
		name string
		oc   OptConfig
	}{
		{"opt", OptConfig{}},
		{"opt-nofuse", OptConfig{NoFuse: true}},
		{"opt-perinstr", OptConfig{PerInstrFuel: true}},
	}
	for i := 0; i < n; i++ {
		src := randomDiffProgram(rng)
		mod := compileGEL(t, src)
		args := []uint32{rng.Uint32(), rng.Uint32() % 97}
		fuel := int64(1 << 16)
		if i%3 == 1 {
			fuel = int64(rng.Intn(300)) + 1
		}
		init := make([]byte, diffMemSize)
		rng.Read(init)
		for _, pol := range diffPolicies {
			base := newBase(t, mod, pol.cfg, init, fuel)
			bv, bt := runMain(t, base, args)
			for _, vr := range variants {
				opt := newOptVM(t, mod, pol.cfg, init, fuel, vr.oc)
				ov, ot := runMain(t, opt, args)
				label := fmt.Sprintf("program %d policy %s variant %s fuel %d args %v",
					i, pol.name, vr.name, fuel, args)
				checkAgainstBaseline(t, label, src,
					bv, bt, base.Memory().Data, ov, ot, opt.Memory().Data)
			}
		}
	}
}

// randomDiffProgram generates GEL with deliberately wild memory addresses
// (to exercise OOB and nil-page traps), possible division by zero, a helper
// call, and bounded loops. Unlike the cross-technology generator in
// internal/tech, it does not need policies to agree with each other — only
// the two engines under the *same* policy.
func randomDiffProgram(rng *rand.Rand) string {
	hg := &diffGen{rng: rng, vars: []string{"p", "q"}, leaf: true}
	g := &diffGen{rng: rng, vars: []string{"x", "y", "z", "a", "b"}}
	return fmt.Sprintf(`func h(p, q) {
	return %s;
}
func main(a, b) {
	var x = a;
	var y = b;
	var z = 3;
%s	return x ^ y + z;
}`, hg.expr(2), g.stmts(4, 2))
}

type diffGen struct {
	rng  *rand.Rand
	vars []string
	leaf bool // no calls to h (used when generating h's own body)
}

func (g *diffGen) stmts(n, depth int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += g.stmt(depth)
	}
	return out
}

func (g *diffGen) addr() string {
	if g.rng.Intn(3) == 0 {
		return g.expr(1) // wild: may be out of bounds or in the nil page
	}
	return fmt.Sprintf("((%s) %% 16000) * 4", g.expr(1))
}

func (g *diffGen) stmt(depth int) string {
	vars := []string{"x", "y", "z"}
	v := vars[g.rng.Intn(len(vars))]
	switch r := g.rng.Intn(12); {
	case r < 4:
		return fmt.Sprintf("\t%s = %s;\n", v, g.expr(depth))
	case r < 6 && depth > 0:
		return fmt.Sprintf("\tif (%s) {\n%s\t} else {\n%s\t}\n",
			g.expr(depth-1), g.stmts(2, depth-1), g.stmts(1, depth-1))
	case r < 7 && depth > 0:
		return fmt.Sprintf("\t{ var i = 0; while (i < %d) { i = i + 1;\n%s\t} }\n",
			g.rng.Intn(9)+1, g.stmts(1, depth-1))
	case r < 9:
		return fmt.Sprintf("\tst32(%s, %s);\n", g.addr(), g.expr(depth))
	case r < 10:
		return fmt.Sprintf("\tst8(%s, %s);\n", g.addr(), g.expr(depth))
	case r < 11:
		return fmt.Sprintf("\t%s = ld8(%s);\n", v, g.addr())
	default:
		return fmt.Sprintf("\t%s = ld32(%s);\n", v, g.addr())
	}
}

func (g *diffGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(3) == 0 {
			return fmt.Sprintf("%d", g.rng.Uint32()>>uint(g.rng.Intn(32)))
		}
		return g.vars[g.rng.Intn(len(g.vars))]
	}
	switch g.rng.Intn(8) {
	case 0: // helper call
		if g.leaf {
			return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
		}
		return fmt.Sprintf("h(%s, %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("rotl(%s, %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(~%s)", g.expr(depth-1))
	default:
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
			"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(len(ops))], g.expr(depth-1))
	}
}

// TestFuelThresholdIdentical pins the central fuel property: the minimal
// budget under which a program completes is the same for the baseline and
// every translator configuration — block-granular charging changes when a
// runaway graft is stopped by at most one block, never whether a
// well-budgeted one completes.
func TestFuelThresholdIdentical(t *testing.T) {
	src := `func main(a, b) {
	var i = 0;
	var s = 0;
	while (i < 50) {
		s = s + ld32(((s + i) % 15360 + 1024) * 4);
		i = i + 1;
	}
	return s;
}`
	mod := compileGEL(t, src)
	cfg := mem.Config{Policy: mem.PolicyChecked, NilCheck: true}
	init := make([]byte, diffMemSize)
	rand.New(rand.NewSource(7)).Read(init)
	args := []uint32{5, 9}

	completes := func(fuel int64) bool {
		v := newBase(t, mod, cfg, init, fuel)
		_, tr := runMain(t, v, args)
		if tr != nil && tr.Kind != mem.TrapFuel {
			t.Fatalf("unexpected trap %v", tr)
		}
		return tr == nil
	}
	lo, hi := int64(1), int64(1<<20)
	if !completes(hi) {
		t.Fatal("program does not complete even with ample fuel")
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if completes(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	minFuel := lo
	t.Logf("baseline minimal fuel: %d", minFuel)

	for _, vr := range []struct {
		name string
		oc   OptConfig
	}{
		{"opt", OptConfig{}},
		{"opt-nofuse", OptConfig{NoFuse: true}},
		{"opt-perinstr", OptConfig{PerInstrFuel: true}},
	} {
		ok := newOptVM(t, mod, cfg, init, minFuel, vr.oc)
		if _, tr := runMain(t, ok, args); tr != nil {
			t.Errorf("%s: trapped at baseline threshold %d: %v", vr.name, minFuel, tr)
		}
		starved := newOptVM(t, mod, cfg, init, minFuel-1, vr.oc)
		if _, tr := runMain(t, starved, args); tr == nil || tr.Kind != mem.TrapFuel {
			t.Errorf("%s: expected fuel trap at %d, got %v", vr.name, minFuel-1, tr)
		}
	}
}

// TestFuelOvershootBoundedByBlock demonstrates and bounds the one permitted
// divergence: a straight-line function that divides by zero mid-block.
// With ample fuel both engines raise the same div-zero trap at the same pc;
// with fuel that reaches the division but not the end of the block, the
// baseline raises div-zero while OptVM reports fuel exhaustion at the block
// boundary — never a wrong result, never a missed preemption.
func TestFuelOvershootBoundedByBlock(t *testing.T) {
	src := `func main(a, b) {
	var x = a + b + 1;
	x = x * 3;
	x = x / b;
	x = x + 7;
	return x;
}`
	mod := compileGEL(t, src)
	code := mod.Funcs[mod.ByName["main"]].Code
	divPC := -1
	for pc, in := range code {
		if in.Op == bytecode.OpDivU {
			divPC = pc
		}
	}
	if divPC < 0 || divPC+2 >= len(code) {
		t.Fatalf("test expects a mid-block division, got divPC=%d len=%d", divPC, len(code))
	}
	cfg := mem.Config{Policy: mem.PolicyChecked}
	args := []uint32{10, 0} // b == 0 -> division by zero

	// Ample fuel: identical trap, identical pc.
	base := newBase(t, mod, cfg, nil, 1<<16)
	_, bt := runMain(t, base, args)
	opt := newOptVM(t, mod, cfg, nil, 1<<16, OptConfig{})
	_, ot := runMain(t, opt, args)
	if bt == nil || ot == nil || bt.Kind != mem.TrapDivZero || ot.Kind != mem.TrapDivZero || bt.PC != ot.PC {
		t.Fatalf("ample fuel: baseline=%v opt=%v", bt, ot)
	}

	// Fuel reaches the division exactly: baseline charges divPC+1
	// instructions and traps div-zero; OptVM charges the whole block on
	// entry and must preempt with a fuel trap instead.
	tight := int64(divPC + 1)
	base = newBase(t, mod, cfg, nil, tight)
	_, bt = runMain(t, base, args)
	if bt == nil || bt.Kind != mem.TrapDivZero {
		t.Fatalf("tight fuel baseline: %v", bt)
	}
	opt = newOptVM(t, mod, cfg, nil, tight, OptConfig{})
	_, ot = runMain(t, opt, args)
	if ot == nil || ot.Kind != mem.TrapFuel {
		t.Fatalf("tight fuel opt: want fuel trap (bounded overshoot), got %v", ot)
	}
}

// TestStackOverflowAgrees: unbounded recursion preempts identically.
func TestStackOverflowAgrees(t *testing.T) {
	src := `func r(n) {
	if (n == 0) { return 0; }
	return r(n - 1) + 1;
}
func main(a, b) { return r(a); }`
	mod := compileGEL(t, src)
	cfg := mem.Config{Policy: mem.PolicyChecked}
	base := newBase(t, mod, cfg, nil, 0)
	opt := newOptVM(t, mod, cfg, nil, 0, OptConfig{})
	for _, g := range []engine{base, opt} {
		if _, tr := runMain(t, g, []uint32{1 << 20, 0}); tr == nil || tr.Kind != mem.TrapStackOverflow {
			t.Fatalf("want stack-overflow trap, got %v", tr)
		}
		if v, tr := runMain(t, g, []uint32{100, 0}); tr != nil || v != 100 {
			t.Fatalf("bounded recursion: v=%d trap=%v", v, tr)
		}
	}
}

// TestDirectFuelConsistency is the regression test for the Direct
// stale-fuel hazard: the budget must be sampled when the closure is
// invoked, not when it is resolved, for both engines.
func TestDirectFuelConsistency(t *testing.T) {
	src := `func main(a, b) {
	var i = 0;
	while (i < 10000) { i = i + 1; }
	return i;
}`
	mod := compileGEL(t, src)
	cfg := mem.Config{Policy: mem.PolicyChecked}
	base := newBase(t, mod, cfg, nil, 0)
	opt := newOptVM(t, mod, cfg, nil, 0, OptConfig{})
	for _, tc := range []struct {
		name string
		g    engine
		set  func(int64)
	}{
		{"baseline", base, func(f int64) { base.Fuel = f }},
		{"opt", opt, func(f int64) { opt.Fuel = f }},
	} {
		var fn func([]uint32) (uint32, error)
		var ok bool
		switch g := tc.g.(type) {
		case *VM:
			fn, ok = g.Direct("main")
		case *OptVM:
			fn, ok = g.Direct("main")
		}
		if !ok {
			t.Fatalf("%s: Direct failed", tc.name)
		}
		args := []uint32{0, 0}
		// Resolved while unmetered: runs to completion.
		if v, err := fn(args); err != nil || v != 10000 {
			t.Fatalf("%s unmetered: v=%d err=%v", tc.name, v, err)
		}
		// Fuel set after resolution must take effect on the next call.
		tc.set(100)
		if _, err := fn(args); err == nil {
			t.Fatalf("%s: starved closure completed; Fuel was sampled at resolve time", tc.name)
		} else if tr, k := err.(*mem.Trap), true; !k || tr.Kind != mem.TrapFuel {
			t.Fatalf("%s: want fuel trap, got %v", tc.name, err)
		}
		// And clearing it must unmeter again.
		tc.set(0)
		if v, err := fn(args); err != nil || v != 10000 {
			t.Fatalf("%s re-unmetered: v=%d err=%v", tc.name, v, err)
		}
	}
}

// TestOptSandboxContainment mirrors the baseline sandbox property for the
// translated engine, covering the fused store opcodes.
func TestOptSandboxContainment(t *testing.T) {
	src := `func main(a, v) { st32(a, v); st8(a + 7, v); return 0; }`
	mod := compileGEL(t, src)
	m := mem.New(1 << 10)
	v, err := NewOpt(mod, m, mem.Config{Policy: mem.PolicySandbox}, OptConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a, val := rng.Uint32(), rng.Uint32()
		if _, err := v.Invoke("main", a, val); err != nil {
			t.Fatalf("sandboxed store trapped: addr=%#x: %v", a, err)
		}
		if got := m.Ld32U(m.SandboxWord(a)); got != val {
			t.Fatalf("store to %#x did not land at masked address", a)
		}
	}
}

// TestTranslatorFusesHotPatterns pins that the fusion pass actually fires
// on the codegen shapes it targets (indexed loads, compare+branch loop
// heads), so a codegen drift that silently defeats fusion fails loudly.
func TestTranslatorFusesHotPatterns(t *testing.T) {
	src := `func main(a, b) {
	var i = 0;
	var s = 0;
	while (i < 8) {
		s = s + ld32(0x1000 + i * 4);
		i = i + 1;
	}
	return s;
}`
	mod := compileGEL(t, src)
	v, err := NewOpt(mod, mem.New(1<<16), mem.Config{Policy: mem.PolicyChecked}, OptConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fn := v.fns[mod.ByName["main"]]
	seen := map[xop]bool{}
	retired := 0
	for _, in := range fn.code {
		seen[in.op] = true
		retired += int(in.n)
	}
	orig := len(mod.Funcs[mod.ByName["main"]].Code)
	if retired != orig {
		t.Fatalf("translated code retires %d originals, function has %d", retired, orig)
	}
	if !seen[xLdCI32U] {
		t.Errorf("indexed constant-base load was not fused; opcodes: %v", seen)
	}
	if !seen[xLCCmpJz] {
		t.Errorf("local/const compare+branch was not fused; opcodes: %v", seen)
	}
	if len(fn.code) >= orig {
		t.Errorf("fusion did not shrink code: %d xinstrs for %d instructions", len(fn.code), orig)
	}
}

// TestOptInvokeNoAllocSteadyState: the frame arena makes hot-path
// invocations allocation-free after warm-up.
func TestOptInvokeNoAllocSteadyState(t *testing.T) {
	src := `func h(p, q) { return p * q + 1; }
func main(a, b) {
	var s = 0;
	var i = 0;
	while (i < 4) { s = s + h(a, i); i = i + 1; }
	return s;
}`
	mod := compileGEL(t, src)
	v, err := NewOpt(mod, mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked}, OptConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := v.Direct("main")
	if !ok {
		t.Fatal("Direct failed")
	}
	args := []uint32{3, 0}
	if _, err := fn(args); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := fn(args); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Invoke allocates %.1f objects per call, want 0", allocs)
	}
}
