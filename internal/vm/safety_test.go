package vm

import (
	"math/rand"
	"testing"

	"graftlab/internal/bytecode"
	"graftlab/internal/compile"
	"graftlab/internal/gel"
	"graftlab/internal/mem"
)

// buildCorpus compiles a few real grafts to use as mutation seeds.
func buildCorpus(t testing.TB) []*bytecode.Module {
	t.Helper()
	sources := []string{
		`func main(a) {
			var sum = 0;
			var i = 0;
			while (i < a % 64) { sum = sum + ld32(i * 4); i = i + 1; }
			return sum;
		}`,
		`func hot(p) {
			var n = ld32(0x100);
			while (n != 0) {
				if (ld32(n) == p) { return 1; }
				n = ld32(n + 4);
			}
			return 0;
		}
		func main(a) { return hot(a); }`,
		`func f(a, b) { return rotl(a, b) ^ rotr(b, a); }
		func main(a) { st32(64, f(a, 3)); return ld32(64); }`,
	}
	var out []*bytecode.Module
	for _, src := range sources {
		prog, err := gel.ParseAndCheck(src)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := compile.Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, mod)
	}
	return out
}

// TestMutatedModulesNeverEscape is the load-time-verification safety
// property: take valid modules, corrupt them randomly, and require that
// every mutant is either rejected by the verifier or, if it passes,
// executes without compromising the host — traps are fine, Go-level
// panics are not.
func TestMutatedModulesNeverEscape(t *testing.T) {
	corpus := buildCorpus(t)
	rng := rand.New(rand.NewSource(99))
	iterations := 3000
	if testing.Short() {
		iterations = 300
	}
	accepted, rejected := 0, 0
	for i := 0; i < iterations; i++ {
		seed := corpus[rng.Intn(len(corpus))]
		bin := bytecode.Encode(seed)
		mut := append([]byte(nil), bin...)
		// 1-4 random byte corruptions.
		for k := 0; k <= rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] = byte(rng.Uint32())
		}
		mod, err := bytecode.Decode(mut)
		if err != nil {
			rejected++
			continue
		}
		if err := bytecode.Verify(mod); err != nil {
			rejected++
			continue
		}
		accepted++
		// The mutant verified: it must run without escaping.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iteration %d: verified mutant panicked the host: %v", i, r)
				}
			}()
			v, err := New(mod, mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
			if err != nil {
				return
			}
			v.Fuel = 1 << 16
			for _, f := range mod.Funcs {
				args := make([]uint32, f.NArgs)
				for j := range args {
					args[j] = rng.Uint32()
				}
				v.Invoke(f.Name, args...) //nolint:errcheck // traps are expected
			}
		}()
	}
	if accepted == 0 {
		t.Log("no mutants survived verification (all corruptions structural)")
	}
	t.Logf("mutants: %d accepted, %d rejected", accepted, rejected)
}

// TestDecodeNeverPanicsOnGarbage: the loader's first line of defense.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(256)
		b := make([]byte, n)
		rng.Read(b)
		if rng.Intn(2) == 0 && n >= 4 {
			copy(b, "GBC1") // make the magic right half the time
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %x: %v", b, r)
				}
			}()
			mod, err := bytecode.Decode(b)
			if err == nil {
				bytecode.Verify(mod) //nolint:errcheck // just must not panic
			}
		}()
	}
}

// TestSandboxContainment: under the sandbox policy, randomly wild store
// addresses must never trap and never corrupt anything outside the
// region — which, since the region is the whole memory, means every
// store lands at addr&mask.
func TestSandboxContainment(t *testing.T) {
	src := `func main(a, v) { st32(a, v); st8(a + 7, v); return 0; }`
	prog, err := gel.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := compile.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 10)
	v, err := New(mod, m, mem.Config{Policy: mem.PolicySandbox})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a, val := rng.Uint32(), rng.Uint32()
		if _, err := v.Invoke("main", a, val); err != nil {
			t.Fatalf("sandboxed store trapped: addr=%#x: %v", a, err)
		}
		if got := m.Ld32U(m.SandboxWord(a)); got != val {
			t.Fatalf("store to %#x did not land at masked address", a)
		}
	}
}
