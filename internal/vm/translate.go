package vm

// The translation pass: verify → decode → fuse → specialize (see opt.go for
// the execution side). translate runs once per function at load time; its
// cost is amortized over every subsequent Invoke, mirroring how eBPF-style
// runtimes verify and translate a program once at load.

import (
	"fmt"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
)

// ldOff selects the policy offset (0=U, 1=N, 2=S) for load opcodes. The
// checked policy without nil checks has the same observable behavior as the
// unsafe backstop (bounds trap with identical kind/addr/pc), so both map to
// the U variant; sandbox loads mask only under ReadProtect, mirroring the
// Omniware beta the paper measured.
func ldOff(cfg mem.Config) xop {
	if cfg.Policy == mem.PolicyChecked && cfg.NilCheck {
		return 1
	}
	if cfg.Policy == mem.PolicySandbox && cfg.ReadProtect {
		return 2
	}
	return 0
}

// stOff selects the policy offset for store opcodes; sandbox stores always
// mask.
func stOff(cfg mem.Config) xop {
	if cfg.Policy == mem.PolicyChecked && cfg.NilCheck {
		return 1
	}
	if cfg.Policy == mem.PolicySandbox {
		return 2
	}
	return 0
}

func isBin(op bytecode.Op) bool { return op >= bytecode.OpAdd && op <= bytecode.OpGeU }
func isCmp(op bytecode.Op) bool { return op >= bytecode.OpEq && op <= bytecode.OpGeU }

// binTraps reports whether a binop can raise a trap of its own (div by
// zero); such ops may only appear as the trap-pc-carrying component of a
// superinstruction.
func binTraps(op bytecode.Op) bool { return op == bytecode.OpDivU || op == bytecode.OpRemU }

// hasTarget reports whether op carries a branch target needing remapping
// from original pc to translated index.
func hasTarget(op xop) bool {
	switch op {
	case xJmp, xJz, xJnz,
		xCmpJz, xCmpJnz, xLCmpJz, xLCmpJnz,
		xLCCmpJz, xLCCmpJnz, xLLCmpJz, xLLCmpJnz,
		xEqzJz, xEqzJnz:
		return true
	}
	return false
}

// translate lowers one verified function. Fusion and fuel assignment both
// rest on the basic-block structure: no superinstruction crosses a block
// boundary, so every leader starts a translated instruction, and the
// block's instruction count is charged on its first translated instruction.
func translate(mod *bytecode.Module, f *bytecode.Func, cfg mem.Config, oc OptConfig) (xfunc, error) {
	leaders := bytecode.Leaders(f)
	costs := bytecode.BlockCosts(f, leaders)
	code := f.Code
	xcode := make([]xinstr, 0, len(code))
	// x4pc maps original pc -> translated index for pcs that begin an
	// xinstr; -1 for pcs swallowed into a superinstruction.
	x4pc := make([]int32, len(code))
	for i := range x4pc {
		x4pc[i] = -1
	}
	for i := 0; i < len(code); {
		var xin xinstr
		n := 0
		if !oc.NoFuse {
			xin, n = fuse(code, i, leaders, cfg)
		}
		if n == 0 {
			xin = lower1(code[i], cfg)
			n = 1
		}
		xin.n = uint8(n)
		// The trapping component of a fused group is its last instruction,
		// except in the BinSet family where a trailing local.set follows
		// the (possibly trapping) binop; the recorded pc is the trap pc.
		xin.pc = int32(i + n - 1)
		switch xin.op {
		case xBinSet, xLBinSet, xCBinSet, xLLBinSet, xLCBinSet,
			xLd32BinU, xLd32BinN, xLd32BinS:
			xin.pc--
		}
		x4pc[i] = int32(len(xcode))
		xcode = append(xcode, xin)
		i += n
	}

	if oc.PerInstrFuel {
		for j := range xcode {
			xcode[j].cost = uint32(xcode[j].n)
		}
	} else {
		for pc, isL := range leaders {
			if !isL {
				continue
			}
			xi := x4pc[pc]
			if xi < 0 {
				return xfunc{}, fmt.Errorf("vm: translate %s: leader %d swallowed by fusion", f.Name, pc)
			}
			xcode[xi].cost = costs[pc]
		}
	}

	for j := range xcode {
		if !hasTarget(xcode[j].op) {
			continue
		}
		t := xcode[j].t
		if t < 0 || int(t) >= len(code) || x4pc[t] < 0 {
			return xfunc{}, fmt.Errorf("vm: translate %s: branch target %d does not start an instruction", f.Name, t)
		}
		xcode[j].t = x4pc[t]
	}

	return xfunc{
		name:     f.Name,
		nargs:    f.NArgs,
		nlocals:  f.NLocals,
		maxStack: bytecode.MaxStack(mod, f),
		code:     xcode,
		lines:    f.Lines,
	}, nil
}

// lower1 translates a single instruction 1:1, specializing memory opcodes
// to the policy.
func lower1(in bytecode.Instr, cfg mem.Config) xinstr {
	switch {
	case in.Op == bytecode.OpLd32:
		return xinstr{op: xLd32U + ldOff(cfg)}
	case in.Op == bytecode.OpLd8:
		return xinstr{op: xLd8U + ldOff(cfg)}
	case in.Op == bytecode.OpSt32:
		return xinstr{op: xSt32U + stOff(cfg)}
	case in.Op == bytecode.OpSt8:
		return xinstr{op: xSt8U + stOff(cfg)}
	case isBin(in.Op):
		return xinstr{op: xBin2, sub: in.Op}
	case in.Op == bytecode.OpJmp, in.Op == bytecode.OpJz, in.Op == bytecode.OpJnz:
		return xinstr{op: xop(in.Op), t: int32(in.A)}
	default:
		return xinstr{op: xop(in.Op), a: in.A}
	}
}

// fuse tries to match a superinstruction starting at code[i]. It returns
// the fused instruction and the number of originals it retires, or n == 0
// when nothing matches. A pattern only fires when all of its interior
// instructions stay inside i's basic block (no interior leaders), so jump
// targets always begin a translated instruction. Patterns are matched
// longest-first at each position.
func fuse(code []bytecode.Instr, i int, leaders []bool, cfg mem.Config) (xinstr, int) {
	in := code[i]
	// within reports whether a pattern of length l fits in the block.
	within := func(l int) bool {
		if i+l > len(code) {
			return false
		}
		for j := i + 1; j < i+l; j++ {
			if leaders[j] {
				return false
			}
		}
		return true
	}
	op := func(k int) bytecode.Op { return code[i+k].Op }
	arg := func(k int) uint32 { return code[i+k].A }
	branchOff := func(o bytecode.Op) xop { // xJz-family selector: +0 for Jz, +1 for Jnz
		if o == bytecode.OpJnz {
			return 1
		}
		return 0
	}

	switch {
	case in.Op == bytecode.OpLocalGet:
		switch {
		// local.get b; local.get i; const s; mul; add; ld32  (indexed load)
		case within(6) && op(1) == bytecode.OpLocalGet && op(2) == bytecode.OpConst &&
			op(3) == bytecode.OpMul && op(4) == bytecode.OpAdd && op(5) == bytecode.OpLd32:
			return xinstr{op: xLdLI32U + ldOff(cfg), a: in.A, b: arg(1), c: arg(2)}, 6
		// local.get; local.get; <binop>; local.set
		case within(4) && op(1) == bytecode.OpLocalGet && isBin(op(2)) && op(3) == bytecode.OpLocalSet:
			return xinstr{op: xLLBinSet, sub: op(2), a: in.A, b: arg(1), c: arg(3)}, 4
		// local.get; const; <binop>; local.set
		case within(4) && op(1) == bytecode.OpConst && isBin(op(2)) && op(3) == bytecode.OpLocalSet:
			return xinstr{op: xLCBinSet, sub: op(2), a: in.A, b: arg(1), c: arg(3)}, 4
		// local.get; <binop>; local.set
		case within(3) && isBin(op(1)) && op(2) == bytecode.OpLocalSet:
			return xinstr{op: xLBinSet, sub: op(1), a: in.A, b: arg(2)}, 3
		// local.get; const; <cmp>; jz/jnz
		case within(4) && op(1) == bytecode.OpConst && isCmp(op(2)) &&
			(op(3) == bytecode.OpJz || op(3) == bytecode.OpJnz):
			return xinstr{op: xLCCmpJz + branchOff(op(3)), sub: op(2), a: in.A, b: arg(1), t: int32(arg(3))}, 4
		// local.get; local.get; <cmp>; jz/jnz
		case within(4) && op(1) == bytecode.OpLocalGet && isCmp(op(2)) &&
			(op(3) == bytecode.OpJz || op(3) == bytecode.OpJnz):
			return xinstr{op: xLLCmpJz + branchOff(op(3)), sub: op(2), a: in.A, b: arg(1), t: int32(arg(3))}, 4
		// local.get; <cmp>; jz/jnz
		case within(3) && isCmp(op(1)) && (op(2) == bytecode.OpJz || op(2) == bytecode.OpJnz):
			return xinstr{op: xLCmpJz + branchOff(op(2)), sub: op(1), a: in.A, t: int32(arg(2))}, 3
		// local.get; local.get; <binop>
		case within(3) && op(1) == bytecode.OpLocalGet && isBin(op(2)):
			return xinstr{op: xLLBin, sub: op(2), a: in.A, b: arg(1)}, 3
		// local.get; const; <binop>
		case within(3) && op(1) == bytecode.OpConst && isBin(op(2)):
			return xinstr{op: xLCBin, sub: op(2), a: in.A, b: arg(1)}, 3
		// local.get; ld32
		case within(2) && op(1) == bytecode.OpLd32:
			return xinstr{op: xLdL32U + ldOff(cfg), a: in.A}, 2
		// local.get; st32 (the local is the stored value)
		case within(2) && op(1) == bytecode.OpSt32:
			return xinstr{op: xStL32U + stOff(cfg), a: in.A}, 2
		// local.get; local.set
		case within(2) && op(1) == bytecode.OpLocalSet:
			return xinstr{op: xMov, a: in.A, b: arg(1)}, 2
		// local.get; <binop>
		case within(2) && isBin(op(1)):
			return xinstr{op: xLBin, sub: op(1), a: in.A}, 2
		// local.get; local.get — pair push, weakest pattern at this position
		case within(2) && op(1) == bytecode.OpLocalGet:
			return xinstr{op: xLLPush, a: in.A, b: arg(1)}, 2
		}

	case in.Op == bytecode.OpConst:
		switch {
		// const k; local.get i; const s; mul; add; ld32  (indexed load)
		case within(6) && op(1) == bytecode.OpLocalGet && op(2) == bytecode.OpConst &&
			op(3) == bytecode.OpMul && op(4) == bytecode.OpAdd && op(5) == bytecode.OpLd32:
			return xinstr{op: xLdCI32U + ldOff(cfg), a: in.A, b: arg(1), c: arg(2)}, 6
		// const; <binop>; local.set
		case within(3) && isBin(op(1)) && op(2) == bytecode.OpLocalSet:
			return xinstr{op: xCBinSet, sub: op(1), a: in.A, b: arg(2)}, 3
		// const; <binop>; <binop> — the "+k*scale" address/arith tails
		case within(3) && isBin(op(1)) && !binTraps(op(1)) && isBin(op(2)):
			return xinstr{op: xCBB, sub: op(1), a: in.A, c: uint32(op(2))}, 3
		// const; ld32
		case within(2) && op(1) == bytecode.OpLd32:
			return xinstr{op: xLdC32U + ldOff(cfg), a: in.A}, 2
		// const; st32 (the constant is the stored value)
		case within(2) && op(1) == bytecode.OpSt32:
			return xinstr{op: xStC32U + stOff(cfg), a: in.A}, 2
		// const; local.set
		case within(2) && op(1) == bytecode.OpLocalSet:
			return xinstr{op: xSetC, a: in.A, b: arg(1)}, 2
		// const; <binop>
		case within(2) && isBin(op(1)):
			return xinstr{op: xCBin, sub: op(1), a: in.A}, 2
		}

	case isBin(in.Op):
		// <cmp>; jz/jnz
		if isCmp(in.Op) && within(2) && (op(1) == bytecode.OpJz || op(1) == bytecode.OpJnz) {
			return xinstr{op: xCmpJz + branchOff(op(1)), sub: in.Op, t: int32(arg(1))}, 2
		}
		// <binop>; local.set
		if within(2) && op(1) == bytecode.OpLocalSet {
			return xinstr{op: xBinSet, sub: in.Op, a: arg(1)}, 2
		}
		// <binop>; ld32 — fused address computation
		if within(2) && op(1) == bytecode.OpLd32 && !binTraps(in.Op) {
			return xinstr{op: xBinLd32U + ldOff(cfg), sub: in.Op}, 2
		}

	case in.Op == bytecode.OpLd32:
		// ld32; <binop> — fused load+use (binop must be non-trapping so
		// the recorded pc, the load's, is the only possible trap pc)
		if within(2) && isBin(op(1)) && !binTraps(op(1)) {
			return xinstr{op: xLd32BinU + ldOff(cfg), sub: op(1)}, 2
		}

	case in.Op == bytecode.OpEqz:
		// eqz; jz == jump-if-nonzero; eqz; jnz == jump-if-zero
		if within(2) && op(1) == bytecode.OpJz {
			return xinstr{op: xEqzJz, t: int32(arg(1))}, 2
		}
		if within(2) && op(1) == bytecode.OpJnz {
			return xinstr{op: xEqzJnz, t: int32(arg(1))}, 2
		}
	}
	return xinstr{}, 0
}
