// The optimizing translator: a load-time pass that lowers verified bytecode
// into a pre-decoded internal form executed by OptVM. It embodies the same
// semantics as the baseline VM (vm.go) — the two are differentially tested
// against each other — but closes part of the interpretation gap the paper
// measured for the VM technology class (Java ≈ 13–113× unsafe C) the way
// modern in-kernel runtimes do: verify once, translate once, then run a
// specialized loop.
//
// Four optimizations, all decided at load time:
//
//  1. Pre-decoded dispatch. Each xinstr carries its operands, branch target
//     (as an index into the translated code), and fuel cost, so the hot loop
//     never re-decodes or re-maps anything.
//
//  2. Superinstruction fusion. The dominant GEL codegen sequences —
//     local/const operand fetches feeding an ALU op, compare+branch pairs,
//     address-computation+load chains — are collapsed into single opcodes
//     that retire 2–6 original instructions per dispatch. Fusion never
//     crosses a basic-block boundary, so every jump target still begins a
//     translated instruction.
//
//  3. Basic-block-granular fuel. Instead of decrementing fuel per
//     instruction, the translator attaches each block's instruction count to
//     the block's first xinstr and the loop charges it once on entry. A
//     block runs to completion once entered (branches and terminators end
//     blocks), so a trace that completes consumes exactly the same fuel as
//     under per-instruction metering: the preemption guarantee of §4 is
//     preserved with the same budget threshold. The only divergence is for
//     traces that trap mid-block: the optimized engine may report fuel
//     exhaustion up to one block early (bounded overshoot), which the
//     differential tests permit.
//
//  4. Policy specialization. The memory policy (checked/nil-check/sandbox/
//     read-protect) is baked into the opcode at translate time — xLd32N vs
//     xLd32S — so the per-access path has no policy branches at all.
//
// Frames live in a per-VM arena (frame reuse): steady-state Invoke performs
// no allocation, which matters on the paper's hot hook paths (262,144
// logical-disk writes, per-eviction hot-list search).
package vm

import (
	"fmt"
	"math/bits"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// xop is an opcode of the translated form. Values below bytecode.NumOps are
// untouched bytecode opcodes executed 1:1; values above are extended
// (policy-specialized or fused) opcodes.
type xop uint16

// Direct aliases for the bytecode opcodes the translator passes through.
const (
	xNop      = xop(bytecode.OpNop)
	xConst    = xop(bytecode.OpConst)
	xLocalGet = xop(bytecode.OpLocalGet)
	xLocalSet = xop(bytecode.OpLocalSet)
	xDrop     = xop(bytecode.OpDrop)
	xEqz      = xop(bytecode.OpEqz)
	xJmp      = xop(bytecode.OpJmp)
	xJz       = xop(bytecode.OpJz)
	xJnz      = xop(bytecode.OpJnz)
	xCall     = xop(bytecode.OpCall)
	xRet      = xop(bytecode.OpRet)
	xMemSize  = xop(bytecode.OpMemSize)
	xAbort    = xop(bytecode.OpAbort)
)

// Extended opcodes. Memory opcodes come in policy triples ordered U, N, S
// (offset 0, 1, 2): U performs the unsafe-policy bounds backstop (which is
// also the observable behavior of the checked policy without nil checks),
// N adds the nil-page trap, S applies the sandbox mask (after which the
// access is in range by construction, so no check remains).
const (
	// xBin2 pops y then x and pushes sub(x, y); sub selects the ALU op.
	xBin2 xop = xop(bytecode.NumOps) + iota

	// Plain policy-specialized memory ops; address from the stack.
	xLd32U
	xLd32N
	xLd32S
	xLd8U
	xLd8N
	xLd8S
	xSt32U
	xSt32N
	xSt32S
	xSt8U
	xSt8N
	xSt8S

	// Fused ALU: operands fetched from locals/immediates in one dispatch.
	xLLBin // push sub(locals[a], locals[b])
	xLCBin // push sub(locals[a], b)
	xLBin  // x = pop; push sub(x, locals[a])
	xCBin  // x = pop; push sub(x, a)

	// Fused compare+branch; sub is the comparison.
	xCmpJz    // y, x = pop, pop; jump if sub(x,y) == 0
	xCmpJnz   // y, x = pop, pop; jump if sub(x,y) != 0
	xLCmpJz   // x = pop; jump if sub(x, locals[a]) == 0
	xLCmpJnz  // x = pop; jump if sub(x, locals[a]) != 0
	xLCCmpJz  // jump if sub(locals[a], b) == 0
	xLCCmpJnz // jump if sub(locals[a], b) != 0
	xLLCmpJz  // jump if sub(locals[a], locals[b]) == 0
	xLLCmpJnz // jump if sub(locals[a], locals[b]) != 0
	xEqzJz    // x = pop; jump if x != 0   (Eqz;Jz == jump-if-nonzero)
	xEqzJnz   // x = pop; jump if x == 0

	// Fused local moves.
	xMov  // locals[b] = locals[a]
	xSetC // locals[b] = a

	// Fused 32-bit loads; address mode in the name, policy triple U/N/S.
	xLdL32U // addr = locals[a]
	xLdL32N
	xLdL32S
	xLdC32U // addr = a
	xLdC32N
	xLdC32S
	xLdCI32U // addr = a + locals[b]*c (indexed: Const base)
	xLdCI32N
	xLdCI32S
	xLdLI32U // addr = locals[a] + locals[b]*c (indexed: local base)
	xLdLI32N
	xLdLI32S

	// Fused 32-bit stores; value in the name, address popped.
	xStL32U // value = locals[a]
	xStL32N
	xStL32S
	xStC32U // value = a
	xStC32N
	xStC32S

	// Fused ALU+assign: <binop>; local.set collapsed into one dispatch.
	// These are the only superinstructions whose trapping component (the
	// binop, for div/rem) is not last; translate records the binop's pc.
	xBinSet   // y, x = pop, pop; locals[a] = sub(x, y)
	xLBinSet  // x = pop; locals[b] = sub(x, locals[a])
	xCBinSet  // x = pop; locals[b] = sub(x, a)
	xLLBinSet // locals[c] = sub(locals[a], locals[b])
	xLCBinSet // locals[c] = sub(locals[a], b)

	// Deeper ALU fusion. Interior ops are restricted to non-trapping
	// binops (no div/rem) so the recorded pc stays the trap pc.
	xCBB // x = pop; push c2(pop, sub(x, a)) — the "+k*scale" tails; c2 in c
	// Fused address-compute loads: <binop>; ld32, policy triple U/N/S.
	xBinLd32U // y, x = pop, pop; push load(sub(x, y))
	xBinLd32N
	xBinLd32S
	// Fused load+use: ld32; <binop> (non-trapping binop; trap pc is the
	// load's, recorded by translate). Policy triple U/N/S.
	xLd32BinU // a = pop; push sub(pop, load(a))
	xLd32BinN
	xLd32BinS

	xLLPush // push locals[a]; push locals[b] — weakest LG pairing
)

// xinstr is one pre-decoded instruction.
type xinstr struct {
	op   xop
	sub  bytecode.Op // ALU/comparison selector for xBin2 and fused ops
	n    uint8       // original instructions this xinstr retires
	cost uint32      // fuel charged when this xinstr begins a basic block
	a    uint32      // immediate: constant, local slot, base, func index
	b    uint32      // immediate: second local slot or constant
	c    uint32      // immediate: index scale for xLd?I32
	t    int32       // branch target (index into translated code)
	pc   int32       // original pc of the LAST retired instruction (trap pc)
}

// xfunc is one translated function.
type xfunc struct {
	name     string
	nargs    int
	nlocals  int
	maxStack int
	code     []xinstr
	lines    []int32 // debug line table of the source Func, indexed by original pc
}

// line resolves an original pc to its 1-based source line (0 when the
// module carries no line table).
func (f *xfunc) line(pc int) int {
	if pc >= 0 && pc < len(f.lines) {
		return int(f.lines[pc])
	}
	return 0
}

// OptConfig selects translator ablations; the zero value is the full
// optimizing configuration.
type OptConfig struct {
	// NoFuse disables superinstruction fusion: every bytecode instruction
	// translates 1:1 (pre-decoding and policy specialization remain).
	NoFuse bool
	// PerInstrFuel charges fuel per retired instruction instead of once
	// per basic block, matching the baseline's metering granularity.
	PerInstrFuel bool
}

// unmeteredFuel is the budget used when Fuel == 0. The loop always meters
// (that keeps it branch-free on the policy), so "unmetered" is modeled as a
// budget no terrestrial workload exhausts.
const unmeteredFuel = int64(1) << 62

// OptVM executes a translated module. It is a drop-in alternative to VM:
// same Invoke/Direct/Memory surface, same trap semantics (differentially
// tested), same Fuel/MaxCallDepth knobs.
//
// Concurrency: like VM, an OptVM is NOT safe for concurrent use — the fuel
// counter, call depth, and frame arena are all per-VM state. Fuel is
// sampled exactly once at the start of each invocation.
type OptVM struct {
	mod *bytecode.Module
	mem *mem.Memory
	fns []xfunc

	// MaxCallDepth bounds recursion; 0 means DefaultMaxCallDepth.
	MaxCallDepth int
	// Fuel is the instruction budget per Invoke; 0 means unmetered. Read
	// once per invocation.
	Fuel int64

	fuel     int64
	depth    int
	arena    []uint32 // frame arena: locals+stack of the active call chain
	arenaTop int

	// Sampling-profiler state (see SetProfile). profEvery == 0 — the
	// default — reduces the hook to one predictable branch per fuel
	// charge, i.e. per basic block.
	prof      *telemetry.ProfScope
	profEvery int64
	profTick  int64
}

// SetProfile attaches a sampling-profiler scope: every `every` executed
// fuel units (≈ retired instructions) record one sample of weight
// `every` against the current function and source line, piggybacking on
// the block-granular fuel charge. A nil scope detaches.
func (v *OptVM) SetProfile(s *telemetry.ProfScope, every int64) {
	if s == nil || every < 1 {
		v.prof, v.profEvery, v.profTick = nil, 0, 0
		return
	}
	v.prof, v.profEvery, v.profTick = s, every, every
}

// NewOpt verifies mod and translates it for execution against m under cfg.
func NewOpt(mod *bytecode.Module, m *mem.Memory, cfg mem.Config, oc OptConfig) (*OptVM, error) {
	if err := bytecode.Verify(mod); err != nil {
		return nil, err
	}
	if m.Faults() != nil {
		// Fault injection schedules traps on individual retired accesses;
		// fused superinstructions collapse several accesses into one
		// opcode, so arming forces plain translation. Load-time decision:
		// an unarmed memory keeps the fused fast path untouched.
		oc.NoFuse = true
	}
	v := &OptVM{mod: mod, mem: m}
	v.fns = make([]xfunc, len(mod.Funcs))
	for i, f := range mod.Funcs {
		xf, err := translate(mod, f, cfg, oc)
		if err != nil {
			return nil, err
		}
		v.fns[i] = xf
	}
	return v, nil
}

// Memory returns the linear memory the VM executes against.
func (v *OptVM) Memory() *mem.Memory { return v.mem }

func (v *OptVM) invoke(idx int, args []uint32) (result uint32, err error) {
	fn := &v.fns[idx]
	if len(args) != fn.nargs {
		return 0, fmt.Errorf("vm: %q takes %d args, got %d", fn.name, fn.nargs, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*mem.Trap); ok {
				err = t
				return
			}
			panic(r)
		}
	}()
	if v.Fuel > 0 {
		v.fuel = v.Fuel
	} else {
		v.fuel = unmeteredFuel
	}
	v.depth = 0
	v.arenaTop = 0
	return v.call(idx, args), nil
}

// Invoke runs the named function with args. A trap is returned as a
// *mem.Trap error; the host survives.
func (v *OptVM) Invoke(entry string, args ...uint32) (uint32, error) {
	idx, ok := v.mod.ByName[entry]
	if !ok {
		return 0, fmt.Errorf("vm: no function %q", entry)
	}
	return v.invoke(idx, args)
}

// Direct returns a pre-resolved entry point. Fuel is sampled when the
// closure is called, not when it is resolved; the closure must not be
// called concurrently with any other invocation on the same VM.
func (v *OptVM) Direct(entry string) (func(args []uint32) (uint32, error), bool) {
	idx, ok := v.mod.ByName[entry]
	if !ok {
		return nil, false
	}
	return func(args []uint32) (uint32, error) {
		return v.invoke(idx, args)
	}, true
}

// FuelUsed reports the fuel consumed by the most recent invocation. The
// optimized engine always meters (against unmeteredFuel when no budget is
// set), so this approximates instructions retired — block-granular, like
// the metering itself — even for unmetered grafts. Must not race a
// running invocation.
func (v *OptVM) FuelUsed() int64 {
	start := v.Fuel
	if start <= 0 {
		start = unmeteredFuel
	}
	used := start - v.fuel
	if v.Fuel > 0 && used > v.Fuel {
		used = v.Fuel // fuel trap leaves the counter below zero
	}
	if used < 0 {
		used = 0
	}
	return used
}

// call allocates the callee's frame from the arena, runs it, and releases
// the frame. Frames are plain bump allocations: callers hold slices into
// the arena, so growing it (a fresh backing array) leaves their regions
// valid in the old array — every frame is only ever touched through the
// slices captured when it was created.
func (v *OptVM) call(idx int, args []uint32) uint32 {
	maxDepth := v.MaxCallDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxCallDepth
	}
	v.depth++
	if v.depth > maxDepth {
		throwAt(mem.TrapStackOverflow, 0, 0)
	}
	fn := &v.fns[idx]
	base := v.arenaTop
	need := fn.nlocals + fn.maxStack
	if base+need > len(v.arena) {
		grown := make([]uint32, base+need+256)
		copy(grown, v.arena)
		v.arena = grown
	}
	frame := v.arena[base : base+need]
	locals := frame[:fn.nlocals:fn.nlocals]
	n := copy(locals, args)
	for j := n; j < len(locals); j++ {
		locals[j] = 0
	}
	v.arenaTop = base + need
	r := v.exec(fn, locals, frame[fn.nlocals:])
	v.arenaTop = base
	v.depth--
	return r
}

func (v *OptVM) exec(fn *xfunc, locals, stack []uint32) uint32 {
	code := fn.code
	data := v.mem.Data
	mask := v.mem.Mask()
	faults := v.mem.Faults()
	pc := 0
	sp := 0
	for {
		in := &code[pc]
		if in.cost != 0 {
			v.fuel -= int64(in.cost)
			if v.fuel < 0 {
				throwAt(mem.TrapFuel, 0, int(in.pc))
			}
			if v.profEvery != 0 {
				v.profTick -= int64(in.cost)
				if v.profTick <= 0 {
					v.profTick += v.profEvery
					v.prof.Hit(fn.name, fn.line(int(in.pc)), v.profEvery)
				}
			}
		}
		switch in.op {
		case xNop:
		case xConst:
			stack[sp] = in.a
			sp++
		case xLocalGet:
			stack[sp] = locals[in.a]
			sp++
		case xLocalSet:
			sp--
			locals[in.a] = stack[sp]
		case xDrop:
			sp--
		case xEqz:
			stack[sp-1] = b2u(stack[sp-1] == 0)
		case xBin2:
			y := stack[sp-1]
			sp--
			stack[sp-1] = binEval(in.sub, stack[sp-1], y, in.pc)
		case xJmp:
			pc = int(in.t)
			continue
		case xJz:
			sp--
			if stack[sp] == 0 {
				pc = int(in.t)
				continue
			}
		case xJnz:
			sp--
			if stack[sp] != 0 {
				pc = int(in.t)
				continue
			}
		case xCall:
			na := v.fns[in.a].nargs
			sp -= na
			stack[sp] = v.call(int(in.a), stack[sp:sp+na])
			sp++
		case xRet:
			return stack[sp-1]
		case xMemSize:
			stack[sp] = uint32(len(data))
			sp++
		case xAbort:
			panic(&mem.Trap{Kind: mem.TrapAbort, Code: stack[sp-1], PC: int(in.pc)})

		case xLd32U:
			a := stack[sp-1]
			if faults != nil {
				faultCheck(faults, false, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp-1] = ldw(data, a)
		case xLd32N:
			a := stack[sp-1]
			if faults != nil {
				faultCheck(faults, false, a, int(in.pc))
			}
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp-1] = ldw(data, a)
		case xLd32S:
			a := stack[sp-1]
			if faults != nil {
				faultCheck(faults, false, a, int(in.pc))
			}
			stack[sp-1] = ldw(data, a&mask&^3)
		case xLd8U:
			a := stack[sp-1]
			if faults != nil {
				faultCheck(faults, false, a, int(in.pc))
			}
			if a >= uint32(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp-1] = uint32(data[a])
		case xLd8N:
			a := stack[sp-1]
			if faults != nil {
				faultCheck(faults, false, a, int(in.pc))
			}
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if a >= uint32(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp-1] = uint32(data[a])
		case xLd8S:
			a := stack[sp-1]
			if faults != nil {
				faultCheck(faults, false, a, int(in.pc))
			}
			stack[sp-1] = uint32(data[a&mask])
		case xSt32U:
			val := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			if faults != nil {
				faultCheck(faults, true, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBStore, a, int(in.pc))
			}
			stw(data, a, val)
		case xSt32N:
			val := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			if faults != nil {
				faultCheck(faults, true, a, int(in.pc))
			}
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBStore, a, int(in.pc))
			}
			stw(data, a, val)
		case xSt32S:
			val := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			if faults != nil {
				faultCheck(faults, true, a, int(in.pc))
			}
			stw(data, a&mask&^3, val)
		case xSt8U:
			val := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			if faults != nil {
				faultCheck(faults, true, a, int(in.pc))
			}
			if a >= uint32(len(data)) {
				throwAt(mem.TrapOOBStore, a, int(in.pc))
			}
			data[a] = byte(val)
		case xSt8N:
			val := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			if faults != nil {
				faultCheck(faults, true, a, int(in.pc))
			}
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if a >= uint32(len(data)) {
				throwAt(mem.TrapOOBStore, a, int(in.pc))
			}
			data[a] = byte(val)
		case xSt8S:
			val := stack[sp-1]
			a := stack[sp-2]
			sp -= 2
			if faults != nil {
				faultCheck(faults, true, a, int(in.pc))
			}
			data[a&mask] = byte(val)

		case xLLBin:
			stack[sp] = binEval(in.sub, locals[in.a], locals[in.b], in.pc)
			sp++
		case xLCBin:
			stack[sp] = binEval(in.sub, locals[in.a], in.b, in.pc)
			sp++
		case xLBin:
			stack[sp-1] = binEval(in.sub, stack[sp-1], locals[in.a], in.pc)
		case xCBin:
			stack[sp-1] = binEval(in.sub, stack[sp-1], in.a, in.pc)

		case xCmpJz:
			y := stack[sp-1]
			x := stack[sp-2]
			sp -= 2
			if binEval(in.sub, x, y, in.pc) == 0 {
				pc = int(in.t)
				continue
			}
		case xCmpJnz:
			y := stack[sp-1]
			x := stack[sp-2]
			sp -= 2
			if binEval(in.sub, x, y, in.pc) != 0 {
				pc = int(in.t)
				continue
			}
		case xLCmpJz:
			sp--
			if binEval(in.sub, stack[sp], locals[in.a], in.pc) == 0 {
				pc = int(in.t)
				continue
			}
		case xLCmpJnz:
			sp--
			if binEval(in.sub, stack[sp], locals[in.a], in.pc) != 0 {
				pc = int(in.t)
				continue
			}
		case xLCCmpJz:
			if binEval(in.sub, locals[in.a], in.b, in.pc) == 0 {
				pc = int(in.t)
				continue
			}
		case xLCCmpJnz:
			if binEval(in.sub, locals[in.a], in.b, in.pc) != 0 {
				pc = int(in.t)
				continue
			}
		case xLLCmpJz:
			if binEval(in.sub, locals[in.a], locals[in.b], in.pc) == 0 {
				pc = int(in.t)
				continue
			}
		case xLLCmpJnz:
			if binEval(in.sub, locals[in.a], locals[in.b], in.pc) != 0 {
				pc = int(in.t)
				continue
			}
		case xEqzJz:
			sp--
			if stack[sp] != 0 {
				pc = int(in.t)
				continue
			}
		case xEqzJnz:
			sp--
			if stack[sp] == 0 {
				pc = int(in.t)
				continue
			}

		case xMov:
			locals[in.b] = locals[in.a]
		case xSetC:
			locals[in.b] = in.a

		case xBinSet:
			y := stack[sp-1]
			x := stack[sp-2]
			sp -= 2
			locals[in.a] = binEval(in.sub, x, y, in.pc)
		case xLBinSet:
			sp--
			locals[in.b] = binEval(in.sub, stack[sp], locals[in.a], in.pc)
		case xCBinSet:
			sp--
			locals[in.b] = binEval(in.sub, stack[sp], in.a, in.pc)
		case xLLBinSet:
			locals[in.c] = binEval(in.sub, locals[in.a], locals[in.b], in.pc)
		case xLCBinSet:
			locals[in.c] = binEval(in.sub, locals[in.a], in.b, in.pc)

		case xCBB:
			x := stack[sp-1]
			sp--
			stack[sp-1] = binEval(bytecode.Op(in.c), stack[sp-1], binEval(in.sub, x, in.a, in.pc), in.pc)
		case xBinLd32U:
			y := stack[sp-1]
			sp--
			a := binEval(in.sub, stack[sp-1], y, in.pc)
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp-1] = ldw(data, a)
		case xBinLd32N:
			y := stack[sp-1]
			sp--
			a := binEval(in.sub, stack[sp-1], y, in.pc)
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp-1] = ldw(data, a)
		case xBinLd32S:
			y := stack[sp-1]
			sp--
			stack[sp-1] = ldw(data, binEval(in.sub, stack[sp-1], y, in.pc)&mask&^3)
		case xLd32BinU:
			a := stack[sp-1]
			sp--
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp-1] = binEval(in.sub, stack[sp-1], ldw(data, a), in.pc)
		case xLd32BinN:
			a := stack[sp-1]
			sp--
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp-1] = binEval(in.sub, stack[sp-1], ldw(data, a), in.pc)
		case xLd32BinS:
			a := stack[sp-1]
			sp--
			stack[sp-1] = binEval(in.sub, stack[sp-1], ldw(data, a&mask&^3), in.pc)

		case xLLPush:
			stack[sp] = locals[in.a]
			stack[sp+1] = locals[in.b]
			sp += 2

		case xLdL32U:
			a := locals[in.a]
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp] = ldw(data, a)
			sp++
		case xLdL32N:
			a := locals[in.a]
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp] = ldw(data, a)
			sp++
		case xLdL32S:
			stack[sp] = ldw(data, locals[in.a]&mask&^3)
			sp++
		case xLdC32U:
			a := in.a
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp] = ldw(data, a)
			sp++
		case xLdC32N:
			a := in.a
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp] = ldw(data, a)
			sp++
		case xLdC32S:
			stack[sp] = ldw(data, in.a&mask&^3)
			sp++
		case xLdCI32U:
			a := in.a + locals[in.b]*in.c
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp] = ldw(data, a)
			sp++
		case xLdCI32N:
			a := in.a + locals[in.b]*in.c
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp] = ldw(data, a)
			sp++
		case xLdCI32S:
			stack[sp] = ldw(data, (in.a+locals[in.b]*in.c)&mask&^3)
			sp++
		case xLdLI32U:
			a := locals[in.a] + locals[in.b]*in.c
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp] = ldw(data, a)
			sp++
		case xLdLI32N:
			a := locals[in.a] + locals[in.b]*in.c
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, int(in.pc))
			}
			stack[sp] = ldw(data, a)
			sp++
		case xLdLI32S:
			stack[sp] = ldw(data, (locals[in.a]+locals[in.b]*in.c)&mask&^3)
			sp++

		case xStL32U:
			sp--
			a := stack[sp]
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBStore, a, int(in.pc))
			}
			stw(data, a, locals[in.a])
		case xStL32N:
			sp--
			a := stack[sp]
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBStore, a, int(in.pc))
			}
			stw(data, a, locals[in.a])
		case xStL32S:
			sp--
			stw(data, stack[sp]&mask&^3, locals[in.a])
		case xStC32U:
			sp--
			a := stack[sp]
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBStore, a, int(in.pc))
			}
			stw(data, a, in.a)
		case xStC32N:
			sp--
			a := stack[sp]
			if a < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, a, int(in.pc))
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBStore, a, int(in.pc))
			}
			stw(data, a, in.a)
		case xStC32S:
			sp--
			stw(data, stack[sp]&mask&^3, in.a)

		default:
			throwAt(mem.TrapUnreachable, 0, int(in.pc))
		}
		pc++
	}
}

// ldw/stw are the little-endian word accessors; the Go compiler recognizes
// the idiom and emits single loads/stores.
func ldw(data []byte, a uint32) uint32 {
	d := data[a : a+4 : a+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

func stw(data []byte, a, val uint32) {
	d := data[a : a+4 : a+4]
	d[0] = byte(val)
	d[1] = byte(val >> 8)
	d[2] = byte(val >> 16)
	d[3] = byte(val >> 24)
}

// binEval evaluates the binary ALU/comparison op selected by sub; pc is the
// original program counter reported if the op traps (division by zero).
func binEval(sub bytecode.Op, x, y uint32, pc int32) uint32 {
	switch sub {
	case bytecode.OpAdd:
		return x + y
	case bytecode.OpSub:
		return x - y
	case bytecode.OpMul:
		return x * y
	case bytecode.OpDivU:
		if y == 0 {
			throwAt(mem.TrapDivZero, 0, int(pc))
		}
		return x / y
	case bytecode.OpRemU:
		if y == 0 {
			throwAt(mem.TrapDivZero, 0, int(pc))
		}
		return x % y
	case bytecode.OpAnd:
		return x & y
	case bytecode.OpOr:
		return x | y
	case bytecode.OpXor:
		return x ^ y
	case bytecode.OpShl:
		return x << (y & 31)
	case bytecode.OpShrU:
		return x >> (y & 31)
	case bytecode.OpRotl:
		return bits.RotateLeft32(x, int(y&31))
	case bytecode.OpRotr:
		return bits.RotateLeft32(x, -int(y&31))
	case bytecode.OpMinU:
		if y < x {
			return y
		}
		return x
	case bytecode.OpMaxU:
		if y > x {
			return y
		}
		return x
	case bytecode.OpEq:
		return b2u(x == y)
	case bytecode.OpNe:
		return b2u(x != y)
	case bytecode.OpLtU:
		return b2u(x < y)
	case bytecode.OpLeU:
		return b2u(x <= y)
	case bytecode.OpGtU:
		return b2u(x > y)
	case bytecode.OpGeU:
		return b2u(x >= y)
	}
	throwAt(mem.TrapUnreachable, 0, int(pc))
	return 0
}
