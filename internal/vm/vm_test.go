package vm

import (
	"errors"
	"testing"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
)

func newVM(t *testing.T, fns ...*bytecode.Func) *VM {
	t.Helper()
	m := &bytecode.Module{Funcs: fns}
	m.Index()
	v, err := New(m, mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewRejectsUnverifiable(t *testing.T) {
	m := &bytecode.Module{Funcs: []*bytecode.Func{{
		Name: "bad", Code: []bytecode.Instr{{Op: bytecode.OpAdd}, {Op: bytecode.OpRet}},
	}}}
	m.Index()
	if _, err := New(m, mem.New(1<<12), mem.Config{}); err == nil {
		t.Fatal("unverifiable module accepted")
	}
}

func TestALUOps(t *testing.T) {
	bin := func(op bytecode.Op) *bytecode.Func {
		return &bytecode.Func{Name: "f", NArgs: 2, NLocals: 2, Code: []bytecode.Instr{
			{Op: bytecode.OpLocalGet, A: 0},
			{Op: bytecode.OpLocalGet, A: 1},
			{Op: op},
			{Op: bytecode.OpRet},
		}}
	}
	cases := []struct {
		op   bytecode.Op
		x, y uint32
		want uint32
	}{
		{bytecode.OpAdd, 0xFFFFFFFF, 2, 1},
		{bytecode.OpSub, 1, 2, 0xFFFFFFFF},
		{bytecode.OpMul, 0x10000, 0x10000, 0},
		{bytecode.OpDivU, 7, 2, 3},
		{bytecode.OpRemU, 7, 2, 1},
		{bytecode.OpAnd, 0xF0F0, 0x0FF0, 0x00F0},
		{bytecode.OpOr, 0xF000, 0x000F, 0xF00F},
		{bytecode.OpXor, 0xFF00, 0x0FF0, 0xF0F0},
		{bytecode.OpShl, 1, 33, 2}, // shift count masked to 5 bits
		{bytecode.OpShrU, 0x80000000, 31, 1},
		{bytecode.OpRotl, 0x80000001, 1, 3},
		{bytecode.OpRotr, 3, 1, 0x80000001},
		{bytecode.OpMinU, 5, 0xFFFFFFFF, 5},
		{bytecode.OpMaxU, 5, 0xFFFFFFFF, 0xFFFFFFFF},
		{bytecode.OpEq, 4, 4, 1},
		{bytecode.OpNe, 4, 4, 0},
		{bytecode.OpLtU, 0xFFFFFFFF, 1, 0}, // unsigned comparison
		{bytecode.OpLeU, 3, 3, 1},
		{bytecode.OpGtU, 0xFFFFFFFF, 1, 1},
		{bytecode.OpGeU, 2, 3, 0},
	}
	for _, c := range cases {
		v := newVM(t, bin(c.op))
		got, err := v.Invoke("f", c.x, c.y)
		if err != nil {
			t.Errorf("%s: %v", c.op, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestDivRemByZeroTrap(t *testing.T) {
	for _, op := range []bytecode.Op{bytecode.OpDivU, bytecode.OpRemU} {
		v := newVM(t, &bytecode.Func{Name: "f", NArgs: 2, NLocals: 2, Code: []bytecode.Instr{
			{Op: bytecode.OpLocalGet, A: 0},
			{Op: bytecode.OpLocalGet, A: 1},
			{Op: op},
			{Op: bytecode.OpRet},
		}})
		_, err := v.Invoke("f", 1, 0)
		var trap *mem.Trap
		if !errors.As(err, &trap) || trap.Kind != mem.TrapDivZero {
			t.Errorf("%s: err = %v", op, err)
		}
	}
}

func TestCallChain(t *testing.T) {
	// f0 = caller, f1 doubles, f2 adds three.
	caller := &bytecode.Func{Name: "main", NArgs: 1, NLocals: 1, Code: []bytecode.Instr{
		{Op: bytecode.OpLocalGet, A: 0},
		{Op: bytecode.OpCall, A: 1},
		{Op: bytecode.OpCall, A: 2},
		{Op: bytecode.OpRet},
	}}
	double := &bytecode.Func{Name: "double", NArgs: 1, NLocals: 1, Code: []bytecode.Instr{
		{Op: bytecode.OpLocalGet, A: 0},
		{Op: bytecode.OpConst, A: 2},
		{Op: bytecode.OpMul},
		{Op: bytecode.OpRet},
	}}
	add3 := &bytecode.Func{Name: "add3", NArgs: 1, NLocals: 1, Code: []bytecode.Instr{
		{Op: bytecode.OpLocalGet, A: 0},
		{Op: bytecode.OpConst, A: 3},
		{Op: bytecode.OpAdd},
		{Op: bytecode.OpRet},
	}}
	v := newVM(t, caller, double, add3)
	got, err := v.Invoke("main", 10)
	if err != nil || got != 23 {
		t.Fatalf("main(10) = %d, %v", got, err)
	}
}

func TestEqzAndJumps(t *testing.T) {
	// abs-style function: returns 1 if arg==0 else arg.
	f := &bytecode.Func{Name: "f", NArgs: 1, NLocals: 1, Code: []bytecode.Instr{
		{Op: bytecode.OpLocalGet, A: 0},
		{Op: bytecode.OpEqz},
		{Op: bytecode.OpJz, A: 5},
		{Op: bytecode.OpConst, A: 1},
		{Op: bytecode.OpRet},
		{Op: bytecode.OpLocalGet, A: 0},
		{Op: bytecode.OpRet},
	}}
	v := newVM(t, f)
	if got, _ := v.Invoke("f", 0); got != 1 {
		t.Errorf("f(0) = %d", got)
	}
	if got, _ := v.Invoke("f", 9); got != 9 {
		t.Errorf("f(9) = %d", got)
	}
}

func TestMemSizeAndMemOps(t *testing.T) {
	f := &bytecode.Func{Name: "f", NArgs: 0, NLocals: 0, Code: []bytecode.Instr{
		{Op: bytecode.OpConst, A: 64},
		{Op: bytecode.OpConst, A: 0xABCD},
		{Op: bytecode.OpSt32},
		{Op: bytecode.OpConst, A: 64},
		{Op: bytecode.OpLd32},
		{Op: bytecode.OpMemSize},
		{Op: bytecode.OpAdd},
		{Op: bytecode.OpRet},
	}}
	v := newVM(t, f)
	got, err := v.Invoke("f")
	if err != nil || got != 0xABCD+4096 {
		t.Fatalf("f() = %#x, %v", got, err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	spin := &bytecode.Func{Name: "spin", NArgs: 0, NLocals: 0, Code: []bytecode.Instr{
		{Op: bytecode.OpJmp, A: 0},
	}}
	m := &bytecode.Module{Funcs: []*bytecode.Func{spin}}
	m.Index()
	v, err := New(m, mem.New(1<<12), mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v.Fuel = 1000
	_, err = v.Invoke("spin")
	var trap *mem.Trap
	if !errors.As(err, &trap) || trap.Kind != mem.TrapFuel {
		t.Fatalf("err = %v", err)
	}
	// Unmetered VM with a terminating loop still works afterwards.
	v.Fuel = 0
	done := &bytecode.Func{Name: "done", Code: []bytecode.Instr{
		{Op: bytecode.OpConst, A: 1}, {Op: bytecode.OpRet},
	}}
	m2 := &bytecode.Module{Funcs: []*bytecode.Func{done}}
	m2.Index()
	v2, err := New(m2, mem.New(1<<12), mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := v2.Invoke("done"); err != nil || got != 1 {
		t.Fatalf("done = %d, %v", got, err)
	}
}

func TestInvokeValidation(t *testing.T) {
	v := newVM(t, &bytecode.Func{Name: "f", NArgs: 1, NLocals: 1, Code: []bytecode.Instr{
		{Op: bytecode.OpLocalGet, A: 0}, {Op: bytecode.OpRet},
	}})
	if _, err := v.Invoke("g"); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := v.Invoke("f"); err == nil {
		t.Error("wrong arity accepted")
	}
	if v.Memory() == nil {
		t.Error("Memory() nil")
	}
}

func TestDropAndNop(t *testing.T) {
	f := &bytecode.Func{Name: "f", Code: []bytecode.Instr{
		{Op: bytecode.OpNop},
		{Op: bytecode.OpConst, A: 9},
		{Op: bytecode.OpConst, A: 1},
		{Op: bytecode.OpDrop},
		{Op: bytecode.OpRet},
	}}
	v := newVM(t, f)
	if got, err := v.Invoke("f"); err != nil || got != 9 {
		t.Fatalf("f = %d, %v", got, err)
	}
}
