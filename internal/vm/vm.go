// Package vm is the bytecode interpreter: the paper's "in-kernel virtual
// machine" technology class (Java Alpha 3 in the original study). It
// executes verified bytecode modules with a fetch-decode-execute loop,
// applies a memory protection policy on every load and store, and meters
// fuel so a runaway graft is preempted rather than monopolizing the host —
// the paper's requirement that "we must be able to preempt an extension
// that runs too long" (§4).
package vm

import (
	"fmt"
	"math/bits"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
)

// DefaultMaxCallDepth bounds graft recursion.
const DefaultMaxCallDepth = 256

// VM executes one loaded module against one linear memory. A VM is not
// safe for concurrent use; grafts are invoked from one kernel context at a
// time, matching how a kernel serializes calls at a single hook point.
type VM struct {
	mod *bytecode.Module
	mem *mem.Memory
	cfg mem.Config

	// maxStack[i] is the operand stack requirement of function i.
	maxStack []int

	// MaxCallDepth bounds recursion; 0 means DefaultMaxCallDepth.
	MaxCallDepth int
	// Fuel is the instruction budget per Invoke; 0 means unmetered.
	Fuel int64

	fuel  int64
	depth int
}

// New verifies mod and prepares a VM over m with the given policy.
func New(mod *bytecode.Module, m *mem.Memory, cfg mem.Config) (*VM, error) {
	if err := bytecode.Verify(mod); err != nil {
		return nil, err
	}
	v := &VM{mod: mod, mem: m, cfg: cfg}
	v.maxStack = make([]int, len(mod.Funcs))
	for i, f := range mod.Funcs {
		v.maxStack[i] = bytecode.MaxStack(mod, f)
	}
	return v, nil
}

// Memory returns the linear memory the VM executes against.
func (v *VM) Memory() *mem.Memory { return v.mem }

// Invoke runs the named function with args. A trap is returned as a
// *mem.Trap error; the host survives.
func (v *VM) Invoke(entry string, args ...uint32) (result uint32, err error) {
	idx, ok := v.mod.ByName[entry]
	if !ok {
		return 0, fmt.Errorf("vm: no function %q", entry)
	}
	f := v.mod.Funcs[idx]
	if len(args) != f.NArgs {
		return 0, fmt.Errorf("vm: %q takes %d args, got %d", entry, f.NArgs, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*mem.Trap); ok {
				err = t
				return
			}
			panic(r)
		}
	}()
	v.fuel = v.Fuel
	v.depth = 0
	return v.call(idx, args), nil
}

// Direct returns a pre-resolved entry point (the tech.DirectCaller fast
// path). The interpreter loop dominates, but skipping the per-call map
// lookup keeps hot hook points uniform across technologies.
func (v *VM) Direct(entry string) (func(args []uint32) (uint32, error), bool) {
	idx, ok := v.mod.ByName[entry]
	if !ok {
		return nil, false
	}
	f := v.mod.Funcs[idx]
	return func(args []uint32) (result uint32, err error) {
		if len(args) != f.NArgs {
			return 0, fmt.Errorf("vm: %q takes %d args, got %d", entry, f.NArgs, len(args))
		}
		defer func() {
			if r := recover(); r != nil {
				if t, ok := r.(*mem.Trap); ok {
					err = t
					return
				}
				panic(r)
			}
		}()
		v.fuel = v.Fuel
		v.depth = 0
		return v.call(idx, args), nil
	}, true
}

func (v *VM) call(idx int, args []uint32) uint32 {
	maxDepth := v.MaxCallDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxCallDepth
	}
	v.depth++
	if v.depth > maxDepth {
		mem.Throw(mem.TrapStackOverflow, 0)
	}
	defer func() { v.depth-- }()

	f := v.mod.Funcs[idx]
	locals := make([]uint32, f.NLocals)
	copy(locals, args)
	stack := make([]uint32, 0, v.maxStack[idx])

	code := f.Code
	m := v.mem
	data := m.Data
	checked := v.cfg.Policy == mem.PolicyChecked
	nilCheck := checked && v.cfg.NilCheck
	sandbox := v.cfg.Policy == mem.PolicySandbox
	readProtect := sandbox && v.cfg.ReadProtect
	mask := m.Mask()
	metered := v.Fuel > 0

	pc := 0
	for {
		if metered {
			v.fuel--
			if v.fuel < 0 {
				mem.Throw(mem.TrapFuel, 0)
			}
		}
		in := code[pc]
		switch in.Op {
		case bytecode.OpNop:
		case bytecode.OpConst:
			stack = append(stack, in.A)
		case bytecode.OpLocalGet:
			stack = append(stack, locals[in.A])
		case bytecode.OpLocalSet:
			locals[in.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case bytecode.OpDrop:
			stack = stack[:len(stack)-1]
		case bytecode.OpAdd:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] += y
		case bytecode.OpSub:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] -= y
		case bytecode.OpMul:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] *= y
		case bytecode.OpDivU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if y == 0 {
				mem.Throw(mem.TrapDivZero, 0)
			}
			stack[len(stack)-1] /= y
		case bytecode.OpRemU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if y == 0 {
				mem.Throw(mem.TrapDivZero, 0)
			}
			stack[len(stack)-1] %= y
		case bytecode.OpAnd:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] &= y
		case bytecode.OpOr:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] |= y
		case bytecode.OpXor:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] ^= y
		case bytecode.OpShl:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] <<= y & 31
		case bytecode.OpShrU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] >>= y & 31
		case bytecode.OpRotl:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = bits.RotateLeft32(stack[len(stack)-1], int(y&31))
		case bytecode.OpRotr:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = bits.RotateLeft32(stack[len(stack)-1], -int(y&31))
		case bytecode.OpMinU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if y < stack[len(stack)-1] {
				stack[len(stack)-1] = y
			}
		case bytecode.OpMaxU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if y > stack[len(stack)-1] {
				stack[len(stack)-1] = y
			}
		case bytecode.OpEq:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] == y)
		case bytecode.OpNe:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] != y)
		case bytecode.OpLtU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] < y)
		case bytecode.OpLeU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] <= y)
		case bytecode.OpGtU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] > y)
		case bytecode.OpGeU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] >= y)
		case bytecode.OpEqz:
			stack[len(stack)-1] = b2u(stack[len(stack)-1] == 0)
		case bytecode.OpLd32:
			a := stack[len(stack)-1]
			if checked {
				v.mem.CheckLoad(a, 4, nilCheck)
			} else if readProtect {
				a = a & mask &^ 3
			}
			if uint64(a)+4 > uint64(len(data)) {
				mem.Throw(mem.TrapOOBLoad, a) // unsafe-policy backstop: models the crash
			}
			stack[len(stack)-1] = uint32(data[a]) | uint32(data[a+1])<<8 |
				uint32(data[a+2])<<16 | uint32(data[a+3])<<24
		case bytecode.OpLd8:
			a := stack[len(stack)-1]
			if checked {
				v.mem.CheckLoad(a, 1, nilCheck)
			} else if readProtect {
				a &= mask
			}
			if a >= uint32(len(data)) {
				mem.Throw(mem.TrapOOBLoad, a)
			}
			stack[len(stack)-1] = uint32(data[a])
		case bytecode.OpSt32:
			val := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if checked {
				v.mem.CheckStore(a, 4, nilCheck)
			} else if sandbox {
				a = a & mask &^ 3
			}
			if uint64(a)+4 > uint64(len(data)) {
				mem.Throw(mem.TrapOOBStore, a)
			}
			data[a] = byte(val)
			data[a+1] = byte(val >> 8)
			data[a+2] = byte(val >> 16)
			data[a+3] = byte(val >> 24)
		case bytecode.OpSt8:
			val := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if checked {
				v.mem.CheckStore(a, 1, nilCheck)
			} else if sandbox {
				a &= mask
			}
			if a >= uint32(len(data)) {
				mem.Throw(mem.TrapOOBStore, a)
			}
			data[a] = byte(val)
		case bytecode.OpJmp:
			pc = int(in.A)
			continue
		case bytecode.OpJz:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c == 0 {
				pc = int(in.A)
				continue
			}
		case bytecode.OpJnz:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c != 0 {
				pc = int(in.A)
				continue
			}
		case bytecode.OpCall:
			callee := v.mod.Funcs[in.A]
			nargs := callee.NArgs
			res := v.call(int(in.A), stack[len(stack)-nargs:])
			stack = stack[:len(stack)-nargs]
			stack = append(stack, res)
		case bytecode.OpRet:
			return stack[len(stack)-1]
		case bytecode.OpMemSize:
			stack = append(stack, uint32(len(data)))
		case bytecode.OpAbort:
			code := stack[len(stack)-1]
			panic(&mem.Trap{Kind: mem.TrapAbort, Code: code})
		default:
			mem.Throw(mem.TrapUnreachable, 0)
		}
		pc++
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
