// Package vm is the bytecode interpreter: the paper's "in-kernel virtual
// machine" technology class (Java Alpha 3 in the original study). It
// executes verified bytecode modules with a fetch-decode-execute loop,
// applies a memory protection policy on every load and store, and meters
// fuel so a runaway graft is preempted rather than monopolizing the host —
// the paper's requirement that "we must be able to preempt an extension
// that runs too long" (§4).
//
// Two engines share the package: VM is the naive switch-dispatch reference
// interpreter below, and OptVM (opt.go) is a load-time optimizing
// translator over the same semantics. The two are differentially tested
// against each other (diff_test.go); VM is the semantic baseline and stays
// deliberately simple.
package vm

import (
	"fmt"
	"math/bits"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// DefaultMaxCallDepth bounds graft recursion.
const DefaultMaxCallDepth = 256

// throwAt raises a trap that records the faulting bytecode pc. Both
// engines funnel their traps through here so differential tests can
// compare trap program counters, not just kinds.
func throwAt(kind mem.TrapKind, addr uint32, pc int) {
	panic(&mem.Trap{Kind: kind, Addr: addr, PC: pc})
}

// faultCheck consults an armed fault plan for one memory access and
// throws the injected trap, stamped with the bytecode pc, when the
// access index hits the schedule.
func faultCheck(f *mem.FaultPlan, store bool, addr uint32, pc int) {
	if t := f.Check(store, addr); t != nil {
		t.PC = pc
		panic(t)
	}
}

// VM executes one loaded module against one linear memory.
//
// Concurrency: a VM is NOT safe for concurrent use. Invoke, Direct
// closures, and the Fuel/MaxCallDepth fields all share the fuel counter
// and call-depth state; grafts are invoked from one kernel context at a
// time, matching how a kernel serializes calls at a single hook point.
// Callers that want parallelism must create one VM (and one Memory) per
// context. Fuel is sampled exactly once at the start of each invocation —
// mutating v.Fuel mid-invocation (e.g. from another goroutine) is a data
// race and has no defined effect on the running graft.
type VM struct {
	mod *bytecode.Module
	mem *mem.Memory
	cfg mem.Config

	// maxStack[i] is the operand stack requirement of function i.
	maxStack []int

	// MaxCallDepth bounds recursion; 0 means DefaultMaxCallDepth.
	MaxCallDepth int
	// Fuel is the instruction budget per Invoke; 0 means unmetered. It is
	// read once per invocation (Invoke or a Direct closure call), so
	// adjusting it between invocations takes effect on the next call.
	Fuel int64

	fuel    int64
	metered bool
	depth   int

	// Sampling-profiler state (see OptVM.SetProfile). The baseline VM
	// meters per instruction, so the countdown ticks per instruction;
	// unlike fuel it runs even when no budget is set.
	prof      *telemetry.ProfScope
	profEvery int64
	profTick  int64
}

// SetProfile attaches a sampling-profiler scope: every `every` retired
// instructions record one sample of weight `every` against the current
// function and source line. A nil scope detaches.
func (v *VM) SetProfile(s *telemetry.ProfScope, every int64) {
	if s == nil || every < 1 {
		v.prof, v.profEvery, v.profTick = nil, 0, 0
		return
	}
	v.prof, v.profEvery, v.profTick = s, every, every
}

// New verifies mod and prepares a VM over m with the given policy.
func New(mod *bytecode.Module, m *mem.Memory, cfg mem.Config) (*VM, error) {
	if err := bytecode.Verify(mod); err != nil {
		return nil, err
	}
	v := &VM{mod: mod, mem: m, cfg: cfg}
	v.maxStack = make([]int, len(mod.Funcs))
	for i, f := range mod.Funcs {
		v.maxStack[i] = bytecode.MaxStack(mod, f)
	}
	return v, nil
}

// Memory returns the linear memory the VM executes against.
func (v *VM) Memory() *mem.Memory { return v.mem }

// invoke is the single entry path shared by Invoke and Direct closures,
// so fuel metering is decided in exactly one place per invocation.
func (v *VM) invoke(idx int, args []uint32) (result uint32, err error) {
	f := v.mod.Funcs[idx]
	if len(args) != f.NArgs {
		return 0, fmt.Errorf("vm: %q takes %d args, got %d", f.Name, f.NArgs, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*mem.Trap); ok {
				err = t
				return
			}
			panic(r)
		}
	}()
	v.fuel = v.Fuel
	v.metered = v.Fuel > 0
	v.depth = 0
	return v.call(idx, args), nil
}

// Invoke runs the named function with args. A trap is returned as a
// *mem.Trap error; the host survives.
func (v *VM) Invoke(entry string, args ...uint32) (uint32, error) {
	idx, ok := v.mod.ByName[entry]
	if !ok {
		return 0, fmt.Errorf("vm: no function %q", entry)
	}
	return v.invoke(idx, args)
}

// Direct returns a pre-resolved entry point (the tech.DirectCaller fast
// path). The interpreter loop dominates, but skipping the per-call map
// lookup keeps hot hook points uniform across technologies.
//
// The closure shares all VM state, including Fuel: the budget is sampled
// when the closure is called, not when it is resolved, so a Direct handle
// obtained while the VM was unmetered meters correctly once Fuel is set
// (and vice versa). Like Invoke, the closure must not be called
// concurrently with itself or any other invocation on the same VM.
func (v *VM) Direct(entry string) (func(args []uint32) (uint32, error), bool) {
	idx, ok := v.mod.ByName[entry]
	if !ok {
		return nil, false
	}
	return func(args []uint32) (uint32, error) {
		return v.invoke(idx, args)
	}, true
}

// FuelUsed reports the fuel consumed by the most recent invocation
// (0 when unmetered — the baseline interpreter only decrements fuel when
// a budget is set). Telemetry reads it after each invocation; like every
// other VM accessor it must not race a running invocation.
func (v *VM) FuelUsed() int64 {
	if !v.metered {
		return 0
	}
	used := v.Fuel - v.fuel
	if used > v.Fuel {
		used = v.Fuel // fuel trap leaves the counter at -1
	}
	if used < 0 {
		used = 0
	}
	return used
}

func (v *VM) call(idx int, args []uint32) uint32 {
	maxDepth := v.MaxCallDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxCallDepth
	}
	v.depth++
	if v.depth > maxDepth {
		throwAt(mem.TrapStackOverflow, 0, 0)
	}
	defer func() { v.depth-- }()

	f := v.mod.Funcs[idx]
	locals := make([]uint32, f.NLocals)
	copy(locals, args)
	stack := make([]uint32, 0, v.maxStack[idx])

	code := f.Code
	data := v.mem.Data
	checked := v.cfg.Policy == mem.PolicyChecked
	nilCheck := checked && v.cfg.NilCheck
	sandbox := v.cfg.Policy == mem.PolicySandbox
	readProtect := sandbox && v.cfg.ReadProtect
	mask := v.mem.Mask()
	metered := v.metered
	faults := v.mem.Faults()

	pc := 0
	for {
		if metered {
			v.fuel--
			if v.fuel < 0 {
				throwAt(mem.TrapFuel, 0, pc)
			}
		}
		if v.profEvery != 0 {
			v.profTick--
			if v.profTick <= 0 {
				v.profTick += v.profEvery
				v.prof.Hit(f.Name, f.Line(pc), v.profEvery)
			}
		}
		in := code[pc]
		switch in.Op {
		case bytecode.OpNop:
		case bytecode.OpConst:
			stack = append(stack, in.A)
		case bytecode.OpLocalGet:
			stack = append(stack, locals[in.A])
		case bytecode.OpLocalSet:
			locals[in.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case bytecode.OpDrop:
			stack = stack[:len(stack)-1]
		case bytecode.OpAdd:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] += y
		case bytecode.OpSub:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] -= y
		case bytecode.OpMul:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] *= y
		case bytecode.OpDivU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if y == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			stack[len(stack)-1] /= y
		case bytecode.OpRemU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if y == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			stack[len(stack)-1] %= y
		case bytecode.OpAnd:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] &= y
		case bytecode.OpOr:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] |= y
		case bytecode.OpXor:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] ^= y
		case bytecode.OpShl:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] <<= y & 31
		case bytecode.OpShrU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] >>= y & 31
		case bytecode.OpRotl:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = bits.RotateLeft32(stack[len(stack)-1], int(y&31))
		case bytecode.OpRotr:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = bits.RotateLeft32(stack[len(stack)-1], -int(y&31))
		case bytecode.OpMinU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if y < stack[len(stack)-1] {
				stack[len(stack)-1] = y
			}
		case bytecode.OpMaxU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if y > stack[len(stack)-1] {
				stack[len(stack)-1] = y
			}
		case bytecode.OpEq:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] == y)
		case bytecode.OpNe:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] != y)
		case bytecode.OpLtU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] < y)
		case bytecode.OpLeU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] <= y)
		case bytecode.OpGtU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] > y)
		case bytecode.OpGeU:
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2u(stack[len(stack)-1] >= y)
		case bytecode.OpEqz:
			stack[len(stack)-1] = b2u(stack[len(stack)-1] == 0)
		case bytecode.OpLd32:
			a := stack[len(stack)-1]
			if faults != nil {
				faultCheck(faults, false, a, pc)
			}
			if checked {
				if nilCheck && a < mem.NilPageSize {
					throwAt(mem.TrapNilDeref, a, pc)
				}
				if uint64(a)+4 > uint64(len(data)) {
					throwAt(mem.TrapOOBLoad, a, pc)
				}
			} else if readProtect {
				a = a & mask &^ 3
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBLoad, a, pc) // unsafe-policy backstop: models the crash
			}
			stack[len(stack)-1] = uint32(data[a]) | uint32(data[a+1])<<8 |
				uint32(data[a+2])<<16 | uint32(data[a+3])<<24
		case bytecode.OpLd8:
			a := stack[len(stack)-1]
			if faults != nil {
				faultCheck(faults, false, a, pc)
			}
			if checked {
				if nilCheck && a < mem.NilPageSize {
					throwAt(mem.TrapNilDeref, a, pc)
				}
				if a >= uint32(len(data)) {
					throwAt(mem.TrapOOBLoad, a, pc)
				}
			} else if readProtect {
				a &= mask
			}
			if a >= uint32(len(data)) {
				throwAt(mem.TrapOOBLoad, a, pc)
			}
			stack[len(stack)-1] = uint32(data[a])
		case bytecode.OpSt32:
			val := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if faults != nil {
				faultCheck(faults, true, a, pc)
			}
			if checked {
				if nilCheck && a < mem.NilPageSize {
					throwAt(mem.TrapNilDeref, a, pc)
				}
				if uint64(a)+4 > uint64(len(data)) {
					throwAt(mem.TrapOOBStore, a, pc)
				}
			} else if sandbox {
				a = a & mask &^ 3
			}
			if uint64(a)+4 > uint64(len(data)) {
				throwAt(mem.TrapOOBStore, a, pc)
			}
			data[a] = byte(val)
			data[a+1] = byte(val >> 8)
			data[a+2] = byte(val >> 16)
			data[a+3] = byte(val >> 24)
		case bytecode.OpSt8:
			val := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			if faults != nil {
				faultCheck(faults, true, a, pc)
			}
			if checked {
				if nilCheck && a < mem.NilPageSize {
					throwAt(mem.TrapNilDeref, a, pc)
				}
				if a >= uint32(len(data)) {
					throwAt(mem.TrapOOBStore, a, pc)
				}
			} else if sandbox {
				a &= mask
			}
			if a >= uint32(len(data)) {
				throwAt(mem.TrapOOBStore, a, pc)
			}
			data[a] = byte(val)
		case bytecode.OpJmp:
			pc = int(in.A)
			continue
		case bytecode.OpJz:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c == 0 {
				pc = int(in.A)
				continue
			}
		case bytecode.OpJnz:
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if c != 0 {
				pc = int(in.A)
				continue
			}
		case bytecode.OpCall:
			callee := v.mod.Funcs[in.A]
			nargs := callee.NArgs
			res := v.call(int(in.A), stack[len(stack)-nargs:])
			stack = stack[:len(stack)-nargs]
			stack = append(stack, res)
		case bytecode.OpRet:
			return stack[len(stack)-1]
		case bytecode.OpMemSize:
			stack = append(stack, uint32(len(data)))
		case bytecode.OpAbort:
			code := stack[len(stack)-1]
			panic(&mem.Trap{Kind: mem.TrapAbort, Code: code, PC: pc})
		default:
			throwAt(mem.TrapUnreachable, 0, pc)
		}
		pc++
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
