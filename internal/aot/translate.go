package aot

import (
	"fmt"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
)

// The translator: one pass over each basic block that dissolves the
// operand stack into expression trees and emits the block's closure.
//
// Symbolic stack. Each stack position holds one of three kinds of
// entry: a constant known at translate time, a register reference
// (a local slot, or the position's own canonical spill slot), or a
// pending expression tree — a closure built from the specialized
// constructors in emitbin/emitmem that will compute the value when
// called. Trees defer work so that `local.get x; const 1; add;
// local.set x` becomes a single statement instead of four dispatches.
//
// Registers. A frame is NLocals locals followed by one canonical spill
// slot per stack position (slot for position i is NLocals+i). Canonical
// slots carry stack values across block boundaries and across
// materialization events; slot i is only ever written when position i
// materializes, so a surviving reference to it is never stale.
//
// Materialization events. Deferral is sound only while nothing the
// pending trees depend on can change and no effect can be reordered
// around them, so pending trees are flushed (bottom-up: push order,
// which is original bytecode order) at every point that could violate
// that:
//
//   - St32/St8 and Call flush all pending trees: trees may contain
//     loads that must observe memory before the store/callee writes it,
//     and may trap, which must happen before the store/callee's trap.
//   - LocalSet additionally flushes plain local references: the write
//     would invalidate them.
//   - Drop of a trapping tree flushes earlier pending trees, then
//     evaluates the dropped tree for its trap.
//   - Ret/Abort evaluate (and discard) only the trapping pendings —
//     the frame is dead, but a trap that would have fired must fire.
//   - Block ends (Jmp/Jz/Jnz/fallthrough) flush everything into
//     canonical slots, since successor blocks address stack values by
//     position.
//
// Between events every deferred operation is pure (registers and
// constants) or moves only forward in time to a point where its inputs
// are provably unchanged, so results, traps, memory contents, and the
// fault plan's access order are exactly the interpreter's.
//
// Armed fault plans force eager mode: every instruction's tree is
// flushed immediately, making effect order per-instruction so the
// plan's access counter sees the same sequence the interpreters
// produce.

type kind uint8

const (
	kConst kind = iota
	kReg
	kExpr
)

// sval is one symbolic-stack entry.
type sval struct {
	k     kind
	c     uint32 // kConst
	reg   int    // kReg: frame register index
	e     exprFn // kExpr
	traps bool   // kExpr: tree contains an op that can trap
	// Comparison provenance, kept so conditional branches can
	// re-specialize from the operands (see condTerm).
	isCmp  bool
	cop    bytecode.Op
	cx, cy *sval
}

// tr is the per-function translation state; stk/stmts reset per block.
type tr struct {
	p        *Prog
	mod      *bytecode.Module
	f        *bytecode.Func
	data     []byte
	dlen     uint64
	memSize  uint32
	nilCheck bool
	faults   *mem.FaultPlan
	eager    bool
	acc      map[int]ival // per-access address intervals; nil = prove nothing
	nlocals  int
	stk      []sval
	stmts    []stmtFn
}

func (t *tr) canon(i int) int { return t.nlocals + i }

func (t *tr) push(v sval) { t.stk = append(t.stk, v) }

func (t *tr) pop() sval {
	v := t.stk[len(t.stk)-1]
	t.stk = t.stk[:len(t.stk)-1]
	return v
}

// spillAt materializes position i into its canonical slot.
func (t *tr) spillAt(i int) {
	v := t.stk[i]
	dst := t.canon(i)
	if v.k == kReg && v.reg == dst {
		return
	}
	t.stmts = append(t.stmts, assign(dst, v))
	t.stk[i] = sval{k: kReg, reg: dst}
}

// spillExprsBelow flushes pending trees at positions below the top n
// entries (bottom-up: original order).
func (t *tr) spillExprsBelow(n int) {
	for i := 0; i < len(t.stk)-n; i++ {
		if t.stk[i].k == kExpr {
			t.spillAt(i)
		}
	}
}

// spillExprs flushes every pending tree.
func (t *tr) spillExprs() { t.spillExprsBelow(0) }

// spillForLocalSet flushes, below the value being set, pending trees
// (they may read the written local) and plain local references (the
// write would invalidate them).
func (t *tr) spillForLocalSet() {
	for i := 0; i < len(t.stk)-1; i++ {
		if t.stk[i].k == kExpr || (t.stk[i].k == kReg && t.stk[i].reg < t.nlocals) {
			t.spillAt(i)
		}
	}
}

// spillBoundary materializes the whole stack into canonical slots for a
// block transition.
func (t *tr) spillBoundary() {
	for i := range t.stk {
		t.spillAt(i)
	}
}

func trapExpr(kind mem.TrapKind, pc int) exprFn {
	return func(r []uint32) uint32 { throwAt(kind, 0, pc); return 0 }
}

func isCmpOp(op bytecode.Op) bool {
	switch op {
	case bytecode.OpEq, bytecode.OpNe, bytecode.OpLtU, bytecode.OpLeU,
		bytecode.OpGtU, bytecode.OpGeU:
		return true
	}
	return false
}

// binop builds the tree for a binary ALU/comparison instruction.
func (t *tr) binop(op bytecode.Op, pc int) {
	y := t.pop()
	x := t.pop()
	trapping := op == bytecode.OpDivU || op == bytecode.OpRemU
	if x.k == kConst && y.k == kConst {
		if trapping && y.c == 0 {
			t.push(sval{k: kExpr, e: trapExpr(mem.TrapDivZero, pc), traps: true})
			return
		}
		t.push(sval{k: kConst, c: foldBin(op, x.c, y.c)})
		return
	}
	var e exprFn
	switch {
	case x.k == kReg && y.k == kReg:
		e = binRR(op, x.reg, y.reg, pc)
	case x.k == kReg && y.k == kConst:
		e = binRC(op, x.reg, y.c, pc)
	case x.k == kExpr && y.k == kConst:
		e = binEC(op, x.e, y.c, pc)
	case x.k == kExpr && y.k == kReg:
		e = binER(op, x.e, y.reg, pc)
	case x.k == kReg && y.k == kExpr:
		e = binRE(op, x.reg, y.e, pc)
	case x.k == kConst && y.k == kReg:
		e = binER(op, t.toExpr(x), y.reg, pc)
	case x.k == kConst && y.k == kExpr:
		e = binEE(op, t.toExpr(x), y.e, pc)
	default:
		e = binEE(op, x.e, y.e, pc)
	}
	nv := sval{
		k: kExpr, e: e,
		traps: x.traps || y.traps || (trapping && !(y.k == kConst && y.c != 0)),
	}
	if isCmpOp(op) {
		xcp, ycp := x, y
		nv.isCmp, nv.cop, nv.cx, nv.cy = true, op, &xcp, &ycp
	}
	t.push(nv)
}

// eqz builds the logical-not tree, preserving comparison provenance so
// `eqz; jz` still specializes as a compare-and-branch.
func (t *tr) eqz() {
	v := t.pop()
	switch {
	case v.k == kConst:
		t.push(sval{k: kConst, c: b2u(v.c == 0)})
	case v.isCmp:
		t.push(sval{
			k: kExpr, e: eqzE(v.e), traps: v.traps,
			isCmp: true, cop: negateCmp(v.cop), cx: v.cx, cy: v.cy,
		})
	case v.k == kReg:
		cp, zero := v, sval{k: kConst}
		t.push(sval{
			k: kExpr, e: eqzR(v.reg),
			isCmp: true, cop: bytecode.OpEq, cx: &cp, cy: &zero,
		})
	default:
		cp, zero := v, sval{k: kConst}
		t.push(sval{
			k: kExpr, e: eqzE(v.e), traps: v.traps,
			isCmp: true, cop: bytecode.OpEq, cx: &cp, cy: &zero,
		})
	}
}

// callStmt lowers a call: flush pendings below the arguments, evaluate
// the arguments in push order into a per-site scratch buffer, and let
// Prog.call run the callee. The scratch is reentrancy-safe: the callee
// copies it into its own frame before any recursion re-enters this
// closure.
func (t *tr) callStmt(in bytecode.Instr) {
	callee := t.mod.Funcs[in.A]
	na := callee.NArgs
	t.spillExprsBelow(na)
	args := make([]sval, na)
	for i := na - 1; i >= 0; i-- {
		args[i] = t.pop()
	}
	dst := t.canon(len(t.stk))
	idx := int(in.A)
	p := t.p
	switch na {
	case 0:
		t.stmts = append(t.stmts, func(r []uint32) { r[dst] = p.call(idx, nil) })
	case 1:
		a0 := t.toExpr(args[0])
		sc := make([]uint32, 1)
		t.stmts = append(t.stmts, func(r []uint32) {
			sc[0] = a0(r)
			r[dst] = p.call(idx, sc)
		})
	case 2:
		a0, a1 := t.toExpr(args[0]), t.toExpr(args[1])
		sc := make([]uint32, 2)
		t.stmts = append(t.stmts, func(r []uint32) {
			sc[0] = a0(r)
			sc[1] = a1(r)
			r[dst] = p.call(idx, sc)
		})
	default:
		afns := make([]exprFn, na)
		for i, a := range args {
			afns[i] = t.toExpr(a)
		}
		sc := make([]uint32, na)
		t.stmts = append(t.stmts, func(r []uint32) {
			for k, fn := range afns {
				sc[k] = fn(r)
			}
			r[dst] = p.call(idx, sc)
		})
	}
	t.push(sval{k: kReg, reg: dst})
}

// translateFunc lowers one verified function into its block closures.
func translateFunc(p *Prog, mod *bytecode.Module, f *bytecode.Func, m *mem.Memory, cfg mem.Config) (afunc, error) {
	depths, err := bytecode.StackDepths(mod, f)
	if err != nil {
		// Unreachable after Verify — StackDepths IS the verifier's pass —
		// but kept as a real error so the taxonomies can never drift.
		return afunc{}, err
	}
	leaders := bytecode.Leaders(f)
	costs := bytecode.BlockCosts(f, leaders)

	t := &tr{
		p:        p,
		mod:      mod,
		f:        f,
		data:     m.Data,
		dlen:     uint64(len(m.Data)),
		memSize:  uint32(len(m.Data)),
		nilCheck: cfg.Policy == mem.PolicyChecked && cfg.NilCheck,
		faults:   m.Faults(),
		nlocals:  f.NLocals,
	}
	t.eager = t.faults != nil
	if !t.eager {
		_, t.acc = analyzeFunc(mod, f, depths, leaders, t.memSize)
	}

	blockIdx := make([]int32, len(f.Code))
	nblocks := 0
	for pc, isLeader := range leaders {
		if isLeader {
			blockIdx[pc] = int32(nblocks)
			nblocks++
		}
	}

	af := afunc{
		name:   f.Name,
		nargs:  f.NArgs,
		nregs:  f.NLocals + bytecode.MaxStack(mod, f),
		blocks: make([]blockFn, nblocks),
	}

	for lpc, isLeader := range leaders {
		if !isLeader {
			continue
		}
		bi := blockIdx[lpc]
		if depths[lpc] == -1 {
			// Unreachable block: verified code never enters it, but the
			// slot must hold something defensible.
			lpc := lpc
			af.blocks[bi] = func(r []uint32) int32 {
				throwAt(mem.TrapUnreachable, 0, lpc)
				return -1
			}
			continue
		}
		bm := &blockMeta{
			cost: int64(costs[lpc]),
			pc:   int32(lpc),
			name: f.Name,
			line: f.Line(lpc),
		}
		term, err := t.translateBlock(lpc, depths[lpc], leaders, blockIdx)
		if err != nil {
			return afunc{}, err
		}
		af.blocks[bi] = makeBlock(p, bm, t.stmts, term)
	}
	return af, nil
}

// translateBlock walks one basic block, filling t.stmts and returning
// the terminator.
func (t *tr) translateBlock(leader, depth0 int, leaders []bool, blockIdx []int32) (func([]uint32) int32, error) {
	t.stmts = nil
	t.stk = t.stk[:0]
	for i := 0; i < depth0; i++ {
		t.push(sval{k: kReg, reg: t.canon(i)})
	}
	f := t.f
	for pc := leader; ; pc++ {
		if pc != leader && leaders[pc] {
			// Fall through into the next block.
			t.spillBoundary()
			return staticTerm(blockIdx[pc]), nil
		}
		in := f.Code[pc]
		switch in.Op {
		case bytecode.OpNop:
		case bytecode.OpConst:
			t.push(sval{k: kConst, c: in.A})
		case bytecode.OpLocalGet:
			t.push(sval{k: kReg, reg: int(in.A)})
		case bytecode.OpLocalSet:
			t.spillForLocalSet()
			v := t.pop()
			t.stmts = append(t.stmts, assign(int(in.A), v))
		case bytecode.OpDrop:
			v := t.pop()
			if v.k == kExpr && v.traps {
				t.spillExprs()
				t.stmts = append(t.stmts, evalDiscard(v.e))
			}
		case bytecode.OpEqz:
			t.eqz()
		case bytecode.OpMemSize:
			t.push(sval{k: kConst, c: t.memSize})
		case bytecode.OpLd32:
			a := t.pop()
			t.push(t.ld32(a, pc))
		case bytecode.OpLd8:
			a := t.pop()
			t.push(t.ld8(a, pc))
		case bytecode.OpSt32:
			t.spillExprsBelow(2)
			v := t.pop()
			a := t.pop()
			t.stmts = append(t.stmts, t.st32(a, v, pc))
		case bytecode.OpSt8:
			t.spillExprsBelow(2)
			v := t.pop()
			a := t.pop()
			t.stmts = append(t.stmts, t.st8(a, v, pc))
		case bytecode.OpCall:
			t.callStmt(in)
		case bytecode.OpJmp:
			t.spillBoundary()
			return staticTerm(blockIdx[in.A]), nil
		case bytecode.OpJz, bytecode.OpJnz:
			cond := t.pop()
			t.spillBoundary()
			needTrue := in.Op == bytecode.OpJnz
			taken, fall := blockIdx[in.A], blockIdx[pc+1]
			if cond.k == kConst {
				if (cond.c != 0) == needTrue {
					return staticTerm(taken), nil
				}
				return staticTerm(fall), nil
			}
			return t.condTerm(cond, needTrue, taken, fall), nil
		case bytecode.OpRet:
			v := t.pop()
			for i := range t.stk {
				if t.stk[i].k == kExpr && t.stk[i].traps {
					t.stmts = append(t.stmts, evalDiscard(t.stk[i].e))
				}
			}
			return retTerm(t.p, v), nil
		case bytecode.OpAbort:
			v := t.pop()
			for i := range t.stk {
				if t.stk[i].k == kExpr && t.stk[i].traps {
					t.stmts = append(t.stmts, evalDiscard(t.stk[i].e))
				}
			}
			return abortTerm(v, pc), nil
		default:
			if !isBinOp(in.Op) {
				return nil, fmt.Errorf("aot: %s+%d: untranslatable opcode %s", f.Name, pc, in.Op)
			}
			t.binop(in.Op, pc)
		}
		if t.eager {
			t.spillExprs()
		}
	}
}

func isBinOp(op bytecode.Op) bool {
	return op >= bytecode.OpAdd && op <= bytecode.OpGeU
}
