package aot

// Differential tests: vm.OptVM is the semantic reference (itself pinned
// against the baseline interpreter in internal/vm). The AOT class must
// agree on results, trap identity (kind, pc, addr, code), memory side
// effects, fault-plan access ordering, and fuel accounting. Because both
// engines charge fuel per basic block from the same Leaders/BlockCosts
// CFG, agreement is exact — including FuelUsed and the completion
// threshold — with one cosmetic exception: on a fuel trap the optimizing
// VM reports the pc of its first fused group's trap slot while this
// engine reports the block leader; both pcs lie in the same block.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"graftlab/internal/bytecode"
	"graftlab/internal/compile"
	"graftlab/internal/gel"
	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
	"graftlab/internal/vm"
)

const testMemSize = 1 << 16

// aotPolicies are the configurations the class supports; PolicySandbox is
// rejected at construction (TestSandboxRejected).
var aotPolicies = []struct {
	name string
	cfg  mem.Config
}{
	{"unsafe", mem.Config{Policy: mem.PolicyUnsafe}},
	{"checked", mem.Config{Policy: mem.PolicyChecked}},
	{"checked-nil", mem.Config{Policy: mem.PolicyChecked, NilCheck: true}},
}

func compileGEL(t testing.TB, src string) *bytecode.Module {
	t.Helper()
	prog, err := gel.ParseAndCheck(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	mod, err := compile.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	return mod
}

func newProg(t testing.TB, mod *bytecode.Module, cfg mem.Config, init []byte, fuel int64) *Prog {
	t.Helper()
	m := mem.New(testMemSize)
	copy(m.Data, init)
	p, err := New(mod, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Fuel = fuel
	return p
}

func newRef(t testing.TB, mod *bytecode.Module, cfg mem.Config, init []byte, fuel int64) *vm.OptVM {
	t.Helper()
	m := mem.New(testMemSize)
	copy(m.Data, init)
	v, err := vm.NewOpt(mod, m, cfg, vm.OptConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v.Fuel = fuel
	return v
}

type engine interface {
	Invoke(entry string, args ...uint32) (uint32, error)
	Memory() *mem.Memory
	FuelUsed() int64
}

func runMain(t testing.TB, g engine, args []uint32) (uint32, *mem.Trap) {
	t.Helper()
	v, err := g.Invoke("main", args...)
	if err == nil {
		return v, nil
	}
	tr, ok := err.(*mem.Trap)
	if !ok {
		t.Fatalf("non-trap error: %v", err)
	}
	return 0, tr
}

// checkSameAsRef asserts exact agreement between the AOT run and the
// reference run: value or full trap identity, memory bytes (both engines
// charge fuel at block entry, so even fuel traps leave identical
// memories), and FuelUsed.
func checkSameAsRef(t *testing.T, label, src string,
	rv uint32, rt *mem.Trap, rmem []byte, rfuel int64,
	av uint32, at *mem.Trap, amem []byte, afuel int64) {
	t.Helper()
	fail := func(format string, a ...any) {
		t.Helper()
		t.Fatalf("%s: %s\nref trap=%v aot trap=%v\n%s", label, fmt.Sprintf(format, a...), rt, at, src)
	}
	switch {
	case rt == nil && at == nil:
		if rv != av {
			fail("value: ref=%d aot=%d", rv, av)
		}
	case rt == nil:
		fail("aot trapped where ref completed (value %d)", rv)
	case at == nil:
		fail("aot completed (value %d) where ref trapped", av)
	case rt.Kind == mem.TrapFuel || at.Kind == mem.TrapFuel:
		// Identical block-granular budgets: both must exhaust together.
		// The pcs differ cosmetically (fused-group trap slot vs block
		// leader) but identify the same block, so only kinds compare.
		if rt.Kind != at.Kind {
			fail("fuel divergence")
		}
	default:
		if rt.Kind != at.Kind || rt.PC != at.PC || rt.Addr != at.Addr || rt.Code != at.Code {
			fail("trap mismatch")
		}
	}
	if string(rmem) != string(amem) {
		fail("memory diverges")
	}
	if rfuel != afuel {
		fail("FuelUsed: ref=%d aot=%d", rfuel, afuel)
	}
}

// TestAOTAgreesWithOptVMOnRandomPrograms is the main differential
// property: random GEL programs with wild addresses, division, helper
// calls, and nested control flow, under every supported policy, with
// both ample and scarce fuel.
func TestAOTAgreesWithOptVMOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(1931))
	n := 400
	if testing.Short() {
		n = 60
	}
	for i := 0; i < n; i++ {
		src := randomAOTProgram(rng)
		mod := compileGEL(t, src)
		args := []uint32{rng.Uint32(), rng.Uint32() % 97}
		fuel := int64(1 << 16)
		if i%3 == 1 {
			fuel = int64(rng.Intn(300)) + 1
		}
		init := make([]byte, testMemSize)
		rng.Read(init)
		for _, pol := range aotPolicies {
			ref := newRef(t, mod, pol.cfg, init, fuel)
			rv, rt := runMain(t, ref, args)
			p := newProg(t, mod, pol.cfg, init, fuel)
			av, at := runMain(t, p, args)
			label := fmt.Sprintf("program %d policy %s fuel %d args %v", i, pol.name, fuel, args)
			checkSameAsRef(t, label, src,
				rv, rt, ref.Memory().Data, ref.FuelUsed(),
				av, at, p.Memory().Data, p.FuelUsed())
		}
	}
}

// randomAOTProgram generates GEL exercising both sides of the verifier:
// provable accesses (modulo-bounded addresses the interval analysis can
// discharge) and wild ones (forced fallback), plus the full operator set.
func randomAOTProgram(rng *rand.Rand) string {
	hg := &progGen{rng: rng, vars: []string{"p", "q"}, leaf: true}
	g := &progGen{rng: rng, vars: []string{"x", "y", "z", "a", "b"}}
	return fmt.Sprintf(`func h(p, q) {
	return %s;
}
func main(a, b) {
	var x = a;
	var y = b;
	var z = 5;
%s	return x ^ y - z;
}`, hg.expr(2), g.stmts(4, 2))
}

type progGen struct {
	rng  *rand.Rand
	vars []string
	leaf bool
}

func (g *progGen) stmts(n, depth int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(g.stmt(depth))
	}
	return sb.String()
}

func (g *progGen) addr() string {
	switch g.rng.Intn(4) {
	case 0:
		return g.expr(1) // wild: may be OOB or in the nil page
	case 1:
		// provable shape: bounded index, constant scale and base
		return fmt.Sprintf("((%s) %% 1000) * 4 + 8192", g.expr(1))
	default:
		return fmt.Sprintf("((%s) %% 16000) * 4", g.expr(1))
	}
}

func (g *progGen) stmt(depth int) string {
	vars := []string{"x", "y", "z"}
	v := vars[g.rng.Intn(len(vars))]
	switch r := g.rng.Intn(12); {
	case r < 4:
		return fmt.Sprintf("\t%s = %s;\n", v, g.expr(depth))
	case r < 6 && depth > 0:
		return fmt.Sprintf("\tif (%s) {\n%s\t} else {\n%s\t}\n",
			g.expr(depth-1), g.stmts(2, depth-1), g.stmts(1, depth-1))
	case r < 7 && depth > 0:
		return fmt.Sprintf("\t{ var i = 0; while (i < %d) { i = i + 1;\n%s\t} }\n",
			g.rng.Intn(9)+1, g.stmts(1, depth-1))
	case r < 9:
		return fmt.Sprintf("\tst32(%s, %s);\n", g.addr(), g.expr(depth))
	case r < 10:
		return fmt.Sprintf("\tst8(%s, %s);\n", g.addr(), g.expr(depth))
	case r < 11:
		return fmt.Sprintf("\t%s = ld8(%s);\n", v, g.addr())
	default:
		return fmt.Sprintf("\t%s = ld32(%s);\n", v, g.addr())
	}
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(3) == 0 {
			return fmt.Sprintf("%d", g.rng.Uint32()>>uint(g.rng.Intn(32)))
		}
		return g.vars[g.rng.Intn(len(g.vars))]
	}
	switch g.rng.Intn(8) {
	case 0:
		if g.leaf {
			return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
		}
		return fmt.Sprintf("h(%s, %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("rotl(%s, %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(~%s)", g.expr(depth-1))
	default:
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
			"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(len(ops))], g.expr(depth-1))
	}
}

// TestFuelThresholdIdentical pins the central fuel property: the minimal
// budget under which a program completes is the same for the reference
// engine and the AOT translation — bounds-check elision must never
// change what gets metered.
func TestFuelThresholdIdentical(t *testing.T) {
	src := `func main(a, b) {
	var i = 0;
	var s = 0;
	while (i < 50) {
		s = s + ld32(((s + i) % 15360 + 1024) * 4);
		i = i + 1;
	}
	return s;
}`
	mod := compileGEL(t, src)
	cfg := mem.Config{Policy: mem.PolicyChecked, NilCheck: true}
	init := make([]byte, testMemSize)
	rand.New(rand.NewSource(7)).Read(init)
	args := []uint32{5, 9}

	completes := func(fuel int64) bool {
		v := newRef(t, mod, cfg, init, fuel)
		_, tr := runMain(t, v, args)
		if tr != nil && tr.Kind != mem.TrapFuel {
			t.Fatalf("unexpected trap %v", tr)
		}
		return tr == nil
	}
	lo, hi := int64(1), int64(1<<20)
	if !completes(hi) {
		t.Fatal("program does not complete even with ample fuel")
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if completes(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	minFuel := lo
	t.Logf("reference minimal fuel: %d", minFuel)

	ok := newProg(t, mod, cfg, init, minFuel)
	if _, tr := runMain(t, ok, args); tr != nil {
		t.Errorf("aot trapped at reference threshold %d: %v", minFuel, tr)
	}
	if used := ok.FuelUsed(); used != minFuel {
		t.Errorf("FuelUsed at exact threshold: got %d, want %d", used, minFuel)
	}
	starved := newProg(t, mod, cfg, init, minFuel-1)
	if _, tr := runMain(t, starved, args); tr == nil || tr.Kind != mem.TrapFuel {
		t.Errorf("expected fuel trap at %d, got %v", minFuel-1, tr)
	}
}

// TestFuelCliffAtBlockBoundary pins the block-granular charging shape: a
// straight-line function that traps mid-block must, under fuel that
// reaches the trap but not the block end, report fuel exhaustion at the
// block boundary — the same bounded-overshoot contract the optimizing VM
// gives, at the same budget.
func TestFuelCliffAtBlockBoundary(t *testing.T) {
	src := `func main(a, b) {
	var x = a + b + 1;
	x = x * 3;
	x = x / b;
	x = x + 7;
	return x;
}`
	mod := compileGEL(t, src)
	code := mod.Funcs[mod.ByName["main"]].Code
	divPC := -1
	for pc, in := range code {
		if in.Op == bytecode.OpDivU {
			divPC = pc
		}
	}
	if divPC < 0 || divPC+2 >= len(code) {
		t.Fatalf("test expects a mid-block division, got divPC=%d len=%d", divPC, len(code))
	}
	cfg := mem.Config{Policy: mem.PolicyChecked}
	args := []uint32{10, 0} // b == 0 -> division by zero

	// Ample fuel: same div-zero trap at the same pc as the reference.
	ref := newRef(t, mod, cfg, nil, 1<<16)
	_, rt := runMain(t, ref, args)
	p := newProg(t, mod, cfg, nil, 1<<16)
	_, at := runMain(t, p, args)
	if rt == nil || at == nil || at.Kind != mem.TrapDivZero || rt.PC != at.PC {
		t.Fatalf("ample fuel: ref=%v aot=%v", rt, at)
	}

	// Fuel reaches the division exactly: the whole block was charged at
	// entry, so the engine must preempt with a fuel trap instead.
	tight := int64(divPC + 1)
	p = newProg(t, mod, cfg, nil, tight)
	_, at = runMain(t, p, args)
	if at == nil || at.Kind != mem.TrapFuel {
		t.Fatalf("tight fuel: want fuel trap (bounded overshoot), got %v", at)
	}
	if int(at.PC) >= len(code) {
		t.Fatalf("fuel trap pc %d outside function", at.PC)
	}
}

// TestSandboxRejected: the sandbox policy belongs to the SFI classes;
// constructing an AOT program under it must fail loudly, not silently
// degrade to checked semantics.
func TestSandboxRejected(t *testing.T) {
	mod := compileGEL(t, `func main(a, b) { return a + b; }`)
	if _, err := New(mod, mem.New(1<<12), mem.Config{Policy: mem.PolicySandbox}); err == nil {
		t.Fatal("New accepted PolicySandbox")
	}
}

// TestVerifyStatsElision pins the proof coverage on the two canonical
// shapes: a modulo-bounded loop index (provable) and a raw argument
// address (not provable). The elision must also respect the policy: the
// same provable range stops being provable under NilCheck when it
// intersects the nil page.
func TestVerifyStatsElision(t *testing.T) {
	provable := compileGEL(t, `func main(a, b) {
	var i = 0;
	var s = 0;
	while (i < 1000) {
		s = s + ld32((i % 1000) * 4);
		st32(((i % 500) * 4) + 4096, s);
		i = i + 1;
	}
	return s;
}`)
	p := newProg(t, provable, mem.Config{Policy: mem.PolicyChecked}, nil, 0)
	st := p.VerifyStats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Fatalf("site counts: %+v", st)
	}
	if st.ProvenLoads != 1 || st.ProvenStores != 1 {
		t.Errorf("checked policy: provable accesses not elided: %+v", st)
	}

	// Policy-denied region: the load's range [0, 3999] intersects the nil
	// page, so NilCheck must keep its runtime check; the store's range
	// [4096, 6092] clears the page and stays elided.
	p = newProg(t, provable, mem.Config{Policy: mem.PolicyChecked, NilCheck: true}, nil, 0)
	st = p.VerifyStats()
	if st.ProvenLoads != 0 {
		t.Errorf("nil-check policy: load in nil page must not be elided: %+v", st)
	}
	if st.ProvenStores != 1 {
		t.Errorf("nil-check policy: store above nil page should stay elided: %+v", st)
	}
	// And the denied region actually traps at run time.
	if _, tr := runMain(t, p, []uint32{0, 0}); tr == nil || tr.Kind != mem.TrapNilDeref {
		t.Errorf("nil-page access: want TrapNilDeref, got %v", tr)
	}

	// Unprovable index: a raw argument address defeats the analysis; the
	// program must fall back to checked closures, not be rejected.
	wild := compileGEL(t, `func main(a, b) { return ld32(a) + ld8(b); }`)
	p = newProg(t, wild, mem.Config{Policy: mem.PolicyChecked}, nil, 0)
	st = p.VerifyStats()
	if st.Loads != 2 || st.ProvenLoads != 0 {
		t.Errorf("wild addresses must not be proven: %+v", st)
	}
	if v, tr := runMain(t, p, []uint32{0, 4}); tr != nil || v != 0 {
		t.Errorf("fallback load: v=%d trap=%v", v, tr)
	}
	if _, tr := runMain(t, p, []uint32{testMemSize - 3, 0}); tr == nil || tr.Kind != mem.TrapOOBLoad {
		t.Errorf("fallback load OOB: want TrapOOBLoad, got %v", tr)
	}
}

// TestElidedAccessStillExact: proofs may remove checks, never change
// observable behavior — the proven loop from TestVerifyStatsElision must
// produce bit-identical results and memory to the reference engine.
func TestElidedAccessStillExact(t *testing.T) {
	src := `func main(a, b) {
	var i = 0;
	var s = 0;
	while (i < 1000) {
		s = s + ld32((i % 1000) * 4);
		st32(((i % 500) * 4) + 4096, s + a);
		i = i + 1;
	}
	return s;
}`
	mod := compileGEL(t, src)
	init := make([]byte, testMemSize)
	rand.New(rand.NewSource(11)).Read(init)
	for _, pol := range aotPolicies {
		ref := newRef(t, mod, pol.cfg, init, 0)
		rv, rt := runMain(t, ref, []uint32{3, 0})
		p := newProg(t, mod, pol.cfg, init, 0)
		av, at := runMain(t, p, []uint32{3, 0})
		checkSameAsRef(t, "elided loop "+pol.name, src,
			rv, rt, ref.Memory().Data, ref.FuelUsed(),
			av, at, p.Memory().Data, p.FuelUsed())
	}
}

// TestRejectionAgreement is the load-time taxonomy contract: aot.New
// accepts exactly the modules bytecode.Verify accepts, and surfaces the
// verifier's own error for the rest — one rejection taxonomy, not two.
func TestRejectionAgreement(t *testing.T) {
	mk := func(code ...bytecode.Instr) *bytecode.Module {
		m := &bytecode.Module{Funcs: []*bytecode.Func{{
			Name: "main", NArgs: 2, NLocals: 2, Code: code,
		}}}
		m.Index()
		return m
	}
	cases := []struct {
		name string
		mod  *bytecode.Module
	}{
		{"ok-minimal", mk(
			bytecode.Instr{Op: bytecode.OpConst, A: 1},
			bytecode.Instr{Op: bytecode.OpRet},
		)},
		{"stack-underflow", mk(
			bytecode.Instr{Op: bytecode.OpAdd},
			bytecode.Instr{Op: bytecode.OpRet},
		)},
		{"bad-jump-target", mk(
			bytecode.Instr{Op: bytecode.OpJmp, A: 99},
			bytecode.Instr{Op: bytecode.OpConst, A: 0},
			bytecode.Instr{Op: bytecode.OpRet},
		)},
		{"bad-local", mk(
			bytecode.Instr{Op: bytecode.OpLocalGet, A: 7},
			bytecode.Instr{Op: bytecode.OpRet},
		)},
		{"bad-call-index", mk(
			bytecode.Instr{Op: bytecode.OpCall, A: 5},
			bytecode.Instr{Op: bytecode.OpRet},
		)},
		{"missing-terminator", mk(
			bytecode.Instr{Op: bytecode.OpConst, A: 1},
		)},
		{"depth-mismatch-at-join", mk(
			bytecode.Instr{Op: bytecode.OpLocalGet, A: 0}, // 0: cond
			bytecode.Instr{Op: bytecode.OpJz, A: 4},       // 1: -> 4 with depth 0
			bytecode.Instr{Op: bytecode.OpConst, A: 1},    // 2
			bytecode.Instr{Op: bytecode.OpConst, A: 2},    // 3: depth 2 falls into 4
			bytecode.Instr{Op: bytecode.OpConst, A: 3},    // 4: join
			bytecode.Instr{Op: bytecode.OpRet},            // 5
		)},
		{"invalid-opcode", mk(
			bytecode.Instr{Op: bytecode.Op(200)},
			bytecode.Instr{Op: bytecode.OpRet},
		)},
	}
	for _, tc := range cases {
		verr := bytecode.Verify(tc.mod)
		_, aerr := New(tc.mod, mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
		if (verr == nil) != (aerr == nil) {
			t.Errorf("%s: verifier disagreement: bytecode.Verify=%v aot.New=%v", tc.name, verr, aerr)
			continue
		}
		if verr != nil && verr.Error() != aerr.Error() {
			t.Errorf("%s: rejection taxonomy split:\n  bytecode: %v\n  aot:      %v", tc.name, verr, aerr)
		}
	}
}

// TestArmedFaultPlanMatchesOptVM drives the fault-injection contract: an
// armed plan counts policy-level accesses in program order and injects
// at the scheduled index, identically to the reference engine — which
// requires load-time disabling of both deferral and elision.
func TestArmedFaultPlanMatchesOptVM(t *testing.T) {
	src := `func main(a, b) {
	var i = 0;
	var s = 0;
	while (i < 6) {
		s = s + ld32((i % 1000) * 4);
		st8(((i % 500) * 4) + 4096, s);
		s = s + ld8(i + 64);
		i = i + 1;
	}
	st32(128, s);
	return s;
}`
	mod := compileGEL(t, src)
	init := make([]byte, testMemSize)
	rand.New(rand.NewSource(23)).Read(init)
	args := []uint32{1, 2}

	// Discover the access count with a pure counting plan.
	counter := &mem.FaultPlan{}
	m := mem.New(testMemSize)
	copy(m.Data, init)
	m.Arm(counter)
	p, err := New(mod, m, mem.Config{Policy: mem.PolicyChecked})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("main", args...); err != nil {
		t.Fatal(err)
	}
	total := counter.Accesses()
	if total == 0 {
		t.Fatal("no accesses observed")
	}

	for n := uint64(1); n <= total; n++ {
		rm := mem.New(testMemSize)
		copy(rm.Data, init)
		rplan := &mem.FaultPlan{FailOn: n}
		rm.Arm(rplan)
		ref, err := vm.NewOpt(mod, rm, mem.Config{Policy: mem.PolicyChecked}, vm.OptConfig{})
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := ref.Invoke("main", args...)

		am := mem.New(testMemSize)
		copy(am.Data, init)
		aplan := &mem.FaultPlan{FailOn: n}
		am.Arm(aplan)
		ap, err := New(mod, am, mem.Config{Policy: mem.PolicyChecked})
		if err != nil {
			t.Fatal(err)
		}
		if st := ap.VerifyStats(); st.ProvenLoads != 0 || st.ProvenStores != 0 {
			t.Fatalf("armed plan must disable elision: %+v", st)
		}
		_, aerr := ap.Invoke("main", args...)

		rt, _ := rerr.(*mem.Trap)
		at, _ := aerr.(*mem.Trap)
		if rt == nil || at == nil {
			t.Fatalf("fault %d: ref=%v aot=%v", n, rerr, aerr)
		}
		if rt.Kind != at.Kind || rt.Addr != at.Addr || rt.PC != at.PC {
			t.Fatalf("fault %d: trap mismatch ref=%v aot=%v", n, rt, at)
		}
		if rplan.Accesses() != aplan.Accesses() {
			t.Fatalf("fault %d: access count ref=%d aot=%d", n, rplan.Accesses(), aplan.Accesses())
		}
		if string(rm.Data) != string(am.Data) {
			t.Fatalf("fault %d: memory diverges", n)
		}
	}
}

// TestStackOverflowAgrees: unbounded recursion preempts at the same
// depth with the same trap as the reference.
func TestStackOverflowAgrees(t *testing.T) {
	src := `func r(n) {
	if (n == 0) { return 0; }
	return r(n - 1) + 1;
}
func main(a, b) { return r(a); }`
	mod := compileGEL(t, src)
	cfg := mem.Config{Policy: mem.PolicyChecked}
	p := newProg(t, mod, cfg, nil, 0)
	if _, tr := runMain(t, p, []uint32{1 << 20, 0}); tr == nil || tr.Kind != mem.TrapStackOverflow {
		t.Fatalf("want stack-overflow trap, got %v", tr)
	}
	if v, tr := runMain(t, p, []uint32{100, 0}); tr != nil || v != 100 {
		t.Fatalf("bounded recursion: v=%d trap=%v", v, tr)
	}
}

// TestAbortCarriesCode: the graft-raised trap keeps its code operand.
func TestAbortCarriesCode(t *testing.T) {
	mod := compileGEL(t, `func main(a, b) { abort(a + b); return 0; }`)
	p := newProg(t, mod, mem.Config{Policy: mem.PolicyChecked}, nil, 0)
	_, tr := runMain(t, p, []uint32{40, 2})
	if tr == nil || tr.Kind != mem.TrapAbort || tr.Code != 42 {
		t.Fatalf("want abort with code 42, got %v", tr)
	}
}

// TestDirectFuelConsistency: the budget is sampled when the Direct
// closure runs, not when it is resolved.
func TestDirectFuelConsistency(t *testing.T) {
	src := `func main(a, b) {
	var i = 0;
	while (i < 10000) { i = i + 1; }
	return i;
}`
	mod := compileGEL(t, src)
	p := newProg(t, mod, mem.Config{Policy: mem.PolicyChecked}, nil, 0)
	fn, ok := p.Direct("main")
	if !ok {
		t.Fatal("Direct failed")
	}
	args := []uint32{0, 0}
	if v, err := fn(args); err != nil || v != 10000 {
		t.Fatalf("unmetered: v=%d err=%v", v, err)
	}
	p.Fuel = 100
	if _, err := fn(args); err == nil {
		t.Fatal("starved closure completed; Fuel was sampled at resolve time")
	} else if tr, k := err.(*mem.Trap), true; !k || tr.Kind != mem.TrapFuel {
		t.Fatalf("want fuel trap, got %v", err)
	}
	p.Fuel = 0
	if v, err := fn(args); err != nil || v != 10000 {
		t.Fatalf("re-unmetered: v=%d err=%v", v, err)
	}
}

// TestProfileAttribution: the sampling profiler piggybacks on the block
// fuel charge and attributes samples to the loop's source lines.
func TestProfileAttribution(t *testing.T) {
	src := `func main(a, b) {
	var i = 0;
	var s = 0;
	while (i < 2000) {
		s = s + i * 3;
		i = i + 1;
	}
	return s;
}`
	mod := compileGEL(t, src)
	p := newProg(t, mod, mem.Config{Policy: mem.PolicyChecked}, nil, 0)
	prof, err := telemetry.NewProfile(64)
	if err != nil {
		t.Fatal(err)
	}
	p.SetProfile(prof.Scope("g", "aot"), prof.Interval())
	if _, err := p.Invoke("main", 0, 0); err != nil {
		t.Fatal(err)
	}
	samples := prof.Samples()
	if len(samples) == 0 {
		t.Fatal("no profile samples collected")
	}
	var loopFuel, total int64
	for _, s := range samples {
		if s.Func != "main" {
			t.Errorf("sample attributed to %q, want main", s.Func)
		}
		total += s.Fuel
		if s.Line >= 4 && s.Line <= 6 { // loop head and body
			loopFuel += s.Fuel
		}
	}
	if loopFuel*10 < total*9 {
		t.Errorf("loop owns %d of %d sampled fuel, want >= 90%%", loopFuel, total)
	}
	// Detach and confirm the countdown stops.
	p.SetProfile(nil, 0)
	before := prof.TotalFuel()
	if _, err := p.Invoke("main", 0, 0); err != nil {
		t.Fatal(err)
	}
	if prof.TotalFuel() != before {
		t.Error("detached profiler still collected samples")
	}
}

// TestInvokeNoAllocSteadyState: the frame arena and per-call-site scratch
// make hot-path invocations allocation-free after warm-up — table stakes
// for the class's performance claim.
func TestInvokeNoAllocSteadyState(t *testing.T) {
	src := `func h(p, q) { return p * q + 1; }
func main(a, b) {
	var s = 0;
	var i = 0;
	while (i < 4) { s = s + h(a, i) + ld32((i % 100) * 4); i = i + 1; }
	return s;
}`
	mod := compileGEL(t, src)
	p := newProg(t, mod, mem.Config{Policy: mem.PolicyChecked}, nil, 0)
	fn, ok := p.Direct("main")
	if !ok {
		t.Fatal("Direct failed")
	}
	args := []uint32{3, 0}
	if _, err := fn(args); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := fn(args); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Invoke allocates %.1f objects per call, want 0", allocs)
	}
}

// TestWrongArity and unknown entry points are errors, not panics.
func TestInvokeErrors(t *testing.T) {
	mod := compileGEL(t, `func main(a, b) { return a; }`)
	p := newProg(t, mod, mem.Config{Policy: mem.PolicyChecked}, nil, 0)
	if _, err := p.Invoke("nope"); err == nil {
		t.Error("unknown entry accepted")
	}
	if _, err := p.Invoke("main", 1); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, ok := p.Direct("nope"); ok {
		t.Error("Direct resolved unknown entry")
	}
}
