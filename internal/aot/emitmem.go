package aot

import (
	"graftlab/internal/mem"
)

// Memory-access emitters. Three regimes, decided per access site at
// translate time:
//
//   - proven: the interval analysis bounded the address inside the
//     memory (and above the NIL page when the policy checks it), so the
//     closure performs the raw access with no policy branch at all —
//     the elision that collapses the per-access cost to compiled-C
//     shape.
//   - checked fallback: the interpreter's exact check sequence (NIL
//     page first when configured, then the 64-bit-safe bounds test),
//     raising the same trap kind/addr/pc the VM engines raise.
//   - armed: a fault plan is attached, so every access runs the
//     fault check before its policy check, uncounted accesses being a
//     conformance violation. Armed memories also disable deferral and
//     elision entirely (see translate.go), mirroring the optimizing
//     VM's load-time NoFuse downgrade.

func faultCheck(f *mem.FaultPlan, store bool, addr uint32, pc int) {
	if t := f.Check(store, addr); t != nil {
		t.PC = pc
		panic(t)
	}
}

// toExpr lowers a symbolic-stack entry to a plain expression closure;
// the generic leaf for the cold paths (the hot paths pattern-match the
// kind and inline the leaf instead).
func (t *tr) toExpr(v sval) exprFn {
	switch v.k {
	case kConst:
		c := v.c
		return func(r []uint32) uint32 { return c }
	case kReg:
		i := v.reg
		return func(r []uint32) uint32 { return r[i] }
	default:
		return v.e
	}
}

// ld32 emits the load closure for a 4-byte load at pc with the given
// address entry, under the translator's policy regime.
func (t *tr) ld32(a sval, pc int) sval {
	t.p.stats.Loads++
	data, dlen := t.data, t.dlen
	if t.faults != nil {
		ae, faults, nilck := t.toExpr(a), t.faults, t.nilCheck
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			ad := ae(r)
			faultCheck(faults, false, ad, pc)
			if nilck && ad < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, ad, pc)
			}
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBLoad, ad, pc)
			}
			return ldw(data, ad)
		}}
	}
	if t.proven(pc, 4) {
		t.p.stats.ProvenLoads++
		switch a.k {
		case kConst:
			c := a.c
			return sval{k: kExpr, traps: a.traps, e: func(r []uint32) uint32 { return ldw(data, c) }}
		case kReg:
			i := a.reg
			return sval{k: kExpr, traps: a.traps, e: func(r []uint32) uint32 { return ldw(data, r[i]) }}
		default:
			ae := a.e
			return sval{k: kExpr, traps: a.traps, e: func(r []uint32) uint32 { return ldw(data, ae(r)) }}
		}
	}
	if t.nilCheck {
		ae := t.toExpr(a)
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			ad := ae(r)
			if ad < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, ad, pc)
			}
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBLoad, ad, pc)
			}
			return ldw(data, ad)
		}}
	}
	switch a.k {
	case kConst:
		c := a.c
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			if uint64(c)+4 > dlen {
				throwAt(mem.TrapOOBLoad, c, pc)
			}
			return ldw(data, c)
		}}
	case kReg:
		i := a.reg
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			ad := r[i]
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBLoad, ad, pc)
			}
			return ldw(data, ad)
		}}
	default:
		ae := a.e
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			ad := ae(r)
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBLoad, ad, pc)
			}
			return ldw(data, ad)
		}}
	}
}

// ld8 emits the load closure for a 1-byte load.
func (t *tr) ld8(a sval, pc int) sval {
	t.p.stats.Loads++
	data, dlen := t.data, t.dlen
	if t.faults != nil {
		ae, faults, nilck := t.toExpr(a), t.faults, t.nilCheck
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			ad := ae(r)
			faultCheck(faults, false, ad, pc)
			if nilck && ad < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, ad, pc)
			}
			if uint64(ad) >= dlen {
				throwAt(mem.TrapOOBLoad, ad, pc)
			}
			return uint32(data[ad])
		}}
	}
	if t.proven(pc, 1) {
		t.p.stats.ProvenLoads++
		switch a.k {
		case kConst:
			c := a.c
			return sval{k: kExpr, traps: a.traps, e: func(r []uint32) uint32 { return uint32(data[c]) }}
		case kReg:
			i := a.reg
			return sval{k: kExpr, traps: a.traps, e: func(r []uint32) uint32 { return uint32(data[r[i]]) }}
		default:
			ae := a.e
			return sval{k: kExpr, traps: a.traps, e: func(r []uint32) uint32 { return uint32(data[ae(r)]) }}
		}
	}
	if t.nilCheck {
		ae := t.toExpr(a)
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			ad := ae(r)
			if ad < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, ad, pc)
			}
			if uint64(ad) >= dlen {
				throwAt(mem.TrapOOBLoad, ad, pc)
			}
			return uint32(data[ad])
		}}
	}
	switch a.k {
	case kReg:
		i := a.reg
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			ad := r[i]
			if uint64(ad) >= dlen {
				throwAt(mem.TrapOOBLoad, ad, pc)
			}
			return uint32(data[ad])
		}}
	default:
		ae := t.toExpr(a)
		return sval{k: kExpr, traps: true, e: func(r []uint32) uint32 {
			ad := ae(r)
			if uint64(ad) >= dlen {
				throwAt(mem.TrapOOBLoad, ad, pc)
			}
			return uint32(data[ad])
		}}
	}
}

// st32 emits the store statement for a 4-byte store at pc: evaluate
// address, then value, then check, then write — the interpreter's exact
// order, which the fault plan's access counting observes.
func (t *tr) st32(a, v sval, pc int) stmtFn {
	t.p.stats.Stores++
	data, dlen := t.data, t.dlen
	if t.faults != nil {
		ae, ve, faults, nilck := t.toExpr(a), t.toExpr(v), t.faults, t.nilCheck
		return func(r []uint32) {
			ad := ae(r)
			val := ve(r)
			faultCheck(faults, true, ad, pc)
			if nilck && ad < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, ad, pc)
			}
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			stw(data, ad, val)
		}
	}
	if t.proven(pc, 4) {
		t.p.stats.ProvenStores++
		switch {
		case a.k == kReg && v.k == kReg:
			ai, vi := a.reg, v.reg
			return func(r []uint32) { stw(data, r[ai], r[vi]) }
		case a.k == kReg && v.k == kConst:
			ai, c := a.reg, v.c
			return func(r []uint32) { stw(data, r[ai], c) }
		case a.k == kReg:
			ai, ve := a.reg, v.e
			return func(r []uint32) { stw(data, r[ai], ve(r)) }
		case a.k == kConst:
			c, ve := a.c, t.toExpr(v)
			return func(r []uint32) { stw(data, c, ve(r)) }
		default:
			ae, ve := a.e, t.toExpr(v)
			return func(r []uint32) {
				ad := ae(r)
				stw(data, ad, ve(r))
			}
		}
	}
	if t.nilCheck {
		ae, ve := t.toExpr(a), t.toExpr(v)
		return func(r []uint32) {
			ad := ae(r)
			val := ve(r)
			if ad < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, ad, pc)
			}
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			stw(data, ad, val)
		}
	}
	switch {
	case a.k == kReg && v.k == kReg:
		ai, vi := a.reg, v.reg
		return func(r []uint32) {
			ad := r[ai]
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			stw(data, ad, r[vi])
		}
	case a.k == kReg:
		ai, ve := a.reg, t.toExpr(v)
		return func(r []uint32) {
			ad := r[ai]
			val := ve(r)
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			stw(data, ad, val)
		}
	default:
		ae, ve := t.toExpr(a), t.toExpr(v)
		return func(r []uint32) {
			ad := ae(r)
			val := ve(r)
			if uint64(ad)+4 > dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			stw(data, ad, val)
		}
	}
}

// st8 emits the store statement for a 1-byte store.
func (t *tr) st8(a, v sval, pc int) stmtFn {
	t.p.stats.Stores++
	data, dlen := t.data, t.dlen
	if t.faults != nil {
		ae, ve, faults, nilck := t.toExpr(a), t.toExpr(v), t.faults, t.nilCheck
		return func(r []uint32) {
			ad := ae(r)
			val := ve(r)
			faultCheck(faults, true, ad, pc)
			if nilck && ad < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, ad, pc)
			}
			if uint64(ad) >= dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			data[ad] = byte(val)
		}
	}
	if t.proven(pc, 1) {
		t.p.stats.ProvenStores++
		switch {
		case a.k == kReg && v.k == kReg:
			ai, vi := a.reg, v.reg
			return func(r []uint32) { data[r[ai]] = byte(r[vi]) }
		case a.k == kReg:
			ai, ve := a.reg, t.toExpr(v)
			return func(r []uint32) { data[r[ai]] = byte(ve(r)) }
		default:
			ae, ve := t.toExpr(a), t.toExpr(v)
			return func(r []uint32) {
				ad := ae(r)
				data[ad] = byte(ve(r))
			}
		}
	}
	if t.nilCheck {
		ae, ve := t.toExpr(a), t.toExpr(v)
		return func(r []uint32) {
			ad := ae(r)
			val := ve(r)
			if ad < mem.NilPageSize {
				throwAt(mem.TrapNilDeref, ad, pc)
			}
			if uint64(ad) >= dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			data[ad] = byte(val)
		}
	}
	switch {
	case a.k == kReg && v.k == kReg:
		ai, vi := a.reg, v.reg
		return func(r []uint32) {
			ad := r[ai]
			if uint64(ad) >= dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			data[ad] = byte(r[vi])
		}
	default:
		ae, ve := t.toExpr(a), t.toExpr(v)
		return func(r []uint32) {
			ad := ae(r)
			val := ve(r)
			if uint64(ad) >= dlen {
				throwAt(mem.TrapOOBStore, ad, pc)
			}
			data[ad] = byte(val)
		}
	}
}

// proven reports whether the interval analysis bounded the access at pc
// (of the given byte width) inside the memory — and above the NIL page
// when the policy demands it — so its runtime checks can be elided.
func (t *tr) proven(pc int, width uint32) bool {
	if t.acc == nil {
		return false
	}
	iv, ok := t.acc[pc]
	if !ok {
		return false
	}
	if t.nilCheck && iv.lo < mem.NilPageSize {
		return false
	}
	return uint64(iv.hi)+uint64(width) <= t.dlen
}
