// Package aot is the verified ahead-of-time technology class: the
// load-time verifier + translator pipeline modern in-kernel runtimes
// (eBPF) use to collapse the paper's interpreter gap. Where the bytecode
// class re-decides safety per instruction at run time, this class
// decides it once at load time:
//
//  1. Verify. bytecode.Verify supplies the structural guarantees (valid
//     opcodes, jump targets, stack discipline); on top of it an
//     abstract interpretation over u32 intervals (analysis.go) computes
//     value ranges per local and stack slot, with branch-edge
//     refinement, and proves individual memory accesses in-bounds
//     against the declared policy and the bound linear memory's size.
//
//  2. Translate. Verified bytecode is lowered into the closure-threaded
//     execution form internal/native emits — exprFn/stmtFn closures
//     specialized at load time — with the operand stack dissolved into
//     expression trees (a symbolic-stack pass, translate.go), constants
//     and local reads inlined into their consumers, bounds checks
//     elided where the proof holds (checked closures otherwise —
//     fallback, never rejection), and fuel charged once per basic block
//     using the same bytecode.Leaders/BlockCosts CFG the optimizing VM
//     meters with, so fuel cliffs land on exactly the same budget
//     thresholds as both interpreters.
//
// Trap semantics (kind, address, code), fault-plan access ordering, and
// fuel accounting are differentially tested against vm.OptVM; an armed
// fault plan disables deferral and elision at load time, exactly as it
// disables fusion in the optimizing VM.
package aot

import (
	"fmt"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// DefaultMaxCallDepth bounds graft recursion, mirroring the VM's.
const DefaultMaxCallDepth = 256

// unmeteredFuel models "no budget" so the block prologue stays
// branch-predictable; same constant as the optimizing VM.
const unmeteredFuel = int64(1) << 62

// exprFn computes one u32 value against the current frame's registers.
type exprFn func(r []uint32) uint32

// stmtFn performs one effect (register write, store, call) against the
// current frame's registers.
type stmtFn func(r []uint32)

// blockFn executes one basic block and returns the index of the next
// block, or a negative value to return from the function.
type blockFn func(r []uint32) int32

// afunc is one translated function: its blocks, entered at index 0.
// A frame is nregs registers: NLocals locals followed by one canonical
// spill slot per operand-stack position.
type afunc struct {
	name   string
	nargs  int
	nregs  int
	blocks []blockFn
}

// blockMeta is the per-block fuel/profiling descriptor the prologue
// charges against.
type blockMeta struct {
	cost int64
	pc   int32
	name string
	line int
}

// Stats reports how far the verifier's proofs reached: accesses whose
// runtime checks were elided versus translated with the checked
// fallback. Loads and stores cover Ld8/Ld32/St8/St32 sites (static
// counts, not dynamic executions).
type Stats struct {
	Loads, ProvenLoads   int
	Stores, ProvenStores int
}

// Prog is a verified, translated module bound to one linear memory.
// Like the VM engines it is NOT safe for concurrent use: fuel, call
// depth, and the frame arena are per-Prog state; concurrent callers go
// through tech.Pool. Fuel is sampled once per invocation.
type Prog struct {
	mod *bytecode.Module
	m   *mem.Memory
	fns []afunc

	// MaxCallDepth bounds recursion; 0 means DefaultMaxCallDepth.
	MaxCallDepth int
	// Fuel is the instruction budget per Invoke; 0 means unmetered.
	Fuel int64

	fuel     int64
	depth    int
	arena    []uint32
	arenaTop int
	result   uint32
	stats    Stats

	prof      *telemetry.ProfScope
	profEvery int64
	profTick  int64
}

// New verifies mod — structurally via bytecode.Verify, then for memory
// safety via interval analysis — and translates it into closure-threaded
// form against m under cfg. The only rejections are bytecode.Verify's
// own (plus the sandbox policy, which belongs to the SFI classes):
// unprovable programs are translated with checked fallbacks, never
// refused.
func New(mod *bytecode.Module, m *mem.Memory, cfg mem.Config) (*Prog, error) {
	if cfg.Policy == mem.PolicySandbox {
		return nil, fmt.Errorf("aot: sandbox policy is the SFI classes' job; aot supports unsafe/checked")
	}
	if err := bytecode.Verify(mod); err != nil {
		return nil, err
	}
	p := &Prog{mod: mod, m: m}
	p.fns = make([]afunc, len(mod.Funcs))
	for i, f := range mod.Funcs {
		af, err := translateFunc(p, mod, f, m, cfg)
		if err != nil {
			return nil, err
		}
		p.fns[i] = af
	}
	return p, nil
}

// Memory returns the linear memory the program executes against.
func (p *Prog) Memory() *mem.Memory { return p.m }

// VerifyStats reports the verifier's proof coverage over the translated
// module's memory accesses.
func (p *Prog) VerifyStats() Stats { return p.stats }

// SetProfile attaches a sampling-profiler scope: every `every` executed
// fuel units record one sample against the current function and source
// line, piggybacking on the block-granular fuel charge (same contract
// as the optimizing VM). A nil scope detaches.
func (p *Prog) SetProfile(s *telemetry.ProfScope, every int64) {
	if s == nil || every < 1 {
		p.prof, p.profEvery, p.profTick = nil, 0, 0
		return
	}
	p.prof, p.profEvery, p.profTick = s, every, every
}

// FuelUsed reports the fuel consumed by the most recent invocation.
// The translated form always meters (against unmeteredFuel when no
// budget is set), block-granular like the optimizing VM.
func (p *Prog) FuelUsed() int64 {
	start := p.Fuel
	if start <= 0 {
		start = unmeteredFuel
	}
	used := start - p.fuel
	if p.Fuel > 0 && used > p.Fuel {
		used = p.Fuel // fuel trap leaves the counter below zero
	}
	if used < 0 {
		used = 0
	}
	return used
}

// Invoke runs the named function with args. A trap is returned as a
// *mem.Trap error; the host survives.
func (p *Prog) Invoke(entry string, args ...uint32) (uint32, error) {
	idx, ok := p.mod.ByName[entry]
	if !ok {
		return 0, fmt.Errorf("aot: no function %q", entry)
	}
	return p.invoke(idx, args)
}

// Direct returns a pre-resolved entry point. Fuel is sampled when the
// closure is called; the closure must not be called concurrently with
// any other invocation on the same Prog.
func (p *Prog) Direct(entry string) (func(args []uint32) (uint32, error), bool) {
	idx, ok := p.mod.ByName[entry]
	if !ok {
		return nil, false
	}
	return func(args []uint32) (uint32, error) {
		return p.invoke(idx, args)
	}, true
}

func (p *Prog) invoke(idx int, args []uint32) (result uint32, err error) {
	fn := &p.fns[idx]
	if len(args) != fn.nargs {
		return 0, fmt.Errorf("aot: %q takes %d args, got %d", fn.name, fn.nargs, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*mem.Trap); ok {
				err = t
				return
			}
			panic(r)
		}
	}()
	if p.Fuel > 0 {
		p.fuel = p.Fuel
	} else {
		p.fuel = unmeteredFuel
	}
	p.depth = 0
	p.arenaTop = 0
	return p.call(idx, args), nil
}

// call allocates the callee's registers from the arena, runs its block
// graph, and releases the frame. Bump allocation, like the VM's arena:
// growing swaps in a fresh backing array; parents keep touching their
// captured slices into the old one, which stay private to them.
func (p *Prog) call(idx int, args []uint32) uint32 {
	maxDepth := p.MaxCallDepth
	if maxDepth == 0 {
		maxDepth = DefaultMaxCallDepth
	}
	p.depth++
	if p.depth > maxDepth {
		throwAt(mem.TrapStackOverflow, 0, 0)
	}
	fn := &p.fns[idx]
	base := p.arenaTop
	need := fn.nregs
	if base+need > len(p.arena) {
		grown := make([]uint32, base+need+256)
		copy(grown, p.arena)
		p.arena = grown
	}
	regs := p.arena[base : base+need : base+need]
	n := copy(regs, args)
	nlocals := p.mod.Funcs[idx].NLocals
	for j := n; j < nlocals; j++ {
		regs[j] = 0
	}
	p.arenaTop = base + need
	blocks := fn.blocks
	b := int32(0)
	for b >= 0 {
		b = blocks[b](regs)
	}
	p.arenaTop = base
	p.depth--
	return p.result
}

// burn is the per-block prologue: charge the block's instruction count
// against the budget, trap on exhaustion, and feed the sampling
// profiler when one is attached.
func (p *Prog) burn(bm *blockMeta) {
	p.fuel -= bm.cost
	if p.fuel < 0 {
		throwAt(mem.TrapFuel, 0, int(bm.pc))
	}
	if p.profEvery != 0 {
		p.profTick -= bm.cost
		if p.profTick <= 0 {
			p.profTick += p.profEvery
			p.prof.Hit(bm.name, bm.line, p.profEvery)
		}
	}
}

// throwAt raises a trap recording the faulting bytecode pc — the same
// funneling the VM engines use, so differential tests can compare traps.
func throwAt(kind mem.TrapKind, addr uint32, pc int) {
	panic(&mem.Trap{Kind: kind, Addr: addr, PC: pc})
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// ldw/stw are the little-endian word accessors (the Go compiler lowers
// the idiom to single loads/stores).
func ldw(data []byte, a uint32) uint32 {
	d := data[a : a+4 : a+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

func stw(data []byte, a, val uint32) {
	d := data[a : a+4 : a+4]
	d[0] = byte(val)
	d[1] = byte(val >> 8)
	d[2] = byte(val >> 16)
	d[3] = byte(val >> 24)
}
