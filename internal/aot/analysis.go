package aot

import (
	"graftlab/internal/bytecode"
)

// The range analysis behind the verifier's elision proofs: a forward
// fixpoint over the function's basic blocks computing, for every block
// entry, an interval per local slot and per operand-stack position.
// Branch edges refine the compared local (the eBPF verifier's trick:
// `if (i < 16)` proves i <= 15 on the taken path), so counted loops and
// guarded accesses get usable bounds even though the analysis never
// unrolls anything. Joins widen after a few visits per block, keeping
// the pass linear in practice and guaranteeing termination.
//
// The analysis is total: it never rejects a program. Structural
// rejection belongs to bytecode.Verify alone — that is what keeps the
// two verifiers' accept sets identical. A program this pass cannot
// prove anything about simply runs with every check intact.

// absState is the abstract machine state at a block entry.
type absState struct {
	locals []ival
	stack  []ival
}

// cmpShape records that a stack value is the boolean of `locals[loc] op c`.
type cmpShape struct {
	op  bytecode.Op
	loc int32
	c   uint32
}

// absVal is one abstract operand-stack entry during the in-block walk:
// its interval, plus enough provenance for branch refinement.
type absVal struct {
	iv     ival
	loc    int32 // >= 0: value is exactly locals[loc], unmodified since push
	cmp    cmpShape
	hasCmp bool
}

// widenAfter bounds how many times a block's entry state may change
// before joins widen changed bounds to their extremes.
const widenAfter = 8

// maxAnalysisSteps caps total block visits; beyond it the analysis
// gives up (soundly: the translator falls back to full checks).
const maxAnalysisSteps = 1 << 14

// analyzeFunc computes block-entry states for f plus, per memory-access
// pc, the interval of that access's address operand (joined over every
// visit; entry states only grow under join, and the transfer functions
// are monotone, so the joined interval equals the one a clean pass over
// the converged states would compute). Returns nils when the analysis
// gives up; callers must then assume fullIval everywhere.
func analyzeFunc(mod *bytecode.Module, f *bytecode.Func, depths []int, leaders []bool, memSize uint32) (map[int]*absState, map[int]ival) {
	entry := make(map[int]*absState)
	visits := make(map[int]int)
	acc := make(map[int]ival)
	record := func(pc int, iv ival) {
		if old, ok := acc[pc]; ok {
			iv = old.join(iv)
		}
		acc[pc] = iv
	}

	init := &absState{locals: make([]ival, f.NLocals)}
	for i := range init.locals {
		if i < f.NArgs {
			init.locals[i] = fullIval
		} else {
			init.locals[i] = ival{0, 0} // non-arg locals are zeroed at entry
		}
	}
	entry[0] = init
	work := []int{0}
	steps := 0

	// propagate joins st into the entry state of the block at pc.
	propagate := func(pc int, locals, stack []ival) {
		cur, ok := entry[pc]
		if !ok {
			entry[pc] = &absState{
				locals: append([]ival(nil), locals...),
				stack:  append([]ival(nil), stack...),
			}
			work = append(work, pc)
			return
		}
		changed := false
		widen := visits[pc] >= widenAfter
		merge := func(dst *ival, src ival) {
			j := dst.join(src)
			if j != *dst {
				if widen {
					if j.lo < dst.lo {
						j.lo = 0
					}
					if j.hi > dst.hi {
						j.hi = maxU32
					}
				}
				*dst = j
				changed = true
			}
		}
		for i := range cur.locals {
			merge(&cur.locals[i], locals[i])
		}
		for i := range cur.stack {
			if i < len(stack) {
				merge(&cur.stack[i], stack[i])
			}
		}
		if changed {
			visits[pc]++
			work = append(work, pc)
		}
	}

	for len(work) > 0 {
		if steps++; steps > maxAnalysisSteps {
			return nil, nil
		}
		leader := work[len(work)-1]
		work = work[:len(work)-1]
		st := entry[leader]
		locals := append([]ival(nil), st.locals...)
		stk := make([]absVal, len(st.stack))
		for i, iv := range st.stack {
			stk[i] = absVal{iv: iv, loc: -1}
		}

		push := func(v absVal) { stk = append(stk, v) }
		pop := func() absVal {
			v := stk[len(stk)-1]
			stk = stk[:len(stk)-1]
			return v
		}
		exitIvs := func() []ival {
			out := make([]ival, len(stk))
			for i, v := range stk {
				out[i] = v.iv
			}
			return out
		}
		// refinedLocals applies the branch condition cond (holding with
		// the given truth) to a copy of locals.
		refinedLocals := func(cond absVal, truth bool) []ival {
			out := append([]ival(nil), locals...)
			switch {
			case cond.hasCmp:
				l := cond.cmp.loc
				out[l] = refineCmp(out[l], cond.cmp.op, cond.cmp.c, truth)
			case cond.loc >= 0:
				l := cond.loc
				if truth { // value != 0
					if out[l].lo == 0 && out[l].hi > 0 {
						out[l].lo = 1
					}
				} else { // value == 0
					out[l] = ival{0, 0}
				}
			}
			return out
		}

	blockLoop:
		for pc := leader; ; pc++ {
			if pc != leader && leaders[pc] {
				propagate(pc, locals, exitIvs())
				break
			}
			in := f.Code[pc]
			switch in.Op {
			case bytecode.OpNop:
			case bytecode.OpConst:
				push(absVal{iv: constIval(in.A), loc: -1})
			case bytecode.OpLocalGet:
				push(absVal{iv: locals[in.A], loc: int32(in.A)})
			case bytecode.OpLocalSet:
				v := pop()
				locals[in.A] = v.iv
			case bytecode.OpDrop:
				pop()
			case bytecode.OpEqz:
				v := pop()
				nv := absVal{iv: ival{0, 1}, loc: -1}
				switch {
				case v.hasCmp:
					nv.hasCmp = true
					nv.cmp = cmpShape{op: negateCmp(v.cmp.op), loc: v.cmp.loc, c: v.cmp.c}
				case v.loc >= 0:
					nv.hasCmp = true
					nv.cmp = cmpShape{op: bytecode.OpEq, loc: v.loc, c: 0}
				}
				push(nv)
			case bytecode.OpLd32:
				a := pop()
				record(pc, a.iv)
				push(absVal{iv: fullIval, loc: -1})
			case bytecode.OpLd8:
				a := pop()
				record(pc, a.iv)
				push(absVal{iv: ival{0, 255}, loc: -1})
			case bytecode.OpSt32, bytecode.OpSt8:
				pop() // value
				a := pop()
				record(pc, a.iv)
			case bytecode.OpMemSize:
				push(absVal{iv: constIval(memSize), loc: -1})
			case bytecode.OpCall:
				callee := mod.Funcs[in.A]
				stk = stk[:len(stk)-callee.NArgs]
				push(absVal{iv: fullIval, loc: -1})
			case bytecode.OpJmp:
				propagate(int(in.A), locals, exitIvs())
				break blockLoop
			case bytecode.OpJz, bytecode.OpJnz:
				cond := pop()
				ivs := exitIvs()
				// Jz takes the jump when cond == 0; Jnz when cond != 0.
				takenTruth := in.Op == bytecode.OpJnz
				propagate(int(in.A), refinedLocals(cond, takenTruth), ivs)
				propagate(pc+1, refinedLocals(cond, !takenTruth), ivs)
				break blockLoop
			case bytecode.OpRet, bytecode.OpAbort:
				break blockLoop
			default: // binary ALU / comparison ops
				y := pop()
				x := pop()
				nv := absVal{iv: ivalBin(in.Op, x.iv, y.iv), loc: -1}
				switch in.Op {
				case bytecode.OpEq, bytecode.OpNe, bytecode.OpLtU,
					bytecode.OpLeU, bytecode.OpGtU, bytecode.OpGeU:
					if x.loc >= 0 && y.iv.isConst() {
						nv.hasCmp = true
						nv.cmp = cmpShape{op: in.Op, loc: x.loc, c: y.iv.lo}
					} else if y.loc >= 0 && x.iv.isConst() {
						nv.hasCmp = true
						nv.cmp = cmpShape{op: mirrorCmp(in.Op), loc: y.loc, c: x.iv.lo}
					}
				}
				push(nv)
			}
		}
		_ = depths
	}
	return entry, acc
}
