package aot

import (
	"math/bits"

	"graftlab/internal/bytecode"
)

// ival is an unsigned 32-bit interval [lo, hi], the abstract value the
// verifier tracks per local slot and per operand-stack position. Every
// transfer function over-approximates: the concrete value at runtime is
// always inside the interval, so a bounds proof derived from an interval
// is sound. Wrap-around results widen to full rather than modeling
// circular intervals — the grafts the proof matters for (table-driven
// indexing, masked offsets, counted loops) never rely on wrap.
type ival struct {
	lo, hi uint32
}

const maxU32 = ^uint32(0)

var fullIval = ival{0, maxU32}

func constIval(c uint32) ival { return ival{c, c} }

func (v ival) isConst() bool { return v.lo == v.hi }

// join is the lattice union.
func (v ival) join(o ival) ival {
	if o.lo < v.lo {
		v.lo = o.lo
	}
	if o.hi > v.hi {
		v.hi = o.hi
	}
	return v
}

// orMax is the tightest power-of-two-minus-one bound on x|y (and x^y)
// given x <= a and y <= b.
func orMax(a, b uint32) uint32 {
	n := bits.Len32(a | b)
	if n >= 32 {
		return maxU32
	}
	return (uint32(1) << n) - 1
}

// ivalBin over-approximates the result interval of a binary ALU or
// comparison op on operand intervals x and y. For the trapping ops
// (div/rem by zero) the interval covers the non-trapping outcomes only;
// the trap itself is handled by the emitted check.
func ivalBin(op bytecode.Op, x, y ival) ival {
	switch op {
	case bytecode.OpAdd:
		lo := uint64(x.lo) + uint64(y.lo)
		hi := uint64(x.hi) + uint64(y.hi)
		if hi <= uint64(maxU32) {
			return ival{uint32(lo), uint32(hi)}
		}
		if lo > uint64(maxU32) { // both bounds wrap: still an interval
			return ival{uint32(lo), uint32(hi)}
		}
		return fullIval
	case bytecode.OpSub:
		lo := int64(x.lo) - int64(y.hi)
		hi := int64(x.hi) - int64(y.lo)
		if lo >= 0 {
			return ival{uint32(lo), uint32(hi)}
		}
		if hi < 0 { // both bounds wrap
			return ival{uint32(lo + 1<<32), uint32(hi + 1<<32)}
		}
		return fullIval
	case bytecode.OpMul:
		hi := uint64(x.hi) * uint64(y.hi)
		if hi <= uint64(maxU32) {
			return ival{x.lo * y.lo, uint32(hi)}
		}
		return fullIval
	case bytecode.OpDivU:
		dlo, dhi := y.lo, y.hi
		if dlo == 0 {
			dlo = 1
		}
		if dhi == 0 {
			dhi = 1
		}
		return ival{x.lo / dhi, x.hi / dlo}
	case bytecode.OpRemU:
		if y.hi == 0 {
			return ival{0, 0} // always traps; interval is vacuous
		}
		hi := y.hi - 1
		if x.hi < hi {
			hi = x.hi
		}
		return ival{0, hi}
	case bytecode.OpAnd:
		hi := x.hi
		if y.hi < hi {
			hi = y.hi
		}
		return ival{0, hi}
	case bytecode.OpOr:
		lo := x.lo
		if y.lo > lo {
			lo = y.lo
		}
		return ival{lo, orMax(x.hi, y.hi)}
	case bytecode.OpXor:
		return ival{0, orMax(x.hi, y.hi)}
	case bytecode.OpShl:
		if y.isConst() {
			k := y.lo & 31
			hi := uint64(x.hi) << k
			if hi <= uint64(maxU32) {
				return ival{x.lo << k, uint32(hi)}
			}
		}
		return fullIval
	case bytecode.OpShrU:
		if y.isConst() {
			k := y.lo & 31
			return ival{x.lo >> k, x.hi >> k}
		}
		return ival{0, x.hi}
	case bytecode.OpRotl, bytecode.OpRotr:
		if y.isConst() && y.lo&31 == 0 {
			return x
		}
		return fullIval
	case bytecode.OpMinU:
		lo, hi := x.lo, x.hi
		if y.lo < lo {
			lo = y.lo
		}
		if y.hi < hi {
			hi = y.hi
		}
		return ival{lo, hi}
	case bytecode.OpMaxU:
		lo, hi := x.lo, x.hi
		if y.lo > lo {
			lo = y.lo
		}
		if y.hi > hi {
			hi = y.hi
		}
		return ival{lo, hi}
	case bytecode.OpEq, bytecode.OpNe, bytecode.OpLtU, bytecode.OpLeU,
		bytecode.OpGtU, bytecode.OpGeU:
		return ival{0, 1}
	}
	return fullIval
}

// negateCmp returns the comparison that holds exactly when op does not.
func negateCmp(op bytecode.Op) bytecode.Op {
	switch op {
	case bytecode.OpEq:
		return bytecode.OpNe
	case bytecode.OpNe:
		return bytecode.OpEq
	case bytecode.OpLtU:
		return bytecode.OpGeU
	case bytecode.OpLeU:
		return bytecode.OpGtU
	case bytecode.OpGtU:
		return bytecode.OpLeU
	case bytecode.OpGeU:
		return bytecode.OpLtU
	}
	return op
}

// mirrorCmp returns the comparison with operands swapped: x op y == y mirror(op) x.
func mirrorCmp(op bytecode.Op) bytecode.Op {
	switch op {
	case bytecode.OpLtU:
		return bytecode.OpGtU
	case bytecode.OpLeU:
		return bytecode.OpGeU
	case bytecode.OpGtU:
		return bytecode.OpLtU
	case bytecode.OpGeU:
		return bytecode.OpLeU
	}
	return op // Eq, Ne are symmetric
}

// refineCmp narrows the interval of a value known to satisfy (or, with
// truth=false, to violate) `value op c`. An edge whose refinement is
// empty is unreachable; the interval collapses to a harmless singleton —
// anything sound works, since no concrete execution takes that edge.
func refineCmp(v ival, op bytecode.Op, c uint32, truth bool) ival {
	if !truth {
		op = negateCmp(op)
	}
	switch op {
	case bytecode.OpEq:
		if c < v.lo || c > v.hi {
			return constIval(c) // unreachable edge
		}
		return constIval(c)
	case bytecode.OpNe:
		if v.lo == c && v.lo < v.hi {
			v.lo++
		}
		if v.hi == c && v.hi > v.lo {
			v.hi--
		}
		return v
	case bytecode.OpLtU:
		if c == 0 {
			return constIval(v.lo) // unreachable edge
		}
		if v.hi > c-1 {
			v.hi = c - 1
		}
	case bytecode.OpLeU:
		if v.hi > c {
			v.hi = c
		}
	case bytecode.OpGtU:
		if c == maxU32 {
			return constIval(v.hi) // unreachable edge
		}
		if v.lo < c+1 {
			v.lo = c + 1
		}
	case bytecode.OpGeU:
		if v.lo < c {
			v.lo = c
		}
	}
	if v.lo > v.hi { // empty: unreachable edge
		return constIval(c)
	}
	return v
}
