package aot

import (
	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
)

// Control-flow emitters: register assignments, block terminators, and
// the compare-and-branch specializations that keep loop back-edges at a
// single indirect call. A conditional branch whose condition is a
// comparison tree is re-specialized from the comparison's operands
// (recorded on the sval when the tree was built), so `i < n` loop heads
// compile to one closure testing two registers — the analogue of the
// optimizing VM's fused xLLCmpJnz superinstruction.

// assign emits `r[dst] = v` with the value's leaf inlined.
func assign(dst int, v sval) stmtFn {
	switch v.k {
	case kConst:
		c := v.c
		return func(r []uint32) { r[dst] = c }
	case kReg:
		src := v.reg
		return func(r []uint32) { r[dst] = r[src] }
	default:
		e := v.e
		return func(r []uint32) { r[dst] = e(r) }
	}
}

// evalDiscard evaluates a pending tree purely for its effects (traps,
// checked loads) — the lowering of a Drop or of dead-but-trapping
// entries below a Ret/Abort.
func evalDiscard(e exprFn) stmtFn {
	return func(r []uint32) { e(r) }
}

// staticTerm ends a block with an unconditional transfer.
func staticTerm(next int32) func([]uint32) int32 {
	return func([]uint32) int32 { return next }
}

// retTerm ends the function, leaving the result where Prog.call reads it.
func retTerm(p *Prog, v sval) func([]uint32) int32 {
	switch v.k {
	case kConst:
		c := v.c
		return func(r []uint32) int32 { p.result = c; return -1 }
	case kReg:
		i := v.reg
		return func(r []uint32) int32 { p.result = r[i]; return -1 }
	default:
		e := v.e
		return func(r []uint32) int32 { p.result = e(r); return -1 }
	}
}

// abortTerm raises the graft's own trap with its code operand.
func abortTerm(v sval, pc int) func([]uint32) int32 {
	switch v.k {
	case kConst:
		c := v.c
		return func(r []uint32) int32 {
			panic(&mem.Trap{Kind: mem.TrapAbort, Code: c, PC: pc})
		}
	case kReg:
		i := v.reg
		return func(r []uint32) int32 {
			panic(&mem.Trap{Kind: mem.TrapAbort, Code: r[i], PC: pc})
		}
	default:
		e := v.e
		return func(r []uint32) int32 {
			panic(&mem.Trap{Kind: mem.TrapAbort, Code: e(r), PC: pc})
		}
	}
}

// condTerm ends a block with "transfer to taken when cond is true (after
// needTrue normalization), else to fall". The caller has already folded
// constant conditions into a static terminator.
func (t *tr) condTerm(cond sval, needTrue bool, taken, fall int32) func([]uint32) int32 {
	if cond.isCmp {
		op := cond.cop
		if !needTrue {
			op = negateCmp(op)
		}
		x, y := *cond.cx, *cond.cy
		// Normalize a pure left operand to the right (with the mirrored
		// comparison) so five shapes cover all combinations. Legal
		// because register reads and constants commute with expression
		// evaluation — trees never write registers.
		if x.k != kExpr && y.k == kExpr {
			x, y = y, x
			op = mirrorCmp(op)
		}
		if x.k == kConst && y.k == kReg {
			x, y = y, x
			op = mirrorCmp(op)
		}
		switch {
		case x.k == kReg && y.k == kReg:
			return cmpRR(op, x.reg, y.reg, taken, fall)
		case x.k == kReg && y.k == kConst:
			return cmpRC(op, x.reg, y.c, taken, fall)
		case x.k == kExpr && y.k == kReg:
			return cmpER(op, x.e, y.reg, taken, fall)
		case x.k == kExpr && y.k == kConst:
			return cmpEC(op, x.e, y.c, taken, fall)
		default: // (E,E); (C,C) was folded when the tree was built
			return cmpEE(op, t.toExpr(x), t.toExpr(y), taken, fall)
		}
	}
	switch cond.k {
	case kReg:
		i := cond.reg
		if needTrue {
			return func(r []uint32) int32 {
				if r[i] != 0 {
					return taken
				}
				return fall
			}
		}
		return func(r []uint32) int32 {
			if r[i] == 0 {
				return taken
			}
			return fall
		}
	default:
		e := cond.e
		if needTrue {
			return func(r []uint32) int32 {
				if e(r) != 0 {
					return taken
				}
				return fall
			}
		}
		return func(r []uint32) int32 {
			if e(r) == 0 {
				return taken
			}
			return fall
		}
	}
}

func cmpRR(op bytecode.Op, xi, yi int, taken, fall int32) func([]uint32) int32 {
	switch op {
	case bytecode.OpEq:
		return func(r []uint32) int32 {
			if r[xi] == r[yi] {
				return taken
			}
			return fall
		}
	case bytecode.OpNe:
		return func(r []uint32) int32 {
			if r[xi] != r[yi] {
				return taken
			}
			return fall
		}
	case bytecode.OpLtU:
		return func(r []uint32) int32 {
			if r[xi] < r[yi] {
				return taken
			}
			return fall
		}
	case bytecode.OpLeU:
		return func(r []uint32) int32 {
			if r[xi] <= r[yi] {
				return taken
			}
			return fall
		}
	case bytecode.OpGtU:
		return func(r []uint32) int32 {
			if r[xi] > r[yi] {
				return taken
			}
			return fall
		}
	default: // OpGeU
		return func(r []uint32) int32 {
			if r[xi] >= r[yi] {
				return taken
			}
			return fall
		}
	}
}

func cmpRC(op bytecode.Op, xi int, c uint32, taken, fall int32) func([]uint32) int32 {
	switch op {
	case bytecode.OpEq:
		return func(r []uint32) int32 {
			if r[xi] == c {
				return taken
			}
			return fall
		}
	case bytecode.OpNe:
		return func(r []uint32) int32 {
			if r[xi] != c {
				return taken
			}
			return fall
		}
	case bytecode.OpLtU:
		return func(r []uint32) int32 {
			if r[xi] < c {
				return taken
			}
			return fall
		}
	case bytecode.OpLeU:
		return func(r []uint32) int32 {
			if r[xi] <= c {
				return taken
			}
			return fall
		}
	case bytecode.OpGtU:
		return func(r []uint32) int32 {
			if r[xi] > c {
				return taken
			}
			return fall
		}
	default: // OpGeU
		return func(r []uint32) int32 {
			if r[xi] >= c {
				return taken
			}
			return fall
		}
	}
}

func cmpER(op bytecode.Op, x exprFn, yi int, taken, fall int32) func([]uint32) int32 {
	switch op {
	case bytecode.OpEq:
		return func(r []uint32) int32 {
			if x(r) == r[yi] {
				return taken
			}
			return fall
		}
	case bytecode.OpNe:
		return func(r []uint32) int32 {
			if x(r) != r[yi] {
				return taken
			}
			return fall
		}
	case bytecode.OpLtU:
		return func(r []uint32) int32 {
			if x(r) < r[yi] {
				return taken
			}
			return fall
		}
	case bytecode.OpLeU:
		return func(r []uint32) int32 {
			if x(r) <= r[yi] {
				return taken
			}
			return fall
		}
	case bytecode.OpGtU:
		return func(r []uint32) int32 {
			if x(r) > r[yi] {
				return taken
			}
			return fall
		}
	default: // OpGeU
		return func(r []uint32) int32 {
			if x(r) >= r[yi] {
				return taken
			}
			return fall
		}
	}
}

func cmpEC(op bytecode.Op, x exprFn, c uint32, taken, fall int32) func([]uint32) int32 {
	switch op {
	case bytecode.OpEq:
		return func(r []uint32) int32 {
			if x(r) == c {
				return taken
			}
			return fall
		}
	case bytecode.OpNe:
		return func(r []uint32) int32 {
			if x(r) != c {
				return taken
			}
			return fall
		}
	case bytecode.OpLtU:
		return func(r []uint32) int32 {
			if x(r) < c {
				return taken
			}
			return fall
		}
	case bytecode.OpLeU:
		return func(r []uint32) int32 {
			if x(r) <= c {
				return taken
			}
			return fall
		}
	case bytecode.OpGtU:
		return func(r []uint32) int32 {
			if x(r) > c {
				return taken
			}
			return fall
		}
	default: // OpGeU
		return func(r []uint32) int32 {
			if x(r) >= c {
				return taken
			}
			return fall
		}
	}
}

func cmpEE(op bytecode.Op, x, y exprFn, taken, fall int32) func([]uint32) int32 {
	switch op {
	case bytecode.OpEq:
		return func(r []uint32) int32 {
			if x(r) == y(r) {
				return taken
			}
			return fall
		}
	case bytecode.OpNe:
		return func(r []uint32) int32 {
			if x(r) != y(r) {
				return taken
			}
			return fall
		}
	case bytecode.OpLtU:
		return func(r []uint32) int32 {
			if x(r) < y(r) {
				return taken
			}
			return fall
		}
	case bytecode.OpLeU:
		return func(r []uint32) int32 {
			if x(r) <= y(r) {
				return taken
			}
			return fall
		}
	case bytecode.OpGtU:
		return func(r []uint32) int32 {
			if x(r) > y(r) {
				return taken
			}
			return fall
		}
	default: // OpGeU
		return func(r []uint32) int32 {
			if x(r) >= y(r) {
				return taken
			}
			return fall
		}
	}
}

// makeBlock assembles a basic block's closure: charge fuel, run the
// statements, run the terminator. Short statement chains are unrolled
// so straight-line blocks pay no slice-iteration overhead.
func makeBlock(p *Prog, bm *blockMeta, stmts []stmtFn, term func([]uint32) int32) blockFn {
	switch len(stmts) {
	case 0:
		return func(r []uint32) int32 { p.burn(bm); return term(r) }
	case 1:
		s0 := stmts[0]
		return func(r []uint32) int32 { p.burn(bm); s0(r); return term(r) }
	case 2:
		s0, s1 := stmts[0], stmts[1]
		return func(r []uint32) int32 { p.burn(bm); s0(r); s1(r); return term(r) }
	case 3:
		s0, s1, s2 := stmts[0], stmts[1], stmts[2]
		return func(r []uint32) int32 { p.burn(bm); s0(r); s1(r); s2(r); return term(r) }
	case 4:
		s0, s1, s2, s3 := stmts[0], stmts[1], stmts[2], stmts[3]
		return func(r []uint32) int32 {
			p.burn(bm)
			s0(r)
			s1(r)
			s2(r)
			s3(r)
			return term(r)
		}
	default:
		ss := append([]stmtFn(nil), stmts...)
		return func(r []uint32) int32 {
			p.burn(bm)
			for _, s := range ss {
				s(r)
			}
			return term(r)
		}
	}
}
