package aot

import (
	"math/bits"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
)

// Closure constructors for the ALU and comparison ops, specialized on
// the operand kinds the symbolic stack knows at translate time. The
// shapes are (E)xpression, (R)egister, (C)onstant; const•const folds at
// the tree node, and the const-on-the-left shapes reuse the E-on-the-
// left constructors through a constant leaf (they are rare in compiled
// GEL). The point of the specialization is the same as the optimizing
// VM's fused superinstructions: the hot shapes — reg•reg, reg•const,
// expr•const — execute with zero extra dispatches for their leaves.
//
// Evaluation order within a node is x before y, which is push order,
// which is original bytecode order; that is what keeps deferred trap
// and load ordering identical to the interpreters (see translate.go).

// foldBin evaluates op over two constants at translate time. The caller
// guarantees y != 0 for div/rem (those fold to an always-trap closure
// instead).
func foldBin(op bytecode.Op, x, y uint32) uint32 {
	switch op {
	case bytecode.OpAdd:
		return x + y
	case bytecode.OpSub:
		return x - y
	case bytecode.OpMul:
		return x * y
	case bytecode.OpDivU:
		return x / y
	case bytecode.OpRemU:
		return x % y
	case bytecode.OpAnd:
		return x & y
	case bytecode.OpOr:
		return x | y
	case bytecode.OpXor:
		return x ^ y
	case bytecode.OpShl:
		return x << (y & 31)
	case bytecode.OpShrU:
		return x >> (y & 31)
	case bytecode.OpRotl:
		return bits.RotateLeft32(x, int(y&31))
	case bytecode.OpRotr:
		return bits.RotateLeft32(x, -int(y&31))
	case bytecode.OpMinU:
		if y < x {
			return y
		}
		return x
	case bytecode.OpMaxU:
		if y > x {
			return y
		}
		return x
	case bytecode.OpEq:
		return b2u(x == y)
	case bytecode.OpNe:
		return b2u(x != y)
	case bytecode.OpLtU:
		return b2u(x < y)
	case bytecode.OpLeU:
		return b2u(x <= y)
	case bytecode.OpGtU:
		return b2u(x > y)
	case bytecode.OpGeU:
		return b2u(x >= y)
	}
	return 0
}

// alwaysTrap is the lowering of div/rem by a constant zero: evaluate the
// dividend for its effects, then raise the trap the interpreter would.
func alwaysTrap(x exprFn, kind mem.TrapKind, pc int) exprFn {
	return func(r []uint32) uint32 {
		x(r)
		throwAt(kind, 0, pc)
		return 0
	}
}

func binEE(op bytecode.Op, x, y exprFn, pc int) exprFn {
	switch op {
	case bytecode.OpAdd:
		return func(r []uint32) uint32 { return x(r) + y(r) }
	case bytecode.OpSub:
		return func(r []uint32) uint32 { return x(r) - y(r) }
	case bytecode.OpMul:
		return func(r []uint32) uint32 { return x(r) * y(r) }
	case bytecode.OpDivU:
		return func(r []uint32) uint32 {
			a, b := x(r), y(r)
			if b == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			return a / b
		}
	case bytecode.OpRemU:
		return func(r []uint32) uint32 {
			a, b := x(r), y(r)
			if b == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			return a % b
		}
	case bytecode.OpAnd:
		return func(r []uint32) uint32 { return x(r) & y(r) }
	case bytecode.OpOr:
		return func(r []uint32) uint32 { return x(r) | y(r) }
	case bytecode.OpXor:
		return func(r []uint32) uint32 { return x(r) ^ y(r) }
	case bytecode.OpShl:
		return func(r []uint32) uint32 { return x(r) << (y(r) & 31) }
	case bytecode.OpShrU:
		return func(r []uint32) uint32 { return x(r) >> (y(r) & 31) }
	case bytecode.OpRotl:
		return func(r []uint32) uint32 { return bits.RotateLeft32(x(r), int(y(r)&31)) }
	case bytecode.OpRotr:
		return func(r []uint32) uint32 { return bits.RotateLeft32(x(r), -int(y(r)&31)) }
	case bytecode.OpMinU:
		return func(r []uint32) uint32 {
			a, b := x(r), y(r)
			if b < a {
				return b
			}
			return a
		}
	case bytecode.OpMaxU:
		return func(r []uint32) uint32 {
			a, b := x(r), y(r)
			if b > a {
				return b
			}
			return a
		}
	case bytecode.OpEq:
		return func(r []uint32) uint32 { return b2u(x(r) == y(r)) }
	case bytecode.OpNe:
		return func(r []uint32) uint32 { return b2u(x(r) != y(r)) }
	case bytecode.OpLtU:
		return func(r []uint32) uint32 { return b2u(x(r) < y(r)) }
	case bytecode.OpLeU:
		return func(r []uint32) uint32 { return b2u(x(r) <= y(r)) }
	case bytecode.OpGtU:
		return func(r []uint32) uint32 { return b2u(x(r) > y(r)) }
	case bytecode.OpGeU:
		return func(r []uint32) uint32 { return b2u(x(r) >= y(r)) }
	}
	return func(r []uint32) uint32 { throwAt(mem.TrapUnreachable, 0, pc); return 0 }
}

func binER(op bytecode.Op, x exprFn, yi int, pc int) exprFn {
	switch op {
	case bytecode.OpAdd:
		return func(r []uint32) uint32 { return x(r) + r[yi] }
	case bytecode.OpSub:
		return func(r []uint32) uint32 { return x(r) - r[yi] }
	case bytecode.OpMul:
		return func(r []uint32) uint32 { return x(r) * r[yi] }
	case bytecode.OpDivU:
		return func(r []uint32) uint32 {
			a, b := x(r), r[yi]
			if b == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			return a / b
		}
	case bytecode.OpRemU:
		return func(r []uint32) uint32 {
			a, b := x(r), r[yi]
			if b == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			return a % b
		}
	case bytecode.OpAnd:
		return func(r []uint32) uint32 { return x(r) & r[yi] }
	case bytecode.OpOr:
		return func(r []uint32) uint32 { return x(r) | r[yi] }
	case bytecode.OpXor:
		return func(r []uint32) uint32 { return x(r) ^ r[yi] }
	case bytecode.OpShl:
		return func(r []uint32) uint32 { return x(r) << (r[yi] & 31) }
	case bytecode.OpShrU:
		return func(r []uint32) uint32 { return x(r) >> (r[yi] & 31) }
	case bytecode.OpRotl:
		return func(r []uint32) uint32 { return bits.RotateLeft32(x(r), int(r[yi]&31)) }
	case bytecode.OpRotr:
		return func(r []uint32) uint32 { return bits.RotateLeft32(x(r), -int(r[yi]&31)) }
	case bytecode.OpMinU:
		return func(r []uint32) uint32 {
			a, b := x(r), r[yi]
			if b < a {
				return b
			}
			return a
		}
	case bytecode.OpMaxU:
		return func(r []uint32) uint32 {
			a, b := x(r), r[yi]
			if b > a {
				return b
			}
			return a
		}
	case bytecode.OpEq:
		return func(r []uint32) uint32 { return b2u(x(r) == r[yi]) }
	case bytecode.OpNe:
		return func(r []uint32) uint32 { return b2u(x(r) != r[yi]) }
	case bytecode.OpLtU:
		return func(r []uint32) uint32 { return b2u(x(r) < r[yi]) }
	case bytecode.OpLeU:
		return func(r []uint32) uint32 { return b2u(x(r) <= r[yi]) }
	case bytecode.OpGtU:
		return func(r []uint32) uint32 { return b2u(x(r) > r[yi]) }
	case bytecode.OpGeU:
		return func(r []uint32) uint32 { return b2u(x(r) >= r[yi]) }
	}
	return func(r []uint32) uint32 { throwAt(mem.TrapUnreachable, 0, pc); return 0 }
}

func binEC(op bytecode.Op, x exprFn, c uint32, pc int) exprFn {
	switch op {
	case bytecode.OpAdd:
		return func(r []uint32) uint32 { return x(r) + c }
	case bytecode.OpSub:
		return func(r []uint32) uint32 { return x(r) - c }
	case bytecode.OpMul:
		return func(r []uint32) uint32 { return x(r) * c }
	case bytecode.OpDivU:
		if c == 0 {
			return alwaysTrap(x, mem.TrapDivZero, pc)
		}
		return func(r []uint32) uint32 { return x(r) / c }
	case bytecode.OpRemU:
		if c == 0 {
			return alwaysTrap(x, mem.TrapDivZero, pc)
		}
		return func(r []uint32) uint32 { return x(r) % c }
	case bytecode.OpAnd:
		return func(r []uint32) uint32 { return x(r) & c }
	case bytecode.OpOr:
		return func(r []uint32) uint32 { return x(r) | c }
	case bytecode.OpXor:
		return func(r []uint32) uint32 { return x(r) ^ c }
	case bytecode.OpShl:
		k := c & 31
		return func(r []uint32) uint32 { return x(r) << k }
	case bytecode.OpShrU:
		k := c & 31
		return func(r []uint32) uint32 { return x(r) >> k }
	case bytecode.OpRotl:
		k := int(c & 31)
		return func(r []uint32) uint32 { return bits.RotateLeft32(x(r), k) }
	case bytecode.OpRotr:
		k := -int(c & 31)
		return func(r []uint32) uint32 { return bits.RotateLeft32(x(r), k) }
	case bytecode.OpMinU:
		return func(r []uint32) uint32 {
			a := x(r)
			if c < a {
				return c
			}
			return a
		}
	case bytecode.OpMaxU:
		return func(r []uint32) uint32 {
			a := x(r)
			if c > a {
				return c
			}
			return a
		}
	case bytecode.OpEq:
		return func(r []uint32) uint32 { return b2u(x(r) == c) }
	case bytecode.OpNe:
		return func(r []uint32) uint32 { return b2u(x(r) != c) }
	case bytecode.OpLtU:
		return func(r []uint32) uint32 { return b2u(x(r) < c) }
	case bytecode.OpLeU:
		return func(r []uint32) uint32 { return b2u(x(r) <= c) }
	case bytecode.OpGtU:
		return func(r []uint32) uint32 { return b2u(x(r) > c) }
	case bytecode.OpGeU:
		return func(r []uint32) uint32 { return b2u(x(r) >= c) }
	}
	return func(r []uint32) uint32 { throwAt(mem.TrapUnreachable, 0, pc); return 0 }
}

func binRE(op bytecode.Op, xi int, y exprFn, pc int) exprFn {
	// A register read commutes with any expression evaluation (trees
	// never write registers), so the leaf can be read after y runs.
	switch op {
	case bytecode.OpAdd:
		return func(r []uint32) uint32 { return r[xi] + y(r) }
	case bytecode.OpSub:
		return func(r []uint32) uint32 { b := y(r); return r[xi] - b }
	case bytecode.OpMul:
		return func(r []uint32) uint32 { return r[xi] * y(r) }
	case bytecode.OpDivU:
		return func(r []uint32) uint32 {
			b := y(r)
			if b == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			return r[xi] / b
		}
	case bytecode.OpRemU:
		return func(r []uint32) uint32 {
			b := y(r)
			if b == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			return r[xi] % b
		}
	case bytecode.OpAnd:
		return func(r []uint32) uint32 { return r[xi] & y(r) }
	case bytecode.OpOr:
		return func(r []uint32) uint32 { return r[xi] | y(r) }
	case bytecode.OpXor:
		return func(r []uint32) uint32 { return r[xi] ^ y(r) }
	case bytecode.OpShl:
		return func(r []uint32) uint32 { b := y(r); return r[xi] << (b & 31) }
	case bytecode.OpShrU:
		return func(r []uint32) uint32 { b := y(r); return r[xi] >> (b & 31) }
	case bytecode.OpRotl:
		return func(r []uint32) uint32 { b := y(r); return bits.RotateLeft32(r[xi], int(b&31)) }
	case bytecode.OpRotr:
		return func(r []uint32) uint32 { b := y(r); return bits.RotateLeft32(r[xi], -int(b&31)) }
	case bytecode.OpMinU:
		return func(r []uint32) uint32 {
			b := y(r)
			if b < r[xi] {
				return b
			}
			return r[xi]
		}
	case bytecode.OpMaxU:
		return func(r []uint32) uint32 {
			b := y(r)
			if b > r[xi] {
				return b
			}
			return r[xi]
		}
	case bytecode.OpEq:
		return func(r []uint32) uint32 { return b2u(r[xi] == y(r)) }
	case bytecode.OpNe:
		return func(r []uint32) uint32 { return b2u(r[xi] != y(r)) }
	case bytecode.OpLtU:
		return func(r []uint32) uint32 { b := y(r); return b2u(r[xi] < b) }
	case bytecode.OpLeU:
		return func(r []uint32) uint32 { b := y(r); return b2u(r[xi] <= b) }
	case bytecode.OpGtU:
		return func(r []uint32) uint32 { b := y(r); return b2u(r[xi] > b) }
	case bytecode.OpGeU:
		return func(r []uint32) uint32 { b := y(r); return b2u(r[xi] >= b) }
	}
	return func(r []uint32) uint32 { throwAt(mem.TrapUnreachable, 0, pc); return 0 }
}

func binRR(op bytecode.Op, xi, yi int, pc int) exprFn {
	switch op {
	case bytecode.OpAdd:
		return func(r []uint32) uint32 { return r[xi] + r[yi] }
	case bytecode.OpSub:
		return func(r []uint32) uint32 { return r[xi] - r[yi] }
	case bytecode.OpMul:
		return func(r []uint32) uint32 { return r[xi] * r[yi] }
	case bytecode.OpDivU:
		return func(r []uint32) uint32 {
			b := r[yi]
			if b == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			return r[xi] / b
		}
	case bytecode.OpRemU:
		return func(r []uint32) uint32 {
			b := r[yi]
			if b == 0 {
				throwAt(mem.TrapDivZero, 0, pc)
			}
			return r[xi] % b
		}
	case bytecode.OpAnd:
		return func(r []uint32) uint32 { return r[xi] & r[yi] }
	case bytecode.OpOr:
		return func(r []uint32) uint32 { return r[xi] | r[yi] }
	case bytecode.OpXor:
		return func(r []uint32) uint32 { return r[xi] ^ r[yi] }
	case bytecode.OpShl:
		return func(r []uint32) uint32 { return r[xi] << (r[yi] & 31) }
	case bytecode.OpShrU:
		return func(r []uint32) uint32 { return r[xi] >> (r[yi] & 31) }
	case bytecode.OpRotl:
		return func(r []uint32) uint32 { return bits.RotateLeft32(r[xi], int(r[yi]&31)) }
	case bytecode.OpRotr:
		return func(r []uint32) uint32 { return bits.RotateLeft32(r[xi], -int(r[yi]&31)) }
	case bytecode.OpMinU:
		return func(r []uint32) uint32 {
			if r[yi] < r[xi] {
				return r[yi]
			}
			return r[xi]
		}
	case bytecode.OpMaxU:
		return func(r []uint32) uint32 {
			if r[yi] > r[xi] {
				return r[yi]
			}
			return r[xi]
		}
	case bytecode.OpEq:
		return func(r []uint32) uint32 { return b2u(r[xi] == r[yi]) }
	case bytecode.OpNe:
		return func(r []uint32) uint32 { return b2u(r[xi] != r[yi]) }
	case bytecode.OpLtU:
		return func(r []uint32) uint32 { return b2u(r[xi] < r[yi]) }
	case bytecode.OpLeU:
		return func(r []uint32) uint32 { return b2u(r[xi] <= r[yi]) }
	case bytecode.OpGtU:
		return func(r []uint32) uint32 { return b2u(r[xi] > r[yi]) }
	case bytecode.OpGeU:
		return func(r []uint32) uint32 { return b2u(r[xi] >= r[yi]) }
	}
	return func(r []uint32) uint32 { throwAt(mem.TrapUnreachable, 0, pc); return 0 }
}

func binRC(op bytecode.Op, xi int, c uint32, pc int) exprFn {
	switch op {
	case bytecode.OpAdd:
		return func(r []uint32) uint32 { return r[xi] + c }
	case bytecode.OpSub:
		return func(r []uint32) uint32 { return r[xi] - c }
	case bytecode.OpMul:
		return func(r []uint32) uint32 { return r[xi] * c }
	case bytecode.OpDivU:
		if c == 0 {
			return func(r []uint32) uint32 { throwAt(mem.TrapDivZero, 0, pc); return 0 }
		}
		return func(r []uint32) uint32 { return r[xi] / c }
	case bytecode.OpRemU:
		if c == 0 {
			return func(r []uint32) uint32 { throwAt(mem.TrapDivZero, 0, pc); return 0 }
		}
		return func(r []uint32) uint32 { return r[xi] % c }
	case bytecode.OpAnd:
		return func(r []uint32) uint32 { return r[xi] & c }
	case bytecode.OpOr:
		return func(r []uint32) uint32 { return r[xi] | c }
	case bytecode.OpXor:
		return func(r []uint32) uint32 { return r[xi] ^ c }
	case bytecode.OpShl:
		k := c & 31
		return func(r []uint32) uint32 { return r[xi] << k }
	case bytecode.OpShrU:
		k := c & 31
		return func(r []uint32) uint32 { return r[xi] >> k }
	case bytecode.OpRotl:
		k := int(c & 31)
		return func(r []uint32) uint32 { return bits.RotateLeft32(r[xi], k) }
	case bytecode.OpRotr:
		k := -int(c & 31)
		return func(r []uint32) uint32 { return bits.RotateLeft32(r[xi], k) }
	case bytecode.OpMinU:
		return func(r []uint32) uint32 {
			if c < r[xi] {
				return c
			}
			return r[xi]
		}
	case bytecode.OpMaxU:
		return func(r []uint32) uint32 {
			if c > r[xi] {
				return c
			}
			return r[xi]
		}
	case bytecode.OpEq:
		return func(r []uint32) uint32 { return b2u(r[xi] == c) }
	case bytecode.OpNe:
		return func(r []uint32) uint32 { return b2u(r[xi] != c) }
	case bytecode.OpLtU:
		return func(r []uint32) uint32 { return b2u(r[xi] < c) }
	case bytecode.OpLeU:
		return func(r []uint32) uint32 { return b2u(r[xi] <= c) }
	case bytecode.OpGtU:
		return func(r []uint32) uint32 { return b2u(r[xi] > c) }
	case bytecode.OpGeU:
		return func(r []uint32) uint32 { return b2u(r[xi] >= c) }
	}
	return func(r []uint32) uint32 { throwAt(mem.TrapUnreachable, 0, pc); return 0 }
}

func eqzE(x exprFn) exprFn {
	return func(r []uint32) uint32 { return b2u(x(r) == 0) }
}

func eqzR(xi int) exprFn {
	return func(r []uint32) uint32 { return b2u(r[xi] == 0) }
}
