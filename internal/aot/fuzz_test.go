package aot

// FuzzVerify drives the load-time contract with raw, adversarial
// bytecode rather than compiler output: every input is decoded into a
// bytecode.Func body (most bytes decode to valid opcodes, some to
// garbage), and the property is two-sided —
//
//   - rejection agreement: aot.New accepts exactly the modules
//     bytecode.Verify accepts, and surfaces the verifier's own error
//     otherwise (one taxonomy, not two);
//   - execution agreement: for every accepted module, the translated
//     program's result, trap kind/addr/code, memory image, and fuel
//     accounting equal vm.OptVM's under each supported policy.
//
// Fuel is kept small (2048) so runaway loops the verifier legitimately
// accepts terminate by exhaustion in both engines.

import (
	"fmt"
	"testing"

	"graftlab/internal/bytecode"
	"graftlab/internal/mem"
	"graftlab/internal/vm"
)

const (
	fuzzMemSize = 4096
	fuzzFuel    = 2048
)

// decodeFuzzFunc turns raw fuzz bytes into an instruction body: 3 bytes
// per instruction (opcode, 16-bit operand). Opcodes are taken modulo 64
// so most decode to real operations while a tail of invalid ones keeps
// the rejection side of the property exercised. Operands stay small —
// jump targets and local indices need to land in range sometimes — with
// a high-bit escape widening constants.
func decodeFuzzFunc(data []byte) []bytecode.Instr {
	var code []bytecode.Instr
	for i := 0; i+2 < len(data) && len(code) < 512; i += 3 {
		op := bytecode.Op(data[i] % 64)
		a := uint32(data[i+1]) | uint32(data[i+2])<<8
		if op == bytecode.OpConst && data[i+2]&0x80 != 0 {
			a = a<<16 | a // exercise the full u32 range in address math
		}
		code = append(code, bytecode.Instr{Op: op, A: a})
	}
	return code
}

// fuzzModule wraps a decoded body as "main" next to a fixed helper so
// OpCall has a legal target (index 1); call operands decoded from fuzz
// bytes still reach invalid indices, keeping that rejection path live.
func fuzzModule(body []bytecode.Instr, nlocals int) *bytecode.Module {
	m := &bytecode.Module{Funcs: []*bytecode.Func{
		{Name: "main", NArgs: 2, NLocals: nlocals, Code: body},
		{Name: "h", NArgs: 2, NLocals: 2, Code: []bytecode.Instr{
			{Op: bytecode.OpLocalGet, A: 0},
			{Op: bytecode.OpLocalGet, A: 1},
			{Op: bytecode.OpXor},
			{Op: bytecode.OpConst, A: 1},
			{Op: bytecode.OpAdd},
			{Op: bytecode.OpRet},
		}},
	}}
	m.Index()
	return m
}

func FuzzVerify(f *testing.F) {
	enc := func(ins ...bytecode.Instr) []byte {
		var b []byte
		for _, in := range ins {
			b = append(b, byte(in.Op), byte(in.A), byte(in.A>>8))
		}
		return b
	}
	// Straight-line arithmetic that returns.
	f.Add(enc(
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 0},
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 1},
		bytecode.Instr{Op: bytecode.OpAdd},
		bytecode.Instr{Op: bytecode.OpRet},
	), uint32(3), uint32(4))
	// A provable bounded loop over memory: locals, branch refinement,
	// loads, stores.
	f.Add(enc(
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 0}, // 0: i
		bytecode.Instr{Op: bytecode.OpConst, A: 16},   // 1
		bytecode.Instr{Op: bytecode.OpGeU},            // 2
		bytecode.Instr{Op: bytecode.OpJnz, A: 12},     // 3: exit
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 0}, // 4
		bytecode.Instr{Op: bytecode.OpConst, A: 4},    // 5
		bytecode.Instr{Op: bytecode.OpMul},            // 6
		bytecode.Instr{Op: bytecode.OpLd32},           // 7
		bytecode.Instr{Op: bytecode.OpLocalSet, A: 1}, // 8
		bytecode.Instr{Op: bytecode.OpConst, A: 1},    // 9  (i implicitly reused)
		bytecode.Instr{Op: bytecode.OpLocalSet, A: 0}, // 10
		bytecode.Instr{Op: bytecode.OpJmp, A: 0},      // 11
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 1}, // 12
		bytecode.Instr{Op: bytecode.OpRet},            // 13
	), uint32(0), uint32(0))
	// Division by an argument (possible div-zero trap) plus a call.
	f.Add(enc(
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 0},
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 1},
		bytecode.Instr{Op: bytecode.OpCall, A: 1},
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 1},
		bytecode.Instr{Op: bytecode.OpDivU},
		bytecode.Instr{Op: bytecode.OpRet},
	), uint32(100), uint32(0))
	// Wild store then abort: trap ordering under deferral.
	f.Add(enc(
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 0},
		bytecode.Instr{Op: bytecode.OpLocalGet, A: 1},
		bytecode.Instr{Op: bytecode.OpSt32},
		bytecode.Instr{Op: bytecode.OpConst, A: 7},
		bytecode.Instr{Op: bytecode.OpAbort},
	), uint32(70000), uint32(1))
	// Structurally broken: stack underflow.
	f.Add(enc(
		bytecode.Instr{Op: bytecode.OpAdd},
		bytecode.Instr{Op: bytecode.OpRet},
	), uint32(0), uint32(0))

	f.Fuzz(func(t *testing.T, data []byte, a, b uint32) {
		if len(data) == 0 {
			return
		}
		nlocals := 2 + int(data[0]%3)
		body := decodeFuzzFunc(data[1:])
		if len(body) == 0 {
			return
		}
		mod := fuzzModule(body, nlocals)

		verr := bytecode.Verify(mod)
		_, aerr := New(mod, mem.New(fuzzMemSize), mem.Config{Policy: mem.PolicyChecked})
		if (verr == nil) != (aerr == nil) {
			t.Fatalf("rejection disagreement: bytecode.Verify=%v aot.New=%v\n%s", verr, aerr, dumpFunc(body))
		}
		if verr != nil {
			if verr.Error() != aerr.Error() {
				t.Fatalf("rejection taxonomy split:\n  bytecode: %v\n  aot:      %v\n%s", verr, aerr, dumpFunc(body))
			}
			return
		}

		for _, pol := range aotPolicies {
			rm := mem.New(fuzzMemSize)
			fillPattern(rm.Data)
			ref, err := vm.NewOpt(mod, rm, pol.cfg, vm.OptConfig{})
			if err != nil {
				t.Fatalf("verified module refused by OptVM: %v", err)
			}
			ref.Fuel = fuzzFuel
			rv, rerr := ref.Invoke("main", a, b)

			am := mem.New(fuzzMemSize)
			fillPattern(am.Data)
			p, err := New(mod, am, pol.cfg)
			if err != nil {
				t.Fatalf("verified module refused by aot (policy %s): %v", pol.name, err)
			}
			p.Fuel = fuzzFuel
			av, aerr := p.Invoke("main", a, b)

			rt, _ := rerr.(*mem.Trap)
			at, _ := aerr.(*mem.Trap)
			label := fmt.Sprintf("policy %s args (%d,%d)", pol.name, a, b)
			switch {
			case rt == nil && at == nil:
				if rv != av {
					t.Fatalf("%s: value ref=%d aot=%d\n%s", label, rv, av, dumpFunc(body))
				}
			case rt == nil || at == nil:
				t.Fatalf("%s: trap ref=%v aot=%v\n%s", label, rerr, aerr, dumpFunc(body))
			case rt.Kind == mem.TrapFuel || at.Kind == mem.TrapFuel:
				if rt.Kind != at.Kind {
					t.Fatalf("%s: fuel divergence ref=%v aot=%v\n%s", label, rt, at, dumpFunc(body))
				}
			default:
				if rt.Kind != at.Kind || rt.PC != at.PC || rt.Addr != at.Addr || rt.Code != at.Code {
					t.Fatalf("%s: trap mismatch ref=%v aot=%v\n%s", label, rt, at, dumpFunc(body))
				}
			}
			if string(rm.Data) != string(am.Data) {
				t.Fatalf("%s: memory diverges\n%s", label, dumpFunc(body))
			}
			if ref.FuelUsed() != p.FuelUsed() {
				t.Fatalf("%s: FuelUsed ref=%d aot=%d\n%s", label, ref.FuelUsed(), p.FuelUsed(), dumpFunc(body))
			}
		}
	})
}

// fillPattern gives both memories the same non-zero image so loads see
// varied data without pulling a RNG into the fuzz body.
func fillPattern(d []byte) {
	for i := range d {
		d[i] = byte(i*7 + i>>8)
	}
}

func dumpFunc(code []bytecode.Instr) string {
	s := ""
	for pc, in := range code {
		s += fmt.Sprintf("  %3d: %v\n", pc, in)
	}
	return s
}
