package md5x

import (
	"crypto/md5"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 1321 appendix A.5 test suite.
var rfcVectors = []struct {
	in   string
	want string
}{
	{"", "d41d8cd98f00b204e9800998ecf8427e"},
	{"a", "0cc175b9c0f1b6a831c399e269772661"},
	{"abc", "900150983cd24fb0d6963f7d28e17f72"},
	{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
	{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
	{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
		"d174ab98d277d9f5a5611c2c9f419d9f"},
	{"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
		"57edf4a22be3c955ac49da2e2107b67a"},
}

func TestRFCVectors(t *testing.T) {
	for _, v := range rfcVectors {
		got := Of([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.want {
			t.Errorf("MD5(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestMatchesStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return Of(data) == md5.Sum(data)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingEqualsOneShot(t *testing.T) {
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	want := Of(data)
	// Feed in awkward chunk sizes straddling block boundaries.
	for _, chunk := range []int{1, 3, 63, 64, 65, 127, 1000} {
		d := New()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			d.Write(data[off:end])
		}
		if got := d.Sum16(); got != want {
			t.Errorf("chunk %d: %x != %x", chunk, got, want)
		}
	}
}

func TestSumIsNonDestructive(t *testing.T) {
	d := New()
	d.Write([]byte("hello "))
	mid := d.Sum16()
	mid2 := d.Sum16()
	if mid != mid2 {
		t.Fatal("Sum changed state")
	}
	d.Write([]byte("world"))
	if got, want := d.Sum16(), Of([]byte("hello world")); got != want {
		t.Errorf("continued stream: %x != %x", got, want)
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Write([]byte("junk"))
	d.Reset()
	d.Write([]byte("abc"))
	if got := d.Sum16(); hex.EncodeToString(got[:]) != "900150983cd24fb0d6963f7d28e17f72" {
		t.Errorf("after Reset: %x", got)
	}
}

func TestLengthBoundaries(t *testing.T) {
	// Padding edge cases: lengths around the 56-byte pad boundary.
	for _, n := range []int{54, 55, 56, 57, 63, 64, 65, 119, 120, 128} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		if got, want := Of(data), md5.Sum(data); got != want {
			t.Errorf("len %d: %x != %x", n, got, want)
		}
	}
}

func TestSumAppends(t *testing.T) {
	d := New()
	d.Write([]byte("abc"))
	prefix := []byte{1, 2, 3}
	out := d.Sum(prefix)
	if len(out) != 3+Size || out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("Sum did not append: %x", out)
	}
}

func BenchmarkTransform1MB(b *testing.B) {
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Of(data)
	}
}
