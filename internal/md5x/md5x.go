// Package md5x is a from-scratch implementation of the MD5 Message-Digest
// Algorithm (RFC 1321), the paper's representative Stream graft (§3.2,
// §5.5). It exists so that the same algorithm can be expressed in native
// Go (the measurement baseline), in GEL (for the compiled and interpreted
// technology classes), and in mini-Tcl, all validated against each other
// and against the RFC test suite.
//
// The implementation follows the reference structure: four rounds of
// sixteen operations over a 64-byte block, state carried as four u32
// words, length tracked in bits, and the standard padding (0x80, zeros,
// 64-bit little-endian length).
package md5x

import (
	"encoding/binary"
	"math/bits"
)

// Size is the length of an MD5 digest in bytes.
const Size = 16

// BlockSize is the MD5 block size in bytes.
const BlockSize = 64

// K holds the 64 sine-derived constants, K[i] = floor(2^32 * |sin(i+1)|).
// They are spelled out (rather than computed) so the table can also be
// marshaled into graft memory for the GEL and Tcl implementations.
var K = [64]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
	0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
	0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
	0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
	0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
	0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
	0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
	0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
	0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
	0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
	0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
	0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
	0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
	0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
}

// S holds the per-round rotation amounts, S[round*4 + step%4].
var S = [16]uint32{
	7, 12, 17, 22,
	5, 9, 14, 20,
	4, 11, 16, 23,
	6, 10, 15, 21,
}

// Digest computes MD5 incrementally. The zero value is not ready; use New.
type Digest struct {
	a, b, c, d uint32
	lenBits    uint64
	buf        [BlockSize]byte
	nbuf       int
}

// New returns an initialized MD5 state.
func New() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset returns the state to the RFC 1321 initialization vector.
func (d *Digest) Reset() {
	d.a, d.b, d.c, d.d = 0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476
	d.lenBits = 0
	d.nbuf = 0
}

// Write absorbs p; it never fails.
func (d *Digest) Write(p []byte) (int, error) {
	n := len(p)
	d.lenBits += uint64(n) * 8
	if d.nbuf > 0 {
		c := copy(d.buf[d.nbuf:], p)
		d.nbuf += c
		p = p[c:]
		if d.nbuf == BlockSize {
			d.transform(d.buf[:])
			d.nbuf = 0
		}
	}
	for len(p) >= BlockSize {
		d.transform(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		d.nbuf = copy(d.buf[:], p)
	}
	return n, nil
}

// Sum appends the digest of everything written so far to b. The state is
// copied, so Sum may be called mid-stream.
func (d *Digest) Sum(b []byte) []byte {
	dd := *d
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	// Pad to 56 mod 64, then append the bit length.
	rem := (BlockSize + 56 - 1 - int(dd.lenBits/8)%BlockSize) % BlockSize
	padding := pad[:rem+1+8]
	binary.LittleEndian.PutUint64(padding[rem+1:], dd.lenBits)
	dd.Write(padding) //nolint:errcheck // cannot fail
	var out [Size]byte
	binary.LittleEndian.PutUint32(out[0:], dd.a)
	binary.LittleEndian.PutUint32(out[4:], dd.b)
	binary.LittleEndian.PutUint32(out[8:], dd.c)
	binary.LittleEndian.PutUint32(out[12:], dd.d)
	return append(b, out[:]...)
}

// Sum16 is Sum as a fixed array.
func (d *Digest) Sum16() [Size]byte {
	var out [Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

// Of is the one-shot convenience: MD5 of data.
func Of(data []byte) [Size]byte {
	d := New()
	d.Write(data) //nolint:errcheck // cannot fail
	return d.Sum16()
}

// transform absorbs one 64-byte block, following RFC 1321's loop-rolled
// formulation: round r selects message word g(r, i) and auxiliary
// function F/G/H/I.
func (d *Digest) transform(block []byte) {
	var m [16]uint32
	for i := 0; i < 16; i++ {
		m[i] = binary.LittleEndian.Uint32(block[i*4:])
	}
	a, b, c, dd := d.a, d.b, d.c, d.d
	for i := uint32(0); i < 64; i++ {
		var f, g uint32
		switch {
		case i < 16:
			f = (b & c) | (^b & dd)
			g = i
		case i < 32:
			f = (dd & b) | (^dd & c)
			g = (5*i + 1) % 16
		case i < 48:
			f = b ^ c ^ dd
			g = (3*i + 5) % 16
		default:
			f = c ^ (b | ^dd)
			g = (7 * i) % 16
		}
		f += a + K[i] + m[g]
		a = dd
		dd = c
		c = b
		b += bits.RotateLeft32(f, int(S[(i/16)*4+i%4]))
	}
	d.a += a
	d.b += b
	d.c += c
	d.d += dd
}
