package vclock

import (
	"testing"
	"time"
)

func TestClockAccumulates(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock not at 0")
	}
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if c.Now() != 1500*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance accepted")
		}
	}()
	var c Clock
	c.Advance(-time.Nanosecond)
}
