// Package vclock is the simulation's virtual clock. Simulated costs (disk
// seeks, page-fault service, upcall latency) advance virtual time, while
// graft execution is measured in real time by the benchmark harness; the
// break-even analyses in the paper divide one by the other, so keeping the
// two time bases separate is what makes the arithmetic honest.
package vclock

import (
	"fmt"
	"time"
)

// Clock accumulates virtual time. The zero value is a clock at t=0.
type Clock struct {
	now time.Duration
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d; negative d panics, since simulated
// events cannot un-happen.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.now += d
}

// Reset rewinds to t=0 for a fresh simulation run.
func (c *Clock) Reset() { c.now = 0 }
