// Package lmb reimplements the two lmbench measurements the paper relies
// on [MCVOY96]: lat_pagefault (Table 3) and lmdd write bandwidth
// (Table 4). Both run against the real OS, as the paper's did; the disk
// model in package disk supplies the 1990s-calibrated counterpart so
// EXPERIMENTS.md can report both eras side by side.
package lmb

import (
	"fmt"
	"os"
	"syscall"
	"time"
)

// PageFaultResult is one lat_pagefault-style measurement.
type PageFaultResult struct {
	Pages    int
	PageSize int
	PerFault time.Duration
}

// MeasurePageFault maps a file of pages pages and touches each page once
// in a scattered order, timing the faults — the lat_pagefault method: the
// file is written, the cache is (best-effort) invalidated by remapping,
// and each first touch takes a minor/major fault.
func MeasurePageFault(pages int) (PageFaultResult, error) {
	pageSize := os.Getpagesize()
	if pages <= 0 {
		return PageFaultResult{}, fmt.Errorf("lmb: pages must be positive")
	}
	f, err := os.CreateTemp("", "lmb-pagefault-")
	if err != nil {
		return PageFaultResult{}, err
	}
	defer os.Remove(f.Name())
	defer f.Close()

	size := pages * pageSize
	if err := f.Truncate(int64(size)); err != nil {
		return PageFaultResult{}, err
	}
	// Write through the file so pages exist on disk/cache.
	buf := make([]byte, pageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for p := 0; p < pages; p++ {
		if _, err := f.WriteAt(buf, int64(p*pageSize)); err != nil {
			return PageFaultResult{}, err
		}
	}

	// Map privately and write-touch each page: every touch takes a
	// copy-on-write fault that the kernel cannot batch with fault-around,
	// so the count of faults equals the count of pages — the property
	// lat_pagefault's strided walk was engineered for.
	data, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return PageFaultResult{}, err
	}
	defer syscall.Munmap(data) //nolint:errcheck

	t0 := time.Now()
	stride := 16
	for s := 0; s < stride; s++ {
		for p := s; p < pages; p += stride {
			data[p*pageSize] = byte(p)
		}
	}
	elapsed := time.Since(t0)
	return PageFaultResult{
		Pages:    pages,
		PageSize: pageSize,
		PerFault: elapsed / time.Duration(pages),
	}, nil
}

// DiskWriteResult is one lmdd-style measurement.
type DiskWriteResult struct {
	Bytes       int64
	Elapsed     time.Duration
	BytesPerSec int64
}

// MeasureDiskWrite writes total bytes to a temp file in 64 KB chunks with
// an fsync at the end, the lmdd write-bandwidth method, and reports
// delivered bandwidth.
func MeasureDiskWrite(dir string, total int64) (DiskWriteResult, error) {
	if total <= 0 {
		return DiskWriteResult{}, fmt.Errorf("lmb: total must be positive")
	}
	f, err := os.CreateTemp(dir, "lmb-lmdd-")
	if err != nil {
		return DiskWriteResult{}, err
	}
	defer os.Remove(f.Name())
	defer f.Close()

	chunk := make([]byte, 64<<10)
	for i := range chunk {
		chunk[i] = byte(i * 7)
	}
	t0 := time.Now()
	var written int64
	for written < total {
		n := int64(len(chunk))
		if total-written < n {
			n = total - written
		}
		if _, err := f.Write(chunk[:n]); err != nil {
			return DiskWriteResult{}, err
		}
		written += n
	}
	if err := f.Sync(); err != nil {
		return DiskWriteResult{}, err
	}
	elapsed := time.Since(t0)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return DiskWriteResult{
		Bytes:       written,
		Elapsed:     elapsed,
		BytesPerSec: int64(float64(written) / elapsed.Seconds()),
	}, nil
}
