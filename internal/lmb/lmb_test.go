package lmb

import (
	"testing"
	"time"
)

func TestMeasurePageFault(t *testing.T) {
	res, err := MeasurePageFault(512)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 512 || res.PageSize <= 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.PerFault <= 0 || res.PerFault > 10*time.Millisecond {
		t.Errorf("per-fault %v outside plausible range", res.PerFault)
	}
	t.Logf("page fault: %v per page (page size %d)", res.PerFault, res.PageSize)
}

func TestMeasurePageFaultValidation(t *testing.T) {
	if _, err := MeasurePageFault(0); err == nil {
		t.Fatal("zero pages accepted")
	}
}

func TestMeasureDiskWrite(t *testing.T) {
	res, err := MeasureDiskWrite(t.TempDir(), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 4<<20 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	if res.BytesPerSec <= 0 {
		t.Fatalf("bandwidth = %d", res.BytesPerSec)
	}
	t.Logf("disk write: %d MB/s", res.BytesPerSec>>20)
}

func TestMeasureDiskWriteValidation(t *testing.T) {
	if _, err := MeasureDiskWrite(t.TempDir(), 0); err == nil {
		t.Fatal("zero bytes accepted")
	}
	if _, err := MeasureDiskWrite("/nonexistent-dir-xyz", 1024); err == nil {
		t.Fatal("bad dir accepted")
	}
}
