package native

import (
	"testing"

	"graftlab/internal/gel"
	"graftlab/internal/mem"
)

// TestAllExpressionFormsUnderEveryPolicy drives one program through every
// operator, builtin, and statement form under each memory policy, so the
// policy-specialized closure emitters are all exercised.
func TestAllExpressionFormsUnderEveryPolicy(t *testing.T) {
	src := `
	func callee0() { return 7; }
	func callee1(a) { return a + 1; }
	func callee2(a, b) { return a * b; }
	func callee4(a, b, c, d) { return a ^ b ^ c ^ d; }

	func main(a, b) {
		var r = 0;
		// every binary operator
		r = r + (a + b) + (a - b) + (a * b);
		if (b != 0) { r = r + a / b + a % b; }
		r = r + (a & b) + (a | b) + (a ^ b);
		r = r + (a << 3) + (a >> 2);
		r = r + (a == b) + (a != b) + (a < b) + (a <= b) + (a > b) + (a >= b);
		r = r + (a && b) + (a || b);
		// unary
		r = r + (-a) + (!a) + (~a);
		// builtins, every arity/policy path
		st32(0x2000, r);
		st8(0x2100, r);
		r = r + ld32(0x2000) + ld8(0x2100);
		r = r + rotl(a, 5) + rotr(b, 3) + min(a, b) + max(a, b) + memsize();
		// calls of each specialized arity
		r = r + callee0() + callee1(a) + callee2(a, b) + callee4(a, b, 1, 2);
		// control-flow statements
		var i = 0;
		while (i < 4) {
			i = i + 1;
			if (i == 2) { continue; }
			if (i == 3) { break; }
		}
		{ var shadow = 1; r = r + shadow; }
		if (r == 0) { return 1; } else if (r == 1) { return 2; }
		return r;
	}`
	prog, err := gel.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	configs := []mem.Config{
		{Policy: mem.PolicyUnsafe},
		{Policy: mem.PolicyChecked},
		{Policy: mem.PolicyChecked, NilCheck: true},
		{Policy: mem.PolicySandbox},
		{Policy: mem.PolicySandbox, ReadProtect: true},
	}
	var want uint32
	for i, cfg := range configs {
		p, err := Compile(prog, mem.New(1<<15), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got, err := p.Invoke("main", 0xDEAD, 13)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("%+v: got %d, want %d", cfg, got, want)
		}
	}
}

func TestDirectFastPath(t *testing.T) {
	p := MustCompile(gel.MustParse(`func main(a) { return a * 3; }`), mem.New(1<<12), mem.Config{})
	fn, ok := p.Direct("main")
	if !ok {
		t.Fatal("Direct failed to resolve")
	}
	if _, ok := p.Direct("missing"); ok {
		t.Fatal("Direct resolved a missing entry")
	}
	args := []uint32{14}
	v, err := fn(args)
	if err != nil || v != 42 {
		t.Fatalf("direct call = %d, %v", v, err)
	}
	if _, err := fn([]uint32{1, 2}); err == nil {
		t.Fatal("wrong arity accepted through Direct")
	}
	// Traps recover through the direct path too.
	pt := MustCompile(gel.MustParse(`func main(a) { return 1 / a; }`), mem.New(1<<12), mem.Config{})
	dt, _ := pt.Direct("main")
	if _, err := dt([]uint32{0}); err == nil {
		t.Fatal("trap not surfaced through Direct")
	}
	if v, err := dt([]uint32{1}); err != nil || v != 1 {
		t.Fatalf("post-trap direct call = %d, %v", v, err)
	}
}

func TestMustCompilePanicsOnBadMemoryBinding(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	// Force a compile error by corrupting the checked program: a Call
	// node with an out-of-range builtin sneaks past only via hand-built
	// AST, so instead use a nil program path — simplest is an unchecked
	// program with unresolved slots, which panics inside codegen when
	// invoked. MustCompile itself only fails on codegen errors, so build
	// one directly:
	badProg := &gel.Program{Funcs: []*gel.FuncDecl{{
		Name: "f", Body: &gel.Block{Stmts: []gel.Stmt{&gel.ExprStmt{X: &gel.Call{Name: "x", Builtin: gel.BuiltinID(99)}}}},
	}}}
	MustCompile(badProg, mem.New(1<<12), mem.Config{})
}

func TestUnsafeWildLoadIsBackstopped(t *testing.T) {
	p := MustCompile(gel.MustParse(`func main(a) { return ld8(a) + ld32(a); }`),
		mem.New(1<<12), mem.Config{})
	if _, err := p.Invoke("main", 1<<28); err == nil {
		t.Fatal("wild load did not fault")
	}
}

func TestSandboxReadProtectLd8(t *testing.T) {
	m := mem.New(1 << 12)
	m.St8U(5, 99)
	p := MustCompile(gel.MustParse(`func main(a) { return ld8(a); }`),
		m, mem.Config{Policy: mem.PolicySandbox, ReadProtect: true})
	// Address 4096+5 masks to 5.
	if v, err := p.Invoke("main", 4101); err != nil || v != 99 {
		t.Fatalf("masked ld8 = %d, %v", v, err)
	}
}
