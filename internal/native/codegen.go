package native

import (
	"fmt"
	"math/bits"

	"graftlab/internal/gel"
	"graftlab/internal/mem"
)

// codegen lowers one function body to closures. The memory policy is
// resolved here, once, so the emitted closures contain exactly the checks
// the technology pays for and nothing else.
type codegen struct {
	p *Prog
}

func (c *codegen) block(b *gel.Block) (stmtFn, error) {
	stmts := make([]stmtFn, 0, len(b.Stmts))
	for _, s := range b.Stmts {
		fn, err := c.stmt(s)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, fn)
	}
	switch len(stmts) {
	case 0:
		return func(*frame) ctl { return ctlNext }, nil
	case 1:
		return stmts[0], nil
	case 2:
		s0, s1 := stmts[0], stmts[1]
		return func(fr *frame) ctl {
			if c := s0(fr); c != ctlNext {
				return c
			}
			return s1(fr)
		}, nil
	default:
		return func(fr *frame) ctl {
			for _, s := range stmts {
				if c := s(fr); c != ctlNext {
					return c
				}
			}
			return ctlNext
		}, nil
	}
}

func (c *codegen) stmt(s gel.Stmt) (stmtFn, error) {
	switch st := s.(type) {
	case *gel.Block:
		return c.block(st)
	case *gel.VarDecl:
		init, err := c.expr(st.Init)
		if err != nil {
			return nil, err
		}
		slot := st.Slot
		return func(fr *frame) ctl {
			fr.locals[slot] = init(fr)
			return ctlNext
		}, nil
	case *gel.Assign:
		val, err := c.expr(st.Val)
		if err != nil {
			return nil, err
		}
		slot := st.Slot
		return func(fr *frame) ctl {
			fr.locals[slot] = val(fr)
			return ctlNext
		}, nil
	case *gel.If:
		cond, err := c.expr(st.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.block(st.Then)
		if err != nil {
			return nil, err
		}
		if st.Else == nil {
			return func(fr *frame) ctl {
				if cond(fr) != 0 {
					return then(fr)
				}
				return ctlNext
			}, nil
		}
		els, err := c.stmt(st.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) ctl {
			if cond(fr) != 0 {
				return then(fr)
			}
			return els(fr)
		}, nil
	case *gel.While:
		cond, err := c.expr(st.Cond)
		if err != nil {
			return nil, err
		}
		body, err := c.block(st.Body)
		if err != nil {
			return nil, err
		}
		p := c.p
		return func(fr *frame) ctl {
			for cond(fr) != 0 {
				p.burn()
				switch body(fr) {
				case ctlBreak:
					return ctlNext
				case ctlReturn:
					return ctlReturn
				}
			}
			return ctlNext
		}, nil
	case *gel.Break:
		return func(*frame) ctl { return ctlBreak }, nil
	case *gel.Continue:
		return func(*frame) ctl { return ctlContinue }, nil
	case *gel.Return:
		if st.Val == nil {
			return func(fr *frame) ctl {
				fr.ret = 0
				return ctlReturn
			}, nil
		}
		val, err := c.expr(st.Val)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) ctl {
			fr.ret = val(fr)
			return ctlReturn
		}, nil
	case *gel.ExprStmt:
		x, err := c.expr(st.X)
		if err != nil {
			return nil, err
		}
		return func(fr *frame) ctl {
			x(fr)
			return ctlNext
		}, nil
	}
	return nil, fmt.Errorf("native: %s: unknown statement %T", s.Position(), s)
}

func (c *codegen) expr(e gel.Expr) (exprFn, error) {
	switch ex := e.(type) {
	case *gel.NumberLit:
		v := ex.Val
		return func(*frame) uint32 { return v }, nil
	case *gel.VarRef:
		slot := ex.Slot
		return func(fr *frame) uint32 { return fr.locals[slot] }, nil
	case *gel.Unary:
		x, err := c.expr(ex.X)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case gel.UNeg:
			return func(fr *frame) uint32 { return -x(fr) }, nil
		case gel.UNot:
			return func(fr *frame) uint32 {
				if x(fr) == 0 {
					return 1
				}
				return 0
			}, nil
		case gel.UCpl:
			return func(fr *frame) uint32 { return ^x(fr) }, nil
		}
		return nil, fmt.Errorf("native: %s: unknown unary op", ex.Pos)
	case *gel.Binary:
		x, err := c.expr(ex.X)
		if err != nil {
			return nil, err
		}
		y, err := c.expr(ex.Y)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case gel.BAdd:
			return func(fr *frame) uint32 { return x(fr) + y(fr) }, nil
		case gel.BSub:
			return func(fr *frame) uint32 { return x(fr) - y(fr) }, nil
		case gel.BMul:
			return func(fr *frame) uint32 { return x(fr) * y(fr) }, nil
		case gel.BDiv:
			return func(fr *frame) uint32 {
				d := y(fr)
				if d == 0 {
					mem.Throw(mem.TrapDivZero, 0)
				}
				return x(fr) / d
			}, nil
		case gel.BRem:
			return func(fr *frame) uint32 {
				d := y(fr)
				if d == 0 {
					mem.Throw(mem.TrapDivZero, 0)
				}
				return x(fr) % d
			}, nil
		case gel.BAnd:
			return func(fr *frame) uint32 { return x(fr) & y(fr) }, nil
		case gel.BOr:
			return func(fr *frame) uint32 { return x(fr) | y(fr) }, nil
		case gel.BXor:
			return func(fr *frame) uint32 { return x(fr) ^ y(fr) }, nil
		case gel.BShl:
			return func(fr *frame) uint32 { return x(fr) << (y(fr) & 31) }, nil
		case gel.BShr:
			return func(fr *frame) uint32 { return x(fr) >> (y(fr) & 31) }, nil
		case gel.BEq:
			return func(fr *frame) uint32 { return b2u(x(fr) == y(fr)) }, nil
		case gel.BNe:
			return func(fr *frame) uint32 { return b2u(x(fr) != y(fr)) }, nil
		case gel.BLt:
			return func(fr *frame) uint32 { return b2u(x(fr) < y(fr)) }, nil
		case gel.BLe:
			return func(fr *frame) uint32 { return b2u(x(fr) <= y(fr)) }, nil
		case gel.BGt:
			return func(fr *frame) uint32 { return b2u(x(fr) > y(fr)) }, nil
		case gel.BGe:
			return func(fr *frame) uint32 { return b2u(x(fr) >= y(fr)) }, nil
		case gel.BLAnd:
			return func(fr *frame) uint32 {
				if x(fr) == 0 {
					return 0
				}
				return b2u(y(fr) != 0)
			}, nil
		case gel.BLOr:
			return func(fr *frame) uint32 {
				if x(fr) != 0 {
					return 1
				}
				return b2u(y(fr) != 0)
			}, nil
		}
		return nil, fmt.Errorf("native: %s: unknown binary op %s", ex.Pos, ex.Op)
	case *gel.Call:
		args := make([]exprFn, len(ex.Args))
		for i, a := range ex.Args {
			fn, err := c.expr(a)
			if err != nil {
				return nil, err
			}
			args[i] = fn
		}
		if ex.Builtin != gel.NotBuiltin {
			return c.builtin(ex, args)
		}
		p := c.p
		idx := ex.FuncIdx
		switch len(args) {
		case 0:
			return func(fr *frame) uint32 {
				p.burn()
				return p.call(idx, nil)
			}, nil
		case 1:
			a0 := args[0]
			return func(fr *frame) uint32 {
				p.burn()
				var buf [1]uint32
				buf[0] = a0(fr)
				return p.call(idx, buf[:])
			}, nil
		case 2:
			a0, a1 := args[0], args[1]
			return func(fr *frame) uint32 {
				p.burn()
				var buf [2]uint32
				buf[0] = a0(fr)
				buf[1] = a1(fr)
				return p.call(idx, buf[:])
			}, nil
		default:
			return func(fr *frame) uint32 {
				p.burn()
				buf := make([]uint32, len(args))
				for i, a := range args {
					buf[i] = a(fr)
				}
				return p.call(idx, buf)
			}, nil
		}
	}
	return nil, fmt.Errorf("native: %s: unknown expression %T", e.Position(), e)
}

// builtin emits the policy-specialized closures for memory and intrinsic
// builtins. This is where the three compiled technologies diverge.
func (c *codegen) builtin(ex *gel.Call, args []exprFn) (exprFn, error) {
	p := c.p
	m := p.mem
	data := m.Data
	mask := m.Mask()
	size := uint32(len(data))

	if f := m.Faults(); f != nil {
		switch ex.Builtin {
		case gel.BILd32, gel.BILd8, gel.BISt32, gel.BISt8:
			return c.faultBuiltin(ex, args, f)
		}
	}

	switch ex.Builtin {
	case gel.BILd32:
		addr := args[0]
		switch {
		case p.cfg.Policy == mem.PolicyChecked && p.cfg.NilCheck:
			return func(fr *frame) uint32 {
				a := addr(fr)
				if a < mem.NilPageSize {
					mem.Throw(mem.TrapNilDeref, a)
				}
				if a > size-4 || size < 4 {
					mem.Throw(mem.TrapOOBLoad, a)
				}
				return le32(data, a)
			}, nil
		case p.cfg.Policy == mem.PolicyChecked:
			return func(fr *frame) uint32 {
				a := addr(fr)
				if a > size-4 || size < 4 {
					mem.Throw(mem.TrapOOBLoad, a)
				}
				return le32(data, a)
			}, nil
		case p.cfg.Policy == mem.PolicySandbox && p.cfg.ReadProtect:
			return func(fr *frame) uint32 {
				a := addr(fr) & mask &^ 3
				return le32(data, a)
			}, nil
		default: // unsafe, or sandbox without read protection
			return func(fr *frame) uint32 {
				a := addr(fr)
				if a > size-4 || size < 4 {
					mem.Throw(mem.TrapOOBLoad, a) // crash backstop
				}
				return le32(data, a)
			}, nil
		}
	case gel.BILd8:
		addr := args[0]
		switch {
		case p.cfg.Policy == mem.PolicyChecked && p.cfg.NilCheck:
			return func(fr *frame) uint32 {
				a := addr(fr)
				if a < mem.NilPageSize {
					mem.Throw(mem.TrapNilDeref, a)
				}
				if a >= size {
					mem.Throw(mem.TrapOOBLoad, a)
				}
				return uint32(data[a])
			}, nil
		case p.cfg.Policy == mem.PolicyChecked:
			return func(fr *frame) uint32 {
				a := addr(fr)
				if a >= size {
					mem.Throw(mem.TrapOOBLoad, a)
				}
				return uint32(data[a])
			}, nil
		case p.cfg.Policy == mem.PolicySandbox && p.cfg.ReadProtect:
			return func(fr *frame) uint32 { return uint32(data[addr(fr)&mask]) }, nil
		default:
			return func(fr *frame) uint32 {
				a := addr(fr)
				if a >= size {
					mem.Throw(mem.TrapOOBLoad, a)
				}
				return uint32(data[a])
			}, nil
		}
	case gel.BISt32:
		addr, val := args[0], args[1]
		switch p.cfg.Policy {
		case mem.PolicyChecked:
			nilCheck := p.cfg.NilCheck
			if nilCheck {
				return func(fr *frame) uint32 {
					a := addr(fr)
					v := val(fr)
					if a < mem.NilPageSize {
						mem.Throw(mem.TrapNilDeref, a)
					}
					if a > size-4 || size < 4 {
						mem.Throw(mem.TrapOOBStore, a)
					}
					st32(data, a, v)
					return 0
				}, nil
			}
			return func(fr *frame) uint32 {
				a := addr(fr)
				v := val(fr)
				if a > size-4 || size < 4 {
					mem.Throw(mem.TrapOOBStore, a)
				}
				st32(data, a, v)
				return 0
			}, nil
		case mem.PolicySandbox:
			return func(fr *frame) uint32 {
				a := addr(fr) & mask &^ 3
				v := val(fr)
				st32(data, a, v)
				return 0
			}, nil
		default:
			return func(fr *frame) uint32 {
				a := addr(fr)
				v := val(fr)
				if a > size-4 || size < 4 {
					mem.Throw(mem.TrapOOBStore, a)
				}
				st32(data, a, v)
				return 0
			}, nil
		}
	case gel.BISt8:
		addr, val := args[0], args[1]
		switch p.cfg.Policy {
		case mem.PolicyChecked:
			nilCheck := p.cfg.NilCheck
			if nilCheck {
				return func(fr *frame) uint32 {
					a := addr(fr)
					v := val(fr)
					if a < mem.NilPageSize {
						mem.Throw(mem.TrapNilDeref, a)
					}
					if a >= size {
						mem.Throw(mem.TrapOOBStore, a)
					}
					data[a] = byte(v)
					return 0
				}, nil
			}
			return func(fr *frame) uint32 {
				a := addr(fr)
				v := val(fr)
				if a >= size {
					mem.Throw(mem.TrapOOBStore, a)
				}
				data[a] = byte(v)
				return 0
			}, nil
		case mem.PolicySandbox:
			return func(fr *frame) uint32 {
				a := addr(fr) & mask
				data[a] = byte(val(fr))
				return 0
			}, nil
		default:
			return func(fr *frame) uint32 {
				a := addr(fr)
				v := val(fr)
				if a >= size {
					mem.Throw(mem.TrapOOBStore, a)
				}
				data[a] = byte(v)
				return 0
			}, nil
		}
	case gel.BIRotl:
		x, n := args[0], args[1]
		return func(fr *frame) uint32 {
			return bits.RotateLeft32(x(fr), int(n(fr)&31))
		}, nil
	case gel.BIRotr:
		x, n := args[0], args[1]
		return func(fr *frame) uint32 {
			return bits.RotateLeft32(x(fr), -int(n(fr)&31))
		}, nil
	case gel.BIMin:
		x, y := args[0], args[1]
		return func(fr *frame) uint32 {
			a, b := x(fr), y(fr)
			if a < b {
				return a
			}
			return b
		}, nil
	case gel.BIMax:
		x, y := args[0], args[1]
		return func(fr *frame) uint32 {
			a, b := x(fr), y(fr)
			if a > b {
				return a
			}
			return b
		}, nil
	case gel.BIMemSize:
		return func(*frame) uint32 { return size }, nil
	case gel.BIAbort:
		code := args[0]
		return func(fr *frame) uint32 {
			panic(&mem.Trap{Kind: mem.TrapAbort, Code: code(fr)})
		}, nil
	}
	return nil, fmt.Errorf("native: %s: unknown builtin %q", ex.Pos, ex.Name)
}

// faultBuiltin emits the memory closures used when a mem.FaultPlan is
// armed: operands are evaluated, the plan is consulted with the unmasked
// address, and only then does the policy run — the same order every other
// engine uses, so the Nth access is the same access everywhere. Fault
// arming is a conformance-test mode, so these closures trade builtin()'s
// compile-time policy specialization for one generic shape per operation.
func (c *codegen) faultBuiltin(ex *gel.Call, args []exprFn, f *mem.FaultPlan) (exprFn, error) {
	m := c.p.mem
	cfg := c.p.cfg
	switch ex.Builtin {
	case gel.BILd32:
		addr := args[0]
		return func(fr *frame) uint32 {
			a := addr(fr)
			if t := f.Check(false, a); t != nil {
				panic(t)
			}
			switch {
			case cfg.Policy == mem.PolicyChecked:
				m.CheckLoad(a, 4, cfg.NilCheck)
			case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
				a = m.SandboxWord(a)
			default:
				m.CheckLoad(a, 4, false) // crash backstop
			}
			return m.Ld32U(a)
		}, nil
	case gel.BILd8:
		addr := args[0]
		return func(fr *frame) uint32 {
			a := addr(fr)
			if t := f.Check(false, a); t != nil {
				panic(t)
			}
			switch {
			case cfg.Policy == mem.PolicyChecked:
				m.CheckLoad(a, 1, cfg.NilCheck)
			case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
				a = m.Sandbox(a)
			default:
				m.CheckLoad(a, 1, false)
			}
			return m.Ld8U(a)
		}, nil
	case gel.BISt32:
		addr, val := args[0], args[1]
		return func(fr *frame) uint32 {
			a := addr(fr)
			v := val(fr)
			if t := f.Check(true, a); t != nil {
				panic(t)
			}
			switch cfg.Policy {
			case mem.PolicyChecked:
				m.CheckStore(a, 4, cfg.NilCheck)
			case mem.PolicySandbox:
				a = m.SandboxWord(a)
			default:
				m.CheckStore(a, 4, false)
			}
			m.St32U(a, v)
			return 0
		}, nil
	case gel.BISt8:
		addr, val := args[0], args[1]
		return func(fr *frame) uint32 {
			a := addr(fr)
			v := val(fr)
			if t := f.Check(true, a); t != nil {
				panic(t)
			}
			switch cfg.Policy {
			case mem.PolicyChecked:
				m.CheckStore(a, 1, cfg.NilCheck)
			case mem.PolicySandbox:
				a = m.Sandbox(a)
			default:
				m.CheckStore(a, 1, false)
			}
			m.St8U(a, v)
			return 0
		}, nil
	}
	return nil, fmt.Errorf("native: %s: builtin %q is not a memory op", ex.Pos, ex.Name)
}

func le32(data []byte, a uint32) uint32 {
	d := data[a : a+4 : a+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

func st32(data []byte, a, v uint32) {
	d := data[a : a+4 : a+4]
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	d[2] = byte(v >> 16)
	d[3] = byte(v >> 24)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
