// Package native compiles checked GEL programs to closure-threaded Go
// code: every AST node becomes a Go closure, so a graft executes as a tree
// of direct calls with no per-instruction dispatch. This is the repo's
// "compiled" technology class, standing in for three of the paper's
// technologies depending on the memory policy baked in at compile time:
//
//   - mem.PolicyUnsafe:  unsafe C linked into the kernel (no extra checks)
//   - mem.PolicyChecked: Modula-3 (bounds checks; optional explicit NIL
//     checks, reproducing the paper's Linux-vs-Solaris compiler split)
//   - mem.PolicySandbox: Omniware-style SFI (store masking; optional load
//     masking, reproducing the "no read protection" beta caveat)
//
// The policy is specialized into the generated closures, so the only
// difference between the three modes at run time is the check instructions
// themselves — exactly the quantity the paper is measuring.
package native

import (
	"fmt"

	"graftlab/internal/gel"
	"graftlab/internal/mem"
)

type ctl int

const (
	ctlNext ctl = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

type frame struct {
	locals []uint32
	ret    uint32
}

type exprFn func(*frame) uint32
type stmtFn func(*frame) ctl

type compiledFunc struct {
	name    string
	nargs   int
	nlocals int
	body    stmtFn
}

// Prog is a natively compiled graft program bound to one linear memory.
// Not safe for concurrent use (kernel hook points serialize invocations).
type Prog struct {
	funcs  []*compiledFunc
	byName map[string]int
	mem    *mem.Memory
	cfg    mem.Config

	// Fuel is the loop-iteration/call budget per Invoke; 0 disables
	// metering. Compiled code checks fuel at loop back-edges and calls,
	// the standard places a preemption-safe compiler inserts them.
	Fuel int64

	fuel  int64
	depth int

	// arena backs frame locals so calls do not allocate.
	arena []uint32
	sp    int
}

// MaxCallDepth bounds graft recursion.
const MaxCallDepth = 256

// Compile lowers prog for execution against m under cfg.
func Compile(p *gel.Program, m *mem.Memory, cfg mem.Config) (*Prog, error) {
	np := &Prog{
		byName: make(map[string]int, len(p.Funcs)),
		mem:    m,
		cfg:    cfg,
		arena:  make([]uint32, 4096),
	}
	// Two passes so calls can reference functions declared later.
	for i, fd := range p.Funcs {
		np.funcs = append(np.funcs, &compiledFunc{
			name:    fd.Name,
			nargs:   len(fd.Params),
			nlocals: fd.NLocals,
		})
		np.byName[fd.Name] = i
	}
	for i, fd := range p.Funcs {
		cc := &codegen{p: np}
		body, err := cc.block(fd.Body)
		if err != nil {
			return nil, err
		}
		np.funcs[i].body = body
	}
	return np, nil
}

// MustCompile compiles a known-good program, panicking on error.
func MustCompile(p *gel.Program, m *mem.Memory, cfg mem.Config) *Prog {
	np, err := Compile(p, m, cfg)
	if err != nil {
		panic(err)
	}
	return np
}

// Memory returns the linear memory the program is bound to.
func (p *Prog) Memory() *mem.Memory { return p.mem }

// Invoke runs the named function. Traps surface as *mem.Trap errors.
func (p *Prog) Invoke(entry string, args ...uint32) (result uint32, err error) {
	idx, ok := p.byName[entry]
	if !ok {
		return 0, fmt.Errorf("native: no function %q", entry)
	}
	f := p.funcs[idx]
	if len(args) != f.nargs {
		return 0, fmt.Errorf("native: %q takes %d args, got %d", entry, f.nargs, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*mem.Trap); ok {
				err = t
				p.sp = 0
				p.depth = 0
				return
			}
			panic(r)
		}
	}()
	p.fuel = p.Fuel
	p.depth = 0
	p.sp = 0
	return p.call(idx, args), nil
}

// Direct returns a pre-resolved entry point (the tech.DirectCaller fast
// path); hook points that invoke a graft in a hot loop use it to skip the
// per-call name lookup.
func (p *Prog) Direct(entry string) (func(args []uint32) (uint32, error), bool) {
	idx, ok := p.byName[entry]
	if !ok {
		return nil, false
	}
	f := p.funcs[idx]
	return func(args []uint32) (result uint32, err error) {
		if len(args) != f.nargs {
			return 0, fmt.Errorf("native: %q takes %d args, got %d", entry, f.nargs, len(args))
		}
		defer func() {
			if r := recover(); r != nil {
				if t, ok := r.(*mem.Trap); ok {
					err = t
					p.sp = 0
					p.depth = 0
					return
				}
				panic(r)
			}
		}()
		p.fuel = p.Fuel
		p.depth = 0
		p.sp = 0
		return p.call(idx, args), nil
	}, true
}

// FuelUsed reports the loop-iteration/call budget consumed by the most
// recent invocation (0 when unmetered — compiled code only burns fuel
// when a budget is set). Must not race a running invocation.
func (p *Prog) FuelUsed() int64 {
	if p.Fuel <= 0 {
		return 0
	}
	used := p.Fuel - p.fuel
	if used > p.Fuel {
		used = p.Fuel // fuel trap leaves the counter at -1
	}
	if used < 0 {
		used = 0
	}
	return used
}

func (p *Prog) call(idx int, args []uint32) uint32 {
	p.depth++
	if p.depth > MaxCallDepth {
		mem.Throw(mem.TrapStackOverflow, 0)
	}
	f := p.funcs[idx]
	base := p.sp
	if base+f.nlocals > len(p.arena) {
		grown := make([]uint32, max(len(p.arena)*2, base+f.nlocals))
		copy(grown, p.arena)
		p.arena = grown
	}
	locals := p.arena[base : base+f.nlocals]
	for i := range locals {
		locals[i] = 0
	}
	copy(locals, args)
	p.sp = base + f.nlocals

	fr := frame{locals: locals}
	f.body(&fr)

	p.sp = base
	p.depth--
	return fr.ret
}

func (p *Prog) burn() {
	if p.Fuel > 0 {
		p.fuel--
		if p.fuel < 0 {
			mem.Throw(mem.TrapFuel, 0)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
