package native

import (
	"errors"
	"testing"

	"graftlab/internal/gel"
	"graftlab/internal/mem"
)

func compileSrc(t *testing.T, src string, cfg mem.Config) *Prog {
	t.Helper()
	prog, err := gel.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	np, err := Compile(prog, mem.New(1<<13), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return np
}

func TestBasicEvaluation(t *testing.T) {
	p := compileSrc(t, `func main(a, b) { return (a + b) * 2; }`, mem.Config{})
	got, err := p.Invoke("main", 3, 4)
	if err != nil || got != 14 {
		t.Fatalf("main = %d, %v", got, err)
	}
}

func TestDeepCallsGrowArena(t *testing.T) {
	// Each frame has many locals, forcing arena growth under recursion.
	src := `
	func f(n) {
		var a = 1; var b = 2; var c = 3; var d = 4;
		var e = 5; var g = 6; var h = 7; var i = 8;
		if (n == 0) { return a + b + c + d + e + g + h + i; }
		return f(n - 1);
	}
	func main() { return f(200); }`
	p := compileSrc(t, src, mem.Config{})
	got, err := p.Invoke("main")
	if err != nil || got != 36 {
		t.Fatalf("main = %d, %v", got, err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	p := compileSrc(t, `func f() { return f(); } func main() { return f(); }`, mem.Config{})
	_, err := p.Invoke("main")
	var trap *mem.Trap
	if !errors.As(err, &trap) || trap.Kind != mem.TrapStackOverflow {
		t.Fatalf("err = %v", err)
	}
	// The arena pointer must be restored after the trap unwinds.
	if p.sp != 0 {
		t.Fatalf("sp = %d after trap", p.sp)
	}
	if got, err := p.Invoke("main"); err == nil {
		t.Fatalf("second call = %d, expected same trap", got)
	}
}

func TestLocalsZeroedBetweenCalls(t *testing.T) {
	// A function that reads an uninitialized-looking local pattern: the
	// compiler guarantees locals start at 0 every call, even though the
	// arena is reused.
	src := `
	func leak(set) {
		var x = 0;
		if (set) { x = 99; }
		return x;
	}
	func main(set) { return leak(set); }`
	p := compileSrc(t, src, mem.Config{})
	if got, _ := p.Invoke("main", 1); got != 99 {
		t.Fatalf("first = %d", got)
	}
	if got, _ := p.Invoke("main", 0); got != 0 {
		t.Fatalf("arena leaked stale local: %d", got)
	}
}

func TestPolicySpecializationCheckedVsSandbox(t *testing.T) {
	src := `func main(a) { st32(a, 7); return ld32(a % 4096 / 4 * 4); }`
	checked := compileSrc(t, src, mem.Config{Policy: mem.PolicyChecked})
	if _, err := checked.Invoke("main", 999999); err == nil {
		t.Error("checked store out of range accepted")
	}
	sandbox := compileSrc(t, src, mem.Config{Policy: mem.PolicySandbox})
	if _, err := sandbox.Invoke("main", 999999); err != nil {
		t.Errorf("sandbox store should be masked, got %v", err)
	}
}

func TestThreeArgCallPath(t *testing.T) {
	src := `
	func g(a, b, c) { return a * 100 + b * 10 + c; }
	func main() { return g(1, 2, 3); }`
	p := compileSrc(t, src, mem.Config{})
	if got, _ := p.Invoke("main"); got != 123 {
		t.Fatalf("got %d", got)
	}
}

func TestFuelChargedAtLoopsAndCalls(t *testing.T) {
	src := `
	func leaf() { return 1; }
	func main(n) {
		var i = 0;
		while (i < n) { i = i + leaf(); }
		return i;
	}`
	p := compileSrc(t, src, mem.Config{})
	p.Fuel = 100
	// 40 iterations: 40 back-edges + 40 calls = 80 fuel < 100: fine.
	if got, err := p.Invoke("main", 40); err != nil || got != 40 {
		t.Fatalf("within fuel: %d, %v", got, err)
	}
	// 60 iterations: 120 fuel > 100: trap.
	_, err := p.Invoke("main", 60)
	var trap *mem.Trap
	if !errors.As(err, &trap) || trap.Kind != mem.TrapFuel {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeValidation(t *testing.T) {
	p := compileSrc(t, `func main(a) { return a; }`, mem.Config{})
	if _, err := p.Invoke("nope"); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := p.Invoke("main"); err == nil {
		t.Error("wrong arity accepted")
	}
	if p.Memory() == nil {
		t.Error("Memory() nil")
	}
}

func TestLd8St8Policies(t *testing.T) {
	src := `func main(a, v) { st8(a, v); return ld8(a); }`
	for _, cfg := range []mem.Config{
		{Policy: mem.PolicyUnsafe},
		{Policy: mem.PolicyChecked},
		{Policy: mem.PolicyChecked, NilCheck: true},
		{Policy: mem.PolicySandbox},
		{Policy: mem.PolicySandbox, ReadProtect: true},
	} {
		p := compileSrc(t, src, cfg)
		got, err := p.Invoke("main", 4200, 200)
		if err != nil || got != 200 {
			t.Errorf("%+v: got %d, %v", cfg, got, err)
		}
	}
}
