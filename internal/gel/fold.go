package gel

import "math/bits"

// Fold performs constant folding on a checked program, in place:
// arithmetic over literals is evaluated at compile time with the same
// wrapping/trapping semantics the back ends implement (division by a
// literal zero is left in place so it still traps at run time), and
// branches with constant conditions are pruned. Fold never changes
// observable behaviour — the differential tests run folded and unfolded
// programs side by side.
func Fold(p *Program) {
	for _, fd := range p.Funcs {
		fd.Body = foldBlock(fd.Body)
	}
}

func foldBlock(b *Block) *Block {
	out := make([]Stmt, 0, len(b.Stmts))
	for _, s := range b.Stmts {
		fs := foldStmt(s)
		if fs != nil {
			out = append(out, fs)
		}
	}
	b.Stmts = out
	return b
}

// foldStmt returns the folded statement, or nil if it can be dropped.
func foldStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *Block:
		return foldBlock(st)
	case *VarDecl:
		st.Init = foldExpr(st.Init)
		return st
	case *Assign:
		st.Val = foldExpr(st.Val)
		return st
	case *If:
		st.Cond = foldExpr(st.Cond)
		st.Then = foldBlock(st.Then)
		if st.Else != nil {
			st.Else = foldStmt(st.Else)
		}
		if n, ok := st.Cond.(*NumberLit); ok {
			if n.Val != 0 {
				return st.Then
			}
			if st.Else == nil {
				return nil
			}
			return st.Else
		}
		return st
	case *While:
		st.Cond = foldExpr(st.Cond)
		st.Body = foldBlock(st.Body)
		if n, ok := st.Cond.(*NumberLit); ok && n.Val == 0 {
			return nil // while(0) never runs
		}
		return st
	case *Return:
		if st.Val != nil {
			st.Val = foldExpr(st.Val)
		}
		return st
	case *ExprStmt:
		st.X = foldExpr(st.X)
		// A pure constant as a statement has no effect.
		if _, ok := st.X.(*NumberLit); ok {
			return nil
		}
		return st
	default:
		return s
	}
}

func foldExpr(e Expr) Expr {
	switch ex := e.(type) {
	case *Unary:
		ex.X = foldExpr(ex.X)
		if n, ok := ex.X.(*NumberLit); ok {
			switch ex.Op {
			case UNeg:
				return &NumberLit{Val: -n.Val, Pos: ex.Pos}
			case UNot:
				return &NumberLit{Val: b2uFold(n.Val == 0), Pos: ex.Pos}
			case UCpl:
				return &NumberLit{Val: ^n.Val, Pos: ex.Pos}
			}
		}
		return ex
	case *Binary:
		ex.X = foldExpr(ex.X)
		ex.Y = foldExpr(ex.Y)
		x, xok := ex.X.(*NumberLit)
		y, yok := ex.Y.(*NumberLit)
		// Short-circuit operators fold safely when the left side decides.
		if xok && ex.Op == BLAnd && x.Val == 0 {
			return &NumberLit{Val: 0, Pos: ex.Pos}
		}
		if xok && ex.Op == BLOr && x.Val != 0 {
			return &NumberLit{Val: 1, Pos: ex.Pos}
		}
		if !xok || !yok {
			return ex
		}
		var v uint32
		switch ex.Op {
		case BAdd:
			v = x.Val + y.Val
		case BSub:
			v = x.Val - y.Val
		case BMul:
			v = x.Val * y.Val
		case BDiv, BRem:
			if y.Val == 0 {
				return ex // keep the runtime trap
			}
			if ex.Op == BDiv {
				v = x.Val / y.Val
			} else {
				v = x.Val % y.Val
			}
		case BAnd:
			v = x.Val & y.Val
		case BOr:
			v = x.Val | y.Val
		case BXor:
			v = x.Val ^ y.Val
		case BShl:
			v = x.Val << (y.Val & 31)
		case BShr:
			v = x.Val >> (y.Val & 31)
		case BEq:
			v = b2uFold(x.Val == y.Val)
		case BNe:
			v = b2uFold(x.Val != y.Val)
		case BLt:
			v = b2uFold(x.Val < y.Val)
		case BLe:
			v = b2uFold(x.Val <= y.Val)
		case BGt:
			v = b2uFold(x.Val > y.Val)
		case BGe:
			v = b2uFold(x.Val >= y.Val)
		case BLAnd:
			v = b2uFold(x.Val != 0 && y.Val != 0)
		case BLOr:
			v = b2uFold(x.Val != 0 || y.Val != 0)
		default:
			return ex
		}
		return &NumberLit{Val: v, Pos: ex.Pos}
	case *Call:
		for i, a := range ex.Args {
			ex.Args[i] = foldExpr(a)
		}
		// Pure builtins over constants fold; memory and abort do not.
		if len(ex.Args) == 2 {
			x, xok := ex.Args[0].(*NumberLit)
			y, yok := ex.Args[1].(*NumberLit)
			if xok && yok {
				switch ex.Builtin {
				case BIRotl:
					return &NumberLit{Val: bits.RotateLeft32(x.Val, int(y.Val&31)), Pos: ex.Pos}
				case BIRotr:
					return &NumberLit{Val: bits.RotateLeft32(x.Val, -int(y.Val&31)), Pos: ex.Pos}
				case BIMin:
					return &NumberLit{Val: minU(x.Val, y.Val), Pos: ex.Pos}
				case BIMax:
					return &NumberLit{Val: maxU(x.Val, y.Val), Pos: ex.Pos}
				}
			}
		}
		return ex
	default:
		return e
	}
}

func b2uFold(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func minU(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
