package gel

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// stripPositions zeroes Pos fields so structural comparison ignores
// layout differences between original and round-tripped sources.
func stripPositions(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr:
		if !v.IsNil() {
			stripPositions(v.Elem())
		}
	case reflect.Interface:
		if !v.IsNil() {
			stripPositions(v.Elem())
		}
	case reflect.Struct:
		if v.Type() == reflect.TypeOf(Pos{}) {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() || v.Field(i).Kind() == reflect.Ptr ||
				v.Field(i).Kind() == reflect.Slice || v.Field(i).Kind() == reflect.Interface ||
				v.Field(i).Kind() == reflect.Struct {
				stripPositions(v.Field(i))
			}
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			stripPositions(v.Index(i))
		}
	case reflect.Map:
		// ByName maps are rebuilt identically; skip.
	}
}

func normalize(p *Program) *Program {
	p.Source = ""
	stripPositions(reflect.ValueOf(p))
	return p
}

func TestPrintRoundTripFixed(t *testing.T) {
	sources := []string{
		`func main() { return 1 + 2 * 3; }`,
		`func main(a, b) { return (a + b) * (a - b); }`,
		`func main(a) {
			var x = 0;
			while (a > 0) { x = x + a; a = a - 1; if (x > 100) { break; } }
			return x;
		}`,
		`func f(n) { if (n == 0) { return 1; } else if (n == 1) { return 2; } else { return f(n - 1); } }
		 func main() { return f(5); }`,
		`func main(a) { return !a && ~a || -a; }`,
		`func main() { st32(0x1000, rotl(5, 2)); return ld32(0x1000); }`,
		`func main(a) { return a << 2 >> 1 ^ a & 3 | 7; }`,
		`func main() { { var x = 1; x = x; } return 0; }`,
	}
	for _, src := range sources {
		p1, err := ParseAndCheck(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		printed := Print(p1)
		p2, err := ParseAndCheck(printed)
		if err != nil {
			t.Fatalf("reparse: %v\noriginal:\n%s\nprinted:\n%s", err, src, printed)
		}
		if !reflect.DeepEqual(normalize(p1), normalize(p2)) {
			t.Errorf("round trip changed the AST\noriginal:\n%s\nprinted:\n%s", src, printed)
		}
	}
}

// TestPrintRoundTripRandom is the property test: print∘parse is identity
// on random programs.
func TestPrintRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		src := randomPrintable(rng)
		p1, err := ParseAndCheck(src)
		if err != nil {
			t.Fatalf("case %d: parse: %v\n%s", i, err, src)
		}
		printed := Print(p1)
		p2, err := ParseAndCheck(printed)
		if err != nil {
			t.Fatalf("case %d: reparse: %v\nprinted:\n%s", i, err, printed)
		}
		if !reflect.DeepEqual(normalize(p1), normalize(p2)) {
			t.Fatalf("case %d: AST changed\noriginal:\n%s\nprinted:\n%s", i, src, printed)
		}
	}
}

func randomPrintable(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("func main(a, b) {\n var x = a;\n")
	for i := 0; i < 4; i++ {
		sb.WriteString(randStmt(rng, 2))
	}
	sb.WriteString(" return x;\n}\n")
	return sb.String()
}

func randStmt(rng *rand.Rand, depth int) string {
	switch r := rng.Intn(6); {
	case r == 0 && depth > 0:
		return fmt.Sprintf(" if (%s) {\n%s } else {\n%s }\n",
			randExpr(rng, depth-1), randStmt(rng, depth-1), randStmt(rng, depth-1))
	case r == 1 && depth > 0:
		return fmt.Sprintf(" while (%s) {\n x = x - 1;\n%s break;\n }\n",
			randExpr(rng, depth-1), randStmt(rng, depth-1))
	case r == 2:
		return fmt.Sprintf(" st32((%s) %% 64 * 4, %s);\n", randExpr(rng, depth), randExpr(rng, depth))
	default:
		return fmt.Sprintf(" x = %s;\n", randExpr(rng, depth))
	}
}

func randExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		return []string{"a", "b", "x", "1", "42", "0xDEAD"}[rng.Intn(6)]
	}
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
		"==", "!=", "<", "<=", ">", ">=", "&&", "||"}
	if rng.Intn(6) == 0 {
		return fmt.Sprintf("%s(%s)", []string{"-", "!", "~"}[rng.Intn(3)], randExpr(rng, depth-1))
	}
	if rng.Intn(8) == 0 {
		return fmt.Sprintf("rotl(%s, %s)", randExpr(rng, depth-1), randExpr(rng, depth-1))
	}
	return fmt.Sprintf("%s %s %s", randExpr(rng, depth-1), ops[rng.Intn(len(ops))], randExpr(rng, depth-1))
}

func TestFoldPreservesSemantics(t *testing.T) {
	// Folding of pure constant programs yields literals.
	p := MustParse(`func main() { return 2 + 3 * 4 - rotl(1, 4) + min(5, 3) + max(1, 2); }`)
	Fold(p)
	ret := p.Func("main").Body.Stmts[0].(*Return)
	n, ok := ret.Val.(*NumberLit)
	if !ok {
		t.Fatalf("not folded: %s", ExprString(ret.Val))
	}
	if want := uint32(2 + 12 - 16 + 3 + 2); n.Val != want {
		t.Fatalf("folded to %d, want %d", n.Val, want)
	}
}

func TestFoldPrunesBranches(t *testing.T) {
	p := MustParse(`func main(a) {
		if (1) { a = a + 1; } else { a = a + 100; }
		if (0) { a = a + 1000; }
		while (0) { a = 0; }
		return a;
	}`)
	Fold(p)
	// After folding: one block (from if(1)), return.
	stmts := p.Func("main").Body.Stmts
	if len(stmts) != 2 {
		t.Fatalf("stmts after fold = %d: %s", len(stmts), Print(p))
	}
}

func TestFoldKeepsRuntimeTraps(t *testing.T) {
	p := MustParse(`func main() { return 1 / 0; }`)
	Fold(p)
	ret := p.Func("main").Body.Stmts[0].(*Return)
	if _, ok := ret.Val.(*NumberLit); ok {
		t.Fatal("division by zero folded away; must trap at run time")
	}
}

func TestFoldShortCircuit(t *testing.T) {
	p := MustParse(`func main(a) { return 0 && abort(1) || 1; }`)
	Fold(p)
	// 0 && abort(1) folds to 0 without touching abort; 0 || 1 needs the
	// right side, which is constant, so the whole thing folds to 1.
	ret := p.Func("main").Body.Stmts[0].(*Return)
	n, ok := ret.Val.(*NumberLit)
	if !ok || n.Val != 1 {
		t.Fatalf("folded to %s", ExprString(ret.Val))
	}
}

func TestPrintHexHeuristic(t *testing.T) {
	s := ExprString(&NumberLit{Val: 0xDEADBEEF})
	if s != "0xdeadbeef" {
		t.Errorf("big literal printed %q", s)
	}
	if got := ExprString(&NumberLit{Val: 42}); got != "42" {
		t.Errorf("small literal printed %q", got)
	}
}
