package gel

import "fmt"

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Kind enumerates token kinds.
type Kind int

const (
	EOF Kind = iota
	IDENT
	NUMBER

	// punctuation and operators
	LPAREN  // (
	RPAREN  // )
	LBRACE  // {
	RBRACE  // }
	COMMA   // ,
	SEMI    // ;
	ASSIGN  // =
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	AMP     // &
	PIPE    // |
	CARET   // ^
	TILDE   // ~
	BANG    // !
	SHL     // <<
	SHR     // >>
	EQ      // ==
	NE      // !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
	LAND    // &&
	LOR     // ||

	// keywords
	KFUNC
	KVAR
	KIF
	KELSE
	KWHILE
	KBREAK
	KCONTINUE
	KRETURN
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", COMMA: ",",
	SEMI: ";", ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", AMP: "&", PIPE: "|", CARET: "^", TILDE: "~", BANG: "!",
	SHL: "<<", SHR: ">>", EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">",
	GE: ">=", LAND: "&&", LOR: "||",
	KFUNC: "func", KVAR: "var", KIF: "if", KELSE: "else", KWHILE: "while",
	KBREAK: "break", KCONTINUE: "continue", KRETURN: "return",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"func": KFUNC, "var": KVAR, "if": KIF, "else": KELSE, "while": KWHILE,
	"break": KBREAK, "continue": KCONTINUE, "return": KRETURN,
}

// Token is a lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // identifier or number text
	Val  uint32 // numeric value for NUMBER
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return t.Text
	default:
		return t.Kind.String()
	}
}
