package gel

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("func f(a, b) { return a + b; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KFUNC, IDENT, LPAREN, IDENT, COMMA, IDENT, RPAREN,
		LBRACE, KRETURN, IDENT, PLUS, IDENT, SEMI, RBRACE, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want uint32
	}{
		{"0", 0},
		{"42", 42},
		{"4294967295", 0xFFFFFFFF},
		{"0x0", 0},
		{"0xdeadBEEF", 0xDEADBEEF},
		{"0xFFFFFFFF", 0xFFFFFFFF},
		{"1_000_000", 1000000},
		{"0xFF_FF", 0xFFFF},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Errorf("Lex(%q): %v", c.src, err)
			continue
		}
		if toks[0].Kind != NUMBER || toks[0].Val != c.want {
			t.Errorf("Lex(%q) = %v (val %d), want NUMBER %d", c.src, toks[0].Kind, toks[0].Val, c.want)
		}
	}
}

func TestLexNumberErrors(t *testing.T) {
	for _, src := range []string{"4294967296", "0x100000000", "0x", "0xZ"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "<< >> <= >= < > == != && || & | ^ ~ ! = + - * / %"
	want := []Kind{SHL, SHR, LE, GE, LT, GT, EQ, NE, LAND, LOR, AMP, PIPE,
		CARET, TILDE, BANG, ASSIGN, PLUS, MINUS, STAR, SLASH, PERCENT, EOF}
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a // line comment\n b /* block\n comment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens %v, want 4", len(toks), toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("token c line = %d, want 3", toks[2].Pos.Line)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("a /* never closed"); err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	for _, src := range []string{"@", "a # b", "`"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb\n    ccc")
	if err != nil {
		t.Fatal(err)
	}
	wantPos := []Pos{{1, 1}, {2, 3}, {3, 5}}
	for i, w := range wantPos {
		if toks[i].Pos != w {
			t.Errorf("token %d pos = %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("func funcs iffy if while whiled")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KFUNC, IDENT, IDENT, KIF, KWHILE, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}
