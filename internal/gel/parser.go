package gel

// Recursive-descent parser. Grammar:
//
//	program  := funcdecl*
//	funcdecl := "func" IDENT "(" [IDENT ("," IDENT)*] ")" block
//	block    := "{" stmt* "}"
//	stmt     := "var" IDENT "=" expr ";"
//	          | IDENT "=" expr ";"
//	          | "if" "(" expr ")" block ["else" (block | if-stmt)]
//	          | "while" "(" expr ")" block
//	          | "break" ";" | "continue" ";"
//	          | "return" [expr] ";"
//	          | expr ";"
//
// Expression precedence, loosest first:
//
//	|| , && , | , ^ , & , (== !=) , (< <= > >=) , (<< >>) , (+ -) ,
//	(* / %) , unary (- ! ~) , primary
type parser struct {
	lex *lexer
	tok Token // current token
}

// Parse lexes and parses src into an unchecked Program.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{ByName: make(map[string]int), Source: src}
	for p.tok.Kind != EOF {
		fd, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		fd.Index = len(prog.Funcs)
		prog.Funcs = append(prog.Funcs, fd)
	}
	return prog, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	return t, nil
}

func (p *parser) accept(k Kind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(KFUNC); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var params []string
	if p.tok.Kind != RPAREN {
		for {
			id, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			params = append(params, id.Text)
			ok, err := p.accept(COMMA)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Body: body, Pos: pos}, nil
}

func (p *parser) block() (*Block, error) {
	pos := p.tok.Pos
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for p.tok.Kind != RBRACE {
		if p.tok.Kind == EOF {
			return nil, errf(p.tok.Pos, "unexpected end of file inside block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, p.advance() // consume }
}

func (p *parser) stmt() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case KVAR:
		if err := p.advance(); err != nil {
			return nil, err
		}
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &VarDecl{Name: id.Text, Slot: -1, Init: init, Pos: pos}, nil
	case KIF:
		return p.ifStmt()
	case KWHILE:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Pos: pos}, nil
	case KBREAK:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Break{Pos: pos}, nil
	case KCONTINUE:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Continue{Pos: pos}, nil
	case KRETURN:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var val Expr
		if p.tok.Kind != SEMI {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = v
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Return{Val: val, Pos: pos}, nil
	case LBRACE:
		return p.block()
	case IDENT:
		// Could be assignment `x = e;` or an expression statement `f(...);`.
		// One token of lookahead after the identifier distinguishes them.
		id := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == ASSIGN {
			if err := p.advance(); err != nil {
				return nil, err
			}
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			return &Assign{Name: id.Text, Slot: -1, Val: val, Pos: pos}, nil
		}
		// Re-enter expression parsing with the identifier already consumed.
		x, err := p.primaryFromIdent(id)
		if err != nil {
			return nil, err
		}
		x, err = p.binaryRHS(x, 0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: pos}, nil
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: pos}, nil
	}
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // consume if
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Pos: pos}
	ok, err := p.accept(KELSE)
	if err != nil {
		return nil, err
	}
	if ok {
		if p.tok.Kind == KIF {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

// binary operator precedence levels; higher binds tighter.
var precedence = map[Kind]int{
	LOR: 1, LAND: 2, PIPE: 3, CARET: 4, AMP: 5,
	EQ: 6, NE: 6,
	LT: 7, LE: 7, GT: 7, GE: 7,
	SHL: 8, SHR: 8,
	PLUS: 9, MINUS: 9,
	STAR: 10, SLASH: 10, PERCENT: 10,
}

var tokToBinOp = map[Kind]BinOp{
	PLUS: BAdd, MINUS: BSub, STAR: BMul, SLASH: BDiv, PERCENT: BRem,
	AMP: BAnd, PIPE: BOr, CARET: BXor, SHL: BShl, SHR: BShr,
	EQ: BEq, NE: BNe, LT: BLt, LE: BLe, GT: BGt, GE: BGe,
	LAND: BLAnd, LOR: BLOr,
}

func (p *parser) expr() (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	return p.binaryRHS(lhs, 0)
}

// binaryRHS implements precedence climbing above an already-parsed lhs.
func (p *parser) binaryRHS(lhs Expr, minPrec int) (Expr, error) {
	for {
		prec, ok := precedence[p.tok.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := tokToBinOp[p.tok.Kind]
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.unary()
		if err != nil {
			return nil, err
		}
		for {
			nextPrec, ok := precedence[p.tok.Kind]
			if !ok || nextPrec <= prec {
				break
			}
			rhs, err = p.binaryRHS(rhs, nextPrec)
			if err != nil {
				return nil, err
			}
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs, Pos: pos}
	}
}

func (p *parser) unary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case MINUS:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: UNeg, X: x, Pos: pos}, nil
	case BANG:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: UNot, X: x, Pos: pos}, nil
	case TILDE:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: UCpl, X: x, Pos: pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch p.tok.Kind {
	case NUMBER:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumberLit{Val: t.Val, Pos: t.Pos}, nil
	case IDENT:
		t := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.primaryFromIdent(t)
	case LPAREN:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(p.tok.Pos, "expected expression, found %s", p.tok)
}

// primaryFromIdent finishes a primary whose leading identifier token has
// already been consumed (call or variable reference).
func (p *parser) primaryFromIdent(id Token) (Expr, error) {
	if p.tok.Kind != LPAREN {
		return &VarRef{Name: id.Text, Slot: -1, Pos: id.Pos}, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	call := &Call{Name: id.Text, FuncIdx: -1, Pos: id.Pos}
	if p.tok.Kind != RPAREN {
		for {
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			ok, err := p.accept(COMMA)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return call, nil
}
