package gel

import (
	"fmt"
	"strconv"
)

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peekByte2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.off
		base := 10
		if c == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
			l.advance()
			l.advance()
			base = 16
			if !isHexDigit(l.peekByte()) {
				return Token{}, errf(pos, "malformed hex literal")
			}
			for l.off < len(l.src) && (isHexDigit(l.peekByte()) || l.peekByte() == '_') {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && (isDigit(l.peekByte()) || l.peekByte() == '_') {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		digits := text
		if base == 16 {
			digits = text[2:]
		}
		v, err := strconv.ParseUint(stripUnderscores(digits), base, 64)
		if err != nil {
			return Token{}, errf(pos, "malformed number %q", text)
		}
		if v > 0xFFFFFFFF {
			return Token{}, errf(pos, "number %q exceeds u32 range", text)
		}
		return Token{Kind: NUMBER, Text: text, Val: uint32(v), Pos: pos}, nil
	}

	l.advance()
	two := func(second byte, yes, no Kind) Token {
		if l.peekByte() == second {
			l.advance()
			return Token{Kind: yes, Pos: pos}
		}
		return Token{Kind: no, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: pos}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: pos}, nil
	case '{':
		return Token{Kind: LBRACE, Pos: pos}, nil
	case '}':
		return Token{Kind: RBRACE, Pos: pos}, nil
	case ',':
		return Token{Kind: COMMA, Pos: pos}, nil
	case ';':
		return Token{Kind: SEMI, Pos: pos}, nil
	case '+':
		return Token{Kind: PLUS, Pos: pos}, nil
	case '-':
		return Token{Kind: MINUS, Pos: pos}, nil
	case '*':
		return Token{Kind: STAR, Pos: pos}, nil
	case '/':
		return Token{Kind: SLASH, Pos: pos}, nil
	case '%':
		return Token{Kind: PERCENT, Pos: pos}, nil
	case '^':
		return Token{Kind: CARET, Pos: pos}, nil
	case '~':
		return Token{Kind: TILDE, Pos: pos}, nil
	case '=':
		return two('=', EQ, ASSIGN), nil
	case '!':
		return two('=', NE, BANG), nil
	case '&':
		return two('&', LAND, AMP), nil
	case '|':
		return two('|', LOR, PIPE), nil
	case '<':
		if l.peekByte() == '<' {
			l.advance()
			return Token{Kind: SHL, Pos: pos}, nil
		}
		return two('=', LE, LT), nil
	case '>':
		if l.peekByte() == '>' {
			l.advance()
			return Token{Kind: SHR, Pos: pos}, nil
		}
		return two('=', GE, GT), nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func stripUnderscores(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '_' {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// Lex tokenizes src completely; used by tests and the CLI.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
