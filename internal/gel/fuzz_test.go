package gel

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the front end garbage: random bytes, random
// token soup, and truncations of valid programs. Errors are expected;
// panics are not — a kernel accepting graft source from applications
// cannot afford a parser crash.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))

	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		ParseAndCheck(src) //nolint:errcheck // errors are fine
	}

	// Random bytes.
	for i := 0; i < 2000; i++ {
		n := rng.Intn(80)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		check(string(b))
	}

	// Token soup: valid lexemes in random order.
	lexemes := []string{
		"func", "var", "if", "else", "while", "break", "continue", "return",
		"main", "x", "ld32", "st32", "42", "0xFF",
		"(", ")", "{", "}", ",", ";", "=", "+", "-", "*", "/", "%",
		"&", "|", "^", "~", "!", "<<", ">>", "==", "!=", "<", "<=", ">",
		">=", "&&", "||",
	}
	for i := 0; i < 2000; i++ {
		var sb strings.Builder
		n := rng.Intn(40)
		for j := 0; j < n; j++ {
			sb.WriteString(lexemes[rng.Intn(len(lexemes))])
			sb.WriteString(" ")
		}
		check(sb.String())
	}

	// Truncations of a valid program.
	valid := `func helper(a) { return a * 2; }
func main(n) {
	var x = 0;
	while (n > 0) {
		if (n % 2 == 0) { x = x + helper(n); } else { x = x - 1; }
		n = n - 1;
	}
	return x ^ rotl(x, 3);
}`
	for i := 0; i < len(valid); i++ {
		check(valid[:i])
	}
}

// FuzzParse is the native-fuzzing version of the hammer above, run
// continuously by `go test -fuzz=FuzzParse`: arbitrary input must never
// panic the front end, and any program that parses and checks must
// survive folding and print back to a form the parser and checker still
// accept. Seeds live in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"func main(a, b) { return a + b; }",
		"func f(n) { if (n == 0) { return 0; } return n + f(n - 1); }",
		"func main(a) { var i = 0; while (i < a) { st32(4096 + i * 4, i); i = i + 1; } return ld32(4096); }",
		"func main() { abort(3); return 0; }",
		"func main(a) { return ~(a) ^ -(a) + !(a); }",
		"func broken(a { return; }",
		"}{!!",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if err := Check(p); err != nil {
			return
		}
		Fold(p)
		out := Print(p)
		if _, err := ParseAndCheck(out); err != nil {
			t.Fatalf("printed program no longer parses and checks: %v\n%s", err, out)
		}
	})
}

// TestFoldNeverPanicsOnRandomPrograms folds whatever the random program
// generator in the tech tests would produce, shaped locally.
func TestFoldNeverPanicsOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		src := randomPrintable(rng)
		p, err := ParseAndCheck(src)
		if err != nil {
			t.Fatalf("generator produced invalid source: %v\n%s", err, src)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Fold panicked: %v\n%s", r, src)
				}
			}()
			Fold(p)
		}()
		// Folded output must still check and print.
		printed := Print(p)
		if _, err := ParseAndCheck(printed); err != nil {
			t.Fatalf("folded program no longer parses: %v\n%s", err, printed)
		}
	}
}
