package gel

// Semantic checking: resolves variable references to local slots with
// block scoping, resolves calls to user functions or builtins, verifies
// arity, and rejects break/continue outside loops. After Check succeeds a
// Program is ready for any back end.

type checker struct {
	prog      *Program
	fn        *FuncDecl
	scopes    []map[string]int
	nextSlot  int
	loopDepth int
}

// Check resolves and validates prog in place.
func Check(prog *Program) error {
	for i, fd := range prog.Funcs {
		if prev, ok := prog.ByName[fd.Name]; ok && prev != i {
			return errf(fd.Pos, "function %q redeclared (first at %s)", fd.Name, prog.Funcs[prev].Pos)
		}
		if _, ok := Builtins[fd.Name]; ok {
			return errf(fd.Pos, "function %q shadows a builtin", fd.Name)
		}
		prog.ByName[fd.Name] = i
	}
	for _, fd := range prog.Funcs {
		c := &checker{prog: prog, fn: fd}
		c.pushScope()
		for _, pname := range fd.Params {
			if _, exists := c.scopes[0][pname]; exists {
				return errf(fd.Pos, "duplicate parameter %q in %q", pname, fd.Name)
			}
			c.scopes[0][pname] = c.nextSlot
			c.nextSlot++
		}
		if err := c.block(fd.Body, false); err != nil {
			return err
		}
		fd.NLocals = c.nextSlot
	}
	return nil
}

// MustParse parses and checks src, panicking on error. For graft sources
// compiled into the binary, where a parse failure is a programming bug.
func MustParse(src string) *Program {
	p, err := ParseAndCheck(src)
	if err != nil {
		panic("gel: " + err.Error())
	}
	return p
}

// ParseAndCheck parses and semantically checks src.
func ParseAndCheck(src string) (*Program, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(p); err != nil {
		return nil, err
	}
	return p, nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]int)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if slot, ok := c.scopes[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

// block checks a block; ownScope is false for function bodies, whose scope
// (holding the parameters) is already open.
func (c *checker) block(b *Block, ownScope bool) error {
	if ownScope {
		c.pushScope()
		defer c.popScope()
	}
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return c.block(st, true)
	case *VarDecl:
		if err := c.expr(st.Init); err != nil {
			return err
		}
		top := c.scopes[len(c.scopes)-1]
		if _, exists := top[st.Name]; exists {
			return errf(st.Pos, "variable %q redeclared in this scope", st.Name)
		}
		st.Slot = c.nextSlot
		c.nextSlot++
		top[st.Name] = st.Slot
		return nil
	case *Assign:
		slot, ok := c.lookup(st.Name)
		if !ok {
			return errf(st.Pos, "assignment to undeclared variable %q", st.Name)
		}
		st.Slot = slot
		return c.expr(st.Val)
	case *If:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		if err := c.block(st.Then, true); err != nil {
			return err
		}
		if st.Else != nil {
			return c.stmt(st.Else)
		}
		return nil
	case *While:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		c.loopDepth++
		err := c.block(st.Body, true)
		c.loopDepth--
		return err
	case *Break:
		if c.loopDepth == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *Continue:
		if c.loopDepth == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *Return:
		if st.Val != nil {
			return c.expr(st.Val)
		}
		return nil
	case *ExprStmt:
		return c.expr(st.X)
	}
	return errf(s.Position(), "unknown statement type")
}

func (c *checker) expr(e Expr) error {
	switch ex := e.(type) {
	case *NumberLit:
		return nil
	case *VarRef:
		slot, ok := c.lookup(ex.Name)
		if !ok {
			return errf(ex.Pos, "undeclared variable %q", ex.Name)
		}
		ex.Slot = slot
		return nil
	case *Unary:
		return c.expr(ex.X)
	case *Binary:
		if err := c.expr(ex.X); err != nil {
			return err
		}
		return c.expr(ex.Y)
	case *Call:
		for _, a := range ex.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		if b, ok := Builtins[ex.Name]; ok {
			if len(ex.Args) != b.Arity {
				return errf(ex.Pos, "builtin %q takes %d argument(s), got %d", ex.Name, b.Arity, len(ex.Args))
			}
			ex.Builtin = b.ID
			return nil
		}
		idx, ok := c.prog.ByName[ex.Name]
		if !ok {
			return errf(ex.Pos, "call to undefined function %q", ex.Name)
		}
		fd := c.prog.Funcs[idx]
		if len(ex.Args) != len(fd.Params) {
			return errf(ex.Pos, "function %q takes %d argument(s), got %d", ex.Name, len(fd.Params), len(ex.Args))
		}
		ex.FuncIdx = idx
		return nil
	}
	return errf(e.Position(), "unknown expression type")
}
