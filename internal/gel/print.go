package gel

import (
	"fmt"
	"strings"
)

// Print renders a program back to canonical GEL source. Printing then
// re-parsing yields a structurally identical AST (tested by the
// round-trip property), which makes Print usable for normalizing graft
// sources, for diagnostics, and as the carrier for AST-level transforms
// such as constant folding.
func Print(p *Program) string {
	var b strings.Builder
	for i, fd := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		printFunc(&b, fd)
	}
	return b.String()
}

func printFunc(b *strings.Builder, fd *FuncDecl) {
	fmt.Fprintf(b, "func %s(%s) ", fd.Name, strings.Join(fd.Params, ", "))
	printBlock(b, fd.Body, 0)
	b.WriteString("\n")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("\t")
	}
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func printStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch st := s.(type) {
	case *Block:
		printBlock(b, st, depth)
		b.WriteString("\n")
	case *VarDecl:
		fmt.Fprintf(b, "var %s = %s;\n", st.Name, ExprString(st.Init))
	case *Assign:
		fmt.Fprintf(b, "%s = %s;\n", st.Name, ExprString(st.Val))
	case *If:
		printIf(b, st, depth)
		b.WriteString("\n")
	case *While:
		fmt.Fprintf(b, "while (%s) ", ExprString(st.Cond))
		printBlock(b, st.Body, depth)
		b.WriteString("\n")
	case *Break:
		b.WriteString("break;\n")
	case *Continue:
		b.WriteString("continue;\n")
	case *Return:
		if st.Val == nil {
			b.WriteString("return;\n")
		} else {
			fmt.Fprintf(b, "return %s;\n", ExprString(st.Val))
		}
	case *ExprStmt:
		fmt.Fprintf(b, "%s;\n", ExprString(st.X))
	default:
		fmt.Fprintf(b, "/* unknown stmt %T */;\n", s)
	}
}

func printIf(b *strings.Builder, st *If, depth int) {
	fmt.Fprintf(b, "if (%s) ", ExprString(st.Cond))
	printBlock(b, st.Then, depth)
	switch els := st.Else.(type) {
	case nil:
	case *If:
		b.WriteString(" else ")
		printIf(b, els, depth)
	case *Block:
		b.WriteString(" else ")
		printBlock(b, els, depth)
	default:
		b.WriteString(" else { /* unknown */ }")
	}
}

// ExprString renders an expression with minimal parentheses (every
// binary subexpression is parenthesized when its operator binds less
// tightly than its parent's, which keeps the output unambiguous without
// re-deriving the whole precedence table in reverse).
func ExprString(e Expr) string {
	var b strings.Builder
	printExpr(&b, e, 0)
	return b.String()
}

// binPrec mirrors the parser's precedence levels.
var binPrec = map[BinOp]int{
	BLOr: 1, BLAnd: 2, BOr: 3, BXor: 4, BAnd: 5,
	BEq: 6, BNe: 6,
	BLt: 7, BLe: 7, BGt: 7, BGe: 7,
	BShl: 8, BShr: 8,
	BAdd: 9, BSub: 9,
	BMul: 10, BDiv: 10, BRem: 10,
}

const unaryPrec = 11

func printExpr(b *strings.Builder, e Expr, parentPrec int) {
	switch ex := e.(type) {
	case *NumberLit:
		if ex.Val >= 1<<16 {
			fmt.Fprintf(b, "0x%x", ex.Val)
		} else {
			fmt.Fprintf(b, "%d", ex.Val)
		}
	case *VarRef:
		b.WriteString(ex.Name)
	case *Unary:
		if parentPrec > unaryPrec {
			b.WriteString("(")
		}
		b.WriteString(ex.Op.String())
		printExpr(b, ex.X, unaryPrec)
		if parentPrec > unaryPrec {
			b.WriteString(")")
		}
	case *Binary:
		prec := binPrec[ex.Op]
		if parentPrec >= prec {
			b.WriteString("(")
		}
		printExpr(b, ex.X, prec-1) // left-assoc: left child may tie
		fmt.Fprintf(b, " %s ", ex.Op)
		printExpr(b, ex.Y, prec) // right child must bind tighter
		if parentPrec >= prec {
			b.WriteString(")")
		}
	case *Call:
		b.WriteString(ex.Name)
		b.WriteString("(")
		for i, a := range ex.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a, 0)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "/* unknown expr %T */", e)
	}
}
