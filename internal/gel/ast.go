package gel

// The GEL abstract syntax tree. All values are unsigned 32-bit words with
// wrapping arithmetic; booleans are 0/1. The checker annotates nodes with
// resolved local slots, function indices and builtin identities so the
// back ends never look names up at run time.

// Program is a checked GEL compilation unit.
type Program struct {
	Funcs []*FuncDecl
	// ByName maps function name to its index in Funcs.
	ByName map[string]int
	// Source is the original text, retained for diagnostics and for
	// technologies that re-process source (the script class).
	Source string
}

// Func returns the declaration of the named function, or nil.
func (p *Program) Func(name string) *FuncDecl {
	if i, ok := p.ByName[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// FuncDecl is one function definition.
type FuncDecl struct {
	Name    string
	Params  []string
	Body    *Block
	Pos     Pos
	NLocals int // total local slots including parameters; set by the checker
	Index   int // position in Program.Funcs
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Position() Pos
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// VarDecl introduces a local: `var x = expr;`.
type VarDecl struct {
	Name string
	Slot int
	Init Expr
	Pos  Pos
}

// Assign writes a local: `x = expr;`.
type Assign struct {
	Name string
	Slot int
	Val  Expr
	Pos  Pos
}

// If is a conditional; Else is nil, *Block, or *If (for else-if chains).
type If struct {
	Cond Expr
	Then *Block
	Else Stmt
	Pos  Pos
}

// While is the only loop form.
type While struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// Break exits the innermost loop.
type Break struct{ Pos Pos }

// Continue re-tests the innermost loop.
type Continue struct{ Pos Pos }

// Return leaves the function; Val may be nil (returns 0).
type Return struct {
	Val Expr
	Pos Pos
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Return) stmtNode()   {}
func (*ExprStmt) stmtNode() {}

func (s *Block) Position() Pos    { return s.Pos }
func (s *VarDecl) Position() Pos  { return s.Pos }
func (s *Assign) Position() Pos   { return s.Pos }
func (s *If) Position() Pos       { return s.Pos }
func (s *While) Position() Pos    { return s.Pos }
func (s *Break) Position() Pos    { return s.Pos }
func (s *Continue) Position() Pos { return s.Pos }
func (s *Return) Position() Pos   { return s.Pos }
func (s *ExprStmt) Position() Pos { return s.Pos }

// NumberLit is a u32 literal.
type NumberLit struct {
	Val uint32
	Pos Pos
}

// VarRef reads a local.
type VarRef struct {
	Name string
	Slot int
	Pos  Pos
}

// UnaryOp enumerates unary operators.
type UnaryOp int

const (
	UNeg UnaryOp = iota // - (two's complement)
	UNot                // ! (logical: 0 -> 1, nonzero -> 0)
	UCpl                // ~ (bitwise complement)
)

func (op UnaryOp) String() string {
	switch op {
	case UNeg:
		return "-"
	case UNot:
		return "!"
	case UCpl:
		return "~"
	}
	return "?"
}

// Unary applies a unary operator.
type Unary struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// BinOp enumerates binary operators. Comparisons are unsigned and yield
// 0/1. Div and Rem trap on zero divisors. LAnd/LOr short-circuit.
type BinOp int

const (
	BAdd BinOp = iota
	BSub
	BMul
	BDiv
	BRem
	BAnd
	BOr
	BXor
	BShl
	BShr
	BEq
	BNe
	BLt
	BLe
	BGt
	BGe
	BLAnd
	BLOr
)

var binOpNames = [...]string{
	BAdd: "+", BSub: "-", BMul: "*", BDiv: "/", BRem: "%", BAnd: "&",
	BOr: "|", BXor: "^", BShl: "<<", BShr: ">>", BEq: "==", BNe: "!=",
	BLt: "<", BLe: "<=", BGt: ">", BGe: ">=", BLAnd: "&&", BLOr: "||",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "?"
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	X, Y Expr
	Pos  Pos
}

// BuiltinID enumerates the host builtins a graft may call.
type BuiltinID int

const (
	NotBuiltin BuiltinID = iota
	BILd32               // ld32(addr) -> u32
	BILd8                // ld8(addr) -> u32
	BISt32               // st32(addr, v) -> 0
	BISt8                // st8(addr, v) -> 0
	BIRotl               // rotl(x, n) -> u32
	BIRotr               // rotr(x, n) -> u32
	BIMin                // min(a, b) -> unsigned min
	BIMax                // max(a, b) -> unsigned max
	BIMemSize            // memsize() -> bytes of linear memory
	BIAbort              // abort(code): traps, never returns
)

// Builtins maps builtin name to (id, arity).
var Builtins = map[string]struct {
	ID    BuiltinID
	Arity int
}{
	"ld32":    {BILd32, 1},
	"ld8":     {BILd8, 1},
	"st32":    {BISt32, 2},
	"st8":     {BISt8, 2},
	"rotl":    {BIRotl, 2},
	"rotr":    {BIRotr, 2},
	"min":     {BIMin, 2},
	"max":     {BIMax, 2},
	"memsize": {BIMemSize, 0},
	"abort":   {BIAbort, 1},
}

// Call invokes a user function or a builtin. Exactly one of Builtin !=
// NotBuiltin or FuncIdx >= 0 holds after checking.
type Call struct {
	Name    string
	Args    []Expr
	Builtin BuiltinID
	FuncIdx int
	Pos     Pos
}

func (*NumberLit) exprNode() {}
func (*VarRef) exprNode()    {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Call) exprNode()      {}

func (e *NumberLit) Position() Pos { return e.Pos }
func (e *VarRef) Position() Pos    { return e.Pos }
func (e *Unary) Position() Pos     { return e.Pos }
func (e *Binary) Position() Pos    { return e.Pos }
func (e *Call) Position() Pos      { return e.Pos }
