package gel

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := ParseAndCheck(src)
	if err != nil {
		t.Fatalf("ParseAndCheck(%q): %v", src, err)
	}
	return p
}

func TestParseEmptyFunc(t *testing.T) {
	p := mustParse(t, "func main() {}")
	if len(p.Funcs) != 1 || p.Funcs[0].Name != "main" {
		t.Fatalf("bad program: %+v", p)
	}
	if p.Func("main") == nil || p.Func("nope") != nil {
		t.Error("Func lookup broken")
	}
}

func TestParseParams(t *testing.T) {
	p := mustParse(t, "func f(a, b, c) { return a; }")
	fd := p.Func("f")
	if len(fd.Params) != 3 {
		t.Fatalf("params = %v", fd.Params)
	}
	if fd.NLocals != 3 {
		t.Errorf("NLocals = %d, want 3", fd.NLocals)
	}
}

func TestParseLocals(t *testing.T) {
	p := mustParse(t, `func f(a) {
		var x = 1;
		if (a) { var y = 2; x = y; }
		while (x) { var z = 3; x = x - z; }
		return x;
	}`)
	fd := p.Func("f")
	// a, x, y, z — block scoping allocates fresh slots, no reuse.
	if fd.NLocals != 4 {
		t.Errorf("NLocals = %d, want 4", fd.NLocals)
	}
}

func TestParseShadowing(t *testing.T) {
	mustParse(t, `func f(x) {
		var y = x;
		if (y) { var x = 2; y = x; }
		return y;
	}`)
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, "func f() { return 1 + 2 * 3; }")
	ret := p.Func("f").Body.Stmts[0].(*Return)
	bin := ret.Val.(*Binary)
	if bin.Op != BAdd {
		t.Fatalf("top op = %s, want +", bin.Op)
	}
	if inner, ok := bin.Y.(*Binary); !ok || inner.Op != BMul {
		t.Fatalf("rhs = %#v, want 2*3", bin.Y)
	}
}

func TestParseLeftAssociativity(t *testing.T) {
	p := mustParse(t, "func f() { return 10 - 3 - 2; }")
	ret := p.Func("f").Body.Stmts[0].(*Return)
	bin := ret.Val.(*Binary)
	if bin.Op != BSub {
		t.Fatalf("top op = %s", bin.Op)
	}
	if inner, ok := bin.X.(*Binary); !ok || inner.Op != BSub {
		t.Fatalf("lhs = %#v, want (10-3)", bin.X)
	}
}

func TestParseElseIfChain(t *testing.T) {
	p := mustParse(t, `func f(a) {
		if (a == 1) { return 10; }
		else if (a == 2) { return 20; }
		else { return 30; }
	}`)
	ifs := p.Func("f").Body.Stmts[0].(*If)
	if _, ok := ifs.Else.(*If); !ok {
		t.Fatalf("else branch = %T, want *If", ifs.Else)
	}
}

func TestParseCallsAndBuiltins(t *testing.T) {
	p := mustParse(t, `
		func helper(a, b) { return a ^ b; }
		func main() { return helper(ld32(0), rotl(5, 2)); }
	`)
	ret := p.Func("main").Body.Stmts[0].(*Return)
	call := ret.Val.(*Call)
	if call.FuncIdx != 0 || call.Builtin != NotBuiltin {
		t.Fatalf("call = %+v", call)
	}
	arg0 := call.Args[0].(*Call)
	if arg0.Builtin != BILd32 {
		t.Fatalf("arg0 builtin = %v", arg0.Builtin)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"func f( { }", "expected"},
		{"func f() { var = 1; }", "expected identifier"},
		{"func f() { return 1 }", "expected ;"},
		{"func f() { if 1 { } }", "expected ("},
		{"func f() { x = 1; }", "undeclared"},
		{"func f() { return y; }", "undeclared"},
		{"func f() { break; }", "break outside loop"},
		{"func f() { continue; }", "continue outside loop"},
		{"func f() { return g(); }", "undefined function"},
		{"func f() {} func f() {}", "redeclared"},
		{"func ld32() {}", "shadows a builtin"},
		{"func f(a, a) {}", "duplicate parameter"},
		{"func f() { var x = 1; var x = 2; }", "redeclared in this scope"},
		{"func f() { return ld32(); }", "takes 1 argument"},
		{"func f() { return rotl(1); }", "takes 2 argument"},
		{"func g(a) {} func f() { return g(); }", "takes 1 argument"},
		{"func f() { return (1; }", "expected )"},
		{"func f() { return 1 +; }", "expected expression"},
		{"xyz", "expected func"},
		{"func f() {", "unexpected end of file"},
	}
	for _, c := range cases {
		_, err := ParseAndCheck(c.src)
		if err == nil {
			t.Errorf("ParseAndCheck(%q): expected error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseAndCheck(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := ParseAndCheck("func f() {\n  return q;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q lacks line 2 position", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad source")
		}
	}()
	MustParse("not a program")
}

func TestParseExprStatementForms(t *testing.T) {
	mustParse(t, `func f() {
		st32(0, 1);
		abort(2);
		1 + 2;
	}`)
}

func TestParseAssignVsExprStmtDisambiguation(t *testing.T) {
	p := mustParse(t, `func g(a) { return a; }
	func f() {
		var x = 0;
		x = g(1);
		g(x);
	}`)
	stmts := p.Func("f").Body.Stmts
	if _, ok := stmts[1].(*Assign); !ok {
		t.Errorf("stmt 1 = %T, want *Assign", stmts[1])
	}
	if _, ok := stmts[2].(*ExprStmt); !ok {
		t.Errorf("stmt 2 = %T, want *ExprStmt", stmts[2])
	}
}

func TestNestedBlocksScope(t *testing.T) {
	_, err := ParseAndCheck(`func f() {
		{ var x = 1; x = 2; }
		return x;
	}`)
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("expected out-of-scope error, got %v", err)
	}
}
