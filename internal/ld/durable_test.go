package ld

import (
	"testing"
	"time"

	"graftlab/internal/disk"
	"graftlab/internal/vclock"
)

const (
	durTestBlocks    = 64 // 4 segments
	durTestBlockSize = 128
)

func durTestDisk() *disk.Disk {
	geo := disk.DefaultGeometry()
	geo.Blocks = DiskBlocks(durTestBlocks)
	geo.BlockSize = durTestBlockSize
	geo.AvgSeek = time.Microsecond
	geo.TrackSeek = time.Microsecond
	geo.HalfRotation = time.Microsecond
	var clk vclock.Clock
	return disk.New(geo, &clk)
}

func durPayload(tag byte) []byte {
	b := make([]byte, durTestBlockSize)
	for i := range b {
		b[i] = tag ^ byte(i)
	}
	return b
}

func TestNewDurableValidates(t *testing.T) {
	dev := durTestDisk()
	if _, err := NewDurable(dev, NewNativeMapper(durTestBlocks), 17); err == nil {
		t.Fatal("non-segment-aligned data region accepted")
	}
	if _, err := NewDurable(dev, NewNativeMapper(durTestBlocks), 0); err == nil {
		t.Fatal("zero data region accepted")
	}
	if _, err := NewDurable(dev, NewNativeMapper(4096), 4096); err == nil {
		t.Fatal("device smaller than data region + summaries accepted")
	}
}

func TestDurableWriteReadRecover(t *testing.T) {
	dev := durTestDisk()
	l, err := NewDurable(dev, NewNativeMapper(durTestBlocks), durTestBlocks)
	if err != nil {
		t.Fatal(err)
	}
	// Two full segments: blocks 0..15 then 16..31, with 3 rewritten in
	// the second segment.
	for i := uint32(0); i < SegmentBlocks; i++ {
		flushed, err := l.Write(i, durPayload(byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		if flushed != (i == SegmentBlocks-1) {
			t.Fatalf("write %d: flushed=%v", i, flushed)
		}
	}
	for i := uint32(0); i < SegmentBlocks; i++ {
		lb := 16 + i
		if i == 7 {
			lb = 3 // remap
		}
		if _, err := l.Write(lb, durPayload(byte(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentFlushes() != 2 {
		t.Fatalf("SegmentFlushes = %d", l.SegmentFlushes())
	}

	// Read through the mapper: remapped block 3 returns its newest data.
	got, err := l.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(durPayload(107)) {
		t.Fatal("remapped block did not return the newest payload")
	}
	if _, err := l.Read(60); err == nil {
		t.Fatal("read of never-written block succeeded")
	}

	// Recovery from the device alone reproduces the same mapping.
	table, segs, err := Recover(dev, durTestBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if segs != 2 {
		t.Fatalf("recovered %d segments", segs)
	}
	if table[3] != 16+7 {
		t.Fatalf("table[3] = %d, want %d", table[3], 16+7)
	}
	if table[0] != 0 || table[15] != 15 {
		t.Fatalf("first segment mappings wrong: table[0]=%d table[15]=%d", table[0], table[15])
	}
	if table[60] != Unmapped {
		t.Fatalf("never-written block mapped to %d", table[60])
	}
}

func TestDurablePartialSegmentIsNotDurable(t *testing.T) {
	dev := durTestDisk()
	l, err := NewDurable(dev, NewNativeMapper(durTestBlocks), durTestBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 10; i++ { // less than a segment
		if _, err := l.Write(i, durPayload(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	table, segs, err := Recover(dev, durTestBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if segs != 0 {
		t.Fatalf("recovered %d segments from an unflushed log", segs)
	}
	for lb, p := range table {
		if p != Unmapped {
			t.Fatalf("unflushed write to %d recovered as durable", lb)
		}
	}
}

func TestRecoverRejectsCorruptSummary(t *testing.T) {
	dev := durTestDisk()
	l, err := NewDurable(dev, NewNativeMapper(durTestBlocks), durTestBlocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 2*SegmentBlocks; i++ {
		if _, err := l.Write(i%durTestBlocks, durPayload(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one byte inside the second segment's summary: the checksum
	// must fail and the prefix scan must stop at one segment.
	sum, err := dev.ReadBlock(durTestBlocks + 1)
	if err != nil {
		t.Fatal(err)
	}
	sum[16] ^= 0xFF
	if _, err := dev.WriteBlocks(durTestBlocks+1, sum); err != nil {
		t.Fatal(err)
	}
	_, segs, err := Recover(dev, durTestBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if segs != 1 {
		t.Fatalf("recovered %d segments past a corrupt summary", segs)
	}
}
