// Package ld implements the Logical Disk of the paper's Black Box graft
// benchmark (§3.3, §5.6), after de Jonge et al. [DEJON93]: a layer between
// the filesystem and the physical disk that accepts writes to logical
// blocks, batches them into physically contiguous segments (converting
// random writes into sequential ones), and maintains the logical→physical
// mapping. The mapping bookkeeping is the black-box function that can be
// delegated to a graft; the Mapper interface is the seam.
//
// As in the paper, the simulation holds all data structures in main
// memory, uses a 1 GB disk with 4 KB blocks and 64 KB (16-block)
// segments, and runs without a cleaner for exactly one disk's worth of
// writes.
package ld

import (
	"fmt"
	"time"

	"graftlab/internal/disk"
	"graftlab/internal/telemetry"
)

// Unmapped marks a logical block with no physical location yet.
const Unmapped = uint32(0xFFFFFFFF)

// SegmentBlocks is the paper's segment size: 64 KB of 4 KB blocks.
const SegmentBlocks = 16

// Mapper is the bookkeeping black box: translate a logical write into a
// physical block (assigning the next slot in the current segment and
// recording the mapping), and translate reads. Implementations are the
// native Go version below and the graft-backed version in package grafts.
type Mapper interface {
	// MapWrite assigns a physical block for a write to lblock and
	// records the mapping. It returns the physical block.
	MapWrite(lblock uint32) (uint32, error)
	// MapRead returns the physical block holding lblock, or Unmapped.
	MapRead(lblock uint32) (uint32, error)
}

// NativeMapper is the in-kernel C-equivalent implementation: an array
// mapping table and a segment fill counter.
type NativeMapper struct {
	table    []uint32
	seg      uint32 // current segment number
	fill     uint32 // blocks used in current segment
	segCount uint32 // total segments on the device
}

// NewNativeMapper builds a mapper for a device of blocks logical blocks.
func NewNativeMapper(blocks uint32) *NativeMapper {
	t := make([]uint32, blocks)
	for i := range t {
		t[i] = Unmapped
	}
	return &NativeMapper{table: t, segCount: blocks / SegmentBlocks}
}

// MapWrite implements Mapper.
func (m *NativeMapper) MapWrite(lblock uint32) (uint32, error) {
	if lblock >= uint32(len(m.table)) {
		return 0, fmt.Errorf("ld: logical block %d out of range %d", lblock, len(m.table))
	}
	if m.seg >= m.segCount {
		return 0, fmt.Errorf("ld: log full after %d segments (no cleaner)", m.segCount)
	}
	p := m.seg*SegmentBlocks + m.fill
	m.table[lblock] = p
	m.fill++
	if m.fill == SegmentBlocks {
		m.fill = 0
		m.seg++
	}
	return p, nil
}

// MapRead implements Mapper.
func (m *NativeMapper) MapRead(lblock uint32) (uint32, error) {
	if lblock >= uint32(len(m.table)) {
		return 0, fmt.Errorf("ld: logical block %d out of range %d", lblock, len(m.table))
	}
	return m.table[lblock], nil
}

// Stats counts logical-disk activity.
type Stats struct {
	Writes       uint64
	Reads        uint64
	SegmentFlush uint64
	MapTime      time.Duration // wall time spent in the Mapper (the graft)
	DiskTime     time.Duration // virtual disk time
}

// LD is the log-structured layer over a simulated disk.
type LD struct {
	dev    *disk.Disk
	mapper Mapper
	fill   uint32 // blocks buffered in the open segment
	seg    uint32 // physical segment the buffer will flush to
	stats  Stats
	timed  bool
}

// New builds a logical disk over dev using mapper. When timed is true,
// Mapper calls are wall-clock timed into Stats.MapTime (the quantity
// Table 6 reports).
func New(dev *disk.Disk, mapper Mapper, timed bool) *LD {
	return &LD{dev: dev, mapper: mapper, timed: timed}
}

// Stats returns a copy of the counters.
func (l *LD) Stats() Stats { return l.stats }

// Write accepts a write to lblock: bookkeeping through the Mapper, then a
// segment flush to the device whenever 16 blocks have accumulated. When
// causal tracing samples this write, the remap call is recorded under a
// "ld:write" root span (with the segment flush as a sibling child).
func (l *LD) Write(lblock uint32) error {
	var p uint32
	var err error
	root := telemetry.RootSpan("ld:write", "ld")
	ms := telemetry.ChildSpan(root.Ctx(), "ld:remap", "ld")
	if l.timed {
		t0 := time.Now()
		p, err = l.mapper.MapWrite(lblock)
		l.stats.MapTime += time.Since(t0)
	} else {
		p, err = l.mapper.MapWrite(lblock)
	}
	if ms.Active() {
		ms.End(uint64(lblock), uint64(p))
	}
	if err != nil {
		if root.Active() {
			root.End(uint64(lblock), 1)
		}
		return err
	}
	l.stats.Writes++
	l.seg = p / SegmentBlocks
	l.fill++
	if l.fill == SegmentBlocks {
		fs := telemetry.ChildSpan(root.Ctx(), "ld:segment-flush", "ld")
		d, err := l.dev.Write(l.seg*SegmentBlocks, SegmentBlocks)
		if err != nil {
			if root.Active() {
				root.End(uint64(lblock), 1)
			}
			return err
		}
		if fs.Active() {
			fs.End(uint64(l.seg), SegmentBlocks)
		}
		l.stats.DiskTime += d
		l.stats.SegmentFlush++
		l.fill = 0
		telemetry.Emit(telemetry.EvLDSegment, uint64(l.seg), uint64(l.seg*SegmentBlocks), SegmentBlocks)
	}
	if root.Active() {
		root.End(uint64(lblock), uint64(p))
	}
	return nil
}

// Read services a read of lblock from its current physical location.
func (l *LD) Read(lblock uint32) error {
	var p uint32
	var err error
	if l.timed {
		t0 := time.Now()
		p, err = l.mapper.MapRead(lblock)
		l.stats.MapTime += time.Since(t0)
	} else {
		p, err = l.mapper.MapRead(lblock)
	}
	if err != nil {
		return err
	}
	if p == Unmapped {
		return fmt.Errorf("ld: read of unwritten logical block %d", lblock)
	}
	d, err := l.dev.Read(p, 1)
	if err != nil {
		return err
	}
	l.stats.DiskTime += d
	l.stats.Reads++
	return nil
}

// DirectWrite is the baseline without the logical-disk layer: every write
// goes to its logical address, paying the random-access cost. The paper's
// break-even test compares this against LD.Write plus mapping overhead.
func DirectWrite(dev *disk.Disk, lblock uint32) (time.Duration, error) {
	return dev.Write(lblock, 1)
}
