// Durable variant of the Logical Disk segment writer, for the
// crash-consistency tests. The base LD in ld.go is timing-only, which is
// what the Table 6 benchmark measures; DurableLD additionally persists
// block payloads and a per-segment summary block so the logical→physical
// map can be rebuilt after a crash, in the LFS/Logical-Disk tradition
// [DEJON93]: data blocks first, then a checksummed summary whose
// checksum sits in the *last* word of the block, so a torn summary write
// (a persisted prefix) can never validate.
//
// Recovery is a prefix scan: segments were filled in order with no
// cleaner, so the first missing or invalid summary ends the log. A
// mapping is durable exactly when its segment's summary is on disk —
// the commit point the crash-consistency property checks against.
package ld

import (
	"encoding/binary"
	"fmt"

	"graftlab/internal/disk"
)

// summaryMagic marks a segment summary block.
const summaryMagic = uint32(0x5D5E61A7) // "LD segment", squinting

// DiskBlocks returns the total device size (data region + one summary
// block per segment) needed for a durable log of dataBlocks blocks.
func DiskBlocks(dataBlocks uint32) uint32 {
	return dataBlocks + dataBlocks/SegmentBlocks
}

// DurableLD is the segment writer with payloads and summaries. It shares
// the Mapper seam with LD, so the bookkeeping black box can be the
// native table or any graft-backed implementation.
type DurableLD struct {
	dev        *disk.Disk
	mapper     Mapper
	dataBlocks uint32
	blockSize  uint32
	seg        uint32 // segment the open buffer will flush to
	fill       uint32
	buf        []byte   // pending payloads, fill blocks
	lblocks    []uint32 // pending logical block numbers
	flushes    uint64
}

// NewDurable builds a durable logical disk over dev whose data region is
// dataBlocks blocks (a multiple of SegmentBlocks). The device must have
// at least DiskBlocks(dataBlocks) blocks; the summary region begins at
// block dataBlocks.
func NewDurable(dev *disk.Disk, mapper Mapper, dataBlocks uint32) (*DurableLD, error) {
	geo := dev.Geometry()
	if dataBlocks == 0 || dataBlocks%SegmentBlocks != 0 {
		return nil, fmt.Errorf("ld: data region %d blocks is not whole segments", dataBlocks)
	}
	if geo.Blocks < DiskBlocks(dataBlocks) {
		return nil, fmt.Errorf("ld: device of %d blocks too small for %d data blocks + summaries", geo.Blocks, dataBlocks)
	}
	if geo.BlockSize < 4*(4+SegmentBlocks) {
		return nil, fmt.Errorf("ld: block size %d too small for a segment summary", geo.BlockSize)
	}
	return &DurableLD{
		dev:        dev,
		mapper:     mapper,
		dataBlocks: dataBlocks,
		blockSize:  geo.BlockSize,
		buf:        make([]byte, 0, SegmentBlocks*geo.BlockSize),
		lblocks:    make([]uint32, 0, SegmentBlocks),
	}, nil
}

// SegmentFlushes reports how many segments have been fully committed
// (data and summary both acked by the device).
func (l *DurableLD) SegmentFlushes() uint64 { return l.flushes }

// Write accepts one block of payload for lblock. The mapping is made by
// the Mapper immediately but becomes durable only when the segment
// flushes; flushed reports whether this write completed a segment. A
// device error (including an injected crash) leaves the pending segment
// uncommitted, exactly as a power cut would.
func (l *DurableLD) Write(lblock uint32, data []byte) (flushed bool, err error) {
	if uint32(len(data)) != l.blockSize {
		return false, fmt.Errorf("ld: payload of %d bytes, want one %d-byte block", len(data), l.blockSize)
	}
	p, err := l.mapper.MapWrite(lblock)
	if err != nil {
		return false, err
	}
	if p/SegmentBlocks >= l.dataBlocks/SegmentBlocks {
		return false, fmt.Errorf("ld: mapper placed block at %d beyond data region %d", p, l.dataBlocks)
	}
	l.seg = p / SegmentBlocks
	l.buf = append(l.buf, data...)
	l.lblocks = append(l.lblocks, lblock)
	l.fill++
	if l.fill < SegmentBlocks {
		return false, nil
	}
	if err := l.flush(); err != nil {
		return false, err
	}
	return true, nil
}

// flush writes the buffered data blocks, then the summary. Order matters:
// a summary on disk asserts its data is too.
func (l *DurableLD) flush() error {
	if _, err := l.dev.WriteBlocks(l.seg*SegmentBlocks, l.buf); err != nil {
		return err
	}
	sum := l.encodeSummary()
	if _, err := l.dev.WriteBlocks(l.summaryBlock(l.seg), sum); err != nil {
		return err
	}
	l.flushes++
	l.fill = 0
	l.buf = l.buf[:0]
	l.lblocks = l.lblocks[:0]
	return nil
}

func (l *DurableLD) summaryBlock(seg uint32) uint32 {
	return l.dataBlocks + seg
}

// encodeSummary lays out: magic, seg, seq (seg+1 — the log has no
// cleaner, so sequence equals position), count, count logical block
// numbers; checksum in the final 4 bytes of the block.
func (l *DurableLD) encodeSummary() []byte {
	b := make([]byte, l.blockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], summaryMagic)
	le.PutUint32(b[4:], l.seg)
	le.PutUint32(b[8:], l.seg+1)
	le.PutUint32(b[12:], uint32(len(l.lblocks)))
	for i, lb := range l.lblocks {
		le.PutUint32(b[16+4*i:], lb)
	}
	le.PutUint32(b[l.blockSize-4:], summaryChecksum(b))
	return b
}

// summaryChecksum is FNV-1a over the block minus its checksum word.
func summaryChecksum(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b[:len(b)-4] {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// Read returns the current payload of lblock through the mapper.
func (l *DurableLD) Read(lblock uint32) ([]byte, error) {
	p, err := l.mapper.MapRead(lblock)
	if err != nil {
		return nil, err
	}
	if p == Unmapped {
		return nil, fmt.Errorf("ld: read of unwritten logical block %d", lblock)
	}
	return l.dev.ReadBlock(p)
}

// Recover scans the summary region of a durable log after a crash and
// rebuilds the logical→physical map. It returns the map (Unmapped for
// blocks never durably written) and the number of committed segments.
// The scan stops at the first absent or invalid summary: with in-order
// segment fill, everything after it is by construction uncommitted.
func Recover(dev *disk.Disk, dataBlocks uint32) (table []uint32, segments uint32, err error) {
	if dataBlocks == 0 || dataBlocks%SegmentBlocks != 0 {
		return nil, 0, fmt.Errorf("ld: data region %d blocks is not whole segments", dataBlocks)
	}
	table = make([]uint32, dataBlocks)
	for i := range table {
		table[i] = Unmapped
	}
	le := binary.LittleEndian
	segCount := dataBlocks / SegmentBlocks
	for seg := uint32(0); seg < segCount; seg++ {
		b, err := dev.ReadBlock(dataBlocks + seg)
		if err != nil {
			return nil, 0, err
		}
		if le.Uint32(b[0:]) != summaryMagic ||
			le.Uint32(b[4:]) != seg ||
			le.Uint32(b[8:]) != seg+1 ||
			le.Uint32(b[uint32(len(b))-4:]) != summaryChecksum(b) {
			return table, seg, nil
		}
		count := le.Uint32(b[12:])
		if count > SegmentBlocks {
			return table, seg, nil
		}
		for i := uint32(0); i < count; i++ {
			lb := le.Uint32(b[16+4*i:])
			if lb < dataBlocks {
				table[lb] = seg*SegmentBlocks + i
			}
		}
	}
	return table, segCount, nil
}
