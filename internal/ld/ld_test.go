package ld

import (
	"strings"
	"testing"

	"graftlab/internal/disk"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

func smallDisk() (*disk.Disk, *vclock.Clock) {
	clock := &vclock.Clock{}
	geo := disk.DefaultGeometry()
	geo.Blocks = 4096
	return disk.New(geo, clock), clock
}

func TestNativeMapperLogStructure(t *testing.T) {
	m := NewNativeMapper(256)
	for i := uint32(0); i < 40; i++ {
		p, err := m.MapWrite((i * 19) % 256)
		if err != nil {
			t.Fatal(err)
		}
		if p != i {
			t.Fatalf("write %d got physical %d", i, p)
		}
	}
}

func TestNativeMapperReadAfterWrite(t *testing.T) {
	m := NewNativeMapper(16384) // plenty of log space for 500 writes
	latest := map[uint32]uint32{}
	rng := workload.NewRNG(12)
	for i := 0; i < 500; i++ {
		lb := rng.Uint32n(128)
		p, err := m.MapWrite(lb)
		if err != nil {
			t.Fatal(err)
		}
		latest[lb] = p
		// Invariant: every previously written block reads back its
		// latest location.
		probe := rng.Uint32n(128)
		want, written := latest[probe]
		got, err := m.MapRead(probe)
		if err != nil {
			t.Fatal(err)
		}
		if written && got != want {
			t.Fatalf("block %d maps to %d, want %d", probe, got, want)
		}
		if !written && got != Unmapped {
			t.Fatalf("unwritten block %d maps to %d", probe, got)
		}
	}
}

func TestNativeMapperErrors(t *testing.T) {
	m := NewNativeMapper(32) // 2 segments
	if _, err := m.MapWrite(99); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := m.MapRead(99); err == nil {
		t.Error("out-of-range read accepted")
	}
	for i := uint32(0); i < 32; i++ {
		if _, err := m.MapWrite(i % 32); err != nil {
			t.Fatal(err)
		}
	}
	_, err := m.MapWrite(0)
	if err == nil || !strings.Contains(err.Error(), "log full") {
		t.Errorf("full log: %v", err)
	}
}

func TestLDBatchesWrites(t *testing.T) {
	dev, _ := smallDisk()
	l := New(dev, NewNativeMapper(dev.Geometry().Blocks), false)
	stream := workload.NewSkewed(dev.Geometry().Blocks, 5)
	const writes = 320
	for i := 0; i < writes; i++ {
		if err := l.Write(stream.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Writes != writes {
		t.Errorf("writes = %d", st.Writes)
	}
	if st.SegmentFlush != writes/SegmentBlocks {
		t.Errorf("flushes = %d, want %d", st.SegmentFlush, writes/SegmentBlocks)
	}
}

func TestLDBeatsDirectWritesOnRandomLoad(t *testing.T) {
	// The paper's justification: batching must save more time than the
	// bookkeeping costs. Compare virtual disk time for the same skewed
	// request stream.
	devLD, clockLD := smallDisk()
	l := New(devLD, NewNativeMapper(devLD.Geometry().Blocks), false)
	s1 := workload.NewSkewed(devLD.Geometry().Blocks, 77)
	const writes = 2048
	for i := 0; i < writes; i++ {
		if err := l.Write(s1.Next()); err != nil {
			t.Fatal(err)
		}
	}
	ldTime := clockLD.Now()

	devDirect, clockDirect := smallDisk()
	s2 := workload.NewSkewed(devDirect.Geometry().Blocks, 77)
	for i := 0; i < writes; i++ {
		if _, err := DirectWrite(devDirect, s2.Next()); err != nil {
			t.Fatal(err)
		}
	}
	directTime := clockDirect.Now()

	if ldTime*5 > directTime {
		t.Errorf("LD %v not clearly faster than direct %v", ldTime, directTime)
	}
}

func TestLDReads(t *testing.T) {
	dev, _ := smallDisk()
	l := New(dev, NewNativeMapper(dev.Geometry().Blocks), false)
	if err := l.Read(7); err == nil {
		t.Error("read of unwritten block accepted")
	}
	for i := 0; i < 20; i++ {
		if err := l.Write(7); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Read(7); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Reads != 1 {
		t.Errorf("reads = %d", l.Stats().Reads)
	}
}

func TestLDTimedMapper(t *testing.T) {
	dev, _ := smallDisk()
	l := New(dev, NewNativeMapper(dev.Geometry().Blocks), true)
	for i := uint32(0); i < 64; i++ {
		if err := l.Write(i); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().MapTime <= 0 {
		t.Error("timed mapper recorded no time")
	}
}
