// Fault injection: a schedulable synthetic trap on the Nth graft memory
// access. The conformance suite uses it to drive every technology class
// down the same failure path — eBPF keeps its interpreter and JITs honest
// the same way, by systematically exercising the paths that only fire
// when something goes wrong.
//
// The plan counts *policy-level* accesses: each ld8/ld32/st8/st32 the
// graft program executes is one access, counted before the technology's
// own protection (bounds check, NIL check, sandbox mask) runs. Because
// the count and the unmasked address are properties of the program, not
// of the policy, every engine must observe the injected trap at the same
// access index with the same address — which is exactly the cross-engine
// property the conformance oracle asserts.
//
// Arming is a load-time decision, like telemetry instrumentation: engines
// read Memory.Faults() when they compile/translate/interpret, so a memory
// that was never armed pays at most a nil pointer test per access (the
// codegen class pays nothing — it specializes the closure at compile
// time). Arm must therefore be called before tech.Load.
package mem

// FaultPlan schedules a synthetic trap on the Nth policy-level memory
// access (1-based). The zero FailOn never fires, leaving the plan a pure
// access counter — which is how callers discover how many accesses a
// program performs before scheduling failures at each index.
type FaultPlan struct {
	// FailOn is the 1-based index of the access that traps; 0 disables
	// injection (the plan still counts).
	FailOn uint64
	// Kind overrides the raised trap kind. TrapNone (the zero value)
	// derives it from the access: TrapOOBLoad for loads, TrapOOBStore for
	// stores.
	Kind TrapKind

	count uint64
}

// Accesses reports how many accesses the plan has observed.
func (p *FaultPlan) Accesses() uint64 { return p.count }

// Reset rewinds the access counter so the same plan can arm another run.
func (p *FaultPlan) Reset() { p.count = 0 }

// Check records one access and returns the injected trap when the access
// index hits the schedule, nil otherwise. addr is the graft's address
// before any policy masking, so the trap is policy-independent. The trap
// is returned (not thrown) because the script interpreter propagates
// traps as values; panicking engines throw it themselves.
func (p *FaultPlan) Check(store bool, addr uint32) *Trap {
	p.count++
	if p.FailOn == 0 || p.count != p.FailOn {
		return nil
	}
	kind := p.Kind
	if kind == TrapNone {
		if store {
			kind = TrapOOBStore
		} else {
			kind = TrapOOBLoad
		}
	}
	return &Trap{Kind: kind, Addr: addr}
}

// Arm attaches a fault plan to the memory (nil disarms). Engines consult
// the plan at load time; arming after a graft is loaded has no effect on
// that graft.
func (m *Memory) Arm(p *FaultPlan) { m.faults = p }

// Faults returns the armed fault plan, or nil.
func (m *Memory) Faults() *FaultPlan { return m.faults }
