// Package mem defines the linear graft memory, the protection policies the
// extension technologies apply to it, and the trap values raised when a
// graft violates its policy.
//
// A graft sees a flat array of bytes, addressed from zero, like a Wasm
// linear memory. The kernel marshals inputs into that memory before
// invoking a graft and reads results back afterwards. Each technology
// guards accesses differently:
//
//   - PolicyUnsafe: no extra checks (the paper's "unsafe C in the kernel").
//     Go's intrinsic slice bounds check still fires, but it models a crash,
//     not a recoverable trap: the host process dies just as a kernel would.
//   - PolicyChecked: explicit bounds checks, and optionally an explicit
//     NIL-page check, on every access (the Modula-3 class).
//   - PolicySandbox: address masking (addr & mask) on stores and
//     optionally loads (the Omniware / SFI class). A stray pointer can at
//     worst corrupt the graft's own region, never escape it.
package mem

import "fmt"

// TrapKind classifies the ways a graft can fault.
type TrapKind int

const (
	TrapNone TrapKind = iota
	TrapOOBLoad
	TrapOOBStore
	TrapNilDeref
	TrapDivZero
	TrapAbort
	TrapFuel
	TrapStackOverflow
	TrapUnreachable
)

var trapNames = map[TrapKind]string{
	TrapNone:          "none",
	TrapOOBLoad:       "out-of-bounds load",
	TrapOOBStore:      "out-of-bounds store",
	TrapNilDeref:      "nil-page dereference",
	TrapDivZero:       "division by zero",
	TrapAbort:         "graft abort",
	TrapFuel:          "fuel exhausted",
	TrapStackOverflow: "call stack overflow",
	TrapUnreachable:   "unreachable executed",
}

func (k TrapKind) String() string {
	if s, ok := trapNames[k]; ok {
		return s
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap is the error raised when a graft violates its protection policy or
// aborts. It satisfies error so callers can surface it; execution engines
// raise it with panic and recover it at the invocation boundary, so a
// faulting graft never takes down the host.
type Trap struct {
	Kind TrapKind
	Addr uint32 // faulting address for memory traps
	Code uint32 // abort code for TrapAbort
	// PC is the bytecode instruction index at which a VM trap was raised.
	// Both bytecode interpreter variants set it (and their differential
	// tests compare it); engines without a program counter leave it zero.
	PC int
}

func (t *Trap) Error() string {
	switch t.Kind {
	case TrapAbort:
		return fmt.Sprintf("graft trap: abort(code=%d)", t.Code)
	case TrapOOBLoad, TrapOOBStore, TrapNilDeref:
		return fmt.Sprintf("graft trap: %s at address %#x", t.Kind, t.Addr)
	default:
		return fmt.Sprintf("graft trap: %s", t.Kind)
	}
}

// Throw raises a trap; execution engines recover it at Invoke boundaries.
func Throw(kind TrapKind, addr uint32) {
	panic(&Trap{Kind: kind, Addr: addr})
}

// Policy selects the protection applied to graft memory accesses.
type Policy int

const (
	// PolicyUnsafe performs raw accesses with no recoverable protection.
	PolicyUnsafe Policy = iota
	// PolicyChecked performs an explicit bounds check per access and traps
	// on violation. With NilCheck it also traps accesses to the NIL page.
	PolicyChecked
	// PolicySandbox masks every store (and jump) address into the sandbox
	// region. Loads are masked only when ReadProtect is set, mirroring the
	// Omniware beta the paper measured, which had write+jump protection
	// but no read protection.
	PolicySandbox
)

func (p Policy) String() string {
	switch p {
	case PolicyUnsafe:
		return "unsafe"
	case PolicyChecked:
		return "checked"
	case PolicySandbox:
		return "sandbox"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// NilPageSize is the size of the reserved page at address zero. Safe-
// language runtimes represent NIL as address zero; a checked policy with
// NilCheck set traps any access below this boundary, modeling the explicit
// NIL checks the Linux Modula-3 compiler emitted (§5.4 of the paper).
const NilPageSize = 4096

// Config carries the policy knobs a technology applies to memory accesses.
type Config struct {
	Policy Policy
	// NilCheck adds an explicit trap for accesses inside the NIL page
	// (PolicyChecked only). Off models platforms where dereferencing page
	// zero faults in hardware and no inline check is needed.
	NilCheck bool
	// ReadProtect masks load addresses too (PolicySandbox only).
	ReadProtect bool
}

// Memory is a graft's linear memory. Size is always a power of two so that
// sandbox masking is a single AND.
type Memory struct {
	Data []byte
	mask uint32
	// faults is the armed fault-injection plan (see faults.go), nil in
	// normal operation. Engines consult it at load time.
	faults *FaultPlan
}

// New allocates a linear memory of the given size, which must be a power
// of two and at least 8 bytes.
func New(size uint32) *Memory {
	if size < 8 || size&(size-1) != 0 {
		panic(fmt.Sprintf("mem: size %d is not a power of two >= 8", size))
	}
	return &Memory{Data: make([]byte, size), mask: size - 1}
}

// Size reports the memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.Data)) }

// Mask is the sandbox address mask (size-1).
func (m *Memory) Mask() uint32 { return m.mask }

// The raw accessors below are the building blocks execution engines use.
// Little-endian, like every ISA the paper touched except SPARC; the choice
// only needs to be consistent between kernel marshaling and graft code.

// Ld32U loads 4 bytes with no policy applied.
func (m *Memory) Ld32U(a uint32) uint32 {
	d := m.Data[a : a+4 : a+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

// St32U stores 4 bytes with no policy applied.
func (m *Memory) St32U(a, v uint32) {
	d := m.Data[a : a+4 : a+4]
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	d[2] = byte(v >> 16)
	d[3] = byte(v >> 24)
}

// Ld8U loads one byte with no policy applied.
func (m *Memory) Ld8U(a uint32) uint32 { return uint32(m.Data[a]) }

// St8U stores one byte with no policy applied.
func (m *Memory) St8U(a, v uint32) { m.Data[a] = byte(v) }

// CheckLoad validates a load of width bytes at address a under the checked
// policy, trapping on violation.
func (m *Memory) CheckLoad(a, width uint32, nilCheck bool) {
	if nilCheck && a < NilPageSize {
		Throw(TrapNilDeref, a)
	}
	if uint64(a)+uint64(width) > uint64(len(m.Data)) {
		Throw(TrapOOBLoad, a)
	}
}

// CheckStore validates a store of width bytes at address a under the
// checked policy, trapping on violation.
func (m *Memory) CheckStore(a, width uint32, nilCheck bool) {
	if nilCheck && a < NilPageSize {
		Throw(TrapNilDeref, a)
	}
	if uint64(a)+uint64(width) > uint64(len(m.Data)) {
		Throw(TrapOOBStore, a)
	}
}

// Sandbox masks an address into the memory region. Word accesses are
// additionally forced to keep the full access inside the region by masking
// after alignment; this is the single-AND fast path SFI relies on.
func (m *Memory) Sandbox(a uint32) uint32 { return a & m.mask }

// SandboxWord masks a 4-byte access so all four bytes land in the region.
func (m *Memory) SandboxWord(a uint32) uint32 { return a & m.mask &^ 3 }

// WriteAt copies b into memory at address a. It is the kernel-side
// marshaling helper and bounds-checks strictly (the kernel trusts itself,
// but we do not model kernel bugs).
func (m *Memory) WriteAt(a uint32, b []byte) {
	copy(m.Data[a:int(a)+len(b)], b)
}

// ReadAt copies len(b) bytes from memory at address a into b.
func (m *Memory) ReadAt(a uint32, b []byte) {
	copy(b, m.Data[a:int(a)+len(b)])
}
