package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []uint32{0, 1, 4, 12, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
	m := New(1 << 12)
	if m.Size() != 4096 || m.Mask() != 4095 {
		t.Fatalf("size=%d mask=%#x", m.Size(), m.Mask())
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1 << 10)
	m.St32U(100, 0xDEADBEEF)
	if m.Ld32U(100) != 0xDEADBEEF {
		t.Fatal("32-bit round trip failed")
	}
	// little-endian layout
	if m.Ld8U(100) != 0xEF || m.Ld8U(103) != 0xDE {
		t.Fatal("not little-endian")
	}
	m.St8U(200, 0x7F)
	if m.Ld8U(200) != 0x7F {
		t.Fatal("8-bit round trip failed")
	}
}

func TestSandboxMasking(t *testing.T) {
	m := New(1 << 10)
	f := func(a uint32) bool {
		s := m.Sandbox(a)
		w := m.SandboxWord(a)
		return s < m.Size() && w <= m.Size()-4 && w%4 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// In-range addresses are unchanged.
	if m.Sandbox(123) != 123 {
		t.Fatal("in-range address altered")
	}
	if m.SandboxWord(120) != 120 {
		t.Fatal("aligned in-range word altered")
	}
}

func TestCheckedTraps(t *testing.T) {
	m := New(1 << 10)
	mustTrap := func(name string, kind TrapKind, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			tr, ok := r.(*Trap)
			if !ok {
				t.Fatalf("%s: recovered %v, want *Trap", name, r)
			}
			if tr.Kind != kind {
				t.Errorf("%s: kind = %v, want %v", name, tr.Kind, kind)
			}
		}()
		f()
	}
	mustTrap("load past end", TrapOOBLoad, func() { m.CheckLoad(1022, 4, false) })
	mustTrap("store past end", TrapOOBStore, func() { m.CheckStore(2000, 1, false) })
	mustTrap("nil load", TrapNilDeref, func() { m.CheckLoad(5, 4, true) })
	mustTrap("nil store", TrapNilDeref, func() { m.CheckStore(0, 4, true) })
	// In-range passes silently.
	m.CheckLoad(0, 4, false)
	m.CheckStore(1020, 4, false)
}

func TestCheckOverflowDoesNotWrap(t *testing.T) {
	m := New(1 << 10)
	defer func() {
		if recover() == nil {
			t.Fatal("huge address passed the check")
		}
	}()
	m.CheckLoad(0xFFFFFFFE, 4, false) // a+4 wraps u32; must still trap
}

func TestWriteAtReadAt(t *testing.T) {
	m := New(1 << 10)
	src := []byte{1, 2, 3, 4, 5}
	m.WriteAt(64, src)
	dst := make([]byte, 5)
	m.ReadAt(64, dst)
	if string(dst) != string(src) {
		t.Fatalf("dst = %v", dst)
	}
}

func TestTrapErrorMessages(t *testing.T) {
	cases := []struct {
		trap *Trap
		want string
	}{
		{&Trap{Kind: TrapAbort, Code: 3}, "abort(code=3)"},
		{&Trap{Kind: TrapOOBLoad, Addr: 0x40}, "0x40"},
		{&Trap{Kind: TrapFuel}, "fuel"},
		{&Trap{Kind: TrapDivZero}, "division by zero"},
	}
	for _, c := range cases {
		if !strings.Contains(c.trap.Error(), c.want) {
			t.Errorf("%v lacks %q", c.trap.Error(), c.want)
		}
	}
	if TrapKind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyUnsafe: "unsafe", PolicyChecked: "checked", PolicySandbox: "sandbox",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}
