package mem

import "testing"

func TestFaultPlanCounting(t *testing.T) {
	p := &FaultPlan{FailOn: 3}
	if tr := p.Check(false, 100); tr != nil {
		t.Fatalf("access 1 trapped: %v", tr)
	}
	if tr := p.Check(true, 200); tr != nil {
		t.Fatalf("access 2 trapped: %v", tr)
	}
	tr := p.Check(false, 0x1234)
	if tr == nil {
		t.Fatal("access 3 did not trap")
	}
	if tr.Kind != TrapOOBLoad || tr.Addr != 0x1234 {
		t.Fatalf("trap = {%v addr=%#x}, want OOBLoad at 0x1234", tr.Kind, tr.Addr)
	}
	// Past the scheduled access the plan is inert again.
	if tr := p.Check(true, 50); tr != nil {
		t.Fatalf("access 4 trapped: %v", tr)
	}
	if got := p.Accesses(); got != 4 {
		t.Fatalf("Accesses() = %d, want 4", got)
	}
}

func TestFaultPlanDefaultKinds(t *testing.T) {
	load := &FaultPlan{FailOn: 1}
	if tr := load.Check(false, 8); tr.Kind != TrapOOBLoad {
		t.Fatalf("load fault kind = %v", tr.Kind)
	}
	store := &FaultPlan{FailOn: 1}
	if tr := store.Check(true, 8); tr.Kind != TrapOOBStore {
		t.Fatalf("store fault kind = %v", tr.Kind)
	}
	custom := &FaultPlan{FailOn: 1, Kind: TrapUnreachable}
	if tr := custom.Check(true, 8); tr.Kind != TrapUnreachable {
		t.Fatalf("override kind = %v", tr.Kind)
	}
}

func TestFaultPlanZeroNeverFires(t *testing.T) {
	p := &FaultPlan{} // FailOn 0: pure access counter
	for i := uint32(0); i < 100; i++ {
		if tr := p.Check(i%2 == 0, i); tr != nil {
			t.Fatalf("disarmed plan trapped at access %d", i)
		}
	}
	if p.Accesses() != 100 {
		t.Fatalf("Accesses() = %d", p.Accesses())
	}
}

func TestFaultPlanReset(t *testing.T) {
	p := &FaultPlan{FailOn: 2}
	p.Check(false, 1)
	p.Reset()
	if p.Accesses() != 0 {
		t.Fatalf("Accesses after Reset = %d", p.Accesses())
	}
	if tr := p.Check(false, 1); tr != nil {
		t.Fatal("first access after Reset trapped")
	}
	if tr := p.Check(false, 2); tr == nil {
		t.Fatal("second access after Reset did not trap")
	}
}

func TestMemoryArm(t *testing.T) {
	m := New(4096)
	if m.Faults() != nil {
		t.Fatal("fresh memory has a fault plan")
	}
	p := &FaultPlan{FailOn: 1}
	m.Arm(p)
	if m.Faults() != p {
		t.Fatal("Faults() did not return the armed plan")
	}
	m.Arm(nil)
	if m.Faults() != nil {
		t.Fatal("disarm failed")
	}
}
