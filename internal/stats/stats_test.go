package stats

import (
	"math"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{100, 200, 300})
	if s.N != 3 || s.Mean != 200 || s.Min != 100 || s.Max != 300 {
		t.Fatalf("s = %+v", s)
	}
	if s.RelStd < 0.49 || s.RelStd > 0.51 { // std = 100, mean = 200
		t.Errorf("RelStd = %v, want 0.5", s.RelStd)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.P50 != 0 || s.Outliers != 0 {
		t.Errorf("empty summarize: %+v", s)
	}
	s := Summarize([]time.Duration{time.Second})
	if s.N != 1 || s.RelStd != 0 || s.Mean != time.Second {
		t.Errorf("single sample: %+v", s)
	}
	if s.Min != s.Max || s.Min != time.Second {
		t.Errorf("single sample Min/Max: %+v", s)
	}
	if s.P50 != time.Second || s.P95 != time.Second || s.P99 != time.Second {
		t.Errorf("single sample percentiles: %+v", s)
	}
}

func TestSummarizeConstantSamples(t *testing.T) {
	times := make([]time.Duration, 30)
	for i := range times {
		times[i] = 7 * time.Microsecond
	}
	s := Summarize(times)
	if s.RelStd != 0 {
		t.Errorf("constant samples must have RelStd 0, got %v", s.RelStd)
	}
	if s.Min != s.Max || s.Min != 7*time.Microsecond {
		t.Errorf("constant samples Min/Max: %+v", s)
	}
	if s.P50 != 7*time.Microsecond || s.P99 != 7*time.Microsecond {
		t.Errorf("constant samples percentiles: %+v", s)
	}
	if s.Outliers != 0 {
		t.Errorf("constant samples outliers: %d", s.Outliers)
	}
}

func TestSummarizePercentilesAndOutliers(t *testing.T) {
	// 1..100µs: exact nearest-rank percentiles.
	times := make([]time.Duration, 100)
	for i := range times {
		times[i] = time.Duration(i+1) * time.Microsecond
	}
	s := Summarize(times)
	if s.P50 != 50*time.Microsecond || s.P95 != 95*time.Microsecond || s.P99 != 99*time.Microsecond {
		t.Errorf("percentiles: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	// 29 quiet runs and one wild one: the spike is the outlier.
	spiky := make([]time.Duration, 30)
	for i := range spiky {
		spiky[i] = time.Microsecond
	}
	spiky[13] = time.Millisecond
	if s := Summarize(spiky); s.Outliers != 1 {
		t.Errorf("Outliers = %d, want 1 (%+v)", s.Outliers, s)
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
	times := []time.Duration{300, 100, 200} // unsorted on purpose
	if got := Percentile(times, 0.5); got != 200 {
		t.Errorf("Percentile(0.5) = %v, want 200", got)
	}
	if got := Percentile(times, 0); got != 100 {
		t.Errorf("Percentile(0) = %v, want 100", got)
	}
	if got := Percentile(times, 1); got != 300 {
		t.Errorf("Percentile(1) = %v, want 300", got)
	}
	if times[0] != 300 {
		t.Error("Percentile must not mutate its input")
	}
}

func TestDiscardWarmup(t *testing.T) {
	times := []time.Duration{9, 1, 2, 3}
	if got := DiscardWarmup(times, 1); len(got) != 3 || got[0] != 1 {
		t.Errorf("DiscardWarmup(1) = %v", got)
	}
	if got := DiscardWarmup(times, 0); len(got) != 4 {
		t.Errorf("DiscardWarmup(0) = %v", got)
	}
	if got := DiscardWarmup(times, 4); got != nil {
		t.Errorf("DiscardWarmup(all) = %v, want nil", got)
	}
	if got := DiscardWarmup(times, -1); len(got) != 4 {
		t.Errorf("DiscardWarmup(-1) = %v", got)
	}
}

func TestMeasureRuns(t *testing.T) {
	count := 0
	s := Measure(5, func() { count++ })
	if count != 5 || s.N != 5 {
		t.Fatalf("count=%d s=%+v", count, s)
	}
}

func TestMeasureEdgeCases(t *testing.T) {
	if s := Measure(0, func() { t.Fatal("must not run") }); s.N != 0 {
		t.Errorf("Measure(0): %+v", s)
	}
	count := 0
	if s := Measure(1, func() { count++ }); s.N != 1 || count != 1 || s.RelStd != 0 {
		t.Errorf("Measure(1): count=%d %+v", count, s)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5µs",
		2900 * time.Microsecond: "2.9ms",
		3 * time.Second:         "3s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

// TestFormatDurationUnitBoundaries is the regression table for the
// scientific-notation bug: three-sig-fig rounding that reaches 1000 must
// promote to the next unit, never print "1e+03µs".
func TestFormatDurationUnitBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{999 * time.Nanosecond, "999ns"},
		{1000 * time.Nanosecond, "1µs"},
		{999400 * time.Nanosecond, "999µs"},
		{999600 * time.Nanosecond, "1ms"}, // was "1e+03µs"
		{time.Millisecond, "1ms"},
		{999400 * time.Microsecond, "999ms"},
		{999600 * time.Microsecond, "1s"}, // was "1e+03ms"
		{time.Second, "1s"},
		{999 * time.Second, "999s"},
		{1234 * time.Second, "1234s"}, // was "1.23e+03s"
		{-1500 * time.Nanosecond, "-1.5µs"},
		{-999600 * time.Nanosecond, "-1ms"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSampleString(t *testing.T) {
	s := Sample{Mean: 2900 * time.Nanosecond, RelStd: 0.002}
	if got := s.String(); got != "2.9µs(0.2%)" {
		t.Errorf("String = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Caption: "a caption",
		Header:  []string{"Tech", "raw", "normalized"},
	}
	tb.AddRow("C", "2.9µs", "1.0")
	tb.AddRow("Java", "159µs", "26.5")
	out := tb.String()
	for _, want := range []string{"== Demo ==", "Tech", "26.5", "a caption", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
	// Columns align: "Java" row should have "159µs" right-aligned under "raw".
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("table too short:\n%s", out)
	}
}

// TestTableRowsWiderThanHeader is the regression test for the
// zero-width-column bug: cells beyond len(Header) used to get width 0
// and break alignment.
func TestTableRowsWiderThanHeader(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("short", "1", "extra-a", "x")
	tb.AddRow("a-much-longer-name", "22", "extra-bb", "yy")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table shape:\n%s", out)
	}
	// Every data row must be padded to the same width: the extra columns
	// get real widths, so rows can no longer ragged-edge.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows misaligned (%d vs %d chars):\n%s", len(lines[2]), len(lines[3]), out)
	}
	// The extra cells are right-aligned in their own columns.
	if !strings.HasSuffix(lines[2], " x") && !strings.HasSuffix(lines[2], "x") {
		t.Errorf("row 1 lost its extra cell:\n%s", out)
	}
	if !strings.Contains(lines[2], "extra-a") || !strings.Contains(lines[3], "extra-bb") {
		t.Errorf("extra cells missing:\n%s", out)
	}
}

// TestTableMicrosecondAlignment is the regression test for the
// byte-width padding bug: every µs cell contains the two-byte µ rune, so
// byte-sized column widths misaligned each µ column by one space. All
// rendered lines must have the same RUNE width, and cells in the same
// column must end at the same rune offset.
func TestTableMicrosecondAlignment(t *testing.T) {
	tb := &Table{
		Header: []string{"technology", "raw", "normalized"},
	}
	tb.AddRow("compiled-unsafe", "2.9µs(0.2%)", "1.0")
	tb.AddRow("script", "40ms(1.3%)", "13793")
	tb.AddRow("bytecode", "8.1µs(0.5%)", "2.8")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header, rule, 3 rows
		t.Fatalf("table shape:\n%s", out)
	}
	width := utf8.RuneCountInString(lines[0])
	for i, l := range lines {
		if i == 1 {
			continue // the ---- rule is sized in bytes of padding-free widths
		}
		if got := utf8.RuneCountInString(l); got != width {
			t.Errorf("line %d is %d runes wide, want %d:\n%s", i, got, width, out)
		}
	}
	// The right-aligned raw column must end at the same rune offset on
	// every row: µ rows may not drift relative to the ASCII ms row.
	end := func(line, cell string) int {
		idx := strings.Index(line, cell)
		if idx < 0 {
			t.Fatalf("line %q lacks cell %q", line, cell)
		}
		return utf8.RuneCountInString(line[:idx]) + utf8.RuneCountInString(cell)
	}
	e1 := end(lines[2], "2.9µs(0.2%)")
	e2 := end(lines[3], "40ms(1.3%)")
	e3 := end(lines[4], "8.1µs(0.5%)")
	if e1 != e2 || e2 != e3 {
		t.Errorf("raw column ends at rune offsets %d/%d/%d:\n%s", e1, e2, e3, out)
	}
}

func TestSummarizeStd(t *testing.T) {
	s := Summarize([]time.Duration{100, 200, 300})
	if s.Std != 100 { // sample std of {100,200,300} is exactly 100
		t.Errorf("Std = %v, want 100", s.Std)
	}
	if s.CV() != s.RelStd {
		t.Errorf("CV() = %v, RelStd = %v", s.CV(), s.RelStd)
	}
	if s := Summarize([]time.Duration{time.Second}); s.Std != 0 {
		t.Errorf("single-sample Std = %v, want 0", s.Std)
	}
}

func TestCohensD(t *testing.T) {
	a := []time.Duration{100, 110, 90, 105, 95}
	// Identical series: no effect.
	if d := CohensD(a, a); d != 0 {
		t.Errorf("identical series d = %v", d)
	}
	// A shift of several pooled stds is a large effect, positive when the
	// second series is slower.
	b := []time.Duration{200, 210, 190, 205, 195}
	d := CohensD(a, b)
	if d < 8 { // diff 100, pooled std ~7.9
		t.Errorf("d = %v, want >> 0.8 (large)", d)
	}
	if d2 := CohensD(b, a); d2 != -d {
		t.Errorf("d not antisymmetric: %v vs %v", d, d2)
	}
	// Deterministic series that differ: infinitely significant.
	if d := CohensD([]time.Duration{100, 100}, []time.Duration{101, 101}); !math.IsInf(d, 1) {
		t.Errorf("zero-variance shift d = %v, want +Inf", d)
	}
	// A shift well inside the noise is a small effect.
	noisy := []time.Duration{100, 300, 50, 250, 150}
	shifted := []time.Duration{110, 310, 60, 260, 160}
	if d := CohensD(noisy, shifted); math.Abs(d) >= EffectSmall {
		t.Errorf("in-noise shift d = %v, want |d| < %v", d, EffectSmall)
	}
}

func TestCohensDStats(t *testing.T) {
	// Degenerate ns: treated as single observations, no panic.
	if d := CohensDStats(100, 0, 0, 100, 0, 0); d != 0 {
		t.Errorf("equal means d = %v", d)
	}
	if d := CohensDStats(100, 0, 0, 50, 0, 0); !math.IsInf(d, -1) {
		t.Errorf("zero-std improvement d = %v, want -Inf", d)
	}
	// Matches the raw-sample path.
	a := []time.Duration{100, 110, 90, 105, 95}
	b := []time.Duration{130, 140, 120, 135, 125}
	sa, sb := Summarize(a), Summarize(b)
	want := CohensD(a, b)
	got := CohensDStats(float64(sa.Mean), float64(sa.Std), sa.N,
		float64(sb.Mean), float64(sb.Std), sb.N)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("CohensDStats = %v, CohensD = %v", got, want)
	}
}

func TestEffectVerdict(t *testing.T) {
	cases := map[float64]string{
		0: "negligible", 0.1: "negligible", -0.1: "negligible",
		0.3: "small", -0.49: "small",
		0.5: "medium", 0.79: "medium",
		0.8: "large", -3: "large", math.Inf(1): "large",
	}
	for d, want := range cases {
		if got := EffectVerdict(d); got != want {
			t.Errorf("EffectVerdict(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestRatioAndCount(t *testing.T) {
	if Ratio(1.0) != "1" || Ratio(26.5) != "26" {
		t.Errorf("Ratio: %q %q", Ratio(1.0), Ratio(26.5))
	}
	if Ratio(0) != "N.A." || Ratio(-1) != "N.A." {
		t.Error("Ratio of nonpositive should be N.A.")
	}
	if Count(1533.4) != "1533" {
		t.Errorf("Count = %q", Count(1533.4))
	}
	if Count(2.5) != "2.5" {
		t.Errorf("Count small = %q", Count(2.5))
	}
	if Count(1e12) != ">1e9" {
		t.Errorf("Count huge = %q", Count(1e12))
	}
}
