package stats

import (
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{100, 200, 300})
	if s.N != 3 || s.Mean != 200 || s.Min != 100 || s.Max != 300 {
		t.Fatalf("s = %+v", s)
	}
	if s.RelStd < 0.49 || s.RelStd > 0.51 { // std = 100, mean = 200
		t.Errorf("RelStd = %v, want 0.5", s.RelStd)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summarize")
	}
	s := Summarize([]time.Duration{time.Second})
	if s.RelStd != 0 || s.Mean != time.Second {
		t.Errorf("single sample: %+v", s)
	}
}

func TestMeasureRuns(t *testing.T) {
	count := 0
	s := Measure(5, func() { count++ })
	if count != 5 || s.N != 5 {
		t.Fatalf("count=%d s=%+v", count, s)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5µs",
		2900 * time.Microsecond: "2.9ms",
		3 * time.Second:         "3s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestSampleString(t *testing.T) {
	s := Sample{Mean: 2900 * time.Nanosecond, RelStd: 0.002}
	if got := s.String(); got != "2.9µs(0.2%)" {
		t.Errorf("String = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Caption: "a caption",
		Header:  []string{"Tech", "raw", "normalized"},
	}
	tb.AddRow("C", "2.9µs", "1.0")
	tb.AddRow("Java", "159µs", "26.5")
	out := tb.String()
	for _, want := range []string{"== Demo ==", "Tech", "26.5", "a caption", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
	// Columns align: "Java" row should have "159µs" right-aligned under "raw".
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("table too short:\n%s", out)
	}
}

func TestRatioAndCount(t *testing.T) {
	if Ratio(1.0) != "1" || Ratio(26.5) != "26" {
		t.Errorf("Ratio: %q %q", Ratio(1.0), Ratio(26.5))
	}
	if Ratio(0) != "N.A." || Ratio(-1) != "N.A." {
		t.Error("Ratio of nonpositive should be N.A.")
	}
	if Count(1533.4) != "1533" {
		t.Errorf("Count = %q", Count(1533.4))
	}
	if Count(2.5) != "2.5" {
		t.Errorf("Count small = %q", Count(2.5))
	}
	if Count(1e12) != ">1e9" {
		t.Errorf("Count huge = %q", Count(1e12))
	}
}
