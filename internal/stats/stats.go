// Package stats provides the repeated-run statistics and table formatting
// the paper's evaluation uses: every number in Tables 1-6 is "the mean of
// 30 runs ... (standard deviations in parenthesis)".
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Sample summarizes repeated measurements.
type Sample struct {
	N    int
	Mean time.Duration
	// RelStd is the standard deviation as a fraction of the mean, the
	// form the paper prints ("2.9µs(0.2%)").
	RelStd float64
	Min    time.Duration
	Max    time.Duration
}

// Measure runs f n times, timing each run.
func Measure(n int, f func()) Sample {
	times := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		f()
		times[i] = time.Since(t0)
	}
	return Summarize(times)
}

// Summarize computes a Sample from raw durations.
func Summarize(times []time.Duration) Sample {
	if len(times) == 0 {
		return Sample{}
	}
	var sum float64
	s := Sample{N: len(times), Min: times[0], Max: times[0]}
	for _, t := range times {
		sum += float64(t)
		if t < s.Min {
			s.Min = t
		}
		if t > s.Max {
			s.Max = t
		}
	}
	mean := sum / float64(len(times))
	var sq float64
	for _, t := range times {
		d := float64(t) - mean
		sq += d * d
	}
	s.Mean = time.Duration(mean)
	if len(times) > 1 && mean > 0 {
		std := math.Sqrt(sq / float64(len(times)-1))
		s.RelStd = std / mean
	}
	return s
}

// String renders the paper's "mean(relstd%)" form.
func (s Sample) String() string {
	return fmt.Sprintf("%s(%.1f%%)", FormatDuration(s.Mean), s.RelStd*100)
}

// FormatDuration prints a duration with three significant figures in the
// most natural unit, avoiding the paper's ms/µs ambiguity.
func FormatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.3gµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.3gms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3gs", d.Seconds())
	}
}

// Table accumulates rows and renders aligned text, the shape of the
// paper's tables.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			// Right-align all but the first column (numbers).
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// Ratio formats a normalized value the way the paper's tables do ("1.0",
// "26.5", "N.A." for absent measurements).
func Ratio(v float64) string {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return "N.A."
	}
	switch {
	case v < 10:
		return fmt.Sprintf("%.2g", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Count formats a break-even count (dimensionless, possibly huge).
func Count(v float64) string {
	switch {
	case math.IsInf(v, 1) || v > 1e9:
		return ">1e9"
	case v <= 0 || math.IsNaN(v):
		return "0"
	case v < 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
