// Package stats provides the repeated-run statistics and table formatting
// the paper's evaluation uses: every number in Tables 1-6 is "the mean of
// 30 runs ... (standard deviations in parenthesis)".
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
	"unicode/utf8"
)

// Sample summarizes repeated measurements.
type Sample struct {
	N    int
	Mean time.Duration
	// RelStd is the standard deviation as a fraction of the mean, the
	// form the paper prints ("2.9µs(0.2%)"). This is the coefficient of
	// variation; CV() is the literature-named accessor.
	RelStd float64
	// Std is the sample standard deviation itself, kept alongside RelStd
	// so effect sizes can be computed from archived summaries without
	// re-deriving it from a possibly-rounded mean.
	Std time.Duration `json:"std"`
	Min time.Duration
	Max time.Duration
	// Tail percentiles (nearest rank). Additive: every paper table still
	// prints mean/relstd; the percentiles ride along in the JSON export.
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
	// Outliers counts samples more than three standard deviations from
	// the mean — a quick "was the machine quiet" check per cell.
	Outliers int `json:"outliers"`
}

// Measure runs f n times, timing each run.
func Measure(n int, f func()) Sample {
	times := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		f()
		times[i] = time.Since(t0)
	}
	return Summarize(times)
}

// Summarize computes a Sample from raw durations.
func Summarize(times []time.Duration) Sample {
	if len(times) == 0 {
		return Sample{}
	}
	var sum float64
	s := Sample{N: len(times), Min: times[0], Max: times[0]}
	for _, t := range times {
		sum += float64(t)
		if t < s.Min {
			s.Min = t
		}
		if t > s.Max {
			s.Max = t
		}
	}
	mean := sum / float64(len(times))
	var sq float64
	for _, t := range times {
		d := float64(t) - mean
		sq += d * d
	}
	s.Mean = time.Duration(mean)
	var std float64
	if len(times) > 1 {
		std = math.Sqrt(sq / float64(len(times)-1))
		s.Std = time.Duration(std)
		if mean > 0 {
			s.RelStd = std / mean
		}
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.P50 = percentileSorted(sorted, 0.50)
	s.P95 = percentileSorted(sorted, 0.95)
	s.P99 = percentileSorted(sorted, 0.99)
	if std > 0 {
		for _, t := range times {
			if math.Abs(float64(t)-mean) > 3*std {
				s.Outliers++
			}
		}
	}
	return s
}

// Percentile returns the q-th percentile (q in [0,1]) of times by the
// nearest-rank method; 0 for an empty slice.
func Percentile(times []time.Duration, q float64) time.Duration {
	if len(times) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, q)
}

// percentileSorted is the nearest-rank percentile over pre-sorted data.
func percentileSorted(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// DiscardWarmup drops the first k samples — the runs that paid cache and
// frequency ramp-up — returning the remainder (empty if k >= len).
func DiscardWarmup(times []time.Duration, k int) []time.Duration {
	if k < 0 {
		k = 0
	}
	if k >= len(times) {
		return nil
	}
	return times[k:]
}

// CV returns the coefficient of variation (std/mean), the stability
// statistic benchmark reports gate on: a cell whose CV exceeds the
// suite's threshold is flagged noisy rather than trusted.
func (s Sample) CV() float64 { return s.RelStd }

// CohensD computes Cohen's d between two measurement series: the
// difference of means in units of the pooled standard deviation,
// (mean(b)-mean(a)) / s_pooled. Positive d means b is larger (slower,
// for durations). Two deterministic series that differ return ±Inf:
// any shift with zero variance is maximally significant.
func CohensD(a, b []time.Duration) float64 {
	sa, sb := Summarize(a), Summarize(b)
	return CohensDStats(float64(sa.Mean), float64(sa.Std), sa.N,
		float64(sb.Mean), float64(sb.Std), sb.N)
}

// CohensDStats is CohensD from summary statistics, the form the
// regression gate uses when one side is an archived report rather than
// raw samples. Either n may be 0 (unknown, e.g. an old-schema baseline);
// it is then treated as a single observation's weight.
func CohensDStats(meanA, stdA float64, nA int, meanB, stdB float64, nB int) float64 {
	diff := meanB - meanA
	if nA < 1 {
		nA = 1
	}
	if nB < 1 {
		nB = 1
	}
	var pooled float64
	if denom := nA + nB - 2; denom > 0 {
		pooled = math.Sqrt((float64(nA-1)*stdA*stdA + float64(nB-1)*stdB*stdB) / float64(denom))
	}
	if pooled == 0 {
		switch {
		case diff > 0:
			return math.Inf(1)
		case diff < 0:
			return math.Inf(-1)
		default:
			return 0
		}
	}
	return diff / pooled
}

// Effect-size verdict thresholds (Cohen's conventional buckets).
const (
	EffectSmall  = 0.2
	EffectMedium = 0.5
	EffectLarge  = 0.8
)

// EffectVerdict buckets |d| into the conventional labels the generated
// REPORT.md prints next to each compared cell.
func EffectVerdict(d float64) string {
	switch ad := math.Abs(d); {
	case ad < EffectSmall:
		return "negligible"
	case ad < EffectMedium:
		return "small"
	case ad < EffectLarge:
		return "medium"
	default:
		return "large"
	}
}

// String renders the paper's "mean(relstd%)" form.
func (s Sample) String() string {
	return fmt.Sprintf("%s(%.1f%%)", FormatDuration(s.Mean), s.RelStd*100)
}

// FormatDuration prints a duration with three significant figures in the
// most natural unit, avoiding the paper's ms/µs ambiguity. The unit is
// selected after rounding: 999600ns rounds to 1000µs at three figures,
// so it promotes to "1ms" rather than printing %g's "1e+03µs". Seconds
// have no unit above them, so values that round past 999s fall back to
// integer seconds instead of scientific notation.
func FormatDuration(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	neg := ""
	if d < 0 {
		neg, d = "-", -d
	}
	if d < time.Microsecond {
		return fmt.Sprintf("%s%dns", neg, d.Nanoseconds())
	}
	ns := float64(d.Nanoseconds())
	units := []struct {
		div    float64
		suffix string
	}{{1e3, "µs"}, {1e6, "ms"}, {1e9, "s"}}
	for i, u := range units {
		v := ns / u.div
		// %.3g switches to scientific notation at 999.5 (which rounds to
		// 1000); promote to the next unit instead.
		if v >= 999.5 && i < len(units)-1 {
			continue
		}
		if v >= 999.5 {
			return fmt.Sprintf("%s%.0fs", neg, v)
		}
		return fmt.Sprintf("%s%.3g%s", neg, v, u.suffix)
	}
	return d.String() // unreachable
}

// Table accumulates rows and renders aligned text, the shape of the
// paper's tables.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	// Size widths from the widest row, not the header: rows may carry
	// more cells than the header names.
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	// Widths are rune counts, not byte lengths: every µs cell contains
	// the two-byte µ rune, and byte-sized padding shifted those columns
	// one space per µ.
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - utf8.RuneCountInString(c)
			}
			// Right-align all but the first column (numbers).
			if i == 0 {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// Ratio formats a normalized value the way the paper's tables do ("1.0",
// "26.5", "N.A." for absent measurements).
func Ratio(v float64) string {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return "N.A."
	}
	switch {
	case v < 10:
		return fmt.Sprintf("%.2g", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Count formats a break-even count (dimensionless, possibly huge).
func Count(v float64) string {
	switch {
	case math.IsInf(v, 1) || v > 1e9:
		return ">1e9"
	case v <= 0 || math.IsNaN(v):
		return "0"
	case v < 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
