// Package lifecycle manages live graft deployments: versioned
// artifacts, canary routing, atomic hot-swap, and watchdog-triggered
// rollback.
//
// The paper's technologies stop at "load the graft"; every production
// descendant of them — eBPF program replacement, VFIO driver upgrade,
// loadable-module refresh — has to answer the harder operational
// question of replacing a live extension without dropping the traffic
// it is serving. This package answers it with the same optimistic
// revalidation idiom the sharded pager uses for eviction proposals
// (kernel.ShardedPager): the data plane reads the current live set with
// one atomic load, runs the invocation without any lock, and then
// revalidates that the live set it chose is still current before
// recording the result. An invocation that raced a swap is re-executed
// against the new incumbent — never lost, never recorded against a
// retired version, and never torn across two versions, because the
// single atomic pointer store in Promote/Rollback/Demote is the only
// commit point.
//
// The control plane (Activate, Stage, Promote, Rollback, Demote) is
// serialized by a mutex and instrumented with kill points (SetGate) so
// the swap-atomicity suite can abort it between any two steps and
// assert the slot is either fully before or fully after the swap.
package lifecycle

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// Sentinel errors for control-plane misuse.
var (
	// ErrEmptySlot is returned by the data plane when no version has
	// been activated, and by Stage when there is no incumbent to canary
	// against.
	ErrEmptySlot = errors.New("lifecycle: slot has no incumbent")
	// ErrOccupied is returned by Activate when the slot already has an
	// incumbent (upgrades go through Stage + Promote).
	ErrOccupied = errors.New("lifecycle: slot already has an incumbent")
	// ErrNoCandidate is returned by Promote/Demote/Canary when nothing
	// is staged.
	ErrNoCandidate = errors.New("lifecycle: slot has no candidate")
	// ErrNoPrevious is returned by Rollback when no previous incumbent
	// is retained.
	ErrNoPrevious = errors.New("lifecycle: slot has no previous incumbent")
)

// Carrier abstracts how a deployed version executes: a single pinned
// engine (Single) or a pool of per-worker engines (Pooled). Acquire
// returns an engine ready for one invocation plus a release function;
// the engine must only be used between the two, from one goroutine.
type Carrier interface {
	Acquire() (tech.Graft, func(), error)
}

// singleCarrier serializes one engine. Grafts are single-goroutine by
// contract, so the mutex is what makes a lone engine safe to hang off a
// slot that concurrent workers invoke.
type singleCarrier struct {
	mu sync.Mutex
	g  tech.Graft
}

func (c *singleCarrier) Acquire() (tech.Graft, func(), error) {
	c.mu.Lock()
	return c.g, c.mu.Unlock, nil
}

// Single wraps one loaded engine as a Carrier, serializing access.
func Single(g tech.Graft) Carrier { return &singleCarrier{g: g} }

// pooledCarrier adapts a tech.Pool.
type pooledCarrier struct{ p *tech.Pool }

func (c pooledCarrier) Acquire() (tech.Graft, func(), error) {
	it, err := c.p.Get()
	if err != nil {
		return nil, nil, err
	}
	return it, func() { c.p.Put(it) }, nil
}

// Pooled wraps a tech.Pool as a Carrier: each Acquire checks out a
// private instance, so concurrent invocations never share an engine.
func Pooled(p *tech.Pool) Carrier { return pooledCarrier{p} }

// LoadFunc materializes an artifact into an executable Carrier. It runs
// under the slot's control-plane lock, once per deploy.
type LoadFunc func(a tech.Artifact) (Carrier, error)

// Loader builds the common LoadFunc: a fresh linear memory of memSize
// bytes per version, loaded under technology id, wrapped in Single.
func Loader(id tech.ID, memSize uint32, opts tech.Options) LoadFunc {
	return func(a tech.Artifact) (Carrier, error) {
		g, err := a.Load(id, mem.New(memSize), opts)
		if err != nil {
			return nil, err
		}
		return Single(g), nil
	}
}

// PoolLoader builds a LoadFunc that backs each version with its own
// tech.Pool — the carrier for slots invoked by concurrent workers.
func PoolLoader(id tech.ID, opts tech.Options, cfg tech.PoolConfig) LoadFunc {
	return func(a tech.Artifact) (Carrier, error) {
		p, err := tech.NewPool(id, a.Source, opts, cfg)
		if err != nil {
			return nil, err
		}
		return Pooled(p), nil
	}
}

// Point names one instrumented step of the lifecycle protocol, for the
// kill-point suites. Data-plane points (invoke:*) are injection hooks:
// the gate runs but its error is ignored. Control-plane points abort
// the operation when the gate errors — before the commit point the
// operation must leave no visible change; after it, the swap is done
// and the error only reports where the "crash" landed.
type Point string

const (
	PointChosen   Point = "invoke:chosen"
	PointInvoked  Point = "invoke:ran"
	PointRecorded Point = "invoke:recorded"

	PointDeployLoaded    Point = "deploy:loaded"
	PointDeployPrepped   Point = "deploy:prepped"
	PointDeployPublished Point = "deploy:published"

	PointSwapBegin     Point = "swap:begin"
	PointSwapPrepared  Point = "swap:prepared"
	PointSwapCommitted Point = "swap:committed"
	PointSwapRetired   Point = "swap:retired"

	PointRollbackBegin     Point = "rollback:begin"
	PointRollbackCommitted Point = "rollback:committed"
	PointDemoteBegin       Point = "demote:begin"
	PointDemoteCommitted   Point = "demote:committed"
)

// GateFunc observes (and, for control-plane points, may abort) one
// protocol step. Installed with Slot.SetGate; test-only in spirit.
type GateFunc func(p Point) error

// State tracks where a version is in its life. Observability only —
// routing is decided by the live set, not by these markers, so they are
// updated best-effort after the commit point.
type State int32

const (
	StateCandidate State = iota
	StateIncumbent
	StateRetired // displaced by a promote; retained as the rollback target
	StateDemoted // removed by a rollback, demote, or watchdog verdict
)

func (s State) String() string {
	switch s {
	case StateCandidate:
		return "candidate"
	case StateIncumbent:
		return "incumbent"
	case StateRetired:
		return "retired"
	case StateDemoted:
		return "demoted"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// VersionStats accumulates per-version data-plane telemetry. All atomic
// — recorded from the data plane without locks.
type VersionStats struct {
	invocations atomic.Uint64
	traps       atomic.Uint64
	errs        atomic.Uint64
	preempts    atomic.Uint64
	fuel        atomic.Int64
	latency     telemetry.Histogram
}

// Version is one deployed artifact: the immutable identity plus the
// executable carrier and the telemetry split out per version (the
// canary comparison needs candidate and incumbent distributions kept
// apart even though both serve the same slot).
type Version struct {
	Artifact tech.Artifact
	carrier  Carrier
	state    atomic.Int32
	stats    VersionStats
	// met mirrors the per-version stats into the global telemetry
	// registry under the versioned name ("pktfilter@v2"), when telemetry
	// was enabled at deploy time — that is the name the watchdog flags.
	met *telemetry.GraftMetrics
}

// State reports the version's lifecycle state marker.
func (v *Version) State() State { return State(v.state.Load()) }

// setState moves the lifecycle marker and mirrors it as the telemetry
// note on the versioned key, so the export surface and graftmon can
// flag deployment state ("canary", "incumbent", "demoted") next to the
// windowed numbers without importing this package.
func (v *Version) setState(s State) {
	v.state.Store(int32(s))
	if v.met != nil {
		note := s.String()
		if s == StateCandidate {
			note = "canary"
		}
		v.met.SetNote(note)
	}
}

// Invocations reports how many invocations committed against v.
func (v *Version) Invocations() uint64 { return v.stats.invocations.Load() }

// record commits one completed invocation's telemetry. Called only
// after the live-set revalidation in Slot.Do, so every execution is
// recorded at most once and always against the version that served it.
func (v *Version) record(err error, lat time.Duration, fuel int64) {
	v.stats.invocations.Add(1)
	v.stats.latency.Record(lat)
	if fuel > 0 {
		v.stats.fuel.Add(fuel)
	}
	if err != nil {
		var tr *mem.Trap
		if errors.As(err, &tr) {
			v.stats.traps.Add(1)
			if tr.Kind == mem.TrapFuel {
				v.stats.preempts.Add(1)
			}
		} else {
			v.stats.errs.Add(1)
		}
	}
	if v.met != nil {
		v.met.AddInvocations(1)
		v.met.RecordLatency(lat)
		if fuel > 0 {
			v.met.AddFuel(fuel)
		}
		if err != nil {
			v.met.RecordError(err)
		}
	}
}

// VersionedName renders the telemetry registry name for version v of a
// slot: "pktfilter@v2". The watchdog flags (graft, tech) pairs by this
// name, which is how a violation maps back to a specific deployment.
func VersionedName(slot string, v uint64) string {
	return fmt.Sprintf("%s@v%d", slot, v)
}

// liveSet is the immutable routing table the data plane reads with one
// atomic load. Every control-plane operation publishes a fresh liveSet
// (never mutates the current one) with a bumped epoch, so pointer
// identity doubles as the revalidation token.
type liveSet struct {
	epoch       uint64
	incumbent   *Version
	candidate   *Version // nil when nothing is staged
	canaryEvery uint64   // route every n-th invocation to the candidate
}

// Result describes one committed invocation.
type Result struct {
	Value uint32
	// Version and Epoch identify the deployment that served the
	// invocation — the liveSet that survived revalidation.
	Version uint64
	Epoch   uint64
	// Canary is set when the invocation was routed to the candidate.
	Canary bool
	// Retries counts executions discarded because a swap committed
	// mid-flight; the recorded execution ran against the new live set.
	Retries int
	Fuel    int64
	Latency time.Duration
}

// Slot is one named extension point (e.g. the packet filter) with a
// live deployment history. The data plane (Do/Invoke) is lock-free on
// the slot: one atomic liveSet load, one revalidation load. The control
// plane is serialized by mu.
type Slot struct {
	name string
	tech tech.ID
	load LoadFunc

	cur  atomic.Pointer[liveSet]
	gate atomic.Pointer[GateFunc]

	mu       sync.Mutex
	prev     *Version   // rollback target; set by Promote, consumed by Rollback
	versions []*Version // every version ever deployed, in deploy order

	seq       atomic.Uint64 // invocations issued
	aborted   atomic.Uint64 // issued but failed before execution (acquire/prep)
	retries   atomic.Uint64 // executions discarded by swap revalidation
	swaps     atomic.Uint64
	rollbacks atomic.Uint64
	demotions atomic.Uint64
}

// NewSlot builds an unregistered slot. Most callers go through
// Registry.NewSlot instead.
func NewSlot(name string, id tech.ID, load LoadFunc) *Slot {
	return &Slot{name: name, tech: id, load: load}
}

// Name reports the slot's name.
func (s *Slot) Name() string { return s.name }

// Tech reports the technology versions deploy under.
func (s *Slot) Tech() tech.ID { return s.tech }

// SetGate installs (nil removes) the kill-point gate.
func (s *Slot) SetGate(fn GateFunc) {
	if fn == nil {
		s.gate.Store(nil)
		return
	}
	s.gate.Store(&fn)
}

func (s *Slot) gateAt(p Point) error {
	if f := s.gate.Load(); f != nil {
		return (*f)(p)
	}
	return nil
}

// Epoch reports the current live-set epoch (0 when empty).
func (s *Slot) Epoch() uint64 {
	if ls := s.cur.Load(); ls != nil {
		return ls.epoch
	}
	return 0
}

// Incumbent returns the currently routed version (nil when empty).
func (s *Slot) Incumbent() *Version {
	if ls := s.cur.Load(); ls != nil {
		return ls.incumbent
	}
	return nil
}

// Candidate returns the staged version (nil when nothing is staged).
func (s *Slot) Candidate() *Version {
	if ls := s.cur.Load(); ls != nil {
		return ls.candidate
	}
	return nil
}

// Versions returns every version ever deployed, in deploy order.
func (s *Slot) Versions() []*Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Version(nil), s.versions...)
}

// deploy loads an artifact and runs the optional prep against one
// acquired instance. Caller holds s.mu. prep sees a single engine's
// memory; pooled carriers should initialize per-instance state through
// tech.PoolConfig.Setup instead, which runs for every instance.
func (s *Slot) deploy(a tech.Artifact, prep func(m *mem.Memory) error) (*Version, error) {
	carrier, err := s.load(a)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: load %s: %w", a.Ref(), err)
	}
	if err := s.gateAt(PointDeployLoaded); err != nil {
		return nil, err
	}
	if prep != nil {
		g, release, err := carrier.Acquire()
		if err != nil {
			return nil, fmt.Errorf("lifecycle: prep %s: %w", a.Ref(), err)
		}
		perr := prep(g.Memory())
		release()
		if perr != nil {
			return nil, fmt.Errorf("lifecycle: prep %s: %w", a.Ref(), perr)
		}
	}
	if err := s.gateAt(PointDeployPrepped); err != nil {
		return nil, err
	}
	v := &Version{Artifact: a, carrier: carrier}
	if telemetry.Enabled() {
		v.met = telemetry.Register(VersionedName(s.name, a.Version), string(s.tech))
	}
	v.setState(StateCandidate)
	return v, nil
}

// Activate deploys the slot's first incumbent. Upgrades of an occupied
// slot go through Stage + Promote so in-flight traffic is never served
// by an unvetted version.
func (s *Slot) Activate(a tech.Artifact, prep func(m *mem.Memory) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur.Load() != nil {
		return ErrOccupied
	}
	v, err := s.deploy(a, prep)
	if err != nil {
		return err
	}
	v.setState(StateIncumbent)
	s.versions = append(s.versions, v)
	s.cur.Store(&liveSet{epoch: 1, incumbent: v})
	return s.gateAt(PointDeployPublished)
}

// Stage deploys a candidate next to the incumbent and starts canary
// routing: every canaryEvery-th invocation is served by the candidate
// (0 stages without routing any traffic). A gate error before the
// publish leaves the slot unchanged.
func (s *Slot) Stage(a tech.Artifact, prep func(m *mem.Memory) error, canaryEvery uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.cur.Load()
	if ls == nil {
		return ErrEmptySlot
	}
	v, err := s.deploy(a, prep)
	if err != nil {
		return err
	}
	s.versions = append(s.versions, v)
	s.cur.Store(&liveSet{
		epoch:       ls.epoch + 1,
		incumbent:   ls.incumbent,
		candidate:   v,
		canaryEvery: canaryEvery,
	})
	return s.gateAt(PointDeployPublished)
}

// Promote makes the candidate the incumbent — the hot swap. The single
// liveSet store is the commit point: a gate error before it leaves the
// slot unchanged (the retried Promote succeeds); after it the swap is
// durable and the error only reports where the crash landed. The
// displaced incumbent is retained as the rollback target.
func (s *Slot) Promote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateAt(PointSwapBegin); err != nil {
		return err
	}
	ls := s.cur.Load()
	if ls == nil {
		return ErrEmptySlot
	}
	if ls.candidate == nil {
		return ErrNoCandidate
	}
	next := &liveSet{epoch: ls.epoch + 1, incumbent: ls.candidate}
	if err := s.gateAt(PointSwapPrepared); err != nil {
		return err
	}
	s.cur.Store(next) // commit point
	s.prev = ls.incumbent
	s.swaps.Add(1)
	if err := s.gateAt(PointSwapCommitted); err != nil {
		return err
	}
	ls.candidate.setState(StateIncumbent)
	ls.incumbent.setState(StateRetired)
	return s.gateAt(PointSwapRetired)
}

// Rollback restores the previous incumbent, demoting the current one
// (and any staged candidate). One level deep: the rollback target is
// consumed, so a second Rollback without an intervening Promote fails.
func (s *Slot) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateAt(PointRollbackBegin); err != nil {
		return err
	}
	ls := s.cur.Load()
	if ls == nil {
		return ErrEmptySlot
	}
	if s.prev == nil {
		return ErrNoPrevious
	}
	restored := s.prev
	s.cur.Store(&liveSet{epoch: ls.epoch + 1, incumbent: restored}) // commit point
	s.prev = nil
	s.rollbacks.Add(1)
	restored.setState(StateIncumbent)
	ls.incumbent.setState(StateDemoted)
	if ls.candidate != nil {
		ls.candidate.setState(StateDemoted)
	}
	return s.gateAt(PointRollbackCommitted)
}

// Demote drops the staged candidate, keeping the incumbent — the
// watchdog's verdict on a canary that breached its SLO.
func (s *Slot) Demote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateAt(PointDemoteBegin); err != nil {
		return err
	}
	ls := s.cur.Load()
	if ls == nil {
		return ErrEmptySlot
	}
	if ls.candidate == nil {
		return ErrNoCandidate
	}
	s.cur.Store(&liveSet{epoch: ls.epoch + 1, incumbent: ls.incumbent}) // commit point
	s.demotions.Add(1)
	ls.candidate.setState(StateDemoted)
	return s.gateAt(PointDemoteCommitted)
}

// Invoke runs entry through the slot's live routing. See Do.
func (s *Slot) Invoke(entry string, args ...uint32) (Result, error) {
	return s.Do(entry, nil, args...)
}

// Do runs one invocation through the live set: choose a version
// (incumbent, or candidate on the canary cadence), run prep against the
// acquired engine's memory, invoke, then revalidate that the live set
// is still current before recording — the pager's optimistic
// revalidation applied to dispatch. If a swap committed mid-flight the
// completed execution is discarded and re-run against the new live set,
// so the caller's operation is neither lost nor attributed to a retired
// version. The returned error is the graft's own result (traps
// included); acquire/prep failures abort without retrying.
func (s *Slot) Do(entry string, prep func(m *mem.Memory) error, args ...uint32) (Result, error) {
	var res Result
	var n uint64
	for {
		ls := s.cur.Load()
		if ls == nil {
			return res, ErrEmptySlot
		}
		if n == 0 {
			n = s.seq.Add(1)
		}
		v := ls.incumbent
		canary := false
		if ls.candidate != nil && ls.canaryEvery > 0 && n%ls.canaryEvery == 0 {
			v = ls.candidate
			canary = true
		}
		s.gateAt(PointChosen)
		g, release, err := v.carrier.Acquire()
		if err != nil {
			s.aborted.Add(1)
			return res, fmt.Errorf("lifecycle: acquire %s: %w", v.Artifact.Ref(), err)
		}
		if prep != nil {
			if perr := prep(g.Memory()); perr != nil {
				release()
				s.aborted.Add(1)
				return res, fmt.Errorf("lifecycle: prep %s: %w", v.Artifact.Ref(), perr)
			}
		}
		start := time.Now()
		val, ierr := g.Invoke(entry, args...)
		lat := time.Since(start)
		var fuel int64
		if fr, ok := g.(tech.FuelReporter); ok {
			fuel = fr.FuelUsed()
		}
		release()
		s.gateAt(PointInvoked)
		if s.cur.Load() != ls {
			// A control-plane commit landed while the graft ran. The
			// execution above might have used a version that is no longer
			// live — discard it and revalidate against the new incumbent,
			// exactly like a pager proposal that went stale unlocked.
			res.Retries++
			s.retries.Add(1)
			continue
		}
		v.record(ierr, lat, fuel)
		res.Value = val
		res.Version = v.Artifact.Version
		res.Epoch = ls.epoch
		res.Canary = canary
		res.Fuel = fuel
		res.Latency = lat
		s.gateAt(PointRecorded)
		return res, ierr
	}
}

// Accounting is the slot's conservation ledger: every issued invocation
// is either committed against exactly one version or aborted before
// execution, regardless of how many swaps it raced.
type Accounting struct {
	Issued    uint64 // Do calls that saw a live slot
	Committed uint64 // recorded executions, summed over all versions
	Aborted   uint64 // failed before execution (acquire/prep errors)
	Retried   uint64 // executions discarded by swap revalidation
	Swaps     uint64
	Rollbacks uint64
	Demotions uint64
}

// Accounting snapshots the ledger. Quiescent (no Do in flight), it must
// satisfy Issued == Committed + Aborted.
func (s *Slot) Accounting() Accounting {
	s.mu.Lock()
	versions := append([]*Version(nil), s.versions...)
	s.mu.Unlock()
	a := Accounting{
		Issued:    s.seq.Load(),
		Aborted:   s.aborted.Load(),
		Retried:   s.retries.Load(),
		Swaps:     s.swaps.Load(),
		Rollbacks: s.rollbacks.Load(),
		Demotions: s.demotions.Load(),
	}
	for _, v := range versions {
		a.Committed += v.stats.invocations.Load()
	}
	return a
}
