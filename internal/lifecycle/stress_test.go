package lifecycle_test

import (
	"sync"
	"testing"

	"graftlab/internal/lifecycle"
	"graftlab/internal/tech"
)

// TestStressLifecycleSwapUnderLoad hammers one slot from concurrent
// workers (pooled carriers, so engines are never shared) while the
// deployment cycles v1 → v2 → v3 → ... through Stage/Promote, with
// periodic Rollbacks thrown in. Control-plane operations are issued
// from inside the worker loops rather than a background goroutine so
// they are guaranteed to interleave with invocations even on
// GOMAXPROCS=1. The invariants are the lifecycle conservation laws:
// every result matches its serving version's pure function, and the
// ledger balances exactly — no invocation lost, duplicated, or torn
// across a swap, under the race detector.
func TestStressLifecycleSwapUnderLoad(t *testing.T) {
	workers, iters := 8, 400
	if testing.Short() {
		workers, iters = 4, 100
	}
	const maxVer = 6
	s := lifecycle.NewSlot("decide", tech.Bytecode,
		lifecycle.PoolLoader(tech.Bytecode, tech.Options{Fuel: 1 << 20},
			tech.PoolConfig{MemSize: decideMemSize}))
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards nextVer and serializes control-plane intent
	nextVer := uint64(2)
	fail := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				x := uint32((w*31 + i) % 17)
				if x == 13 {
					x = 14 // keep the stream trap-free; traps are covered elsewhere
				}
				res, err := s.Invoke("decide", x)
				if err != nil {
					fail[w] = err
					return
				}
				if res.Value != decideValue(int(res.Version), x) {
					t.Errorf("worker %d: v%d returned %d for x=%d, want %d — torn execution",
						w, res.Version, res.Value, x, decideValue(int(res.Version), x))
					return
				}
				// Worker 0 drives the deployment cycle; worker 1 injects
				// rollbacks. Both tolerate state-machine refusals (someone
				// else may have consumed the candidate or the target).
				if w == 0 && i%20 == 10 {
					mu.Lock()
					v := nextVer
					if v <= maxVer {
						nextVer++
					}
					mu.Unlock()
					if v <= maxVer {
						if err := s.Stage(tech.NewArtifact(decideSrc(int(v)), v), nil, 8); err != nil {
							fail[w] = err
							return
						}
						if err := s.Promote(); err != nil {
							fail[w] = err
							return
						}
					}
				}
				if w == 1 && i%150 == 75 {
					s.Rollback() // best-effort; ErrNoPrevious is fine
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range fail {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	a := s.Accounting()
	if want := uint64(workers * iters); a.Issued != want {
		t.Fatalf("issued %d, want %d", a.Issued, want)
	}
	if a.Committed != a.Issued || a.Aborted != 0 {
		t.Fatalf("ledger %+v: committed != issued under concurrent swaps", a)
	}
	var perVersion uint64
	for _, v := range s.Versions() {
		perVersion += v.Invocations()
	}
	if perVersion != a.Committed {
		t.Fatalf("per-version sum %d != committed %d", perVersion, a.Committed)
	}
	if a.Swaps == 0 {
		t.Fatal("no swaps executed under load")
	}
	t.Logf("ledger: %+v over %d versions", a, len(s.Versions()))
}
