package lifecycle_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"graftlab/internal/lifecycle"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// The swap-atomicity kill-point suite. Each kill point interrupts the
// invoke/swap interleaving at one instrumented step — either by
// committing a Promote inline at an arbitrary data-plane step, or by
// aborting the Promote critical section itself at one of its gate
// points — and then checks the invariants a hot swap must preserve:
//
//   - every committed invocation's value, trap kind, and fuel agree
//     with a swap-free oracle run of the version that served it (no
//     invocation executes against a torn policy);
//   - the version sequence observed by the invocation stream is
//     monotone v1 → v2 (no flip-flopping, no lost swap);
//   - the slot's ledger balances: every issued invocation committed
//     against exactly one version (none lost, none double-counted).

// kpTech is one technology column of the suite.
type kpTech struct {
	name string
	id   tech.ID
	opts tech.Options
}

func kpTechs() []kpTech {
	fuel := tech.Options{Fuel: 1 << 20}
	baseline := fuel
	baseline.VM = tech.VMBaseline
	return []kpTech{
		{"bytecode-opt", tech.Bytecode, fuel},
		{"bytecode-baseline", tech.Bytecode, baseline},
		{"aot", tech.AOT, fuel},
		{"native-safe", tech.NativeSafe, fuel},
	}
}

// kpOutcome is the oracle record for one (version, input) pair.
type kpOutcome struct {
	val  uint32
	trap mem.TrapKind
	fuel int64
}

// kpOracle runs each (version, input) pair once on a private, swap-free
// engine and caches the outcome. Engines are cached too: the decide
// graft is stateless, so reuse keeps a 1000-point sweep cheap.
type kpOracle struct {
	mu     sync.Mutex
	grafts map[string]tech.Graft
	runs   map[string]kpOutcome
}

func newKPOracle() *kpOracle {
	return &kpOracle{grafts: map[string]tech.Graft{}, runs: map[string]kpOutcome{}}
}

func (o *kpOracle) graft(t *testing.T, tc kpTech, ver int) tech.Graft {
	t.Helper()
	key := fmt.Sprintf("%s/v%d", tc.name, ver)
	o.mu.Lock()
	defer o.mu.Unlock()
	g, ok := o.grafts[key]
	if !ok {
		var err error
		g, err = tech.Load(tc.id, decideSrc(ver), mem.New(decideMemSize), tc.opts)
		if err != nil {
			t.Fatalf("oracle load %s: %v", key, err)
		}
		o.grafts[key] = g
	}
	return g
}

func (o *kpOracle) outcome(t *testing.T, tc kpTech, ver int, x uint32) kpOutcome {
	t.Helper()
	key := fmt.Sprintf("%s/v%d/%d", tc.name, ver, x)
	o.mu.Lock()
	out, ok := o.runs[key]
	o.mu.Unlock()
	if ok {
		return out
	}
	g := o.graft(t, tc, ver)
	val, err := g.Invoke("decide", x)
	out = kpOutcome{val: val}
	if err != nil {
		var tr *mem.Trap
		if !errors.As(err, &tr) {
			t.Fatalf("oracle %s: non-trap error %v", key, err)
		}
		out.trap = tr.Kind
	}
	if fr, ok := g.(tech.FuelReporter); ok {
		out.fuel = fr.FuelUsed()
	}
	o.mu.Lock()
	o.runs[key] = out
	o.mu.Unlock()
	return out
}

// kpCarriers caches one live carrier per (tech, version) so a fresh
// Slot per kill point costs no engine loads. Slot state (versions,
// ledger, live set) is rebuilt every point; only the engines persist.
func kpCarriers(t *testing.T, o *kpOracle, tc kpTech) lifecycle.LoadFunc {
	carriers := map[uint64]lifecycle.Carrier{}
	return func(a tech.Artifact) (lifecycle.Carrier, error) {
		c, ok := carriers[a.Version]
		if !ok {
			c = lifecycle.Single(o.graft(t, tc, int(a.Version)))
			carriers[a.Version] = c
		}
		return c, nil
	}
}

// kpInputs is the per-point invocation stream: mixed values plus the
// poison input 13 (OOB load) so trap behavior crosses the swap too.
func kpInputs(rng *rand.Rand) []uint32 {
	in := make([]uint32, 12)
	for i := range in {
		in[i] = uint32(rng.Intn(20))
		if i == 4 || i == 9 {
			in[i] = 13
		}
	}
	return in
}

// kpVerify replays the committed results against the oracle.
func kpVerify(t *testing.T, tc kpTech, o *kpOracle, results []lifecycle.Result, errs []error, inputs []uint32, tag string) {
	t.Helper()
	lastVer := uint64(0)
	for i, res := range results {
		if res.Version < lastVer {
			t.Fatalf("%s: invocation %d served by v%d after v%d — version sequence not monotone",
				tag, i, res.Version, lastVer)
		}
		lastVer = res.Version
		want := o.outcome(t, tc, int(res.Version), inputs[i])
		if errs[i] != nil {
			var tr *mem.Trap
			if !errors.As(errs[i], &tr) {
				t.Fatalf("%s: invocation %d: non-trap error %v", tag, i, errs[i])
			}
			if tr.Kind != want.trap {
				t.Fatalf("%s: invocation %d (x=%d, v%d): trap %v, oracle %v",
					tag, i, inputs[i], res.Version, tr.Kind, want.trap)
			}
		} else {
			if want.trap != mem.TrapNone {
				t.Fatalf("%s: invocation %d (x=%d, v%d): no trap, oracle traps %v",
					tag, i, inputs[i], res.Version, want.trap)
			}
			if res.Value != want.val {
				t.Fatalf("%s: invocation %d (x=%d, v%d): value %d, oracle %d — executed against a torn policy?",
					tag, i, inputs[i], res.Version, res.Value, want.val)
			}
		}
		if res.Fuel != want.fuel {
			t.Fatalf("%s: invocation %d (x=%d, v%d): fuel %d, oracle %d",
				tag, i, inputs[i], res.Version, res.Fuel, want.fuel)
		}
	}
}

// kpLedger checks conservation after a quiesced run.
func kpLedger(t *testing.T, s *lifecycle.Slot, issued int, tag string) {
	t.Helper()
	a := s.Accounting()
	if a.Issued != uint64(issued) || a.Aborted != 0 {
		t.Fatalf("%s: ledger %+v, want %d issued / 0 aborted", tag, a, issued)
	}
	if a.Committed != a.Issued {
		t.Fatalf("%s: %d issued but %d committed — an invocation was lost or duplicated (%+v)",
			tag, a.Issued, a.Committed, a)
	}
	var perVersion uint64
	for _, v := range s.Versions() {
		perVersion += v.Invocations()
	}
	if perVersion != a.Committed {
		t.Fatalf("%s: per-version invocations sum to %d, ledger committed %d", tag, perVersion, a.Committed)
	}
}

// runKillPointInline drives one stream with a Promote committed inline
// at the killStep-th data-plane gate crossing (or after the stream, if
// the step lies beyond it).
func runKillPointInline(t *testing.T, tc kpTech, o *kpOracle, load lifecycle.LoadFunc, rng *rand.Rand, killStep int, tag string) {
	t.Helper()
	s := lifecycle.NewSlot("decide", tc.id, load)
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Stage(tech.NewArtifact(decideSrc(2), 2), nil, 0); err != nil {
		t.Fatal(err)
	}
	step := 0
	inPromote := false
	swapped := false
	s.SetGate(func(p lifecycle.Point) error {
		if inPromote {
			return nil // Promote's own gate points re-enter here
		}
		if !swapped && step == killStep {
			inPromote = true
			swapped = true
			if err := s.Promote(); err != nil {
				t.Errorf("%s: inline promote at %s: %v", tag, p, err)
			}
			inPromote = false
		}
		step++
		return nil
	})
	inputs := kpInputs(rng)
	results := make([]lifecycle.Result, len(inputs))
	errs := make([]error, len(inputs))
	for i, x := range inputs {
		results[i], errs[i] = s.Invoke("decide", x)
	}
	s.SetGate(nil)
	if !swapped {
		if err := s.Promote(); err != nil {
			t.Fatalf("%s: trailing promote: %v", tag, err)
		}
	}
	if s.Incumbent().Artifact.Version != 2 || s.Candidate() != nil {
		t.Fatalf("%s: slot did not converge on v2", tag)
	}
	kpVerify(t, tc, o, results, errs, inputs, tag)
	kpLedger(t, s, len(inputs), tag)
}

// errKilled is the injected control-plane crash.
var errKilled = errors.New("killed at gate")

// runKillPointSwapAbort aborts the Promote critical section at one of
// its own gate points, mid-stream. The invariant is all-or-nothing: an
// abort before the commit point leaves the slot routing v1 with the
// candidate intact and a retried Promote succeeding; an abort after it
// leaves the swap fully visible. Either way the surrounding stream's
// results stay oracle-exact.
func runKillPointSwapAbort(t *testing.T, tc kpTech, o *kpOracle, load lifecycle.LoadFunc, rng *rand.Rand, killPoint lifecycle.Point, tag string) {
	t.Helper()
	s := lifecycle.NewSlot("decide", tc.id, load)
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Stage(tech.NewArtifact(decideSrc(2), 2), nil, 0); err != nil {
		t.Fatal(err)
	}
	inputs := kpInputs(rng)
	results := make([]lifecycle.Result, 0, len(inputs))
	errs := make([]error, 0, len(inputs))
	half := len(inputs) / 2
	for _, x := range inputs[:half] {
		res, err := s.Invoke("decide", x)
		results, errs = append(results, res), append(errs, err)
	}

	epochBefore := s.Epoch()
	s.SetGate(func(p lifecycle.Point) error {
		if p == killPoint {
			return errKilled
		}
		return nil
	})
	err := s.Promote()
	s.SetGate(nil)
	if !errors.Is(err, errKilled) {
		t.Fatalf("%s: killed promote returned %v", tag, err)
	}
	committed := s.Epoch() != epochBefore
	switch killPoint {
	case lifecycle.PointSwapBegin, lifecycle.PointSwapPrepared:
		if committed {
			t.Fatalf("%s: abort at %s leaked a committed swap", tag, killPoint)
		}
		if s.Incumbent().Artifact.Version != 1 || s.Candidate() == nil {
			t.Fatalf("%s: abort at %s tore the live set", tag, killPoint)
		}
	case lifecycle.PointSwapCommitted, lifecycle.PointSwapRetired:
		if !committed {
			t.Fatalf("%s: abort at %s lost a committed swap", tag, killPoint)
		}
		if s.Incumbent().Artifact.Version != 2 || s.Candidate() != nil {
			t.Fatalf("%s: post-commit abort at %s left torn routing", tag, killPoint)
		}
	}

	for _, x := range inputs[half:] {
		res, err := s.Invoke("decide", x)
		results, errs = append(results, res), append(errs, err)
	}
	if !committed {
		// The crash landed before the commit point; the retried swap must
		// succeed as if the first attempt never happened.
		if err := s.Promote(); err != nil {
			t.Fatalf("%s: retried promote after pre-commit abort: %v", tag, err)
		}
	}
	if s.Incumbent().Artifact.Version != 2 {
		t.Fatalf("%s: slot did not converge on v2", tag)
	}
	kpVerify(t, tc, o, results, errs, inputs, tag)
	kpLedger(t, s, len(inputs), tag)
}

// TestSwapAtomicityKillPoints sweeps ~1000 kill points across the swap
// critical section — both VM tiers, the AOT tier, and a compiled-native
// tier — checking every committed invocation against a swap-free
// oracle. See the file comment for the pinned invariants.
func TestSwapAtomicityKillPoints(t *testing.T) {
	perTech := 250
	if testing.Short() {
		perTech = 15
	}
	swapPoints := []lifecycle.Point{
		lifecycle.PointSwapBegin, lifecycle.PointSwapPrepared,
		lifecycle.PointSwapCommitted, lifecycle.PointSwapRetired,
	}
	o := newKPOracle()
	for _, tc := range kpTechs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			load := kpCarriers(t, o, tc)
			rng := rand.New(rand.NewSource(int64(len(tc.name)) * 7919))
			// A stream crosses ~3 gate points per invocation plus the
			// control points; drawing past the end exercises the
			// swap-after-stream path too.
			maxStep := len(kpInputs(rand.New(rand.NewSource(0))))*3 + 8
			for i := 0; i < perTech; i++ {
				if i%2 == 0 {
					killStep := rng.Intn(maxStep)
					tag := fmt.Sprintf("%s/inline/%d@step%d", tc.name, i, killStep)
					runKillPointInline(t, tc, o, load, rng, killStep, tag)
				} else {
					kp := swapPoints[rng.Intn(len(swapPoints))]
					tag := fmt.Sprintf("%s/abort/%d@%s", tc.name, i, kp)
					runKillPointSwapAbort(t, tc, o, load, rng, kp, tag)
				}
			}
		})
	}
}
