package lifecycle_test

import (
	"errors"
	"fmt"
	"testing"

	"graftlab/internal/lifecycle"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// decideSrc builds version ver of the "decide" graft: a pure function
// of its argument with the version baked into the result (so a result
// proves which version served it), a guaranteed out-of-bounds load at
// x == 13 (so trap behavior is comparable across versions), and an
// argument-dependent loop (so fuel consumption is observable).
func decideSrc(ver int) tech.Source {
	return tech.Source{
		Name: "decide",
		GEL: fmt.Sprintf(`
func decide(x) {
	if (x == 13) { return ld32(1048576); }
	var acc = %d;
	var i = 0;
	while (i < x) { acc = acc + 3; i = i + 1; }
	return acc + x * 31;
}
`, ver*1000),
	}
}

// decideValue is the oracle for decideSrc(ver) at x (x != 13).
func decideValue(ver int, x uint32) uint32 {
	return uint32(ver*1000) + 3*x + x*31
}

const decideMemSize = 1 << 12

func decideSlot(t *testing.T, id tech.ID) *lifecycle.Slot {
	t.Helper()
	return lifecycle.NewSlot("decide", id, lifecycle.Loader(id, decideMemSize, tech.Options{Fuel: 1 << 20}))
}

func TestSlotActivateAndInvoke(t *testing.T) {
	s := decideSlot(t, tech.Bytecode)
	if _, err := s.Invoke("decide", 5); !errors.Is(err, lifecycle.ErrEmptySlot) {
		t.Fatalf("invoke on empty slot: %v, want ErrEmptySlot", err)
	}
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Activate(tech.NewArtifact(decideSrc(2), 2), nil); !errors.Is(err, lifecycle.ErrOccupied) {
		t.Fatalf("second Activate: %v, want ErrOccupied", err)
	}
	res, err := s.Invoke("decide", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != decideValue(1, 5) || res.Version != 1 || res.Epoch != 1 || res.Canary {
		t.Fatalf("result = %+v", res)
	}
	if res.Fuel <= 0 {
		t.Fatalf("metered technology reported fuel %d", res.Fuel)
	}
	// A trap is a committed invocation, attributed to the version.
	if _, err := s.Invoke("decide", 13); err == nil {
		t.Fatal("OOB load did not trap")
	} else {
		var tr *mem.Trap
		if !errors.As(err, &tr) || tr.Kind != mem.TrapOOBLoad {
			t.Fatalf("trap = %v, want OOB load", err)
		}
	}
	a := s.Accounting()
	// The empty-slot invoke was never issued; the trap still commits.
	if a.Issued != 2 || a.Committed != 2 || a.Aborted != 0 {
		t.Fatalf("accounting = %+v, want issued=2 committed=2 aborted=0", a)
	}
}

func TestSlotAccountingSeparatesAbortedPrep(t *testing.T) {
	s := decideSlot(t, tech.Bytecode)
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("prep failed")
	if _, err := s.Do("decide", func(m *mem.Memory) error { return boom }, 5); !errors.Is(err, boom) {
		t.Fatalf("prep error not surfaced: %v", err)
	}
	if _, err := s.Do("decide", func(m *mem.Memory) error { return nil }, 5); err != nil {
		t.Fatal(err)
	}
	a := s.Accounting()
	if a.Issued != 2 || a.Committed != 1 || a.Aborted != 1 {
		t.Fatalf("accounting = %+v, want issued=2 committed=1 aborted=1", a)
	}
}

func TestStagePromoteRollbackDemoteStateMachine(t *testing.T) {
	s := decideSlot(t, tech.Bytecode)
	if err := s.Stage(tech.NewArtifact(decideSrc(2), 2), nil, 4); !errors.Is(err, lifecycle.ErrEmptySlot) {
		t.Fatalf("Stage on empty slot: %v, want ErrEmptySlot", err)
	}
	if err := s.Promote(); !errors.Is(err, lifecycle.ErrEmptySlot) {
		t.Fatalf("Promote on empty slot: %v, want ErrEmptySlot", err)
	}
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(); !errors.Is(err, lifecycle.ErrNoCandidate) {
		t.Fatalf("Promote without candidate: %v, want ErrNoCandidate", err)
	}
	if err := s.Rollback(); !errors.Is(err, lifecycle.ErrNoPrevious) {
		t.Fatalf("Rollback without previous: %v, want ErrNoPrevious", err)
	}

	if err := s.Stage(tech.NewArtifact(decideSrc(2), 2), nil, 4); err != nil {
		t.Fatal(err)
	}
	v1, v2 := s.Incumbent(), s.Candidate()
	if v1.Artifact.Version != 1 || v2.Artifact.Version != 2 {
		t.Fatalf("incumbent v%d candidate v%d", v1.Artifact.Version, v2.Artifact.Version)
	}
	if v1.State() != lifecycle.StateIncumbent || v2.State() != lifecycle.StateCandidate {
		t.Fatalf("states %v / %v", v1.State(), v2.State())
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch %d after stage, want 2", s.Epoch())
	}

	if err := s.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := s.Incumbent(); got != v2 || got.State() != lifecycle.StateIncumbent {
		t.Fatalf("incumbent after promote: v%d %v", got.Artifact.Version, got.State())
	}
	if v1.State() != lifecycle.StateRetired {
		t.Fatalf("displaced incumbent state %v, want retired", v1.State())
	}
	if s.Candidate() != nil {
		t.Fatal("candidate survived promote")
	}
	res, err := s.Invoke("decide", 7)
	if err != nil || res.Value != decideValue(2, 7) || res.Version != 2 {
		t.Fatalf("post-promote invoke = %+v, %v", res, err)
	}

	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := s.Incumbent(); got != v1 || got.State() != lifecycle.StateIncumbent {
		t.Fatalf("incumbent after rollback: v%d %v", got.Artifact.Version, got.State())
	}
	if v2.State() != lifecycle.StateDemoted {
		t.Fatalf("rolled-back incumbent state %v, want demoted", v2.State())
	}
	if err := s.Rollback(); !errors.Is(err, lifecycle.ErrNoPrevious) {
		t.Fatalf("second Rollback: %v, want ErrNoPrevious (target consumed)", err)
	}

	if err := s.Demote(); !errors.Is(err, lifecycle.ErrNoCandidate) {
		t.Fatalf("Demote without candidate: %v, want ErrNoCandidate", err)
	}
	if err := s.Stage(tech.NewArtifact(decideSrc(3), 3), nil, 2); err != nil {
		t.Fatal(err)
	}
	v3 := s.Candidate()
	if err := s.Demote(); err != nil {
		t.Fatal(err)
	}
	if v3.State() != lifecycle.StateDemoted || s.Candidate() != nil || s.Incumbent() != v1 {
		t.Fatal("demote did not drop the candidate cleanly")
	}
	if got := len(s.Versions()); got != 3 {
		t.Fatalf("deploy history has %d versions, want 3", got)
	}
	a := s.Accounting()
	if a.Swaps != 1 || a.Rollbacks != 1 || a.Demotions != 1 {
		t.Fatalf("accounting = %+v, want 1 swap / 1 rollback / 1 demotion", a)
	}
}

func TestCanaryRouting(t *testing.T) {
	s := decideSlot(t, tech.Bytecode)
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Stage(tech.NewArtifact(decideSrc(2), 2), nil, 4); err != nil {
		t.Fatal(err)
	}
	var canaries int
	for i := 0; i < 40; i++ {
		res, err := s.Invoke("decide", 6)
		if err != nil {
			t.Fatal(err)
		}
		wantVer := uint64(1)
		if res.Canary {
			canaries++
			wantVer = 2
		}
		if res.Version != wantVer || res.Value != decideValue(int(wantVer), 6) {
			t.Fatalf("invocation %d: %+v", i, res)
		}
	}
	if canaries != 10 {
		t.Fatalf("%d of 40 invocations routed to the canary, want 10 (1 in 4)", canaries)
	}
	if inc, cand := s.Incumbent().Invocations(), s.Candidate().Invocations(); inc != 30 || cand != 10 {
		t.Fatalf("per-version invocations %d/%d, want 30/10", inc, cand)
	}
}

// TestDoRevalidatesAcrossSwap pins the optimistic-revalidation seam: a
// swap that commits while an invocation is in flight forces that
// invocation to discard its execution and re-run against the new
// incumbent — the result reflects the post-swap version, and the
// discarded execution is counted as a retry, not an invocation.
func TestDoRevalidatesAcrossSwap(t *testing.T) {
	s := decideSlot(t, tech.Bytecode)
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Stage(tech.NewArtifact(decideSrc(2), 2), nil, 0); err != nil {
		t.Fatal(err)
	}
	swapped := false
	s.SetGate(func(p lifecycle.Point) error {
		if p == lifecycle.PointInvoked && !swapped {
			swapped = true // before Promote: its own gate points re-enter here
			if err := s.Promote(); err != nil {
				t.Fatal(err)
			}
		}
		return nil
	})
	res, err := s.Invoke("decide", 9)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGate(nil)
	if res.Version != 2 || res.Value != decideValue(2, 9) {
		t.Fatalf("raced invocation served by v%d = %d, want v2's result", res.Version, res.Value)
	}
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1", res.Retries)
	}
	a := s.Accounting()
	if a.Issued != 1 || a.Committed != 1 || a.Retried != 1 {
		t.Fatalf("accounting = %+v, want issued=1 committed=1 retried=1", a)
	}
	if got := s.Versions()[0].Invocations(); got != 0 {
		t.Fatalf("v1 recorded %d invocations; the discarded execution leaked", got)
	}
}

func TestCanaryReportVerdicts(t *testing.T) {
	s := decideSlot(t, tech.Bytecode)
	if _, err := s.Canary(lifecycle.CanaryPolicy{}); !errors.Is(err, lifecycle.ErrEmptySlot) {
		t.Fatalf("canary on empty slot: %v", err)
	}
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Canary(lifecycle.CanaryPolicy{}); !errors.Is(err, lifecycle.ErrNoCandidate) {
		t.Fatalf("canary without candidate: %v", err)
	}
	if err := s.Stage(tech.NewArtifact(decideSrc(2), 2), nil, 2); err != nil {
		t.Fatal(err)
	}

	r, err := s.Canary(lifecycle.CanaryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != lifecycle.VerdictContinue {
		t.Fatalf("verdict with no samples = %q (%s), want continue", r.Verdict, r.Reason)
	}

	// Healthy candidate: same program modulo the bias, so after enough
	// traffic it is promotable.
	for i := 0; i < 64; i++ {
		if _, err := s.Invoke("decide", 6); err != nil {
			t.Fatal(err)
		}
	}
	r, err = s.Canary(lifecycle.CanaryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != lifecycle.VerdictPromote {
		t.Fatalf("healthy canary verdict = %q (%s), want promote", r.Verdict, r.Reason)
	}
	if r.Candidate.Invocations != 32 || r.Incumbent.Invocations != 32 {
		t.Fatalf("snapshot invocations %d/%d, want 32/32", r.Incumbent.Invocations, r.Candidate.Invocations)
	}

	// Trapping candidate: route the poison input only at the canary
	// cadence so the incumbent's record stays clean, then compare.
	s2 := decideSlot(t, tech.Bytecode)
	if err := s2.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s2.Stage(tech.NewArtifact(decideSrc(2), 2), nil, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		s2.Invoke("decide", 13) // both columns trap; the verdict is what we assert
	}
	// Both versions trap identically, so the delta is zero → promote.
	r, err = s2.Canary(lifecycle.CanaryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TrapRateDelta != 0 {
		t.Fatalf("identical programs diverged: trap delta %f", r.TrapRateDelta)
	}

	// Now a candidate that traps when the incumbent does not.
	s3 := decideSlot(t, tech.Bytecode)
	if err := s3.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	poison := tech.Source{Name: "decide", GEL: `
func decide(x) { return ld32(1048576); }
`}
	if err := s3.Stage(tech.NewArtifact(poison, 2), nil, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		s3.Invoke("decide", 6) // canary invocations trap; that is the point
	}
	r, err = s3.Canary(lifecycle.CanaryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != lifecycle.VerdictRollback {
		t.Fatalf("trapping canary verdict = %q (%s), want rollback", r.Verdict, r.Reason)
	}
	if r.Candidate.Traps == 0 || r.TrapRateDelta <= 0 {
		t.Fatalf("report did not attribute traps to the candidate: %+v", r)
	}
}

func TestVersionedTelemetryRegistration(t *testing.T) {
	telemetry.ResetMetrics()
	telemetry.SetEnabled(true)
	defer func() {
		telemetry.SetEnabled(false)
		telemetry.ResetMetrics()
	}()
	s := decideSlot(t, tech.Bytecode)
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Invoke("decide", 3); err != nil {
			t.Fatal(err)
		}
	}
	name := lifecycle.VersionedName("decide", 1)
	for _, snap := range telemetry.SnapshotAll() {
		if snap.Graft == name && snap.Tech == string(tech.Bytecode) {
			if snap.Invocations < 4 {
				t.Fatalf("versioned pair recorded %d invocations, want >= 4", snap.Invocations)
			}
			return
		}
	}
	t.Fatalf("no telemetry pair registered under %q", name)
}

func TestRegistrySlotsAndGet(t *testing.T) {
	r := lifecycle.NewRegistry()
	load := lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{})
	b := r.NewSlot("bbb", tech.Bytecode, load)
	a := r.NewSlot("aaa", tech.Bytecode, load)
	if got, ok := r.Get("bbb"); !ok || got != b {
		t.Fatal("Get(bbb) failed")
	}
	if _, ok := r.Get("zzz"); ok {
		t.Fatal("Get(zzz) found a ghost slot")
	}
	slots := r.Slots()
	if len(slots) != 2 || slots[0] != a || slots[1] != b {
		t.Fatalf("Slots() not sorted by name: %v", slots)
	}
}

// TestStateStringAndEmptySlotViews covers the human-facing renderings
// and the empty-slot branches of the views.
func TestStateStringAndEmptySlotViews(t *testing.T) {
	for st, want := range map[lifecycle.State]string{
		lifecycle.StateCandidate: "candidate",
		lifecycle.StateIncumbent: "incumbent",
		lifecycle.StateRetired:   "retired",
		lifecycle.StateDemoted:   "demoted",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
	s := decideSlot(t, tech.Bytecode)
	if s.Epoch() != 0 || s.Incumbent() != nil || s.Candidate() != nil {
		t.Fatalf("empty slot views: epoch %d, incumbent %v, candidate %v",
			s.Epoch(), s.Incumbent(), s.Candidate())
	}
}

// TestDeployFailuresLeaveNoTrace covers the deploy error paths: a load
// failure and a pre-publication gate error must leave the slot exactly
// as it was — no version list growth, no epoch movement.
func TestDeployFailuresLeaveNoTrace(t *testing.T) {
	boom := errors.New("boom")
	failing := lifecycle.NewSlot("decide", tech.Bytecode,
		func(a tech.Artifact) (lifecycle.Carrier, error) { return nil, boom })
	if err := failing.Activate(tech.NewArtifact(decideSrc(1), 1), nil); !errors.Is(err, boom) {
		t.Fatalf("activate with failing loader: %v", err)
	}
	if failing.Epoch() != 0 || len(failing.Versions()) != 0 {
		t.Fatalf("failed activate left state behind: epoch %d, %d versions",
			failing.Epoch(), len(failing.Versions()))
	}

	for _, kill := range []lifecycle.Point{lifecycle.PointDeployLoaded, lifecycle.PointDeployPrepped} {
		s := decideSlot(t, tech.Bytecode)
		s.SetGate(func(p lifecycle.Point) error {
			if p == kill {
				return boom
			}
			return nil
		})
		if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); !errors.Is(err, boom) {
			t.Fatalf("gate at %s: activate returned %v", kill, err)
		}
		if s.Epoch() != 0 || len(s.Versions()) != 0 {
			t.Fatalf("gate at %s left state behind", kill)
		}
		s.SetGate(nil)
		if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
			t.Fatalf("retry after gated deploy: %v", err)
		}
		res, err := s.Invoke("decide", 5)
		if err != nil || res.Value != decideValue(1, 5) {
			t.Fatalf("invoke after retried deploy: %+v, %v", res, err)
		}
	}
}

// TestLoaderErrors covers the load-failure branch of both stock
// loaders: an artifact whose source does not compile must surface the
// front-end error and leave the slot untouched.
func TestLoaderErrors(t *testing.T) {
	bad := tech.Source{Name: "broken", GEL: "func broken( {"}
	for name, load := range map[string]lifecycle.LoadFunc{
		"single": lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{}),
		"pooled": lifecycle.PoolLoader(tech.Bytecode, tech.Options{}, tech.PoolConfig{MemSize: decideMemSize}),
	} {
		s := lifecycle.NewSlot("broken", tech.Bytecode, load)
		if err := s.Activate(tech.NewArtifact(bad, 1), nil); err == nil {
			t.Errorf("%s loader: broken source activated", name)
		}
		if s.Epoch() != 0 || len(s.Versions()) != 0 {
			t.Errorf("%s loader: failed activate left state behind", name)
		}
	}

	s := decideSlot(t, tech.Bytecode)
	if err := s.Rollback(); !errors.Is(err, lifecycle.ErrEmptySlot) {
		t.Errorf("Rollback on empty slot: %v, want ErrEmptySlot", err)
	}
	if err := s.Demote(); !errors.Is(err, lifecycle.ErrEmptySlot) {
		t.Errorf("Demote on empty slot: %v, want ErrEmptySlot", err)
	}
}
