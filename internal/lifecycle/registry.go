package lifecycle

import (
	"sort"
	"sync"

	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// Registry holds the process's lifecycle slots and, when armed, turns
// watchdog violations into automatic demotions and rollbacks.
type Registry struct {
	mu     sync.Mutex
	slots  map[string]*Slot
	events []GuardEvent
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{slots: make(map[string]*Slot)}
}

// NewSlot creates, registers, and returns a slot. A second slot with
// the same name replaces the first in the registry.
func (r *Registry) NewSlot(name string, id tech.ID, load LoadFunc) *Slot {
	s := NewSlot(name, id, load)
	r.mu.Lock()
	r.slots[name] = s
	r.mu.Unlock()
	return s
}

// Get looks a slot up by name.
func (r *Registry) Get(name string) (*Slot, bool) {
	r.mu.Lock()
	s, ok := r.slots[name]
	r.mu.Unlock()
	return s, ok
}

// Slots returns every registered slot, sorted by name.
func (r *Registry) Slots() []*Slot {
	r.mu.Lock()
	out := make([]*Slot, 0, len(r.slots))
	for _, s := range r.slots {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// GuardEvent records one automatic reaction to a watchdog verdict: a
// violation (demote/rollback) or a completed recovery probation
// (unquarantine).
type GuardEvent struct {
	Slot    string
	Action  string // "demote", "rollback", or "unquarantine"
	Version uint64 // the version the verdict named
	// Err is non-nil when the reaction itself failed (e.g. the candidate
	// was already demoted by the time the violation arrived).
	Err       error
	Violation telemetry.Violation
	// Recovery is set for "unquarantine" events (Violation is zero then).
	Recovery telemetry.Recovery
}

// Events returns the reactions recorded since Arm, oldest first.
func (r *Registry) Events() []GuardEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]GuardEvent(nil), r.events...)
}

// Arm wires the registry to a watchdog: each violation the watchdog
// flags is matched against the registry's live deployments by versioned
// name ("slot@v2") and technology, and the matching slot reacts —
// a breaching candidate is demoted (canary verdict: the incumbent keeps
// serving, untouched); a breaching incumbent with a retained previous
// version is rolled back. Watchdog recoveries (a flagged pair whose
// fast window stayed clean through probation) are recorded as
// "unquarantine" events so the deployment audit trail shows the full
// breach → quarantine → recovery loop. Callbacks run synchronously
// from Watchdog.Check, so by the time Check returns the routing change
// is visible to the data plane.
func (r *Registry) Arm(w *telemetry.Watchdog) {
	w.OnViolation(r.react)
	w.OnRecovery(r.reactRecovery)
}

// reactRecovery is the recovery handler installed by Arm.
func (r *Registry) reactRecovery(rec telemetry.Recovery) {
	for _, s := range r.Slots() {
		if rec.Tech != string(s.Tech()) {
			continue
		}
		for _, v := range s.Versions() {
			if rec.Graft == VersionedName(s.Name(), v.Artifact.Version) {
				r.recordEvent(GuardEvent{
					Slot: s.Name(), Action: "unquarantine",
					Version: v.Artifact.Version, Recovery: rec,
				})
			}
		}
	}
}

// react is the violation handler installed by Arm.
func (r *Registry) react(v telemetry.Violation) {
	for _, s := range r.Slots() {
		if v.Tech != string(s.Tech()) {
			continue
		}
		if cand := s.Candidate(); cand != nil &&
			v.Graft == VersionedName(s.Name(), cand.Artifact.Version) {
			r.recordEvent(GuardEvent{
				Slot: s.Name(), Action: "demote",
				Version: cand.Artifact.Version,
				Err:     s.Demote(), Violation: v,
			})
			continue
		}
		if inc := s.Incumbent(); inc != nil &&
			v.Graft == VersionedName(s.Name(), inc.Artifact.Version) {
			r.recordEvent(GuardEvent{
				Slot: s.Name(), Action: "rollback",
				Version: inc.Artifact.Version,
				Err:     s.Rollback(), Violation: v,
			})
		}
	}
}

func (r *Registry) recordEvent(e GuardEvent) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}
