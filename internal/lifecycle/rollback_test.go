package lifecycle_test

import (
	"errors"
	"testing"

	"graftlab/internal/lifecycle"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// runawaySrc is a "new version" that blows its fuel budget on every
// invocation — the §4 runaway extension, deployed as an upgrade.
func runawaySrc(ver int) tech.Source {
	return tech.Source{
		Name: "decide",
		GEL: `
func decide(x) {
	var i = 0;
	while (i < 1000000) { i = i + 1; }
	return i;
}
`,
	}
}

// rollbackFuel is small enough that runawaySrc always fuel-traps and
// large enough that decideSrc never does.
const rollbackFuel = 1 << 12

func telemetrySlot(t *testing.T, name string) *lifecycle.Slot {
	t.Helper()
	return lifecycle.NewSlot(name, tech.Bytecode,
		lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{Fuel: rollbackFuel}))
}

func resetTelemetry(t *testing.T) {
	t.Helper()
	telemetry.ResetMetrics()
	telemetry.ClearQuarantines()
	telemetry.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(false)
		telemetry.ClearQuarantines()
		telemetry.ResetMetrics()
	})
}

// TestWatchdogDemotesBreachingCanary deploys an SLO-breaching canary
// next to a healthy incumbent and checks the armed watchdog demotes it
// automatically: routing returns to 100% incumbent, the incumbent's
// results are byte-identical to a canary-free run throughout, and the
// ledger shows zero dropped invocations.
func TestWatchdogDemotesBreachingCanary(t *testing.T) {
	resetTelemetry(t)
	r := lifecycle.NewRegistry()
	s := r.NewSlot("canaryslot", tech.Bytecode,
		lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{Fuel: rollbackFuel}))
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Stage(tech.NewArtifact(runawaySrc(2), 2), nil, 4); err != nil {
		t.Fatal(err)
	}
	w := telemetry.NewWatchdog(telemetry.SLO{
		MaxPreemptRate: 0.5,
		MinInvocations: 16,
		Quarantine:     true,
	})
	r.Arm(w)

	// A canary-free reference of the incumbent's expected values.
	wantIncumbent := func(x uint32) uint32 { return decideValue(1, x) }

	const total = 256
	var canaryTraps, incumbentServed int
	demotedAt := -1
	for i := 0; i < total; i++ {
		x := uint32(i % 11)
		res, err := s.Invoke("decide", x)
		if res.Canary {
			// The breaching canary fuel-traps; that is the SLO breach.
			var tr *mem.Trap
			if !errors.As(err, &tr) || tr.Kind != mem.TrapFuel {
				t.Fatalf("invocation %d: canary err = %v, want fuel preemption", i, err)
			}
			canaryTraps++
		} else {
			if err != nil {
				t.Fatalf("invocation %d: incumbent err = %v", i, err)
			}
			if res.Value != wantIncumbent(x) {
				t.Fatalf("invocation %d: incumbent value %d, want %d — swap machinery perturbed the incumbent",
					i, res.Value, wantIncumbent(x))
			}
			incumbentServed++
		}
		// Demotion is committed synchronously inside w.Check below, so a
		// canary-routed invocation is only legal before that point.
		if demotedAt >= 0 && res.Canary {
			t.Fatalf("invocation %d routed to the canary after its demotion at %d", i, demotedAt)
		}
		// The operational loop: the watchdog scans periodically.
		if i%16 == 15 {
			w.Check()
		}
		if demotedAt < 0 && s.Candidate() == nil {
			demotedAt = i
		}
	}

	if demotedAt < 0 {
		t.Fatal("breaching canary was never demoted")
	}
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("guard events = %+v, want exactly one", events)
	}
	e := events[0]
	if e.Slot != "canaryslot" || e.Action != "demote" || e.Version != 2 || e.Err != nil {
		t.Fatalf("guard event = %+v, want clean demote of v2", e)
	}
	if e.Violation.Graft != lifecycle.VersionedName("canaryslot", 2) {
		t.Fatalf("violation named %q", e.Violation.Graft)
	}
	cand := s.Versions()[1]
	if cand.State() != lifecycle.StateDemoted {
		t.Fatalf("candidate state %v, want demoted", cand.State())
	}
	if telemetry.Quarantined(lifecycle.VersionedName("canaryslot", 2), string(tech.Bytecode)) == false {
		t.Fatal("breaching version's telemetry pair was not quarantined")
	}
	// Zero dropped in-flight operations: every issued invocation
	// committed against exactly one version, through the demotion.
	a := s.Accounting()
	if a.Issued != total || a.Committed != total || a.Aborted != 0 {
		t.Fatalf("ledger %+v, want %d issued == committed", a, total)
	}
	if a.Demotions != 1 {
		t.Fatalf("ledger records %d demotions, want 1", a.Demotions)
	}
	if got := int(s.Versions()[0].Invocations()); got != incumbentServed {
		t.Fatalf("incumbent recorded %d invocations, stream saw %d", got, incumbentServed)
	}
	if canaryTraps == 0 {
		t.Fatal("canary never served — the breach was never exercised")
	}
}

// TestWatchdogRollsBackBreachingIncumbent promotes a runaway version,
// then checks the armed watchdog restores the previous incumbent: the
// rollback is automatic, routing converges back to v1, and post-
// rollback results are byte-identical to a run where the bad promote
// never happened.
func TestWatchdogRollsBackBreachingIncumbent(t *testing.T) {
	resetTelemetry(t)
	r := lifecycle.NewRegistry()
	s := r.NewSlot("rbslot", tech.Bytecode,
		lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{Fuel: rollbackFuel}))
	if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	// A healthy prefix keeps the un-versioned ("rbslot"-less) aggregate
	// pairs below any threshold; only the versioned pair breaches.
	for i := 0; i < 64; i++ {
		if _, err := s.Invoke("decide", uint32(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stage(tech.NewArtifact(runawaySrc(2), 2), nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(); err != nil {
		t.Fatal(err)
	}

	w := telemetry.NewWatchdog(telemetry.SLO{
		MaxPreemptRate: 0.5,
		MinInvocations: 16,
		Quarantine:     true,
	})
	r.Arm(w)

	// The bad incumbent serves (and fuel-traps) until the watchdog's
	// next scan catches it.
	for i := 0; i < 16; i++ {
		res, err := s.Invoke("decide", 3)
		var tr *mem.Trap
		if !errors.As(err, &tr) || tr.Kind != mem.TrapFuel {
			t.Fatalf("bad incumbent invocation %d: %v", i, err)
		}
		if res.Version != 2 {
			t.Fatalf("bad incumbent invocation %d served by v%d", i, res.Version)
		}
	}
	if fresh := w.Check(); len(fresh) != 1 {
		t.Fatalf("watchdog flagged %v, want exactly the runaway incumbent", fresh)
	}

	// The rollback must already be visible: Check runs the reaction
	// synchronously.
	inc := s.Incumbent()
	if inc.Artifact.Version != 1 || inc.State() != lifecycle.StateIncumbent {
		t.Fatalf("incumbent after violation: v%d %v, want v1 restored", inc.Artifact.Version, inc.State())
	}
	events := r.Events()
	if len(events) != 1 || events[0].Action != "rollback" || events[0].Version != 2 || events[0].Err != nil {
		t.Fatalf("guard events = %+v, want clean rollback of v2", events)
	}
	if v2 := s.Versions()[1]; v2.State() != lifecycle.StateDemoted {
		t.Fatalf("rolled-back version state %v, want demoted", v2.State())
	}

	// Post-rollback traffic is indistinguishable from a run where v2
	// was never promoted.
	for i := 0; i < 32; i++ {
		x := uint32(i % 7)
		res, err := s.Invoke("decide", x)
		if err != nil || res.Version != 1 || res.Value != decideValue(1, x) {
			t.Fatalf("post-rollback invocation %d: %+v, %v", i, res, err)
		}
	}
	a := s.Accounting()
	if want := uint64(64 + 16 + 32); a.Issued != want || a.Committed != want || a.Aborted != 0 {
		t.Fatalf("ledger %+v, want %d issued == committed — no dropped ops across the rollback", a, want)
	}
	if a.Swaps != 1 || a.Rollbacks != 1 {
		t.Fatalf("ledger %+v, want 1 swap / 1 rollback", a)
	}
	// A second scan must not re-flag or re-roll (the pair is flagged
	// once, and the rollback target was consumed).
	if fresh := w.Check(); len(fresh) != 0 {
		t.Fatalf("second scan re-flagged %v", fresh)
	}
	if len(r.Events()) != 1 {
		t.Fatalf("second scan produced extra guard events: %+v", r.Events())
	}
}
