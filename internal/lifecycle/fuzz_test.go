package lifecycle_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"graftlab/internal/lifecycle"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// FuzzSwap is the differential fuzzer for the swap protocol: a random
// schedule of invocations, stagings, promotions, and mid-invocation
// swaps must produce exactly the outcomes of the serialized schedule —
// each invocation behaving as a pure call of whichever version a
// sequential interpreter of the same ops would have live at that point.
// The model below IS that sequential interpreter; any divergence
// (value, trap kind, fuel, or the final conservation ledger) is a
// protocol bug.

// fuzzSrcCycle bounds the distinct programs; artifact versions keep
// increasing but map onto these sources cyclically.
const fuzzSrcCycle = 4

var (
	fuzzOnce    sync.Once
	fuzzErr     error
	fuzzGrafts  map[int]tech.Graft        // srcVer -> oracle engine
	fuzzCarrier map[int]lifecycle.Carrier // srcVer -> shared slot carrier
	fuzzOracle  map[string]kpOutcome      // srcVer/x -> outcome
	fuzzMu      sync.Mutex
)

func fuzzSrcVer(artifactVer uint64) int { return int((artifactVer-1)%fuzzSrcCycle) + 1 }

func fuzzSetup() error {
	fuzzOnce.Do(func() {
		fuzzGrafts = map[int]tech.Graft{}
		fuzzCarrier = map[int]lifecycle.Carrier{}
		fuzzOracle = map[string]kpOutcome{}
		opts := tech.Options{Fuel: 1 << 20}
		for v := 1; v <= fuzzSrcCycle; v++ {
			g, err := tech.Load(tech.Bytecode, decideSrc(v), mem.New(decideMemSize), opts)
			if err != nil {
				fuzzErr = err
				return
			}
			fuzzGrafts[v] = g
			c, err := tech.Load(tech.Bytecode, decideSrc(v), mem.New(decideMemSize), opts)
			if err != nil {
				fuzzErr = err
				return
			}
			fuzzCarrier[v] = lifecycle.Single(c)
		}
	})
	return fuzzErr
}

func fuzzOutcome(srcVer int, x uint32) (kpOutcome, error) {
	key := fmt.Sprintf("%d/%d", srcVer, x)
	fuzzMu.Lock()
	out, ok := fuzzOracle[key]
	fuzzMu.Unlock()
	if ok {
		return out, nil
	}
	g := fuzzGrafts[srcVer]
	val, err := g.Invoke("decide", x)
	out = kpOutcome{val: val}
	if err != nil {
		var tr *mem.Trap
		if !errors.As(err, &tr) {
			return out, fmt.Errorf("oracle v%d x=%d: %w", srcVer, x, err)
		}
		out.trap = tr.Kind
	}
	if fr, ok := g.(tech.FuelReporter); ok {
		out.fuel = fr.FuelUsed()
	}
	fuzzMu.Lock()
	fuzzOracle[key] = out
	fuzzMu.Unlock()
	return out, nil
}

func FuzzSwap(f *testing.F) {
	// Seeds cover every opcode, mid-invocation swaps back to back,
	// staging churn, and the poison (trapping) input.
	f.Add([]byte{0x10, 0x01, 0x02, 0x10})                         // invoke, stage, promote, invoke
	f.Add([]byte{0x01, 0x03, 0x03, 0x01, 0x03})                   // stage, swap-mid-invoke twice, restage
	f.Add([]byte{0x34, 0x00, 0x01, 0x02, 0x01, 0x02})             // poison invoke then two full cycles
	f.Add([]byte{0x01, 0x01, 0x02, 0x02, 0x00})                   // double stage, double promote
	f.Add([]byte{0x00, 0x04, 0x08, 0x0c, 0x10, 0x14, 0x18, 0x1c}) // pure invocation stream

	f.Fuzz(func(t *testing.T, ops []byte) {
		if err := fuzzSetup(); err != nil {
			t.Fatal(err)
		}
		if len(ops) > 256 {
			ops = ops[:256]
		}
		load := func(a tech.Artifact) (lifecycle.Carrier, error) {
			return fuzzCarrier[fuzzSrcVer(a.Version)], nil
		}
		s := lifecycle.NewSlot("fuzz", tech.Bytecode, load)
		if err := s.Activate(tech.NewArtifact(decideSrc(1), 1), nil); err != nil {
			t.Fatal(err)
		}

		// The sequential model: which artifact version is live, which is
		// staged, and how many invocations have been issued.
		liveVer := uint64(1)
		stagedVer := uint64(0)
		nextVer := uint64(2)
		issued := 0

		checkInvoke := func(x uint32, wantVer uint64, res lifecycle.Result, err error) {
			t.Helper()
			issued++
			if res.Version != wantVer {
				t.Fatalf("op %d: served by v%d, model says v%d", issued, res.Version, wantVer)
			}
			want, oerr := fuzzOutcome(fuzzSrcVer(wantVer), x)
			if oerr != nil {
				t.Fatal(oerr)
			}
			if err != nil {
				var tr *mem.Trap
				if !errors.As(err, &tr) || tr.Kind != want.trap {
					t.Fatalf("x=%d v%d: err %v, oracle trap %v", x, wantVer, err, want.trap)
				}
			} else if want.trap != mem.TrapNone {
				t.Fatalf("x=%d v%d: succeeded, oracle traps %v", x, wantVer, want.trap)
			} else if res.Value != want.val {
				t.Fatalf("x=%d v%d: value %d, oracle %d", x, wantVer, res.Value, want.val)
			}
			if res.Fuel != want.fuel {
				t.Fatalf("x=%d v%d: fuel %d, oracle %d", x, wantVer, res.Fuel, want.fuel)
			}
		}

		for _, b := range ops {
			x := uint32(b>>2) % 20 // 13 stays reachable: traps cross swaps too
			switch b & 3 {
			case 0: // plain invoke
				res, err := s.Invoke("decide", x)
				checkInvoke(x, liveVer, res, err)
			case 1: // stage the next version (no-op if one is staged)
				if stagedVer != 0 {
					continue
				}
				v := nextVer
				nextVer++
				if err := s.Stage(tech.NewArtifact(decideSrc(fuzzSrcVer(v)), v), nil, 0); err != nil {
					t.Fatalf("stage v%d: %v", v, err)
				}
				stagedVer = v
			case 2: // promote (no-op if nothing staged)
				if stagedVer == 0 {
					if err := s.Promote(); !errors.Is(err, lifecycle.ErrNoCandidate) {
						t.Fatalf("promote without candidate: %v", err)
					}
					continue
				}
				if err := s.Promote(); err != nil {
					t.Fatalf("promote v%d: %v", stagedVer, err)
				}
				liveVer, stagedVer = stagedVer, 0
			case 3: // invoke with a swap committed mid-flight
				if stagedVer == 0 {
					res, err := s.Invoke("decide", x)
					checkInvoke(x, liveVer, res, err)
					continue
				}
				promoted := false
				inPromote := false
				s.SetGate(func(p lifecycle.Point) error {
					if inPromote {
						return nil
					}
					if p == lifecycle.PointInvoked && !promoted {
						promoted, inPromote = true, true
						if err := s.Promote(); err != nil {
							t.Errorf("mid-invoke promote: %v", err)
						}
						inPromote = false
					}
					return nil
				})
				res, err := s.Invoke("decide", x)
				s.SetGate(nil)
				// Serialized equivalent: the promote lands before the
				// invocation commits, so the new version serves it.
				liveVer, stagedVer = stagedVer, 0
				checkInvoke(x, liveVer, res, err)
				if res.Retries == 0 {
					t.Fatal("mid-invoke swap committed without a revalidation retry")
				}
			}
		}

		a := s.Accounting()
		if a.Issued != uint64(issued) || a.Committed != uint64(issued) || a.Aborted != 0 {
			t.Fatalf("ledger %+v, model issued %d", a, issued)
		}
		var perVersion uint64
		for _, v := range s.Versions() {
			perVersion += v.Invocations()
		}
		if perVersion != a.Committed {
			t.Fatalf("per-version sum %d != committed %d", perVersion, a.Committed)
		}
	})
}
