package lifecycle_test

import (
	"fmt"
	"testing"
	"time"

	"graftlab/internal/lifecycle"
	"graftlab/internal/tech"
	"graftlab/internal/telemetry"
)

// scaledSrc builds a version of the "work" graft whose fuel consumption
// scales with its argument times the version's multiplier: v1 loops x
// times, v2 loops 1000x times. Against a 4096-fuel budget, x=5 makes v2
// preempt while v1 stays healthy, and x=0 makes both trivially clean —
// the knobs the windowed tests below dial without redeploying.
func scaledSrc(ver int) tech.Source {
	mult := 1
	if ver >= 2 {
		mult = 1000
	}
	return tech.Source{
		Name: "work",
		GEL: fmt.Sprintf(`
func work(x) {
	var i = 0;
	while (i < x * %d) { i = i + 1; }
	return i + %d;
}
`, mult, ver*1000),
	}
}

// smallWindows shrinks the bucket geometry so window rotation happens in
// tens of milliseconds, and restores the default afterwards. It must run
// before the slot deploys (rings are sized at Register time).
func smallWindows(t *testing.T) {
	t.Helper()
	if err := telemetry.SetWindowConfig(telemetry.WindowConfig{
		Width:   50 * time.Millisecond,
		Buckets: 64,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := telemetry.SetWindowConfig(telemetry.DefaultWindowConfig); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCanaryWindowedForgivesAgedBlip pins the windowed comparison: a
// candidate that preempted during a brief warmup blip but has since run
// clean is judged on its trailing window (promote), while the lifetime
// aggregate still holds the blip against it forever (rollback). This is
// the deployment-side version of the watchdog's burn-rate argument —
// verdicts should follow current behaviour, not history.
func TestCanaryWindowedForgivesAgedBlip(t *testing.T) {
	resetTelemetry(t)
	smallWindows(t)

	s := lifecycle.NewSlot("blipslot", tech.Bytecode,
		lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{Fuel: 1 << 12}))
	if err := s.Activate(tech.NewArtifact(scaledSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	// Route every second invocation to the candidate.
	if err := s.Stage(tech.NewArtifact(scaledSrc(2), 2), nil, 2); err != nil {
		t.Fatal(err)
	}

	// Warmup blip: x=5 costs v2 5000 iterations against a 4096 budget —
	// every canary invocation preempts; the incumbent (5 iterations) is
	// untouched.
	var blipTraps int
	for i := 0; i < 40; i++ {
		res, err := s.Invoke("work", 5)
		if res.Canary && err != nil {
			blipTraps++
		} else if !res.Canary && err != nil {
			t.Fatalf("incumbent failed during blip: %v", err)
		}
	}
	if blipTraps == 0 {
		t.Fatal("blip never exercised the candidate's preemption")
	}

	// The blip ages out of the comparison window...
	time.Sleep(500 * time.Millisecond)
	// ...and the candidate runs clean (x=0: zero loop iterations).
	for i := 0; i < 64; i++ {
		if _, err := s.Invoke("work", 0); err != nil {
			t.Fatalf("post-blip invocation %d: %v", i, err)
		}
	}

	// MaxLatencyRatio is slackened so this test isolates the trap-rate
	// gate; latency effects on sub-microsecond bytecode runs are noise.
	policy := lifecycle.CanaryPolicy{MinInvocations: 16, MaxLatencyRatio: 1000}

	lifetime, err := s.Canary(policy)
	if err != nil {
		t.Fatal(err)
	}
	if lifetime.Verdict != lifecycle.VerdictRollback {
		t.Fatalf("lifetime verdict = %s (%s), want rollback: the blip is in the aggregate forever",
			lifetime.Verdict, lifetime.Reason)
	}
	if lifetime.Window != 0 {
		t.Errorf("lifetime report claims window %v", lifetime.Window)
	}

	policy.Window = 200 * time.Millisecond
	windowed, err := s.Canary(policy)
	if err != nil {
		t.Fatal(err)
	}
	if windowed.Verdict != lifecycle.VerdictPromote {
		t.Fatalf("windowed verdict = %s (%s), want promote: the blip aged out",
			windowed.Verdict, windowed.Reason)
	}
	if windowed.Window != 200*time.Millisecond {
		t.Errorf("windowed report window = %v", windowed.Window)
	}
	if windowed.Candidate.Traps != 0 {
		t.Errorf("windowed candidate still shows %d traps", windowed.Candidate.Traps)
	}
	if windowed.Candidate.Invocations < policy.MinInvocations {
		t.Errorf("windowed candidate has only %d invocations", windowed.Candidate.Invocations)
	}
}

// TestCanaryWindowFallsBackWithoutTelemetry pins the degradation: a
// policy asking for a windowed comparison against versions deployed
// with telemetry off silently compares lifetime aggregates (Window 0 in
// the report) instead of erroring or reading empty windows.
func TestCanaryWindowFallsBackWithoutTelemetry(t *testing.T) {
	telemetry.SetEnabled(false)
	s := lifecycle.NewSlot("noTelSlot", tech.Bytecode,
		lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{Fuel: 1 << 12}))
	if err := s.Activate(tech.NewArtifact(scaledSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Stage(tech.NewArtifact(scaledSrc(1), 2), nil, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := s.Invoke("work", 0); err != nil {
			t.Fatal(err)
		}
	}
	r, err := s.Canary(lifecycle.CanaryPolicy{Window: time.Second, MaxLatencyRatio: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Window != 0 {
		t.Fatalf("report window = %v, want 0 (lifetime fallback)", r.Window)
	}
	if r.Candidate.Invocations == 0 {
		t.Fatal("fallback compared empty snapshots")
	}
}

// TestLifecycleNotesFollowStates pins the telemetry note mirror: the
// versioned keys carry "canary"/"incumbent"/"demoted"/"retired" labels
// as versions move through the state machine, so the export surface and
// graftmon can flag deployment state.
func TestLifecycleNotesFollowStates(t *testing.T) {
	resetTelemetry(t)

	s := lifecycle.NewSlot("noteslot", tech.Bytecode,
		lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{Fuel: 1 << 12}))
	if err := s.Activate(tech.NewArtifact(scaledSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	note := func(ver uint64) string {
		m := telemetry.Register(lifecycle.VersionedName("noteslot", ver), string(tech.Bytecode))
		return m.Note()
	}
	if got := note(1); got != "incumbent" {
		t.Fatalf("v1 note after Activate = %q", got)
	}
	if err := s.Stage(tech.NewArtifact(scaledSrc(1), 2), nil, 0); err != nil {
		t.Fatal(err)
	}
	if got := note(2); got != "canary" {
		t.Fatalf("v2 note after Stage = %q", got)
	}
	if err := s.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := note(2); got != "incumbent" {
		t.Fatalf("v2 note after Promote = %q", got)
	}
	if got := note(1); got != "retired" {
		t.Fatalf("v1 note after Promote = %q", got)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := note(1); got != "incumbent" {
		t.Fatalf("v1 note after Rollback = %q", got)
	}
	if got := note(2); got != "demoted" {
		t.Fatalf("v2 note after Rollback = %q", got)
	}
}

// TestArmRecordsUnquarantineRecovery closes the loop the ISSUE's
// watchdog rewrite promises: a breaching canary is demoted and
// quarantined; once its fast window drains, the watchdog's probation
// lifts the quarantine automatically and the registry's audit trail
// records the unquarantine against the right version.
func TestArmRecordsUnquarantineRecovery(t *testing.T) {
	resetTelemetry(t)
	smallWindows(t)

	r := lifecycle.NewRegistry()
	s := r.NewSlot("healslot", tech.Bytecode,
		lifecycle.Loader(tech.Bytecode, decideMemSize, tech.Options{Fuel: 1 << 12}))
	if err := s.Activate(tech.NewArtifact(scaledSrc(1), 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Stage(tech.NewArtifact(scaledSrc(2), 2), nil, 2); err != nil {
		t.Fatal(err)
	}
	w := telemetry.NewWatchdog(telemetry.SLO{
		MaxPreemptRate: 0.5,
		MinInvocations: 16,
		FastWindow:     200 * time.Millisecond,
		SlowWindow:     time.Second,
		RecoveryChecks: 2,
		Quarantine:     true,
	})
	r.Arm(w)

	// The canary preempts on every routed invocation (x=5 → 5000
	// iterations against 4096 fuel).
	for i := 0; i < 64; i++ {
		s.Invoke("work", 5) //nolint:errcheck // canary halves trap by design
	}
	if fresh := w.Check(); len(fresh) != 1 {
		t.Fatalf("watchdog flagged %v, want the canary", fresh)
	}
	v2name := lifecycle.VersionedName("healslot", 2)
	if !telemetry.Quarantined(v2name, string(tech.Bytecode)) {
		t.Fatal("breaching canary not quarantined")
	}
	if s.Candidate() != nil {
		t.Fatal("breaching canary not demoted")
	}

	// Demoted: no more traffic reaches v2, so its fast window drains.
	time.Sleep(400 * time.Millisecond)
	w.Check()
	if !telemetry.Quarantined(v2name, string(tech.Bytecode)) {
		t.Fatal("unquarantined after one clean scan, want two")
	}
	w.Check()
	if telemetry.Quarantined(v2name, string(tech.Bytecode)) {
		t.Fatal("quarantine not lifted after probation")
	}

	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("guard events = %+v, want demote then unquarantine", events)
	}
	if events[0].Action != "demote" || events[0].Version != 2 {
		t.Fatalf("first event = %+v", events[0])
	}
	e := events[1]
	if e.Action != "unquarantine" || e.Slot != "healslot" || e.Version != 2 || e.Err != nil {
		t.Fatalf("recovery event = %+v", e)
	}
	if e.Recovery.Graft != v2name || e.Recovery.Checks != 2 {
		t.Fatalf("recovery detail = %+v", e.Recovery)
	}
}
