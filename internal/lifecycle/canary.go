package lifecycle

import (
	"fmt"
	"time"

	"graftlab/internal/stats"
)

// VersionSnapshot is one version's data-plane telemetry at a point in
// time, in the units the canary comparison consumes.
type VersionSnapshot struct {
	Version           uint64
	Digest            string
	State             State
	Invocations       uint64
	Traps             uint64
	Errors            uint64
	Preemptions       uint64
	FuelPerInvocation float64
	Mean              time.Duration
	Std               time.Duration
	P50               time.Duration
	P99               time.Duration
	Max               time.Duration
}

// Snapshot reads the version's telemetry. Concurrent with traffic the
// numbers are consistent-enough counters, not a linearizable cut.
func (v *Version) Snapshot() VersionSnapshot {
	s := VersionSnapshot{
		Version:     v.Artifact.Version,
		Digest:      v.Artifact.Digest,
		State:       v.State(),
		Invocations: v.stats.invocations.Load(),
		Traps:       v.stats.traps.Load(),
		Errors:      v.stats.errs.Load(),
		Preemptions: v.stats.preempts.Load(),
		Mean:        v.stats.latency.Mean(),
		Std:         v.stats.latency.Std(),
		P50:         v.stats.latency.Quantile(0.50),
		P99:         v.stats.latency.Quantile(0.99),
		Max:         v.stats.latency.Max(),
	}
	if s.Invocations > 0 {
		s.FuelPerInvocation = float64(v.stats.fuel.Load()) / float64(s.Invocations)
	}
	return s
}

// failureRate is the fraction of invocations that trapped or errored.
func (s VersionSnapshot) failureRate() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.Traps+s.Errors) / float64(s.Invocations)
}

// windowSnapshot reads the version's telemetry over the trailing window
// d instead of its lifetime, via the versioned key's bucket ring. False
// when the version was deployed without telemetry (no windowed plane
// exists for it).
func (v *Version) windowSnapshot(d time.Duration) (VersionSnapshot, bool) {
	if v.met == nil {
		return VersionSnapshot{}, false
	}
	w := v.met.Window(d)
	s := VersionSnapshot{
		Version:     v.Artifact.Version,
		Digest:      v.Artifact.Digest,
		State:       v.State(),
		Invocations: w.Invocations,
		Traps:       w.Traps,
		Errors:      w.Errors,
		Preemptions: w.Preempts,
		Mean:        w.Mean,
		Std:         w.Std,
		P50:         w.P50,
		P99:         w.P99,
		Max:         w.Max,
	}
	if s.Invocations > 0 {
		s.FuelPerInvocation = float64(w.Fuel) / float64(s.Invocations)
	}
	return s, true
}

// CanaryPolicy thresholds the candidate-vs-incumbent comparison. Zero
// values take the documented defaults.
type CanaryPolicy struct {
	// MinInvocations gates any verdict until the candidate has enough
	// samples (default 16, matching telemetry.SLO).
	MinInvocations uint64
	// EffectThreshold is the minimum |Cohen's d| for a latency
	// difference to count (default stats.EffectLarge). Pairs with
	// MaxLatencyRatio the same way the benchmark regression gate pairs
	// tolerance with effect size: both must trip.
	EffectThreshold float64
	// MaxLatencyRatio is the highest acceptable candidate/incumbent mean
	// latency ratio (default 1.5).
	MaxLatencyRatio float64
	// MaxTrapRateIncrease is the largest acceptable increase of the
	// candidate's trap+error rate over the incumbent's (default 0: any
	// increase is disqualifying).
	MaxTrapRateIncrease float64
	// Window, when positive, compares the trailing Window of each
	// version's telemetry instead of lifetime aggregates — the same
	// sliding windows the watchdog burns rates over. A long-lived
	// incumbent's ancient history then cannot dilute the comparison: the
	// candidate is judged against what the incumbent is doing *now*.
	// Requires both versions to have been deployed with telemetry
	// enabled; Canary falls back to lifetime aggregates otherwise.
	Window time.Duration
}

func (p CanaryPolicy) withDefaults() CanaryPolicy {
	if p.MinInvocations == 0 {
		p.MinInvocations = 16
	}
	if p.EffectThreshold == 0 {
		p.EffectThreshold = stats.EffectLarge
	}
	if p.MaxLatencyRatio == 0 {
		p.MaxLatencyRatio = 1.5
	}
	return p
}

// Canary verdicts.
const (
	VerdictContinue = "continue" // not enough candidate samples yet
	VerdictPromote  = "promote"  // candidate is no worse than the incumbent
	VerdictRollback = "rollback" // candidate breached the policy
)

// CanaryReport compares the staged candidate against the incumbent.
type CanaryReport struct {
	Slot      string
	Incumbent VersionSnapshot
	Candidate VersionSnapshot
	// LatencyD is Cohen's d of candidate vs incumbent latency (positive
	// when the candidate is slower); Effect buckets |d|.
	LatencyD     float64
	Effect       string
	LatencyRatio float64
	// TrapRateDelta is candidate failure rate minus incumbent's.
	TrapRateDelta float64
	Verdict       string
	Reason        string
	// Window is the trailing span the snapshots cover when the policy
	// requested a windowed comparison and both versions supported it;
	// zero means lifetime aggregates were compared.
	Window time.Duration
}

// Canary compares the staged candidate's telemetry against the
// incumbent's under policy p. It only reports; acting on the verdict
// (Promote/Demote) is the caller's or the armed watchdog's job. Returns
// ErrNoCandidate when nothing is staged.
func (s *Slot) Canary(p CanaryPolicy) (*CanaryReport, error) {
	ls := s.cur.Load()
	if ls == nil {
		return nil, ErrEmptySlot
	}
	if ls.candidate == nil {
		return nil, ErrNoCandidate
	}
	p = p.withDefaults()
	inc := ls.incumbent.Snapshot()
	cand := ls.candidate.Snapshot()
	window := time.Duration(0)
	if p.Window > 0 {
		wi, iok := ls.incumbent.windowSnapshot(p.Window)
		wc, cok := ls.candidate.windowSnapshot(p.Window)
		if iok && cok {
			inc, cand, window = wi, wc, p.Window
		}
	}
	r := &CanaryReport{
		Slot:          s.name,
		Incumbent:     inc,
		Candidate:     cand,
		Window:        window,
		TrapRateDelta: cand.failureRate() - inc.failureRate(),
	}
	r.LatencyD = stats.CohensDStats(
		float64(inc.Mean), float64(inc.Std), int(inc.Invocations),
		float64(cand.Mean), float64(cand.Std), int(cand.Invocations))
	r.Effect = stats.EffectVerdict(r.LatencyD)
	if inc.Mean > 0 {
		r.LatencyRatio = float64(cand.Mean) / float64(inc.Mean)
	}
	switch {
	case cand.Invocations < p.MinInvocations:
		r.Verdict = VerdictContinue
		r.Reason = fmt.Sprintf("candidate has %d of %d required samples",
			cand.Invocations, p.MinInvocations)
	case r.TrapRateDelta > p.MaxTrapRateIncrease:
		r.Verdict = VerdictRollback
		r.Reason = fmt.Sprintf("trap rate +%.0f%% over incumbent (max +%.0f%%)",
			100*r.TrapRateDelta, 100*p.MaxTrapRateIncrease)
	case r.LatencyRatio > p.MaxLatencyRatio && r.LatencyD >= p.EffectThreshold:
		// Both gates must trip, like the benchmark regression check: a
		// large ratio with negligible effect size is noise, a large d on
		// a tiny ratio is a difference nobody cares about.
		r.Verdict = VerdictRollback
		r.Reason = fmt.Sprintf("latency %.2fx incumbent (max %.2fx) with %s effect (d=%.1f)",
			r.LatencyRatio, p.MaxLatencyRatio, r.Effect, r.LatencyD)
	default:
		r.Verdict = VerdictPromote
		r.Reason = "candidate within policy on trap rate and latency"
	}
	return r, nil
}
