package disk

import (
	"errors"
	"testing"

	"graftlab/internal/vclock"
)

func faultDisk() *Disk {
	geo := DefaultGeometry()
	geo.Blocks = 64
	geo.BlockSize = 64
	var clk vclock.Clock
	return New(geo, &clk)
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestWriteBlocksRoundTrip(t *testing.T) {
	d := faultDisk()
	data := pattern(3*64, 7)
	if _, err := d.WriteBlocks(10, data); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 3; i++ {
		got, err := d.ReadBlock(10 + i)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(data[i*64:(i+1)*64]) {
			t.Fatalf("block %d payload mismatch", 10+i)
		}
	}
	// Unwritten blocks read as zeroes.
	got, err := d.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		if c != 0 {
			t.Fatal("unwritten block is not zero")
		}
	}
}

func TestWriteBlocksValidates(t *testing.T) {
	d := faultDisk()
	if _, err := d.WriteBlocks(0, make([]byte, 65)); err == nil {
		t.Fatal("partial block accepted")
	}
	if _, err := d.WriteBlocks(0, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := d.WriteBlocks(63, make([]byte, 2*64)); err == nil {
		t.Fatal("write past capacity accepted")
	}
	if _, err := d.ReadBlock(64); err == nil {
		t.Fatal("read past capacity accepted")
	}
}

func TestShortWriteDropsInterruptedBlock(t *testing.T) {
	d := faultDisk()
	d.ArmWriteFault(&WriteFault{Mode: ShortWrite, FailAfter: 2})
	data := pattern(4*64, 3)
	_, err := d.WriteBlocks(20, data)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !d.Crashed() {
		t.Fatal("disk not crashed")
	}
	// Blocks 20,21 persisted; 22 (the interrupted one) and 23 did not.
	for i, want := range []bool{true, true, false, false} {
		got, err := d.ReadBlock(uint32(20 + i))
		if err != nil {
			t.Fatal(err)
		}
		persisted := string(got) == string(data[i*64:(i+1)*64])
		if persisted != want {
			t.Fatalf("block %d persisted=%v, want %v", 20+i, persisted, want)
		}
		if !want {
			for _, c := range got {
				if c != 0 {
					t.Fatalf("dropped block %d holds data", 20+i)
				}
			}
		}
	}
}

func TestTornWritePersistsHalfBlock(t *testing.T) {
	d := faultDisk()
	// Pre-existing content so the torn block mixes old and new bytes.
	old := pattern(64, 100)
	if _, err := d.WriteBlocks(5, old); err != nil {
		t.Fatal(err)
	}
	d.ArmWriteFault(&WriteFault{Mode: TornWrite, FailAfter: 0})
	fresh := pattern(64, 200)
	if _, err := d.WriteBlocks(5, fresh); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	d.ClearFault()
	got, err := d.ReadBlock(5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:32]) != string(fresh[:32]) {
		t.Fatal("torn block's first half is not the new data")
	}
	if string(got[32:]) != string(old[32:]) {
		t.Fatal("torn block's second half is not the old data")
	}
}

func TestCrashedDiskRefusesWritesAllowsReads(t *testing.T) {
	d := faultDisk()
	if _, err := d.WriteBlocks(1, pattern(64, 9)); err != nil {
		t.Fatal(err)
	}
	d.ArmWriteFault(&WriteFault{Mode: ShortWrite, FailAfter: 0})
	if _, err := d.WriteBlocks(2, pattern(64, 10)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// Down until the reboot: writes refused, reads (recovery) fine.
	if _, err := d.WriteBlocks(3, pattern(64, 11)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on crashed disk: err = %v, want ErrCrashed", err)
	}
	if _, err := d.ReadBlock(1); err != nil {
		t.Fatalf("read on crashed disk: %v", err)
	}
	d.ClearFault()
	if d.Crashed() {
		t.Fatal("still crashed after ClearFault")
	}
	if _, err := d.WriteBlocks(3, pattern(64, 11)); err != nil {
		t.Fatalf("write after reboot: %v", err)
	}
}

func TestArmWriteFaultRearms(t *testing.T) {
	d := faultDisk()
	f := &WriteFault{Mode: ShortWrite, FailAfter: 1}
	d.ArmWriteFault(f)
	if _, err := d.WriteBlocks(0, pattern(2*64, 1)); !errors.Is(err, ErrCrashed) {
		t.Fatal("first arming did not fire")
	}
	// Re-arming the same plan resets both the countdown and the crash.
	d.ArmWriteFault(f)
	if d.Crashed() {
		t.Fatal("re-arm did not clear the crash")
	}
	if _, err := d.WriteBlocks(4, pattern(64, 2)); err != nil {
		t.Fatalf("first block after re-arm: %v", err)
	}
	if _, err := d.WriteBlocks(5, pattern(64, 3)); !errors.Is(err, ErrCrashed) {
		t.Fatal("re-armed fault did not fire on schedule")
	}
}
