package disk

import (
	"testing"
	"time"

	"graftlab/internal/vclock"
)

func newTestDisk() (*Disk, *vclock.Clock) {
	clock := &vclock.Clock{}
	return New(DefaultGeometry(), clock), clock
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	d, clock := newTestDisk()
	// Sequential: 64 blocks in order.
	for b := uint32(0); b < 64; b++ {
		if _, err := d.Write(b, 1); err != nil {
			t.Fatal(err)
		}
	}
	seq := clock.Now()

	d2, clock2 := newTestDisk()
	// Random: same 64 blocks, far apart.
	for i := uint32(0); i < 64; i++ {
		if _, err := d2.Write((i*40009)%d2.Geometry().Blocks, 1); err != nil {
			t.Fatal(err)
		}
	}
	rnd := clock2.Now()
	if rnd < 10*seq {
		t.Errorf("random %v not >> sequential %v", rnd, seq)
	}
}

func TestSeekClassification(t *testing.T) {
	d, _ := newTestDisk()
	d.Write(0, 1)      // first access seeks (head at 0? head starts 0: dist 0 => sequential)
	d.Write(1, 1)      // sequential
	d.Write(3, 1)      // near => track seek
	d.Write(100000, 1) // far => full seek
	st := d.Stats()
	if st.Seeks != 1 {
		t.Errorf("full seeks = %d, want 1", st.Seeks)
	}
	if st.TrackSeeks != 1 {
		t.Errorf("track seeks = %d, want 1", st.TrackSeeks)
	}
	if st.Writes != 4 {
		t.Errorf("writes = %d", st.Writes)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	d, _ := newTestDisk()
	one, err := d.Write(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sixteen, err := d.Write(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Both are sequential (no seek); 16 blocks should cost ~16x.
	lo := 15 * one
	hi := 17 * one
	if sixteen < lo || sixteen > hi {
		t.Errorf("16-block transfer %v not ~16x 1-block %v", sixteen, one)
	}
}

func TestAccessValidation(t *testing.T) {
	d, _ := newTestDisk()
	if _, err := d.Read(0, 0); err == nil {
		t.Error("zero-length read accepted")
	}
	geo := d.Geometry()
	if _, err := d.Write(geo.Blocks-1, 2); err == nil {
		t.Error("overrun accepted")
	}
	if _, err := d.Read(geo.Blocks, 1); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	d, clock := newTestDisk()
	d.Write(0, 4)
	d.Read(500000%d.Geometry().Blocks, 2)
	st := d.Stats()
	if st.BytesMoved != 6*4096 {
		t.Errorf("bytes = %d", st.BytesMoved)
	}
	if st.BusyTime != clock.Now() {
		t.Errorf("busy %v != clock %v", st.BusyTime, clock.Now())
	}
	d.ResetStats()
	if d.Stats().BytesMoved != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestSequentialBandwidthIsPlausible(t *testing.T) {
	d, _ := newTestDisk()
	bw := d.SequentialBandwidth(8<<20, 16)
	// Must be positive and below the raw media rate.
	if bw <= 0 || bw > d.Geometry().TransferRate {
		t.Errorf("bandwidth = %d", bw)
	}
	// The paper's Table 4 band: rough 1990s disks deliver 1-5 MB/s.
	if bw < 1<<20 {
		t.Errorf("bandwidth %d below 1 MB/s band", bw)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted zero geometry")
		}
	}()
	New(Geometry{}, &vclock.Clock{})
}

func TestVirtualClockAdvances(t *testing.T) {
	d, clock := newTestDisk()
	before := clock.Now()
	cost, err := d.Write(200000%d.Geometry().Blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now()-before != cost {
		t.Errorf("clock advanced %v, cost %v", clock.Now()-before, cost)
	}
	if cost < d.Geometry().AvgSeek {
		t.Errorf("far write cost %v less than seek time", cost)
	}
	_ = time.Duration(0)
}
