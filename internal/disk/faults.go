// Block payloads and write-fault injection. The base model in disk.go is
// timing-only, which is all the bandwidth tables need; the Logical Disk's
// crash-consistency tests additionally need the bytes to survive (or get
// torn) across a simulated crash, so the payload store and fault arming
// live here and leave the timing paths untouched.
package disk

import (
	"errors"
	"fmt"
	"time"
)

// ErrCrashed is returned by payload writes once an armed write fault has
// fired: the simulated machine lost power mid-request, and nothing more
// reaches the platter until the "reboot" (ClearFault).
var ErrCrashed = errors.New("disk: crashed by injected write fault")

// WriteFaultMode selects how the interrupted block is left on the platter.
type WriteFaultMode int

const (
	// ShortWrite drops the interrupted block entirely: blocks persisted
	// before the cut survive, the rest never arrive (a lost sector write).
	ShortWrite WriteFaultMode = iota
	// TornWrite persists only the first half of the interrupted block, so
	// the sector holds a mix of new and old bytes. This is the case that
	// forces recovery to checksum rather than trust a magic prefix.
	TornWrite
)

func (m WriteFaultMode) String() string {
	if m == TornWrite {
		return "torn-write"
	}
	return "short-write"
}

// WriteFault schedules a crash during payload writes: after FailAfter
// further blocks have fully persisted, the next block is cut according to
// Mode and the disk stays down until ClearFault. The counter spans
// requests, so a kill point can land anywhere in a multi-request burst.
type WriteFault struct {
	Mode      WriteFaultMode
	FailAfter uint64

	left  uint64
	armed bool
}

// ArmWriteFault schedules f on the disk; nil disarms. Arming also clears
// a previous crash (the reboot).
func (d *Disk) ArmWriteFault(f *WriteFault) {
	d.fault = f
	d.crashed = false
	if f != nil {
		f.left = f.FailAfter
		f.armed = true
	}
}

// Crashed reports whether an injected fault has fired and ClearFault has
// not yet been called.
func (d *Disk) Crashed() bool { return d.crashed }

// ClearFault models the reboot: the crash state lifts, the fault plan is
// removed, and the surviving payloads are readable for recovery.
func (d *Disk) ClearFault() {
	d.fault = nil
	d.crashed = false
}

// WriteBlocks persists data (a whole number of blocks) starting at block,
// charging the same timing model as Write. Under an armed fault the write
// may be cut partway: persisted whole blocks survive, the interrupted
// block is dropped or torn per the fault mode, and ErrCrashed is returned.
func (d *Disk) WriteBlocks(block uint32, data []byte) (time.Duration, error) {
	bs := int(d.geo.BlockSize)
	if len(data) == 0 || len(data)%bs != 0 {
		return 0, fmt.Errorf("disk: payload of %d bytes is not whole blocks of %d", len(data), bs)
	}
	nblocks := uint32(len(data) / bs)
	if d.crashed {
		return 0, ErrCrashed
	}
	if uint64(block)+uint64(nblocks) > uint64(d.geo.Blocks) {
		return 0, fmt.Errorf("disk: access [%d,%d) beyond capacity %d", block, block+nblocks, d.geo.Blocks)
	}
	if d.payload == nil {
		d.payload = make(map[uint32][]byte)
	}
	for i := uint32(0); i < nblocks; i++ {
		if f := d.fault; f != nil && f.armed && f.left == 0 {
			d.crashed = true
			if f.Mode == TornWrite {
				d.tear(block+i, data[int(i)*bs:int(i)*bs+bs/2])
			}
			// Charge for the blocks that made it; the torn half is noise.
			if i > 0 {
				if _, err := d.access(block, i, true); err != nil {
					return 0, err
				}
			}
			return 0, ErrCrashed
		}
		d.payload[block+i] = append([]byte(nil), data[int(i)*bs:int(i+1)*bs]...)
		if f := d.fault; f != nil && f.armed {
			f.left--
		}
	}
	return d.access(block, nblocks, true)
}

// tear overwrites the leading bytes of a block, leaving the tail as it
// was (zeroes if the block was never written).
func (d *Disk) tear(block uint32, prefix []byte) {
	old := d.payload[block]
	buf := make([]byte, d.geo.BlockSize)
	copy(buf, old)
	copy(buf, prefix)
	d.payload[block] = buf
}

// ReadBlock returns a copy of the persisted payload of one block, zeroes
// if it was never written. Reads work on a crashed disk: recovery runs
// after the reboot and must see exactly what survived.
func (d *Disk) ReadBlock(block uint32) ([]byte, error) {
	if block >= d.geo.Blocks {
		return nil, fmt.Errorf("disk: read of block %d beyond capacity %d", block, d.geo.Blocks)
	}
	buf := make([]byte, d.geo.BlockSize)
	copy(buf, d.payload[block])
	if !d.crashed {
		if _, err := d.access(block, 1, false); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
