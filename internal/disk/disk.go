// Package disk models a mid-1990s SCSI disk on the simulation's virtual
// clock: seek, rotational latency, and transfer time per request, with
// sequential accesses paying no seek. The Logical Disk experiment
// (Table 6) and the disk-bandwidth table (Table 4) run against this
// model; the lmb package additionally measures the real disk under the
// paper's lmdd methodology so both worlds appear in EXPERIMENTS.md.
package disk

import (
	"fmt"
	"time"

	"graftlab/internal/vclock"
)

// Geometry describes the performance envelope of the modeled disk.
type Geometry struct {
	// Blocks is the disk capacity in blocks.
	Blocks uint32
	// BlockSize is bytes per block.
	BlockSize uint32
	// AvgSeek is the average seek time paid by a non-adjacent access.
	AvgSeek time.Duration
	// TrackSeek is the track-to-track seek paid by a near access.
	TrackSeek time.Duration
	// NearBlocks is the distance (in blocks) under which a seek counts
	// as track-to-track.
	NearBlocks uint32
	// HalfRotation is the average rotational latency.
	HalfRotation time.Duration
	// TransferRate is the media transfer rate in bytes per second.
	TransferRate int64
}

// DefaultGeometry approximates the disks in the paper's Table 4 (1.7-4.4
// MB/s delivered bandwidth): 1 GB, 4 KB blocks, 9 ms average seek, 4.2 ms
// half rotation (7200 RPM), 5 MB/s media rate.
func DefaultGeometry() Geometry {
	return Geometry{
		Blocks:       262144, // 1 GB / 4 KB
		BlockSize:    4096,
		AvgSeek:      9 * time.Millisecond,
		TrackSeek:    1 * time.Millisecond,
		NearBlocks:   64,
		HalfRotation: 4200 * time.Microsecond,
		TransferRate: 5 << 20,
	}
}

// Stats counts what the disk did.
type Stats struct {
	Reads      uint64
	Writes     uint64
	Seeks      uint64
	TrackSeeks uint64
	BytesMoved uint64
	BusyTime   time.Duration
}

// Disk is the simulated device. It is not safe for concurrent use; the
// simulated kernel serializes requests, as a single-spindle driver would.
type Disk struct {
	geo   Geometry
	clock *vclock.Clock
	head  uint32 // current head position in blocks
	stats Stats

	// Payload store and write-fault state (faults.go). payload is sparse
	// and nil until the first WriteBlocks, so timing-only users pay
	// nothing for it.
	payload map[uint32][]byte
	fault   *WriteFault
	crashed bool
}

// New creates a disk with the given geometry on clock.
func New(geo Geometry, clock *vclock.Clock) *Disk {
	if geo.Blocks == 0 || geo.BlockSize == 0 || geo.TransferRate <= 0 {
		panic(fmt.Sprintf("disk: invalid geometry %+v", geo))
	}
	return &Disk{geo: geo, clock: clock}
}

// Geometry returns the disk's geometry.
func (d *Disk) Geometry() Geometry { return d.geo }

// Stats returns a copy of the accumulated statistics.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats clears the statistics without moving the head.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// access charges the virtual clock for an n-block request at block.
func (d *Disk) access(block, nblocks uint32, write bool) (time.Duration, error) {
	if nblocks == 0 {
		return 0, fmt.Errorf("disk: zero-length access")
	}
	if uint64(block)+uint64(nblocks) > uint64(d.geo.Blocks) {
		return 0, fmt.Errorf("disk: access [%d,%d) beyond capacity %d", block, block+nblocks, d.geo.Blocks)
	}
	var cost time.Duration
	switch dist := absDiff(block, d.head); {
	case dist == 0:
		// sequential: head already there, no seek, no extra rotation
	case dist <= d.geo.NearBlocks:
		cost += d.geo.TrackSeek + d.geo.HalfRotation
		d.stats.TrackSeeks++
	default:
		cost += d.geo.AvgSeek + d.geo.HalfRotation
		d.stats.Seeks++
	}
	bytes := int64(nblocks) * int64(d.geo.BlockSize)
	cost += time.Duration(bytes * int64(time.Second) / d.geo.TransferRate)
	d.head = block + nblocks
	d.stats.BytesMoved += uint64(bytes)
	d.stats.BusyTime += cost
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.clock.Advance(cost)
	return cost, nil
}

// Read charges a read of nblocks at block and returns its service time.
func (d *Disk) Read(block, nblocks uint32) (time.Duration, error) {
	return d.access(block, nblocks, false)
}

// Write charges a write of nblocks at block and returns its service time.
func (d *Disk) Write(block, nblocks uint32) (time.Duration, error) {
	return d.access(block, nblocks, true)
}

// SequentialBandwidth reports the delivered bandwidth (bytes/s) of a
// sequential write of total bytes in chunks of chunkBlocks, computed
// analytically from the geometry. Used for the Table 4 model column.
func (d *Disk) SequentialBandwidth(total int64, chunkBlocks uint32) int64 {
	if chunkBlocks == 0 {
		return 0
	}
	chunkBytes := int64(chunkBlocks) * int64(d.geo.BlockSize)
	chunks := total / chunkBytes
	if chunks == 0 {
		chunks = 1
	}
	// First chunk pays a full seek; subsequent chunks stream.
	cost := time.Duration(chunks * chunkBytes * int64(time.Second) / d.geo.TransferRate)
	cost += d.geo.AvgSeek + d.geo.HalfRotation
	if cost <= 0 {
		return 0
	}
	return int64(float64(chunks*chunkBytes) / cost.Seconds())
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}
