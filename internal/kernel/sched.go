package kernel

import (
	"fmt"
	"time"

	"graftlab/internal/telemetry"
	"graftlab/internal/vclock"
)

// Proc is a simulated process known to the scheduler.
type Proc struct {
	PID      int
	Name     string
	Runtime  time.Duration // virtual CPU time consumed
	Deadline time.Duration // optional deadline hint, 0 if none
	Tag      uint32        // application-defined hint visible to policies
}

// SchedPolicy is the Prioritization hook for the scheduler: given the run
// queue, return the index of the process to run next, or -1 to accept the
// kernel's round-robin choice. An out-of-range index is rejected and
// counted, mirroring the pager's validation of graft proposals.
type SchedPolicy interface {
	PickNext(runnable []*Proc) (int, error)
}

// SchedPolicyFunc adapts a function to SchedPolicy.
type SchedPolicyFunc func(runnable []*Proc) (int, error)

// PickNext calls f.
func (f SchedPolicyFunc) PickNext(runnable []*Proc) (int, error) { return f(runnable) }

// SchedStats counts scheduler activity.
type SchedStats struct {
	Dispatches      uint64
	PolicyCalls     uint64
	PolicyOverrides uint64
	PolicyRejected  uint64
	PolicyErrors    uint64
}

// Scheduler is a quantum-based scheduler with a Prioritization hook, the
// paper's third example of prioritization policy ("no scheduling
// algorithm is appropriate for all application mixes", §3.1).
type Scheduler struct {
	clock   *vclock.Clock
	quantum time.Duration
	runq    []*Proc
	policy  SchedPolicy
	stats   SchedStats
	nextPID int
}

// NewScheduler builds a scheduler with the given time quantum.
func NewScheduler(quantum time.Duration, clock *vclock.Clock) *Scheduler {
	return &Scheduler{clock: clock, quantum: quantum, nextPID: 1}
}

// Spawn adds a process to the run queue.
func (s *Scheduler) Spawn(name string, tag uint32) *Proc {
	p := &Proc{PID: s.nextPID, Name: name, Tag: tag}
	s.nextPID++
	s.runq = append(s.runq, p)
	return p
}

// SetPolicy installs (or removes, with nil) the pick-next hook.
func (s *Scheduler) SetPolicy(policy SchedPolicy) { s.policy = policy }

// Stats returns a copy of the counters.
func (s *Scheduler) Stats() SchedStats { return s.stats }

// Runnable returns the current run queue (shared slice; do not mutate).
func (s *Scheduler) Runnable() []*Proc { return s.runq }

// Tick dispatches one quantum and returns the process that ran. The
// default policy is round-robin: the head of the queue runs and moves to
// the tail.
func (s *Scheduler) Tick() (*Proc, error) {
	if len(s.runq) == 0 {
		return nil, fmt.Errorf("kernel: empty run queue")
	}
	idx := 0
	override := uint64(0)
	if s.policy != nil {
		s.stats.PolicyCalls++
		pick, err := s.policy.PickNext(s.runq)
		switch {
		case err != nil:
			s.stats.PolicyErrors++
		case pick < 0:
			// policy declined; keep round-robin choice
		case pick >= len(s.runq):
			s.stats.PolicyRejected++
		default:
			if pick != 0 {
				s.stats.PolicyOverrides++
				override = 1
			}
			idx = pick
		}
	}
	p := s.runq[idx]
	telemetry.Emit(telemetry.EvSchedPick, uint64(p.PID), uint64(idx), override)
	s.runq = append(s.runq[:idx], s.runq[idx+1:]...)
	s.runq = append(s.runq, p)
	p.Runtime += s.quantum
	s.clock.Advance(s.quantum)
	s.stats.Dispatches++
	return p, nil
}

// Exit removes a process from the run queue.
func (s *Scheduler) Exit(pid int) bool {
	for i, p := range s.runq {
		if p.PID == pid {
			s.runq = append(s.runq[:i], s.runq[i+1:]...)
			return true
		}
	}
	return false
}
