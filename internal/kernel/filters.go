package kernel

import (
	"encoding/binary"
	"fmt"
)

// The filters in this file are the Stream graft examples §3.2 enumerates
// beyond MD5: "transparently compress a file when it is written and
// decompress it when it is read, or automatically encrypt a file when
// written and decrypt it when read", and the journaling filesystem built
// by "inserting into the request stream a graft that journals the changes
// made to the metadata".

// XORFilter is a symmetric stream cipher over an LCG keystream — not
// cryptography, but exactly the shape of one: stateful, byte-oriented,
// and self-inverse when the same seed is used for both directions.
type XORFilter struct {
	state uint64
	out   []byte
}

// NewXORFilter builds a cipher filter seeded with key.
func NewXORFilter(key uint64) *XORFilter {
	return &XORFilter{state: key | 1}
}

// Name implements Filter.
func (x *XORFilter) Name() string { return "xor-cipher" }

// Process implements Filter.
func (x *XORFilter) Process(p []byte) ([]byte, error) {
	if cap(x.out) < len(p) {
		x.out = make([]byte, len(p))
	}
	out := x.out[:len(p)]
	s := x.state
	for i, b := range p {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = b ^ byte(s>>56)
	}
	x.state = s
	return out, nil
}

// Finish implements Filter.
func (x *XORFilter) Finish() ([]byte, error) { return nil, nil }

// RLEFilter run-length encodes its input: output is (count, byte) pairs
// with counts up to 255. Runs may span Process calls.
type RLEFilter struct {
	last  byte
	count int
	begun bool
	out   []byte
}

// Name implements Filter.
func (r *RLEFilter) Name() string { return "rle-compress" }

// Process implements Filter.
func (r *RLEFilter) Process(p []byte) ([]byte, error) {
	r.out = r.out[:0]
	for _, b := range p {
		if r.begun && b == r.last && r.count < 255 {
			r.count++
			continue
		}
		if r.begun {
			r.out = append(r.out, byte(r.count), r.last)
		}
		r.begun = true
		r.last = b
		r.count = 1
	}
	return r.out, nil
}

// Finish implements Filter.
func (r *RLEFilter) Finish() ([]byte, error) {
	if !r.begun {
		return nil, nil
	}
	r.begun = false
	return []byte{byte(r.count), r.last}, nil
}

// RLEExpand inverts RLEFilter. A trailing odd byte is buffered between
// Process calls; a stream ending mid-pair is an error at Finish.
type RLEExpand struct {
	pending []byte
	out     []byte
}

// Name implements Filter.
func (r *RLEExpand) Name() string { return "rle-expand" }

// Process implements Filter.
func (r *RLEExpand) Process(p []byte) ([]byte, error) {
	r.out = r.out[:0]
	data := p
	if len(r.pending) > 0 {
		data = append(r.pending, p...)
	}
	i := 0
	for ; i+1 < len(data); i += 2 {
		count, b := int(data[i]), data[i+1]
		for j := 0; j < count; j++ {
			r.out = append(r.out, b)
		}
	}
	r.pending = append(r.pending[:0], data[i:]...)
	return r.out, nil
}

// Finish implements Filter.
func (r *RLEExpand) Finish() ([]byte, error) {
	if len(r.pending) != 0 {
		return nil, fmt.Errorf("kernel: rle stream truncated mid-pair")
	}
	return nil, nil
}

// JournalFilter models the journaling-filesystem graft: each Process call
// is one write request whose first MetaBytes are metadata; the filter
// appends {seq, len, metadata} records to its journal and passes the
// request through unchanged. After a crash, the journal replays what the
// metadata state should be.
type JournalFilter struct {
	MetaBytes int
	seq       uint32
	journal   []byte
}

// NewJournalFilter journals the first metaBytes of every request.
func NewJournalFilter(metaBytes int) *JournalFilter {
	return &JournalFilter{MetaBytes: metaBytes}
}

// Name implements Filter.
func (j *JournalFilter) Name() string { return "journal" }

// Process implements Filter.
func (j *JournalFilter) Process(p []byte) ([]byte, error) {
	n := j.MetaBytes
	if n > len(p) {
		n = len(p)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], j.seq)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
	j.journal = append(j.journal, hdr[:]...)
	j.journal = append(j.journal, p[:n]...)
	j.seq++
	return p, nil
}

// Finish implements Filter.
func (j *JournalFilter) Finish() ([]byte, error) { return nil, nil }

// Journal returns the accumulated journal bytes.
func (j *JournalFilter) Journal() []byte { return j.journal }

// Records parses the journal back into (seq, metadata) records.
func (j *JournalFilter) Records() ([][]byte, error) {
	var out [][]byte
	b := j.journal
	for len(b) > 0 {
		if len(b) < 8 {
			return nil, fmt.Errorf("kernel: truncated journal header")
		}
		seq := binary.LittleEndian.Uint32(b)
		n := binary.LittleEndian.Uint32(b[4:])
		if uint32(len(b)-8) < n {
			return nil, fmt.Errorf("kernel: truncated journal record %d", seq)
		}
		if int(seq) != len(out) {
			return nil, fmt.Errorf("kernel: journal sequence gap at %d", seq)
		}
		out = append(out, b[8:8+n])
		b = b[8+n:]
	}
	return out, nil
}
