package kernel

import (
	"testing"

	"graftlab/internal/workload"
)

func TestBufferCacheBasics(t *testing.T) {
	c, err := NewBufferCache(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBufferCache(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	hit, ev, err := c.Get(1)
	if err != nil || hit || ev != NoBlock {
		t.Fatalf("first get: %v %v %v", hit, ev, err)
	}
	c.Get(2)
	hit, _, _ = c.Get(1)
	if !hit {
		t.Fatal("expected hit")
	}
	// LRU: block 2 is now least recent; inserting 3 evicts it.
	_, ev, _ = c.Get(3)
	if ev != 2 {
		t.Fatalf("evicted %d, want 2", ev)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Fatalf("contents wrong: %v", c.UseOrder())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBufferCacheMRUBeatsLRUOnCyclicScan(t *testing.T) {
	// The §3.1 scenario: a cyclic sequential scan over a working set one
	// block larger than the cache. LRU evicts exactly the next-needed
	// block every time (0% hits after warmup); MRU keeps a stable prefix.
	run := func(p CachePolicy) CacheStats {
		c, err := NewBufferCache(8)
		if err != nil {
			t.Fatal(err)
		}
		c.SetPolicy(p)
		for pass := 0; pass < 50; pass++ {
			for b := uint32(0); b < 9; b++ {
				if _, _, err := c.Get(b); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c.Stats()
	}
	lru := run(CacheLRU)
	mru := run(CacheMRU)
	if lru.Hits != 0 {
		t.Errorf("LRU on cyclic scan got %d hits; the pathology should give 0", lru.Hits)
	}
	if mru.Hits < 300 {
		t.Errorf("MRU hits = %d, want most accesses", mru.Hits)
	}
}

func TestBufferCacheHookOverridesAndValidation(t *testing.T) {
	c, err := NewBufferCache(3)
	if err != nil {
		t.Fatal(err)
	}
	for b := uint32(1); b <= 3; b++ {
		c.Get(b)
	}
	// Hook pins block 1 by always evicting the most recent non-1 block.
	c.SetHook(func(order []uint32) uint32 {
		for i := len(order) - 1; i >= 0; i-- {
			if order[i] != 1 {
				return order[i]
			}
		}
		return NoBlock
	})
	c.Get(4) // hook evicts 3 (MRU non-1)
	if !c.Contains(1) || c.Contains(3) {
		t.Fatalf("hook not honored: %v", c.UseOrder())
	}
	st := c.Stats()
	if st.HookCalls != 1 || st.HookOverrides != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Invalid proposal falls back to the built-in policy.
	c.SetHook(func([]uint32) uint32 { return 999 })
	c.Get(5)
	if st := c.Stats(); st.HookRejected != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Declining hook defers to built-in.
	c.SetHook(func([]uint32) uint32 { return NoBlock })
	before := c.Stats().HookOverrides
	c.Get(6)
	if c.Stats().HookOverrides != before {
		t.Fatal("declining hook counted as override")
	}
}

func TestBufferCacheHookBeatsEveryBuiltinSomewhere(t *testing.T) {
	// The paper's argument for general grafting: a workload with a hot
	// set revisited between long scan bursts defeats both menu policies,
	// while an application hook that pins the hot set wins.
	hot := []uint32{1000, 1001, 1002, 1003}
	isHot := func(b uint32) bool { return b >= 1000 && b < 1004 }

	var access []uint32
	rng := workload.NewRNG(5)
	for burst := 0; burst < 60; burst++ {
		for _, h := range hot {
			access = append(access, h)
		}
		// Scan burst of 12 cold blocks.
		for i := 0; i < 12; i++ {
			access = append(access, rng.Uint32n(500))
		}
	}

	run := func(policy CachePolicy, pin bool) uint64 {
		c, err := NewBufferCache(8)
		if err != nil {
			t.Fatal(err)
		}
		c.SetPolicy(policy)
		if pin {
			c.SetHook(func(order []uint32) uint32 {
				for _, b := range order {
					if !isHot(b) {
						return b
					}
				}
				return NoBlock
			})
		}
		for _, b := range access {
			if _, _, err := c.Get(b); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats().Hits
	}

	lru := run(CacheLRU, false)
	mru := run(CacheMRU, false)
	hook := run(CacheLRU, true)
	if hook <= lru || hook <= mru {
		t.Errorf("hook hits %d not better than menu policies (lru %d, mru %d)", hook, lru, mru)
	}
}

func TestBufferCacheUseOrderIsLRUOrder(t *testing.T) {
	c, _ := NewBufferCache(4)
	for _, b := range []uint32{1, 2, 3, 4} {
		c.Get(b)
	}
	c.Get(2)
	order := c.UseOrder()
	want := []uint32{1, 3, 4, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}
