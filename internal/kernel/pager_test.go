package kernel

import (
	"errors"
	"testing"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/vclock"
	"graftlab/internal/workload"
)

func newTestPager(t *testing.T, frames int) (*Pager, *vclock.Clock) {
	t.Helper()
	clock := &vclock.Clock{}
	p, err := NewPager(PagerConfig{Frames: frames, FaultTime: time.Millisecond}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return p, clock
}

func TestPagerBasicFaultAndHit(t *testing.T) {
	p, clock := newTestPager(t, 2)
	hit, err := p.Access(1)
	if err != nil || hit {
		t.Fatalf("first access: hit=%v err=%v", hit, err)
	}
	hit, err = p.Access(1)
	if err != nil || !hit {
		t.Fatalf("second access: hit=%v err=%v", hit, err)
	}
	st := p.Stats()
	if st.Faults != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if clock.Now() != time.Millisecond {
		t.Errorf("clock = %v, want 1ms (one fault)", clock.Now())
	}
}

func TestPagerLRUEviction(t *testing.T) {
	p, _ := newTestPager(t, 3)
	for pg := PageID(1); pg <= 3; pg++ {
		p.Access(pg)
	}
	p.Access(1) // 1 becomes MRU; order now 2,3,1
	p.Access(4) // evicts 2
	if p.Resident(2) {
		t.Fatalf("LRU head not evicted; %v", p.LRUPages())
	}
	want := []PageID{3, 1, 4}
	got := p.LRUPages()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LRU = %v, want %v", got, want)
		}
	}
}

func TestPagerInvalidAccess(t *testing.T) {
	p, _ := newTestPager(t, 1)
	if _, err := p.Access(InvalidPage); err == nil {
		t.Fatal("InvalidPage accepted")
	}
}

func TestPagerConfigValidation(t *testing.T) {
	clock := &vclock.Clock{}
	if _, err := NewPager(PagerConfig{Frames: 0}, clock); err == nil {
		t.Error("zero frames accepted")
	}
	m := mem.New(1 << 12)
	if _, err := NewPager(PagerConfig{Frames: 4, Mem: m, NodeBase: 0}, clock); err == nil {
		t.Error("zero NodeBase accepted")
	}
	if _, err := NewPager(PagerConfig{Frames: 100000, Mem: m, NodeBase: 8}, clock); err == nil {
		t.Error("oversized mirror accepted")
	}
}

func TestPagerTouch(t *testing.T) {
	p, _ := newTestPager(t, 2)
	p.Access(1)
	p.Access(2)
	if !p.Touch(1) {
		t.Fatal("Touch of resident page failed")
	}
	if p.Touch(99) {
		t.Fatal("Touch of absent page succeeded")
	}
	p.Access(3) // should evict 2, since 1 was touched
	if p.Resident(2) || !p.Resident(1) {
		t.Fatalf("Touch did not reorder LRU: %v", p.LRUPages())
	}
}

// TestPagerMemoryMirror checks that the graft-memory LRU chain always
// matches the kernel's internal list.
func TestPagerMemoryMirror(t *testing.T) {
	m := mem.New(1 << 16)
	clock := &vclock.Clock{}
	const base = 0x1000
	p, err := NewPager(PagerConfig{Frames: 8, Mem: m, NodeBase: base}, clock)
	if err != nil {
		t.Fatal(err)
	}
	readMirror := func() []PageID {
		var out []PageID
		for a := p.HeadAddr(); a != 0; a = m.Ld32U(a + 4) {
			out = append(out, PageID(m.Ld32U(a)))
		}
		return out
	}
	rng := workload.NewRNG(3)
	for i := 0; i < 5000; i++ {
		p.Access(PageID(rng.Uint32n(20)))
		kern := p.LRUPages()
		mirror := readMirror()
		if len(kern) != len(mirror) {
			t.Fatalf("iter %d: mirror length %d vs kernel %d", i, len(mirror), len(kern))
		}
		for j := range kern {
			if kern[j] != mirror[j] {
				t.Fatalf("iter %d: mirror %v vs kernel %v", i, mirror, kern)
			}
		}
	}
}

// TestPagerLRUInvariant: the LRU chain is always a permutation of the
// resident set.
func TestPagerLRUInvariant(t *testing.T) {
	p, _ := newTestPager(t, 16)
	rng := workload.NewRNG(11)
	for i := 0; i < 20000; i++ {
		p.Access(PageID(rng.Uint32n(100)))
		lru := p.LRUPages()
		if len(lru) != p.ResidentCount() {
			t.Fatalf("iter %d: chain %d vs resident %d", i, len(lru), p.ResidentCount())
		}
		seen := make(map[PageID]bool, len(lru))
		for _, pg := range lru {
			if seen[pg] {
				t.Fatalf("iter %d: duplicate %d in LRU %v", i, pg, lru)
			}
			seen[pg] = true
			if !p.Resident(pg) {
				t.Fatalf("iter %d: chain contains non-resident %d", i, pg)
			}
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	p, _ := newTestPager(t, 2)
	p.Access(1)
	p.Access(2)

	// Policy proposing a non-resident page is rejected; LRU prevails.
	p.SetPolicy(EvictionPolicyFunc(func(pg *Pager, cand PageID) (PageID, error) {
		return PageID(777), nil
	}))
	p.Access(3)
	if p.Resident(1) {
		t.Fatal("rejected proposal still overrode LRU")
	}
	if st := p.Stats(); st.PolicyRejected != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Policy error falls back to LRU.
	p.SetPolicy(EvictionPolicyFunc(func(pg *Pager, cand PageID) (PageID, error) {
		return InvalidPage, errors.New("graft trapped")
	}))
	p.Access(4)
	if st := p.Stats(); st.PolicyErrors != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Declining policy accepts the candidate.
	p.SetPolicy(EvictionPolicyFunc(func(pg *Pager, cand PageID) (PageID, error) {
		return InvalidPage, nil
	}))
	p.Access(5)
	if st := p.Stats(); st.PolicyOverrides != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPolicyOverride(t *testing.T) {
	p, _ := newTestPager(t, 3)
	p.Access(1)
	p.Access(2)
	p.Access(3)
	// Always evict the MRU page instead of the candidate.
	p.SetPolicy(EvictionPolicyFunc(func(pg *Pager, cand PageID) (PageID, error) {
		lru := pg.LRUPages()
		return lru[len(lru)-1], nil
	}))
	p.Access(4)
	if p.Resident(3) || !p.Resident(1) {
		t.Fatalf("override not applied: %v", p.LRUPages())
	}
	if st := p.Stats(); st.PolicyOverrides != 1 {
		t.Errorf("stats = %+v", st)
	}
}
