package kernel

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestShardedPager(t *testing.T, shards, frames int) *ShardedPager {
	t.Helper()
	sp, err := NewShardedPager(ShardedPagerConfig{
		Shards: shards, Frames: frames, FaultTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestShardedPagerConfigValidation(t *testing.T) {
	if _, err := NewShardedPager(ShardedPagerConfig{Shards: 8, Frames: 4}); err == nil {
		t.Fatal("fewer frames than shards accepted")
	}
	sp, err := NewShardedPager(ShardedPagerConfig{Shards: 0, Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shards() != 1 {
		t.Fatalf("zero shards rounded to %d, want 1", sp.Shards())
	}
}

// TestShardedPagerSingleThreadedSemantics pins that one shard behaves
// exactly like the plain pager: LRU order, hit/fault/eviction counts,
// and the virtual clock charging.
func TestShardedPagerSingleThreadedSemantics(t *testing.T) {
	sp := newTestShardedPager(t, 1, 3)
	for _, p := range []PageID{10, 11, 12} {
		if hit, err := sp.Access(p); err != nil || hit {
			t.Fatalf("cold access of %d: hit=%v err=%v", p, hit, err)
		}
	}
	if hit, _ := sp.Access(10); !hit {
		t.Fatal("resident page missed")
	}
	// 11 is now the LRU head; faulting 13 must evict it.
	if _, err := sp.Access(13); err != nil {
		t.Fatal(err)
	}
	if sp.Resident(11) {
		t.Fatal("LRU head survived eviction")
	}
	st := sp.Stats()
	if st.Hits != 1 || st.Faults != 4 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 4 faults / 1 eviction", st)
	}
	if got, want := sp.VirtualTime(), 4*time.Millisecond; got != want {
		t.Fatalf("virtual time %v, want %v", got, want)
	}
	if sp.ResidentCount() != 3 {
		t.Fatalf("resident count %d, want 3", sp.ResidentCount())
	}
	if _, err := sp.Access(InvalidPage); err == nil {
		t.Fatal("access to invalid page accepted")
	}
}

// TestShardedPagerPolicyOutcomes pins the §3.1 revalidation contract on
// the concurrent hook: overrides of resident proposals are honored,
// non-resident or invalid proposals fall back to the kernel candidate,
// and policy errors are absorbed.
func TestShardedPagerPolicyOutcomes(t *testing.T) {
	sp := newTestShardedPager(t, 1, 3)
	for _, p := range []PageID{10, 11, 12} {
		if _, err := sp.Access(p); err != nil {
			t.Fatal(err)
		}
	}
	var propose func(lru []PageID, candidate PageID) (PageID, error)
	sp.SetPolicy(ShardPolicyFunc(func(shard int, lru []PageID, candidate PageID) (PageID, error) {
		return propose(lru, candidate)
	}))

	// Override: propose the most-recently-used resident page.
	propose = func(lru []PageID, candidate PageID) (PageID, error) {
		if len(lru) == 0 || candidate != lru[0] {
			t.Errorf("hook saw lru=%v candidate=%v", lru, candidate)
		}
		return lru[len(lru)-1], nil
	}
	if _, err := sp.Access(20); err != nil {
		t.Fatal(err)
	}
	if sp.Resident(12) {
		t.Fatal("override victim still resident")
	}
	if !sp.Resident(10) {
		t.Fatal("kernel candidate evicted despite override")
	}

	// Rejection: a non-resident proposal falls back to the candidate.
	propose = func(lru []PageID, candidate PageID) (PageID, error) { return 99999, nil }
	if _, err := sp.Access(21); err != nil {
		t.Fatal(err)
	}
	// Acceptance: InvalidPage defers to the kernel.
	propose = func(lru []PageID, candidate PageID) (PageID, error) { return InvalidPage, nil }
	if _, err := sp.Access(22); err != nil {
		t.Fatal(err)
	}
	// Error: absorbed, kernel choice stands.
	propose = func(lru []PageID, candidate PageID) (PageID, error) { return 0, fmt.Errorf("graft trapped") }
	if _, err := sp.Access(23); err != nil {
		t.Fatal(err)
	}

	st := sp.Stats()
	if st.PolicyCalls != 4 || st.PolicyOverrides != 1 || st.PolicyRejected != 1 || st.PolicyErrors != 1 {
		t.Fatalf("policy stats = %+v, want 4 calls / 1 override / 1 rejected / 1 error", st)
	}
}

// TestStressShardedPagerConcurrentAccess hammers Access from many
// goroutines with a policy installed and checks the global invariants:
// counters sum to the access count, residency never exceeds the frame
// budget, and every shard still services faults.
func TestStressShardedPagerConcurrentAccess(t *testing.T) {
	workers, iters := 8, 400
	if testing.Short() {
		workers, iters = 4, 100
	}
	sp := newTestShardedPager(t, 4, 64)
	var policyCalls atomic.Uint64
	sp.SetPolicy(ShardPolicyFunc(func(shard int, lru []PageID, candidate PageID) (PageID, error) {
		policyCalls.Add(1)
		switch {
		case len(lru) == 0:
			return InvalidPage, nil
		case candidate%3 == 0:
			return lru[len(lru)-1], nil // override
		case candidate%3 == 1:
			return 1 << 30, nil // rejected: never resident
		}
		return candidate, nil // accepted
	}))

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				// 128-page working set over 64 frames: plenty of hits AND
				// constant eviction pressure on every shard.
				if _, err := sp.Access(PageID(rng.Intn(128))); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := sp.Stats()
	total := uint64(workers * iters)
	if st.Hits+st.Faults != total {
		t.Fatalf("hits %d + faults %d != %d accesses", st.Hits, st.Faults, total)
	}
	if st.Evictions > st.Faults {
		t.Fatalf("%d evictions exceed %d faults", st.Evictions, st.Faults)
	}
	if got := sp.ResidentCount(); got > 64 {
		t.Fatalf("resident count %d exceeds 64 frames", got)
	}
	if st.PolicyCalls != policyCalls.Load() {
		t.Fatalf("counted %d policy calls, hook ran %d times", st.PolicyCalls, policyCalls.Load())
	}
	if st.PolicyOverrides+st.PolicyRejected+st.PolicyErrors > st.PolicyCalls {
		t.Fatalf("policy outcome counts exceed calls: %+v", st)
	}
	if sp.VirtualTime() != time.Duration(st.Faults)*time.Millisecond {
		t.Fatalf("virtual time %v does not match %d faults", sp.VirtualTime(), st.Faults)
	}
	for s := 0; s < sp.Shards(); s++ {
		if len(sp.LRUPages(s)) == 0 {
			t.Fatalf("shard %d serviced no pages", s)
		}
	}
}

// TestStressShardedPagerSlowPolicy gives the unlocked policy window real
// width (the hook sleeps), so the optimistic-concurrency retry paths —
// raced-in pages, vanished victims — actually execute under load.
func TestStressShardedPagerSlowPolicy(t *testing.T) {
	workers, iters := 8, 60
	if testing.Short() {
		workers, iters = 4, 20
	}
	sp := newTestShardedPager(t, 2, 8)
	sp.SetPolicy(ShardPolicyFunc(func(shard int, lru []PageID, candidate PageID) (PageID, error) {
		time.Sleep(100 * time.Microsecond)
		if len(lru) > 1 {
			return lru[1], nil
		}
		return candidate, nil
	}))
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Tiny working set: workers constantly fault the same pages,
				// making raced-in revalidation and victim churn likely.
				if _, err := sp.Access(PageID((w + i) % 24)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := sp.Stats(); st.Hits+st.Faults != uint64(workers*iters) {
		t.Fatalf("stats %+v do not sum to %d accesses", st, workers*iters)
	}
}

// TestConcurrentShardedPagerPolicySwap hot-swaps the eviction policy
// while workers fault continuously — the lifecycle swap seam. Each
// policy counts its own decisions; the invariants are that every policy
// call landed in exactly one policy (no torn decision), SwapPolicy
// returns the displaced hook, and the pager's books still balance.
func TestConcurrentShardedPagerPolicySwap(t *testing.T) {
	workers, iters, swaps := 8, 300, 40
	if testing.Short() {
		workers, iters, swaps = 4, 80, 10
	}
	sp := newTestShardedPager(t, 4, 16)

	counts := make([]atomic.Uint64, 2)
	mkPolicy := func(gen int) ShardPolicy {
		return ShardPolicyFunc(func(shard int, lru []PageID, candidate PageID) (PageID, error) {
			counts[gen].Add(1)
			if len(lru) > 1 && int(candidate%2) == gen {
				return lru[len(lru)-1], nil // override
			}
			return candidate, nil // accept
		})
	}
	policies := []ShardPolicy{mkPolicy(0), mkPolicy(1)}
	sp.SetPolicy(policies[0])

	// Workers interleave swaps with their own faults (rather than a
	// dedicated swapper goroutine) so policy replacement is guaranteed to
	// overlap fault traffic even on GOMAXPROCS=1, where a background
	// spinner may never be scheduled against a short burst of workers.
	swapEvery := iters / swaps * workers
	if swapEvery < 1 {
		swapEvery = 1
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	var swapped atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			for i := 0; i < iters; i++ {
				// 64-page working set over 16 frames: near-constant eviction,
				// so almost every fault consults whichever policy is live.
				if _, err := sp.Access(PageID(rng.Intn(64))); err != nil {
					errs[w] = err
					return
				}
				if (w*iters+i)%swapEvery == 0 {
					n := swapped.Add(1)
					if old := sp.SwapPolicy(policies[n%2]); old == nil {
						errs[w] = fmt.Errorf("swap %d displaced nil, want previous policy", n)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if swapped.Load() == 0 {
		t.Fatal("no swaps executed")
	}

	st := sp.Stats()
	total := uint64(workers * iters)
	if st.Hits+st.Faults != total {
		t.Fatalf("hits %d + faults %d != %d accesses", st.Hits, st.Faults, total)
	}
	if got := counts[0].Load() + counts[1].Load(); got != st.PolicyCalls {
		t.Fatalf("policies ran %d times, pager counted %d calls — a decision was torn or lost",
			got, st.PolicyCalls)
	}
	if counts[0].Load() == 0 || counts[1].Load() == 0 {
		t.Fatalf("one policy generation never consulted (gen0=%d gen1=%d): swap not taking effect",
			counts[0].Load(), counts[1].Load())
	}
	if got := sp.ResidentCount(); got > 16 {
		t.Fatalf("resident count %d exceeds 16 frames", got)
	}
	// Removal mid-stream must also be safe: nil policy, then more faults.
	if old := sp.SwapPolicy(nil); old == nil {
		t.Fatal("final swap displaced nil, want a live policy")
	}
	for i := 0; i < 32; i++ {
		if _, err := sp.Access(PageID(200 + i)); err != nil {
			t.Fatal(err)
		}
	}
}
