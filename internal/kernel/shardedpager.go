// Sharded pager: the multicore form of the demand pager. The single
// Pager is single-threaded by contract — every hook point in the paper
// runs in a 1995 uniprocessor kernel — but the roadmap's production
// system serves concurrent traffic, so page lookups, LRU maintenance,
// and eviction decisions must scale across cores. The design is the
// classic one (Linux split-LRU, per-memcg lock striping): partition
// pages over independent shards, each with its own lock, LRU chain, and
// virtual clock, and never hold a shard lock across a graft invocation.
package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graftlab/internal/telemetry"
	"graftlab/internal/vclock"
)

// ShardPolicy is the concurrent Prioritization hook. ChooseVictim
// receives a snapshot of the shard's LRU chain (eviction order, head
// first) taken under the shard lock, and runs WITHOUT the lock held —
// the graft may take microseconds to milliseconds (Table 2), and
// stalling every other access to the shard for that long would erase
// the concurrency the shards exist to provide. The proposal is
// revalidated under the lock before it is honored (the §3.1 candidate
// check, extended with an optimistic-concurrency recheck): a proposal
// that went non-resident while the graft ran is rejected exactly like
// an invalid one.
//
// Implementations that carry a graft use a tech.Pool so concurrent
// shards never share an engine; see grafts.PooledEvictionPolicy.
type ShardPolicy interface {
	ChooseVictim(shard int, lru []PageID, candidate PageID) (PageID, error)
}

// SpanShardPolicy is the optional span-aware variant of ShardPolicy:
// when causal tracing has sampled the current fault, the kernel hands
// the policy its span context so policy and engine work nest under the
// kernel eviction span. Policies without it get ChooseVictim as usual.
type SpanShardPolicy interface {
	ChooseVictimSpan(ctx telemetry.SpanCtx, shard int, lru []PageID, candidate PageID) (PageID, error)
}

// ShardPolicyFunc adapts a function to ShardPolicy.
type ShardPolicyFunc func(shard int, lru []PageID, candidate PageID) (PageID, error)

// ChooseVictim calls f.
func (f ShardPolicyFunc) ChooseVictim(shard int, lru []PageID, candidate PageID) (PageID, error) {
	return f(shard, lru, candidate)
}

// ShardedPagerConfig sizes a ShardedPager.
type ShardedPagerConfig struct {
	// Shards is the number of independent partitions (rounded up to 1).
	// Sizing rule of thumb: at least the worker count, so two workers
	// only collide when they touch the same partition of the page space.
	Shards int
	// Frames is the total number of physical frames, distributed across
	// shards (each shard needs at least one).
	Frames int
	// FaultTime is the virtual cost of servicing one fault, charged to
	// the faulting shard's clock.
	FaultTime time.Duration
}

// pagerShard is one partition. Everything inside is guarded by mu
// except the counters, which live in the sharded telemetry counters on
// the parent so Stats never takes a lock.
type pagerShard struct {
	mu sync.Mutex
	p  *Pager
	// clock accumulates this shard's virtual fault-service time. Per
	// shard: shards model independent paging devices, and a shared
	// clock would be the one global cache line every fault touches.
	clock vclock.Clock
	_     [24]byte // keep neighboring shards off one another's lines
}

// ShardedPager is a demand pager safe for concurrent Access from many
// goroutines. Pages map to shards by page number modulo the shard count
// (sequential scans stripe round-robin over shards); each shard is an
// ordinary Pager driven through its frame primitives, so the LRU
// semantics within a shard are exactly the single-threaded pager's.
//
// Counters are per-shard (telemetry.ShardedCounter), so the bookkeeping
// on the hit path is one uncontended atomic add — instrumentation stays
// within its ≤2% budget no matter how many workers hammer the pager.
type ShardedPager struct {
	shards []pagerShard
	// policy holds the installed ShardPolicy behind an atomic pointer so
	// it can be replaced while faults are in flight (see SwapPolicy). A
	// nil box or a box holding nil both mean "no policy".
	policy    atomic.Pointer[shardPolicyBox]
	faultTime time.Duration

	hits            *telemetry.ShardedCounter
	faults          *telemetry.ShardedCounter
	evictions       *telemetry.ShardedCounter
	policyCalls     *telemetry.ShardedCounter
	policyOverrides *telemetry.ShardedCounter
	policyRejected  *telemetry.ShardedCounter
	policyErrors    *telemetry.ShardedCounter
}

// NewShardedPager builds a pager with cfg.Frames distributed over
// cfg.Shards partitions.
func NewShardedPager(cfg ShardedPagerConfig) (*ShardedPager, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Frames < cfg.Shards {
		return nil, fmt.Errorf("kernel: %d frames cannot cover %d shards", cfg.Frames, cfg.Shards)
	}
	sp := &ShardedPager{
		shards:          make([]pagerShard, cfg.Shards),
		faultTime:       cfg.FaultTime,
		hits:            telemetry.NewShardedCounter(cfg.Shards),
		faults:          telemetry.NewShardedCounter(cfg.Shards),
		evictions:       telemetry.NewShardedCounter(cfg.Shards),
		policyCalls:     telemetry.NewShardedCounter(cfg.Shards),
		policyOverrides: telemetry.NewShardedCounter(cfg.Shards),
		policyRejected:  telemetry.NewShardedCounter(cfg.Shards),
		policyErrors:    telemetry.NewShardedCounter(cfg.Shards),
	}
	base, extra := cfg.Frames/cfg.Shards, cfg.Frames%cfg.Shards
	for s := range sp.shards {
		frames := base
		if s < extra {
			frames++
		}
		p, err := NewPager(PagerConfig{Frames: frames}, &sp.shards[s].clock)
		if err != nil {
			return nil, err
		}
		sp.shards[s].p = p
	}
	return sp, nil
}

// shardPolicyBox wraps a ShardPolicy so an interface value (two words,
// not atomically storable) can live behind one atomic pointer.
type shardPolicyBox struct{ p ShardPolicy }

// SetPolicy installs (or removes, with nil) the eviction hook. The
// store is atomic, so a policy may be installed, removed, or replaced
// while faults are in flight; see SwapPolicy for the swap semantics.
func (sp *ShardedPager) SetPolicy(policy ShardPolicy) {
	if policy == nil {
		sp.policy.Store(nil)
		return
	}
	sp.policy.Store(&shardPolicyBox{p: policy})
}

// SwapPolicy atomically replaces the eviction hook and returns the one
// it displaced (nil if none). This is the lifecycle hot-swap seam: a
// fault that consulted the old policy in its unlocked window simply has
// its proposal revalidated under the shard lock like any other stale
// proposal (see faultIn), so swapping mid-fault can never install a
// torn decision — the worst case is one extra retry iteration that
// consults the new incumbent. Package lifecycle drives this from
// Slot.Promote when the swapped graft is a pager policy.
func (sp *ShardedPager) SwapPolicy(policy ShardPolicy) ShardPolicy {
	var next *shardPolicyBox
	if policy != nil {
		next = &shardPolicyBox{p: policy}
	}
	old := sp.policy.Swap(next)
	if old == nil {
		return nil
	}
	return old.p
}

// currentPolicy loads the installed hook (nil if none). Callers load
// once per decision so a concurrent swap cannot split one decision
// across two policies.
func (sp *ShardedPager) currentPolicy() ShardPolicy {
	if box := sp.policy.Load(); box != nil {
		return box.p
	}
	return nil
}

// Shards reports the partition count.
func (sp *ShardedPager) Shards() int { return len(sp.shards) }

// shardOf maps a page to its partition.
func (sp *ShardedPager) shardOf(page PageID) int {
	return int(uint32(page) % uint32(len(sp.shards)))
}

// Resident reports whether page is in memory.
func (sp *ShardedPager) Resident(page PageID) bool {
	sh := &sp.shards[sp.shardOf(page)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.p.Resident(page)
}

// ResidentCount reports how many frames are occupied across all shards.
func (sp *ShardedPager) ResidentCount() int {
	var n int
	for s := range sp.shards {
		sh := &sp.shards[s]
		sh.mu.Lock()
		n += sh.p.ResidentCount()
		sh.mu.Unlock()
	}
	return n
}

// VirtualTime reports the total fault-service time charged across all
// shard clocks (the shards model independent devices, so the sum is the
// aggregate service cost, not elapsed wall time).
func (sp *ShardedPager) VirtualTime() time.Duration {
	var total time.Duration
	for s := range sp.shards {
		sh := &sp.shards[s]
		sh.mu.Lock()
		total += sh.clock.Now()
		sh.mu.Unlock()
	}
	return total
}

// Stats sums the per-shard counters into the familiar PagerStats shape.
// Lock-free; concurrent with accesses the result is a consistent-enough
// kernel statistic, not a linearizable snapshot.
func (sp *ShardedPager) Stats() PagerStats {
	return PagerStats{
		Hits:            sp.hits.Sum(),
		Faults:          sp.faults.Sum(),
		Evictions:       sp.evictions.Sum(),
		PolicyCalls:     sp.policyCalls.Sum(),
		PolicyOverrides: sp.policyOverrides.Sum(),
		PolicyRejected:  sp.policyRejected.Sum(),
		PolicyErrors:    sp.policyErrors.Sum(),
	}
}

// LRUPages returns shard s's resident pages in eviction order.
func (sp *ShardedPager) LRUPages(s int) []PageID {
	sh := &sp.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.p.LRUPages()
}

// Access references page, faulting it in if needed, and reports whether
// it was a hit. Safe for concurrent use. Faults charge FaultTime to the
// faulting shard's clock; evictions consult the ShardPolicy hook with
// the shard lock released (see ShardPolicy).
func (sp *ShardedPager) Access(page PageID) (hit bool, err error) {
	if page == InvalidPage {
		return false, fmt.Errorf("kernel: access to invalid page")
	}
	s := sp.shardOf(page)
	sh := &sp.shards[s]
	sh.mu.Lock()
	if sh.p.Touch(page) {
		sh.mu.Unlock()
		sp.hits.Add(s, 1)
		return true, nil
	}
	sp.faults.Add(s, 1)
	sh.clock.Advance(sp.faultTime)
	if err := sp.faultIn(s, sh, page); err != nil {
		return false, err
	}
	telemetry.Emit(telemetry.EvPageFault, uint64(page), uint64(s), 0)
	return false, nil
}

// faultIn makes page resident in shard s. Called with sh.mu held;
// returns with it released. The loop is the optimistic-concurrency
// dance: pick a candidate under the lock, consult the policy without
// it, revalidate everything after re-acquiring — including that no
// other goroutine faulted the very same page in meanwhile.
func (sp *ShardedPager) faultIn(s int, sh *pagerShard, page PageID) error {
	for {
		if f, ok := sh.p.TakeFreeFrame(); ok {
			sh.p.InstallPage(f, page)
			sh.mu.Unlock()
			return nil
		}
		candidate, ok := sh.p.Candidate()
		if !ok {
			sh.mu.Unlock()
			return fmt.Errorf("kernel: shard %d has no evictable frame", s)
		}
		victim := candidate
		outcome := uint64(telemetry.EvictDefault)
		// Load the policy once per iteration: a SwapPolicy racing this
		// fault either ran before the load (the new policy decides) or
		// after (the old proposal is revalidated under the lock below,
		// exactly like any proposal that went stale in the unlocked
		// window). Either way the decision is whole, never torn.
		if pol := sp.currentPolicy(); pol != nil {
			sp.policyCalls.Add(s, 1)
			snap := sh.p.AppendLRU(nil) // fresh slice: the policy reads it unlocked
			sh.mu.Unlock()
			proposal, perr := sp.shardVictim(pol, s, snap, candidate)
			sh.mu.Lock()
			if sh.p.Touch(page) {
				// Another goroutine faulted page in while the policy ran;
				// the fault is serviced, nothing left to install.
				sh.mu.Unlock()
				return nil
			}
			switch {
			case perr != nil:
				sp.policyErrors.Add(s, 1)
				outcome = telemetry.EvictErrored
				if victim, ok = sh.p.Candidate(); !ok {
					continue // frames moved while unlocked; retry from the top
				}
			case proposal == InvalidPage || proposal == candidate:
				outcome = telemetry.EvictAccepted
				if victim, ok = sh.p.Candidate(); !ok {
					continue
				}
			case sh.p.Resident(proposal):
				sp.policyOverrides.Add(s, 1)
				outcome = telemetry.EvictOverride
				victim = proposal
			default:
				// Invalid or stale proposal: the kernel "keeps track of
				// candidate pages and graft-proposed alternates" (§3.1) and
				// falls back to its own choice.
				sp.policyRejected.Add(s, 1)
				outcome = telemetry.EvictRejected
				if victim, ok = sh.p.Candidate(); !ok {
					continue
				}
			}
		}
		if f, ok := sh.p.EvictResident(victim); ok {
			sp.evictions.Add(s, 1)
			sh.p.InstallPage(f, page)
			sh.mu.Unlock()
			telemetry.Emit(telemetry.EvEvictDecision, uint64(candidate), uint64(victim), outcome)
			return nil
		}
		// The victim went non-resident in the unlocked window; retry with
		// fresh shard state.
	}
}

// shardVictim consults the given ShardPolicy hook, opening a
// "kernel:evict" root span when causal tracing samples this fault and
// handing the context down through span-aware policies. Takes the
// policy as an argument — the caller's once-per-iteration load — so a
// concurrent swap cannot change the policy between the span check and
// the call. Runs unlocked (see faultIn).
func (sp *ShardedPager) shardVictim(pol ShardPolicy, s int, lru []PageID, candidate PageID) (PageID, error) {
	span := telemetry.RootSpan("kernel:evict", "kernel")
	if span.Active() {
		if sep, ok := pol.(SpanShardPolicy); ok {
			proposal, err := sep.ChooseVictimSpan(span.Ctx(), s, lru, candidate)
			span.End(uint64(s), uint64(proposal))
			return proposal, err
		}
		proposal, err := pol.ChooseVictim(s, lru, candidate)
		span.End(uint64(s), uint64(proposal))
		return proposal, err
	}
	return pol.ChooseVictim(s, lru, candidate)
}
