// Package kernel is the simulated extensible kernel the grafts plug into.
// It provides the three hook-point shapes of the paper's graft taxonomy
// (§3): a demand pager whose eviction decision is a Prioritization hook, a
// stream-filter stack for Stream grafts, and a scheduler whose pick-next
// decision is a second Prioritization hook. Simulated service costs (page
// faults) are charged to a virtual clock; graft execution time is the
// quantity the benchmarks measure in real time.
package kernel

import (
	"fmt"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
	"graftlab/internal/vclock"
)

// PageID names a virtual page.
type PageID uint32

// InvalidPage is returned by eviction policies to decline.
const InvalidPage = PageID(0xFFFFFFFF)

// LRUNodeSize is the byte size of one LRU chain node in graft memory:
// {pageno u32, next-node-address u32}. A next address of 0 terminates the
// chain, so NodeBase must be nonzero.
const LRUNodeSize = 8

// EvictionPolicy is the Prioritization hook: given the pager (whose LRU
// chain the policy may walk), return the page to evict instead of the
// kernel's candidate, or InvalidPage to accept the candidate.
type EvictionPolicy interface {
	ChooseVictim(p *Pager, candidate PageID) (PageID, error)
}

// EvictionPolicyFunc adapts a function to EvictionPolicy.
type EvictionPolicyFunc func(p *Pager, candidate PageID) (PageID, error)

// ChooseVictim calls f.
func (f EvictionPolicyFunc) ChooseVictim(p *Pager, candidate PageID) (PageID, error) {
	return f(p, candidate)
}

// SpanEvictionPolicy is the optional span-aware variant of
// EvictionPolicy: when causal tracing has sampled the current eviction,
// the kernel hands the policy its span context so the policy (and the
// engine below it) can record nested child spans. Policies that don't
// implement it are called through ChooseVictim as usual.
type SpanEvictionPolicy interface {
	ChooseVictimSpan(ctx telemetry.SpanCtx, p *Pager, candidate PageID) (PageID, error)
}

// PagerStats counts pager activity.
type PagerStats struct {
	Hits            uint64
	Faults          uint64
	Evictions       uint64
	PolicyCalls     uint64
	PolicyOverrides uint64 // policy proposed a page other than the candidate
	PolicyRejected  uint64 // policy proposal was invalid and ignored
	PolicyErrors    uint64 // policy trapped; kernel fell back to LRU
}

// PagerConfig sizes a Pager.
type PagerConfig struct {
	// Frames is the number of physical frames.
	Frames int
	// FaultTime is the virtual cost of servicing one fault (Table 3).
	FaultTime time.Duration
	// Mem, if non-nil, receives a live mirror of the LRU chain so grafts
	// can walk it; NodeBase is the address of frame 0's node.
	Mem      *mem.Memory
	NodeBase uint32
}

// Pager is a demand pager with an LRU replacement default and a
// Prioritization hook on eviction. When configured with a graft memory, it
// maintains the LRU chain as linked nodes inside that memory, so a policy
// graft traverses the very list the kernel uses — the shared-address-space
// arrangement of SPIN-style in-kernel extensions.
type Pager struct {
	cfg   PagerConfig
	clock *vclock.Clock

	// frame state
	pageOf   []PageID       // pageOf[f] = resident page, or InvalidPage
	frameOf  map[PageID]int // resident page -> frame
	freeList []int

	// intrusive LRU list over frame indices; head is least recent
	head, tail int
	next, prev []int

	policy EvictionPolicy
	stats  PagerStats

	// read-ahead state (see readahead.go). touched[f]: -1 demand page,
	// 0 prefetched and untouched, 1 prefetched and since hit.
	readAhead    ReadAheadPolicy
	prefetchCost time.Duration
	raStats      ReadAheadStats
	touched      []int8
}

// NewPager builds a pager on clock.
func NewPager(cfg PagerConfig, clock *vclock.Clock) (*Pager, error) {
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("kernel: pager needs at least one frame, got %d", cfg.Frames)
	}
	if cfg.Mem != nil {
		if cfg.NodeBase == 0 {
			return nil, fmt.Errorf("kernel: NodeBase must be nonzero (0 terminates the chain)")
		}
		need := uint64(cfg.NodeBase) + uint64(cfg.Frames)*LRUNodeSize
		if need > uint64(cfg.Mem.Size()) {
			return nil, fmt.Errorf("kernel: LRU mirror needs %d bytes, memory has %d", need, cfg.Mem.Size())
		}
	}
	p := &Pager{
		cfg:     cfg,
		clock:   clock,
		pageOf:  make([]PageID, cfg.Frames),
		frameOf: make(map[PageID]int, cfg.Frames),
		head:    -1,
		tail:    -1,
		next:    make([]int, cfg.Frames),
		prev:    make([]int, cfg.Frames),
		touched: make([]int8, cfg.Frames),
	}
	for f := cfg.Frames - 1; f >= 0; f-- {
		p.pageOf[f] = InvalidPage
		p.next[f] = -1
		p.prev[f] = -1
		p.freeList = append(p.freeList, f)
	}
	return p, nil
}

// SetPolicy installs (or removes, with nil) the eviction hook.
func (p *Pager) SetPolicy(policy EvictionPolicy) { p.policy = policy }

// Stats returns a copy of the counters.
func (p *Pager) Stats() PagerStats { return p.stats }

// ResetStats clears the counters.
func (p *Pager) ResetStats() { p.stats = PagerStats{} }

// Resident reports whether page is in memory.
func (p *Pager) Resident(page PageID) bool {
	_, ok := p.frameOf[page]
	return ok
}

// ResidentCount reports how many frames are occupied.
func (p *Pager) ResidentCount() int { return len(p.frameOf) }

// nodeAddr is the graft-memory address of frame f's LRU node.
func (p *Pager) nodeAddr(f int) uint32 {
	return p.cfg.NodeBase + uint32(f)*LRUNodeSize
}

// HeadAddr is the graft-memory address of the LRU head node (the kernel's
// eviction candidate), or 0 if nothing is resident. This is the "pointer
// to the head of the LRU queue" the paper's eviction graft receives.
func (p *Pager) HeadAddr() uint32 {
	if p.head < 0 {
		return 0
	}
	return p.nodeAddr(p.head)
}

// mirror writes frame f's node {page, next} into graft memory.
func (p *Pager) mirror(f int) {
	if p.cfg.Mem == nil {
		return
	}
	a := p.nodeAddr(f)
	p.cfg.Mem.St32U(a, uint32(p.pageOf[f]))
	nextAddr := uint32(0)
	if p.next[f] >= 0 {
		nextAddr = p.nodeAddr(p.next[f])
	}
	p.cfg.Mem.St32U(a+4, nextAddr)
}

// lruRemove unlinks f; callers must re-mirror affected nodes.
func (p *Pager) lruRemove(f int) {
	if p.prev[f] >= 0 {
		p.next[p.prev[f]] = p.next[f]
		p.mirror(p.prev[f])
	} else {
		p.head = p.next[f]
	}
	if p.next[f] >= 0 {
		p.prev[p.next[f]] = p.prev[f]
	} else {
		p.tail = p.prev[f]
	}
	p.next[f] = -1
	p.prev[f] = -1
}

// lruPushTail makes f the most recently used frame.
func (p *Pager) lruPushTail(f int) {
	p.prev[f] = p.tail
	p.next[f] = -1
	if p.tail >= 0 {
		p.next[p.tail] = f
		p.mirror(p.tail)
	} else {
		p.head = f
	}
	p.tail = f
	p.mirror(f)
}

// Touch records an access to a resident page without faulting semantics.
func (p *Pager) Touch(page PageID) bool {
	f, ok := p.frameOf[page]
	if !ok {
		return false
	}
	p.lruRemove(f)
	p.lruPushTail(f)
	return true
}

// Access references page, faulting it in if needed. It returns true on a
// hit. Faults charge FaultTime to the virtual clock.
func (p *Pager) Access(page PageID) (hit bool, err error) {
	if page == InvalidPage {
		return false, fmt.Errorf("kernel: access to invalid page")
	}
	if f, ok := p.frameOf[page]; ok {
		p.stats.Hits++
		if p.touched[f] == 0 {
			p.raStats.Useful++
			p.touched[f] = 1
		}
		p.lruRemove(f)
		p.lruPushTail(f)
		return true, nil
	}
	p.stats.Faults++
	p.clock.Advance(p.cfg.FaultTime)

	f, err := p.grabFrame()
	if err != nil {
		return false, err
	}
	p.pageOf[f] = page
	p.frameOf[page] = f
	p.touched[f] = -1 // demand page
	p.lruPushTail(f)
	telemetry.Emit(telemetry.EvPageFault, uint64(page), uint64(f), 0)
	if err := p.prefetchAfterFault(page); err != nil {
		return false, err
	}
	return false, nil
}

// grabFrame returns a free frame, evicting if necessary.
func (p *Pager) grabFrame() (int, error) {
	if n := len(p.freeList); n > 0 {
		f := p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
		return f, nil
	}
	victim, err := p.chooseVictim()
	if err != nil {
		return 0, err
	}
	f := p.frameOf[victim]
	if p.touched[f] == 0 {
		p.raStats.Wasted++
	}
	delete(p.frameOf, victim)
	p.lruRemove(f)
	p.stats.Evictions++
	return f, nil
}

// chooseVictim applies the Prioritization hook, validating its proposal
// exactly as the paper requires: "the kernel keeps track of candidate
// pages and graft-proposed alternates ... to ensure that an application
// does not manipulate the VM system" (§3.1). An invalid or trapping
// policy falls back to strict LRU.
func (p *Pager) chooseVictim() (PageID, error) {
	if p.head < 0 {
		return InvalidPage, fmt.Errorf("kernel: no evictable frame")
	}
	candidate := p.pageOf[p.head]
	if p.policy == nil {
		telemetry.Emit(telemetry.EvEvictDecision, uint64(candidate), uint64(candidate), telemetry.EvictDefault)
		return candidate, nil
	}
	p.stats.PolicyCalls++
	proposal, err := p.policyVictim(candidate)
	if err != nil {
		p.stats.PolicyErrors++
		telemetry.Emit(telemetry.EvEvictDecision, uint64(candidate), uint64(candidate), telemetry.EvictErrored)
		return candidate, nil
	}
	if proposal == InvalidPage || proposal == candidate {
		telemetry.Emit(telemetry.EvEvictDecision, uint64(candidate), uint64(candidate), telemetry.EvictAccepted)
		return candidate, nil
	}
	if _, resident := p.frameOf[proposal]; !resident {
		p.stats.PolicyRejected++
		telemetry.Emit(telemetry.EvEvictDecision, uint64(candidate), uint64(candidate), telemetry.EvictRejected)
		return candidate, nil
	}
	p.stats.PolicyOverrides++
	telemetry.Emit(telemetry.EvEvictDecision, uint64(candidate), uint64(proposal), telemetry.EvictOverride)
	return proposal, nil
}

// policyVictim consults the Prioritization hook, opening a
// "kernel:evict" root span around the call when causal tracing samples
// this eviction and handing the context down through span-aware
// policies so one trace shows kernel->policy->engine->upcall nested.
func (p *Pager) policyVictim(candidate PageID) (PageID, error) {
	sp := telemetry.RootSpan("kernel:evict", "kernel")
	if sp.Active() {
		if sep, ok := p.policy.(SpanEvictionPolicy); ok {
			proposal, err := sep.ChooseVictimSpan(sp.Ctx(), p, candidate)
			sp.End(uint64(candidate), uint64(proposal))
			return proposal, err
		}
		proposal, err := p.policy.ChooseVictim(p, candidate)
		sp.End(uint64(candidate), uint64(proposal))
		return proposal, err
	}
	return p.policy.ChooseVictim(p, candidate)
}

// LRUPages returns the resident pages in eviction order (head first);
// primarily for tests and native-Go policies.
func (p *Pager) LRUPages() []PageID {
	return p.AppendLRU(nil)
}

// AppendLRU appends the resident pages in eviction order (head first)
// to dst and returns it; the allocation-free form of LRUPages for
// callers that snapshot the chain repeatedly (the sharded pager does it
// once per eviction, before dropping the shard lock).
func (p *Pager) AppendLRU(dst []PageID) []PageID {
	for f := p.head; f >= 0; f = p.next[f] {
		dst = append(dst, p.pageOf[f])
	}
	return dst
}

// The three primitives below expose the pager's frame machinery so a
// layer above can drive the fault path itself — the sharded pager needs
// to release its shard lock between picking an eviction candidate and
// committing the eviction (the Prioritization hook runs outside the
// lock), which means the grab-a-frame/choose/evict/install sequence
// cannot stay fused inside Access. They preserve every invariant
// (LRU chain, graft-memory mirror, read-ahead bookkeeping) and do no
// counting: policy accounting belongs to whoever drives them.

// TakeFreeFrame pops a free frame if one exists. The caller must follow
// up with InstallPage (there is no way to return a frame).
func (p *Pager) TakeFreeFrame() (int, bool) {
	if n := len(p.freeList); n > 0 {
		f := p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
		return f, true
	}
	return 0, false
}

// Candidate reports the kernel's default eviction choice: the LRU head.
func (p *Pager) Candidate() (PageID, bool) {
	if p.head < 0 {
		return InvalidPage, false
	}
	return p.pageOf[p.head], true
}

// EvictResident removes page from residency and returns its now-free
// frame for reuse. It reports false (touching nothing) if page is not
// resident — the revalidation a caller needs after choosing a victim
// with the lock dropped.
func (p *Pager) EvictResident(page PageID) (int, bool) {
	f, ok := p.frameOf[page]
	if !ok {
		return 0, false
	}
	if p.touched[f] == 0 {
		p.raStats.Wasted++
	}
	delete(p.frameOf, page)
	p.lruRemove(f)
	return f, true
}

// InstallPage makes page resident in frame f (obtained from
// TakeFreeFrame or EvictResident) as the most recently used page.
func (p *Pager) InstallPage(f int, page PageID) {
	p.pageOf[f] = page
	p.frameOf[page] = f
	p.touched[f] = -1 // demand page
	p.lruPushTail(f)
}
