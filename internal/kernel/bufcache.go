package kernel

import (
	"fmt"
)

// The buffer cache reproduces the design point of Cao et al. [CAO94] that
// §2 discusses: the kernel ships a fixed menu of eviction policies and an
// application *chooses* one per handle — contrasted with grafting, where
// the application *supplies* policy code. Both arrangements exist here:
// SetPolicy picks from the menu, SetHook installs a graft-style decision
// function, and the paper's argument ("it is not possible to determine
// and implement all policies a priori") can be demonstrated by finding a
// workload where every menu entry loses to a hook.

// CachePolicy selects a built-in eviction policy.
type CachePolicy int

const (
	// CacheLRU evicts the least recently used block (the default).
	CacheLRU CachePolicy = iota
	// CacheMRU evicts the most recently used block, the right choice for
	// sequential scans that will not revisit (§3.1's example).
	CacheMRU
)

func (p CachePolicy) String() string {
	switch p {
	case CacheLRU:
		return "lru"
	case CacheMRU:
		return "mru"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// CacheHook is the graft-shaped escape hatch: given the blocks in
// use-order (least recent first), return the block to evict, or
// 0xFFFFFFFF to defer to the selected built-in policy.
type CacheHook func(order []uint32) uint32

// NoBlock is the CacheHook "no opinion" sentinel.
const NoBlock = uint32(0xFFFFFFFF)

// CacheStats counts cache activity.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	HookCalls     uint64
	HookOverrides uint64
	HookRejected  uint64
}

// BufferCache is a fixed-capacity block cache.
type BufferCache struct {
	capacity int
	policy   CachePolicy
	hook     CacheHook

	// use-order list: intrusive doubly linked over entry structs.
	entries map[uint32]*cacheEntry
	head    *cacheEntry // least recently used
	tail    *cacheEntry // most recently used
	stats   CacheStats

	orderBuf []uint32 // reused for hook marshaling
}

type cacheEntry struct {
	block      uint32
	prev, next *cacheEntry
}

// NewBufferCache builds a cache with the given capacity in blocks.
func NewBufferCache(capacity int) (*BufferCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("kernel: cache capacity must be positive, got %d", capacity)
	}
	return &BufferCache{
		capacity: capacity,
		entries:  make(map[uint32]*cacheEntry, capacity),
	}, nil
}

// SetPolicy selects a built-in policy (Cao-style menu choice).
func (c *BufferCache) SetPolicy(p CachePolicy) { c.policy = p }

// SetHook installs (or clears, with nil) the graft-style hook.
func (c *BufferCache) SetHook(h CacheHook) { c.hook = h }

// Stats returns a copy of the counters.
func (c *BufferCache) Stats() CacheStats { return c.stats }

// Len reports the number of cached blocks.
func (c *BufferCache) Len() int { return len(c.entries) }

// Contains reports whether block is cached, without touching use order.
func (c *BufferCache) Contains(block uint32) bool {
	_, ok := c.entries[block]
	return ok
}

// UseOrder returns the cached blocks least recent first.
func (c *BufferCache) UseOrder() []uint32 {
	c.orderBuf = c.orderBuf[:0]
	for e := c.head; e != nil; e = e.next {
		c.orderBuf = append(c.orderBuf, e.block)
	}
	return c.orderBuf
}

func (c *BufferCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *BufferCache) pushTail(e *cacheEntry) {
	e.prev = c.tail
	if c.tail != nil {
		c.tail.next = e
	} else {
		c.head = e
	}
	c.tail = e
}

// Get references block, returning whether it was a hit. On a miss the
// block is brought in, evicting per policy/hook when full.
func (c *BufferCache) Get(block uint32) (hit bool, evicted uint32, err error) {
	evicted = NoBlock
	if e, ok := c.entries[block]; ok {
		c.stats.Hits++
		c.unlink(e)
		c.pushTail(e)
		return true, evicted, nil
	}
	c.stats.Misses++
	if len(c.entries) >= c.capacity {
		victim, err := c.chooseVictim()
		if err != nil {
			return false, evicted, err
		}
		ve := c.entries[victim]
		c.unlink(ve)
		delete(c.entries, victim)
		c.stats.Evictions++
		evicted = victim
	}
	e := &cacheEntry{block: block}
	c.entries[block] = e
	c.pushTail(e)
	return false, evicted, nil
}

func (c *BufferCache) chooseVictim() (uint32, error) {
	if c.head == nil {
		return 0, fmt.Errorf("kernel: cache empty but full?")
	}
	var builtin uint32
	switch c.policy {
	case CacheMRU:
		builtin = c.tail.block
	default:
		builtin = c.head.block
	}
	if c.hook == nil {
		return builtin, nil
	}
	c.stats.HookCalls++
	proposal := c.hook(c.UseOrder())
	if proposal == NoBlock {
		return builtin, nil
	}
	if _, ok := c.entries[proposal]; !ok {
		c.stats.HookRejected++
		return builtin, nil
	}
	if proposal != builtin {
		c.stats.HookOverrides++
	}
	return proposal, nil
}
