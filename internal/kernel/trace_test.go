package kernel

import (
	"fmt"
	"testing"
	"time"

	"graftlab/internal/telemetry"
	"graftlab/internal/vclock"
)

// withTrace turns the global event trace on for one test.
func withTrace(t *testing.T, capacity int) {
	t.Helper()
	telemetry.EnableTrace(capacity)
	t.Cleanup(telemetry.DisableTrace)
}

func TestPagerEmitsTraceEvents(t *testing.T) {
	withTrace(t, 1024)
	clock := &vclock.Clock{}
	p, err := NewPager(PagerConfig{Frames: 4, FaultTime: time.Millisecond}, clock)
	if err != nil {
		t.Fatal(err)
	}
	// 8 distinct pages through 4 frames: 8 faults, 4 evictions.
	for pg := PageID(0); pg < 8; pg++ {
		if _, err := p.Access(pg); err != nil {
			t.Fatal(err)
		}
	}
	counts := telemetry.CurrentTrace().CountByKind()
	if counts["page_fault"] != 8 {
		t.Errorf("page_fault events = %d, want 8 (%v)", counts["page_fault"], counts)
	}
	if counts["evict_decision"] != 4 {
		t.Errorf("evict_decision events = %d, want 4 (%v)", counts["evict_decision"], counts)
	}
	// No policy installed: every decision is EvictDefault with chosen ==
	// candidate.
	for _, e := range telemetry.CurrentTrace().Events() {
		if e.Kind != telemetry.EvEvictDecision {
			continue
		}
		if e.C != telemetry.EvictDefault || e.A != e.B {
			t.Fatalf("policy-less eviction event %+v, want default outcome", e)
		}
	}
}

func TestEvictDecisionOutcomeCodes(t *testing.T) {
	withTrace(t, 64)
	clock := &vclock.Clock{}
	p, err := NewPager(PagerConfig{Frames: 2, FaultTime: time.Millisecond}, clock)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := []struct {
		policy EvictionPolicyFunc
		want   uint64
	}{
		{func(p *Pager, c PageID) (PageID, error) { return InvalidPage, nil }, telemetry.EvictAccepted},
		{func(p *Pager, c PageID) (PageID, error) { return PageID(9999), nil }, telemetry.EvictRejected},
		{func(p *Pager, c PageID) (PageID, error) { return 0, fmt.Errorf("trap") }, telemetry.EvictErrored},
		{func(p *Pager, c PageID) (PageID, error) {
			for _, r := range p.LRUPages() {
				if r != c {
					return r, nil
				}
			}
			return InvalidPage, nil
		}, telemetry.EvictOverride},
	}
	next := PageID(0)
	fill := func() {
		for i := 0; i < 2; i++ {
			if _, err := p.Access(next); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	fill()
	for _, tc := range outcomes {
		p.SetPolicy(tc.policy)
		before := telemetry.CurrentTrace().CountByKind()["evict_decision"]
		if _, err := p.Access(next); err != nil {
			t.Fatal(err)
		}
		next++
		evs := telemetry.CurrentTrace().Events()
		var last *telemetry.Event
		for i := range evs {
			if evs[i].Kind == telemetry.EvEvictDecision {
				last = &evs[i]
			}
		}
		after := telemetry.CurrentTrace().CountByKind()["evict_decision"]
		if after != before+1 {
			t.Fatalf("expected exactly one evict_decision, got %d", after-before)
		}
		if last == nil || last.C != tc.want {
			t.Errorf("outcome = %+v, want code %d", last, tc.want)
		}
	}
}

func TestStreamAndSchedEmitTraceEvents(t *testing.T) {
	withTrace(t, 256)
	c := NewChain(nil, FilterFunc{FilterName: "id", Fn: func(p []byte) ([]byte, error) { return p, nil }})
	if _, err := c.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	clock := &vclock.Clock{}
	s := NewScheduler(time.Millisecond, clock)
	s.Spawn("a", 0)
	s.Spawn("b", 0)
	s.SetPolicy(SchedPolicyFunc(func(runnable []*Proc) (int, error) {
		return len(runnable) - 1, nil
	}))
	if _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	var stream, sched *telemetry.Event
	for _, e := range telemetry.CurrentTrace().Events() {
		e := e
		switch e.Kind {
		case telemetry.EvStreamPass:
			stream = &e
		case telemetry.EvSchedPick:
			sched = &e
		}
	}
	if stream == nil || stream.B != 100 || stream.C != 100 {
		t.Errorf("stream_pass = %+v, want 100 bytes in and out", stream)
	}
	if sched == nil || sched.C != 1 {
		t.Errorf("sched_pick = %+v, want a policy override", sched)
	}
}

func TestTraceDisabledEmitsNothing(t *testing.T) {
	telemetry.EnableTrace(16)
	telemetry.DisableTrace()
	before := telemetry.CurrentTrace().Len()
	clock := &vclock.Clock{}
	p, err := NewPager(PagerConfig{Frames: 2, FaultTime: time.Millisecond}, clock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Access(1); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.CurrentTrace().Len(); got != before {
		t.Errorf("disabled trace grew from %d to %d events", before, got)
	}
}
