package kernel

import (
	"fmt"

	"graftlab/internal/telemetry"
)

// Filter is one stage of a Stream graft chain (§3.2): it consumes blocks
// of data and emits transformed blocks. MD5 fingerprinting is an identity
// filter with state; compression or encryption filters transform.
type Filter interface {
	Name() string
	// Process consumes p and returns the bytes to pass downstream. The
	// returned slice may alias p or the filter's internal buffer and is
	// only valid until the next call.
	Process(p []byte) ([]byte, error)
	// Finish flushes any buffered output at end of stream.
	Finish() ([]byte, error)
}

// Chain is an ordered stack of filters between a data source and a sink,
// in the style of the UNIX Stream I/O System the paper cites [RITCH84].
type Chain struct {
	filters []Filter
	sink    func(p []byte) error
	written uint64
}

// NewChain builds a chain ending in sink; a nil sink discards output.
func NewChain(sink func(p []byte) error, filters ...Filter) *Chain {
	if sink == nil {
		sink = func([]byte) error { return nil }
	}
	return &Chain{filters: filters, sink: sink}
}

// Write pushes p through every filter and into the sink. When causal
// tracing samples this write, each filter pass is recorded as a child
// of a "kernel:stream" root span.
func (c *Chain) Write(p []byte) (int, error) {
	data := p
	var err error
	root := telemetry.RootSpan("kernel:stream", "kernel")
	for i, f := range c.filters {
		in := len(data)
		fs := telemetry.ChildSpan(root.Ctx(), "filter:"+f.Name(), "stream")
		data, err = f.Process(data)
		if fs.Active() {
			fs.End(uint64(in), uint64(len(data)))
		}
		if err != nil {
			if root.Active() {
				root.End(uint64(len(p)), 1)
			}
			return 0, fmt.Errorf("kernel: stream filter %q: %w", f.Name(), err)
		}
		telemetry.Emit(telemetry.EvStreamPass, uint64(i), uint64(in), uint64(len(data)))
		if len(data) == 0 {
			if root.Active() {
				root.End(uint64(len(p)), 0)
			}
			return len(p), nil // filter buffered everything
		}
	}
	if root.Active() {
		root.End(uint64(len(p)), uint64(len(data)))
	}
	c.written += uint64(len(data))
	if err := c.sink(data); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close finishes every filter in order, pushing trailing output through
// the rest of the chain.
func (c *Chain) Close() error {
	for i, f := range c.filters {
		tail, err := f.Finish()
		if err != nil {
			return fmt.Errorf("kernel: stream filter %q finish: %w", f.Name(), err)
		}
		if len(tail) == 0 {
			continue
		}
		data := tail
		for _, g := range c.filters[i+1:] {
			data, err = g.Process(data)
			if err != nil {
				return fmt.Errorf("kernel: stream filter %q: %w", g.Name(), err)
			}
			if len(data) == 0 {
				break
			}
		}
		if len(data) > 0 {
			c.written += uint64(len(data))
			if err := c.sink(data); err != nil {
				return err
			}
		}
	}
	return nil
}

// BytesOut reports how many bytes reached the sink.
func (c *Chain) BytesOut() uint64 { return c.written }

// FilterFunc wraps a stateless transformation as a Filter.
type FilterFunc struct {
	FilterName string
	Fn         func(p []byte) ([]byte, error)
}

// Name implements Filter.
func (f FilterFunc) Name() string { return f.FilterName }

// Process implements Filter.
func (f FilterFunc) Process(p []byte) ([]byte, error) { return f.Fn(p) }

// Finish implements Filter.
func (f FilterFunc) Finish() ([]byte, error) { return nil, nil }
