package kernel

import (
	"errors"
	"testing"
	"time"

	"graftlab/internal/vclock"
)

func TestSchedulerRoundRobin(t *testing.T) {
	clock := &vclock.Clock{}
	s := NewScheduler(10*time.Millisecond, clock)
	a := s.Spawn("a", 0)
	b := s.Spawn("b", 0)
	c := s.Spawn("c", 0)
	var order []int
	for i := 0; i < 6; i++ {
		p, err := s.Tick()
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, p.PID)
	}
	want := []int{a.PID, b.PID, c.PID, a.PID, b.PID, c.PID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if a.Runtime != 20*time.Millisecond {
		t.Errorf("a runtime = %v", a.Runtime)
	}
	if clock.Now() != 60*time.Millisecond {
		t.Errorf("clock = %v", clock.Now())
	}
}

func TestSchedulerEmptyQueue(t *testing.T) {
	s := NewScheduler(time.Millisecond, &vclock.Clock{})
	if _, err := s.Tick(); err == nil {
		t.Fatal("Tick on empty queue succeeded")
	}
}

func TestSchedulerPolicyOverride(t *testing.T) {
	s := NewScheduler(time.Millisecond, &vclock.Clock{})
	s.Spawn("client", 1)
	srv := s.Spawn("server", 2)
	// Policy: always prefer processes tagged 2 (the "server ahead of any
	// client" example from §3.1).
	s.SetPolicy(SchedPolicyFunc(func(run []*Proc) (int, error) {
		for i, p := range run {
			if p.Tag == 2 {
				return i, nil
			}
		}
		return -1, nil
	}))
	for i := 0; i < 4; i++ {
		p, err := s.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if p.PID != srv.PID {
			t.Fatalf("tick %d ran %s, want server", i, p.Name)
		}
	}
	if st := s.Stats(); st.PolicyCalls != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSchedulerPolicyValidation(t *testing.T) {
	s := NewScheduler(time.Millisecond, &vclock.Clock{})
	a := s.Spawn("a", 0)
	s.Spawn("b", 0)

	s.SetPolicy(SchedPolicyFunc(func(run []*Proc) (int, error) { return 99, nil }))
	p, err := s.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != a.PID {
		t.Fatal("rejected pick did not fall back to round-robin")
	}
	if st := s.Stats(); st.PolicyRejected != 1 {
		t.Errorf("stats = %+v", st)
	}

	s.SetPolicy(SchedPolicyFunc(func(run []*Proc) (int, error) {
		return 0, errors.New("trap")
	}))
	if _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PolicyErrors != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSchedulerExit(t *testing.T) {
	s := NewScheduler(time.Millisecond, &vclock.Clock{})
	a := s.Spawn("a", 0)
	b := s.Spawn("b", 0)
	if !s.Exit(a.PID) || s.Exit(a.PID) {
		t.Fatal("Exit bookkeeping broken")
	}
	for i := 0; i < 3; i++ {
		p, err := s.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if p.PID != b.PID {
			t.Fatal("exited process still scheduled")
		}
	}
	if len(s.Runnable()) != 1 {
		t.Fatalf("runnable = %d", len(s.Runnable()))
	}
}
