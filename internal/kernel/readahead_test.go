package kernel

import (
	"testing"
	"time"

	"graftlab/internal/vclock"
)

func raTestPager(t *testing.T, frames int) (*Pager, *vclock.Clock) {
	t.Helper()
	clock := &vclock.Clock{}
	p, err := NewPager(PagerConfig{Frames: frames, FaultTime: 8 * time.Millisecond}, clock)
	if err != nil {
		t.Fatal(err)
	}
	return p, clock
}

func TestReadAheadReducesFaultsOnSequentialScan(t *testing.T) {
	runScan := func(withRA bool) (PagerStats, time.Duration) {
		p, clock := raTestPager(t, 64)
		if withRA {
			// Sequential hint: after faulting page n, the next 7 pages.
			p.SetReadAhead(ReadAheadFunc(func(f PageID) []PageID {
				out := make([]PageID, 7)
				for i := range out {
					out[i] = f + PageID(i) + 1
				}
				return out
			}), time.Millisecond)
		}
		for pg := PageID(0); pg < 512; pg++ {
			if _, err := p.Access(pg); err != nil {
				t.Fatal(err)
			}
		}
		return p.Stats(), clock.Now()
	}

	base, baseTime := runScan(false)
	ra, raTime := runScan(true)
	if base.Faults != 512 {
		t.Fatalf("baseline faults = %d", base.Faults)
	}
	if ra.Faults > base.Faults/6 {
		t.Errorf("read-ahead faults = %d, want ~%d", ra.Faults, base.Faults/8)
	}
	// 8ms per fault vs 1ms per prefetched page: virtual time must drop.
	if raTime >= baseTime {
		t.Errorf("read-ahead time %v not better than %v", raTime, baseTime)
	}
}

func TestReadAheadStatsUsefulAndWasted(t *testing.T) {
	p, _ := raTestPager(t, 16)
	p.SetReadAhead(ReadAheadFunc(func(f PageID) []PageID {
		return []PageID{f + 1, f + 1000} // one useful, one junk
	}), time.Millisecond)
	// Touch 0 (faults; prefetches 1 and 1000), then 1 (useful hit).
	p.Access(0)
	p.Access(1)
	st := p.ReadAheadStats()
	if st.Prefetched != 2 {
		t.Fatalf("prefetched = %d", st.Prefetched)
	}
	if st.Useful != 1 {
		t.Fatalf("useful = %d", st.Useful)
	}
	// Fill memory with demand pages; the junk page must be evicted first
	// (it sits at the LRU head) and be counted wasted.
	for pg := PageID(100); pg < 120; pg++ {
		p.Access(pg)
	}
	if st := p.ReadAheadStats(); st.Wasted == 0 {
		t.Error("junk prefetch never counted wasted")
	}
	if p.Resident(1000) {
		t.Error("junk prefetch survived demand pressure")
	}
}

func TestReadAheadRespectsCapAndValidation(t *testing.T) {
	p, _ := raTestPager(t, 64)
	var proposed []PageID
	for i := 0; i < 100; i++ {
		proposed = append(proposed, PageID(1000+i))
	}
	p.SetReadAhead(ReadAheadFunc(func(f PageID) []PageID {
		// Includes junk the kernel must skip.
		return append([]PageID{InvalidPage, f}, proposed...)
	}), time.Millisecond)
	p.Access(0)
	st := p.ReadAheadStats()
	if st.Prefetched != MaxReadAhead {
		t.Fatalf("prefetched = %d, want cap %d", st.Prefetched, MaxReadAhead)
	}
	if p.Resident(InvalidPage) {
		t.Fatal("invalid page installed")
	}
}

func TestReadAheadPrefetchedEnterAtTail(t *testing.T) {
	p, _ := raTestPager(t, 8)
	p.SetReadAhead(ReadAheadFunc(func(f PageID) []PageID {
		if f == 0 {
			return []PageID{50, 51}
		}
		return nil
	}), time.Millisecond)
	p.Access(0)
	lru := p.LRUPages()
	// Demand page first (LRU), batch in proposal order after it.
	want := []PageID{0, 50, 51}
	for i := range want {
		if lru[i] != want[i] {
			t.Fatalf("LRU = %v, want %v", lru, want)
		}
	}
}

func TestReadAheadDefaultCost(t *testing.T) {
	clock := &vclock.Clock{}
	p, err := NewPager(PagerConfig{Frames: 8, FaultTime: 8 * time.Millisecond}, clock)
	if err != nil {
		t.Fatal(err)
	}
	p.SetReadAhead(ReadAheadFunc(func(f PageID) []PageID {
		return []PageID{f + 1}
	}), 0) // default: FaultTime/8 = 1ms
	p.Access(0)
	if got := clock.Now(); got != 9*time.Millisecond {
		t.Fatalf("clock = %v, want 9ms (8 fault + 1 prefetch)", got)
	}
}
