package kernel

// Read-ahead is §3.3's second Black Box example: "if the application
// knows ahead of time the order in which blocks of a file will be read,
// the kernel can use this information to make read-ahead decisions ...
// if the kernel uses heuristics rather than application knowledge, it
// can not cope with arbitrary application behavior." Table 3's caption
// also flags the fault-time read-ahead policy as "an obvious candidate
// for grafting".
//
// The hook lives on the Pager: after servicing a fault, the kernel asks
// the policy which additional pages to bring in on the same disk
// operation (they share the seek the fault already paid, so prefetched
// pages are charged only transfer time).

import (
	"time"
)

// ReadAheadPolicy proposes pages to prefetch after faulting page in.
// Returning nil prefetches nothing. Proposals that are already resident
// are skipped; the kernel caps the batch at MaxReadAhead.
type ReadAheadPolicy interface {
	Prefetch(faulted PageID) []PageID
}

// ReadAheadFunc adapts a function to ReadAheadPolicy.
type ReadAheadFunc func(faulted PageID) []PageID

// Prefetch calls f.
func (f ReadAheadFunc) Prefetch(faulted PageID) []PageID { return f(faulted) }

// MaxReadAhead bounds one prefetch batch (the Alpha in Table 3 brought in
// 16 pages per fault).
const MaxReadAhead = 16

// ReadAheadStats counts prefetch activity.
type ReadAheadStats struct {
	Prefetched uint64 // pages brought in ahead of demand
	Useful     uint64 // prefetched pages later hit before eviction
	Wasted     uint64 // prefetched pages evicted untouched
}

// SetReadAhead installs (or clears, with nil) the prefetch hook.
// PrefetchCost is charged per prefetched page (transfer only; the fault
// already paid the seek); zero uses FaultTime/8.
func (p *Pager) SetReadAhead(policy ReadAheadPolicy, perPageCost time.Duration) {
	p.readAhead = policy
	if perPageCost == 0 {
		perPageCost = p.cfg.FaultTime / 8
	}
	p.prefetchCost = perPageCost
}

// ReadAheadStats returns a copy of the prefetch counters.
func (p *Pager) ReadAheadStats() ReadAheadStats { return p.raStats }

// prefetchAfterFault runs the hook for the page just faulted in.
func (p *Pager) prefetchAfterFault(page PageID) error {
	if p.readAhead == nil {
		return nil
	}
	proposals := p.readAhead.Prefetch(page)
	count := 0
	for _, pre := range proposals {
		if count >= MaxReadAhead {
			break
		}
		if pre == InvalidPage || pre == page {
			continue
		}
		if _, resident := p.frameOf[pre]; resident {
			continue
		}
		f, err := p.grabFrame()
		if err != nil {
			return err
		}
		p.pageOf[f] = pre
		p.frameOf[pre] = f
		p.touched[f] = 0
		// Prefetched pages enter at the MRU end like demand pages; if
		// they entered at the LRU head, the very next prefetch in the
		// batch would evict them. The Wasted counter still exposes junk
		// prefetches when they age out untouched.
		p.lruPushTail(f)
		p.clock.Advance(p.prefetchCost)
		p.raStats.Prefetched++
		count++
	}
	return nil
}
