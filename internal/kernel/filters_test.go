package kernel

import (
	"bytes"
	"testing"

	"graftlab/internal/workload"
)

func TestXORFilterRoundTrips(t *testing.T) {
	data := make([]byte, 10000)
	workload.FillPattern(data, 3)

	enc := NewXORFilter(42)
	dec := NewXORFilter(42)
	var cipher, plain bytes.Buffer
	c1 := NewChain(func(p []byte) error { cipher.Write(p); return nil }, enc)
	for off := 0; off < len(data); off += 700 {
		end := off + 700
		if end > len(data) {
			end = len(data)
		}
		if _, err := c1.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(cipher.Bytes(), data) {
		t.Fatal("cipher output equals plaintext")
	}
	c2 := NewChain(func(p []byte) error { plain.Write(p); return nil }, dec)
	if _, err := c2.Write(cipher.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), data) {
		t.Fatal("decryption did not invert encryption")
	}
}

func TestXORFilterKeyMatters(t *testing.T) {
	a, _ := NewXORFilter(1).Process([]byte("hello world"))
	aCopy := append([]byte(nil), a...)
	b, _ := NewXORFilter(2).Process([]byte("hello world"))
	if bytes.Equal(aCopy, b) {
		t.Fatal("different keys produced identical ciphertext")
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("aaabbbcccc"),
		bytes.Repeat([]byte{7}, 1000), // runs longer than 255
		{1, 2, 3, 4, 5},
	}
	for _, data := range cases {
		var compressed bytes.Buffer
		c := NewChain(func(p []byte) error { compressed.Write(p); return nil }, &RLEFilter{})
		if _, err := c.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		var restored bytes.Buffer
		e := NewChain(func(p []byte) error { restored.Write(p); return nil }, &RLEExpand{})
		// Feed the compressed stream one byte at a time to exercise the
		// pending-pair buffering.
		for _, b := range compressed.Bytes() {
			if _, err := e.Write([]byte{b}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(restored.Bytes(), data) {
			t.Fatalf("round trip failed for %v: got %v", data, restored.Bytes())
		}
	}
}

func TestRLECompressesRuns(t *testing.T) {
	data := bytes.Repeat([]byte{9}, 255)
	var out bytes.Buffer
	c := NewChain(func(p []byte) error { out.Write(p); return nil }, &RLEFilter{})
	c.Write(data)
	c.Close()
	if out.Len() != 2 {
		t.Fatalf("255-byte run compressed to %d bytes, want 2", out.Len())
	}
}

func TestRLEExpandTruncatedStream(t *testing.T) {
	e := NewChain(nil, &RLEExpand{})
	e.Write([]byte{3}) // count without byte
	if err := e.Close(); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestJournalFilterRecordsMetadata(t *testing.T) {
	j := NewJournalFilter(8)
	var sunk bytes.Buffer
	c := NewChain(func(p []byte) error { sunk.Write(p); return nil }, j)

	reqs := [][]byte{
		append([]byte("METADATA"), bytes.Repeat([]byte{1}, 100)...),
		append([]byte("meta0002"), bytes.Repeat([]byte{2}, 50)...),
		[]byte("tiny"), // shorter than MetaBytes
	}
	var want bytes.Buffer
	for _, r := range reqs {
		if _, err := c.Write(r); err != nil {
			t.Fatal(err)
		}
		want.Write(r)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sunk.Bytes(), want.Bytes()) {
		t.Fatal("journal filter altered the data stream")
	}
	recs, err := j.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if string(recs[0]) != "METADATA" || string(recs[1]) != "meta0002" || string(recs[2]) != "tiny" {
		t.Fatalf("records wrong: %q %q %q", recs[0], recs[1], recs[2])
	}
}

func TestFilterChainComposition(t *testing.T) {
	// journal -> cipher -> rle, then invert: the full §3.2 stack.
	data := append(bytes.Repeat([]byte("meta"), 2), bytes.Repeat([]byte{0xAA}, 500)...)

	var wire bytes.Buffer
	enc := NewChain(func(p []byte) error { wire.Write(p); return nil },
		NewJournalFilter(8), NewXORFilter(99), &RLEFilter{})
	if _, err := enc.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	var restored bytes.Buffer
	dec := NewChain(func(p []byte) error { restored.Write(p); return nil },
		&RLEExpand{}, NewXORFilter(99))
	if _, err := dec.Write(wire.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := dec.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.Bytes(), data) {
		t.Fatal("three-stage chain did not invert")
	}
}
