package kernel

import (
	"bytes"
	"errors"
	"testing"
)

// rle is a trivial run-length filter used to exercise transformation and
// Finish-time output.
type rle struct {
	last  byte
	count int
	out   []byte
	begun bool
}

func (r *rle) Name() string { return "rle" }

func (r *rle) Process(p []byte) ([]byte, error) {
	r.out = r.out[:0]
	for _, b := range p {
		if r.begun && b == r.last && r.count < 255 {
			r.count++
			continue
		}
		if r.begun {
			r.out = append(r.out, byte(r.count), r.last)
		}
		r.begun = true
		r.last = b
		r.count = 1
	}
	return r.out, nil
}

func (r *rle) Finish() ([]byte, error) {
	if !r.begun {
		return nil, nil
	}
	r.begun = false
	return []byte{byte(r.count), r.last}, nil
}

func TestChainPassThrough(t *testing.T) {
	var sunk bytes.Buffer
	c := NewChain(func(p []byte) error { sunk.Write(p); return nil })
	c.Write([]byte("hello "))
	c.Write([]byte("world"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if sunk.String() != "hello world" {
		t.Fatalf("sunk = %q", sunk.String())
	}
	if c.BytesOut() != 11 {
		t.Fatalf("BytesOut = %d", c.BytesOut())
	}
}

func TestChainNilSinkDiscards(t *testing.T) {
	c := NewChain(nil)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestChainTransformingFilter(t *testing.T) {
	var sunk bytes.Buffer
	c := NewChain(func(p []byte) error { sunk.Write(p); return nil }, &rle{})
	c.Write([]byte("aaab"))
	c.Write([]byte("bbbb"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	want := []byte{3, 'a', 5, 'b'}
	if !bytes.Equal(sunk.Bytes(), want) {
		t.Fatalf("sunk = %v, want %v", sunk.Bytes(), want)
	}
}

func TestChainMultipleFilters(t *testing.T) {
	upper := FilterFunc{FilterName: "upper", Fn: func(p []byte) ([]byte, error) {
		out := make([]byte, len(p))
		for i, b := range p {
			if b >= 'a' && b <= 'z' {
				b -= 32
			}
			out[i] = b
		}
		return out, nil
	}}
	var sunk bytes.Buffer
	c := NewChain(func(p []byte) error { sunk.Write(p); return nil }, upper, &rle{})
	c.Write([]byte("aAbb"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	want := []byte{2, 'A', 2, 'B'}
	if !bytes.Equal(sunk.Bytes(), want) {
		t.Fatalf("sunk = %v, want %v", sunk.Bytes(), want)
	}
}

func TestChainFilterError(t *testing.T) {
	boom := errors.New("boom")
	bad := FilterFunc{FilterName: "bad", Fn: func(p []byte) ([]byte, error) { return nil, boom }}
	c := NewChain(nil, bad)
	if _, err := c.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestChainSinkError(t *testing.T) {
	boom := errors.New("sink full")
	c := NewChain(func(p []byte) error { return boom })
	if _, err := c.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
