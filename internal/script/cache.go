package script

// The optional structural parse cache, modeling the Tcl byte-compilers the
// paper mentions as the obvious fix for the script class's defining cost.
// It is OFF by default and exists as an ablation: Tcl 3.7's per-eval
// re-parse is load-bearing for the paper's 10⁴× script-class result, so
// the benchmark tables never enable it.
//
// What is cached is the *structure* of a script — its command boundaries
// and word classifications — keyed by the source string. Substitution is
// NOT cached: bare and quoted words keep their raw text and re-run
// $variable and [command] substitution on every evaluation (a [command]
// substitution can run arbitrary code, so its result can never be reused).
// Braced words are literal in Tcl and cache to their final value. The expr
// parser is untouched: conditions and expr arguments are still parsed from
// scratch per evaluation. Fuel accounting is unchanged — commands are
// charged in invokeWords either way.
//
// One behavioral caveat, inherent to caching: the vanilla interpreter
// parses command-by-command, so a syntax error after command N surfaces
// only after commands 1..N ran; the cache parses the whole script before
// running any of it, so the same error surfaces before command 1. Graft
// sources are well-formed, and the cache is opt-in, so the divergence is
// accepted and pinned by tests.

import (
	"fmt"
	"strings"
)

type cwKind uint8

const (
	cwLiteral cwKind = iota // braced word: text is the final value
	cwBare                  // bare word: text re-substituted per eval
	cwQuoted                // quoted word: text re-substituted per eval
)

type cachedWord struct {
	kind cwKind
	text string
}

type cachedCmd []cachedWord

type cachedScript struct {
	cmds []cachedCmd
}

// evalCached is eval's counterpart when CacheParse is on: fetch (or build)
// the script's structure, then substitute and run each command.
func (in *Interp) evalCached(src string) (string, code, error) {
	cs, err := in.cachedParse(src)
	if err != nil {
		return "", cOK, err
	}
	last := ""
	for _, cmd := range cs.cmds {
		words, err := in.substCached(cmd)
		if err != nil {
			return "", cOK, err
		}
		res, c, err := in.invokeWords(words)
		if err != nil {
			return "", cOK, err
		}
		if c != cOK {
			return res, c, nil
		}
		last = res
	}
	return last, cOK, nil
}

func (in *Interp) cachedParse(src string) (*cachedScript, error) {
	if cs, ok := in.parseCache[src]; ok {
		return cs, nil
	}
	cs, err := parseStructure(src)
	if err != nil {
		return nil, err
	}
	if in.parseCache == nil {
		in.parseCache = make(map[string]*cachedScript)
	}
	in.parseCache[src] = cs
	return cs, nil
}

// substCached performs the per-evaluation substitutions on a cached
// command, reusing the vanilla parser's substitution machinery.
func (in *Interp) substCached(cmd cachedCmd) ([]string, error) {
	words := make([]string, len(cmd))
	for i, w := range cmd {
		switch w.kind {
		case cwLiteral:
			words[i] = w.text
		case cwBare:
			p := &wordParser{src: w.text, in: in}
			s, err := p.bareWord()
			if err != nil {
				return nil, err
			}
			words[i] = s
		case cwQuoted:
			p := &wordParser{src: w.text, in: in}
			var sb strings.Builder
			for !p.eof() {
				if err := p.substChar(&sb); err != nil {
					return nil, err
				}
			}
			words[i] = sb.String()
		}
	}
	return words, nil
}

// parseStructure splits src into commands and classified words without
// performing any substitution. Its scanning rules mirror wordParser
// exactly: backslash pairs, balanced [command] blocks, and ${name} blocks
// are opaque spans that never terminate a word.
func parseStructure(src string) (*cachedScript, error) {
	p := &structParser{src: src}
	cs := &cachedScript{}
	for {
		cmd, ok, err := p.nextCommand()
		if err != nil {
			return nil, err
		}
		if !ok {
			return cs, nil
		}
		if len(cmd) > 0 {
			cs.cmds = append(cs.cmds, cmd)
		}
	}
}

type structParser struct {
	src string
	off int
}

func (p *structParser) eof() bool { return p.off >= len(p.src) }

func (p *structParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.off]
}

func (p *structParser) nextCommand() (cachedCmd, bool, error) {
	for !p.eof() {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
			p.off++
			continue
		}
		if c == '#' {
			for !p.eof() && p.peek() != '\n' {
				p.off++
			}
			continue
		}
		break
	}
	if p.eof() {
		return nil, false, nil
	}
	var cmd cachedCmd
	for {
		for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
			p.off++
		}
		if p.eof() {
			break
		}
		c := p.peek()
		if c == '\n' || c == '\r' || c == ';' {
			p.off++
			break
		}
		w, err := p.word()
		if err != nil {
			return nil, false, err
		}
		cmd = append(cmd, w)
	}
	return cmd, true, nil
}

func (p *structParser) word() (cachedWord, error) {
	switch p.peek() {
	case '{':
		return p.bracedWord()
	case '"':
		return p.quotedWord()
	default:
		return p.bareWord()
	}
}

func (p *structParser) bracedWord() (cachedWord, error) {
	start := p.off
	p.off++ // consume {
	depth := 1
	b := p.off
	for !p.eof() {
		switch p.src[p.off] {
		case '\\':
			p.off += 2
			continue
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				w := p.src[b:p.off]
				p.off++
				return cachedWord{kind: cwLiteral, text: w}, nil
			}
		}
		p.off++
	}
	return cachedWord{}, fmt.Errorf("script: missing close-brace (opened at offset %d)", start)
}

func (p *structParser) quotedWord() (cachedWord, error) {
	p.off++ // consume "
	b := p.off
	for !p.eof() {
		switch p.src[p.off] {
		case '\\':
			p.off += 2
		case '[':
			p.off++
			if err := p.skipBracket(); err != nil {
				return cachedWord{}, err
			}
		case '$':
			p.off++
			if err := p.skipVarBraces(); err != nil {
				return cachedWord{}, err
			}
		case '"':
			w := p.src[b:p.off]
			p.off++
			return cachedWord{kind: cwQuoted, text: w}, nil
		default:
			p.off++
		}
	}
	return cachedWord{}, fmt.Errorf("script: missing closing quote")
}

func (p *structParser) bareWord() (cachedWord, error) {
	b := p.off
	for !p.eof() {
		switch c := p.src[p.off]; c {
		case ' ', '\t', '\n', '\r', ';':
			return cachedWord{kind: cwBare, text: p.src[b:p.off]}, nil
		case '\\':
			p.off += 2
		case '[':
			p.off++
			if err := p.skipBracket(); err != nil {
				return cachedWord{}, err
			}
		case '$':
			p.off++
			if err := p.skipVarBraces(); err != nil {
				return cachedWord{}, err
			}
		default:
			p.off++
		}
	}
	return cachedWord{kind: cwBare, text: p.src[b:]}, nil
}

// skipBracket consumes a balanced [command] block; called just past '['.
func (p *structParser) skipBracket() error {
	depth := 1
	for !p.eof() {
		switch p.src[p.off] {
		case '\\':
			p.off += 2
			continue
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				p.off++
				return nil
			}
		}
		p.off++
	}
	return fmt.Errorf("script: missing close-bracket")
}

// skipVarBraces consumes a ${name} block's brace part; called just past
// '$'. Plain $name references contain no word terminators and need no
// special handling.
func (p *structParser) skipVarBraces() error {
	if p.eof() || p.peek() != '{' {
		return nil
	}
	p.off++
	for !p.eof() && p.peek() != '}' {
		p.off++
	}
	if p.eof() {
		return fmt.Errorf("script: missing close-brace for variable name")
	}
	p.off++
	return nil
}
