package script

import (
	"fmt"
	"strings"

	"graftlab/internal/mem"
)

// evalExpr evaluates a Tcl-style arithmetic expression over u32 with the
// same operator set and precedence as GEL. Like Tcl, the expression string
// is tokenized and parsed from scratch on every evaluation, and $variables
// are resolved against the current frame at parse time.
func (in *Interp) evalExpr(src string) (uint32, error) {
	e := &exprParser{src: src, in: in}
	v, err := e.parseLOr()
	if err != nil {
		return 0, err
	}
	e.skipSpace()
	if !e.eof() {
		return 0, fmt.Errorf("script: expr: trailing garbage %q in %q", e.src[e.off:], src)
	}
	return v, nil
}

type exprParser struct {
	src string
	off int
	in  *Interp
	// skip marks the dead arm of a short-circuited && or ||: the text is
	// still parsed (Tcl syntax-checks both arms) but nothing is
	// evaluated — no variable reads, no command substitution, no
	// division-by-zero errors.
	skip bool
}

func (e *exprParser) eof() bool { return e.off >= len(e.src) }

func (e *exprParser) skipSpace() {
	for !e.eof() {
		c := e.src[e.off]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			e.off++
			continue
		}
		break
	}
}

func (e *exprParser) peekOp(op string) bool {
	e.skipSpace()
	if strings.HasPrefix(e.src[e.off:], op) {
		// Reject "<" matching prefix of "<<" and "<=", etc.
		rest := e.src[e.off+len(op):]
		switch op {
		case "<", ">":
			if strings.HasPrefix(rest, "=") || strings.HasPrefix(rest, op) {
				return false
			}
		case "&":
			if strings.HasPrefix(rest, "&") {
				return false
			}
		case "|":
			if strings.HasPrefix(rest, "|") {
				return false
			}
		case "=":
			return false // only == exists
		case "!":
			if !strings.HasPrefix(rest, "=") {
				return false
			}
		}
		return true
	}
	return false
}

func (e *exprParser) acceptOp(op string) bool {
	if e.peekOp(op) {
		e.off += len(op)
		return true
	}
	return false
}

// Binary levels, loosest to tightest, mirroring GEL.

func (e *exprParser) parseLOr() (uint32, error) {
	x, err := e.parseLAnd()
	if err != nil {
		return 0, err
	}
	for e.acceptOp("||") {
		save := e.skip
		if x != 0 {
			e.skip = true // short-circuit: parse the arm, evaluate nothing
		}
		y, err := e.parseLAnd()
		e.skip = save
		if err != nil {
			return 0, err
		}
		x = b2uScript(x != 0 || y != 0)
	}
	return x, nil
}

func (e *exprParser) parseLAnd() (uint32, error) {
	x, err := e.parseBitOr()
	if err != nil {
		return 0, err
	}
	for e.acceptOp("&&") {
		save := e.skip
		if x == 0 {
			e.skip = true
		}
		y, err := e.parseBitOr()
		e.skip = save
		if err != nil {
			return 0, err
		}
		x = b2uScript(x != 0 && y != 0)
	}
	return x, nil
}

func (e *exprParser) parseBitOr() (uint32, error) {
	x, err := e.parseBitXor()
	if err != nil {
		return 0, err
	}
	for e.acceptOp("|") {
		y, err := e.parseBitXor()
		if err != nil {
			return 0, err
		}
		x |= y
	}
	return x, nil
}

func (e *exprParser) parseBitXor() (uint32, error) {
	x, err := e.parseBitAnd()
	if err != nil {
		return 0, err
	}
	for e.acceptOp("^") {
		y, err := e.parseBitAnd()
		if err != nil {
			return 0, err
		}
		x ^= y
	}
	return x, nil
}

func (e *exprParser) parseBitAnd() (uint32, error) {
	x, err := e.parseEquality()
	if err != nil {
		return 0, err
	}
	for e.acceptOp("&") {
		y, err := e.parseEquality()
		if err != nil {
			return 0, err
		}
		x &= y
	}
	return x, nil
}

func (e *exprParser) parseEquality() (uint32, error) {
	x, err := e.parseRelational()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case e.acceptOp("=="):
			y, err := e.parseRelational()
			if err != nil {
				return 0, err
			}
			x = b2uScript(x == y)
		case e.acceptOp("!="):
			y, err := e.parseRelational()
			if err != nil {
				return 0, err
			}
			x = b2uScript(x != y)
		default:
			return x, nil
		}
	}
}

func (e *exprParser) parseRelational() (uint32, error) {
	x, err := e.parseShift()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case e.acceptOp("<="):
			y, err := e.parseShift()
			if err != nil {
				return 0, err
			}
			x = b2uScript(x <= y)
		case e.acceptOp(">="):
			y, err := e.parseShift()
			if err != nil {
				return 0, err
			}
			x = b2uScript(x >= y)
		case e.acceptOp("<"):
			y, err := e.parseShift()
			if err != nil {
				return 0, err
			}
			x = b2uScript(x < y)
		case e.acceptOp(">"):
			y, err := e.parseShift()
			if err != nil {
				return 0, err
			}
			x = b2uScript(x > y)
		default:
			return x, nil
		}
	}
}

func (e *exprParser) parseShift() (uint32, error) {
	x, err := e.parseAdditive()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case e.acceptOp("<<"):
			y, err := e.parseAdditive()
			if err != nil {
				return 0, err
			}
			x <<= y & 31
		case e.acceptOp(">>"):
			y, err := e.parseAdditive()
			if err != nil {
				return 0, err
			}
			x >>= y & 31
		default:
			return x, nil
		}
	}
}

func (e *exprParser) parseAdditive() (uint32, error) {
	x, err := e.parseMultiplicative()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case e.acceptOp("+"):
			y, err := e.parseMultiplicative()
			if err != nil {
				return 0, err
			}
			x += y
		case e.acceptOp("-"):
			y, err := e.parseMultiplicative()
			if err != nil {
				return 0, err
			}
			x -= y
		default:
			return x, nil
		}
	}
}

func (e *exprParser) parseMultiplicative() (uint32, error) {
	x, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case e.acceptOp("*"):
			y, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			x *= y
		case e.acceptOp("/"):
			y, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			if y == 0 {
				if !e.skip {
					// A trap, not a plain error: every other technology
					// reports division by zero as mem.TrapDivZero, and the
					// conformance oracle holds the script class to that too.
					return 0, &mem.Trap{Kind: mem.TrapDivZero}
				}
				y = 1
			}
			x /= y
		case e.acceptOp("%"):
			y, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			if y == 0 {
				if !e.skip {
					return 0, &mem.Trap{Kind: mem.TrapDivZero}
				}
				y = 1
			}
			x %= y
		default:
			return x, nil
		}
	}
}

func (e *exprParser) parseUnary() (uint32, error) {
	e.skipSpace()
	if e.eof() {
		return 0, fmt.Errorf("script: expr: unexpected end of expression")
	}
	switch e.src[e.off] {
	case '-':
		e.off++
		v, err := e.parseUnary()
		return -v, err
	case '!':
		// distinguish from != handled in equality; a bare ! here is unary
		if e.off+1 < len(e.src) && e.src[e.off+1] == '=' {
			return 0, fmt.Errorf("script: expr: unexpected !=")
		}
		e.off++
		v, err := e.parseUnary()
		return b2uScript(v == 0), err
	case '~':
		e.off++
		v, err := e.parseUnary()
		return ^v, err
	}
	return e.parsePrimary()
}

func (e *exprParser) parsePrimary() (uint32, error) {
	e.skipSpace()
	if e.eof() {
		return 0, fmt.Errorf("script: expr: unexpected end of expression")
	}
	c := e.src[e.off]
	switch {
	case c == '[':
		// Command substitution inside an expression, as Tcl's expr does
		// for braced expressions: evaluate the bracketed script and parse
		// its result as a number.
		e.off++
		depth := 1
		b := e.off
		for !e.eof() {
			switch e.src[e.off] {
			case '\\':
				e.off++
			case '[':
				depth++
			case ']':
				depth--
			}
			if depth == 0 {
				break
			}
			e.off++
		}
		if e.eof() {
			return 0, fmt.Errorf("script: expr: missing close-bracket")
		}
		scriptSrc := e.src[b:e.off]
		e.off++ // consume ]
		if e.skip {
			return 0, nil
		}
		res, _, err := e.in.eval(scriptSrc)
		if err != nil {
			return 0, err
		}
		return parseU32(res)
	case c == '(':
		e.off++
		v, err := e.parseLOr()
		if err != nil {
			return 0, err
		}
		e.skipSpace()
		if e.eof() || e.src[e.off] != ')' {
			return 0, fmt.Errorf("script: expr: missing )")
		}
		e.off++
		return v, nil
	case c == '$':
		e.off++
		b := e.off
		for !e.eof() {
			ch := e.src[e.off]
			if ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9') {
				e.off++
				continue
			}
			break
		}
		if b == e.off {
			return 0, fmt.Errorf("script: expr: bare $")
		}
		if e.skip {
			return 0, nil
		}
		v, err := e.in.getVar(e.src[b:e.off])
		if err != nil {
			return 0, err
		}
		return parseU32(v)
	case c >= '0' && c <= '9':
		b := e.off
		if strings.HasPrefix(e.src[e.off:], "0x") || strings.HasPrefix(e.src[e.off:], "0X") {
			e.off += 2
			for !e.eof() && isHex(e.src[e.off]) {
				e.off++
			}
		} else {
			for !e.eof() && e.src[e.off] >= '0' && e.src[e.off] <= '9' {
				e.off++
			}
		}
		return parseU32(e.src[b:e.off])
	}
	return 0, fmt.Errorf("script: expr: unexpected character %q in %q", string(c), e.src)
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func b2uScript(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
