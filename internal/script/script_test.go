package script

import (
	"errors"
	"strings"
	"testing"

	"graftlab/internal/mem"
)

func newInterp(t *testing.T) *Interp {
	t.Helper()
	return New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
}

func evalOK(t *testing.T, in *Interp, src string) string {
	t.Helper()
	res, _, err := in.eval(src)
	if err != nil {
		t.Fatalf("eval(%q): %v", src, err)
	}
	return res
}

func TestSetAndRead(t *testing.T) {
	in := newInterp(t)
	if got := evalOK(t, in, "set x 42"); got != "42" {
		t.Fatalf("set returned %q", got)
	}
	if got := evalOK(t, in, "set x"); got != "42" {
		t.Fatalf("read returned %q", got)
	}
	if _, _, err := in.eval("set nosuch"); err == nil {
		t.Fatal("reading unset variable succeeded")
	}
}

func TestSubstitutionForms(t *testing.T) {
	in := newInterp(t)
	evalOK(t, in, "set a 7")
	cases := map[string]string{
		`set b $a`:              "7",
		`set c ${a}`:            "7",
		`set d [set a]`:         "7",
		`set e "val=$a"`:        "val=7",
		`set f {literal $a}`:    "literal $a",
		`set g a\ b`:            "a b",
		`set h [expr {$a + 1}]`: "8",
	}
	for src, want := range cases {
		if got := evalOK(t, in, src); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestCommentsAndSeparators(t *testing.T) {
	in := newInterp(t)
	got := evalOK(t, in, "# a comment\nset x 1; set y 2\nset z [expr {$x + $y}]")
	if got != "3" {
		t.Fatalf("got %q", got)
	}
}

func TestExprOperators(t *testing.T) {
	in := newInterp(t)
	evalOK(t, in, "set x 10")
	cases := map[string]string{
		"expr {2 + 3 * 4}":      "14",
		"expr {(2 + 3) * 4}":    "20",
		"expr {10 % 3}":         "1",
		"expr {1 << 4}":         "16",
		"expr {0x10 >> 2}":      "4",
		"expr {5 < 6}":          "1",
		"expr {5 >= 6}":         "0",
		"expr {1 && 0}":         "0",
		"expr {1 || 0}":         "1",
		"expr {!0}":             "1",
		"expr {~0}":             "4294967295",
		"expr {-1}":             "4294967295",
		"expr {$x * $x}":        "100",
		"expr {5 & 3}":          "1",
		"expr {5 | 3}":          "7",
		"expr {5 ^ 3}":          "6",
		"expr {4294967295 + 1}": "0", // u32 wrap
		"expr {2 == 2}":         "1",
		"expr {2 != 2}":         "0",
	}
	for src, want := range cases {
		if got := evalOK(t, in, src); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestExprShortCircuit(t *testing.T) {
	in := newInterp(t)
	// The dead arm is parsed but never evaluated: no division by zero,
	// no missing-variable error, no command execution.
	cases := map[string]string{
		"expr {0 && 1 / 0}":       "0",
		"expr {1 || 1 / 0}":       "1",
		"expr {0 && $missing}":    "0",
		"expr {1 || $missing}":    "1",
		"expr {0 && [nosuchcmd]}": "0",
		"expr {1 || [nosuchcmd]}": "1",
		"expr {1 && 2 && 3}":      "1",
		"expr {0 || 0 || 5}":      "1",
		"expr {(0 && 1/0) || 7}":  "1",
	}
	for src, want := range cases {
		if got := evalOK(t, in, src); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
	// Side effects in the dead arm must not run.
	evalOK(t, in, "set cnt 0")
	evalOK(t, in, "expr {0 && [incr cnt]}")
	if got := evalOK(t, in, "set cnt"); got != "0" {
		t.Errorf("dead arm executed: cnt = %q", got)
	}
	// And the live arm does run.
	evalOK(t, in, "expr {1 && [incr cnt]}")
	if got := evalOK(t, in, "set cnt"); got != "1" {
		t.Errorf("live arm skipped: cnt = %q", got)
	}
}

func TestExprErrors(t *testing.T) {
	in := newInterp(t)
	for _, src := range []string{
		"expr {1 / 0}",
		"expr {1 % 0}",
		"expr {1 +}",
		"expr {(1}",
		"expr {$missing}",
		"expr {@}",
		"expr {1 2}",
	} {
		if _, _, err := in.eval(src); err == nil {
			t.Errorf("%q succeeded", src)
		}
	}
}

func TestProcScoping(t *testing.T) {
	in := newInterp(t)
	evalOK(t, in, `
		set g 100
		proc f {a} {
			set local [expr {$a * 2}]
			return $local
		}
	`)
	if got := evalOK(t, in, "f 21"); got != "42" {
		t.Fatalf("f 21 = %q", got)
	}
	// Proc frames are isolated: local must not leak, global not visible.
	if _, _, err := in.eval("set local"); err == nil {
		t.Error("proc local leaked into global frame")
	}
	evalOK(t, in, `proc g2 {} { return [set g] }`)
	if _, _, err := in.eval("g2"); err == nil {
		t.Error("global visible inside proc (Tcl procs see only locals)")
	}
}

func TestGlobalCommand(t *testing.T) {
	in := newInterp(t)
	evalOK(t, in, `
		set counter 10
		proc bump {by} {
			global counter
			set counter [expr {$counter + $by}]
			return $counter
		}
		proc peek {} {
			global counter
			return $counter
		}
	`)
	if got := evalOK(t, in, "bump 5"); got != "15" {
		t.Fatalf("bump = %q", got)
	}
	if got := evalOK(t, in, "set counter"); got != "15" {
		t.Fatalf("global not written back: %q", got)
	}
	if got := evalOK(t, in, "peek"); got != "15" {
		t.Fatalf("peek = %q", got)
	}
	// global of an unset name links without creating a value...
	evalOK(t, in, `proc mk {} { global fresh; set fresh 7; return 0 }`)
	evalOK(t, in, "mk")
	if got := evalOK(t, in, "set fresh"); got != "7" {
		t.Fatalf("fresh = %q", got)
	}
	// ...and global at global level is a harmless no-op.
	evalOK(t, in, "global counter")
	// wrong arity errors
	if _, _, err := in.eval("global"); err == nil {
		t.Error("bare global accepted")
	}
}

func TestWhileBreakContinue(t *testing.T) {
	in := newInterp(t)
	got := evalOK(t, in, `
		set sum 0
		set i 0
		while {$i < 100} {
			incr i
			if {$i % 2 == 0} { continue }
			if {$i > 10} { break }
			set sum [expr {$sum + $i}]
		}
		set sum
	`)
	if got != "25" { // 1+3+5+7+9
		t.Fatalf("sum = %q", got)
	}
}

func TestIfElseifElse(t *testing.T) {
	in := newInterp(t)
	evalOK(t, in, `proc classify {n} {
		if {$n == 0} { return zero } elseif {$n < 10} { return small } else { return big }
	}`)
	for arg, want := range map[string]string{"0": "zero", "5": "small", "99": "big"} {
		if got := evalOK(t, in, "classify "+arg); got != want {
			t.Errorf("classify %s = %q, want %q", arg, got, want)
		}
	}
}

func TestInvoke(t *testing.T) {
	in := newInterp(t)
	if err := in.Load(`proc add3 {a b c} { return [expr {$a + $b + $c}] }`); err != nil {
		t.Fatal(err)
	}
	v, err := in.Invoke("add3", 1, 2, 3)
	if err != nil || v != 6 {
		t.Fatalf("Invoke = %d, %v", v, err)
	}
	if _, err := in.Invoke("nosuch"); err == nil {
		t.Error("missing proc accepted")
	}
	if _, err := in.Invoke("add3", 1); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestMemoryCommands(t *testing.T) {
	in := newInterp(t)
	evalOK(t, in, "st32 256 0x01020304")
	if got := evalOK(t, in, "ld32 256"); got != "16909060" {
		t.Fatalf("ld32 = %q", got)
	}
	if got := evalOK(t, in, "ld8 256"); got != "4" { // little-endian low byte
		t.Fatalf("ld8 = %q", got)
	}
	evalOK(t, in, "st8 300 255")
	if got := evalOK(t, in, "ld8 300"); got != "255" {
		t.Fatalf("st8/ld8 = %q", got)
	}
	if got := evalOK(t, in, "memsize"); got != "4096" {
		t.Fatalf("memsize = %q", got)
	}
	// Bounds are enforced.
	_, _, err := in.eval("ld32 5000")
	var trap *mem.Trap
	if !errors.As(err, &trap) || trap.Kind != mem.TrapOOBLoad {
		t.Fatalf("oob load: %v", err)
	}
}

func TestSandboxPolicyMasksScriptAccesses(t *testing.T) {
	in := New(mem.New(1<<12), mem.Config{Policy: mem.PolicySandbox})
	evalOK(t, in, "st32 4100 77") // masks to 4
	if got := evalOK(t, in, "ld32 4"); got != "77" {
		t.Fatalf("masked store landed at %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	in := newInterp(t)
	for _, src := range []string{
		"set x {unclosed",
		`set x "unclosed`,
		"set x [unclosed",
		"set x ${unclosed",
		"nosuchcommand",
		"set",
		"while {1}",
		"proc p {x}",
		"if {1}",
	} {
		if _, _, err := in.eval(src); err == nil {
			t.Errorf("%q succeeded", src)
		}
	}
}

func TestBreakOutsideLoopIsError(t *testing.T) {
	in := newInterp(t)
	if err := in.Load(`proc p {} { break }`); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Invoke("p"); err == nil || !strings.Contains(err.Error(), "outside of a loop") {
		t.Fatalf("err = %v", err)
	}
}

func TestNumericForms(t *testing.T) {
	in := newInterp(t)
	if got := evalOK(t, in, "expr {0xff}"); got != "255" {
		t.Fatalf("hex = %q", got)
	}
	if _, _, err := in.eval("incr missing 2"); err == nil {
		t.Error("incr of unset variable succeeded")
	}
	evalOK(t, in, "set n 5")
	if got := evalOK(t, in, "incr n"); got != "6" {
		t.Fatalf("incr = %q", got)
	}
	if got := evalOK(t, in, "incr n 10"); got != "16" {
		t.Fatalf("incr n 10 = %q", got)
	}
}

func TestEscapes(t *testing.T) {
	in := newInterp(t)
	if got := evalOK(t, in, `set x "a\tb\nc\\d\$e"`); got != "a\tb\nc\\d$e" {
		t.Fatalf("escapes = %q", got)
	}
}

func TestDeepRecursionBounded(t *testing.T) {
	in := newInterp(t)
	if err := in.Load(`proc r {} { r }`); err != nil {
		t.Fatal(err)
	}
	_, err := in.Invoke("r")
	var trap *mem.Trap
	if !errors.As(err, &trap) || trap.Kind != mem.TrapStackOverflow {
		t.Fatalf("err = %v", err)
	}
}
