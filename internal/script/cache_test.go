package script

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"graftlab/internal/mem"
)

// cacheFixtures exercises every word class (braced literal, quoted, bare),
// every substitution form ($var, ${var}, [cmd], backslash escapes),
// control flow whose bodies are re-evaluated (while/if/proc recursion),
// and the memory commands.
var cacheFixtures = []string{
	"set x 42\nset x",
	"set a 7; set b $a; set c ${a}; set d [set a]; set e \"val=$a\"; set f {literal $a}; set g a\\ b",
	"# comment\nset x 1; set y 2\nset z [expr {$x + $y}]",
	"set i 0\nset s 0\nwhile {$i < 10} {\n  set s [expr {$s + $i}]\n  incr i\n}\nset s",
	"proc fib {n} {\n  if {$n < 2} { return $n }\n  return [expr {[fib [expr {$n - 1}]] + [fib [expr {$n - 2}]]}]\n}\nfib 10",
	"proc touch {a v} { st32 $a $v; return [ld32 $a] }\ntouch 128 3735928559",
	"set i 0\nwhile {1} {\n  incr i\n  if {$i > 4} { break }\n  if {$i == 2} { continue }\n  st8 $i $i\n}\nset i",
	"proc g {} { global acc; set acc [expr {$acc + 1}]; return $acc }\nset acc 10\ng\ng\nset acc",
}

func interpsForCacheDiff(t *testing.T) (plain, cached *Interp) {
	t.Helper()
	plain = New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
	cached = New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
	cached.CacheParse = true
	return plain, cached
}

// TestCacheParseAgreesOnFixtures runs every fixture through a vanilla and a
// caching interpreter — twice, so the second pass hits a warm cache — and
// requires identical results, errors, and memory images.
func TestCacheParseAgreesOnFixtures(t *testing.T) {
	for i, src := range cacheFixtures {
		t.Run(fmt.Sprintf("fixture%d", i), func(t *testing.T) {
			plain, cached := interpsForCacheDiff(t)
			for pass := 0; pass < 2; pass++ {
				pres, _, perr := plain.eval(src)
				cres, _, cerr := cached.eval(src)
				if (perr == nil) != (cerr == nil) {
					t.Fatalf("pass %d: plain err %v, cached err %v", pass, perr, cerr)
				}
				if pres != cres {
					t.Fatalf("pass %d: plain %q, cached %q", pass, pres, cres)
				}
			}
			if string(plain.Memory().Data) != string(cached.Memory().Data) {
				t.Fatal("memory images diverge")
			}
		})
	}
}

// TestCacheParseAgreesOnFuel pins that fuel accounting is identical with
// the cache on: same minimal fuel to finish, same trap one unit below it.
func TestCacheParseAgreesOnFuel(t *testing.T) {
	src := "proc main {n} {\n  set i 0\n  set s 0\n  while {$i < $n} {\n    set s [expr {$s + $i}]\n    incr i\n  }\n  return $s\n}"

	run := func(cache bool, fuel int64) (uint32, error) {
		in := New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
		in.CacheParse = cache
		if err := in.Load(src); err != nil {
			t.Fatal(err)
		}
		in.Fuel = fuel
		return in.Invoke("main", 20)
	}

	// Find the vanilla interpreter's minimal completing fuel.
	lo, hi := int64(1), int64(1<<20)
	for lo < hi {
		mid := (lo + hi) / 2
		if _, err := run(false, mid); err != nil {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	minFuel := lo

	for _, cache := range []bool{false, true} {
		v, err := run(cache, minFuel)
		if err != nil || v != 190 {
			t.Fatalf("cache=%v fuel=%d: got %d, %v", cache, minFuel, v, err)
		}
		_, err = run(cache, minFuel-1)
		var tr *mem.Trap
		if !errors.As(err, &tr) || tr.Kind != mem.TrapFuel {
			t.Fatalf("cache=%v fuel=%d: want fuel trap, got %v", cache, minFuel-1, err)
		}
	}
}

// TestCacheParseReusesStructure checks the cache actually caches: a proc
// body evaluated N times must be structurally parsed once.
func TestCacheParseReusesStructure(t *testing.T) {
	in := New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
	in.CacheParse = true
	if err := in.Load("proc tick {} { return 1 }"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := in.Invoke("tick"); err != nil {
			t.Fatal(err)
		}
	}
	body := in.proc["tick"].Body
	if _, ok := in.parseCache[body]; !ok {
		t.Fatalf("proc body %q not in parse cache", body)
	}
	n := len(in.parseCache)
	for i := 0; i < 5; i++ {
		if _, err := in.Invoke("tick"); err != nil {
			t.Fatal(err)
		}
	}
	if len(in.parseCache) != n {
		t.Fatalf("cache grew from %d to %d entries on repeated invokes", n, len(in.parseCache))
	}
}

// TestCacheParseErrorTiming documents the one accepted divergence: the
// cache surfaces a later command's syntax error before running anything.
func TestCacheParseErrorTiming(t *testing.T) {
	src := "set x 5\nset y \"unterminated"
	plain, cached := interpsForCacheDiff(t)

	if _, _, err := plain.eval(src); err == nil || !strings.Contains(err.Error(), "quote") {
		t.Fatalf("plain: want quote error, got %v", err)
	}
	if v, _ := plain.getVar("x"); v != "5" {
		t.Fatal("vanilla interpreter should have run the first command")
	}

	if _, _, err := cached.eval(src); err == nil || !strings.Contains(err.Error(), "quote") {
		t.Fatalf("cached: want quote error, got %v", err)
	}
	if _, err := cached.getVar("x"); err == nil {
		t.Fatal("caching interpreter should have rejected the script before command 1")
	}
}
