package script

import (
	"math/rand"
	"strings"
	"testing"

	"graftlab/internal/mem"
)

// TestInterpreterNeverPanics: the script interpreter faces hostile source
// directly (there is no compile step), so no input may panic it.
func TestInterpreterNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))

	check := func(src string) {
		in := New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
		in.Fuel = 1 << 16
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("interpreter panicked on %q: %v", src, r)
			}
		}()
		in.Load(src) //nolint:errcheck // errors are fine
		in.Invoke("main")
		in.Invoke("main", 1, 2, 3)
	}

	// Random bytes.
	for i := 0; i < 2000; i++ {
		n := rng.Intn(100)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		check(string(b))
	}

	// Word soup from the script vocabulary.
	words := []string{
		"set", "incr", "expr", "if", "while", "proc", "return", "break",
		"continue", "ld32", "st32", "ld8", "st8", "memsize", "abort",
		"$x", "${y}", "{", "}", "[", "]", `"`, ";", "\n", "0xFF", "42",
		"+", "-", "*", "/", "%", "&&", "||", "\\",
	}
	for i := 0; i < 2000; i++ {
		var sb strings.Builder
		n := rng.Intn(30)
		for j := 0; j < n; j++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteString(" ")
		}
		check(sb.String())
	}

	// Truncations of a valid graft.
	valid := `proc hot {page} {
	set n [ld32 0x1000]
	while {$n != 0} {
		if {[ld32 $n] == $page} { return 1 }
		set n [ld32 [expr {$n + 4}]]
	}
	return 0
}
proc main {a} { return [hot $a] }`
	for i := 0; i < len(valid); i++ {
		check(valid[:i])
	}
}

// FuzzInterp is the native-fuzzing version of the hammer above, run
// continuously by `go test -fuzz=FuzzInterp`: loading may fail and
// invocation may trap, but nothing may panic or escape the 4 KB memory.
// The fuel budget is what makes fuzzer-found infinite loops terminate.
// Seeds live in testdata/fuzz/FuzzInterp.
func FuzzInterp(f *testing.F) {
	seeds := []string{
		"proc main {a b} { return [expr {$a + $b}] }",
		"proc main {a} { set i 0\nwhile {$i < $a} { st32 [expr {1024 + $i * 4}] $i\nincr i }\nreturn [ld32 1024] }",
		"proc f {n} { if {$n == 0} { return 0 }\nreturn [expr {$n + [f [expr {$n - 1}]]}] }\nproc main {} { return [f 5] }",
		"proc main {} { abort 7 }",
		"proc main {a} { return [expr {$a / 0}] }",
		"proc main {} { return [ld32 999999] }",
		"proc main {} { while {1} { } }",
		"proc {bad",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		in := New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
		in.Fuel = 10000
		if err := in.Load(src); err != nil {
			return
		}
		_, _ = in.Invoke("main")
		_, _ = in.Invoke("main", 3, 4, 5)
	})
}

// TestExprNeverPanics hammers the expression sub-parser directly.
func TestExprNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	in := New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
	in.Load("set x 5") //nolint:errcheck
	tokens := []string{
		"$x", "$missing", "1", "0x10", "(", ")", "+", "-", "*", "/", "%",
		"&&", "||", "!", "~", "<<", ">>", "==", "!=", "<", "<=", ">",
		">=", "&", "|", "^", "[set x]", "[bogus]",
	}
	for i := 0; i < 5000; i++ {
		var sb strings.Builder
		n := rng.Intn(12)
		for j := 0; j < n; j++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteString(" ")
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("expr panicked on %q: %v", src, r)
				}
			}()
			in.evalExpr(src) //nolint:errcheck
		}()
	}
}
