package script

import (
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// The script profiler ticks per executed command and attributes samples
// to command names (the word parser keeps no line numbers): a loop-heavy
// proc should put its weight on the loop's commands.
func TestScriptProfileAttribution(t *testing.T) {
	in := New(mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
	in.Fuel = 1 << 20
	src := "proc main {n} {\n  set i 0\n  set s 0\n  while {$i < $n} {\n    set s [expr {$s + $i}]\n    incr i\n  }\n  return $s\n}"
	if err := in.Load(src); err != nil {
		t.Fatal(err)
	}
	p, err := telemetry.NewProfile(4)
	if err != nil {
		t.Fatal(err)
	}
	in.SetProfile(p.Scope("loop", "script"), 4)
	if _, err := in.Invoke("main", 200); err != nil {
		t.Fatal(err)
	}
	samples := p.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	byCmd := map[string]int64{}
	var total int64
	for _, s := range samples {
		if s.Line != 0 {
			t.Errorf("script sample carries line %d, want 0", s.Line)
		}
		byCmd[s.Func] += s.Fuel
		total += s.Fuel
	}
	loop := byCmd["set"] + byCmd["expr"] + byCmd["incr"] + byCmd["while"]
	if share := float64(loop) / float64(total); share < 0.9 {
		t.Errorf("loop commands own %.1f%% of weight, want >=90%% (%v)", 100*share, byCmd)
	}

	// Detached interpreter stops sampling.
	before := p.TotalFuel()
	in.SetProfile(nil, 0)
	if _, err := in.Invoke("main", 200); err != nil {
		t.Fatal(err)
	}
	if p.TotalFuel() != before {
		t.Error("detached profiler still collecting")
	}
}
