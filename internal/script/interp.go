// Package script is the source-interpreted technology class: a small
// Tcl-like language (the paper measured Tcl 3.7) in which every value is a
// string and every script, loop body, and condition is re-parsed each time
// it is evaluated. That per-evaluation re-parse — not interpretation per
// se — is what put Tcl four orders of magnitude behind compiled code in
// the paper, so this interpreter deliberately keeps it.
//
// Language summary:
//
//	set name ?value?          read or write a variable
//	incr name ?amount?        add to a numeric variable
//	expr {…}                  evaluate an arithmetic expression (u32)
//	if {c} {t} ?elseif {c} {t}…? ?else {e}?
//	while {c} {body}          break/continue supported
//	proc name {params} {body} define a procedure
//	return ?val?
//	ld32 a / ld8 a            load from graft memory (policy-checked)
//	st32 a v / st8 a v        store to graft memory (policy-checked)
//	memsize                   linear memory size
//	abort code                trap
//
// Word syntax follows Tcl: {braced} words are literal, "quoted" and bare
// words undergo $variable and [command] substitution, # starts a comment
// at command position, commands end at newline or semicolon.
package script

import (
	"fmt"
	"strconv"
	"strings"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// result codes, after Tcl's TCL_OK/TCL_BREAK/...
type code int

const (
	cOK code = iota
	cBreak
	cContinue
	cReturn
)

// Proc is a user-defined procedure; its body is kept as source text and
// re-parsed at every call (the Tcl 3.7 behaviour).
type Proc struct {
	Params []string
	Body   string
}

// Interp is a script interpreter bound to a linear graft memory.
type Interp struct {
	mem  *mem.Memory
	cfg  mem.Config
	vars []map[string]string // frame stack; index 0 is globals
	// links[i] marks the names frame i has declared `global`; such names
	// are copied in at declaration and copied back when the proc returns.
	links []map[string]bool
	proc  map[string]Proc

	// Fuel limits the number of commands executed per Invoke; 0 = unmetered.
	Fuel int64
	fuel int64

	// CacheParse enables the structural parse cache (see cache.go). It is
	// OFF by default and stays off in every benchmark table: per-eval
	// re-parsing is the defining cost of this technology class, and caching
	// it away is exactly the byte-compiler fix the paper's Tcl 3.7 predates.
	// Exposed for the ablation study only.
	CacheParse bool
	parseCache map[string]*cachedScript

	depth int

	// Sampling-profiler state (see SetProfile). The script interpreter's
	// fuel unit is one command, so the countdown ticks per command and
	// samples attribute to command names — the word parser keeps no line
	// numbers, so this class has no source-line resolution.
	prof      *telemetry.ProfScope
	profEvery int64
	profTick  int64
}

// SetProfile attaches a sampling-profiler scope: every `every` executed
// commands record one sample of weight `every` against the command name
// being dispatched. A nil scope detaches.
func (in *Interp) SetProfile(s *telemetry.ProfScope, every int64) {
	if s == nil || every < 1 {
		in.prof, in.profEvery, in.profTick = nil, 0, 0
		return
	}
	in.prof, in.profEvery, in.profTick = s, every, every
}

// MaxCallDepth bounds proc recursion.
const MaxCallDepth = 128

// New creates an interpreter over m. The policy applies to the memory
// commands; an interpreter is inherently safe, so PolicyUnsafe still
// bounds-checks (as the paper notes, interpretation "allows complete
// control over the behavior of the extension").
func New(m *mem.Memory, cfg mem.Config) *Interp {
	return &Interp{
		mem:   m,
		cfg:   cfg,
		vars:  []map[string]string{make(map[string]string)},
		links: []map[string]bool{nil},
		proc:  make(map[string]Proc),
	}
}

// Memory returns the linear memory the interpreter is bound to.
func (in *Interp) Memory() *mem.Memory { return in.mem }

// Load evaluates a script at global level, typically a sequence of proc
// definitions (the graft source).
func (in *Interp) Load(src string) error {
	in.fuel = in.Fuel // loading is not charged against invocation fuel
	_, _, err := in.eval(src)
	return err
}

// Invoke calls a proc with numeric arguments, mirroring the entry-point
// convention of the compiled technologies.
func (in *Interp) Invoke(entry string, args ...uint32) (uint32, error) {
	p, ok := in.proc[entry]
	if !ok {
		return 0, fmt.Errorf("script: no proc %q", entry)
	}
	if len(args) != len(p.Params) {
		return 0, fmt.Errorf("script: proc %q takes %d args, got %d", entry, len(p.Params), len(args))
	}
	words := make([]string, 0, len(args)+1)
	words = append(words, entry)
	for _, a := range args {
		words = append(words, strconv.FormatUint(uint64(a), 10))
	}
	in.fuel = in.Fuel
	in.depth = 0
	res, _, err := in.invokeWords(words)
	if err != nil {
		return 0, err
	}
	return parseU32(res)
}

// FuelUsed reports the commands charged against the most recent
// invocation's budget (0 when unmetered). Must not race a running
// invocation.
func (in *Interp) FuelUsed() int64 {
	if in.Fuel <= 0 {
		return 0
	}
	used := in.Fuel - in.fuel
	if used > in.Fuel {
		used = in.Fuel // fuel trap leaves the counter at -1
	}
	if used < 0 {
		used = 0
	}
	return used
}

func (in *Interp) frame() map[string]string { return in.vars[len(in.vars)-1] }

func (in *Interp) getVar(name string) (string, error) {
	if v, ok := in.frame()[name]; ok {
		return v, nil
	}
	return "", fmt.Errorf("script: can't read %q: no such variable", name)
}

func (in *Interp) burn() error {
	if in.Fuel > 0 {
		in.fuel--
		if in.fuel < 0 {
			return &mem.Trap{Kind: mem.TrapFuel}
		}
	}
	return nil
}

// eval parses and runs a script, returning the last command's result.
func (in *Interp) eval(src string) (string, code, error) {
	if in.CacheParse {
		return in.evalCached(src)
	}
	p := &wordParser{src: src, in: in}
	last := ""
	for {
		words, ok, err := p.nextCommand()
		if err != nil {
			return "", cOK, err
		}
		if !ok {
			return last, cOK, nil
		}
		if len(words) == 0 {
			continue
		}
		res, c, err := in.invokeWords(words)
		if err != nil {
			return "", cOK, err
		}
		if c != cOK {
			return res, c, nil
		}
		last = res
	}
}

func (in *Interp) invokeWords(words []string) (string, code, error) {
	if err := in.burn(); err != nil {
		return "", cOK, err
	}
	if in.profEvery != 0 {
		in.profTick--
		if in.profTick <= 0 {
			in.profTick += in.profEvery
			in.prof.Hit(words[0], 0, in.profEvery)
		}
	}
	switch words[0] {
	case "set":
		switch len(words) {
		case 2:
			v, err := in.getVar(words[1])
			return v, cOK, err
		case 3:
			in.frame()[words[1]] = words[2]
			return words[2], cOK, nil
		}
		return "", cOK, fmt.Errorf(`script: wrong # args: should be "set name ?value?"`)
	case "incr":
		if len(words) != 2 && len(words) != 3 {
			return "", cOK, fmt.Errorf(`script: wrong # args: should be "incr name ?amount?"`)
		}
		cur, err := in.getVar(words[1])
		if err != nil {
			return "", cOK, err
		}
		base, err := parseU32(cur)
		if err != nil {
			return "", cOK, err
		}
		amount := uint32(1)
		if len(words) == 3 {
			amount, err = parseU32(words[2])
			if err != nil {
				return "", cOK, err
			}
		}
		nv := formatU32(base + amount)
		in.frame()[words[1]] = nv
		return nv, cOK, nil
	case "expr":
		// Tcl concatenates the arguments with spaces and parses the result
		// from scratch — every single time.
		v, err := in.evalExpr(strings.Join(words[1:], " "))
		if err != nil {
			return "", cOK, err
		}
		return formatU32(v), cOK, nil
	case "if":
		return in.cmdIf(words)
	case "while":
		if len(words) != 3 {
			return "", cOK, fmt.Errorf(`script: wrong # args: should be "while cond body"`)
		}
		for {
			if err := in.burn(); err != nil {
				return "", cOK, err
			}
			cond, err := in.evalExpr(words[1])
			if err != nil {
				return "", cOK, err
			}
			if cond == 0 {
				return "", cOK, nil
			}
			res, c, err := in.eval(words[2])
			if err != nil {
				return "", cOK, err
			}
			switch c {
			case cBreak:
				return "", cOK, nil
			case cReturn:
				return res, cReturn, nil
			}
		}
	case "global":
		// Tcl's global: link names in the current proc frame to the
		// global frame. Our frames are plain maps, so the link is a
		// copy-in; writes after `global` update the local copy and are
		// copied back when the proc returns (see invokeWords). At global
		// level the command is a no-op, as in Tcl.
		if len(words) < 2 {
			return "", cOK, fmt.Errorf(`script: wrong # args: should be "global name ?name ...?"`)
		}
		if len(in.vars) > 1 {
			fr := in.frame()
			top := len(in.links) - 1
			if in.links[top] == nil {
				in.links[top] = make(map[string]bool)
			}
			for _, name := range words[1:] {
				if v, ok := in.vars[0][name]; ok {
					fr[name] = v
				}
				in.links[top][name] = true
			}
		}
		return "", cOK, nil
	case "proc":
		if len(words) != 4 {
			return "", cOK, fmt.Errorf(`script: wrong # args: should be "proc name params body"`)
		}
		params := strings.Fields(words[2])
		in.proc[words[1]] = Proc{Params: params, Body: words[3]}
		return "", cOK, nil
	case "return":
		switch len(words) {
		case 1:
			return "0", cReturn, nil
		case 2:
			return words[1], cReturn, nil
		}
		return "", cOK, fmt.Errorf(`script: wrong # args: should be "return ?value?"`)
	case "break":
		return "", cBreak, nil
	case "continue":
		return "", cContinue, nil
	case "ld32", "ld8":
		if len(words) != 2 {
			return "", cOK, fmt.Errorf(`script: wrong # args: should be "%s addr"`, words[0])
		}
		a, err := parseU32(words[1])
		if err != nil {
			return "", cOK, err
		}
		v, err := in.load(a, words[0] == "ld32")
		if err != nil {
			return "", cOK, err
		}
		return formatU32(v), cOK, nil
	case "st32", "st8":
		if len(words) != 3 {
			return "", cOK, fmt.Errorf(`script: wrong # args: should be "%s addr value"`, words[0])
		}
		a, err := parseU32(words[1])
		if err != nil {
			return "", cOK, err
		}
		v, err := parseU32(words[2])
		if err != nil {
			return "", cOK, err
		}
		if err := in.store(a, v, words[0] == "st32"); err != nil {
			return "", cOK, err
		}
		return "", cOK, nil
	case "memsize":
		return formatU32(in.mem.Size()), cOK, nil
	case "abort":
		var codeVal uint32
		if len(words) > 1 {
			var err error
			codeVal, err = parseU32(words[1])
			if err != nil {
				return "", cOK, err
			}
		}
		return "", cOK, &mem.Trap{Kind: mem.TrapAbort, Code: codeVal}
	}

	p, ok := in.proc[words[0]]
	if !ok {
		return "", cOK, fmt.Errorf("script: invalid command name %q", words[0])
	}
	if len(words)-1 != len(p.Params) {
		return "", cOK, fmt.Errorf("script: proc %q takes %d args, got %d", words[0], len(p.Params), len(words)-1)
	}
	if in.depth >= MaxCallDepth {
		return "", cOK, &mem.Trap{Kind: mem.TrapStackOverflow}
	}
	fr := make(map[string]string, len(p.Params))
	for i, name := range p.Params {
		fr[name] = words[i+1]
	}
	in.vars = append(in.vars, fr)
	in.links = append(in.links, nil)
	in.depth++
	res, c, err := in.eval(p.Body)
	in.depth--
	// Copy global-linked names back before the frame dies.
	if lk := in.links[len(in.links)-1]; lk != nil {
		for name := range lk {
			if v, ok := fr[name]; ok {
				in.vars[0][name] = v
			}
		}
	}
	in.links = in.links[:len(in.links)-1]
	in.vars = in.vars[:len(in.vars)-1]
	if err != nil {
		return "", cOK, err
	}
	if c == cBreak || c == cContinue {
		return "", cOK, fmt.Errorf("script: invoked %q outside of a loop", map[code]string{cBreak: "break", cContinue: "continue"}[c])
	}
	return res, cOK, nil
}

func (in *Interp) cmdIf(words []string) (string, code, error) {
	// if {c} {t} ?elseif {c} {t}…? ?else {e}?
	i := 1
	for {
		if i+1 >= len(words) {
			return "", cOK, fmt.Errorf(`script: wrong # args: should be "if cond body ?elseif cond body? ?else body?"`)
		}
		cond, err := in.evalExpr(words[i])
		if err != nil {
			return "", cOK, err
		}
		if cond != 0 {
			return in.eval(words[i+1])
		}
		i += 2
		if i >= len(words) {
			return "", cOK, nil
		}
		switch words[i] {
		case "elseif":
			i++
			continue
		case "else":
			if i+1 != len(words)-1 {
				return "", cOK, fmt.Errorf(`script: wrong # args after "else"`)
			}
			return in.eval(words[i+1])
		default:
			return "", cOK, fmt.Errorf("script: expected elseif/else, got %q", words[i])
		}
	}
}

func (in *Interp) load(a uint32, word bool) (uint32, error) {
	if f := in.mem.Faults(); f != nil {
		if t := f.Check(false, a); t != nil {
			return 0, t
		}
	}
	width := uint32(1)
	if word {
		width = 4
	}
	if in.cfg.Policy == mem.PolicySandbox {
		if word {
			a = in.mem.SandboxWord(a)
		} else {
			a = in.mem.Sandbox(a)
		}
	} else if uint64(a)+uint64(width) > uint64(in.mem.Size()) {
		return 0, &mem.Trap{Kind: mem.TrapOOBLoad, Addr: a}
	}
	if word {
		return in.mem.Ld32U(a), nil
	}
	return in.mem.Ld8U(a), nil
}

func (in *Interp) store(a, v uint32, word bool) error {
	if f := in.mem.Faults(); f != nil {
		if t := f.Check(true, a); t != nil {
			return t
		}
	}
	width := uint32(1)
	if word {
		width = 4
	}
	if in.cfg.Policy == mem.PolicySandbox {
		if word {
			a = in.mem.SandboxWord(a)
		} else {
			a = in.mem.Sandbox(a)
		}
	} else if uint64(a)+uint64(width) > uint64(in.mem.Size()) {
		return &mem.Trap{Kind: mem.TrapOOBStore, Addr: a}
	}
	if word {
		in.mem.St32U(a, v)
	} else {
		in.mem.St8U(a, v)
	}
	return nil
}

func parseU32(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("script: expected integer but got %q", s)
	}
	u := uint32(v) // wrap, like every other backend
	if neg {
		u = -u
	}
	return u, nil
}

func formatU32(v uint32) string { return strconv.FormatUint(uint64(v), 10) }
