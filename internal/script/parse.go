package script

import (
	"fmt"
	"strings"
)

// wordParser splits a script into commands and words, performing $variable
// and [command] substitution exactly where Tcl does. A fresh parser is
// built for every evaluation of every script — the defining cost model of
// the source-interpreted technology class.
type wordParser struct {
	src string
	off int
	in  *Interp
}

func (p *wordParser) eof() bool { return p.off >= len(p.src) }

func (p *wordParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.off]
}

// nextCommand returns the next command's words; ok=false at end of script.
func (p *wordParser) nextCommand() ([]string, bool, error) {
	// Skip blank space, command separators, and comments.
	for !p.eof() {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
			p.off++
			continue
		}
		if c == '#' {
			for !p.eof() && p.peek() != '\n' {
				p.off++
			}
			continue
		}
		break
	}
	if p.eof() {
		return nil, false, nil
	}
	var words []string
	for {
		// Skip intra-command whitespace.
		for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
			p.off++
		}
		if p.eof() {
			break
		}
		c := p.peek()
		if c == '\n' || c == '\r' || c == ';' {
			p.off++
			break
		}
		w, err := p.word()
		if err != nil {
			return nil, false, err
		}
		words = append(words, w)
	}
	return words, true, nil
}

func (p *wordParser) word() (string, error) {
	switch p.peek() {
	case '{':
		return p.bracedWord()
	case '"':
		return p.quotedWord()
	default:
		return p.bareWord()
	}
}

// bracedWord reads a {…} word literally, honoring nesting.
func (p *wordParser) bracedWord() (string, error) {
	start := p.off
	p.off++ // consume {
	depth := 1
	b := p.off
	for !p.eof() {
		c := p.src[p.off]
		switch c {
		case '\\':
			p.off += 2
			continue
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				w := p.src[b:p.off]
				p.off++
				return w, nil
			}
		}
		p.off++
	}
	return "", fmt.Errorf("script: missing close-brace (opened at offset %d)", start)
}

func (p *wordParser) quotedWord() (string, error) {
	p.off++ // consume "
	var sb strings.Builder
	for !p.eof() {
		c := p.src[p.off]
		if c == '"' {
			p.off++
			return sb.String(), nil
		}
		if err := p.substChar(&sb); err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("script: missing closing quote")
}

func (p *wordParser) bareWord() (string, error) {
	var sb strings.Builder
	for !p.eof() {
		c := p.src[p.off]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
			break
		}
		if err := p.substChar(&sb); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

// substChar consumes one input element (plain char, escape, $var, or
// [script]) and appends its substitution to sb.
func (p *wordParser) substChar(sb *strings.Builder) error {
	c := p.src[p.off]
	switch c {
	case '\\':
		p.off++
		if p.eof() {
			sb.WriteByte('\\')
			return nil
		}
		e := p.src[p.off]
		p.off++
		switch e {
		case 'n':
			sb.WriteByte('\n')
		case 't':
			sb.WriteByte('\t')
		case 'r':
			sb.WriteByte('\r')
		default:
			sb.WriteByte(e)
		}
		return nil
	case '$':
		p.off++
		name, err := p.varName()
		if err != nil {
			return err
		}
		if name == "" {
			sb.WriteByte('$')
			return nil
		}
		v, err := p.in.getVar(name)
		if err != nil {
			return err
		}
		sb.WriteString(v)
		return nil
	case '[':
		p.off++
		script, err := p.bracketScript()
		if err != nil {
			return err
		}
		res, _, err := p.in.eval(script)
		if err != nil {
			return err
		}
		sb.WriteString(res)
		return nil
	default:
		sb.WriteByte(c)
		p.off++
		return nil
	}
}

func (p *wordParser) varName() (string, error) {
	if p.eof() {
		return "", nil
	}
	if p.peek() == '{' {
		p.off++
		b := p.off
		for !p.eof() && p.peek() != '}' {
			p.off++
		}
		if p.eof() {
			return "", fmt.Errorf("script: missing close-brace for variable name")
		}
		name := p.src[b:p.off]
		p.off++
		return name, nil
	}
	b := p.off
	for !p.eof() {
		c := p.peek()
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.off++
			continue
		}
		break
	}
	return p.src[b:p.off], nil
}

func (p *wordParser) bracketScript() (string, error) {
	b := p.off
	depth := 1
	for !p.eof() {
		c := p.src[p.off]
		switch c {
		case '\\':
			p.off += 2
			continue
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				s := p.src[b:p.off]
				p.off++
				return s, nil
			}
		}
		p.off++
	}
	return "", fmt.Errorf("script: missing close-bracket")
}
