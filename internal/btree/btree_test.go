package btree

import (
	"testing"

	"graftlab/internal/kernel"
)

func TestTPCBShapeMatchesPaper(t *testing.T) {
	tr := MustBuild(TPCBConfig())
	// §3.1: "one root page, four pages at the second level, 391 pages at
	// the third level, and approximately 50,000 pages at the fourth
	// level; each third-level page points to up to 128 fourth level
	// pages."
	if got := tr.NumInternalPages(); got != 1+4+391 {
		t.Errorf("internal pages = %d, want 396", got)
	}
	if got := tr.NumDataPages(); got != 391*128 {
		t.Errorf("data pages = %d, want %d", got, 391*128)
	}
	if tr.NumDataPages() < 50000 || tr.NumDataPages() > 50100 {
		t.Errorf("data pages %d not ≈50,000", tr.NumDataPages())
	}
	for i, kids := range tr.Data {
		if len(kids) != 128 {
			t.Fatalf("L3 page %d has %d children", i, len(kids))
		}
	}
}

func TestPageNumberingDisjoint(t *testing.T) {
	tr := MustBuild(TPCBConfig())
	seen := make(map[kernel.PageID]bool)
	add := func(p kernel.PageID) {
		if seen[p] {
			t.Fatalf("duplicate page %d", p)
		}
		seen[p] = true
	}
	add(tr.Root)
	for _, p := range tr.L2 {
		add(p)
	}
	for _, p := range tr.L3 {
		add(p)
	}
	for _, kids := range tr.Data {
		for _, p := range kids {
			add(p)
		}
	}
	if len(seen) != tr.NumInternalPages()+tr.NumDataPages() {
		t.Fatalf("page count %d", len(seen))
	}
}

func TestScanOrderAndHotLists(t *testing.T) {
	tr := MustBuild(Config{L2Pages: 2, L3Pages: 4, Fanout: 3, DataBase: 100})
	var seq []kernel.PageID
	var hotEvents int
	err := tr.Scan(0, 4, func(a Access) error {
		seq = append(seq, a.Page)
		if a.HotList != nil {
			hotEvents++
			if len(a.HotList) != 3 {
				t.Errorf("hot list len %d", len(a.HotList))
			}
			// The hot list must be exactly the next 3 data accesses.
			for j, hp := range a.HotList {
				_ = j
				_ = hp
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each subtree visit: root, L2 parent, L3, then 3 data pages = 6.
	if len(seq) != 4*6 {
		t.Fatalf("scan emitted %d accesses, want 24", len(seq))
	}
	if hotEvents != 4 {
		t.Fatalf("hot events = %d", hotEvents)
	}
	if seq[0] != tr.Root || seq[1] != tr.L2[0] || seq[2] != tr.L3[0] {
		t.Fatalf("scan prefix = %v", seq[:3])
	}
	// Data pages of subtree 0 follow immediately.
	for j := 0; j < 3; j++ {
		if seq[3+j] != tr.Data[0][j] {
			t.Fatalf("data order wrong: %v", seq[:6])
		}
	}
}

func TestHotListPredictsAccesses(t *testing.T) {
	tr := MustBuild(Config{L2Pages: 1, L3Pages: 2, Fanout: 4, DataBase: 50})
	var pendingHot []kernel.PageID
	err := tr.Scan(0, 2, func(a Access) error {
		if a.HotList != nil {
			pendingHot = append([]kernel.PageID(nil), a.HotList...)
			return nil
		}
		if len(pendingHot) > 0 {
			if a.Page != pendingHot[0] {
				t.Fatalf("access %d, hot list promised %d", a.Page, pendingHot[0])
			}
			pendingHot = pendingHot[1:]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pendingHot) != 0 {
		t.Fatalf("hot list promised pages never accessed: %v", pendingHot)
	}
}

func TestScanRangeValidation(t *testing.T) {
	tr := MustBuild(TPCBConfig())
	if err := tr.Scan(-1, 2, func(Access) error { return nil }); err == nil {
		t.Error("negative start accepted")
	}
	if err := tr.Scan(0, 9999, func(Access) error { return nil }); err == nil {
		t.Error("end beyond L3 accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := Build(Config{L2Pages: 1, L3Pages: 10, Fanout: 4, DataBase: 5}); err == nil {
		t.Error("DataBase colliding with internal pages accepted")
	}
}
