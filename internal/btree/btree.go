// Package btree models the TPC-B database of the paper's VM page eviction
// benchmark (§3.1): 1,000,000 records in a four-level b-tree that is 50%
// full — one root page, four second-level pages, 391 third-level pages,
// and ~50,000 fourth-level data pages, each third-level page pointing at
// up to 128 data pages. A non-keyed lookup traverses the tree depth-first;
// on reaching a third-level page the server knows exactly which 128 data
// pages it will touch next, and that knowledge is the eviction graft's
// hot list.
package btree

import (
	"fmt"

	"graftlab/internal/kernel"
)

// Config sizes the tree.
type Config struct {
	L2Pages  int    // pages at level two
	L3Pages  int    // pages at level three
	Fanout   int    // data pages per third-level page
	DataBase uint32 // first data PageID; internal pages are numbered below it
}

// TPCBConfig reproduces the paper's numbers: 1 root + 4 + 391 internal
// pages (≈400) and 391×128 ≈ 50,000 data pages.
func TPCBConfig() Config {
	return Config{L2Pages: 4, L3Pages: 391, Fanout: 128, DataBase: 1000}
}

// Tree is the page-level shape of the database.
type Tree struct {
	cfg  Config
	Root kernel.PageID
	L2   []kernel.PageID
	// L3[i] belongs to parent L2[i / l3PerL2].
	L3 []kernel.PageID
	// Data[i] holds the children of L3[i].
	Data [][]kernel.PageID
}

// Build lays out the page numbering for cfg.
func Build(cfg Config) (*Tree, error) {
	if cfg.L2Pages <= 0 || cfg.L3Pages <= 0 || cfg.Fanout <= 0 {
		return nil, fmt.Errorf("btree: bad config %+v", cfg)
	}
	internal := 1 + cfg.L2Pages + cfg.L3Pages
	if uint64(cfg.DataBase) < uint64(internal) {
		return nil, fmt.Errorf("btree: DataBase %d collides with %d internal pages", cfg.DataBase, internal)
	}
	t := &Tree{cfg: cfg, Root: 0}
	next := kernel.PageID(1)
	for i := 0; i < cfg.L2Pages; i++ {
		t.L2 = append(t.L2, next)
		next++
	}
	for i := 0; i < cfg.L3Pages; i++ {
		t.L3 = append(t.L3, next)
		next++
	}
	data := cfg.DataBase
	for i := 0; i < cfg.L3Pages; i++ {
		kids := make([]kernel.PageID, cfg.Fanout)
		for j := range kids {
			kids[j] = kernel.PageID(data)
			data++
		}
		t.Data = append(t.Data, kids)
	}
	return t, nil
}

// MustBuild builds or panics; for known-good configs.
func MustBuild(cfg Config) *Tree {
	t, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NumDataPages reports the number of fourth-level pages.
func (t *Tree) NumDataPages() int { return t.cfg.L3Pages * t.cfg.Fanout }

// NumInternalPages reports root + L2 + L3.
func (t *Tree) NumInternalPages() int { return 1 + len(t.L2) + len(t.L3) }

// l2Parent returns the index into L2 of L3 page i's parent.
func (t *Tree) l2Parent(i int) int {
	per := (len(t.L3) + len(t.L2) - 1) / len(t.L2)
	return min(i/per, len(t.L2)-1)
}

// Access is one page reference in a scan. HotList is non-nil exactly when
// the reference is a third-level page: it lists the 128 data pages the
// server will touch next.
type Access struct {
	Page    kernel.PageID
	HotList []kernel.PageID
}

// Scan invokes visit for every page reference of a depth-first non-keyed
// traversal of subtrees [startL3, endL3). The root and level-two pages are
// re-referenced as the traversal descends, as a real b-tree walk would.
func (t *Tree) Scan(startL3, endL3 int, visit func(a Access) error) error {
	if startL3 < 0 || endL3 > len(t.L3) || startL3 > endL3 {
		return fmt.Errorf("btree: scan range [%d,%d) out of [0,%d]", startL3, endL3, len(t.L3))
	}
	for i := startL3; i < endL3; i++ {
		if err := visit(Access{Page: t.Root}); err != nil {
			return err
		}
		if err := visit(Access{Page: t.L2[t.l2Parent(i)]}); err != nil {
			return err
		}
		if err := visit(Access{Page: t.L3[i], HotList: t.Data[i]}); err != nil {
			return err
		}
		for _, d := range t.Data[i] {
			if err := visit(Access{Page: d}); err != nil {
				return err
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
