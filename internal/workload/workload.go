// Package workload supplies the deterministic request generators the
// experiments replay: the 80/20-skewed block-write stream of the Logical
// Disk benchmark (§5.6), plus uniform and sequential streams for
// ablations. All generators are seeded xorshift PRNGs, so every run of
// every technology sees the identical request sequence.
package workload

// RNG is a 64-bit xorshift* generator: tiny, fast, deterministic, and
// dependency-free.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator; a zero seed is remapped (xorshift cannot hold
// a zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32n returns a value in [0, n).
func (r *RNG) Uint32n(n uint32) uint32 {
	if n == 0 {
		return 0
	}
	return uint32(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Stream produces block numbers.
type Stream interface {
	Next() uint32
}

// Skewed produces requests where HotFrac of the traffic hits SkewFrac of
// the blocks — the paper's "80% of the requests are for 20% of the
// blocks". The hot set is the low-numbered region, a common convention
// that keeps the generator trivially reproducible.
type Skewed struct {
	rng     *RNG
	blocks  uint32
	hotSize uint32
	hotFrac float64
}

// NewSkewed builds the 80/20 stream over blocks.
func NewSkewed(blocks uint32, seed uint64) *Skewed {
	return NewSkewedFrac(blocks, 0.80, 0.20, seed)
}

// NewSkewedFrac generalizes the skew: hotFrac of requests hit skewFrac of
// blocks.
func NewSkewedFrac(blocks uint32, hotFrac, skewFrac float64, seed uint64) *Skewed {
	hot := uint32(float64(blocks) * skewFrac)
	if hot == 0 {
		hot = 1
	}
	return &Skewed{rng: NewRNG(seed), blocks: blocks, hotSize: hot, hotFrac: hotFrac}
}

// Next implements Stream.
func (s *Skewed) Next() uint32 {
	if s.rng.Float64() < s.hotFrac {
		return s.rng.Uint32n(s.hotSize)
	}
	cold := s.blocks - s.hotSize
	if cold == 0 {
		return s.rng.Uint32n(s.blocks)
	}
	return s.hotSize + s.rng.Uint32n(cold)
}

// Uniform produces uniformly random block numbers.
type Uniform struct {
	rng    *RNG
	blocks uint32
}

// NewUniform builds a uniform stream over blocks.
func NewUniform(blocks uint32, seed uint64) *Uniform {
	return &Uniform{rng: NewRNG(seed), blocks: blocks}
}

// Next implements Stream.
func (u *Uniform) Next() uint32 { return u.rng.Uint32n(u.blocks) }

// Sequential produces 0, 1, 2, …, wrapping at blocks.
type Sequential struct {
	next   uint32
	blocks uint32
}

// NewSequential builds a sequential stream over blocks.
func NewSequential(blocks uint32) *Sequential {
	return &Sequential{blocks: blocks}
}

// Next implements Stream.
func (s *Sequential) Next() uint32 {
	v := s.next
	s.next++
	if s.next >= s.blocks {
		s.next = 0
	}
	return v
}

// FillPattern writes a deterministic byte pattern derived from tag into p;
// experiments use it to generate distinguishable block payloads.
func FillPattern(p []byte, tag uint32) {
	x := tag*2654435761 + 1
	for i := range p {
		x = x*1664525 + 1013904223
		p[i] = byte(x >> 24)
	}
}
