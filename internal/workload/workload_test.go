package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(6)
	same := true
	a = NewRNG(5)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestUint32nBounds(t *testing.T) {
	f := func(seed uint64, n uint32) bool {
		r := NewRNG(seed)
		if n == 0 {
			return r.Uint32n(0) == 0
		}
		for i := 0; i < 100; i++ {
			if r.Uint32n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestSkewedDistribution(t *testing.T) {
	const blocks = 10000
	s := NewSkewed(blocks, 1)
	hot := uint32(float64(blocks) * 0.20)
	var inHot int
	const n = 200000
	for i := 0; i < n; i++ {
		b := s.Next()
		if b >= blocks {
			t.Fatalf("block %d out of range", b)
		}
		if b < hot {
			inHot++
		}
	}
	frac := float64(inHot) / n
	// 80% of traffic to the hot 20%, within sampling noise. The cold
	// band also lands uniformly, so expected ≈ 0.80 + 0.20*0.20 ≈ 0.84.
	if frac < 0.80 || frac > 0.88 {
		t.Errorf("hot fraction = %.3f, want ≈0.84", frac)
	}
}

func TestSkewedDegenerateSizes(t *testing.T) {
	s := NewSkewedFrac(1, 0.8, 0.2, 3)
	for i := 0; i < 100; i++ {
		if s.Next() != 0 {
			t.Fatal("single-block stream wandered")
		}
	}
	// skewFrac 1.0: hot set is everything.
	s2 := NewSkewedFrac(100, 0.8, 1.0, 3)
	for i := 0; i < 1000; i++ {
		if s2.Next() >= 100 {
			t.Fatal("out of range")
		}
	}
}

func TestSequentialWraps(t *testing.T) {
	s := NewSequential(3)
	want := []uint32{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("step %d = %d, want %d", i, got, w)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(37, 4)
	seen := make(map[uint32]bool)
	for i := 0; i < 10000; i++ {
		b := u.Next()
		if b >= 37 {
			t.Fatalf("out of range: %d", b)
		}
		seen[b] = true
	}
	if len(seen) != 37 {
		t.Errorf("only %d/37 blocks seen", len(seen))
	}
}

func TestFillPatternDeterministicAndDistinct(t *testing.T) {
	a := make([]byte, 256)
	b := make([]byte, 256)
	FillPattern(a, 1)
	FillPattern(b, 1)
	if string(a) != string(b) {
		t.Fatal("same tag differs")
	}
	FillPattern(b, 2)
	if string(a) == string(b) {
		t.Fatal("different tags identical")
	}
}
