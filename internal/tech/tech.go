// Package tech is the extension-technology registry: one uniform way to
// load a graft source under any of the technology classes the paper
// compares, so the benchmark harness and the kernel hook points never care
// which class is behind a graft.
//
//	ID            paper technology            implementation
//	------------  --------------------------  -------------------------------
//	NativeUnsafe  C linked into the kernel    native codegen, PolicyUnsafe
//	NativeSafe    Modula-3 (Solaris/Alpha)    native codegen, PolicyChecked
//	NativeSafeNil Modula-3 (Linux, explicit   native codegen, PolicyChecked
//	              NIL checks, §5.4)           + NilCheck
//	SFI           Omniware beta (write/jump   native codegen, PolicySandbox
//	              sandboxing, no read prot.)
//	SFIFull       "SFI with full protection"  native codegen, PolicySandbox
//	              (§6 future candidate)       + ReadProtect
//	Bytecode      Java (Alpha 3 interpreter)  compile to bytecode, verify, vm
//	Script        Tcl 3.7                     mini-Tcl source interpreter
//	AOT           eBPF-style verified native  bytecode verified + interval-
//	              (post-paper practice)       proved, lowered to closures
//
// The user-level-server technology is not a loader but a wrapper; see
// package upcall.
package tech

import (
	"fmt"

	"graftlab/internal/aot"
	"graftlab/internal/bytecode"
	"graftlab/internal/compile"
	"graftlab/internal/gel"
	"graftlab/internal/hipec"
	"graftlab/internal/mem"
	"graftlab/internal/native"
	"graftlab/internal/script"
	"graftlab/internal/telemetry"
	"graftlab/internal/vm"
)

// Graft is a loaded extension: named entry points over a shared linear
// memory. Invoke returns the entry point's u32 result; protection
// violations surface as *mem.Trap errors (except under NativeUnsafe,
// whose backstop trap stands in for the kernel crash the paper's unsafe-C
// model accepts).
type Graft interface {
	Invoke(entry string, args ...uint32) (uint32, error)
	Memory() *mem.Memory
}

// DirectCaller is an optional fast path: a kernel invoking a compiled
// graft jumps through a resolved function pointer rather than looking the
// entry up per call. Hook points that invoke a graft millions of times
// (the pager's eviction hook, the logical disk's per-block bookkeeping)
// resolve once and call through the returned function; args is reused
// across calls, so implementations must not retain it.
type DirectCaller interface {
	Direct(entry string) (func(args []uint32) (uint32, error), bool)
}

// ResolveDirect returns the fastest call path g offers for entry.
func ResolveDirect(g Graft, entry string) func(args []uint32) (uint32, error) {
	if dc, ok := g.(DirectCaller); ok {
		if fn, ok := dc.Direct(entry); ok {
			return fn
		}
	}
	return func(args []uint32) (uint32, error) {
		return g.Invoke(entry, args...)
	}
}

// Source is a graft program in every representation the technologies
// need. GEL feeds the codegen and bytecode classes; Tcl feeds the script
// class; Compiled, when set, builds the hand-written per-technology Go
// implementation the Compiled* classes run (the paper reimplemented each
// graft per technology, and so does this repo). A Source missing a
// representation cannot be loaded under the class that needs it.
type Source struct {
	Name     string
	GEL      string
	Tcl      string
	Compiled func(cfg mem.Config, m *mem.Memory) (Graft, error)
	// Hipec maps entry-point names to HiPEC-class assembler programs.
	// Grafts the domain language cannot express leave this nil.
	Hipec map[string]string
}

// ID names a technology in the registry.
type ID string

const (
	// The truly compiled class: hand-written Go per graft with the
	// policy's checks compiled in (requires Source.Compiled).
	CompiledUnsafe  ID = "compiled-unsafe"
	CompiledSafe    ID = "compiled-safe"
	CompiledSafeNil ID = "compiled-safe-nil"
	CompiledSFI     ID = "compiled-sfi"
	CompiledSFIFull ID = "compiled-sfi-full"

	// The runtime-codegen class: GEL lowered to closure-threaded Go
	// closures at load time — the paper's "flexible line between
	// generating native code at load time and dynamically generating
	// native code from interpreted code" (§4.3).
	NativeUnsafe  ID = "native-unsafe"
	NativeSafe    ID = "native-safe"
	NativeSafeNil ID = "native-safe-nil"
	SFI           ID = "sfi"
	SFIFull       ID = "sfi-full"

	// The interpreted classes.
	Bytecode ID = "bytecode"
	Script   ID = "script"

	// The verified ahead-of-time class: the same GEL bytecode the
	// interpreted class runs, but verified once at load time (eBPF-style
	// interval analysis proving memory accesses in-bounds) and lowered
	// to closure-threaded Go with the proven checks elided — the
	// modern "verify, then run native" answer to the paper's
	// interpretation gap (see internal/aot).
	AOT ID = "aot"

	// The domain-specific interpreter class: HiPEC's 20-instruction
	// assembler-like language and the packet-filter languages of §2.
	// Tiny programs, near-compiled throughput, and deliberately unable
	// to express general grafts (requires Source.Hipec; MD5 has none —
	// that inexpressibility is the paper's point).
	Domain ID = "domain"
)

// All lists every directly loadable technology, paper-table order first
// (C, Java, Modula-3, Omniware, Tcl), then the runtime-codegen and
// ablation variants.
var All = []ID{
	CompiledUnsafe, Bytecode, CompiledSafe, CompiledSFI, Script,
	CompiledSafeNil, CompiledSFIFull,
	NativeUnsafe, NativeSafe, NativeSafeNil, SFI, SFIFull,
	Domain, AOT,
}

// Compiled lists the technologies the paper groups as "compiled".
var Compiled = []ID{CompiledUnsafe, CompiledSafe, CompiledSFI}

// NeedsCompiledImpl reports whether id requires Source.Compiled.
func NeedsCompiledImpl(id ID) bool {
	switch id {
	case CompiledUnsafe, CompiledSafe, CompiledSafeNil, CompiledSFI, CompiledSFIFull:
		return true
	}
	return false
}

// PaperName maps a technology to the system it stands in for.
func PaperName(id ID) string {
	switch id {
	case CompiledUnsafe:
		return "C (unsafe, in-kernel)"
	case CompiledSafe:
		return "Modula-3"
	case CompiledSafeNil:
		return "Modula-3 (explicit NIL checks)"
	case CompiledSFI:
		return "Omniware SFI (write/jump)"
	case CompiledSFIFull:
		return "SFI (full read/write/jump)"
	case NativeUnsafe:
		return "runtime codegen (unsafe)"
	case NativeSafe:
		return "runtime codegen (checked)"
	case NativeSafeNil:
		return "runtime codegen (checked+NIL)"
	case SFI:
		return "runtime codegen (SFI w/j)"
	case SFIFull:
		return "runtime codegen (SFI full)"
	case Bytecode:
		return "Java (interpreted bytecode)"
	case Script:
		return "Tcl"
	case Domain:
		return "HiPEC/BPF domain language"
	case AOT:
		return "AOT verified-native (eBPF-style)"
	}
	return string(id)
}

// Config maps a technology to its memory policy.
func Config(id ID) (mem.Config, error) {
	switch id {
	case NativeUnsafe, CompiledUnsafe:
		return mem.Config{Policy: mem.PolicyUnsafe}, nil
	case NativeSafe, CompiledSafe:
		return mem.Config{Policy: mem.PolicyChecked}, nil
	case NativeSafeNil, CompiledSafeNil:
		return mem.Config{Policy: mem.PolicyChecked, NilCheck: true}, nil
	case SFI, CompiledSFI:
		return mem.Config{Policy: mem.PolicySandbox}, nil
	case SFIFull, CompiledSFIFull:
		return mem.Config{Policy: mem.PolicySandbox, ReadProtect: true}, nil
	case Bytecode:
		return mem.Config{Policy: mem.PolicyChecked}, nil
	case Script:
		return mem.Config{Policy: mem.PolicyChecked}, nil
	case Domain:
		return mem.Config{Policy: mem.PolicyChecked}, nil
	case AOT:
		return mem.Config{Policy: mem.PolicyChecked}, nil
	}
	return mem.Config{}, fmt.Errorf("tech: unknown technology %q", id)
}

// VMMode selects the bytecode execution engine.
type VMMode string

const (
	// VMOpt is the default: the load-time optimizing translator
	// (pre-decoded dispatch, superinstruction fusion, block-granular
	// fuel, policy specialization; see internal/vm/opt.go).
	VMOpt VMMode = "opt"
	// VMBaseline selects the naive switch-dispatch reference interpreter.
	VMBaseline VMMode = "baseline"
)

// ParseVMMode validates a -vm flag value ("" means the default).
func ParseVMMode(s string) (VMMode, error) {
	switch VMMode(s) {
	case "", VMOpt:
		return VMOpt, nil
	case VMBaseline:
		return VMBaseline, nil
	}
	return "", fmt.Errorf("tech: unknown vm mode %q (want %q or %q)", s, VMOpt, VMBaseline)
}

// Options tune a load.
type Options struct {
	// Fuel is the per-invocation execution budget (instructions for the
	// VM, loop iterations and calls for native code, commands for the
	// script interpreter). 0 disables metering.
	Fuel int64
	// Optimize runs constant folding on GEL sources before code
	// generation. Behaviour is unchanged (the fold keeps runtime traps);
	// only speed differs.
	Optimize bool
	// VM selects the bytecode engine ("" = VMOpt). Behaviour is
	// equivalent (differentially tested); only speed differs.
	VM VMMode
	// ScriptParseCache enables the script interpreter's structural parse
	// cache. Off by default: Tcl 3.7's per-eval re-parse is load-bearing
	// for the paper's 10⁴× script-class result, so the cache exists only
	// as an ablation (modeling the Tcl byte-compilers the paper mentions).
	ScriptParseCache bool
}

// Load loads src under the named technology, bound to memory m. While
// telemetry is enabled (telemetry.SetEnabled), the returned graft is
// wrapped with per-invocation metrics; the decision is made once at load
// time so a disabled run pays nothing per call. Load also consults the
// watchdog deny-list — a quarantined (graft, technology) pair is refused
// with telemetry.ErrQuarantined — and, while the sampling profiler is
// enabled, hands the engine its profiling scope.
func Load(id ID, src Source, m *mem.Memory, opts Options) (Graft, error) {
	if telemetry.Enabled() && telemetry.Quarantined(src.Name, string(id)) {
		return nil, fmt.Errorf("tech %s: graft %q: %w", id, src.Name, telemetry.ErrQuarantined)
	}
	g, err := load(id, src, m, opts)
	if err != nil {
		return g, err
	}
	attachProfile(g, src.Name, id)
	if telemetry.Disabled() {
		return g, nil
	}
	return instrument(g, src.Name, id, opts.Fuel > 0), nil
}

// ProfileSetter is the optional engine interface the sampling profiler
// wires through: both bytecode engines and the script interpreter
// implement it (the only classes with a fuel-granular execution loop to
// piggyback on; the compiled and codegen classes run native Go and are
// profiled by the host profiler instead).
type ProfileSetter interface {
	SetProfile(s *telemetry.ProfScope, every int64)
}

// attachProfile hands g its profiler scope when a profile is installed
// and the engine supports one. Like the metrics wrap, the decision is
// load-time only.
func attachProfile(g Graft, graft string, id ID) {
	p := telemetry.CurrentProfile()
	if p == nil {
		return
	}
	if ps, ok := g.(ProfileSetter); ok {
		ps.SetProfile(p.Scope(graft, string(id)), p.Interval())
	}
}

// SpanInvoker is the optional interface wrappers implement to thread a
// causal span context through an invocation (the instrumented metrics
// wrapper and upcall.Domain do; raw engines do not need to — the engine
// span is recorded by the wrapper around them).
type SpanInvoker interface {
	InvokeSpan(ctx telemetry.SpanCtx, entry string, args ...uint32) (uint32, error)
}

// InvokeSpan invokes entry on g, threading ctx when g supports it and
// falling back to a plain Invoke when it does not (or when ctx is
// inactive, in which case the span-aware path would be a no-op anyway).
func InvokeSpan(g Graft, ctx telemetry.SpanCtx, entry string, args ...uint32) (uint32, error) {
	if ctx.Active() {
		if si, ok := g.(SpanInvoker); ok {
			return si.InvokeSpan(ctx, entry, args...)
		}
	}
	return g.Invoke(entry, args...)
}

// load is the uninstrumented loader behind Load.
func load(id ID, src Source, m *mem.Memory, opts Options) (Graft, error) {
	cfg, err := Config(id)
	if err != nil {
		return nil, err
	}
	switch id {
	case CompiledUnsafe, CompiledSafe, CompiledSafeNil, CompiledSFI, CompiledSFIFull:
		if src.Compiled == nil {
			return nil, fmt.Errorf("tech %s: graft %q has no compiled implementation", id, src.Name)
		}
		return src.Compiled(cfg, m)
	case NativeUnsafe, NativeSafe, NativeSafeNil, SFI, SFIFull:
		prog, err := gel.ParseAndCheck(src.GEL)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", id, err)
		}
		if opts.Optimize {
			gel.Fold(prog)
		}
		np, err := nativeCompile(prog, m, cfg)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", id, err)
		}
		np.Fuel = opts.Fuel
		return np, nil
	case Bytecode:
		prog, err := gel.ParseAndCheck(src.GEL)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", id, err)
		}
		if opts.Optimize {
			gel.Fold(prog)
		}
		mod, err := compile.Compile(prog)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", id, err)
		}
		return newVMEngine(mod, m, cfg, opts)
	case AOT:
		prog, err := gel.ParseAndCheck(src.GEL)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", id, err)
		}
		if opts.Optimize {
			gel.Fold(prog)
		}
		mod, err := compile.Compile(prog)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", id, err)
		}
		return newAOTEngine(mod, m, cfg, opts)
	case Script:
		if src.Tcl == "" {
			return nil, fmt.Errorf("tech %s: graft %q has no script translation", id, src.Name)
		}
		in := script.New(m, cfg)
		in.Fuel = opts.Fuel
		in.CacheParse = opts.ScriptParseCache
		if err := in.Load(src.Tcl); err != nil {
			return nil, fmt.Errorf("tech %s: %w", id, err)
		}
		return in, nil
	case Domain:
		if len(src.Hipec) == 0 {
			return nil, fmt.Errorf("tech %s: graft %q is not expressible in the domain language", id, src.Name)
		}
		g := &hipecGraft{m: m, fuel: opts.Fuel, progs: make(map[string]*hipec.Program, len(src.Hipec))}
		for entry, asm := range src.Hipec {
			p, err := hipec.Assemble(asm)
			if err != nil {
				return nil, fmt.Errorf("tech %s: entry %q: %w", id, entry, err)
			}
			g.progs[entry] = p
		}
		return g, nil
	}
	return nil, fmt.Errorf("tech: unknown technology %q", id)
}

// nativeCompile binds a parsed (and possibly folded) GEL program to m
// under cfg. Shared by load and Pool.newInstance: the parsed program is
// immutable, so many instances can be compiled from it concurrently.
func nativeCompile(prog *gel.Program, m *mem.Memory, cfg mem.Config) (*native.Prog, error) {
	return native.Compile(prog, m, cfg)
}

// newVMEngine instantiates the selected bytecode engine over a compiled
// module. Shared by load and Pool.newInstance: the module is immutable
// after compile+verify, so instances translate from it concurrently.
func newVMEngine(mod *bytecode.Module, m *mem.Memory, cfg mem.Config, opts Options) (Graft, error) {
	mode, err := ParseVMMode(string(opts.VM))
	if err != nil {
		return nil, err
	}
	if mode == VMBaseline {
		v, err := vm.New(mod, m, cfg)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", Bytecode, err)
		}
		v.Fuel = opts.Fuel
		return v, nil
	}
	v, err := vm.NewOpt(mod, m, cfg, vm.OptConfig{})
	if err != nil {
		return nil, fmt.Errorf("tech %s: %w", Bytecode, err)
	}
	v.Fuel = opts.Fuel
	return v, nil
}

// newAOTEngine verifies and translates a compiled module for the AOT
// class. Shared by load and Pool.newInstance, like newVMEngine: the
// module is immutable, so instances translate from it concurrently.
func newAOTEngine(mod *bytecode.Module, m *mem.Memory, cfg mem.Config, opts Options) (Graft, error) {
	p, err := aot.New(mod, m, cfg)
	if err != nil {
		return nil, fmt.Errorf("tech %s: %w", AOT, err)
	}
	p.Fuel = opts.Fuel
	return p, nil
}

// hipecGraft adapts verified HiPEC-class programs to the Graft interface.
type hipecGraft struct {
	m     *mem.Memory
	progs map[string]*hipec.Program
	fuel  int64
}

// Invoke implements Graft.
func (g *hipecGraft) Invoke(entry string, args ...uint32) (uint32, error) {
	p, ok := g.progs[entry]
	if !ok {
		return 0, fmt.Errorf("domain: no entry %q", entry)
	}
	return p.Run(g.m, g.fuel, args...)
}

// Memory implements Graft.
func (g *hipecGraft) Memory() *mem.Memory { return g.m }

// Direct implements DirectCaller.
func (g *hipecGraft) Direct(entry string) (func(args []uint32) (uint32, error), bool) {
	p, ok := g.progs[entry]
	if !ok {
		return nil, false
	}
	m, fuel := g.m, g.fuel
	return func(args []uint32) (uint32, error) {
		return p.Run(m, fuel, args...)
	}, true
}

// MustLoad loads a known-good compiled-in graft, panicking on error.
func MustLoad(id ID, src Source, m *mem.Memory, opts Options) Graft {
	g, err := Load(id, src, m, opts)
	if err != nil {
		panic(err)
	}
	return g
}
