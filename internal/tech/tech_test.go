package tech

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"graftlab/internal/mem"
)

const memSize = 1 << 16

// loadAll loads src under every technology that can carry it.
func loadAll(t *testing.T, src Source) map[ID]Graft {
	t.Helper()
	out := make(map[ID]Graft)
	for _, id := range All {
		if id == Script && src.Tcl == "" {
			continue
		}
		if NeedsCompiledImpl(id) && src.Compiled == nil {
			continue
		}
		if id == Domain && len(src.Hipec) == 0 {
			continue
		}
		g, err := Load(id, src, mem.New(memSize), Options{})
		if err != nil {
			t.Fatalf("load %s: %v", id, err)
		}
		out[id] = g
	}
	return out
}

// fixture programs with known results, each written in GEL and mini-Tcl.
var fixtures = []struct {
	src  Source
	args []uint32
	want uint32
}{
	{
		src: Source{
			Name: "add",
			GEL:  `func main(a, b) { return a + b; }`,
			Tcl:  `proc main {a b} { return [expr {$a + $b}] }`,
		},
		args: []uint32{7, 35}, want: 42,
	},
	{
		src: Source{
			Name: "wrapping",
			GEL:  `func main(a, b) { return a * b + 1; }`,
			Tcl:  `proc main {a b} { return [expr {$a * $b + 1}] }`,
		},
		args: []uint32{0xFFFFFFFF, 2}, want: 0xFFFFFFFF, // (2^32-1)*2+1 mod 2^32
	},
	{
		src: Source{
			Name: "loop-sum",
			GEL: `func main(n) {
				var sum = 0;
				var i = 1;
				while (i <= n) { sum = sum + i; i = i + 1; }
				return sum;
			}`,
			Tcl: `proc main {n} {
				set sum 0
				set i 1
				while {$i <= $n} { set sum [expr {$sum + $i}]; incr i }
				return $sum
			}`,
		},
		args: []uint32{100}, want: 5050,
	},
	{
		src: Source{
			Name: "collatz-steps",
			GEL: `func main(n) {
				var steps = 0;
				while (n != 1) {
					if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
					steps = steps + 1;
				}
				return steps;
			}`,
			Tcl: `proc main {n} {
				set steps 0
				while {$n != 1} {
					if {$n % 2 == 0} { set n [expr {$n / 2}] } else { set n [expr {3 * $n + 1}] }
					incr steps
				}
				return $steps
			}`,
		},
		args: []uint32{27}, want: 111,
	},
	{
		src: Source{
			Name: "memory-roundtrip",
			GEL: `func main(a, v) {
				st32(a, v);
				st8(a + 64, v);
				return ld32(a) + ld8(a + 64);
			}`,
			Tcl: `proc main {a v} {
				st32 $a $v
				st8 [expr {$a + 64}] $v
				return [expr {[ld32 $a] + [ld8 [expr {$a + 64}]]}]
			}`,
		},
		args: []uint32{4096, 0x01020384}, want: 0x01020384 + 0x84,
	},
	{
		src: Source{
			Name: "fib-recursive",
			GEL: `func fib(n) {
				if (n < 2) { return n; }
				return fib(n - 1) + fib(n - 2);
			}
			func main(n) { return fib(n); }`,
			Tcl: `proc fib {n} {
				if {$n < 2} { return $n }
				return [expr {[fib [expr {$n - 1}]] + [fib [expr {$n - 2}]]}]
			}
			proc main {n} { return [fib $n] }`,
		},
		args: []uint32{15}, want: 610,
	},
	{
		src: Source{
			Name: "bitops",
			GEL: `func main(x) {
				var r = rotl(x, 7) ^ rotr(x, 3);
				r = r | (x << 4) & ~(x >> 2);
				return min(r, max(x, 0x1000));
			}`,
			// rotl/rotr spelled out with shifts in Tcl.
			Tcl: `proc main {x} {
				set rl [expr {(($x << 7) | ($x >> 25))}]
				set rr [expr {(($x >> 3) | ($x << 29))}]
				set r [expr {$rl ^ $rr}]
				set r [expr {$r | ($x << 4) & ~($x >> 2)}]
				if {$x > 0x1000} { set mx $x } else { set mx 0x1000 }
				if {$r < $mx} { return $r }
				return $mx
			}`,
		},
		args: []uint32{0xDEADBEEF},
	},
	{
		src: Source{
			Name: "logic",
			GEL: `func main(a, b) {
				var r = 0;
				if (a && !b) { r = r + 1; }
				if (a || b) { r = r + 2; }
				if (!(a == b)) { r = r + 4; }
				return r;
			}`,
			Tcl: `proc main {a b} {
				set r 0
				if {$a && !$b} { incr r 1 }
				if {$a || $b} { incr r 2 }
				if {!($a == $b)} { incr r 4 }
				return $r
			}`,
		},
		args: []uint32{5, 0}, want: 7,
	},
	{
		src: Source{
			Name: "break-continue",
			GEL: `func main(n) {
				var acc = 0;
				var i = 0;
				while (1) {
					i = i + 1;
					if (i > n) { break; }
					if (i % 3 == 0) { continue; }
					acc = acc + i;
				}
				return acc;
			}`,
			Tcl: `proc main {n} {
				set acc 0
				set i 0
				while {1} {
					incr i
					if {$i > $n} { break }
					if {$i % 3 == 0} { continue }
					set acc [expr {$acc + $i}]
				}
				return $acc
			}`,
		},
		args: []uint32{10}, want: 37, // 1+2+4+5+7+8+10
	},
}

func TestFixturesAgreeAcrossTechnologies(t *testing.T) {
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.src.Name, func(t *testing.T) {
			grafts := loadAll(t, fx.src)
			ref, err := grafts[NativeUnsafe].Invoke("main", fx.args...)
			if err != nil {
				t.Fatalf("native-unsafe: %v", err)
			}
			if fx.want != 0 && ref != fx.want {
				t.Errorf("native-unsafe = %d, want %d", ref, fx.want)
			}
			for id, g := range grafts {
				got, err := g.Invoke("main", fx.args...)
				if err != nil {
					t.Errorf("%s: %v", id, err)
					continue
				}
				if got != ref {
					t.Errorf("%s = %d, native-unsafe = %d", id, got, ref)
				}
			}
		})
	}
}

// TestRandomProgramsAgree is the differential property test: generated GEL
// programs must produce identical results (or all trap) under every GEL-
// carrying technology.
func TestRandomProgramsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1996))
	n := 300
	if testing.Short() {
		n = 50
	}
	for i := 0; i < n; i++ {
		src := Source{Name: fmt.Sprintf("rand-%d", i), GEL: randomProgram(rng)}
		args := []uint32{rng.Uint32(), rng.Uint32() % 1024, rng.Uint32() % 7}

		type outcome struct {
			val     uint32
			trapped bool
		}
		var ref outcome
		var refMem []byte
		variants := []struct {
			id ID
			vm VMMode
		}{
			{NativeUnsafe, ""}, {NativeSafe, ""}, {NativeSafeNil, ""},
			{SFIFull, ""}, {Bytecode, VMOpt}, {Bytecode, VMBaseline},
		}
		for j, va := range variants {
			id := va.id
			m := mem.New(memSize)
			g, err := Load(id, src, m, Options{Fuel: 1 << 20, VM: va.vm})
			if err != nil {
				t.Fatalf("program %d: load %s: %v\n%s", i, id, err, src.GEL)
			}
			v, err := g.Invoke("main", args...)
			got := outcome{val: v, trapped: err != nil}
			if j == 0 {
				ref = got
				refMem = m.Data
				continue
			}
			if got != ref {
				t.Fatalf("program %d: %s = %+v (err=%v), native-unsafe = %+v\nargs=%v\n%s",
					i, id, got, err, ref, args, src.GEL)
			}
			// Memory side effects must match when no trap occurred.
			// (After a trap, technologies legitimately diverge: an SFI
			// store is redirected while a checked store is suppressed.)
			if !ref.trapped && string(refMem) != string(m.Data) {
				t.Fatalf("program %d: %s memory diverges from native-unsafe\n%s", i, id, src.GEL)
			}
		}
	}
}

// randomProgram emits a GEL program whose memory accesses stay in bounds,
// so a trap can only come from arithmetic — and must be agreed on by all
// backends.
func randomProgram(rng *rand.Rand) string {
	g := &progGen{rng: rng}
	body := g.stmts(3, 2)
	return fmt.Sprintf(`func main(a, b, c) {
	var x = a;
	var y = b;
	var z = 1;
%s	return x ^ y + z;
}`, body)
}

type progGen struct {
	rng *rand.Rand
}

func (g *progGen) stmts(n, depth int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += g.stmt(depth)
	}
	return out
}

func (g *progGen) stmt(depth int) string {
	vars := []string{"x", "y", "z"}
	v := vars[g.rng.Intn(len(vars))]
	switch r := g.rng.Intn(10); {
	case r < 4:
		return fmt.Sprintf("\t%s = %s;\n", v, g.expr(depth))
	case r < 6 && depth > 0:
		return fmt.Sprintf("\tif (%s) {\n%s\t} else {\n%s\t}\n",
			g.expr(depth-1), g.stmts(2, depth-1), g.stmts(1, depth-1))
	case r < 7 && depth > 0:
		// bounded loop
		return fmt.Sprintf("\t{ var i = 0; while (i < %d) { i = i + 1;\n%s\t} }\n",
			g.rng.Intn(8)+1, g.stmts(1, depth-1))
	case r < 8:
		// Addresses stay in [4096, 64 KiB) so the NIL-page ablation agrees
		// with the other technologies.
		return fmt.Sprintf("\tst32(((%s) %% 15360 + 1024) * 4, %s);\n", g.expr(depth), g.expr(depth))
	default:
		return fmt.Sprintf("\t%s = ld32(((%s) %% 15360 + 1024) * 4);\n", v, g.expr(depth))
	}
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Uint32()%1000)
		case 1:
			return "x"
		case 2:
			return "y"
		case 3:
			return "z"
		default:
			return fmt.Sprintf("0x%x", g.rng.Uint32())
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=",
		"<", "<=", ">", ">=", "&&", "||", "/", "%"}
	op := ops[g.rng.Intn(len(ops))]
	x := g.expr(depth - 1)
	y := g.expr(depth - 1)
	if g.rng.Intn(8) == 0 {
		fn := []string{"rotl", "rotr", "min", "max"}[g.rng.Intn(4)]
		return fmt.Sprintf("%s(%s, %s)", fn, x, y)
	}
	if g.rng.Intn(10) == 0 {
		return fmt.Sprintf("~(%s)", x)
	}
	return fmt.Sprintf("((%s) %s (%s))", x, op, y)
}

// TestFoldedProgramsAgree: constant folding must never change behaviour.
func TestFoldedProgramsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	n := 200
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		src := Source{Name: fmt.Sprintf("fold-%d", i), GEL: randomProgram(rng)}
		args := []uint32{rng.Uint32(), rng.Uint32() % 512, rng.Uint32() % 9}
		for _, id := range []ID{NativeUnsafe, Bytecode} {
			plain, err := Load(id, src, mem.New(memSize), Options{})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := Load(id, src, mem.New(memSize), Options{Optimize: true})
			if err != nil {
				t.Fatal(err)
			}
			v1, e1 := plain.Invoke("main", args...)
			v2, e2 := opt.Invoke("main", args...)
			if v1 != v2 || (e1 != nil) != (e2 != nil) {
				t.Fatalf("program %d under %s: plain=(%d,%v) folded=(%d,%v)\n%s",
					i, id, v1, e1, v2, e2, src.GEL)
			}
		}
	}
}

func TestTrapsAreRecoverable(t *testing.T) {
	src := Source{
		Name: "oob-store",
		GEL:  `func main(a) { st32(a, 1); return ld32(a); }`,
		Tcl:  `proc main {a} { st32 $a 1; return [ld32 $a] }`,
	}
	far := uint32(1 << 30) // far outside the 64 KiB memory
	for _, id := range []ID{NativeSafe, NativeSafeNil, Bytecode, Script} {
		g, err := Load(id, src, mem.New(memSize), Options{})
		if err != nil {
			t.Fatalf("load %s: %v", id, err)
		}
		_, err = g.Invoke("main", far)
		var trap *mem.Trap
		if !errors.As(err, &trap) {
			t.Errorf("%s: err = %v, want *mem.Trap", id, err)
			continue
		}
		if trap.Kind != mem.TrapOOBStore {
			t.Errorf("%s: trap kind = %v, want OOB store", id, trap.Kind)
		}
		// The graft must remain invokable after a trap. Use an address
		// above the NIL page so every checked variant accepts it.
		if v, err := g.Invoke("main", 8192); err != nil || v != 1 {
			t.Errorf("%s: post-trap invoke = %d, %v", id, v, err)
		}
	}
}

func TestSandboxRedirectsInsteadOfTrapping(t *testing.T) {
	src := Source{
		Name: "sfi-store",
		GEL:  `func main(a, v) { st32(a, v); return 0; }`,
	}
	for _, id := range []ID{SFI, SFIFull} {
		m := mem.New(memSize)
		g, err := Load(id, src, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Store "outside": address = memSize + 256. SFI masks it to 256.
		if _, err := g.Invoke("main", memSize+256, 0xABCD); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got := m.Ld32U(256); got != 0xABCD {
			t.Errorf("%s: masked store landed wrong: mem[256] = %#x", id, got)
		}
	}
}

func TestSFIWithoutReadProtectionTrapsOnWildLoad(t *testing.T) {
	// The Omniware beta had no read protection: a wild load is not masked.
	// In our model the whole address space is the sandbox, so an unmasked
	// wild load hits the crash backstop rather than being redirected.
	src := Source{Name: "wild-load", GEL: `func main(a) { return ld32(a); }`}
	g, err := Load(SFI, src, mem.New(memSize), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("main", memSize+8); err == nil {
		t.Fatal("wild load under write-only SFI should fault")
	}
	// With full protection the same load is silently masked.
	gf, err := Load(SFIFull, src, mem.New(memSize), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gf.Invoke("main", memSize+8); err != nil {
		t.Fatalf("masked load under full SFI should succeed: %v", err)
	}
}

func TestNilPageCheck(t *testing.T) {
	src := Source{Name: "nil", GEL: `func main(a) { return ld32(a); }`}
	gNil, err := Load(NativeSafeNil, src, mem.New(memSize), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = gNil.Invoke("main", 8)
	var trap *mem.Trap
	if !errors.As(err, &trap) || trap.Kind != mem.TrapNilDeref {
		t.Fatalf("NIL-page load: err = %v, want NIL trap", err)
	}
	// Plain safe mode reads the NIL page without complaint (hardware would
	// have caught a real NIL, but address 8 is a legal offset here).
	gSafe, err := Load(NativeSafe, src, mem.New(memSize), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gSafe.Invoke("main", 8); err != nil {
		t.Fatalf("safe-mode low load: %v", err)
	}
}

func TestFuelPreemptsRunawayGrafts(t *testing.T) {
	src := Source{
		Name: "spin",
		GEL:  `func main() { while (1) { } return 0; }`,
		Tcl:  `proc main {} { while {1} { } ; return 0 }`,
	}
	for _, id := range []ID{NativeUnsafe, NativeSafe, SFI, Bytecode, Script} {
		if id == Script && src.Tcl == "" {
			continue
		}
		g, err := Load(id, src, mem.New(memSize), Options{Fuel: 10000})
		if err != nil {
			t.Fatalf("load %s: %v", id, err)
		}
		_, err = g.Invoke("main")
		var trap *mem.Trap
		if !errors.As(err, &trap) || trap.Kind != mem.TrapFuel {
			t.Errorf("%s: err = %v, want fuel trap", id, err)
		}
	}
}

func TestAbortSurfacesCode(t *testing.T) {
	src := Source{
		Name: "abort",
		GEL:  `func main(c) { abort(c); return 0; }`,
		Tcl:  `proc main {c} { abort $c; return 0 }`,
	}
	for id, g := range loadAll(t, src) {
		_, err := g.Invoke("main", 77)
		var trap *mem.Trap
		if !errors.As(err, &trap) || trap.Kind != mem.TrapAbort || trap.Code != 77 {
			t.Errorf("%s: err = %v, want abort(77)", id, err)
		}
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	src := Source{
		Name: "div0",
		GEL:  `func main(a) { return 10 / a; }`,
	}
	for _, id := range []ID{NativeUnsafe, NativeSafe, SFI, Bytecode} {
		g, err := Load(id, src, mem.New(memSize), Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = g.Invoke("main", 0)
		var trap *mem.Trap
		if !errors.As(err, &trap) || trap.Kind != mem.TrapDivZero {
			t.Errorf("%s: err = %v, want div-zero trap", id, err)
		}
		if v, err := g.Invoke("main", 5); err != nil || v != 2 {
			t.Errorf("%s: 10/5 = %d, %v", id, v, err)
		}
	}
}

func TestDeepRecursionTraps(t *testing.T) {
	src := Source{
		Name: "deep",
		GEL:  `func f(n) { return f(n + 1); } func main() { return f(0); }`,
		Tcl:  `proc f {n} { return [f [expr {$n + 1}]] } ; proc main {} { return [f 0] }`,
	}
	for id, g := range loadAll(t, src) {
		_, err := g.Invoke("main")
		var trap *mem.Trap
		if !errors.As(err, &trap) || trap.Kind != mem.TrapStackOverflow {
			t.Errorf("%s: err = %v, want stack-overflow trap", id, err)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("no-such-tech", Source{GEL: "func main() {}"}, mem.New(memSize), Options{}); err == nil {
		t.Error("unknown technology should fail")
	}
	if _, err := Load(CompiledUnsafe, Source{Name: "x", GEL: "func main() {}"}, mem.New(memSize), Options{}); err == nil {
		t.Error("compiled load without implementation should fail")
	}
	if _, err := Load(Script, Source{Name: "x", GEL: "func main() {}"}, mem.New(memSize), Options{}); err == nil {
		t.Error("script load without Tcl source should fail")
	}
	if _, err := Load(NativeUnsafe, Source{GEL: "not gel"}, mem.New(memSize), Options{}); err == nil {
		t.Error("bad GEL should fail")
	}
	g, _ := Load(NativeUnsafe, Source{GEL: "func main() { return 1; }"}, mem.New(memSize), Options{})
	if _, err := g.Invoke("nope"); err == nil {
		t.Error("unknown entry should fail")
	}
	if _, err := g.Invoke("main", 1, 2, 3); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestPaperNamesAndConfigs(t *testing.T) {
	for _, id := range All {
		if PaperName(id) == string(id) {
			t.Errorf("%s has no paper name", id)
		}
		if _, err := Config(id); err != nil {
			t.Errorf("Config(%s): %v", id, err)
		}
	}
	if _, err := Config("bogus"); err == nil {
		t.Error("Config(bogus) should fail")
	}
}
