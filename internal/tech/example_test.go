package tech_test

import (
	"fmt"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// Example shows the core workflow: write a graft once, load it under
// different extension technologies, invoke it identically.
func Example() {
	src := tech.Source{
		Name: "triple",
		GEL:  `func main(n) { return n * 3; }`,
		Tcl:  `proc main {n} { return [expr {$n * 3}] }`,
	}
	for _, id := range []tech.ID{tech.NativeUnsafe, tech.Bytecode, tech.Script} {
		g, err := tech.Load(id, src, mem.New(4096), tech.Options{})
		if err != nil {
			fmt.Println(err)
			return
		}
		v, err := g.Invoke("main", 14)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: %d\n", id, v)
	}
	// Output:
	// native-unsafe: 42
	// bytecode: 42
	// script: 42
}

// ExampleLoad_trap shows that a faulting graft surfaces a recoverable
// trap instead of crashing the host.
func ExampleLoad_trap() {
	src := tech.Source{
		Name: "wild",
		GEL:  `func main() { return ld32(0x40000000); }`,
	}
	g, err := tech.Load(tech.NativeSafe, src, mem.New(4096), tech.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	_, err = g.Invoke("main")
	fmt.Println(err)
	// Output:
	// graft trap: out-of-bounds load at address 0x40000000
}

// ExampleOptions_fuel shows preemption of a runaway graft.
func ExampleOptions_fuel() {
	src := tech.Source{
		Name: "spin",
		GEL:  `func main() { while (1) { } return 0; }`,
	}
	g, err := tech.Load(tech.Bytecode, src, mem.New(4096), tech.Options{Fuel: 1000})
	if err != nil {
		fmt.Println(err)
		return
	}
	_, err = g.Invoke("main")
	fmt.Println(err)
	// Output:
	// graft trap: fuel exhausted
}
