package tech

import (
	"fmt"
	"sync"
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// stressSrc is a small dual program that exercises arithmetic, control
// flow, and memory traffic. Every location it reads it has already
// written in the same invocation, so its result is a pure function of
// its arguments — the property that lets pooled instances (whose linear
// memories deliberately carry state across checkouts) be checked
// against a single-threaded oracle.
var stressSrc = Source{
	Name: "stress-prog",
	GEL: `func main(a, b, c) {
	var i = 0;
	var acc = a;
	while (i < 8) {
		st32(4096 + i * 4, acc + b);
		acc = (acc + ld32(4096 + i * 4)) ^ c;
		i = i + 1;
	}
	return acc;
}`,
	Tcl: `proc main {a b c} {
	set i 0
	set acc $a
	while {$i < 8} {
		st32 [expr {4096 + $i * 4}] [expr {$acc + $b}]
		set acc [expr {($acc + [ld32 [expr {4096 + $i * 4}]]) ^ $c}]
		incr i
	}
	return $acc
}`,
}

// stressIDs is every registry technology a pool can carry an arbitrary
// dual program under (the Compiled*/Domain classes need hand-written
// implementations and are stressed through the conformance suite's
// pooled matrix instead).
var stressIDs = []ID{
	NativeUnsafe, NativeSafe, NativeSafeNil, SFI, SFIFull, Bytecode, Script,
}

func stressScale(t *testing.T) (workers, iters int) {
	if testing.Short() {
		return 4, 15
	}
	return 8, 60
}

// TestStressPoolInvoke hammers Pool.Invoke (checkout per call) from
// many goroutines and requires every result to match the
// single-threaded oracle.
func TestStressPoolInvoke(t *testing.T) {
	workers, iters := stressScale(t)
	args := []uint32{7, 9, 0x5a5a}
	for _, id := range stressIDs {
		id := id
		t.Run(string(id), func(t *testing.T) {
			g, err := Load(id, stressSrc, mem.New(memSize), Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := g.Invoke("main", args...)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := NewPool(id, stressSrc, Options{}, PoolConfig{MemSize: memSize})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						v, err := pool.Invoke("main", args...)
						if err != nil {
							errs[w] = fmt.Errorf("iter %d: %v", i, err)
							return
						}
						if v != want {
							errs[w] = fmt.Errorf("iter %d: got %d, oracle %d", i, v, want)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestStressPoolCheckout is the per-worker-checkout form: each worker
// holds one instance for its whole loop and calls through the resolved
// direct path, the way bench and kernel hook points do.
func TestStressPoolCheckout(t *testing.T) {
	workers, iters := stressScale(t)
	args := []uint32{101, 13, 0x33}
	for _, id := range stressIDs {
		id := id
		t.Run(string(id), func(t *testing.T) {
			g, err := Load(id, stressSrc, mem.New(memSize), Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := g.Invoke("main", args...)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := NewPool(id, stressSrc, Options{}, PoolConfig{MemSize: memSize})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					it, err := pool.Get()
					if err != nil {
						errs[w] = err
						return
					}
					defer pool.Put(it)
					call := ResolveDirect(it.Graft, "main")
					buf := append([]uint32(nil), args...)
					for i := 0; i < iters; i++ {
						v, err := call(buf)
						if err != nil {
							errs[w] = fmt.Errorf("iter %d: %v", i, err)
							return
						}
						if v != want {
							errs[w] = fmt.Errorf("iter %d: got %d, oracle %d", i, v, want)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestStressPoolTelemetry runs a pool with telemetry enabled: the
// deterministic held-checkout phase pins that batched counters flush
// (one wrapper, 600 calls, mask 255 => at least 512 counted), and the
// concurrent phase puts the per-instance-wrapper claim under the race
// detector — every pooled instance must own its batch state exclusively.
func TestStressPoolTelemetry(t *testing.T) {
	telemetry.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(false)
		telemetry.ResetMetrics()
	})
	pool, err := NewPool(NativeUnsafe, stressSrc, Options{}, PoolConfig{MemSize: memSize})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	it, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	const held = 600
	for i := 0; i < held; i++ {
		if _, err := it.Invoke("main", 1, 2, 3); err != nil {
			t.Fatal(err)
		}
	}
	pool.Put(it)
	met := telemetry.Register(stressSrc.Name, string(NativeUnsafe))
	if got := met.Invocations(); got < 512 || got > held {
		t.Fatalf("held checkout: %d invocations recorded, want 512..%d", got, held)
	}

	workers, iters := stressScale(t)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := pool.Invoke("main", uint32(w), uint32(i), 5); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, ceil := met.Invocations(), uint64(held+workers*iters); got > ceil {
		t.Fatalf("recorded %d invocations, more than the %d performed", got, ceil)
	}
}
