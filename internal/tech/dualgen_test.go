package tech

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"graftlab/internal/mem"
)

// The dual generator builds one random program AST and renders it in both
// GEL and mini-Tcl, so the script interpreter is differentially tested
// against every other backend on the same computation — the cross-
// language analogue of TestRandomProgramsAgree.

type dExpr interface {
	gel() string
	tcl() string
}

type dNum uint32

func (n dNum) gel() string { return fmt.Sprintf("%d", uint32(n)) }
func (n dNum) tcl() string { return fmt.Sprintf("%d", uint32(n)) }

type dVar string

func (v dVar) gel() string { return string(v) }
func (v dVar) tcl() string { return "$" + string(v) }

type dBin struct {
	op   string
	x, y dExpr
}

func (b dBin) gel() string { return "((" + b.x.gel() + ") " + b.op + " (" + b.y.gel() + "))" }
func (b dBin) tcl() string { return "((" + b.x.tcl() + ") " + b.op + " (" + b.y.tcl() + "))" }

type dUn struct {
	op string
	x  dExpr
}

func (u dUn) gel() string { return u.op + "(" + u.x.gel() + ")" }
func (u dUn) tcl() string { return u.op + "(" + u.x.tcl() + ")" }

// dLd32 loads from a bounded address derived from its operand.
type dLd32 struct{ addr dExpr }

func (l dLd32) gel() string {
	return "ld32(((" + l.addr.gel() + ") % 15360 + 1024) * 4)"
}
func (l dLd32) tcl() string {
	return "[ld32 [expr {((" + l.addr.tcl() + ") % 15360 + 1024) * 4}]]"
}

type dStmt interface {
	gelStmt(indent string) string
	tclStmt(indent string) string
}

type dAssign struct {
	name string
	val  dExpr
}

func (a dAssign) gelStmt(in string) string {
	return in + a.name + " = " + a.val.gel() + ";\n"
}
func (a dAssign) tclStmt(in string) string {
	return in + "set " + a.name + " [expr {" + a.val.tcl() + "}]\n"
}

type dStore struct {
	addr, val dExpr
}

func (s dStore) gelStmt(in string) string {
	return in + "st32(((" + s.addr.gel() + ") % 15360 + 1024) * 4, " + s.val.gel() + ");\n"
}
func (s dStore) tclStmt(in string) string {
	return in + "st32 [expr {((" + s.addr.tcl() + ") % 15360 + 1024) * 4}] [expr {" + s.val.tcl() + "}]\n"
}

type dIf struct {
	cond      dExpr
	then, els []dStmt
}

func (i dIf) gelStmt(in string) string {
	var b strings.Builder
	b.WriteString(in + "if (" + i.cond.gel() + ") {\n")
	for _, s := range i.then {
		b.WriteString(s.gelStmt(in + "\t"))
	}
	b.WriteString(in + "} else {\n")
	for _, s := range i.els {
		b.WriteString(s.gelStmt(in + "\t"))
	}
	b.WriteString(in + "}\n")
	return b.String()
}
func (i dIf) tclStmt(in string) string {
	var b strings.Builder
	b.WriteString(in + "if {" + i.cond.tcl() + "} {\n")
	for _, s := range i.then {
		b.WriteString(s.tclStmt(in + "\t"))
	}
	b.WriteString(in + "} else {\n")
	for _, s := range i.els {
		b.WriteString(s.tclStmt(in + "\t"))
	}
	b.WriteString(in + "}\n")
	return b.String()
}

// dLoop is a bounded counting loop with a depth-unique counter name.
type dLoop struct {
	counter string
	bound   uint32
	body    []dStmt
}

func (l dLoop) gelStmt(in string) string {
	var b strings.Builder
	b.WriteString(in + "{\n")
	b.WriteString(in + "\tvar " + l.counter + " = 0;\n")
	b.WriteString(fmt.Sprintf("%s\twhile (%s < %d) {\n", in, l.counter, l.bound))
	b.WriteString(in + "\t\t" + l.counter + " = " + l.counter + " + 1;\n")
	for _, s := range l.body {
		b.WriteString(s.gelStmt(in + "\t\t"))
	}
	b.WriteString(in + "\t}\n")
	b.WriteString(in + "}\n")
	return b.String()
}
func (l dLoop) tclStmt(in string) string {
	var b strings.Builder
	b.WriteString(in + "set " + l.counter + " 0\n")
	b.WriteString(fmt.Sprintf("%swhile {$%s < %d} {\n", in, l.counter, l.bound))
	b.WriteString(in + "\tincr " + l.counter + "\n")
	for _, s := range l.body {
		b.WriteString(s.tclStmt(in + "\t"))
	}
	b.WriteString(in + "}\n")
	return b.String()
}

type dualGen struct {
	rng *rand.Rand
}

var dualVars = []string{"x", "y", "z"}

func (g *dualGen) expr(depth int) dExpr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return dNum(g.rng.Uint32() % 100000)
		default:
			return dVar(dualVars[g.rng.Intn(len(dualVars))])
		}
	}
	switch g.rng.Intn(12) {
	case 0:
		return dUn{op: []string{"!", "~", "-"}[g.rng.Intn(3)], x: g.expr(depth - 1)}
	case 1:
		return dLd32{addr: g.expr(depth - 1)}
	default:
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
			"==", "!=", "<", "<=", ">", ">=", "&&", "||"}
		return dBin{op: ops[g.rng.Intn(len(ops))], x: g.expr(depth - 1), y: g.expr(depth - 1)}
	}
}

func (g *dualGen) stmts(n, depth int) []dStmt {
	out := make([]dStmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

func (g *dualGen) stmt(depth int) dStmt {
	switch r := g.rng.Intn(8); {
	case r < 4:
		return dAssign{name: dualVars[g.rng.Intn(len(dualVars))], val: g.expr(2)}
	case r < 5:
		return dStore{addr: g.expr(1), val: g.expr(2)}
	case r < 7 && depth > 0:
		return dIf{cond: g.expr(1), then: g.stmts(2, depth-1), els: g.stmts(1, depth-1)}
	case depth > 0:
		return dLoop{
			counter: fmt.Sprintf("i%d", depth),
			bound:   g.rng.Uint32()%6 + 1,
			body:    g.stmts(1, depth-1),
		}
	default:
		return dAssign{name: "x", val: g.expr(1)}
	}
}

func (g *dualGen) program() (gelSrc, tclSrc string) {
	body := g.stmts(5, 2)
	var gb, tb strings.Builder
	gb.WriteString("func main(a, b, c) {\n\tvar x = a;\n\tvar y = b;\n\tvar z = c;\n")
	tb.WriteString("proc main {a b c} {\n\tset x $a\n\tset y $b\n\tset z $c\n")
	for _, s := range body {
		gb.WriteString(s.gelStmt("\t"))
		tb.WriteString(s.tclStmt("\t"))
	}
	gb.WriteString("\treturn x ^ y + z;\n}\n")
	tb.WriteString("\treturn [expr {$x ^ $y + $z}]\n}\n")
	return gb.String(), tb.String()
}

// TestScriptAgreesWithGELOnRandomPrograms renders each random program in
// both languages and requires identical results and memory side effects
// under native-unsafe (GEL) and script (Tcl).
func TestScriptAgreesWithGELOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n := 150
	if testing.Short() {
		n = 25
	}
	for i := 0; i < n; i++ {
		g := &dualGen{rng: rng}
		gelSrc, tclSrc := g.program()
		src := Source{Name: fmt.Sprintf("dual-%d", i), GEL: gelSrc, Tcl: tclSrc}
		args := []uint32{rng.Uint32(), rng.Uint32() % 4096, rng.Uint32() % 17}

		mG := mem.New(memSize)
		ref, err := Load(NativeUnsafe, src, mG, Options{Fuel: 1 << 22})
		if err != nil {
			t.Fatalf("program %d: load GEL: %v\n%s", i, err, gelSrc)
		}
		mS := mem.New(memSize)
		scr, err := Load(Script, src, mS, Options{Fuel: 1 << 22})
		if err != nil {
			t.Fatalf("program %d: load Tcl: %v\n%s", i, err, tclSrc)
		}
		mC := mem.New(memSize)
		scrC, err := Load(Script, src, mC, Options{Fuel: 1 << 22, ScriptParseCache: true})
		if err != nil {
			t.Fatalf("program %d: load Tcl (cached): %v\n%s", i, err, tclSrc)
		}

		vG, eG := ref.Invoke("main", args...)
		vS, eS := scr.Invoke("main", args...)
		vC, eC := scrC.Invoke("main", args...)
		if (eG != nil) != (eS != nil) {
			t.Fatalf("program %d: GEL err=%v, Tcl err=%v\nGEL:\n%s\nTcl:\n%s",
				i, eG, eS, gelSrc, tclSrc)
		}
		// The parse cache must be invisible: same result, error, and
		// memory as the per-eval re-parsing interpreter.
		if (eS != nil) != (eC != nil) || vS != vC {
			t.Fatalf("program %d: Tcl=%d (err=%v), cached Tcl=%d (err=%v)\nTcl:\n%s",
				i, vS, eS, vC, eC, tclSrc)
		}
		if string(mS.Data) != string(mC.Data) {
			t.Fatalf("program %d: cached-Tcl memory diverges\nTcl:\n%s", i, tclSrc)
		}
		if eG == nil {
			if vG != vS {
				t.Fatalf("program %d: GEL=%d Tcl=%d args=%v\nGEL:\n%s\nTcl:\n%s",
					i, vG, vS, args, gelSrc, tclSrc)
			}
			if string(mG.Data) != string(mS.Data) {
				t.Fatalf("program %d: memory diverges\nGEL:\n%s\nTcl:\n%s", i, gelSrc, tclSrc)
			}
		}
	}
}
