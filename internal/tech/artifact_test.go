package tech

import (
	"strings"
	"testing"

	"graftlab/internal/mem"
)

func TestSourceDigestDistinguishesRepresentations(t *testing.T) {
	base := Source{Name: "g", GEL: "func f() { return 1; }", Tcl: "proc f {} { return 1 }"}
	d0 := SourceDigest(base)
	if d0 != SourceDigest(base) {
		t.Fatal("digest is not deterministic")
	}
	if len(d0) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(d0))
	}

	gel := base
	gel.GEL = "func f() { return 2; }"
	if SourceDigest(gel) == d0 {
		t.Error("GEL change did not change the digest")
	}
	tcl := base
	tcl.Tcl = "proc f {} { return 2 }"
	if SourceDigest(tcl) == d0 {
		t.Error("Tcl change did not change the digest")
	}
	name := base
	name.Name = "h"
	if SourceDigest(name) == d0 {
		t.Error("name change did not change the digest")
	}
	hip := base
	hip.Hipec = map[string]string{"f": "movi r1, 1\nret r1"}
	if SourceDigest(hip) == d0 {
		t.Error("HiPEC rendering did not change the digest")
	}
	comp := base
	comp.Compiled = func(cfg mem.Config, m *mem.Memory) (Graft, error) { return nil, nil }
	if SourceDigest(comp) == d0 {
		t.Error("compiled presence did not change the digest")
	}
}

func TestSourceDigestFieldBoundaries(t *testing.T) {
	// Length prefixing: content sliding between adjacent fields must not
	// collide.
	a := Source{Name: "ab", GEL: "c"}
	b := Source{Name: "a", GEL: "bc"}
	if SourceDigest(a) == SourceDigest(b) {
		t.Error("field boundary collision between name and GEL")
	}
}

func TestSourceDigestHipecOrderIndependent(t *testing.T) {
	a := Source{Name: "g", Hipec: map[string]string{"x": "1", "y": "2"}}
	b := Source{Name: "g", Hipec: map[string]string{"y": "2", "x": "1"}}
	if SourceDigest(a) != SourceDigest(b) {
		t.Error("HiPEC map iteration order leaked into the digest")
	}
}

func TestArtifactRefAndLoad(t *testing.T) {
	src := Source{Name: "adder", GEL: "func add(a, b) { return a + b; }"}
	a := NewArtifact(src, 3)
	if a.Digest != SourceDigest(src) {
		t.Fatal("NewArtifact did not compute the digest")
	}
	ref := a.Ref()
	if !strings.HasPrefix(ref, "adder@v3 (") || !strings.Contains(ref, a.Digest[:12]) {
		t.Fatalf("Ref() = %q", ref)
	}

	g, err := a.Load(Bytecode, mem.New(1<<10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := g.Invoke("add", 2, 40)
	if err != nil || v != 42 {
		t.Fatalf("add = %d, %v", v, err)
	}
}
