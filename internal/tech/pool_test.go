package tech

import (
	"runtime"
	"sync"
	"testing"

	"graftlab/internal/mem"
)

// poolTrapSrc pairs a pure entry with one that traps mid-invocation
// (division by an argument of zero traps identically on every engine).
var poolTrapSrc = Source{
	Name: "pool-trap",
	GEL: `func ok(a, b) {
	return a * 31 + b;
}
func boom(a) {
	var x = 100 / a;
	return x;
}`,
	Tcl: `proc ok {a b} {
	return [expr {$a * 31 + $b}]
}
proc boom {a} {
	return [expr {100 / $a}]
}`,
}

// TestPoolTrapLeavesInstanceClean pins the recovery contract: a trap
// does not poison a pooled instance. Engines reset their invocation
// state on entry, so the very same instance must keep servicing good
// invocations after arbitrarily many traps.
func TestPoolTrapLeavesInstanceClean(t *testing.T) {
	for _, id := range stressIDs {
		id := id
		t.Run(string(id), func(t *testing.T) {
			pool, err := NewPool(id, poolTrapSrc, Options{}, PoolConfig{MemSize: memSize})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			it, err := pool.Get()
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Put(it)
			for i := uint32(0); i < 10; i++ {
				if _, err := it.Invoke("boom", 0); err == nil {
					t.Fatalf("round %d: division by zero did not trap", i)
				}
				v, err := it.Invoke("ok", i, 7)
				if err != nil {
					t.Fatalf("round %d: instance poisoned after trap: %v", i, err)
				}
				if want := i*31 + 7; v != want {
					t.Fatalf("round %d: got %d, want %d", i, v, want)
				}
			}
		})
	}
}

// TestPoolConcurrentTrapMix drives traps and successes concurrently
// through the pool — the recovery contract under contention, with the
// race detector watching.
func TestPoolConcurrentTrapMix(t *testing.T) {
	workers, iters := stressScale(t)
	pool, err := NewPool(Bytecode, poolTrapSrc, Options{}, PoolConfig{MemSize: memSize})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%3 == 0 {
					if _, err := pool.Invoke("boom", 0); err == nil {
						errs[w] = errMissingTrap
						return
					}
					continue
				}
				v, err := pool.Invoke("ok", uint32(i), 1)
				if err != nil {
					errs[w] = err
					return
				}
				if v != uint32(i)*31+1 {
					errs[w] = errWrongValue
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var (
	errMissingTrap = poolTestError("expected trap did not occur")
	errWrongValue  = poolTestError("wrong value from pooled invocation")
)

type poolTestError string

func (e poolTestError) Error() string { return string(e) }

// TestPoolGOMAXPROCS1 pins that the pool needs no parallelism to be
// correct: with a single P, goroutines interleave by preemption only,
// and every invocation must still match.
func TestPoolGOMAXPROCS1(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	pool, err := NewPool(NativeSafe, stressSrc, Options{}, PoolConfig{MemSize: memSize})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	g, err := Load(NativeSafe, stressSrc, mem.New(memSize), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Invoke("main", 3, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v, err := pool.Invoke("main", 3, 5, 7)
				if err != nil {
					errs[w] = err
					return
				}
				if v != want {
					errs[w] = errWrongValue
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// poolScriptSrc exercises interpreter-level state: g is a Tcl global,
// which persists across invocations WITHIN one instance (it is the
// script engine's analogue of extension state) but must never be
// visible from another pooled instance.
var poolScriptSrc = Source{
	Name: "pool-globals",
	Tcl: `proc setg {v} {
	global g
	set g $v
	return 0
}
proc getg {} {
	global g
	return $g
}`,
}

// TestPoolScriptVariableIsolation pins that pooled script interpreters
// do not leak variables into each other: each instance owns a private
// interpreter, so a global set through one checkout is invisible to
// another instance.
func TestPoolScriptVariableIsolation(t *testing.T) {
	pool, err := NewPool(Script, poolScriptSrc, Options{}, PoolConfig{MemSize: memSize})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed out the same instance twice")
	}
	if _, err := a.Invoke("setg", 42); err != nil {
		t.Fatal(err)
	}
	v, err := a.Invoke("getg")
	if err != nil || v != 42 {
		t.Fatalf("instance A lost its own global: v=%d err=%v", v, err)
	}
	if _, err := b.Invoke("getg"); err == nil {
		t.Fatal("global leaked between pooled script interpreters")
	}
	pool.Put(a)
	pool.Put(b)
}

// TestPoolWrapLifecycle pins the Wrap hook: every instance is wrapped
// exactly once, and Close closes every wrapper ever created — including
// instances sync.Pool may long since have dropped.
func TestPoolWrapLifecycle(t *testing.T) {
	var mu sync.Mutex
	wrapped, closed := 0, 0
	cfg := PoolConfig{
		MemSize: memSize,
		Wrap: func(g Graft) (Graft, func()) {
			mu.Lock()
			wrapped++
			mu.Unlock()
			return g, func() { mu.Lock(); closed++; mu.Unlock() }
		},
	}
	pool, err := NewPool(NativeSafe, stressSrc, Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pool.Get()
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(a)
	pool.Put(b)
	created := pool.Created()
	pool.Close()
	mu.Lock()
	defer mu.Unlock()
	if wrapped != created {
		t.Fatalf("wrapped %d instances, created %d", wrapped, created)
	}
	if closed != created {
		t.Fatalf("Close closed %d of %d wrappers", closed, created)
	}
	if _, err := pool.Get(); err == nil {
		t.Fatal("Get after Close succeeded")
	}
	pool.Close() // idempotent
}

// TestPoolValidation pins eager validation: a bad program or a missing
// memory size fails at NewPool, not at first Get.
func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(NativeSafe, stressSrc, Options{}, PoolConfig{}); err == nil {
		t.Fatal("pool without MemSize accepted")
	}
	bad := Source{Name: "bad", GEL: "func main( {"}
	if _, err := NewPool(NativeSafe, bad, Options{}, PoolConfig{MemSize: memSize}); err == nil {
		t.Fatal("unparseable program accepted")
	}
	if _, err := NewPool(Bytecode, bad, Options{}, PoolConfig{MemSize: memSize}); err == nil {
		t.Fatal("unparseable program accepted by bytecode pool")
	}
	failing := PoolConfig{
		MemSize: memSize,
		Setup:   func(m *mem.Memory) error { return poolTestError("setup failed") },
	}
	if _, err := NewPool(NativeSafe, stressSrc, Options{}, failing); err == nil {
		t.Fatal("failing Setup accepted")
	}
}
