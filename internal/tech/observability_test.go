package tech

import (
	"errors"
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

func withSpans(t *testing.T) *telemetry.SpanTrace {
	t.Helper()
	st := telemetry.EnableSpans(1 << 10)
	if err := telemetry.SetSpanSampleEvery(1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		telemetry.DisableSpans()
		_ = telemetry.SetSpanSampleEvery(64)
	})
	return st
}

// InvokeSpan through an instrumented engine must record an "engine"
// child under the caller's span and still produce the right result.
func TestInstrumentedInvokeSpan(t *testing.T) {
	withTelemetry(t)
	st := withSpans(t)

	g, err := Load(Bytecode, instSrc, mem.New(memSize), Options{Fuel: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	root := telemetry.RootSpan("test:root", "test")
	if !root.Active() {
		t.Fatal("root span inactive")
	}
	v, err := InvokeSpan(g, root.Ctx(), "main", 10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 45 {
		t.Fatalf("got %d, want 45", v)
	}
	root.End(0, 0)

	var engine *telemetry.SpanRecord
	for _, s := range st.Spans() {
		if s.Cat == "engine" {
			s := s
			engine = &s
		}
	}
	if engine == nil {
		t.Fatalf("no engine span recorded: %+v", st.Spans())
	}
	if engine.Parent != root.ID() {
		t.Errorf("engine span parent = %d, want root %d", engine.Parent, root.ID())
	}
	if engine.Name != "engine:bytecode" {
		t.Errorf("engine span name = %q", engine.Name)
	}
	if engine.A == 0 {
		t.Error("engine span did not record fuel used")
	}
}

// An inactive context must fall straight through to Invoke with no
// span recorded.
func TestInvokeSpanInactiveContext(t *testing.T) {
	withTelemetry(t)
	st := withSpans(t)

	g, err := Load(Bytecode, instSrc, mem.New(memSize), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InvokeSpan(g, telemetry.SpanCtx{}, "main", 10); err != nil {
		t.Fatal(err)
	}
	for _, s := range st.Spans() {
		if s.Cat == "engine" {
			t.Fatalf("engine span recorded under inactive context: %+v", s)
		}
	}
}

// A quarantined pair is denied at Load and, for live wrappers, at the
// next sampling point; lifting the quarantine restores service.
func TestQuarantineDeniesDispatch(t *testing.T) {
	withTelemetry(t)
	t.Cleanup(telemetry.ClearQuarantines)

	g, err := Load(Bytecode, instSrc, mem.New(memSize), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("main", 5); err != nil {
		t.Fatal(err)
	}

	telemetry.Register(instSrc.Name, string(Bytecode)).Quarantine()

	// Load-time denial.
	if _, err := Load(Bytecode, instSrc, mem.New(memSize), Options{}); !errors.Is(err, telemetry.ErrQuarantined) {
		t.Fatalf("Load of quarantined pair: %v", err)
	}
	// Live-wrapper denial: with sample interval 1 every call is a
	// sampling point, so the cached verdict refreshes immediately.
	if _, err := g.Invoke("main", 5); err == nil {
		// First call may still run (verdict refreshes at the sampling
		// point it passes through); the next must be denied.
		if _, err2 := g.Invoke("main", 5); !errors.Is(err2, telemetry.ErrQuarantined) {
			t.Fatalf("live wrapper not denied after quarantine: %v", err2)
		}
	}

	// Direct closures share the denial.
	call := ResolveDirect(g, "main")
	if _, err := call([]uint32{5}); err == nil {
		if _, err2 := call([]uint32{5}); !errors.Is(err2, telemetry.ErrQuarantined) {
			t.Fatalf("direct path not denied after quarantine: %v", err2)
		}
	}

	telemetry.ClearQuarantines()
	// Denial is cached until the next sampling point; one call may fail
	// before service resumes.
	var v uint32
	for i := 0; i < 3; i++ {
		if v, err = g.Invoke("main", 10); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("service not restored after ClearQuarantines: %v", err)
	}
	if v != 45 {
		t.Fatalf("got %d, want 45", v)
	}
	if _, err := Load(Bytecode, instSrc, mem.New(memSize), Options{}); err != nil {
		t.Fatalf("Load after ClearQuarantines: %v", err)
	}
}
