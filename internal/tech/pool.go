package tech

import (
	"fmt"
	"sync"
	"sync/atomic"

	"graftlab/internal/bytecode"
	"graftlab/internal/compile"
	"graftlab/internal/gel"
	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// Pool hands out reusable graft instances so one loaded extension can be
// invoked from many goroutines at once. Every engine in the registry
// keeps per-invocation state (VM frames, the codegen locals arena, the
// script interpreter's variable stack), so a single Graft is safe for
// one goroutine at a time; the pool is the concurrency layer on top:
// each instance owns a private linear memory and a private engine, and
// the load-time artifacts that ARE immutable — the parsed GEL program,
// the verified bytecode module — are built once and shared by every
// instance. This mirrors how production extension runtimes go multicore:
// eBPF runs the same verified program on every CPU with per-CPU maps for
// the mutable state; here the per-CPU state is the instance.
//
// Get/Put are sync.Pool-backed, so idle instances are dropped under
// memory pressure and re-created on demand; Close tears down every
// instance ever created (required for the wrapped/domain-per-worker
// mode, whose instances own goroutines).
type Pool struct {
	id   ID
	src  Source
	opts Options
	cfg  PoolConfig

	// Shared immutable load-time artifacts (see newInstance).
	prog *gel.Program
	mod  *bytecode.Module

	instrument bool // captured at NewPool time, like Load

	free sync.Pool

	// closed is atomic so Get's fast path (a free-list hit) can refuse
	// checkouts after Close without taking mu.
	closed atomic.Bool

	mu      sync.Mutex
	all     []*Instance // every instance ever created, for Close
	created int
}

// PoolConfig sizes and initializes the per-instance state.
type PoolConfig struct {
	// MemSize is the byte size of each instance's linear memory
	// (power of two, >= 8).
	MemSize uint32
	// Setup, if non-nil, initializes a freshly allocated instance memory
	// (hot lists, constant tables, map regions) before the engine loads.
	// It runs once per instance, from whichever goroutine first needed
	// the instance; it must only touch the memory it is given.
	Setup func(m *mem.Memory) error
	// Wrap, if non-nil, wraps each instance's engine after loading —
	// the domain-per-worker mode: upcall.PoolWrapper gives every pooled
	// instance its own user-level server so concurrent workers never
	// serialize on one protection-domain channel. The returned closer
	// (may be nil) is called by Pool.Close.
	Wrap func(g Graft) (Graft, func())
}

// Instance is one pooled graft: a private engine over a private linear
// memory. It implements Graft; use it from one goroutine at a time and
// return it with Pool.Put when done. A trap does not poison an instance:
// every engine resets its invocation state on entry, so a trapped
// instance is reusable as-is (the linear memory keeps whatever the
// faulting invocation wrote, exactly like a real extension's state).
type Instance struct {
	Graft
	mem   *mem.Memory
	close func()
}

// Memory returns the instance's private linear memory.
func (it *Instance) Memory() *mem.Memory { return it.mem }

// NewPool validates the source under the technology by building one
// instance eagerly (so a bad program fails at pool construction, not
// first Get) and returns the pool. Like Load, the telemetry decision is
// made once here: instances created while telemetry is enabled are
// instrumented, each with its own single-writer batch counter flushing
// into the shared per-(graft,technology) accumulator.
func NewPool(id ID, src Source, opts Options, cfg PoolConfig) (*Pool, error) {
	if cfg.MemSize == 0 {
		return nil, fmt.Errorf("tech: pool for %q needs a MemSize", src.Name)
	}
	p := &Pool{id: id, src: src, opts: opts, cfg: cfg, instrument: !telemetry.Disabled()}

	// Build the shared immutable artifacts once. native.Compile and the
	// VM constructors only read these, so concurrent instance creation
	// is safe.
	switch id {
	case NativeUnsafe, NativeSafe, NativeSafeNil, SFI, SFIFull, Bytecode, AOT:
		prog, err := gel.ParseAndCheck(src.GEL)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", id, err)
		}
		if opts.Optimize {
			gel.Fold(prog)
		}
		p.prog = prog
		if id == Bytecode || id == AOT {
			mod, err := compile.Compile(prog)
			if err != nil {
				return nil, fmt.Errorf("tech %s: %w", id, err)
			}
			if id == Bytecode {
				if _, err := ParseVMMode(string(opts.VM)); err != nil {
					return nil, err
				}
			}
			p.mod = mod
		}
	}

	first, err := p.newInstance()
	if err != nil {
		return nil, err
	}
	p.free.Put(first)
	return p, nil
}

// newInstance builds one fresh instance from the shared artifacts.
func (p *Pool) newInstance() (*Instance, error) {
	m := mem.New(p.cfg.MemSize)
	if p.cfg.Setup != nil {
		if err := p.cfg.Setup(m); err != nil {
			return nil, fmt.Errorf("tech: pool setup for %q: %w", p.src.Name, err)
		}
	}
	g, err := p.loadEngine(m)
	if err != nil {
		return nil, err
	}
	attachProfile(g, p.src.Name, p.id)
	it := &Instance{mem: m}
	if p.cfg.Wrap != nil {
		g, it.close = p.cfg.Wrap(g)
	}
	if p.instrument {
		g = instrument(g, p.src.Name, p.id, p.opts.Fuel > 0)
	}
	it.Graft = g

	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		if it.close != nil {
			it.close()
		}
		return nil, fmt.Errorf("tech: pool for %q is closed", p.src.Name)
	}
	p.all = append(p.all, it)
	p.created++
	p.mu.Unlock()
	return it, nil
}

// loadEngine binds a private engine to m, reusing the shared parsed
// program / compiled module where the class has one. The per-class
// branches intentionally mirror load(): the Compiled*, Script, and
// Domain classes have per-instance load costs by nature (a constructor
// call, a source re-parse, a 20-instruction assembly), while the
// codegen and bytecode classes share their expensive front-end work.
func (p *Pool) loadEngine(m *mem.Memory) (Graft, error) {
	switch p.id {
	case NativeUnsafe, NativeSafe, NativeSafeNil, SFI, SFIFull:
		cfg, err := Config(p.id)
		if err != nil {
			return nil, err
		}
		np, err := nativeCompile(p.prog, m, cfg)
		if err != nil {
			return nil, fmt.Errorf("tech %s: %w", p.id, err)
		}
		np.Fuel = p.opts.Fuel
		return np, nil
	case Bytecode:
		cfg, err := Config(p.id)
		if err != nil {
			return nil, err
		}
		return newVMEngine(p.mod, m, cfg, p.opts)
	case AOT:
		cfg, err := Config(p.id)
		if err != nil {
			return nil, err
		}
		return newAOTEngine(p.mod, m, cfg, p.opts)
	default:
		return load(p.id, p.src, m, p.opts)
	}
}

// Get returns an idle instance, creating one if the pool is empty.
// After Close, Get fails even when the free list still holds instances.
func (p *Pool) Get() (*Instance, error) {
	if p.closed.Load() {
		return nil, fmt.Errorf("tech: pool for %q is closed", p.src.Name)
	}
	if it, ok := p.free.Get().(*Instance); ok {
		return it, nil
	}
	return p.newInstance()
}

// Put returns an instance to the pool. Instances must not be used after
// Put. The instance's memory is NOT cleared: like a real extension's
// state, it carries over to the next invocation — callers that need a
// pristine memory per checkout reinitialize via their Setup conventions.
func (p *Pool) Put(it *Instance) {
	if it == nil {
		return
	}
	p.free.Put(it)
}

// Invoke checks out an instance, invokes entry on it, and returns it:
// the convenience path for callers without a per-worker checkout. When
// span tracing is enabled the checkout is recorded as a "pool" root
// span with the engine invocation nested inside it.
func (p *Pool) Invoke(entry string, args ...uint32) (uint32, error) {
	sp := telemetry.RootSpan("pool:"+p.src.Name, "pool")
	it, err := p.Get()
	if err != nil {
		if sp.Active() {
			sp.End(0, 1)
		}
		return 0, err
	}
	var v uint32
	if sp.Active() {
		v, err = InvokeSpan(it.Graft, sp.Ctx(), entry, args...)
		var errBit uint64
		if err != nil {
			errBit = 1
		}
		sp.End(uint64(len(args)), errBit)
	} else {
		v, err = it.Graft.Invoke(entry, args...)
	}
	p.Put(it)
	return v, err
}

// Created reports how many instances the pool has ever built (a
// steady-state concurrent workload should see this plateau near its
// worker count).
func (p *Pool) Created() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// Close tears down every instance the pool ever created — in the
// wrapped (domain-per-worker) mode each instance owns a server
// goroutine, and sync.Pool alone would leak any it drops. Get after
// Close fails; instances already checked out remain usable until Put,
// but their wrappers are closed, so domain-backed invocations will
// return errors.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		return
	}
	p.closed.Store(true)
	all := p.all
	p.all = nil
	p.mu.Unlock()
	for _, it := range all {
		if it.close != nil {
			it.close()
		}
	}
}
