package tech

import (
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// instSrc loops a configurable number of times so fuel metering has
// something to count, and can be driven out of bounds for a trap.
var instSrc = Source{
	Name: "inst-test",
	GEL: `
func main(n) {
	var i = 0;
	var acc = 0;
	while (i < n) {
		acc = acc + i;
		i = i + 1;
	}
	return acc;
}
func oob() { return ld32(0x7FFFFFF0); }
`,
}

func withTelemetry(t *testing.T) {
	t.Helper()
	telemetry.ResetMetrics()
	telemetry.SetSampleInterval(1)
	telemetry.SetEnabled(true)
	t.Cleanup(func() {
		telemetry.SetEnabled(false)
		telemetry.SetSampleInterval(256)
		telemetry.ResetMetrics()
	})
}

func metricsFor(t *testing.T, graft, id string) telemetry.GraftSnapshot {
	t.Helper()
	for _, s := range telemetry.SnapshotAll() {
		if s.Graft == graft && s.Tech == id {
			return s
		}
	}
	t.Fatalf("no metrics recorded for %s/%s", graft, id)
	return telemetry.GraftSnapshot{}
}

func TestLoadUninstrumentedWhileDisabled(t *testing.T) {
	telemetry.ResetMetrics()
	g, err := Load(NativeUnsafe, instSrc, mem.New(1<<16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.(*instrumented); ok {
		t.Fatal("Load must return a raw graft while telemetry is disabled")
	}
	if _, err := g.Invoke("main", 3); err != nil {
		t.Fatal(err)
	}
	if n := len(telemetry.SnapshotAll()); n != 0 {
		t.Fatalf("disabled telemetry recorded %d snapshots", n)
	}
}

func TestInstrumentedInvocationMetrics(t *testing.T) {
	withTelemetry(t)
	for _, id := range []ID{NativeUnsafe, Bytecode, Script} {
		g, err := Load(id, Source{Name: instSrc.Name, GEL: instSrc.GEL,
			Tcl: "proc main {n} {\n set acc 0\n set i 0\n while {$i < $n} {\n set acc [expr $acc + $i]\n set i [expr $i + 1]\n }\n return $acc\n }"},
			mem.New(1<<16), Options{Fuel: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if _, ok := g.(*instrumented); !ok {
			t.Fatalf("%s: Load did not instrument", id)
		}
		// Invoke path + Direct path both count.
		if v, err := g.Invoke("main", 10); err != nil || v != 45 {
			t.Fatalf("%s: invoke = %d, %v", id, v, err)
		}
		call := ResolveDirect(g, "main")
		for i := 0; i < 4; i++ {
			if v, err := call([]uint32{10}); err != nil || v != 45 {
				t.Fatalf("%s: direct = %d, %v", id, v, err)
			}
		}
		s := metricsFor(t, "inst-test", string(id))
		if s.Invocations != 5 {
			t.Errorf("%s: invocations = %d, want 5", id, s.Invocations)
		}
		if s.LatencySamples != 5 {
			t.Errorf("%s: latency samples = %d, want 5 (interval 1)", id, s.LatencySamples)
		}
		if s.LatencyP99 <= 0 || s.LatencyMax < s.LatencyP50 {
			t.Errorf("%s: broken latency stats: %+v", id, s)
		}
		if s.FuelConsumed <= 0 {
			t.Errorf("%s: fuel consumed = %d, want > 0 (metered engine)", id, s.FuelConsumed)
		}
	}
}

func TestInstrumentedTrapClassification(t *testing.T) {
	withTelemetry(t)
	g, err := Load(NativeSafe, instSrc, mem.New(1<<16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("oob"); err == nil {
		t.Fatal("expected an out-of-bounds trap")
	}
	s := metricsFor(t, "inst-test", string(NativeSafe))
	if s.Traps[mem.TrapOOBLoad.String()] != 1 {
		t.Errorf("trap counters = %v, want one %q", s.Traps, mem.TrapOOBLoad)
	}
}

func TestInstrumentedFuelPreemption(t *testing.T) {
	withTelemetry(t)
	g, err := Load(Bytecode, instSrc, mem.New(1<<16), Options{Fuel: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("main", 1000000); err == nil {
		t.Fatal("expected fuel exhaustion")
	}
	s := metricsFor(t, "inst-test", string(Bytecode))
	if s.FuelPreemptions != 1 {
		t.Errorf("fuel preemptions = %d, want 1 (%+v)", s.FuelPreemptions, s)
	}
	if s.FuelConsumed <= 0 || s.FuelConsumed > 16 {
		t.Errorf("fuel consumed = %d, want in (0,16]", s.FuelConsumed)
	}
}

func TestInstrumentedSharedAccumulator(t *testing.T) {
	withTelemetry(t)
	m := mem.New(1 << 16)
	g1, err := Load(NativeUnsafe, instSrc, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Load(NativeUnsafe, instSrc, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g1.Invoke("main", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Invoke("main", 1); err != nil {
		t.Fatal(err)
	}
	s := metricsFor(t, "inst-test", string(NativeUnsafe))
	if s.Invocations != 2 {
		t.Errorf("reloaded graft should share the accumulator: %d invocations, want 2", s.Invocations)
	}
}
