package tech

import (
	"testing"

	"graftlab/internal/mem"
)

var hipecSum = Source{
	Name: "hsum",
	Hipec: map[string]string{
		"main": `
	movi r1, 0
	movi r2, 1
loop:
	jlt r0, r2, done
	add r1, r1, r2
	addi r2, r2, 1
	jmp loop
done:
	ret r1
`,
	},
}

func TestDomainClassLifecycle(t *testing.T) {
	g, err := Load(Domain, hipecSum, mem.New(1<<12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := g.Invoke("main", 100); err != nil || v != 5050 {
		t.Fatalf("Invoke = %d, %v", v, err)
	}
	if _, err := g.Invoke("missing"); err == nil {
		t.Error("missing entry accepted")
	}
	if g.Memory() == nil {
		t.Error("Memory nil")
	}
	dc, ok := g.(DirectCaller)
	if !ok {
		t.Fatal("domain graft is not a DirectCaller")
	}
	fn, ok := dc.Direct("main")
	if !ok {
		t.Fatal("Direct failed")
	}
	if v, err := fn([]uint32{10}); err != nil || v != 55 {
		t.Fatalf("direct = %d, %v", v, err)
	}
	if _, ok := dc.Direct("missing"); ok {
		t.Error("Direct resolved missing entry")
	}
}

func TestDomainClassLoadErrors(t *testing.T) {
	if _, err := Load(Domain, Source{Name: "x", GEL: "func main() {}"}, mem.New(1<<12), Options{}); err == nil {
		t.Error("domain load without Hipec accepted")
	}
	bad := Source{Name: "bad", Hipec: map[string]string{"main": "jmp nowhere"}}
	if _, err := Load(Domain, bad, mem.New(1<<12), Options{}); err == nil {
		t.Error("unassemblable program accepted")
	}
}

func TestDomainClassFuel(t *testing.T) {
	spin := Source{Name: "spin", Hipec: map[string]string{"main": "loop:\njmp loop"}}
	g, err := Load(Domain, spin, mem.New(1<<12), Options{Fuel: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("main"); err == nil {
		t.Fatal("runaway domain graft not preempted")
	}
}

func TestResolveDirectFallback(t *testing.T) {
	// A Graft without DirectCaller uses the generic path.
	g, err := Load(Script, Source{
		Name: "s", Tcl: `proc main {a} { return [expr {$a + 1}] }`,
	}, mem.New(1<<12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn := ResolveDirect(g, "main")
	if v, err := fn([]uint32{41}); err != nil || v != 42 {
		t.Fatalf("fallback = %d, %v", v, err)
	}
	// And a DirectCaller short-circuits.
	g2, err := Load(Domain, hipecSum, mem.New(1<<12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn2 := ResolveDirect(g2, "main")
	if v, err := fn2([]uint32{3}); err != nil || v != 6 {
		t.Fatalf("direct = %d, %v", v, err)
	}
	// Unknown entries degrade to the error-returning generic path.
	fn3 := ResolveDirect(g2, "missing")
	if _, err := fn3(nil); err == nil {
		t.Fatal("missing entry succeeded")
	}
}

func TestMustLoad(t *testing.T) {
	g := MustLoad(NativeUnsafe, Source{Name: "m", GEL: "func main() { return 5; }"}, mem.New(1<<12), Options{})
	if v, _ := g.Invoke("main"); v != 5 {
		t.Fatalf("got %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLoad did not panic on bad source")
		}
	}()
	MustLoad(NativeUnsafe, Source{Name: "bad", GEL: "nope"}, mem.New(1<<12), Options{})
}
