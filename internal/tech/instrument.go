package tech

import (
	"fmt"
	"time"

	"graftlab/internal/mem"
	"graftlab/internal/telemetry"
)

// FuelReporter is the optional engine interface telemetry uses for
// per-invocation fuel accounting: FuelUsed reports the fuel the most
// recent invocation consumed. All four metered engines (both bytecode
// VMs, the runtime codegen, the script interpreter) implement it.
type FuelReporter interface {
	FuelUsed() int64
}

// instrumented wraps a Graft with telemetry: invocations are counted,
// a sampled subset is latency-timed into the histogram, traps are
// classified by kind, and fuel consumption is accumulated for engines
// loaded with a fuel budget. The wrapper preserves the DirectCaller fast
// path — hook points that resolve an entry once get an instrumented
// closure, so the hot loop and the slow path feed the same counters.
//
// Budget discipline (<=2%, measured in BenchmarkAblationTelemetry and
// recorded in docs/observability.md): a locked atomic add per invocation
// alone costs ~6ns — over 2% of a ~250ns compiled graft — so BOTH the
// invocation count and the fuel total are batched in plain local
// counters and flushed to the shared atomics at each sampling point
// (every 256th call by default) and on every error. Each wrapper (and
// each Direct closure it hands out) has exactly one writer: a Graft is
// single-goroutine by contract, and concurrent callers go through
// tech.Pool, where every pooled instance gets its own wrapper flushing
// into the shared per-(graft,technology) accumulator. Under contention
// that leaves one uncontended-in-the-common-case atomic add per 256
// calls — the reason instrumented multicore runs stay inside the same
// <=2% envelope as single-threaded ones. Snapshot readers see counts
// that lag each live call path by at most one sampling interval. The
// unsampled, error-free invocation pays a register increment, a mask
// test, and (metered engines only) one fuel read.
type instrumented struct {
	inner    Graft
	met      *telemetry.GraftMetrics
	fuel     FuelReporter // nil unless the engine is metered
	mask     uint64       // sampling mask, captured at wrap time
	n        uint64       // batched invocation count for the Invoke path
	fuelAcc  int64        // batched fuel for the Invoke path
	spanName string       // "engine:<technology>", precomputed at wrap time
	span     telemetry.SpanCtx
	denied   bool // cached quarantine verdict, refreshed at sampling points
	quarErr  error
}

// Instrument wraps g so its invocations are recorded under the
// (graft, technology) pair. Load applies it automatically while
// telemetry is enabled; tests and tools can wrap explicitly (which
// enables fuel accounting whenever the engine supports it).
func Instrument(g Graft, graft string, id ID) Graft {
	return instrument(g, graft, id, true)
}

func instrument(g Graft, graft string, id ID, metered bool) Graft {
	met := telemetry.Register(graft, string(id))
	ig := &instrumented{inner: g, met: met, mask: met.Mask(), spanName: "engine:" + string(id)}
	ig.quarErr = fmt.Errorf("tech %s: graft %q: %w", id, graft, telemetry.ErrQuarantined)
	if fr, ok := g.(FuelReporter); ok && metered {
		ig.fuel = fr
	}
	return ig
}

// callInner dispatches to the inner graft, routing through its
// InvokeSpan when a causal span context is pending so a pool-worker
// engine (or a wrapped upcall domain) can keep nesting child spans.
func (ig *instrumented) callInner(entry string, args ...uint32) (uint32, error) {
	if ig.span.Active() {
		if si, ok := ig.inner.(SpanInvoker); ok {
			return si.InvokeSpan(ig.span, entry, args...)
		}
	}
	return ig.inner.Invoke(entry, args...)
}

// InvokeSpan implements SpanInvoker: the invocation is recorded as an
// "engine" child span of ctx, and the context is handed further down
// so upcall crossings nest inside the engine span.
func (ig *instrumented) InvokeSpan(ctx telemetry.SpanCtx, entry string, args ...uint32) (uint32, error) {
	sp := telemetry.ChildSpan(ctx, ig.spanName, "engine")
	if !sp.Active() {
		return ig.Invoke(entry, args...)
	}
	ig.span = sp.Ctx()
	v, err := ig.Invoke(entry, args...)
	ig.span = telemetry.SpanCtx{}
	var fuelUsed uint64
	if ig.fuel != nil {
		fuelUsed = uint64(ig.fuel.FuelUsed())
	}
	var errBit uint64
	if err != nil {
		errBit = 1
	}
	sp.End(fuelUsed, errBit)
	return v, err
}

// Invoke implements Graft.
func (ig *instrumented) Invoke(entry string, args ...uint32) (uint32, error) {
	if ig.denied {
		// Denied is already the slow path: re-read the shared flag so a
		// lifted quarantine restores service immediately.
		if ig.met.Quarantined() {
			return 0, ig.quarErr
		}
		ig.denied = false
	}
	ig.n++
	if ig.n&ig.mask == 0 {
		// Sampling point: flush the batched counts, refresh the cached
		// watchdog verdict, and time this call.
		ig.denied = ig.met.Quarantined()
		ig.met.AddInvocations(ig.mask + 1)
		t0 := time.Now()
		v, err := ig.callInner(entry, args...)
		ig.met.RecordLatency(time.Since(t0))
		if ig.fuel != nil {
			ig.met.AddFuel(ig.fuelAcc + ig.fuel.FuelUsed())
			ig.fuelAcc = 0
		}
		if err != nil {
			ig.met.RecordError(err)
		}
		return v, err
	}
	v, err := ig.callInner(entry, args...)
	if ig.fuel != nil {
		ig.fuelAcc += ig.fuel.FuelUsed()
	}
	if err != nil {
		// Errors are already the slow path: flush so trap forensics see
		// exact fuel, then classify.
		if ig.fuel != nil {
			ig.met.AddFuel(ig.fuelAcc)
			ig.fuelAcc = 0
		}
		ig.met.RecordError(err)
	}
	return v, err
}

// Memory implements Graft.
func (ig *instrumented) Memory() *mem.Memory { return ig.inner.Memory() }

// Direct implements DirectCaller: the resolved inner fast path (or the
// Invoke fallback when the engine has none) wrapped with the same
// bookkeeping as Invoke. Each resolved closure batches its own local
// count (one flush per sampling interval); the unmetered closure is
// specialized so the common case skips the fuel interface call.
func (ig *instrumented) Direct(entry string) (func(args []uint32) (uint32, error), bool) {
	fn := ResolveDirect(ig.inner, entry)
	met := ig.met
	fuel := ig.fuel
	mask := ig.mask
	quarErr := ig.quarErr
	var local uint64
	var denied bool
	if fuel == nil {
		return func(args []uint32) (uint32, error) {
			if denied {
				if met.Quarantined() {
					return 0, quarErr
				}
				denied = false
			}
			local++
			if local&mask == 0 {
				denied = met.Quarantined()
				met.AddInvocations(mask + 1)
				t0 := time.Now()
				v, err := fn(args)
				met.RecordLatency(time.Since(t0))
				if err != nil {
					met.RecordError(err)
				}
				return v, err
			}
			v, err := fn(args)
			if err != nil {
				met.RecordError(err)
			}
			return v, err
		}, true
	}
	var fuelAcc int64
	return func(args []uint32) (uint32, error) {
		if denied {
			if met.Quarantined() {
				return 0, quarErr
			}
			denied = false
		}
		local++
		if local&mask == 0 {
			denied = met.Quarantined()
			met.AddInvocations(mask + 1)
			t0 := time.Now()
			v, err := fn(args)
			met.RecordLatency(time.Since(t0))
			met.AddFuel(fuelAcc + fuel.FuelUsed())
			fuelAcc = 0
			if err != nil {
				met.RecordError(err)
			}
			return v, err
		}
		v, err := fn(args)
		fuelAcc += fuel.FuelUsed()
		if err != nil {
			met.AddFuel(fuelAcc)
			fuelAcc = 0
			met.RecordError(err)
		}
		return v, err
	}, true
}
