package tech

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"graftlab/internal/mem"
)

// Artifact is a versioned, content-addressed packaging of a Source —
// the deployable unit of the live graft lifecycle (package lifecycle).
// The paper's technologies load a graft once and run it unchanged
// forever; production extension systems (eBPF's atomic program
// replacement being the canonical example) treat a program as an
// immutable artifact with an identity, so a "new version of the filter"
// is a new artifact, not a mutation of the old one. Version orders a
// graft's deployments; Digest identifies the portable content, so two
// deployments of byte-identical source are recognizably the same
// program even across processes.
type Artifact struct {
	Source  Source
	Version uint64
	// Digest is a hex sha256 over the source's portable representations
	// (see SourceDigest). Computed by NewArtifact; callers constructing
	// Artifact literals should go through NewArtifact instead.
	Digest string
}

// NewArtifact packages src as version v of the graft it names.
func NewArtifact(src Source, v uint64) Artifact {
	return Artifact{Source: src, Version: v, Digest: SourceDigest(src)}
}

// SourceDigest hashes a source's portable representations: the name,
// the GEL and Tcl texts, and the HiPEC programs in entry order. The
// Compiled representation is process-resident Go code — a function
// pointer has no portable bytes — so it contributes only a presence
// marker: two sources that differ solely in their compiled closure hash
// alike, and version numbers (not digests) are what order those.
func SourceDigest(src Source) string {
	h := sha256.New()
	put := func(tag, s string) {
		// Length-prefixed fields so ("ab","c") never collides with ("a","bc").
		fmt.Fprintf(h, "%s:%d:", tag, len(s))
		h.Write([]byte(s))
	}
	put("name", src.Name)
	put("gel", src.GEL)
	put("tcl", src.Tcl)
	if src.Compiled != nil {
		put("compiled", "present")
	}
	entries := make([]string, 0, len(src.Hipec))
	for e := range src.Hipec {
		entries = append(entries, e)
	}
	sort.Strings(entries)
	for _, e := range entries {
		put("hipec/"+e, src.Hipec[e])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Ref renders the artifact's identity the way lifecycle logs print it:
// "pktfilter@v3 (2f1c99ab04d5)".
func (a Artifact) Ref() string {
	d := a.Digest
	if len(d) > 12 {
		d = d[:12]
	}
	return fmt.Sprintf("%s@v%d (%s)", a.Source.Name, a.Version, d)
}

// Load loads this artifact's source under the named technology, bound
// to memory m — the versioned form of the package-level Load.
func (a Artifact) Load(id ID, m *mem.Memory, opts Options) (Graft, error) {
	return Load(id, a.Source, m, opts)
}
