package compile

import (
	"strings"
	"testing"

	"graftlab/internal/bytecode"
	"graftlab/internal/gel"
	"graftlab/internal/mem"
	"graftlab/internal/vm"
)

func run(t *testing.T, src, entry string, args ...uint32) uint32 {
	t.Helper()
	prog, err := gel.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(mod, mem.New(1<<12), mem.Config{Policy: mem.PolicyChecked})
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Invoke(entry, args...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCompileAlwaysVerifies(t *testing.T) {
	sources := []string{
		"func main() {}",
		"func main() { return 1; }",
		"func main(a) { if (a) { return 1; } return 2; }",
		"func main(a) { while (a) { a = a - 1; } return a; }",
		`func main(a) {
			var i = 0;
			while (1) {
				i = i + 1;
				if (i == a) { break; }
				if (i > 100) { break; }
				continue;
			}
			return i;
		}`,
		"func f(x) { return x; } func main() { return f(1) && f(0) || f(1); }",
	}
	for _, src := range sources {
		prog, err := gel.ParseAndCheck(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		mod, err := Compile(prog)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if err := bytecode.Verify(mod); err != nil {
			t.Errorf("%q: generated unverifiable code: %v", src, err)
		}
	}
}

func TestImplicitReturnZero(t *testing.T) {
	if got := run(t, "func main() { var x = 5; x = x; }", "main"); got != 0 {
		t.Fatalf("implicit return = %d", got)
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	src := `
	func bump() { st32(256, ld32(256) + 1); return 1; }
	func main(a) {
		var r = a && bump();
		r = a || bump();
		return ld32(256);
	}`
	// a=0: && short-circuits (no bump), || evaluates bump once => 1.
	if got := run(t, src, "main", 0); got != 1 {
		t.Fatalf("a=0: bumps = %d, want 1", got)
	}
	// a=1: && evaluates bump once, || short-circuits => 1.
	if got := run(t, src, "main", 1); got != 1 {
		t.Fatalf("a=1: bumps = %d, want 1", got)
	}
}

func TestNestedLoopsBreakInnermost(t *testing.T) {
	src := `func main() {
		var total = 0;
		var i = 0;
		while (i < 3) {
			var j = 0;
			while (1) {
				j = j + 1;
				if (j == 4) { break; }
				total = total + 1;
			}
			i = i + 1;
		}
		return total;
	}`
	if got := run(t, src, "main"); got != 9 {
		t.Fatalf("total = %d, want 9", got)
	}
}

func TestContinueReevaluatesCondition(t *testing.T) {
	src := `func main() {
		var i = 0;
		var n = 0;
		while (i < 10) {
			i = i + 1;
			if (i % 2) { continue; }
			n = n + 1;
		}
		return n;
	}`
	if got := run(t, src, "main"); got != 5 {
		t.Fatalf("n = %d", got)
	}
}

func TestUnaryLowering(t *testing.T) {
	cases := []struct {
		expr string
		arg  uint32
		want uint32
	}{
		{"-a", 5, 0xFFFFFFFB},
		{"!a", 0, 1},
		{"!a", 7, 0},
		{"~a", 0, 0xFFFFFFFF},
		{"~a", 0xF0F0F0F0, 0x0F0F0F0F},
	}
	for _, c := range cases {
		src := "func main(a) { return " + c.expr + "; }"
		if got := run(t, src, "main", c.arg); got != c.want {
			t.Errorf("%s with a=%d: got %#x, want %#x", c.expr, c.arg, got, c.want)
		}
	}
}

func TestDisassemblyShowsStructure(t *testing.T) {
	prog, err := gel.ParseAndCheck(`func main(a) { while (a) { a = a - 1; } return a; }`)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	text := bytecode.Disassemble(mod)
	for _, want := range []string{"func main", "jz", "jmp", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly lacks %q:\n%s", want, text)
		}
	}
}

func TestEncodedModuleRoundTripsAndRuns(t *testing.T) {
	prog, err := gel.ParseAndCheck(`func main(a, b) { return a * 10 + b; }`)
	if err != nil {
		t.Fatal(err)
	}
	mod := MustCompile(prog)
	decoded, err := bytecode.Decode(bytecode.Encode(mod))
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(decoded, mem.New(1<<12), mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Invoke("main", 4, 2)
	if err != nil || got != 42 {
		t.Fatalf("decoded module: %d, %v", got, err)
	}
}

func TestLineTableCoversEveryInstruction(t *testing.T) {
	src := `func main(a) {
	var i = 0;
	while (i < a) {
		i = i + 1;
	}
	return i;
}`
	prog, err := gel.ParseAndCheck(src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("main")
	if f == nil {
		t.Fatal("no main")
	}
	if len(f.Lines) != len(f.Code) {
		t.Fatalf("line table has %d entries for %d instructions", len(f.Lines), len(f.Code))
	}
	seen := map[int]bool{}
	for pc := range f.Code {
		line := f.Line(pc)
		if line < 1 || line > 7 {
			t.Errorf("pc %d attributed to line %d, outside source", pc, line)
		}
		seen[line] = true
	}
	// The loop body's increment (line 4) and the return (line 6) must
	// both own instructions.
	for _, want := range []int{2, 4, 6} {
		if !seen[want] {
			t.Errorf("no instruction attributed to line %d (saw %v)", want, seen)
		}
	}
	// Out-of-range PCs resolve to 0, never panic.
	if f.Line(-1) != 0 || f.Line(len(f.Code)+5) != 0 {
		t.Error("out-of-range pc did not resolve to 0")
	}
}

func TestLineTableEmptyBodyUsesDeclLine(t *testing.T) {
	prog, err := gel.ParseAndCheck("func main() {}")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("main")
	if len(f.Lines) != len(f.Code) {
		t.Fatalf("line table has %d entries for %d instructions", len(f.Lines), len(f.Code))
	}
	for pc := range f.Code {
		if f.Line(pc) != 1 {
			t.Errorf("pc %d attributed to line %d, want decl line 1", pc, f.Line(pc))
		}
	}
}
