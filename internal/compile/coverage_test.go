package compile

import (
	"testing"

	"graftlab/internal/gel"
)

// TestEveryConstructLowers compiles a program exercising each statement
// and expression form the lowering handles.
func TestEveryConstructLowers(t *testing.T) {
	got := run(t, `
	func two() { return 2; }
	func main(a, b) {
		var r = 0;
		r = r + rotl(a, 1) + rotr(a, 1) + min(a, b) + max(a, b) + memsize();
		st8(64, a);
		r = r + ld8(64);
		r = r + (a && b) + (a || b) + !a + ~a + -a;
		{ var inner = two(); r = r + inner; }
		while (r > 1000000) { r = r / 2; }
		if (r == 0) { return 1; }
		return r;
	}`, "main", 5, 9)
	if got == 0 {
		t.Fatal("suspicious zero result")
	}
}

func TestReturnWithoutValueLowersToZero(t *testing.T) {
	if got := run(t, `func main() { return; }`, "main"); got != 0 {
		t.Fatalf("bare return = %d", got)
	}
}

func TestAbortLowering(t *testing.T) {
	prog, err := gel.ParseAndCheck(`func main(c) { abort(c); return 9; }`)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	_ = mod // verified by Compile; execution tested in the vm package
}

func TestMustCompilePanicsOnBadAST(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic")
		}
	}()
	// A hand-built AST with an unknown builtin defeats the checker.
	bad := &gel.Program{Funcs: []*gel.FuncDecl{{
		Name: "f",
		Body: &gel.Block{Stmts: []gel.Stmt{
			&gel.ExprStmt{X: &gel.Call{Name: "x", Builtin: gel.BuiltinID(99)}},
		}},
	}}}
	MustCompile(bad)
}
