// Package compile lowers checked GEL programs to bytecode modules for the
// interpreted technology class. The lowering is a direct syntax-directed
// walk: expressions leave exactly one word on the stack, statements leave
// none, and control flow is patched with absolute jump targets.
package compile

import (
	"fmt"

	"graftlab/internal/bytecode"
	"graftlab/internal/gel"
)

// Compile lowers a checked program to a bytecode module. The module is
// verified before being returned, so a Compile result is always loadable.
func Compile(prog *gel.Program) (*bytecode.Module, error) {
	m := &bytecode.Module{}
	for _, fd := range prog.Funcs {
		fc := &funcCompiler{prog: prog}
		if err := fc.compileFunc(fd); err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, fc.out)
	}
	m.Index()
	if err := bytecode.Verify(m); err != nil {
		return nil, fmt.Errorf("compile: generated unverifiable code: %w", err)
	}
	return m, nil
}

// MustCompile compiles a program that is known-good (compiled-in graft
// sources); it panics on error.
func MustCompile(prog *gel.Program) *bytecode.Module {
	m, err := Compile(prog)
	if err != nil {
		panic(err)
	}
	return m
}

type loopCtx struct {
	breakPatches []int // Jmp instructions to patch to loop exit
	continueTo   int   // pc of the loop condition
}

type funcCompiler struct {
	prog  *gel.Program
	out   *bytecode.Func
	loops []loopCtx
	// line is the 1-based source line of the statement/expression being
	// lowered; every emitted instruction is stamped with it, building the
	// debug line table the sampling profiler maps samples through.
	line int32
}

func (c *funcCompiler) emit(op bytecode.Op, a uint32) int {
	c.out.Code = append(c.out.Code, bytecode.Instr{Op: op, A: a})
	c.out.Lines = append(c.out.Lines, c.line)
	return len(c.out.Code) - 1
}

func (c *funcCompiler) patch(pc int, target int) {
	c.out.Code[pc].A = uint32(target)
}

func (c *funcCompiler) here() int { return len(c.out.Code) }

func (c *funcCompiler) compileFunc(fd *gel.FuncDecl) error {
	c.out = &bytecode.Func{
		Name:    fd.Name,
		NArgs:   len(fd.Params),
		NLocals: fd.NLocals,
	}
	c.line = int32(fd.Pos.Line)
	if err := c.block(fd.Body); err != nil {
		return err
	}
	// Implicit `return 0` so control cannot fall off the end.
	c.emit(bytecode.OpConst, 0)
	c.emit(bytecode.OpRet, 0)
	return nil
}

func (c *funcCompiler) block(b *gel.Block) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *funcCompiler) stmt(s gel.Stmt) error {
	c.line = int32(s.Position().Line)
	switch st := s.(type) {
	case *gel.Block:
		return c.block(st)
	case *gel.VarDecl:
		if err := c.expr(st.Init); err != nil {
			return err
		}
		c.emit(bytecode.OpLocalSet, uint32(st.Slot))
		return nil
	case *gel.Assign:
		if err := c.expr(st.Val); err != nil {
			return err
		}
		c.emit(bytecode.OpLocalSet, uint32(st.Slot))
		return nil
	case *gel.If:
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		jz := c.emit(bytecode.OpJz, 0)
		if err := c.block(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			c.patch(jz, c.here())
			return nil
		}
		jend := c.emit(bytecode.OpJmp, 0)
		c.patch(jz, c.here())
		if err := c.stmt(st.Else); err != nil {
			return err
		}
		c.patch(jend, c.here())
		return nil
	case *gel.While:
		top := c.here()
		if err := c.expr(st.Cond); err != nil {
			return err
		}
		jexit := c.emit(bytecode.OpJz, 0)
		c.loops = append(c.loops, loopCtx{continueTo: top})
		if err := c.block(st.Body); err != nil {
			return err
		}
		lc := c.loops[len(c.loops)-1]
		c.loops = c.loops[:len(c.loops)-1]
		c.emit(bytecode.OpJmp, uint32(top))
		exit := c.here()
		c.patch(jexit, exit)
		for _, pc := range lc.breakPatches {
			c.patch(pc, exit)
		}
		return nil
	case *gel.Break:
		if len(c.loops) == 0 {
			return fmt.Errorf("compile: %s: break outside loop escaped the checker", st.Pos)
		}
		pc := c.emit(bytecode.OpJmp, 0)
		c.loops[len(c.loops)-1].breakPatches = append(c.loops[len(c.loops)-1].breakPatches, pc)
		return nil
	case *gel.Continue:
		if len(c.loops) == 0 {
			return fmt.Errorf("compile: %s: continue outside loop escaped the checker", st.Pos)
		}
		c.emit(bytecode.OpJmp, uint32(c.loops[len(c.loops)-1].continueTo))
		return nil
	case *gel.Return:
		if st.Val != nil {
			if err := c.expr(st.Val); err != nil {
				return err
			}
		} else {
			c.emit(bytecode.OpConst, 0)
		}
		c.emit(bytecode.OpRet, 0)
		return nil
	case *gel.ExprStmt:
		if err := c.expr(st.X); err != nil {
			return err
		}
		c.emit(bytecode.OpDrop, 0)
		return nil
	}
	return fmt.Errorf("compile: %s: unknown statement %T", s.Position(), s)
}

var binOpTable = map[gel.BinOp]bytecode.Op{
	gel.BAdd: bytecode.OpAdd, gel.BSub: bytecode.OpSub, gel.BMul: bytecode.OpMul,
	gel.BDiv: bytecode.OpDivU, gel.BRem: bytecode.OpRemU,
	gel.BAnd: bytecode.OpAnd, gel.BOr: bytecode.OpOr, gel.BXor: bytecode.OpXor,
	gel.BShl: bytecode.OpShl, gel.BShr: bytecode.OpShrU,
	gel.BEq: bytecode.OpEq, gel.BNe: bytecode.OpNe,
	gel.BLt: bytecode.OpLtU, gel.BLe: bytecode.OpLeU,
	gel.BGt: bytecode.OpGtU, gel.BGe: bytecode.OpGeU,
}

func (c *funcCompiler) expr(e gel.Expr) error {
	c.line = int32(e.Position().Line)
	switch ex := e.(type) {
	case *gel.NumberLit:
		c.emit(bytecode.OpConst, ex.Val)
		return nil
	case *gel.VarRef:
		c.emit(bytecode.OpLocalGet, uint32(ex.Slot))
		return nil
	case *gel.Unary:
		switch ex.Op {
		case gel.UNeg:
			// 0 - x
			c.emit(bytecode.OpConst, 0)
			if err := c.expr(ex.X); err != nil {
				return err
			}
			c.emit(bytecode.OpSub, 0)
		case gel.UNot:
			if err := c.expr(ex.X); err != nil {
				return err
			}
			c.emit(bytecode.OpEqz, 0)
		case gel.UCpl:
			if err := c.expr(ex.X); err != nil {
				return err
			}
			c.emit(bytecode.OpConst, 0xFFFFFFFF)
			c.emit(bytecode.OpXor, 0)
		}
		return nil
	case *gel.Binary:
		switch ex.Op {
		case gel.BLAnd:
			// x && y  =>  if x == 0 then 0 else (y != 0)
			if err := c.expr(ex.X); err != nil {
				return err
			}
			jz := c.emit(bytecode.OpJz, 0)
			if err := c.expr(ex.Y); err != nil {
				return err
			}
			c.emit(bytecode.OpConst, 0)
			c.emit(bytecode.OpNe, 0)
			jend := c.emit(bytecode.OpJmp, 0)
			c.patch(jz, c.here())
			c.emit(bytecode.OpConst, 0)
			c.patch(jend, c.here())
			return nil
		case gel.BLOr:
			// x || y  =>  if x != 0 then 1 else (y != 0)
			if err := c.expr(ex.X); err != nil {
				return err
			}
			jnz := c.emit(bytecode.OpJnz, 0)
			if err := c.expr(ex.Y); err != nil {
				return err
			}
			c.emit(bytecode.OpConst, 0)
			c.emit(bytecode.OpNe, 0)
			jend := c.emit(bytecode.OpJmp, 0)
			c.patch(jnz, c.here())
			c.emit(bytecode.OpConst, 1)
			c.patch(jend, c.here())
			return nil
		}
		if err := c.expr(ex.X); err != nil {
			return err
		}
		if err := c.expr(ex.Y); err != nil {
			return err
		}
		op, ok := binOpTable[ex.Op]
		if !ok {
			return fmt.Errorf("compile: %s: no lowering for operator %s", ex.Pos, ex.Op)
		}
		c.emit(op, 0)
		return nil
	case *gel.Call:
		for _, a := range ex.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		if ex.Builtin != gel.NotBuiltin {
			switch ex.Builtin {
			case gel.BILd32:
				c.emit(bytecode.OpLd32, 0)
			case gel.BILd8:
				c.emit(bytecode.OpLd8, 0)
			case gel.BISt32:
				c.emit(bytecode.OpSt32, 0)
				c.emit(bytecode.OpConst, 0) // builtins yield a value
			case gel.BISt8:
				c.emit(bytecode.OpSt8, 0)
				c.emit(bytecode.OpConst, 0)
			case gel.BIRotl:
				c.emit(bytecode.OpRotl, 0)
			case gel.BIRotr:
				c.emit(bytecode.OpRotr, 0)
			case gel.BIMin:
				c.emit(bytecode.OpMinU, 0)
			case gel.BIMax:
				c.emit(bytecode.OpMaxU, 0)
			case gel.BIMemSize:
				c.emit(bytecode.OpMemSize, 0)
			case gel.BIAbort:
				c.emit(bytecode.OpAbort, 0)
				// OpAbort is a terminator; emit an unreachable placeholder
				// value so the abstract stack stays consistent on the
				// (never-taken) fallthrough edge the expression grammar
				// implies. The verifier treats OpAbort as terminal, so this
				// constant is dead code but keeps pc+1 well-formed.
				c.emit(bytecode.OpConst, 0)
			default:
				return fmt.Errorf("compile: %s: unknown builtin %q", ex.Pos, ex.Name)
			}
			return nil
		}
		c.emit(bytecode.OpCall, uint32(ex.FuncIdx))
		return nil
	}
	return fmt.Errorf("compile: %s: unknown expression %T", e.Position(), e)
}
