package hipec

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the assembler-like surface syntax HiPEC's description
// implies: one instruction per line, labels as jump targets, `;` comments.
//
//	; accept the kernel candidate unless it is on the hot list
//	loop:
//	    ldw  r2, [r1+0]
//	    jeq  r2, r0, found
//	    ldw  r1, [r1+4]
//	    movi r3, 0
//	    jne  r1, r3, loop
//	    movi r2, 0
//	found:
//	    ret  r2
//
// Registers are r0..r15; immediates are decimal or 0x-hex; loads take
// [rN+imm] (imm optional).
func Assemble(src string) (*Program, error) {
	type pending struct {
		pc    int
		label string
		line  int
	}
	var code []Instr
	labels := make(map[string]int)
	var fixups []pending

	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t,") {
				name := line[:i]
				if _, dup := labels[name]; dup {
					return nil, fmt.Errorf("hipec: line %d: duplicate label %q", lineno+1, name)
				}
				labels[name] = len(code)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		opName := fields[0]
		args := fields[1:]
		in, lbl, err := assembleOne(opName, args)
		if err != nil {
			return nil, fmt.Errorf("hipec: line %d: %w", lineno+1, err)
		}
		if lbl != "" {
			fixups = append(fixups, pending{pc: len(code), label: lbl, line: lineno + 1})
		}
		code = append(code, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("hipec: line %d: undefined label %q", f.line, f.label)
		}
		code[f.pc].Imm = uint32(target)
	}
	return New(code)
}

// MustAssemble panics on error; for compiled-in programs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func assembleOne(opName string, args []string) (Instr, string, error) {
	op, ok := opByName[opName]
	if !ok {
		return Instr{}, "", fmt.Errorf("unknown opcode %q", opName)
	}
	in := Instr{Op: op}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operand(s), got %d", opName, n, len(args))
		}
		return nil
	}
	switch op {
	case MOVI:
		if err := need(2); err != nil {
			return in, "", err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return in, "", err
		}
		in.A, in.Imm = r, imm
	case MOV:
		if err := need(2); err != nil {
			return in, "", err
		}
		a, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		b, err := parseReg(args[1])
		if err != nil {
			return in, "", err
		}
		in.A, in.B = a, b
	case LDW, LDB:
		if err := need(2); err != nil {
			return in, "", err
		}
		a, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return in, "", err
		}
		in.A, in.B, in.Imm = a, base, off
	case ADD, SUB, AND, OR, XOR, SHL, SHR, MUL:
		if err := need(3); err != nil {
			return in, "", err
		}
		a, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		b, err := parseReg(args[1])
		if err != nil {
			return in, "", err
		}
		c, err := parseReg(args[2])
		if err != nil {
			return in, "", err
		}
		in.A, in.B, in.C = a, b, c
	case ADDI:
		if err := need(3); err != nil {
			return in, "", err
		}
		a, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		b, err := parseReg(args[1])
		if err != nil {
			return in, "", err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return in, "", err
		}
		in.A, in.B, in.Imm = a, b, imm
	case JMP:
		if err := need(1); err != nil {
			return in, "", err
		}
		// Numeric targets (as the disassembler prints) or labels.
		if imm, err := parseImm(args[0]); err == nil {
			in.Imm = imm
			return in, "", nil
		}
		return in, args[0], nil
	case JEQ, JNE, JLT, JGE:
		if err := need(3); err != nil {
			return in, "", err
		}
		a, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		b, err := parseReg(args[1])
		if err != nil {
			return in, "", err
		}
		in.A, in.B = a, b
		if imm, err := parseImm(args[2]); err == nil {
			in.Imm = imm
			return in, "", nil
		}
		return in, args[2], nil
	case RET:
		if err := need(1); err != nil {
			return in, "", err
		}
		a, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		in.A = a
	}
	return in, "", nil
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return uint32(v), nil
}

// parseMem parses [rN] or [rN+imm].
func parseMem(s string) (uint8, uint32, error) {
	if len(s) < 4 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, fmt.Errorf("expected [reg+off], got %q", s)
	}
	inner := s[1 : len(s)-1]
	reg := inner
	off := uint32(0)
	if i := strings.IndexByte(inner, '+'); i >= 0 {
		reg = inner[:i]
		v, err := parseImm(inner[i+1:])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := parseReg(reg)
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

// Disassemble renders a program back to assembler text.
func Disassemble(p *Program) string {
	var b strings.Builder
	for pc, in := range p.Code {
		fmt.Fprintf(&b, "%4d: ", pc)
		switch in.Op {
		case MOVI:
			fmt.Fprintf(&b, "movi r%d, %d", in.A, in.Imm)
		case MOV:
			fmt.Fprintf(&b, "mov r%d, r%d", in.A, in.B)
		case LDW, LDB:
			fmt.Fprintf(&b, "%s r%d, [r%d+%d]", in.Op, in.A, in.B, in.Imm)
		case ADDI:
			fmt.Fprintf(&b, "addi r%d, r%d, %d", in.A, in.B, in.Imm)
		case JMP:
			fmt.Fprintf(&b, "jmp %d", in.Imm)
		case JEQ, JNE, JLT, JGE:
			fmt.Fprintf(&b, "%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
		case RET:
			fmt.Fprintf(&b, "ret r%d", in.A)
		default:
			fmt.Fprintf(&b, "%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
		}
		b.WriteString("\n")
	}
	return b.String()
}
