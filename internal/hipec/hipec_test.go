package hipec

import (
	"errors"
	"strings"
	"testing"

	"graftlab/internal/mem"
)

func run(t *testing.T, src string, m *mem.Memory, args ...uint32) uint32 {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Run(m, 0, args...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	m := mem.New(1 << 10)
	cases := []struct {
		src  string
		args []uint32
		want uint32
	}{
		{"movi r0, 42\nret r0", nil, 42},
		{"add r2, r0, r1\nret r2", []uint32{7, 35}, 42},
		{"sub r2, r0, r1\nret r2", []uint32{1, 2}, 0xFFFFFFFF},
		{"mul r2, r0, r1\nret r2", []uint32{0x10000, 0x10000}, 0},
		{"and r2, r0, r1\nret r2", []uint32{0xF0F0, 0x0FF0}, 0x00F0},
		{"or r2, r0, r1\nret r2", []uint32{0xF000, 0x000F}, 0xF00F},
		{"xor r2, r0, r1\nret r2", []uint32{0xFF00, 0x0FF0}, 0xF0F0},
		{"shl r2, r0, r1\nret r2", []uint32{1, 33}, 2}, // count masked
		{"shr r2, r0, r1\nret r2", []uint32{0x80000000, 31}, 1},
		{"addi r1, r0, 0x10\nret r1", []uint32{1}, 17},
		{"mov r5, r0\nret r5", []uint32{9}, 9},
	}
	for _, c := range cases {
		if got := run(t, c.src, m, c.args...); got != c.want {
			t.Errorf("%q (%v) = %#x, want %#x", c.src, c.args, got, c.want)
		}
	}
}

func TestLoadsAndBranches(t *testing.T) {
	m := mem.New(1 << 10)
	m.St32U(64, 0xDEADBEEF)
	m.St8U(100, 7)
	src := `
	; r0 = address
	ldw r1, [r0+0]
	ldb r2, [r0+36]
	ret r1
	`
	if got := run(t, src, m, 64); got != 0xDEADBEEF {
		t.Fatalf("ldw = %#x", got)
	}
	// Sum 1..n with a loop.
	loop := `
		movi r1, 0      ; sum
		movi r2, 1      ; i
	loop:
		jlt r0, r2, done
		add r1, r1, r2
		addi r2, r2, 1
		jmp loop
	done:
		ret r1
	`
	if got := run(t, loop, m, 100); got != 5050 {
		t.Fatalf("sum = %d", got)
	}
}

func TestListWalk(t *testing.T) {
	// The domain this language exists for: walk a linked list of
	// {value, next} nodes looking for a value.
	m := mem.New(1 << 12)
	addrs := []uint32{0x100, 0x180, 0x200, 0x280}
	vals := []uint32{10, 20, 30, 40}
	for i, a := range addrs {
		m.St32U(a, vals[i])
		next := uint32(0)
		if i+1 < len(addrs) {
			next = addrs[i+1]
		}
		m.St32U(a+4, next)
	}
	src := `
	; r0 = list head, r1 = needle; returns 1 if found
		movi r2, 0
	loop:
		jeq r0, r2, miss
		ldw r3, [r0+0]
		jeq r3, r1, hit
		ldw r0, [r0+4]
		jmp loop
	hit:
		movi r4, 1
		ret r4
	miss:
		movi r4, 0
		ret r4
	`
	p := MustAssemble(src)
	for _, v := range vals {
		got, err := p.Run(m, 0, addrs[0], v)
		if err != nil || got != 1 {
			t.Fatalf("find(%d) = %d, %v", v, got, err)
		}
	}
	if got, _ := p.Run(m, 0, addrs[0], 99); got != 0 {
		t.Fatal("found a value not in the list")
	}
}

func TestVerifyRejections(t *testing.T) {
	cases := []struct {
		name string
		code []Instr
	}{
		{"empty", nil},
		{"bad opcode", []Instr{{Op: numOps}, {Op: RET}}},
		{"bad register", []Instr{{Op: MOV, A: 99}, {Op: RET}}},
		{"jump out of range", []Instr{{Op: JMP, Imm: 40}, {Op: RET}}},
		{"falls off end", []Instr{{Op: MOVI, A: 0, Imm: 1}}},
		{"too long", make([]Instr, MaxProgram+1)},
	}
	for _, c := range cases {
		if c.name == "too long" {
			for i := range c.code {
				c.code[i] = Instr{Op: RET}
			}
		}
		if _, err := New(c.code); err == nil {
			t.Errorf("%s: verified", c.name)
		}
	}
}

func TestRunSafety(t *testing.T) {
	m := mem.New(1 << 10)
	// Out-of-bounds load traps recoverably.
	p := MustAssemble("ldw r1, [r0+0]\nret r1")
	_, err := p.Run(m, 0, 1<<30)
	var trap *mem.Trap
	if !errors.As(err, &trap) || trap.Kind != mem.TrapOOBLoad {
		t.Fatalf("oob load: %v", err)
	}
	// Infinite loop is preempted by fuel.
	spin := MustAssemble("loop:\njmp loop")
	_, err = spin.Run(m, 1000)
	if !errors.As(err, &trap) || trap.Kind != mem.TrapFuel {
		t.Fatalf("spin: %v", err)
	}
	// Too many args rejected.
	if _, err := p.Run(m, 0, make([]uint32, NumRegs+1)...); err == nil {
		t.Fatal("17 args accepted")
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"frobnicate r0",
		"movi r99, 1\nret r0",
		"movi r0\nret r0",
		"jmp nowhere\nret r0",
		"ldw r0, r1\nret r0",
		"ldw r0, [r1+xyz]\nret r0",
		"dup:\ndup:\nret r0",
		"ret r0, r1",
		"movi r0, 99999999999999\nret r0",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%q assembled", src)
		}
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	src := `
		movi r1, 7
		ldw r2, [r1+4]
		ldb r3, [r1]
		add r4, r2, r3
		jlt r4, r1, 6
		jmp 6
		ret r4
	`
	p := MustAssemble(src)
	text := Disassemble(p)
	for _, want := range []string{"movi r1, 7", "ldw r2, [r1+4]", "jlt r4, r1, 6", "ret r4"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly lacks %q:\n%s", want, text)
		}
	}
	// Reassembling the disassembly (minus pc prefixes) gives the same code.
	var rebuilt strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, ": "); i >= 0 {
			rebuilt.WriteString(line[i+2:])
		}
		rebuilt.WriteString("\n")
	}
	p2, err := Assemble(rebuilt.String())
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, rebuilt.String())
	}
	if len(p2.Code) != len(p.Code) {
		t.Fatalf("length changed: %d vs %d", len(p2.Code), len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != p2.Code[i] {
			t.Fatalf("instr %d: %v vs %v", i, p.Code[i], p2.Code[i])
		}
	}
}

func TestLabelOnSameLine(t *testing.T) {
	m := mem.New(1 << 10)
	if got := run(t, "start: movi r0, 3\nret r0", m); got != 3 {
		t.Fatalf("got %d", got)
	}
}
