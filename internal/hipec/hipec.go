// Package hipec is the domain-specific-interpreter technology class: the
// §2 systems the paper contrasts with general-purpose extension languages
// — HiPEC's "simple, assembler-like, interpreted language ... it has only
// 20 basic instructions", and the packet-filter languages whose
// interpreted "performance is close to that of compiled code, but, like
// HiPEC, the expressiveness is limited to the specific domain."
//
// The machine here makes that trade deliberately: sixteen registers,
// nineteen opcodes, loads but *no stores* (policy and filter grafts only
// inspect kernel state; a language that cannot write cannot corrupt),
// no calls, no stack. The eviction and packet-filter grafts fit in a few
// dozen instructions and run several times faster than the general
// bytecode VM — and MD5 is not expressible at all, which is exactly the
// paper's point.
package hipec

import (
	"fmt"

	"graftlab/internal/mem"
)

// NumRegs is the register file size.
const NumRegs = 16

// MaxProgram bounds program length; domain languages are tiny.
const MaxProgram = 256

// Op is a HiPEC-class opcode. The set stays at the paper's "about 20".
type Op uint8

const (
	MOVI Op = iota // r[A] = Imm
	MOV            // r[A] = r[B]
	LDW            // r[A] = mem32[r[B] + Imm]   (bounds-checked)
	LDB            // r[A] = mem8[r[B] + Imm]
	ADD            // r[A] = r[B] + r[C]
	SUB            // r[A] = r[B] - r[C]
	AND            // r[A] = r[B] & r[C]
	OR             // r[A] = r[B] | r[C]
	XOR            // r[A] = r[B] ^ r[C]
	SHL            // r[A] = r[B] << (r[C] & 31)
	SHR            // r[A] = r[B] >> (r[C] & 31)
	MUL            // r[A] = r[B] * r[C]
	ADDI           // r[A] = r[B] + Imm
	JMP            // pc = Imm
	JEQ            // if r[A] == r[B]: pc = Imm
	JNE            // if r[A] != r[B]: pc = Imm
	JLT            // if r[A] <  r[B] (unsigned): pc = Imm
	JGE            // if r[A] >= r[B] (unsigned): pc = Imm
	RET            // return r[A]
	numOps
)

var opNames = [numOps]string{
	"movi", "mov", "ldw", "ldb", "add", "sub", "and", "or", "xor",
	"shl", "shr", "mul", "addi", "jmp", "jeq", "jne", "jlt", "jge", "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction.
type Instr struct {
	Op      Op
	A, B, C uint8
	Imm     uint32
}

// Program is a verified instruction sequence.
type Program struct {
	Code []Instr
}

// Verify is the load-time check: register indices in range, jump targets
// inside the program, control cannot fall off the end, and — trivially,
// by the instruction set itself — no writes and no unbounded work per
// instruction. Like the big verifier, linear time.
func Verify(code []Instr) error {
	if len(code) == 0 {
		return fmt.Errorf("hipec: empty program")
	}
	if len(code) > MaxProgram {
		return fmt.Errorf("hipec: %d instructions exceed the %d-instruction domain limit", len(code), MaxProgram)
	}
	for pc, in := range code {
		if in.Op >= numOps {
			return fmt.Errorf("hipec: %d: undefined opcode %d", pc, in.Op)
		}
		if in.A >= NumRegs || in.B >= NumRegs || in.C >= NumRegs {
			return fmt.Errorf("hipec: %d: register out of range in %s", pc, in.Op)
		}
		switch in.Op {
		case JMP, JEQ, JNE, JLT, JGE:
			if in.Imm >= uint32(len(code)) {
				return fmt.Errorf("hipec: %d: jump target %d out of range", pc, in.Imm)
			}
		}
	}
	// Control must not fall off the end: the last instruction has to be
	// a terminator or an unconditional jump.
	last := code[len(code)-1]
	if last.Op != RET && last.Op != JMP {
		return fmt.Errorf("hipec: control falls off the end (last op %s)", last.Op)
	}
	return nil
}

// New verifies and wraps code.
func New(code []Instr) (*Program, error) {
	if err := Verify(code); err != nil {
		return nil, err
	}
	return &Program{Code: code}, nil
}

// MustNew panics on verification failure; for compiled-in programs.
func MustNew(code []Instr) *Program {
	p, err := New(code)
	if err != nil {
		panic(err)
	}
	return p
}

// Run executes the program against m with args in r0, r1, …. Fuel bounds
// total instructions (0 = a default generous budget); domain programs
// have no calls, so fuel is the only loop bound needed.
func (p *Program) Run(m *mem.Memory, fuel int64, args ...uint32) (uint32, error) {
	if len(args) > NumRegs {
		return 0, fmt.Errorf("hipec: %d args exceed %d registers", len(args), NumRegs)
	}
	if fuel <= 0 {
		fuel = 1 << 20
	}
	var r [NumRegs]uint32
	copy(r[:], args)
	data := m.Data
	size := uint32(len(data))
	code := p.Code
	pc := 0
	for {
		fuel--
		if fuel < 0 {
			return 0, &mem.Trap{Kind: mem.TrapFuel}
		}
		in := code[pc]
		switch in.Op {
		case MOVI:
			r[in.A] = in.Imm
		case MOV:
			r[in.A] = r[in.B]
		case LDW:
			a := r[in.B] + in.Imm
			if a > size-4 || size < 4 {
				return 0, &mem.Trap{Kind: mem.TrapOOBLoad, Addr: a}
			}
			r[in.A] = uint32(data[a]) | uint32(data[a+1])<<8 |
				uint32(data[a+2])<<16 | uint32(data[a+3])<<24
		case LDB:
			a := r[in.B] + in.Imm
			if a >= size {
				return 0, &mem.Trap{Kind: mem.TrapOOBLoad, Addr: a}
			}
			r[in.A] = uint32(data[a])
		case ADD:
			r[in.A] = r[in.B] + r[in.C]
		case SUB:
			r[in.A] = r[in.B] - r[in.C]
		case AND:
			r[in.A] = r[in.B] & r[in.C]
		case OR:
			r[in.A] = r[in.B] | r[in.C]
		case XOR:
			r[in.A] = r[in.B] ^ r[in.C]
		case SHL:
			r[in.A] = r[in.B] << (r[in.C] & 31)
		case SHR:
			r[in.A] = r[in.B] >> (r[in.C] & 31)
		case MUL:
			r[in.A] = r[in.B] * r[in.C]
		case ADDI:
			r[in.A] = r[in.B] + in.Imm
		case JMP:
			pc = int(in.Imm)
			continue
		case JEQ:
			if r[in.A] == r[in.B] {
				pc = int(in.Imm)
				continue
			}
		case JNE:
			if r[in.A] != r[in.B] {
				pc = int(in.Imm)
				continue
			}
		case JLT:
			if r[in.A] < r[in.B] {
				pc = int(in.Imm)
				continue
			}
		case JGE:
			if r[in.A] >= r[in.B] {
				pc = int(in.Imm)
				continue
			}
		case RET:
			return r[in.A], nil
		}
		pc++
	}
}
