package grafts

import (
	"testing"

	"graftlab/internal/mem"
	"graftlab/internal/netsim"
	"graftlab/internal/tech"
)

var pfTechs = []tech.ID{
	tech.CompiledUnsafe, tech.CompiledSafe, tech.CompiledSafeNil,
	tech.CompiledSFI, tech.CompiledSFIFull,
	tech.NativeUnsafe, tech.NativeSafe, tech.SFI, tech.Bytecode, tech.Script,
	tech.Domain,
}

func TestPacketFilterMatchesReferenceOnTrace(t *testing.T) {
	const port = 5001
	trace, err := netsim.GenerateTrace(netsim.TraceConfig{
		Packets: 500, MatchPort: port, MatchFrac: 0.2, PayloadLen: 32, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := ReferencePacketFilter(port)

	for _, id := range pfTechs {
		id := id
		t.Run(string(id), func(t *testing.T) {
			n := len(trace)
			if id == tech.Script {
				n = 100
			}
			m := mem.New(PFMemSize)
			g, err := tech.Load(id, PacketFilter, m, tech.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ConfigurePacketFilter(m, port)
			call := tech.ResolveDirect(g, "filter")
			args := make([]uint32, 1)
			for i, p := range trace[:n] {
				m.WriteAt(PFBufAddr, p)
				args[0] = uint32(len(p))
				v, err := call(args)
				if err != nil {
					t.Fatalf("packet %d: %v", i, err)
				}
				if (v != 0) != ref(p) {
					t.Fatalf("packet %d: graft=%d reference=%v (port %d, proto %d)",
						i, v, ref(p), p.DstPort(), p[netsim.OffIPProto])
				}
			}
		})
	}
}

func TestPacketFilterRejectsShortFrames(t *testing.T) {
	m := mem.New(PFMemSize)
	g, err := tech.Load(tech.CompiledUnsafe, PacketFilter, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ConfigurePacketFilter(m, 80)
	v, err := g.Invoke("filter", 10)
	if err != nil || v != 0 {
		t.Fatalf("short frame: %d, %v", v, err)
	}
}

func TestDemuxWithGraftEndpoints(t *testing.T) {
	trace, err := netsim.GenerateTrace(netsim.DefaultTrace(400))
	if err != nil {
		t.Fatal(err)
	}
	d := netsim.NewDemux()

	// Endpoint A: graft under the bytecode class, port 5001.
	mA := mem.New(PFMemSize)
	gA, err := tech.Load(tech.Bytecode, PacketFilter, mA, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ConfigurePacketFilter(mA, 5001)
	epA, err := d.Register("udp:5001", gA, "filter", PFBufAddr)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint B: host reference claiming all remaining UDP.
	epB := d.RegisterFunc("udp:any", func(p netsim.Packet) bool { return p.IsUDPv4() })

	var wantA, wantB uint64
	ref := ReferencePacketFilter(5001)
	for _, p := range trace {
		ep, err := d.Deliver(p)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case ref(p):
			wantA++
			if ep != epA {
				t.Fatalf("port-5001 frame went to %v", ep)
			}
		case p.IsUDPv4():
			wantB++
			if ep != epB {
				t.Fatalf("udp frame went to %v", ep)
			}
		default:
			if ep != nil {
				t.Fatalf("non-udp frame claimed by %s", ep.Name)
			}
		}
	}
	if epA.Matched != wantA || epB.Matched != wantB {
		t.Fatalf("matched A=%d (want %d) B=%d (want %d)", epA.Matched, wantA, epB.Matched, wantB)
	}
	st := d.Stats()
	if st.Frames != 400 || st.Delivered != wantA+wantB {
		t.Fatalf("stats %+v", st)
	}
	if st.Unclaimed != 400-wantA-wantB {
		t.Fatalf("unclaimed %d", st.Unclaimed)
	}
}

func TestDemuxSurvivesTrappingFilter(t *testing.T) {
	d := netsim.NewDemux()
	m := mem.New(PFMemSize)
	// A filter that always reads out of bounds under the checked policy.
	bad, err := tech.Load(tech.NativeSafe, tech.Source{
		Name: "bad", GEL: `func filter(len) { return ld32(0x40000000); }`,
	}, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	epBad, err := d.Register("bad", bad, "filter", PFBufAddr)
	if err != nil {
		t.Fatal(err)
	}
	epAll := d.RegisterFunc("all", func(netsim.Packet) bool { return true })

	p := netsim.Build(netsim.Header{EthType: netsim.EthTypeIPv4, Proto: netsim.ProtoUDP, DstPort: 9}, 0)
	ep, err := d.Deliver(p)
	if err != nil {
		t.Fatal(err)
	}
	if ep != epAll {
		t.Fatalf("frame went to %v", ep)
	}
	if epBad.Errors != 1 {
		t.Fatalf("bad filter errors = %d", epBad.Errors)
	}
}

func TestDemuxRegisterValidation(t *testing.T) {
	d := netsim.NewDemux()
	m := mem.New(PFMemSize)
	g, err := tech.Load(tech.CompiledUnsafe, PacketFilter, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Register("x", g, "filter", PFMemSize+8); err == nil {
		t.Fatal("buffer beyond memory accepted")
	}
}
