package grafts

import (
	"sync"
	"testing"
	"time"

	"graftlab/internal/kernel"
	"graftlab/internal/tech"
)

func newEvictPool(t *testing.T, id tech.ID, memSize uint32, hot []kernel.PageID) *tech.Pool {
	t.Helper()
	pool, err := tech.NewPool(id, PageEvict, tech.Options{}, tech.PoolConfig{
		MemSize: memSize,
		Setup:   SetupHotList(hot),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	return pool
}

// TestPooledEvictionPolicySemantics pins that the pooled form preserves
// the graft's single-threaded answer: the first non-hot page on the LRU
// snapshot, or the head when everything is hot.
func TestPooledEvictionPolicySemantics(t *testing.T) {
	for _, id := range []tech.ID{tech.NativeSafe, tech.Bytecode, tech.Script} {
		id := id
		t.Run(string(id), func(t *testing.T) {
			pool := newEvictPool(t, id, PEMemSize, []kernel.PageID{10, 11})
			policy := NewPooledEvictionPolicy(pool)

			v, err := policy.ChooseVictim(0, []kernel.PageID{10, 11, 12}, 10)
			if err != nil {
				t.Fatal(err)
			}
			if v != 12 {
				t.Fatalf("victim %d, want first non-hot page 12", v)
			}
			// All hot: the graft falls back to the kernel's head.
			v, err = policy.ChooseVictim(0, []kernel.PageID{11, 10}, 11)
			if err != nil {
				t.Fatal(err)
			}
			if v != 11 {
				t.Fatalf("all-hot victim %d, want LRU head 11", v)
			}
		})
	}
}

// TestPooledEvictionPolicyEdgeCases pins the two non-graft paths: an
// empty LRU answers InvalidPage without checking out an instance, and a
// snapshot that cannot fit the instance memory is refused rather than
// silently truncated.
func TestPooledEvictionPolicyEdgeCases(t *testing.T) {
	pool := newEvictPool(t, tech.NativeSafe, 1<<17, nil)
	policy := NewPooledEvictionPolicy(pool)

	before := pool.Created()
	v, err := policy.ChooseVictim(0, nil, 5)
	if err != nil || v != kernel.InvalidPage {
		t.Fatalf("empty LRU: got (%d, %v), want (InvalidPage, nil)", v, err)
	}
	if pool.Created() != before {
		t.Fatalf("empty LRU checked out an instance (created %d, was %d)", pool.Created(), before)
	}

	// 1<<17 bytes hold ((1<<17)-PELRUNodeBase)/8 = 8192 LRU nodes.
	huge := make([]kernel.PageID, 9000)
	for i := range huge {
		huge[i] = kernel.PageID(i + 1)
	}
	if _, err := policy.ChooseVictim(0, huge, huge[0]); err == nil {
		t.Fatal("oversized LRU snapshot accepted")
	}
}

// TestConcurrentPooledPolicyDrivesShardedPager is the full stack under
// contention: concurrent Access faults on a ShardedPager whose hook is
// the pooled pageevict graft. Checks the deterministic protection
// property first (hot pages survive an eviction), then hammers the
// pager and requires the graft to have run without a single error.
func TestConcurrentPooledPolicyDrivesShardedPager(t *testing.T) {
	pool := newEvictPool(t, tech.NativeSafe, PEMemSize, []kernel.PageID{10, 11})
	sp, err := kernel.NewShardedPager(kernel.ShardedPagerConfig{
		Shards: 1, Frames: 3, FaultTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.SetPolicy(NewPooledEvictionPolicy(pool))
	for _, p := range []kernel.PageID{10, 11, 12} {
		if _, err := sp.Access(p); err != nil {
			t.Fatal(err)
		}
	}
	// Candidate is 10 (LRU head) but it is hot; the graft must steer the
	// eviction to 12.
	if _, err := sp.Access(13); err != nil {
		t.Fatal(err)
	}
	if !sp.Resident(10) || !sp.Resident(11) || sp.Resident(12) {
		t.Fatalf("hot pages not protected: resident(10)=%v resident(11)=%v resident(12)=%v",
			sp.Resident(10), sp.Resident(11), sp.Resident(12))
	}

	workers, iters := 8, 50
	if testing.Short() {
		workers, iters = 4, 15
	}
	hot := []kernel.PageID{0, 1, 2, 3}
	cpool := newEvictPool(t, tech.NativeSafe, PEMemSize, hot)
	csp, err := kernel.NewShardedPager(kernel.ShardedPagerConfig{
		Shards: 4, Frames: 32, FaultTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	csp.SetPolicy(NewPooledEvictionPolicy(cpool))
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// 64-page working set over 32 frames keeps the hook busy.
				if _, err := csp.Access(kernel.PageID((w*17 + i) % 64)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := csp.Stats()
	if st.Hits+st.Faults != uint64(workers*iters) {
		t.Fatalf("stats %+v do not sum to %d accesses", st, workers*iters)
	}
	if st.PolicyCalls == 0 {
		t.Fatal("pooled policy never consulted")
	}
	if st.PolicyErrors != 0 {
		t.Fatalf("pooled graft errored %d times under contention", st.PolicyErrors)
	}
	if cpool.Created() < 1 {
		t.Fatal("pool reports zero instances created")
	}
}
