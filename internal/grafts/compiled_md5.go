package grafts

import (
	"math/bits"

	"graftlab/internal/md5x"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

func init() { MD5.Compiled = newCompiledMD5 }

// newCompiledMD5 is the hand-written compiled-class MD5 graft: the RFC
// 1321 streaming algorithm over graft memory, with one block-transform
// per policy so each technology's per-access cost is in the compiled
// loop. The K and S tables are compiled-in constants, exactly as in the
// paper's C implementation (the marshaled tables in graft memory exist
// for the GEL/Tcl versions and are ignored here).
func newCompiledMD5(cfg mem.Config, m *mem.Memory) (tech.Graft, error) {
	c := &md5Compiled{d: m.Data, mask: m.Mask()}
	switch {
	case cfg.Policy == mem.PolicyChecked && cfg.NilCheck:
		c.transform = md5TransformNil
		c.ld8, c.st8 = ld8nil, st8nil
		c.ld32, c.st32 = ld32nil, st32nil
	case cfg.Policy == mem.PolicyChecked:
		c.transform = md5TransformChk
		c.ld8, c.st8 = ld8chk, st8chk
		c.ld32, c.st32 = ld32chk, st32chk
	case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
		c.transform = func(d []byte, b uint32) { md5TransformSFIFull(d, b, c.mask) }
		mask := c.mask
		c.ld8 = func(d []byte, a uint32) uint32 { return uint32(d[a&mask]) }
		c.st8 = func(d []byte, a, v uint32) { d[a&mask] = byte(v) }
		c.ld32 = func(d []byte, a uint32) uint32 { return ld32sfi(d, a, mask) }
		c.st32 = func(d []byte, a, v uint32) { st32sfi(d, a, v, mask) }
	case cfg.Policy == mem.PolicySandbox:
		c.transform = func(d []byte, b uint32) { md5TransformSFI(d, b, c.mask) }
		mask := c.mask
		c.ld8 = func(d []byte, a uint32) uint32 { return uint32(d[a]) }
		c.st8 = func(d []byte, a, v uint32) { d[a&mask] = byte(v) }
		c.ld32 = le32
		c.st32 = func(d []byte, a, v uint32) { st32sfi(d, a, v, mask) }
	default:
		c.transform = md5TransformRaw
		c.ld8 = func(d []byte, a uint32) uint32 { return uint32(d[a]) }
		c.st8 = func(d []byte, a, v uint32) { d[a] = byte(v) }
		c.ld32, c.st32 = le32, se32
	}
	g := NewCompiledGraft(m)
	g.Register("md5_init", 0, func([]uint32) uint32 { return c.init() })
	g.Register("md5_update", 2, func(a []uint32) uint32 { return c.update(a[0], a[1]) })
	g.Register("md5_final", 1, func(a []uint32) uint32 { return c.final(a[0]) })
	return g, nil
}

type md5Compiled struct {
	d         []byte
	mask      uint32
	transform func(d []byte, block uint32)
	ld8       func(d []byte, a uint32) uint32
	st8       func(d []byte, a, v uint32)
	ld32      func(d []byte, a uint32) uint32
	st32      func(d []byte, a, v uint32)
}

func (c *md5Compiled) init() uint32 {
	c.st32(c.d, MDStateAddr+0, 0x67452301)
	c.st32(c.d, MDStateAddr+4, 0xefcdab89)
	c.st32(c.d, MDStateAddr+8, 0x98badcfe)
	c.st32(c.d, MDStateAddr+12, 0x10325476)
	c.st32(c.d, MDLenLoAddr, 0)
	c.st32(c.d, MDLenHiAddr, 0)
	c.st32(c.d, MDTailCount, 0)
	return 0
}

func (c *md5Compiled) update(addr, n uint32) uint32 {
	d := c.d
	// 64-bit bit-length bookkeeping in two u32 words.
	lo := c.ld32(d, MDLenLoAddr)
	nlo := lo + n*8
	if nlo < lo {
		c.st32(d, MDLenHiAddr, c.ld32(d, MDLenHiAddr)+1)
	}
	c.st32(d, MDLenHiAddr, c.ld32(d, MDLenHiAddr)+(n>>29))
	c.st32(d, MDLenLoAddr, nlo)

	tc := c.ld32(d, MDTailCount)
	if tc != 0 {
		for tc < 64 && n != 0 {
			c.st8(d, MDTailBuf+tc, c.ld8(d, addr))
			tc++
			addr++
			n--
		}
		if tc == 64 {
			c.transform(d, MDTailBuf)
			tc = 0
		}
		c.st32(d, MDTailCount, tc)
	}
	for n >= 64 {
		c.transform(d, addr)
		addr += 64
		n -= 64
	}
	for n != 0 {
		c.st8(d, MDTailBuf+tc, c.ld8(d, addr))
		tc++
		addr++
		n--
	}
	c.st32(d, MDTailCount, tc)
	return 0
}

func (c *md5Compiled) final(out uint32) uint32 {
	d := c.d
	lenlo := c.ld32(d, MDLenLoAddr)
	lenhi := c.ld32(d, MDLenHiAddr)
	tc := c.ld32(d, MDTailCount)
	c.st8(d, MDTailBuf+tc, 0x80)
	tc++
	if tc > 56 {
		for tc < 64 {
			c.st8(d, MDTailBuf+tc, 0)
			tc++
		}
		c.transform(d, MDTailBuf)
		tc = 0
	}
	for tc < 56 {
		c.st8(d, MDTailBuf+tc, 0)
		tc++
	}
	c.st32(d, MDTailBuf+56, lenlo)
	c.st32(d, MDTailBuf+60, lenhi)
	c.transform(d, MDTailBuf)
	c.st32(d, out+0, c.ld32(d, MDStateAddr+0))
	c.st32(d, out+4, c.ld32(d, MDStateAddr+4))
	c.st32(d, out+8, c.ld32(d, MDStateAddr+8))
	c.st32(d, out+12, c.ld32(d, MDStateAddr+12))
	return 0
}

// md5Round computes one step's f and g; shared by every variant (pure
// register arithmetic, no memory policy involved).
func md5Round(i, b, cc, dd uint32) (f, g uint32) {
	switch {
	case i < 16:
		return (b & cc) | (^b & dd), i
	case i < 32:
		return (dd & b) | (^dd & cc), (5*i + 1) % 16
	case i < 48:
		return b ^ cc ^ dd, (3*i + 5) % 16
	default:
		return cc ^ (b | ^dd), (7 * i) % 16
	}
}

// md5TransformRaw is the C-class transform: unchecked loads and stores,
// message indices masked the way C's fixed-size arrays need no checks.
func md5TransformRaw(d []byte, block uint32) {
	var m [16]uint32
	for i := uint32(0); i < 16; i++ {
		m[i] = le32(d, block+i*4)
	}
	oa, ob, oc, od := le32(d, MDStateAddr), le32(d, MDStateAddr+4), le32(d, MDStateAddr+8), le32(d, MDStateAddr+12)
	a, b, cc, dd := oa, ob, oc, od
	for i := uint32(0); i < 64; i++ {
		f, g := md5Round(i, b, cc, dd)
		f += a + md5x.K[i] + m[g&15]
		a, dd, cc = dd, cc, b
		b += bits.RotateLeft32(f, int(md5x.S[(i/16)*4+i%4]))
	}
	se32(d, MDStateAddr, oa+a)
	se32(d, MDStateAddr+4, ob+b)
	se32(d, MDStateAddr+8, oc+cc)
	se32(d, MDStateAddr+12, od+dd)
}

// md5TransformChk is the Modula-3-class transform: every memory access
// bounds-checked, every dynamic array index explicitly range-checked (the
// paper attributes the M3/C gap on MD5 to "run-time array bounds
// checking", §5.5).
func md5TransformChk(d []byte, block uint32) {
	var m [16]uint32
	for i := uint32(0); i < 16; i++ {
		m[i] = ld32chk(d, block+i*4)
	}
	oa, ob := ld32chk(d, MDStateAddr), ld32chk(d, MDStateAddr+4)
	oc, od := ld32chk(d, MDStateAddr+8), ld32chk(d, MDStateAddr+12)
	a, b, cc, dd := oa, ob, oc, od
	for i := uint32(0); i < 64; i++ {
		f, g := md5Round(i, b, cc, dd)
		if g >= 16 {
			mem.Throw(mem.TrapOOBLoad, g)
		}
		f += a + md5x.K[i] + m[g]
		a, dd, cc = dd, cc, b
		si := (i/16)*4 + i%4
		if si >= 16 {
			mem.Throw(mem.TrapOOBLoad, si)
		}
		b += bits.RotateLeft32(f, int(md5x.S[si]))
	}
	st32chk(d, MDStateAddr, oa+a)
	st32chk(d, MDStateAddr+4, ob+b)
	st32chk(d, MDStateAddr+8, oc+cc)
	st32chk(d, MDStateAddr+12, od+dd)
}

// md5TransformNil adds the explicit NIL compare per memory access.
func md5TransformNil(d []byte, block uint32) {
	var m [16]uint32
	for i := uint32(0); i < 16; i++ {
		m[i] = ld32nil(d, block+i*4)
	}
	oa, ob := ld32nil(d, MDStateAddr), ld32nil(d, MDStateAddr+4)
	oc, od := ld32nil(d, MDStateAddr+8), ld32nil(d, MDStateAddr+12)
	a, b, cc, dd := oa, ob, oc, od
	for i := uint32(0); i < 64; i++ {
		f, g := md5Round(i, b, cc, dd)
		if g >= 16 {
			mem.Throw(mem.TrapOOBLoad, g)
		}
		f += a + md5x.K[i] + m[g]
		a, dd, cc = dd, cc, b
		si := (i/16)*4 + i%4
		if si >= 16 {
			mem.Throw(mem.TrapOOBLoad, si)
		}
		b += bits.RotateLeft32(f, int(md5x.S[si]))
	}
	st32nil(d, MDStateAddr, oa+a)
	st32nil(d, MDStateAddr+4, ob+b)
	st32nil(d, MDStateAddr+8, oc+cc)
	st32nil(d, MDStateAddr+12, od+dd)
}

// md5TransformSFI is the Omniware-beta transform: stores masked, loads
// unprotected (the read-protection gap the paper flags twice).
func md5TransformSFI(d []byte, block uint32, mask uint32) {
	var m [16]uint32
	for i := uint32(0); i < 16; i++ {
		m[i] = le32(d, block+i*4)
	}
	oa, ob, oc, od := le32(d, MDStateAddr), le32(d, MDStateAddr+4), le32(d, MDStateAddr+8), le32(d, MDStateAddr+12)
	a, b, cc, dd := oa, ob, oc, od
	for i := uint32(0); i < 64; i++ {
		f, g := md5Round(i, b, cc, dd)
		f += a + md5x.K[i] + m[g&15]
		a, dd, cc = dd, cc, b
		b += bits.RotateLeft32(f, int(md5x.S[(i/16)*4+i%4]))
	}
	st32sfi(d, MDStateAddr, oa+a, mask)
	st32sfi(d, MDStateAddr+4, ob+b, mask)
	st32sfi(d, MDStateAddr+8, oc+cc, mask)
	st32sfi(d, MDStateAddr+12, od+dd, mask)
}

// md5TransformSFIFull masks loads too: the "SFI with full protection"
// candidate of §6.
func md5TransformSFIFull(d []byte, block uint32, mask uint32) {
	var m [16]uint32
	for i := uint32(0); i < 16; i++ {
		m[i] = ld32sfi(d, block+i*4, mask)
	}
	oa, ob := ld32sfi(d, MDStateAddr, mask), ld32sfi(d, MDStateAddr+4, mask)
	oc, od := ld32sfi(d, MDStateAddr+8, mask), ld32sfi(d, MDStateAddr+12, mask)
	a, b, cc, dd := oa, ob, oc, od
	for i := uint32(0); i < 64; i++ {
		f, g := md5Round(i, b, cc, dd)
		f += a + md5x.K[i] + m[g&15]
		a, dd, cc = dd, cc, b
		b += bits.RotateLeft32(f, int(md5x.S[(i/16)*4+i%4]))
	}
	st32sfi(d, MDStateAddr, oa+a, mask)
	st32sfi(d, MDStateAddr+4, ob+b, mask)
	st32sfi(d, MDStateAddr+8, oc+cc, mask)
	st32sfi(d, MDStateAddr+12, od+dd, mask)
}
