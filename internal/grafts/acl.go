package grafts

import (
	"fmt"

	"graftlab/internal/mem"
	"graftlab/internal/tech"
)

// Graft-memory layout for the access-control-list graft.
const (
	// ACLCountAddr holds the number of ACL entries.
	ACLCountAddr = 0x1000
	// ACLBase is the entry array: {uid, fileid, perm bits}, 12 bytes each,
	// evaluated first-match-wins.
	ACLBase = 0x1010
	// ACLStride is the per-entry record size.
	ACLStride = 12
	// ACLMaxEntries bounds the table.
	ACLMaxEntries = 1024
	// ACLWildcard in the uid or fileid field matches anything.
	ACLWildcard = 0xFFFFFFFF
	// ACLMemSize sizes the graft memory.
	ACLMemSize = 1 << 16
)

// Permission bits.
const (
	PermRead  = 1
	PermWrite = 2
	PermExec  = 4
)

// ACL is §3.3's first Black Box example: "a small database that accepts a
// triple containing a file access request, a user ID, and a file ID, and
// responds yes or no." Entry:
//
//	check(uid, fileid, op) -> 0/1
//
// The table is scanned in order; the first entry whose uid and fileid
// match (either may be the wildcard) decides by testing op against its
// permission bits. No matching entry denies.
var ACL = tech.Source{
	Name: "acl",
	GEL: `
func check(uid, fileid, op) {
	var n = ld32(0x1000);
	var i = 0;
	while (i < n) {
		var base = 0x1010 + i * 12;
		var euid = ld32(base);
		var efile = ld32(base + 4);
		if ((euid == uid || euid == 0xFFFFFFFF) && (efile == fileid || efile == 0xFFFFFFFF)) {
			if (ld32(base + 8) & op) { return 1; }
			return 0;
		}
		i = i + 1;
	}
	return 0;
}
`,
	Tcl: `
proc check {uid fileid op} {
	set n [ld32 0x1000]
	set i 0
	while {$i < $n} {
		set base [expr {0x1010 + $i * 12}]
		set euid [ld32 $base]
		set efile [ld32 [expr {$base + 4}]]
		if {($euid == $uid || $euid == 0xFFFFFFFF) && ($efile == $fileid || $efile == 0xFFFFFFFF)} {
			if {[ld32 [expr {$base + 8}]] & $op} { return 1 }
			return 0
		}
		incr i
	}
	return 0
}
`,
	Compiled: newCompiledACL,
	Hipec: map[string]string{
		"check": `
	; r0 = uid, r1 = fileid, r2 = op
		movi r4, 0x1000
		ldw  r4, [r4+0]      ; entry count
		movi r5, 0           ; i
		movi r6, 0x1010      ; entry pointer
		movi r9, 0xFFFFFFFF  ; wildcard
	loop:
		jge  r5, r4, deny
		ldw  r7, [r6+0]      ; entry uid
		jeq  r7, r0, uidok
		jeq  r7, r9, uidok
		jmp  next
	uidok:
		ldw  r8, [r6+4]      ; entry fileid
		jeq  r8, r1, fileok
		jeq  r8, r9, fileok
		jmp  next
	fileok:
		ldw  r7, [r6+8]      ; perm bits; first match decides
		and  r7, r7, r2
		movi r8, 0
		jne  r7, r8, allow
		ret  r8
	allow:
		movi r7, 1
		ret  r7
	next:
		addi r5, r5, 1
		addi r6, r6, 12
		jmp  loop
	deny:
		movi r7, 0
		ret  r7
`,
	},
}

func newCompiledACL(cfg mem.Config, m *mem.Memory) (tech.Graft, error) {
	g := NewCompiledGraft(m)
	d := m.Data
	mask := m.Mask()
	var check func(uid, fileid, op uint32) uint32
	switch {
	case cfg.Policy == mem.PolicyChecked && cfg.NilCheck:
		check = func(u, f, o uint32) uint32 { return aclCheck(d, u, f, o, ld32nil) }
	case cfg.Policy == mem.PolicyChecked:
		check = func(u, f, o uint32) uint32 { return aclCheck(d, u, f, o, ld32chk) }
	case cfg.Policy == mem.PolicySandbox && cfg.ReadProtect:
		check = func(u, f, o uint32) uint32 {
			return aclCheck(d, u, f, o, func(d []byte, a uint32) uint32 { return ld32sfi(d, a, mask) })
		}
	default:
		check = func(u, f, o uint32) uint32 { return aclCheck(d, u, f, o, le32) }
	}
	g.Register("check", 3, func(a []uint32) uint32 { return check(a[0], a[1], a[2]) })
	return g, nil
}

func aclCheck(d []byte, uid, fileid, op uint32, ld func([]byte, uint32) uint32) uint32 {
	n := ld(d, ACLCountAddr)
	for i := uint32(0); i < n; i++ {
		base := uint32(ACLBase) + i*ACLStride
		euid := ld(d, base)
		efile := ld(d, base+4)
		if (euid == uid || euid == ACLWildcard) && (efile == fileid || efile == ACLWildcard) {
			if ld(d, base+8)&op != 0 {
				return 1
			}
			return 0
		}
	}
	return 0
}

// ACLEntry is one rule.
type ACLEntry struct {
	UID    uint32 // ACLWildcard matches any user
	FileID uint32 // ACLWildcard matches any file
	Perms  uint32 // PermRead | PermWrite | PermExec
}

// ACLTable manages the rule table in graft memory and offers the host-
// side reference implementation used as the correctness oracle.
type ACLTable struct {
	m       *mem.Memory
	entries []ACLEntry
	g       tech.Graft
	call    func(args []uint32) (uint32, error)
	args    [3]uint32
}

// NewACLTable binds a table to a loaded acl graft.
func NewACLTable(g tech.Graft) (*ACLTable, error) {
	m := g.Memory()
	need := uint64(ACLBase) + ACLMaxEntries*ACLStride
	if uint64(m.Size()) < need {
		return nil, fmt.Errorf("grafts: acl needs %d bytes of graft memory, have %d", need, m.Size())
	}
	t := &ACLTable{m: m, g: g, call: tech.ResolveDirect(g, "check")}
	t.Set(nil)
	return t, nil
}

// Set replaces the rules.
func (t *ACLTable) Set(entries []ACLEntry) {
	if len(entries) > ACLMaxEntries {
		panic(fmt.Sprintf("grafts: %d ACL entries exceed capacity %d", len(entries), ACLMaxEntries))
	}
	t.entries = append(t.entries[:0], entries...)
	t.m.St32U(ACLCountAddr, uint32(len(entries)))
	for i, e := range entries {
		base := uint32(ACLBase) + uint32(i)*ACLStride
		t.m.St32U(base, e.UID)
		t.m.St32U(base+4, e.FileID)
		t.m.St32U(base+8, e.Perms)
	}
}

// Check asks the graft.
func (t *ACLTable) Check(uid, fileid, op uint32) (bool, error) {
	t.args[0], t.args[1], t.args[2] = uid, fileid, op
	v, err := t.call(t.args[:])
	return v != 0, err
}

// ReferenceCheck is the host-side oracle with identical semantics.
func (t *ACLTable) ReferenceCheck(uid, fileid, op uint32) bool {
	for _, e := range t.entries {
		if (e.UID == uid || e.UID == ACLWildcard) && (e.FileID == fileid || e.FileID == ACLWildcard) {
			return e.Perms&op != 0
		}
	}
	return false
}
