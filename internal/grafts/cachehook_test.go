package grafts

import (
	"testing"

	"graftlab/internal/kernel"
	"graftlab/internal/mem"
	"graftlab/internal/tech"
	"graftlab/internal/workload"
)

func newCacheWithGraftHook(t *testing.T, id tech.ID, capacity int) (*kernel.BufferCache, *PinSet) {
	t.Helper()
	m := mem.New(BCMemSize)
	g, err := tech.Load(id, CacheHook, m, tech.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := kernel.NewBufferCache(capacity)
	if err != nil {
		t.Fatal(err)
	}
	c.SetHook(NewGraftCacheHook(g))
	return c, NewPinSet(m)
}

func TestCacheHookPinsBlocksAcrossTechnologies(t *testing.T) {
	for _, id := range hookTechs {
		id := id
		t.Run(string(id), func(t *testing.T) {
			c, pins := newCacheWithGraftHook(t, id, 3)
			for b := uint32(1); b <= 3; b++ {
				c.Get(b)
			}
			pins.Set([]uint32{1, 2})
			// Inserting 4 must evict 3 (LRU non-pinned), not 1.
			_, ev, err := c.Get(4)
			if err != nil {
				t.Fatal(err)
			}
			if ev != 3 {
				t.Fatalf("evicted %d, want 3 (order %v)", ev, c.UseOrder())
			}
			if !c.Contains(1) || !c.Contains(2) {
				t.Fatal("pinned block evicted")
			}
		})
	}
}

func TestCacheHookDeclinesWhenAllPinned(t *testing.T) {
	c, pins := newCacheWithGraftHook(t, tech.CompiledUnsafe, 2)
	c.Get(1)
	c.Get(2)
	pins.Set([]uint32{1, 2})
	// Everything pinned: graft declines, built-in LRU evicts 1.
	_, ev, err := c.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if ev != 1 {
		t.Fatalf("evicted %d, want LRU fallback 1", ev)
	}
}

func TestCacheHookMatchesNativeHookRandomized(t *testing.T) {
	mkNative := func(pins *PinSet) kernel.CacheHook {
		return func(order []uint32) uint32 {
			for _, b := range order {
				if !pins.Contains(b) {
					return b
				}
			}
			return kernel.NoBlock
		}
	}
	cG, pinsG := newCacheWithGraftHook(t, tech.Bytecode, 8)
	cN, err := kernel.NewBufferCache(8)
	if err != nil {
		t.Fatal(err)
	}
	pinsN := NewPinSet(mem.New(BCMemSize))
	cN.SetHook(mkNative(pinsN))

	rng := workload.NewRNG(31)
	for i := 0; i < 3000; i++ {
		if rng.Uint32n(16) == 0 {
			var ps []uint32
			for j := uint32(0); j < rng.Uint32n(4); j++ {
				ps = append(ps, rng.Uint32n(32))
			}
			pinsG.Set(ps)
			pinsN.Set(ps)
		}
		b := rng.Uint32n(32)
		hitG, evG, errG := cG.Get(b)
		hitN, evN, errN := cN.Get(b)
		if errG != nil || errN != nil {
			t.Fatal(errG, errN)
		}
		if hitG != hitN || evG != evN {
			t.Fatalf("iter %d: graft (hit %v ev %d) vs native (hit %v ev %d)",
				i, hitG, evG, hitN, evN)
		}
	}
}

func TestCacheHookImprovesHitRateOnScanWorkload(t *testing.T) {
	// The Cao argument, executed: a hot set revisited between scan
	// bursts. The graft-pinned cache must beat unhooked LRU.
	hot := []uint32{100, 101, 102, 103}
	run := func(withGraft bool) uint64 {
		var c *kernel.BufferCache
		var pins *PinSet
		if withGraft {
			c, pins = newCacheWithGraftHook(t, tech.CompiledUnsafe, 8)
			pins.Set(hot)
		} else {
			var err error
			c, err = kernel.NewBufferCache(8)
			if err != nil {
				t.Fatal(err)
			}
		}
		rng := workload.NewRNG(5)
		for burst := 0; burst < 50; burst++ {
			for _, h := range hot {
				c.Get(h)
			}
			for i := 0; i < 10; i++ {
				c.Get(rng.Uint32n(500))
			}
		}
		return c.Stats().Hits
	}
	plain := run(false)
	grafted := run(true)
	if grafted <= plain {
		t.Fatalf("graft hook hits %d not better than LRU %d", grafted, plain)
	}
}
